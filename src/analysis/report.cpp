#include "analysis/report.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace hpu::analysis {

const char* to_string(FindingKind k) noexcept {
    switch (k) {
        case FindingKind::kWriteWriteRace: return "write-write-race";
        case FindingKind::kReadWriteRace: return "read-write-race";
        case FindingKind::kOrderDependent: return "order-dependent";
        case FindingKind::kStaleHostRead: return "stale-host-read";
        case FindingKind::kStaleHostWrite: return "stale-host-write";
        case FindingKind::kRedundantTransfer: return "redundant-transfer";
        case FindingKind::kHostWriteWhileDeviceLive: return "host-write-while-device-live";
        case FindingKind::kInFlightRead: return "in-flight-read";
        case FindingKind::kFootprintViolation: return "footprint-violation";
        case FindingKind::kLaunchSkipped: return "launch-skipped";
        case FindingKind::kExtentOverlap: return "extent-overlap";
    }
    return "unknown";
}

const char* to_string(Severity s) noexcept {
    return s == Severity::kError ? "error" : "warning";
}

std::string Finding::message() const {
    std::ostringstream os;
    os << to_string(severity) << '[' << to_string(kind) << "] " << launch << ": " << detail;
    return os.str();
}

bool AnalysisReport::clean() const noexcept {
    return std::none_of(findings.begin(), findings.end(),
                        [](const Finding& f) { return f.severity == Severity::kError; });
}

bool AnalysisReport::has(FindingKind k) const noexcept {
    return std::any_of(findings.begin(), findings.end(),
                       [k](const Finding& f) { return f.kind == k; });
}

void AnalysisReport::merge(const AnalysisReport& other) {
    findings.insert(findings.end(), other.findings.begin(), other.findings.end());
    launches_checked += other.launches_checked;
    launches_skipped += other.launches_skipped;
    findings_suppressed += other.findings_suppressed;
}

std::string AnalysisReport::summary() const {
    std::ostringstream os;
    print(os);
    return os.str();
}

void AnalysisReport::print(std::ostream& os) const {
    for (const Finding& f : findings) os << f.message() << '\n';
    os << "analysis: " << findings.size() << " finding(s), " << launches_checked
       << " launch(es) checked, " << launches_skipped << " skipped";
    if (findings_suppressed > 0) os << ", " << findings_suppressed << " finding(s) suppressed";
    os << '\n';
}

}  // namespace hpu::analysis
