// Buffer-residency lint. Replays a DeviceBuffer's event log (recorded via
// DeviceBuffer::set_trace) and flags the residency anti-patterns the
// simulated memory model makes observable:
//
//   * stale-host-read (error): host_view()/host() while the device holds
//     newer data — the reader sees pre-kernel contents;
//   * redundant-transfer (warning): a full copy to a side that is already
//     valid moves words the destination already has;
//   * host-write-while-device-live (warning): host() acquired while a
//     device copy is valid — it invalidates the device copy, which is
//     wasteful when the caller only wanted to read (use host_view());
//   * in-flight-read (error): a timed device access (device_region) over a
//     range whose streamed chunk has a later arrival tick — the kernel ran
//     before the words crossed the link. Only streamed copies and timed
//     accesses participate; synchronous events are untimed and exempt.
#pragma once

#include <span>
#include <string_view>

#include "analysis/report.hpp"
#include "sim/buffer.hpp"

namespace hpu::analysis {

/// Lints one buffer's log. `buffer_label` names the buffer in diagnostics
/// (executors use "<algo>/device-buffer"). Findings append to `report`.
void lint_residency(std::span<const sim::BufferEvent> log, std::string_view buffer_label,
                    AnalysisReport& report);

}  // namespace hpu::analysis
