// Wave race detector. Consumes the per-work-item read/write sets recorded
// through OpCounter::log_read/log_write (sim/access_log.hpp) and reports
// every word that two distinct work-items of the same launch both write
// (write-write) or that one item reads while another writes (read-write).
//
// Alg. 3 of the paper — and therefore every scheduler in src/core — is only
// correct if the work-items of a launch are independent; this pass turns
// that assumption into a checked property. Detection is exact: access sets
// are concretized word by word (strided column walks included), so disjoint
// interleaved columns never alias. Launches whose traces exceed
// RaceOptions::max_words are counted in AnalysisReport::launches_skipped
// rather than silently half-checked.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "analysis/report.hpp"
#include "sim/access_log.hpp"

namespace hpu::analysis {

struct RaceOptions {
    /// Concretization budget: total words across all items of one launch.
    std::uint64_t max_words = 1ull << 22;
    /// At most this many findings are materialized per launch; the rest is
    /// tallied in AnalysisReport::findings_suppressed.
    std::uint64_t max_findings = 8;
    /// When set, a launch skipped for exceeding max_words is not merely
    /// counted: it also records a kLaunchSkipped error finding, so
    /// validation cannot silently under-cover a run.
    bool fail_on_skip = false;
};

/// Checks one launch. `items[j]` is work-item j's access log; `wave_width`
/// is the device's g (or the CPU's p for CPU levels) used for wave
/// attribution in diagnostics; `launch_label` names the owning launch /
/// timeline event. Findings and counters are appended to `report`.
void detect_races(std::span<const sim::ItemAccessLog> items, std::uint64_t wave_width,
                  std::string_view launch_label, AnalysisReport& report,
                  const RaceOptions& opts = {});

/// Contiguous word extent [begin, end) a dynamic task declares as its own
/// (irregular trees — see core/task_list.hpp; this layer keeps its own
/// plain struct so analysis stays below core in the dependency order).
struct Extent {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
};

/// Declared-extent disjointness over a dynamic task list: non-empty
/// extents of one level must be pairwise disjoint, or the level's tasks
/// cannot be independent. O(W log W) over the declarations — the cheap
/// first line before detect_races concretizes the logged accesses behind
/// them (a task that *lies* about its extent is still caught by the exact
/// detector). Each overlap is a kExtentOverlap error finding; at most
/// `opts.max_findings` are materialized, the rest tallied in
/// AnalysisReport::findings_suppressed.
void detect_extent_overlaps(std::span<const Extent> extents, std::string_view launch_label,
                            AnalysisReport& report, const RaceOptions& opts = {});

}  // namespace hpu::analysis
