#include "analysis/race.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace hpu::analysis {

namespace {

std::uint64_t total_words(std::span<const sim::ItemAccessLog> items) {
    std::uint64_t w = 0;
    for (const auto& it : items) {
        for (const auto& a : it.reads) w += a.words;
        for (const auto& a : it.writes) w += a.words;
    }
    return w;
}

/// Shared state of one launch's check: who wrote each word, plus dedup and
/// suppression bookkeeping.
struct LaunchCheck {
    std::unordered_map<std::uint64_t, std::uint32_t> writer;  ///< word -> item
    std::unordered_set<std::uint64_t> reported_pairs;         ///< dedup key
    std::uint64_t wave_width;
    std::string_view label;
    AnalysisReport& report;
    const RaceOptions& opts;
    std::uint64_t emitted = 0;

    static std::uint64_t pair_key(FindingKind kind, std::uint64_t a, std::uint64_t b) {
        if (a > b) std::swap(a, b);
        return (static_cast<std::uint64_t>(kind) << 60) ^ (a << 30) ^ b;
    }

    void emit(FindingKind kind, std::uint64_t item_a, std::uint64_t item_b,
              std::uint64_t addr) {
        // One finding per (kind, item pair) per launch: a racy kernel
        // typically conflicts on a whole range and a flood of identical
        // findings would bury the diagnosis.
        if (!reported_pairs.insert(pair_key(kind, item_a, item_b)).second) return;
        if (emitted >= opts.max_findings) {
            ++report.findings_suppressed;
            return;
        }
        ++emitted;
        Finding f;
        f.kind = kind;
        f.severity = Severity::kError;
        f.launch = std::string(label);
        f.item_a = item_a;
        f.item_b = item_b;
        f.wave_a = wave_width > 0 ? item_a / wave_width : 0;
        f.wave_b = wave_width > 0 ? item_b / wave_width : 0;
        f.address = addr;
        std::ostringstream os;
        os << (kind == FindingKind::kWriteWriteRace ? "items " : "writer item ") << item_a
           << " (wave " << f.wave_a << ") and "
           << (kind == FindingKind::kWriteWriteRace ? "" : "reader item ") << item_b
           << " (wave " << f.wave_b << ") both touch word " << addr
           << (kind == FindingKind::kWriteWriteRace
                   ? " with writes — work-items of one launch must have disjoint write sets"
                   : " — a work-item must not read words another item writes in the same "
                     "launch");
        f.detail = os.str();
        report.add(std::move(f));
    }
};

}  // namespace

void detect_races(std::span<const sim::ItemAccessLog> items, std::uint64_t wave_width,
                  std::string_view launch_label, AnalysisReport& report,
                  const RaceOptions& opts) {
    if (total_words(items) > opts.max_words) {
        ++report.launches_skipped;
        if (opts.fail_on_skip) {
            Finding f;
            f.kind = FindingKind::kLaunchSkipped;
            f.severity = Severity::kError;
            f.launch = std::string(launch_label);
            std::ostringstream os;
            os << "access trace exceeds RaceOptions::max_words (" << opts.max_words
               << ") and fail_on_skip is set — raise the budget or shrink the launch";
            f.detail = os.str();
            report.add(std::move(f));
        }
        return;
    }
    ++report.launches_checked;
    LaunchCheck chk{{}, {}, wave_width, launch_label, report, opts, 0};
    chk.writer.reserve(256);

    // Pass 1: writes. The first writer of a word owns it; any later writer
    // from a different item is a write-write race.
    for (std::uint32_t j = 0; j < items.size(); ++j) {
        for (const auto& acc : items[j].writes) {
            std::uint64_t addr = acc.begin;
            for (std::uint64_t k = 0; k < acc.words; ++k, addr += acc.stride) {
                auto [it, inserted] = chk.writer.emplace(addr, j);
                if (!inserted && it->second != j) {
                    chk.emit(FindingKind::kWriteWriteRace, it->second, j, addr);
                }
            }
        }
    }
    // Pass 2: reads against the write map. Order within the launch is
    // irrelevant: a read of a word some other item writes races whichever
    // way the wave scheduler interleaves them.
    for (std::uint32_t j = 0; j < items.size(); ++j) {
        for (const auto& acc : items[j].reads) {
            std::uint64_t addr = acc.begin;
            for (std::uint64_t k = 0; k < acc.words; ++k, addr += acc.stride) {
                auto it = chk.writer.find(addr);
                if (it != chk.writer.end() && it->second != j) {
                    chk.emit(FindingKind::kReadWriteRace, it->second, j, addr);
                }
            }
        }
    }
}

void detect_extent_overlaps(std::span<const Extent> extents, std::string_view launch_label,
                            AnalysisReport& report, const RaceOptions& opts) {
    // Sort the non-empty extents by begin; any overlap then shows up
    // between a task and the previous maximum end.
    std::vector<std::uint32_t> order;
    order.reserve(extents.size());
    for (std::uint32_t j = 0; j < extents.size(); ++j) {
        if (extents[j].end > extents[j].begin) order.push_back(j);
    }
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
        if (extents[a].begin != extents[b].begin) {
            return extents[a].begin < extents[b].begin;
        }
        return a < b;
    });
    std::uint64_t emitted = 0;
    std::uint64_t open_end = 0;
    std::uint32_t open_task = 0;
    bool have_open = false;
    for (const std::uint32_t j : order) {
        const Extent& e = extents[j];
        if (have_open && e.begin < open_end) {
            if (emitted >= opts.max_findings) {
                ++report.findings_suppressed;
            } else {
                ++emitted;
                Finding f;
                f.kind = FindingKind::kExtentOverlap;
                f.severity = Severity::kError;
                f.launch = std::string(launch_label);
                f.item_a = open_task;
                f.item_b = j;
                f.address = e.begin;
                std::ostringstream os;
                os << "tasks " << open_task << " and " << j
                   << " declare overlapping extents ([" << extents[open_task].begin << ", "
                   << extents[open_task].end << ") vs [" << e.begin << ", " << e.end
                   << ")) — dynamic tasks of one level must own disjoint words";
                f.detail = os.str();
                report.add(std::move(f));
            }
        }
        if (!have_open || e.end > open_end) {
            open_end = e.end;
            open_task = j;
            have_open = true;
        }
    }
}

}  // namespace hpu::analysis
