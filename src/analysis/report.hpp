// Structured output of the hpu::analysis correctness passes (wave race
// detector, buffer-residency lint, schedule-independence checker). The
// executors in src/core run the passes when ExecOptions::validate is on and
// attach the resulting AnalysisReport to their ExecReport, so callers get
// diagnostics alongside the timing telemetry.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hpu::analysis {

enum class Severity : std::uint8_t {
    kWarning,  ///< suspicious but possibly intended (e.g. a redundant copy)
    kError,    ///< breaks the independence contract the schedulers rely on
};

enum class FindingKind : std::uint8_t {
    kWriteWriteRace,     ///< two work-items write the same word in one launch
    kReadWriteRace,      ///< one item reads a word another item writes
    kOrderDependent,     ///< permuted item order changed the launch's output
    kStaleHostRead,      ///< host copy read while the device holds newer data
    kStaleHostWrite,     ///< host copy written over while stale (device newer)
    kRedundantTransfer,  ///< full copy to a side that is already valid
    kHostWriteWhileDeviceLive,  ///< host() taken while a device copy is live
    kInFlightRead,  ///< kernel touched a streamed chunk before it arrived
    kFootprintViolation,  ///< runtime access outside the declared footprint
    kLaunchSkipped,  ///< budget-capped launch surfaced via fail_on_skip
    kExtentOverlap,  ///< two dynamic tasks of one level declare overlapping extents
};

const char* to_string(FindingKind k) noexcept;
const char* to_string(Severity s) noexcept;

/// One diagnosed defect. `launch` names the owning launch / timeline event
/// (executors label launches "<algo>/<phase>[<tasks> tasks]"); the item and
/// wave fields are only meaningful for the race/order kinds.
struct Finding {
    FindingKind kind;
    Severity severity = Severity::kError;
    std::string launch;           ///< owning launch or buffer label
    std::uint64_t item_a = 0;     ///< first involved work-item (races)
    std::uint64_t item_b = 0;     ///< second involved work-item (races)
    std::uint64_t wave_a = 0;     ///< wave of item_a (item_a / g)
    std::uint64_t wave_b = 0;     ///< wave of item_b
    std::uint64_t address = 0;    ///< conflicting word index (races/order)
    std::string detail;           ///< human-readable, actionable message

    /// "error[write-write-race] mergesort/gpu-level[8 tasks]: ..." form.
    std::string message() const;
};

/// Aggregate result of all passes over one executor run.
struct AnalysisReport {
    std::vector<Finding> findings;
    std::uint64_t launches_checked = 0;  ///< launches/levels the detector saw
    std::uint64_t launches_skipped = 0;  ///< traces over the size cap (not silent)
    std::uint64_t findings_suppressed = 0;  ///< found beyond the per-launch cap

    /// True when no error-severity finding was recorded. Warnings do not
    /// make a run unclean; tests that want zero noise check findings.empty().
    bool clean() const noexcept;
    bool has(FindingKind k) const noexcept;

    void add(Finding f) { findings.push_back(std::move(f)); }
    void merge(const AnalysisReport& other);

    /// One line per finding plus a counter footer.
    std::string summary() const;
    void print(std::ostream& os) const;
};

}  // namespace hpu::analysis
