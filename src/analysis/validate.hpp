// Opt-in gate for the runtime correctness passes. Validation is off by
// default (it re-executes every launch and concretizes access traces);
// it is enabled per run via ExecOptions::validate or process-wide with the
// HPU_VALIDATE environment variable, which seeds ExecOptions' default.
#pragma once

#include <cctype>
#include <cstdlib>
#include <string>

namespace hpu::analysis {

/// True when `name` is set to anything but "", "0", "off", "false", "no".
inline bool env_flag_enabled(const char* name) {
    const char* raw = std::getenv(name);
    if (raw == nullptr) return false;
    std::string v(raw);
    for (char& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return !(v.empty() || v == "0" || v == "off" || v == "false" || v == "no");
}

/// Default for ExecOptions::validate. Read on every call (not cached) so
/// tests and embedding applications can toggle HPU_VALIDATE at runtime.
inline bool env_validate_default() { return env_flag_enabled("HPU_VALIDATE"); }

}  // namespace hpu::analysis
