// Schedule-independence checker. The race detector is exact only for the
// accesses kernels *declare*; a kernel that touches shared state without
// logging it (or that is sensitive to floating-point combination order)
// slips through. This pass closes that gap behaviourally: it re-runs a
// launch with a permuted work-item order on the same data (restored to its
// pre-launch snapshot) and diffs the outputs. Any divergence means the
// kernel's result depends on the order the wave scheduler happens to pick —
// exactly what Alg. 3's independence requirement forbids.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <optional>
#include <random>
#include <span>
#include <sstream>
#include <string_view>
#include <vector>

#include "analysis/report.hpp"
#include "trace/counters.hpp"

namespace hpu::analysis {

/// Re-runs a launch of `n_items` in a seeded random order and compares.
///
/// `data` is the launch's working span, currently holding the in-order
/// result; `before` is its pre-launch snapshot and `after` the in-order
/// result (usually a copy of `data`). `run_item(j)` executes work-item j
/// functionally (charging into a throwaway counter). On return, `data`
/// holds `after` again regardless of the outcome, so the canonical in-order
/// semantics of the executor are preserved.
template <typename T, typename RunItem>
std::optional<Finding> check_schedule_independence(std::span<T> data,
                                                   std::span<const T> before,
                                                   std::span<const T> after,
                                                   std::uint64_t n_items, RunItem&& run_item,
                                                   std::uint64_t seed,
                                                   std::string_view launch_label) {
    trace::count(trace::counters().validation_reexecutions);
    std::vector<std::uint64_t> order(n_items);
    std::iota(order.begin(), order.end(), 0);
    std::mt19937_64 eng(seed * 0x9e3779b97f4a7c15ull + 1);
    for (std::uint64_t i = n_items; i > 1; --i) {
        const std::uint64_t j = eng() % i;
        std::swap(order[i - 1], order[j]);
    }

    std::copy(before.begin(), before.end(), data.begin());
    for (std::uint64_t j : order) run_item(j);

    std::optional<Finding> finding;
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (!(data[i] == after[i])) {
            Finding f;
            f.kind = FindingKind::kOrderDependent;
            f.severity = Severity::kError;
            f.launch = std::string(launch_label);
            f.address = i;
            std::ostringstream os;
            os << "permuting the work-item execution order changed the output (first "
                  "divergence at word "
               << i
               << ") — the kernel reads state other items write, or combines in an "
                  "order-sensitive way the race detector's address granularity cannot see";
            f.detail = os.str();
            finding = std::move(f);
            break;
        }
    }
    // Restore the canonical in-order result.
    std::copy(after.begin(), after.end(), data.begin());
    return finding;
}

}  // namespace hpu::analysis
