#include "analysis/residency.hpp"

#include <sstream>

namespace hpu::analysis {

namespace {

Finding make(FindingKind kind, Severity sev, std::string_view label, std::size_t event_index,
             std::string_view what) {
    Finding f;
    f.kind = kind;
    f.severity = sev;
    f.launch = std::string(label);
    std::ostringstream os;
    os << "event #" << event_index << ": " << what;
    f.detail = os.str();
    return f;
}

bool full_range(const sim::BufferEvent& e) { return e.offset == 0 && e.count == e.size; }

}  // namespace

void lint_residency(std::span<const sim::BufferEvent> log, std::string_view buffer_label,
                    AnalysisReport& report) {
    for (std::size_t i = 0; i < log.size(); ++i) {
        const sim::BufferEvent& e = log[i];
        switch (e.op) {
            case sim::BufferOp::kHostRead:
                if (!e.host_valid_before) {
                    report.add(make(FindingKind::kStaleHostRead, Severity::kError,
                                    buffer_label, i,
                                    "host_view() read while the device copy is newer — "
                                    "copy_to_host() first"));
                }
                break;
            case sim::BufferOp::kHostMut:
                if (!e.host_valid_before) {
                    report.add(make(FindingKind::kStaleHostWrite, Severity::kWarning,
                                    buffer_label, i,
                                    "host() write over a stale host copy — device-side "
                                    "results will be lost unless copy_to_host() runs first"));
                }
                if (e.device_valid_before) {
                    report.add(make(FindingKind::kHostWriteWhileDeviceLive, Severity::kWarning,
                                    buffer_label, i,
                                    "host() acquired while a device copy is live — this "
                                    "invalidates the device copy; use host_view() for "
                                    "read-only access"));
                }
                break;
            case sim::BufferOp::kCopyToDevice:
                if (e.device_valid_before && full_range(e)) {
                    report.add(make(FindingKind::kRedundantTransfer, Severity::kWarning,
                                    buffer_label, i,
                                    "full copy_to_device() but the device copy is already "
                                    "valid — the transfer moves words the device has"));
                }
                break;
            case sim::BufferOp::kCopyToHost:
                if (e.host_valid_before && full_range(e)) {
                    report.add(make(FindingKind::kRedundantTransfer, Severity::kWarning,
                                    buffer_label, i,
                                    "full copy_to_host() but the host copy is already "
                                    "valid — the transfer moves words the host has"));
                }
                break;
            case sim::BufferOp::kDeviceMut:
            case sim::BufferOp::kDeviceRead:
                // Invalid device access throws in DeviceBuffer itself; the
                // events only matter as context for the host-side rules.
                break;
        }
    }
}

}  // namespace hpu::analysis
