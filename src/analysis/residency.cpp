#include "analysis/residency.hpp"

#include <sstream>

namespace hpu::analysis {

namespace {

Finding make(FindingKind kind, Severity sev, std::string_view label, std::size_t event_index,
             std::string_view what) {
    Finding f;
    f.kind = kind;
    f.severity = sev;
    f.launch = std::string(label);
    std::ostringstream os;
    os << "event #" << event_index << ": " << what;
    f.detail = os.str();
    return f;
}

bool full_range(const sim::BufferEvent& e) { return e.offset == 0 && e.count == e.size; }

bool overlaps(const sim::BufferEvent& a, const sim::BufferEvent& b) {
    return a.offset < b.offset + b.count && b.offset < a.offset + a.count;
}

/// An in-flight chunk: a timed host→device copy whose words only become
/// usable on the device at `ready`.
struct InFlight {
    std::size_t event_index;
    const sim::BufferEvent* copy;
};

void check_in_flight(const std::vector<InFlight>& streamed, const sim::BufferEvent& access,
                     std::size_t access_index, std::string_view label,
                     AnalysisReport& report) {
    if (!access.timed() || access.count == 0) return;
    for (const InFlight& f : streamed) {
        if (!overlaps(*f.copy, access)) continue;
        if (f.copy->ready > access.start) {
            std::ostringstream os;
            os << "kernel touches [" << access.offset << ", " << access.offset + access.count
               << ") at tick " << access.start << " but the streamed chunk ["
               << f.copy->offset << ", " << f.copy->offset + f.copy->count
               << ") (event #" << f.event_index << ") only arrives at tick "
               << f.copy->ready << " — sequence the launch on the chunk's Event";
            report.add(make(FindingKind::kInFlightRead, Severity::kError, label,
                            access_index, os.str()));
        }
    }
}

}  // namespace

void lint_residency(std::span<const sim::BufferEvent> log, std::string_view buffer_label,
                    AnalysisReport& report) {
    // Streamed host→device chunks seen so far, for the in-flight rule. A
    // later streamed copy of the same range supersedes the earlier one.
    std::vector<InFlight> streamed;
    for (std::size_t i = 0; i < log.size(); ++i) {
        const sim::BufferEvent& e = log[i];
        if (e.op == sim::BufferOp::kCopyToDevice && e.timed()) {
            std::erase_if(streamed, [&](const InFlight& f) {
                return f.copy->offset == e.offset && f.copy->count == e.count;
            });
            streamed.push_back({i, &e});
        }
        if (e.op == sim::BufferOp::kDeviceMut || e.op == sim::BufferOp::kDeviceRead) {
            check_in_flight(streamed, e, i, buffer_label, report);
        }
        switch (e.op) {
            case sim::BufferOp::kHostRead:
                if (!e.host_valid_before) {
                    report.add(make(FindingKind::kStaleHostRead, Severity::kError,
                                    buffer_label, i,
                                    "host_view() read while the device copy is newer — "
                                    "copy_to_host() first"));
                }
                break;
            case sim::BufferOp::kHostMut:
                if (!e.host_valid_before) {
                    report.add(make(FindingKind::kStaleHostWrite, Severity::kWarning,
                                    buffer_label, i,
                                    "host() write over a stale host copy — device-side "
                                    "results will be lost unless copy_to_host() runs first"));
                }
                if (e.device_valid_before) {
                    report.add(make(FindingKind::kHostWriteWhileDeviceLive, Severity::kWarning,
                                    buffer_label, i,
                                    "host() acquired while a device copy is live — this "
                                    "invalidates the device copy; use host_view() for "
                                    "read-only access"));
                }
                break;
            case sim::BufferOp::kCopyToDevice:
                if (e.device_valid_before && full_range(e)) {
                    report.add(make(FindingKind::kRedundantTransfer, Severity::kWarning,
                                    buffer_label, i,
                                    "full copy_to_device() but the device copy is already "
                                    "valid — the transfer moves words the device has"));
                }
                break;
            case sim::BufferOp::kCopyToHost:
                if (e.host_valid_before && full_range(e)) {
                    report.add(make(FindingKind::kRedundantTransfer, Severity::kWarning,
                                    buffer_label, i,
                                    "full copy_to_host() but the host copy is already "
                                    "valid — the transfer moves words the host has"));
                }
                break;
            case sim::BufferOp::kDeviceMut:
            case sim::BufferOp::kDeviceRead:
                // Invalid device access throws in DeviceBuffer itself; the
                // events only matter as context for the host-side rules.
                break;
        }
    }
}

}  // namespace hpu::analysis
