// The two experimental platforms of the paper (Tables 1 and 2), expressed
// as HpuParams for the simulator, plus generic lookup.
//
//   HPU1: Intel Core 2 Extreme Q6850 (4 cores @ 3.00 GHz, 8 MB LLC)
//         + ATI Radeon HD 5970        → p = 4, g = 4096, γ⁻¹ = 160
//   HPU2: AMD A6-3650 APU (4 cores @ 2.6 GHz, 4 MB LLC)
//         + integrated ATI Radeon HD 6530D → p = 4, g = 1200, γ⁻¹ = 65
#pragma once

#include <string>
#include <vector>

#include "sim/params.hpp"

namespace hpu::platforms {

/// Descriptive record for Table 1.
struct PlatformSpec {
    std::string name;
    std::string cpu_desc;
    std::string gpu_desc;
    sim::HpuParams params;
};

/// HPU1 parameters (Table 2 row 1).
sim::HpuParams hpu1();

/// HPU2 parameters (Table 2 row 2).
sim::HpuParams hpu2();

/// Both platforms with their Table 1 descriptions.
const std::vector<PlatformSpec>& all();

/// Lookup by name ("HPU1" / "HPU2", case-sensitive); throws HpuError if
/// unknown.
const PlatformSpec& by_name(const std::string& name);

}  // namespace hpu::platforms
