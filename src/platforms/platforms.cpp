#include "platforms/platforms.hpp"

#include "util/check.hpp"

namespace hpu::platforms {

namespace {

sim::HpuParams make(const std::string& name, std::size_t p, std::uint64_t llc_bytes,
                    std::uint64_t g, double gamma_inv) {
    sim::HpuParams h;
    h.name = name;
    h.cpu.p = p;
    h.cpu.llc_bytes = llc_bytes;
    h.cpu.contention = 0.0;  // enabled explicitly by benches modeling Fig. 8
    h.gpu.g = g;
    h.gpu.gamma = 1.0 / gamma_inv;
    h.gpu.coalesce_width = 16;
    h.gpu.strided_penalty = 16.0;
    // The paper keeps λ and δ implicit but minimizes transfer count; we give
    // the link a nominal affine cost so transfer events are visible on the
    // timeline without dominating. δ = 1: a PCIe-2-class link moves a
    // 4-byte word in about one normalized CPU op on these platforms.
    h.link.lambda = 1000.0;
    h.link.delta = 1.0;
    return h;
}

}  // namespace

sim::HpuParams hpu1() { return make("HPU1", 4, 8ull << 20, 4096, 160.0); }

sim::HpuParams hpu2() { return make("HPU2", 4, 4ull << 20, 1200, 65.0); }

const std::vector<PlatformSpec>& all() {
    static const std::vector<PlatformSpec> specs = {
        PlatformSpec{"HPU1", "Intel Core 2 Extreme Q6850, 4 cores @ 3.00 GHz, 8 MB cache",
                     "ATI Radeon HD 5970", hpu1()},
        PlatformSpec{"HPU2", "AMD A6-3650 APU, 4 cores @ 2.6 GHz, 4 MB cache",
                     "ATI Radeon HD 6530D (integrated)", hpu2()},
    };
    return specs;
}

const PlatformSpec& by_name(const std::string& name) {
    for (const auto& s : all()) {
        if (s.name == name) return s;
    }
    throw util::HpuError("unknown platform: " + name);
}

}  // namespace hpu::platforms
