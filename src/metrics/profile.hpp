// The dual-clock profile: joins the wall-clock attribution that
// ExecOptions::profile stamps onto trace spans with the virtual-clock
// durations the same spans already carry, plus the ThreadPool's wall
// telemetry (DESIGN.md §11).
//
// Attribution model: wall-annotated spans hang directly under a run or
// phase span and never nest within each other (levels, leaf sweeps, hooks
// and host pre-passes are siblings), so summing them per bucket never
// double-counts. Each annotated span is bucketed under its nearest kPhase
// ancestor's label — "(direct)" for executors that have no phases — and
// buckets are grouped per run root, so one session holding several
// executor runs yields one ExecutorProfile each.
//
// The ratio of interest per bucket is wall ns per virtual tick: a bucket
// whose ratio is far above its siblings' is where the functional host
// execution is slow relative to what the cost model charges for it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/params.hpp"
#include "trace/span.hpp"
#include "util/thread_pool.hpp"

namespace hpu::metrics {

/// One attribution bucket: all wall-annotated spans of one run that share
/// a kPhase ancestor (or have none — label "(direct)").
struct PhaseProfile {
    std::string label;
    std::size_t spans = 0;           ///< annotated spans in this bucket
    sim::Ticks virtual_ticks = 0.0;  ///< summed virtual durations
    std::uint64_t wall_ns = 0;       ///< summed wall durations
    /// wall_ns / virtual_ticks (0 when no virtual time was charged).
    double ns_per_tick = 0.0;
};

/// One executor invocation (a run root span) and its phase breakdown.
struct ExecutorProfile {
    std::string label;               ///< run root label (executor name)
    sim::Ticks virtual_ticks = 0.0;  ///< run span virtual duration
    std::uint64_t wall_ns = 0;       ///< run span wall duration
    /// Wall ns covered by the phase buckets; the gap to wall_ns is
    /// unattributed host bookkeeping between spans.
    std::uint64_t attributed_wall_ns = 0;
    std::vector<PhaseProfile> phases;
};

/// ThreadPool wall telemetry folded into the report (present only when a
/// PoolTelemetry snapshot was supplied).
struct PoolProfile {
    bool present = false;
    std::size_t workers = 0;
    std::uint64_t window_ns = 0;
    std::uint64_t busy_ns = 0;   ///< summed worker busy (caller excluded)
    std::uint64_t idle_ns = 0;   ///< summed worker idle
    std::uint64_t batches = 0;
    std::uint64_t chunks = 0;    ///< all participants, caller included
    /// Worker busy / (workers × window), clamped to (0, 1]. 1.0 when there
    /// is nothing to measure (no workers, or no work ran in the window) —
    /// an inline pool is vacuously efficient.
    double host_efficiency = 1.0;
    /// 1 − accounted_share: the slice of worker wall time explained by
    /// neither busy nor idle (claim loop, completion bookkeeping).
    double overhead_share = 0.0;
    /// Submit→first-claim latency quantiles (ns) over the window, estimated
    /// from the pool's log₂ histogram. 0 when no batches ran.
    double submit_p50_ns = 0.0;
    double submit_p90_ns = 0.0;
    double submit_p99_ns = 0.0;
};

struct ProfileReport {
    std::vector<ExecutorProfile> executors;
    PoolProfile pool;
    /// Earliest annotated wall start (raw now_ns; spans in exports are
    /// rebased against this).
    std::uint64_t wall_epoch_ns = 0;
    std::uint64_t total_wall_ns = 0;    ///< summed run-root wall
    sim::Ticks total_virtual = 0.0;     ///< summed run-root virtual

    /// Aligned per-executor phase tables plus the pool summary line.
    void print(std::ostream& os) const;
};

/// Derives the report from a profiled session (spans with wall_ns == 0 are
/// ignored, so an unprofiled session yields empty executors). Pass the
/// pool's telemetry() to fold host-efficiency numbers in.
ProfileReport derive_profile(const trace::TraceSession& session,
                             const util::PoolTelemetry* pool = nullptr);

/// JSON export of the report (schema: executors[], pool{}, totals).
void export_profile_json(const ProfileReport& report, std::ostream& os);
bool write_profile_json_file(const ProfileReport& report, const std::string& path);

}  // namespace hpu::metrics
