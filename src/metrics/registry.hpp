// hpu::metrics — the wall-clock metrics layer (DESIGN.md §11).
//
// The registry holds named counter / gauge / histogram instruments with a
// lock-free hot path: registration (by name, on a mutex) returns a stable
// reference, and every subsequent increment / set / record is a relaxed
// atomic on that reference. This complements the two existing stores:
//
//   trace::counters()   — fixed process-wide monotonic counters maintained
//                         by the simulator (virtual-clock side);
//   metrics::registry() — open-ended named instruments for the wall-clock
//                         side (pool telemetry, profiler, benches).
//
// Snapshots are plain data; the exporters in metrics/export.hpp serialize
// a snapshot as Prometheus text format or JSON. publish_* helpers mirror
// the ThreadPool telemetry and the trace counter registry into metric
// instruments so one scrape covers both clocks.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "trace/counters.hpp"
#include "util/histogram.hpp"
#include "util/thread_pool.hpp"

namespace hpu::metrics {

/// Monotonic counter. Relaxed ordering: statistics, not synchronization.
class Counter {
public:
    void inc(std::uint64_t by = 1) noexcept { v_.fetch_add(by, std::memory_order_relaxed); }
    std::uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
    void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> v_{0};
};

/// Last-value gauge holding a double (stored as bits in an atomic word so
/// set/value stay lock-free).
class Gauge {
public:
    void set(double v) noexcept {
        bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
    }
    double value() const noexcept {
        return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
    }

private:
    std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

using Histogram = util::Log2Histogram;

/// Plain-data copy of every instrument at one instant, ready to export.
struct RegistrySnapshot {
    struct CounterValue {
        std::string name;
        std::string help;
        std::uint64_t value = 0;
    };
    struct GaugeValue {
        std::string name;
        std::string help;
        double value = 0.0;
    };
    struct HistogramValue {
        std::string name;
        std::string help;
        util::HistogramSnapshot hist;
    };
    std::vector<CounterValue> counters;
    std::vector<GaugeValue> gauges;
    std::vector<HistogramValue> histograms;
};

/// Named-instrument registry. Instrument names must match the Prometheus
/// charset [a-zA-Z_][a-zA-Z0-9_]* (checked at registration); re-registering
/// a name returns the same instrument (the help string of the first
/// registration wins). References stay valid for the registry's lifetime.
class Registry {
public:
    Counter& counter(const std::string& name, const std::string& help = "");
    Gauge& gauge(const std::string& name, const std::string& help = "");
    Histogram& histogram(const std::string& name, const std::string& help = "");

    RegistrySnapshot snapshot() const;

    /// Drops every instrument (references die with them). Test helper.
    void clear();

private:
    template <typename T>
    struct Named {
        std::string help;
        std::unique_ptr<T> instrument;
    };

    mutable std::mutex mu_;
    std::map<std::string, Named<Counter>> counters_;
    std::map<std::string, Named<Gauge>> gauges_;
    std::map<std::string, Named<Histogram>> histograms_;
};

/// The process-wide registry (benches and CI scrape this one; tests build
/// their own local Registry instances).
Registry& registry();

/// Appends a ThreadPool telemetry snapshot to `snap` under the hpu_pool_*
/// namespace: busy/idle/window counters (ns), workers / utilization /
/// accounted-share gauges, and the claim-size and submit-to-start-latency
/// histograms. Pool telemetry arrives as a snapshot, so it is merged into
/// the export-side snapshot rather than into live instruments.
void publish_pool(RegistrySnapshot& snap, const util::PoolTelemetry& pool);

/// Appends the virtual-clock counter registry (a trace::counters()
/// snapshot) to `snap` under the hpu_sim_* namespace, so one scrape covers
/// both clocks.
void publish_counters(RegistrySnapshot& snap, const trace::CounterSnapshot& sim);

}  // namespace hpu::metrics
