#include "metrics/profile.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>

#include "obs/estimate.hpp"
#include "util/table.hpp"

namespace hpu::metrics {

namespace {

using trace::Span;
using trace::SpanId;
using trace::SpanKind;
using trace::TraceSession;

/// Nearest kPhase ancestor of `s` (kNoSpan when the span hangs directly
/// off its run root).
SpanId phase_ancestor(const TraceSession& session, const Span& s) {
    for (SpanId p = s.parent; p != trace::kNoSpan; p = session.span(p).parent) {
        const Span& anc = session.span(p);
        if (anc.kind == SpanKind::kPhase) return p;
        if (anc.kind == SpanKind::kRun) return trace::kNoSpan;
    }
    return trace::kNoSpan;
}

SpanId run_root(const TraceSession& session, const Span& s) {
    SpanId id = s.id;
    while (session.span(id).parent != trace::kNoSpan) id = session.span(id).parent;
    return id;
}

}  // namespace

ProfileReport derive_profile(const TraceSession& session,
                             const util::PoolTelemetry* pool) {
    ProfileReport r;

    // Bucket wall-annotated non-root spans by (run root, phase label), in
    // first-seen order so the report reads in execution order.
    std::map<SpanId, std::size_t> exec_of;       // run root -> executors index
    std::map<std::pair<SpanId, std::string>, std::size_t> bucket_of;
    std::uint64_t epoch = std::numeric_limits<std::uint64_t>::max();

    for (const Span& s : session.spans()) {
        if (s.wall_ns == 0) continue;
        // Phase spans group their children; counting both would double the
        // bucket (executors only annotate leaves-of-attribution, but stay
        // robust to future annotators).
        if (s.kind == SpanKind::kPhase) continue;
        epoch = std::min(epoch, s.wall_start_ns);
        const SpanId root = run_root(session, s);
        auto [eit, fresh] = exec_of.try_emplace(root, r.executors.size());
        if (fresh) {
            const Span& rs = session.span(root);
            ExecutorProfile ep;
            ep.label = rs.label;
            ep.virtual_ticks = rs.duration();
            r.executors.push_back(std::move(ep));
        }
        ExecutorProfile& ep = r.executors[eit->second];
        if (s.id == root) {
            ep.wall_ns = s.wall_ns;
            continue;
        }
        const SpanId phase = phase_ancestor(session, s);
        const std::string label =
            phase == trace::kNoSpan ? "(direct)" : session.span(phase).label;
        auto [bit, new_bucket] =
            bucket_of.try_emplace({root, label}, ep.phases.size());
        if (new_bucket) {
            PhaseProfile pp;
            pp.label = label;
            ep.phases.push_back(std::move(pp));
        }
        PhaseProfile& pp = ep.phases[bit->second];
        pp.spans += 1;
        pp.virtual_ticks += s.duration();
        pp.wall_ns += s.wall_ns;
        ep.attributed_wall_ns += s.wall_ns;
    }

    if (epoch != std::numeric_limits<std::uint64_t>::max()) r.wall_epoch_ns = epoch;
    for (ExecutorProfile& ep : r.executors) {
        for (PhaseProfile& pp : ep.phases) {
            pp.ns_per_tick =
                obs::drift_ratio(static_cast<double>(pp.wall_ns), pp.virtual_ticks);
        }
        r.total_wall_ns += ep.wall_ns;
        r.total_virtual += ep.virtual_ticks;
    }

    if (pool != nullptr) {
        PoolProfile& pp = r.pool;
        pp.present = true;
        pp.workers = pool->workers;
        pp.window_ns = pool->window_ns;
        pp.busy_ns = pool->worker_busy_ns();
        pp.idle_ns = pool->worker_idle_ns();
        pp.batches = pool->batches;
        for (const auto& w : pool->per_worker) pp.chunks += w.chunks;
        const double denom = static_cast<double>(pp.workers) *
                             static_cast<double>(pp.window_ns);
        if (pp.workers > 0 && pp.window_ns > 0 && pp.busy_ns > 0) {
            pp.host_efficiency =
                std::min(1.0, static_cast<double>(pp.busy_ns) / denom);
        }
        pp.overhead_share = std::max(0.0, 1.0 - pool->accounted_share());
        pp.submit_p50_ns = pool->submit_latency_ns.p50();
        pp.submit_p90_ns = pool->submit_latency_ns.p90();
        pp.submit_p99_ns = pool->submit_latency_ns.p99();
    }
    return r;
}

void ProfileReport::print(std::ostream& os) const {
    if (executors.empty()) {
        os << "profile: no wall-annotated spans (run with ExecOptions::profile)\n";
        return;
    }
    for (const ExecutorProfile& ep : executors) {
        os << ep.label << ": virtual " << ep.virtual_ticks << " ticks, wall "
           << ep.wall_ns << " ns (" << ep.attributed_wall_ns << " ns attributed)\n";
        util::Table t({"phase", "spans", "virtual", "wall_ns", "ns/tick"});
        for (const PhaseProfile& pp : ep.phases) {
            t.add_row({pp.label, static_cast<std::int64_t>(pp.spans), pp.virtual_ticks,
                       static_cast<std::int64_t>(pp.wall_ns), pp.ns_per_tick});
        }
        t.print(os);
    }
    if (pool.present) {
        os << "pool: " << pool.workers << " workers, " << pool.batches << " batches, "
           << pool.chunks << " chunks | busy " << pool.busy_ns << " ns, idle "
           << pool.idle_ns << " ns over " << pool.window_ns
           << " ns window | host efficiency " << pool.host_efficiency
           << ", overhead share " << pool.overhead_share
           << " | submit latency p50/p90/p99 " << pool.submit_p50_ns << "/"
           << pool.submit_p90_ns << "/" << pool.submit_p99_ns << " ns\n";
    }
}

void export_profile_json(const ProfileReport& report, std::ostream& os) {
    const auto prec = os.precision(std::numeric_limits<double>::max_digits10);
    os << "{\"executors\":[";
    bool first_e = true;
    for (const ExecutorProfile& ep : report.executors) {
        if (!first_e) os << ",";
        first_e = false;
        os << "{\"label\":\"" << ep.label << "\",\"virtual_ticks\":" << ep.virtual_ticks
           << ",\"wall_ns\":" << ep.wall_ns
           << ",\"attributed_wall_ns\":" << ep.attributed_wall_ns << ",\"phases\":[";
        bool first_p = true;
        for (const PhaseProfile& pp : ep.phases) {
            if (!first_p) os << ",";
            first_p = false;
            os << "{\"label\":\"" << pp.label << "\",\"spans\":" << pp.spans
               << ",\"virtual_ticks\":" << pp.virtual_ticks
               << ",\"wall_ns\":" << pp.wall_ns << ",\"ns_per_tick\":" << pp.ns_per_tick
               << "}";
        }
        os << "]}";
    }
    os << "],\"pool\":";
    if (report.pool.present) {
        const PoolProfile& pp = report.pool;
        os << "{\"workers\":" << pp.workers << ",\"window_ns\":" << pp.window_ns
           << ",\"busy_ns\":" << pp.busy_ns << ",\"idle_ns\":" << pp.idle_ns
           << ",\"batches\":" << pp.batches << ",\"chunks\":" << pp.chunks
           << ",\"host_efficiency\":" << pp.host_efficiency
           << ",\"overhead_share\":" << pp.overhead_share
           << ",\"submit_p50_ns\":" << pp.submit_p50_ns
           << ",\"submit_p90_ns\":" << pp.submit_p90_ns
           << ",\"submit_p99_ns\":" << pp.submit_p99_ns << "}";
    } else {
        os << "null";
    }
    os << ",\"total_wall_ns\":" << report.total_wall_ns
       << ",\"total_virtual_ticks\":" << report.total_virtual << "}\n";
    os.precision(prec);
}

bool write_profile_json_file(const ProfileReport& report, const std::string& path) {
    std::ofstream f(path);
    if (!f) return false;
    export_profile_json(report, f);
    return static_cast<bool>(f);
}

}  // namespace hpu::metrics
