#include "metrics/registry.hpp"

#include "util/check.hpp"

namespace hpu::metrics {

namespace {

bool valid_metric_name(const std::string& name) {
    if (name.empty()) return false;
    auto word = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    };
    if (!word(name.front())) return false;
    for (char c : name) {
        if (!word(c) && !(c >= '0' && c <= '9')) return false;
    }
    return true;
}

template <typename T, typename Map>
T& get_or_register(Map& map, const std::string& name, const std::string& help) {
    HPU_CHECK(valid_metric_name(name), "metric name must match [a-zA-Z_][a-zA-Z0-9_]*");
    auto it = map.find(name);
    if (it == map.end()) {
        it = map.emplace(name, typename Map::mapped_type{help, std::make_unique<T>()}).first;
    }
    return *it->second.instrument;
}

}  // namespace

Counter& Registry::counter(const std::string& name, const std::string& help) {
    std::lock_guard lock(mu_);
    return get_or_register<Counter>(counters_, name, help);
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
    std::lock_guard lock(mu_);
    return get_or_register<Gauge>(gauges_, name, help);
}

Histogram& Registry::histogram(const std::string& name, const std::string& help) {
    std::lock_guard lock(mu_);
    return get_or_register<Histogram>(histograms_, name, help);
}

RegistrySnapshot Registry::snapshot() const {
    std::lock_guard lock(mu_);
    RegistrySnapshot s;
    s.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
        s.counters.push_back({name, c.help, c.instrument->value()});
    }
    s.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) {
        s.gauges.push_back({name, g.help, g.instrument->value()});
    }
    s.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
        s.histograms.push_back({name, h.help, h.instrument->snapshot()});
    }
    return s;
}

void Registry::clear() {
    std::lock_guard lock(mu_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

Registry& registry() {
    static Registry reg;
    return reg;
}

void publish_pool(RegistrySnapshot& snap, const util::PoolTelemetry& pool) {
    snap.gauges.push_back({"hpu_pool_workers", "worker threads of the functional pool",
                           static_cast<double>(pool.workers)});
    snap.counters.push_back(
        {"hpu_pool_window_ns_total", "wall ns covered by the telemetry window",
         pool.window_ns});
    snap.counters.push_back({"hpu_pool_batches_total",
                             "parallel_for submissions in the window", pool.batches});
    snap.counters.push_back({"hpu_pool_worker_busy_ns_total",
                             "summed wall ns workers spent executing claimed chunks",
                             pool.worker_busy_ns()});
    snap.counters.push_back({"hpu_pool_worker_idle_ns_total",
                             "summed wall ns workers spent waiting for work",
                             pool.worker_idle_ns()});
    std::uint64_t chunks = 0;
    for (const auto& w : pool.per_worker) chunks += w.chunks;
    snap.counters.push_back(
        {"hpu_pool_chunks_claimed_total",
         "chunks claimed and executed by all participants (caller included)", chunks});
    const double denom =
        static_cast<double>(pool.workers) * static_cast<double>(pool.window_ns);
    snap.gauges.push_back(
        {"hpu_pool_worker_utilization",
         "worker busy ns / (workers x window ns)",
         denom > 0.0 ? static_cast<double>(pool.worker_busy_ns()) / denom : 0.0});
    snap.gauges.push_back({"hpu_pool_accounted_share",
                           "(worker busy + idle) / (workers x window); the gap is pool "
                           "overhead",
                           pool.accounted_share()});
    snap.histograms.push_back({"hpu_pool_claim_size_indices",
                               "indices per executed chunk claim", pool.claim_size});
    snap.histograms.push_back({"hpu_pool_submit_latency_ns",
                               "batch submission to a participant's first claim",
                               pool.submit_latency_ns});
}

void publish_counters(RegistrySnapshot& snap, const trace::CounterSnapshot& sim) {
    const struct {
        const char* name;
        const char* help;
        std::uint64_t value;
    } rows[] = {
        {"hpu_sim_kernel_launches_total", "Device::launch calls", sim.kernel_launches},
        {"hpu_sim_waves_launched_total", "SIMT waves across all launches",
         sim.waves_launched},
        {"hpu_sim_work_items_total", "work-items executed on the device", sim.work_items},
        {"hpu_sim_cpu_levels_total", "CpuUnit::run_level calls", sim.cpu_levels},
        {"hpu_sim_transfers_total", "DeviceBuffer copies (either way)", sim.transfers},
        {"hpu_sim_words_transferred_total", "words moved across the link",
         sim.words_transferred},
        {"hpu_sim_coalesced_transactions_total", "memory transactions, coalesced",
         sim.coalesced_transactions},
        {"hpu_sim_strided_transactions_total", "memory transactions, strided",
         sim.strided_transactions},
        {"hpu_sim_validation_reexecutions_total", "schedule-independence re-runs",
         sim.validation_reexecutions},
    };
    for (const auto& r : rows) snap.counters.push_back({r.name, r.help, r.value});
}

}  // namespace hpu::metrics
