// Serializers of a RegistrySnapshot: Prometheus text exposition format
// (scrape-ready; linted in CI by tools/check_prom.py) and a JSON mirror for
// ad-hoc tooling. Log2Histogram bucket i holds values <= 2^i - 1, which is
// exactly a cumulative Prometheus bucket with le="2^i - 1"; buckets above
// the highest non-empty one are elided (the +Inf bucket always closes the
// series).
#pragma once

#include <iosfwd>
#include <string>

#include "metrics/registry.hpp"

namespace hpu::metrics {

/// Prometheus text format, version 0.0.4: # HELP / # TYPE comment pairs,
/// then the samples. Histograms expand to _bucket{le="..."} / _sum /
/// _count series with cumulative counts.
void export_prometheus(const RegistrySnapshot& snap, std::ostream& os);

/// JSON object {"counters":{...},"gauges":{...},"histograms":{...}} with
/// the same data (histograms keep their per-bucket counts plus
/// count/sum/min/max).
void export_json(const RegistrySnapshot& snap, std::ostream& os);

bool write_prometheus_file(const RegistrySnapshot& snap, const std::string& path);
bool write_json_file(const RegistrySnapshot& snap, const std::string& path);

}  // namespace hpu::metrics
