#include "metrics/export.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>

namespace hpu::metrics {

namespace {

/// Escapes a string for a Prometheus HELP line / JSON literal (the shared
/// subset: backslash, quote, newline).
std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '\\': out += "\\\\"; break;
            case '"': out += "\\\""; break;
            case '\n': out += "\\n"; break;
            default: out += c;
        }
    }
    return out;
}

void write_number(std::ostream& os, double v) {
    if (std::isnan(v)) {
        os << "NaN";
    } else if (std::isinf(v)) {
        os << (v > 0 ? "+Inf" : "-Inf");
    } else {
        const auto prec = os.precision(std::numeric_limits<double>::max_digits10);
        os << v;
        os.precision(prec);
    }
}

/// Index of the last non-empty bucket (0 when all are empty), so the
/// exposition stops after the data instead of emitting 64 series.
std::size_t last_used_bucket(const util::HistogramSnapshot& h) {
    std::size_t last = 0;
    for (std::size_t i = 0; i < util::HistogramSnapshot::kBuckets; ++i) {
        if (h.buckets[i] != 0) last = i;
    }
    return last;
}

/// le bound of bucket i: bucket i holds values <= 2^i - 1 exactly.
std::uint64_t le_bound(std::size_t i) {
    return i >= 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
}

void prom_histogram(std::ostream& os, const RegistrySnapshot::HistogramValue& h) {
    os << "# HELP " << h.name << " " << escape(h.help) << "\n";
    os << "# TYPE " << h.name << " histogram\n";
    const std::size_t last = last_used_bucket(h.hist);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i <= last; ++i) {
        cum += h.hist.buckets[i];
        os << h.name << "_bucket{le=\"" << le_bound(i) << "\"} " << cum << "\n";
    }
    os << h.name << "_bucket{le=\"+Inf\"} " << h.hist.count << "\n";
    os << h.name << "_sum " << h.hist.sum << "\n";
    os << h.name << "_count " << h.hist.count << "\n";
}

void json_histogram(std::ostream& os, const util::HistogramSnapshot& h) {
    os << "{\"count\":" << h.count << ",\"sum\":" << h.sum << ",\"min\":" << h.min
       << ",\"max\":" << h.max << ",\"mean\":";
    write_number(os, h.mean());
    os << ",\"buckets\":[";
    const std::size_t last = last_used_bucket(h);
    for (std::size_t i = 0; i <= last; ++i) {
        if (i != 0) os << ",";
        os << "{\"le\":" << le_bound(i) << ",\"count\":" << h.buckets[i] << "}";
    }
    os << "]}";
}

}  // namespace

void export_prometheus(const RegistrySnapshot& snap, std::ostream& os) {
    for (const auto& c : snap.counters) {
        os << "# HELP " << c.name << " " << escape(c.help) << "\n";
        os << "# TYPE " << c.name << " counter\n";
        os << c.name << " " << c.value << "\n";
    }
    for (const auto& g : snap.gauges) {
        os << "# HELP " << g.name << " " << escape(g.help) << "\n";
        os << "# TYPE " << g.name << " gauge\n";
        os << g.name << " ";
        write_number(os, g.value);
        os << "\n";
    }
    for (const auto& h : snap.histograms) prom_histogram(os, h);
}

void export_json(const RegistrySnapshot& snap, std::ostream& os) {
    os << "{\"counters\":{";
    bool first = true;
    for (const auto& c : snap.counters) {
        if (!first) os << ",";
        first = false;
        os << "\"" << escape(c.name) << "\":" << c.value;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto& g : snap.gauges) {
        if (!first) os << ",";
        first = false;
        os << "\"" << escape(g.name) << "\":";
        // JSON has no Inf/NaN literals; a gauge that is not finite exports
        // as null.
        if (std::isfinite(g.value)) {
            write_number(os, g.value);
        } else {
            os << "null";
        }
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto& h : snap.histograms) {
        if (!first) os << ",";
        first = false;
        os << "\"" << escape(h.name) << "\":";
        json_histogram(os, h.hist);
    }
    os << "}}\n";
}

bool write_prometheus_file(const RegistrySnapshot& snap, const std::string& path) {
    std::ofstream f(path);
    if (!f) return false;
    export_prometheus(snap, f);
    return static_cast<bool>(f);
}

bool write_json_file(const RegistrySnapshot& snap, const std::string& path) {
    std::ofstream f(path);
    if (!f) return false;
    export_json(snap, f);
    return static_cast<bool>(f);
}

}  // namespace hpu::metrics
