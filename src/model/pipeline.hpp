// Predicted makespan of the pipelined advanced schedule (DESIGN.md §9).
//
// The pipelined hybrid splits the advanced schedule's two bulk transfers
// into K chunks and overlaps them with wave execution. Its GPU thread is a
// K-step max-algebra recurrence on the virtual clock:
//
//   in_c   = (c+1)·(λ + δ·w)                      (eager input stream)
//   comp_c = max(in_c, comp_{c-1}) + C_chunk      (chunk-local deep levels)
//   tail   = comp_{K-1} + C_shallow               (merged shallow levels)
//   span   = tail + λ + δ·W          (monolithic out; chunked when d = y)
//
// with w = W/K the chunk payload, C_chunk the chunk's leaves + saturated
// deep levels (a β/K share priced by AdvancedModel::gpu_time_for_share),
// and C_shallow the merged shallow levels below the saturation boundary d.
// In steady state the input stream is effectively free as long as
// compute dominates: the effective cost of a phase is
//
//   max(λ·K + δ·W, compute)  +  edge effects (fill λ + δ·w, drain C_chunk)
//
// which is the closed form the recurrence converges to. At K = 1 the
// recurrence degenerates to λ + δ·W + T_g + λ + δ·W — exactly the
// advanced schedule — so pipeline_gain reads directly as the overlap win.
#pragma once

#include <cstdint>

#include "model/advanced.hpp"

namespace hpu::model {

/// Everything the pipelined predictor derives for one (α, y, K) point.
struct PipelinedPrediction {
    double alpha = 0.0;
    double y = 0.0;
    std::uint64_t chunks = 0;        ///< requested K
    std::uint64_t chunks_effective = 0;  ///< K after the no-win fallback
    double chunk_words = 0.0;        ///< w = (1−α)·n / K
    double chunk_compute = 0.0;      ///< C_chunk: leaves + deep levels, β/K share
    double merge_level = 0.0;        ///< d: chunk-local below, merged launches above
    double input_stream_time = 0.0;  ///< K·λ + δ·(1−α)·n
    double gpu_span = 0.0;           ///< GPU thread makespan incl. transfers
    double advanced_gpu_span = 0.0;  ///< same thread, unpipelined (K = 1)
    double pipeline_gain = 0.0;      ///< advanced_total − total (≥ 0 by fallback)
    double cpu_parallel_time = 0.0;  ///< T_c(α)
    double finish_time = 0.0;
    double total_time = 0.0;         ///< max(gpu_span, T_c) + finish
    double advanced_total = 0.0;     ///< unpipelined total, same accounting
    double seq_time = 0.0;
    double speedup = 0.0;
};

/// Makespan model of the pipelined hybrid, layered over AdvancedModel.
class PipelinedModel {
public:
    PipelinedModel(sim::HpuParams hw, Recurrence rec, double n);

    const AdvancedModel& advanced() const noexcept { return adv_; }

    /// Device-vs-CPU op pricing ratio of the algorithm being modelled
    /// (LevelAlgorithm::device_ops_multiplier); scales every device term.
    /// Default 1 — the paper's model prices device ops at CPU parity.
    void set_device_ops_multiplier(double mult) { mult_ = mult; }

    /// The saturation boundary d ∈ [y, L]: levels at or below d keep every
    /// chunk's launch at ≥ g work-items; levels above d would fragment
    /// waves if chunked, so the executor merges them into whole-region
    /// launches. Continuous analogue of the executor's task-count rule.
    double merge_level(double alpha, double y, std::uint64_t chunks) const;

    /// GPU thread makespan (input stream + chunked deep compute + merged
    /// shallow compute + results retrieval) for K chunks. K = 1 equals the
    /// advanced thread λ + δW + T_g(α, y)·mult + λ + δW exactly.
    double gpu_span(double alpha, double y, std::uint64_t chunks) const;

    /// Full prediction, mirroring the executor's no-win fallback: when K
    /// chunks do not beat the unpipelined span, the effective K is 1.
    PipelinedPrediction predict_at(double alpha, double y, std::uint64_t chunks) const;

private:
    sim::HpuParams hw_;
    Recurrence rec_;
    AdvancedModel adv_;
    double mult_ = 1.0;
};

}  // namespace hpu::model
