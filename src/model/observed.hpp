// Observed-width cost accounting for irregular trees (DESIGN.md §14).
//
// The closed-form schedules of §5 assume level i has a^i equal tasks, so
// the CPU/GPU split α and the basic crossover level both fall out of the
// recurrence before anything runs. An irregular tree has neither property:
// the width and the per-task extents of level i are only known once level
// i-1 executed. These helpers re-derive the same decisions per level from
// the *observed* task list — width, per-task cost estimates, extent words
// — using the same machine model (p cores; g lanes at γ ops/tick; λ + δ·w
// link; strided multiplier) the analytic predictions price with.
//
// Decisions are deterministic pure functions of (hardware, estimates), so
// pooled and inline irregular runs schedule identically (the
// pool-determinism invariant extends to the irregular engine).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/params.hpp"

namespace hpu::model {

/// One observed task of a level, as the scheduler sees it before running:
/// a cost estimate (CPU ops) and the words its extent covers (what a
/// hybrid level exchange would ship).
struct ObservedTask {
    double cost = 1.0;
    std::uint64_t words = 0;
};

/// Per-level α re-balance: the first `cpu_tasks` tasks run on the CPU, the
/// rest on the device. `alpha` is the estimated CPU share of the level's
/// work (the per-level analogue of the paper's α).
struct ObservedSplit {
    std::uint64_t cpu_tasks = 0;
    double alpha = 0.0;
    double cpu_est = 0.0;  ///< estimated CPU-part makespan, ticks
    double gpu_est = 0.0;  ///< estimated GPU-part makespan incl. transfers
};

/// Chooses the prefix split k ∈ [0, width] minimizing the estimated level
/// makespan max(cpu(k), gpu(k)):
///   cpu(k) = max(Σ_{j<k} cost_j / p, max_{j<k} cost_j)
///   gpu(k) = launch_overhead
///            + max(Σ_{j≥k} cost_j · mult / (γ·g), max_{j≥k} cost_j · mult / γ)
///            + [include_transfers] 2λ + 2δ·Σ_{j≥k} words_j
/// Ties keep the smallest k (prefer the CPU for equal estimates, matching
/// the paper's preference for keeping shallow work host-side).
ObservedSplit split_observed_level(const sim::HpuParams& hw,
                                   const std::vector<ObservedTask>& tasks,
                                   double device_multiplier, bool include_transfers);

/// Whole-level placement for the basic-style irregular schedule: the level
/// runs entirely on one unit. `cpu_extra` / `gpu_extra` are the residency
/// switch costs (ticks) the engine would pay to place the level on that
/// unit given where the frontier currently lives.
enum class LevelPlacement { kCpu, kGpu };

struct ObservedPlacement {
    LevelPlacement unit = LevelPlacement::kCpu;
    double cpu_est = 0.0;
    double gpu_est = 0.0;
};

ObservedPlacement place_observed_level(const sim::HpuParams& hw,
                                       const std::vector<ObservedTask>& tasks,
                                       double device_multiplier, double cpu_extra,
                                       double gpu_extra);

}  // namespace hpu::model
