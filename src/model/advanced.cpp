#include "model/advanced.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace hpu::model {

namespace {
double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }
}  // namespace

AdvancedModel::AdvancedModel(sim::HpuParams hw, Recurrence rec, double n)
    : hw_(std::move(hw)), rec_(std::move(rec)), n_(n) {
    rec_.validate();
    hw_.validate();
    HPU_CHECK(n_ > 1.0, "need n > 1");
    levels_ = rec_.levels(n_);
    leaves_ = rec_.leaves(n_);
}

double AdvancedModel::alpha_min() const {
    return std::min(1.0, static_cast<double>(hw_.cpu.p) / leaves_);
}

double AdvancedModel::level_sum(double y, bool gpu_times, double beta) const {
    if (y >= levels_) return 0.0;
    y = std::max(y, 0.0);
    const double g = static_cast<double>(hw_.gpu.g);
    auto term = [&](double i) {
        if (!gpu_times) return rec_.level_work(n_, i);
        const double tasks = beta * std::pow(rec_.a, i);
        return std::max(tasks / g, 1.0) * rec_.task_cost(n_, i) / hw_.gpu.gamma;
    };
    double sum = 0.0;
    const double start = std::ceil(y);
    if (start > y) {
        // Partial slice of level floor(y): weight (min(start, L) − y).
        sum += (std::min(start, levels_) - y) * term(std::floor(y));
    }
    for (double i = start; i < levels_ - 1e-9; i += 1.0) sum += term(i);
    return sum;
}

double AdvancedModel::cpu_parallel_time(double alpha) const {
    HPU_CHECK(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    const double p = static_cast<double>(hw_.cpu.p);
    // Level where the CPU share shrinks to p tasks: log_a(p/α).
    const double i1 = std::clamp(util::logb(p / alpha, rec_.a), 0.0, levels_);
    const double work = leaves_ * rec_.leaf_cost + level_sum(i1, /*gpu_times=*/false, alpha);
    return alpha / p * work;
}

double AdvancedModel::gpu_saturated_time(double alpha) const {
    HPU_CHECK(alpha >= 0.0 && alpha < 1.0, "alpha must be in [0, 1)");
    const double g = static_cast<double>(hw_.gpu.g);
    const double beta = 1.0 - alpha;
    if (beta * leaves_ < g) return 0.0;  // case (i): never saturated
    const double isat = std::clamp(util::logb(g / beta, rec_.a), 0.0, levels_);
    const double work = leaves_ * rec_.leaf_cost + level_sum(isat, /*gpu_times=*/false, alpha);
    return beta / (hw_.gpu.gamma * g) * work;
}

double AdvancedModel::gpu_time(double alpha, double y) const {
    HPU_CHECK(alpha >= 0.0 && alpha < 1.0, "alpha must be in [0, 1)");
    return gpu_time_for_share(1.0 - alpha, y);
}

double AdvancedModel::gpu_time_for_share(double beta, double y) const {
    HPU_CHECK(beta > 0.0 && beta <= 1.0, "device share must be in (0, 1]");
    const double g = static_cast<double>(hw_.gpu.g);
    const double leaves_time =
        std::max(beta * leaves_ / g, 1.0) * rec_.leaf_cost / hw_.gpu.gamma;
    return leaves_time + level_sum(y, /*gpu_times=*/true, beta);
}

double AdvancedModel::y_of_alpha(double alpha) const {
    const double tc = cpu_parallel_time(alpha);
    // T_g(α, y) is continuous and non-increasing in y.
    if (gpu_time(alpha, 0.0) <= tc) return 0.0;       // GPU finishes the whole tree
    if (gpu_time(alpha, levels_) >= tc) return levels_;  // GPU barely does the leaves
    double lo = 0.0, hi = levels_;
    for (int it = 0; it < 200; ++it) {
        const double mid = 0.5 * (lo + hi);
        if (gpu_time(alpha, mid) > tc) {
            lo = mid;  // GPU needs more time than the CPU grants: raise y
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

double AdvancedModel::gpu_work_at(double alpha, double y) const {
    return (1.0 - alpha) * (leaves_ * rec_.leaf_cost + level_sum(y, /*gpu_times=*/false, alpha));
}

double AdvancedModel::gpu_work(double alpha) const {
    return gpu_work_at(alpha, y_of_alpha(alpha));
}

double AdvancedModel::finish_time(double alpha, double y) const {
    const double p = static_cast<double>(hw_.cpu.p);
    const double i1 = std::clamp(util::logb(p / alpha, rec_.a), 0.0, levels_);
    const double top = std::ceil(std::max(y, i1));
    double total = 0.0;
    for (double i = 0; i < top; i += 1.0) {
        // Fractions of level i still pending after the parallel phase.
        const double rem =
            alpha * clamp01(i1 - i) + (1.0 - alpha) * clamp01(y - i);
        if (rem <= 0.0) continue;
        const double tasks = rem * std::pow(rec_.a, i);
        total += std::max(tasks / p, 1.0) * rec_.task_cost(n_, i);
    }
    return total;
}

AdvancedPrediction AdvancedModel::predict_at(double alpha, double y) const {
    HPU_CHECK(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    y = std::clamp(y, 0.0, levels_);
    AdvancedPrediction out;
    out.alpha = alpha;
    out.y = y;
    out.seq_time = rec_.seq_work(n_);
    out.cpu_parallel_time = std::max(cpu_parallel_time(alpha), gpu_time(alpha, y));
    out.gpu_work = gpu_work_at(alpha, y);
    out.gpu_work_share = out.gpu_work / out.seq_time;
    out.finish_time = finish_time(alpha, y);
    const double words =
        words_per_transfer_ > 0.0 ? words_per_transfer_ : (1.0 - alpha) * n_;
    out.transfer_time =
        2.0 * hw_.link.transfer_time(static_cast<std::uint64_t>(std::llround(words)));
    out.total_time = out.cpu_parallel_time + out.finish_time + out.transfer_time;
    out.speedup = out.seq_time / out.total_time;
    return out;
}

AdvancedPrediction AdvancedModel::optimize() const {
    const double lo = std::max(alpha_min(), 1e-4);
    const double hi = 0.999;
    HPU_CHECK(lo < hi, "input too small for the advanced schedule");
    // W_g(α) is piecewise smooth with case changes; a dense grid plus local
    // refinement is robust where golden-section is not.
    auto grid_best = [&](double a0, double a1, int steps) {
        double best_a = a0, best_w = -1.0;
        for (int s = 0; s <= steps; ++s) {
            const double a = a0 + (a1 - a0) * s / steps;
            const double w = gpu_work(a);
            if (w > best_w) {
                best_w = w;
                best_a = a;
            }
        }
        return best_a;
    };
    double a = grid_best(lo, hi, 400);
    const double step = (hi - lo) / 400.0;
    a = grid_best(std::max(lo, a - step), std::min(hi, a + step), 100);
    return predict_at(a, y_of_alpha(a));
}

}  // namespace hpu::model
