// Divide-and-conquer recurrence descriptor: T(n) = a·T(n/b) + f(n), the
// class of algorithms the paper's framework and schedulers target (§4).
// The model works with real-valued level indices, following the paper's
// analysis (§5.2.1), so all quantities here are doubles.
#pragma once

#include <functional>

#include "util/check.hpp"
#include "util/math.hpp"

namespace hpu::model {

struct Recurrence {
    double a = 2.0;  ///< subproblems per division
    double b = 2.0;  ///< size shrink factor
    /// Division + combination cost for one subproblem of size m (paper's
    /// f(n)). Must be positive for m >= 1.
    std::function<double(double)> f = [](double m) { return m; };
    double leaf_cost = 1.0;  ///< cost of one base case
    /// Subproblem size at which recursion stops (the paper's base cases are
    /// size 1; the §7 future-work blocked variants stop earlier and solve
    /// base blocks with a sequential algorithm).
    double base_size = 1.0;

    void validate() const {
        HPU_CHECK(a > 1.0 && b > 1.0, "recurrence needs a > 1 and b > 1");
        HPU_CHECK(static_cast<bool>(f), "recurrence needs a cost function");
        HPU_CHECK(leaf_cost > 0.0, "leaf cost must be positive");
        HPU_CHECK(base_size >= 1.0, "base size must be >= 1");
    }

    /// Number of internal levels for input size n: log_b(n / base_size).
    /// Level 0 is the root; leaves sit below level levels(n) - 1.
    double levels(double n) const { return util::logb(n / base_size, b); }

    /// Number of leaves: a^levels = (n/base)^(log_b a).
    double leaves(double n) const { return std::pow(n / base_size, util::logb(a, b)); }

    /// Per-subproblem cost at level i: f(n / b^i).
    double task_cost(double n, double i) const { return f(n / std::pow(b, i)); }

    /// Aggregate division+combination work of level i: a^i · f(n / b^i).
    double level_work(double n, double i) const {
        return std::pow(a, i) * task_cost(n, i);
    }

    /// Total sequential work: all levels plus leaves — the 1-core baseline
    /// the paper's speedups are measured against.
    double seq_work(double n) const {
        const double L = levels(n);
        double w = leaves(n) * leaf_cost;
        for (double i = 0; i < L; i += 1.0) w += level_work(n, i);
        return w;
    }
};

/// Mergesort / any linear-combine halving D&C: a = b = 2, f(m) = c·m.
/// `words_per_element` scales f to match a concrete kernel's op charges
/// (the default merge charges ~3 ops per output element: 2 reads + 1 write).
inline Recurrence mergesort_recurrence(double ops_per_element = 3.0) {
    Recurrence r;
    r.a = 2.0;
    r.b = 2.0;
    r.f = [ops_per_element](double m) { return ops_per_element * m; };
    r.leaf_cost = 1.0;
    return r;
}

/// D&C array sum: a = b = 2, constant combine.
inline Recurrence sum_recurrence(double combine_ops = 3.0) {
    Recurrence r;
    r.a = 2.0;
    r.b = 2.0;
    r.f = [combine_ops](double) { return combine_ops; };
    r.leaf_cost = 1.0;
    return r;
}

/// Classic 8-way recursive matrix multiplication on m×m blocks (n = m²
/// elements per matrix): a = 8, b = 4 (quartering the element count),
/// combine is the O(n) block addition.
inline Recurrence matmul_recurrence(double ops_per_element = 2.0) {
    Recurrence r;
    r.a = 8.0;
    r.b = 4.0;
    r.f = [ops_per_element](double m) { return ops_per_element * m; };
    r.leaf_cost = 2.0;
    return r;
}

}  // namespace hpu::model
