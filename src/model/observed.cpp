#include "model/observed.hpp"

#include <algorithm>

namespace hpu::model {
namespace {

double cpu_makespan(double total, double max_cost, std::size_t p) {
    return std::max(total / static_cast<double>(p), max_cost);
}

double gpu_makespan(const sim::HpuParams& hw, double total, double max_cost, double mult) {
    const double gamma = hw.gpu.gamma;
    const double lanes = static_cast<double>(hw.gpu.g);
    return hw.gpu.launch_overhead +
           std::max(total * mult / (gamma * lanes), max_cost * mult / gamma);
}

}  // namespace

ObservedSplit split_observed_level(const sim::HpuParams& hw,
                                   const std::vector<ObservedTask>& tasks,
                                   double device_multiplier, bool include_transfers) {
    const std::size_t w = tasks.size();
    // Prefix cost sums / maxima and suffix cost sums / maxima / words, so
    // every candidate split is priced in O(1).
    std::vector<double> pre_sum(w + 1, 0.0), pre_max(w + 1, 0.0);
    std::vector<double> suf_sum(w + 1, 0.0), suf_max(w + 1, 0.0);
    std::vector<std::uint64_t> suf_words(w + 1, 0);
    for (std::size_t j = 0; j < w; ++j) {
        pre_sum[j + 1] = pre_sum[j] + tasks[j].cost;
        pre_max[j + 1] = std::max(pre_max[j], tasks[j].cost);
    }
    for (std::size_t j = w; j-- > 0;) {
        suf_sum[j] = suf_sum[j + 1] + tasks[j].cost;
        suf_max[j] = std::max(suf_max[j + 1], tasks[j].cost);
        suf_words[j] = suf_words[j + 1] + tasks[j].words;
    }

    ObservedSplit best;
    bool have = false;
    for (std::size_t k = 0; k <= w; ++k) {
        const double cpu = k > 0 ? cpu_makespan(pre_sum[k], pre_max[k], hw.cpu.p) : 0.0;
        double gpu = 0.0;
        if (k < w) {
            gpu = gpu_makespan(hw, suf_sum[k], suf_max[k], device_multiplier);
            if (include_transfers) {
                gpu += 2.0 * hw.link.lambda +
                       2.0 * hw.link.delta * static_cast<double>(suf_words[k]);
            }
        }
        const double makespan = std::max(cpu, gpu);
        if (!have || makespan < std::max(best.cpu_est, best.gpu_est)) {
            best.cpu_tasks = k;
            best.cpu_est = cpu;
            best.gpu_est = gpu;
            have = true;
        }
    }
    best.alpha = pre_sum[w] > 0.0 ? pre_sum[best.cpu_tasks] / pre_sum[w] : 0.0;
    return best;
}

ObservedPlacement place_observed_level(const sim::HpuParams& hw,
                                       const std::vector<ObservedTask>& tasks,
                                       double device_multiplier, double cpu_extra,
                                       double gpu_extra) {
    double total = 0.0, max_cost = 0.0;
    for (const ObservedTask& t : tasks) {
        total += t.cost;
        max_cost = std::max(max_cost, t.cost);
    }
    ObservedPlacement pl;
    pl.cpu_est = cpu_makespan(total, max_cost, hw.cpu.p) + cpu_extra;
    pl.gpu_est = gpu_makespan(hw, total, max_cost, device_multiplier) + gpu_extra;
    pl.unit = pl.cpu_est <= pl.gpu_est ? LevelPlacement::kCpu : LevelPlacement::kGpu;
    return pl;
}

}  // namespace hpu::model
