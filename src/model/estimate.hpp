// Empirical estimation of the HPU parameters g and γ (§6.4, Figs. 5–6).
//
// g: run an elementwise sum of two arrays with an increasing number of
//    work-items (each item handles a consecutive chunk) and find the thread
//    count beyond which the device time stops improving — the empirical
//    saturation point, not the physical PE count.
// γ: run a 1-thread merge of two sorted lists on the device and the same
//    merge on one CPU core; the time ratio is γ⁻¹ and should be roughly
//    constant across input sizes (Fig. 6).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/cpu_unit.hpp"
#include "sim/device.hpp"

namespace hpu::model {

struct SaturationPoint {
    std::uint64_t threads = 0;
    sim::Ticks time = 0.0;
};

/// One probe: elementwise sum of two arrays of `n` words using `threads`
/// work-items. Returns the device time.
sim::Ticks probe_elementwise_sum(sim::Device& device, std::uint64_t n, std::uint64_t threads);

/// Sweeps `thread_counts` and returns the per-count times (Fig. 5's curve).
std::vector<SaturationPoint> saturation_sweep(sim::Device& device, std::uint64_t n,
                                              const std::vector<std::uint64_t>& thread_counts);

/// Estimated g: the smallest probed thread count whose time is within
/// `tolerance` of the best time over the whole sweep.
std::uint64_t estimate_g(const std::vector<SaturationPoint>& sweep, double tolerance = 0.02);

/// Convenience: geometric sweep 1, 2, 4, ... up to `max_threads`, plus a
/// linear refinement around the knee.
std::uint64_t estimate_g(sim::Device& device, std::uint64_t n, std::uint64_t max_threads,
                         double tolerance = 0.02);

struct GammaSample {
    std::uint64_t n = 0;       ///< elements per input list
    sim::Ticks gpu_time = 0.0;
    sim::Ticks cpu_time = 0.0;
    double ratio = 0.0;        ///< gpu/cpu — an estimate of γ⁻¹
};

/// One probe: merge two sorted lists of n elements each, once as a 1-item
/// kernel on the device and once as a single CPU task.
GammaSample probe_merge_ratio(sim::Device& device, sim::CpuUnit& cpu, std::uint64_t n);

/// Fig. 6's series: ratio per input size. γ⁻¹ estimate = median ratio.
std::vector<GammaSample> gamma_sweep(sim::Device& device, sim::CpuUnit& cpu,
                                     const std::vector<std::uint64_t>& sizes);

double estimate_gamma_inv(const std::vector<GammaSample>& sweep);

}  // namespace hpu::model
