// The advanced hybrid work-division model of §5.2.
//
// Bottom-up view of the recursion tree: a fraction α of the subproblems at
// every level belongs to the CPU and 1−α to the GPU. Both units start at the
// leaves. The CPU is saturated (≥ p tasks) until its share shrinks to p
// tasks, which happens at level i₁ = log_a(p/α); that moment defines the
// parallel phase length T_c(α). The GPU climbs as far as it can in that
// time — level y(α), found by solving T_g(α, y) = T_c(α), where T_g has the
// paper's three saturation cases (never / always / partially saturated,
// §5.2.1). The optimal α* maximizes the GPU work W_g(α). Exactly two
// transfers happen: input shipment before the parallel phase and results
// retrieval after it.
#pragma once

#include <vector>

#include "model/recurrence.hpp"
#include "sim/params.hpp"

namespace hpu::model {

/// Everything the optimizer decides plus the derived predictions.
struct AdvancedPrediction {
    double alpha = 0.0;           ///< CPU work ratio (paper's α)
    double y = 0.0;               ///< transfer level reached by the GPU
    double cpu_parallel_time = 0; ///< T_c(α): duration of the parallel phase
    double gpu_work = 0.0;        ///< W_g(α): ops done by the GPU
    double gpu_work_share = 0.0;  ///< W_g / total sequential work
    double finish_time = 0.0;     ///< CPU-only wrap-up after the sync point
    double transfer_time = 0.0;   ///< the two boundary transfers
    double total_time = 0.0;      ///< T_c + finish + transfers
    double seq_time = 0.0;        ///< 1-core baseline
    double speedup = 0.0;         ///< seq / total
};

class AdvancedModel {
public:
    /// `words_transferred` is the payload of EACH of the two transfers, in
    /// words (for mergesort: the (1−α)·n GPU slice; we conservatively charge
    /// the full slice both ways).
    AdvancedModel(sim::HpuParams hw, Recurrence rec, double n);

    double n() const noexcept { return n_; }
    double levels() const noexcept { return levels_; }

    /// T_c(α): time for the CPU to climb from the leaves to level
    /// log_a(p/α) with its α-share, all p cores busy (§5.2.1).
    double cpu_parallel_time(double alpha) const;

    /// T_g^max(α): the longest the GPU can run fully saturated (§5.2.1).
    double gpu_saturated_time(double alpha) const;

    /// T_g(α, y): GPU time from the leaves up to (continuous) level y,
    /// covering all three saturation cases via a per-level max.
    double gpu_time(double alpha, double y) const;

    /// T_g for an explicit device share `beta` ∈ (0, 1] of the leaves and
    /// of every level up to y — gpu_time(α, y) is gpu_time_for_share(1−α,
    /// y). The pipelined model (model/pipeline.hpp) prices each of its K
    /// chunks as a β/K share via this entry point.
    double gpu_time_for_share(double beta, double y) const;

    /// y(α): the level the GPU reaches when the parallel phase ends —
    /// the solution of T_g(α, y) = T_c(α), clamped to [0, levels].
    double y_of_alpha(double alpha) const;

    /// W_g(α): work (ops) the GPU completes below y(α).
    double gpu_work(double alpha) const;

    /// GPU work with an explicit y (used by sweeps over both parameters).
    double gpu_work_at(double alpha, double y) const;

    /// CPU wrap-up after the sync: every level not finished in the parallel
    /// phase runs on the p CPU cores (see DESIGN.md — level-by-level
    /// accounting with ≤ p-way parallelism).
    double finish_time(double alpha, double y) const;

    /// Full prediction for a given (α, y) pair — Fig. 7's sweep axis.
    AdvancedPrediction predict_at(double alpha, double y) const;

    /// Optimal prediction: α* maximizing W_g(α), y = y(α*) — the paper's
    /// recommended operating point (Figs. 3–4).
    AdvancedPrediction optimize() const;

    /// Smallest admissible α: the CPU must start with at least p leaf
    /// tasks (§5.2.1 considers α ≥ p/n).
    double alpha_min() const;

    /// Words shipped per transfer (settable; defaults to (1−α)·n at
    /// predict time when left at 0).
    void set_words_per_transfer(double words) { words_per_transfer_ = words; }

private:
    /// Work of all levels in [y, levels) with linear interpolation at the
    /// fractional boundary, plus nothing for leaves (handled separately).
    /// With gpu_times, each level is priced as the device share `beta`
    /// climbing it (per-level saturation max); otherwise plain work sums
    /// (beta unused).
    double level_sum(double y, bool gpu_times, double beta) const;

    sim::HpuParams hw_;
    Recurrence rec_;
    double n_;
    double levels_;
    double leaves_;
    double words_per_transfer_ = 0.0;
};

}  // namespace hpu::model
