// The basic hybrid work division of §5.1: every recursion-tree level runs
// entirely on whichever unit executes it faster; there is a single
// CPU→GPU handoff at level i* = log_a(p / γ) (top levels on the CPU, the
// rest on the GPU), provided γ·g ≥ p.
#pragma once

#include "model/recurrence.hpp"
#include "sim/params.hpp"

namespace hpu::model {

/// Per-level placement under the basic strategy.
enum class Unit { kCpu, kGpu };

struct BasicLevel {
    double level = 0.0;
    Unit unit = Unit::kCpu;
    double time = 0.0;
};

struct BasicPrediction {
    /// Crossover level i* = log_a(p / γ); levels i >= i* run on the GPU.
    double crossover_level = 0.0;
    /// True when γ·g < p: the GPU never wins and everything stays on the CPU.
    bool cpu_only = false;
    double total_time = 0.0;      ///< predicted schedule makespan (no transfers)
    double transfer_time = 0.0;   ///< two boundary transfers of n words each
    double seq_time = 0.0;        ///< 1-core baseline
    double speedup = 0.0;         ///< seq / (total + transfers)
    std::vector<BasicLevel> levels;
};

/// Time of level i on the CPU: max(a^i / p, 1) · f(n/b^i) — fewer than p
/// tasks leave cores idle but the level still costs one task.
double basic_cpu_level_time(const sim::HpuParams& hw, const Recurrence& rec, double n, double i);

/// Time of level i on the GPU: max(a^i / g, 1) · f(n/b^i) / γ.
double basic_gpu_level_time(const sim::HpuParams& hw, const Recurrence& rec, double n, double i);

/// Full basic-schedule prediction for input size n (elements of
/// `word_bytes` bytes each feed the transfer cost; n words move each way).
BasicPrediction predict_basic(const sim::HpuParams& hw, const Recurrence& rec, double n,
                              double words_transferred = 0.0);

}  // namespace hpu::model
