#include "model/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace hpu::model {

PipelinedModel::PipelinedModel(sim::HpuParams hw, Recurrence rec, double n)
    : hw_(std::move(hw)), rec_(std::move(rec)), adv_(hw_, rec_, n) {}

double PipelinedModel::merge_level(double alpha, double y, std::uint64_t chunks) const {
    HPU_CHECK(alpha >= 0.0 && alpha < 1.0, "alpha must be in [0, 1)");
    HPU_CHECK(chunks >= 1, "need at least one chunk");
    y = std::clamp(y, 0.0, adv_.levels());
    const double beta = 1.0 - alpha;
    const double g = static_cast<double>(hw_.gpu.g);
    // Level i keeps every chunk's launch saturated iff (β/K)·aⁱ ≥ g.
    const double d = util::logb(g * static_cast<double>(chunks) / beta, rec_.a);
    return std::clamp(d, y, adv_.levels());
}

double PipelinedModel::gpu_span(double alpha, double y, std::uint64_t chunks) const {
    HPU_CHECK(alpha >= 0.0 && alpha < 1.0, "alpha must be in [0, 1)");
    HPU_CHECK(chunks >= 1, "need at least one chunk");
    y = std::clamp(y, 0.0, adv_.levels());
    const double beta = 1.0 - alpha;
    const double K = static_cast<double>(chunks);
    const double W = beta * adv_.n();
    const double x_full = hw_.link.lambda + hw_.link.delta * W;
    if (chunks == 1) {
        // Degenerate pipeline: ship, compute, retrieve — the advanced thread.
        return x_full + mult_ * adv_.gpu_time_for_share(beta, y) + x_full;
    }
    const double x_chunk = hw_.link.lambda + hw_.link.delta * W / K;
    const double d = merge_level(alpha, y, chunks);
    const double chunk_compute = mult_ * adv_.gpu_time_for_share(beta / K, d);
    const double shallow =
        mult_ * (adv_.gpu_time_for_share(beta, y) - adv_.gpu_time_for_share(beta, d));
    // Eager input stream: chunk c's words land at (c+1)·x_chunk; its compute
    // starts once both the words and the previous chunk's compute are done.
    std::vector<double> comp_end(chunks, 0.0);
    double in_end = 0.0;
    double comp = 0.0;
    for (std::uint64_t c = 0; c < chunks; ++c) {
        in_end += x_chunk;
        comp = std::max(in_end, comp) + chunk_compute;
        comp_end[c] = comp;
    }
    const double link_free = in_end;  // the K input chunks run back-to-back
    if (d > y + 1e-12) {
        // Merged shallow launches need every chunk, then one bulk retrieval.
        return std::max(comp + shallow, link_free) + x_full;
    }
    // d == y: nothing left to merge, results stream back chunk by chunk.
    double cursor = link_free;
    for (std::uint64_t c = 0; c < chunks; ++c) {
        cursor = std::max(comp_end[c], cursor) + x_chunk;
    }
    return cursor;
}

PipelinedPrediction PipelinedModel::predict_at(double alpha, double y,
                                               std::uint64_t chunks) const {
    HPU_CHECK(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    HPU_CHECK(chunks >= 1, "need at least one chunk");
    y = std::clamp(y, 0.0, adv_.levels());
    PipelinedPrediction out;
    out.alpha = alpha;
    out.y = y;
    out.chunks = chunks;
    const double beta = 1.0 - alpha;
    const double K = static_cast<double>(chunks);
    const double W = beta * adv_.n();
    out.chunk_words = W / K;
    out.merge_level = merge_level(alpha, y, chunks);
    out.chunk_compute = mult_ * adv_.gpu_time_for_share(beta / K, out.merge_level);
    out.input_stream_time = K * hw_.link.lambda + hw_.link.delta * W;
    out.gpu_span = gpu_span(alpha, y, chunks);
    out.advanced_gpu_span = gpu_span(alpha, y, 1);
    // Mirror the executor's guard: pipeline only when it strictly wins.
    out.chunks_effective = out.gpu_span < out.advanced_gpu_span ? chunks : 1;
    const double span = std::min(out.gpu_span, out.advanced_gpu_span);
    out.cpu_parallel_time = adv_.cpu_parallel_time(alpha);
    out.finish_time = adv_.finish_time(alpha, y);
    out.total_time = std::max(span, out.cpu_parallel_time) + out.finish_time;
    out.advanced_total =
        std::max(out.advanced_gpu_span, out.cpu_parallel_time) + out.finish_time;
    out.pipeline_gain = out.advanced_total - out.total_time;
    out.seq_time = rec_.seq_work(adv_.n());
    out.speedup = out.seq_time / out.total_time;
    return out;
}

}  // namespace hpu::model
