#include "model/basic.hpp"

#include <algorithm>
#include <cmath>

namespace hpu::model {

double basic_cpu_level_time(const sim::HpuParams& hw, const Recurrence& rec, double n, double i) {
    const double tasks = std::pow(rec.a, i);
    const double rounds = std::max(tasks / static_cast<double>(hw.cpu.p), 1.0);
    return rounds * rec.task_cost(n, i);
}

double basic_gpu_level_time(const sim::HpuParams& hw, const Recurrence& rec, double n, double i) {
    const double tasks = std::pow(rec.a, i);
    const double rounds = std::max(tasks / static_cast<double>(hw.gpu.g), 1.0);
    return rounds * rec.task_cost(n, i) / hw.gpu.gamma;
}

BasicPrediction predict_basic(const sim::HpuParams& hw, const Recurrence& rec, double n,
                              double words_transferred) {
    rec.validate();
    BasicPrediction out;
    out.seq_time = rec.seq_work(n);
    out.cpu_only = hw.gpu_power() < static_cast<double>(hw.cpu.p);
    out.crossover_level =
        util::logb(static_cast<double>(hw.cpu.p) / hw.gpu.gamma, rec.a);

    const double L = rec.levels(n);
    double total = 0.0;
    for (double i = 0; i < L; i += 1.0) {
        const bool on_gpu = !out.cpu_only && i >= out.crossover_level;
        const double t = on_gpu ? basic_gpu_level_time(hw, rec, n, i)
                                : basic_cpu_level_time(hw, rec, n, i);
        out.levels.push_back(BasicLevel{i, on_gpu ? Unit::kGpu : Unit::kCpu, t});
        total += t;
    }
    // Leaves run wherever the deepest level runs (§5.1 case 4: the GPU when
    // it is active at all).
    const double leaf_tasks = rec.leaves(n);
    if (out.cpu_only) {
        total += std::max(leaf_tasks / static_cast<double>(hw.cpu.p), 1.0) * rec.leaf_cost;
    } else {
        total += std::max(leaf_tasks / static_cast<double>(hw.gpu.g), 1.0) * rec.leaf_cost /
                 hw.gpu.gamma;
    }
    out.total_time = total;
    out.transfer_time =
        out.cpu_only ? 0.0 : 2.0 * hw.link.transfer_time(static_cast<std::uint64_t>(
                                  std::llround(words_transferred)));
    out.speedup = out.seq_time / (out.total_time + out.transfer_time);
    return out;
}

}  // namespace hpu::model
