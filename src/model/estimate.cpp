#include "model/estimate.hpp"

#include <algorithm>
#include <numeric>

#include "sim/buffer.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace hpu::model {

sim::Ticks probe_elementwise_sum(sim::Device& device, std::uint64_t n, std::uint64_t threads) {
    HPU_CHECK(threads >= 1 && threads <= n, "thread count must be in [1, n]");
    // The probe's data content is irrelevant to timing (uniform per-element
    // cost); we still execute it functionally to keep the probe honest.
    sim::DeviceBuffer<std::int32_t> a(n), b(n), out(n);
    auto ah = a.host();
    auto bh = b.host();
    for (std::uint64_t i = 0; i < n; ++i) {
        ah[i] = static_cast<std::int32_t>(i);
        bh[i] = static_cast<std::int32_t>(2 * i);
    }
    a.copy_to_device();
    b.copy_to_device();
    out.copy_to_device();
    auto av = a.device_view();
    auto bv = b.device_view();
    auto ov = out.device();
    const auto result = device.launch(threads, [&](sim::WorkItem& wi) {
        // Work-item `id` handles the consecutive chunk [lo, hi) — the same
        // partitioning the paper's probe used, which accesses coalesced
        // segments under the permuted layout assumption.
        const std::uint64_t id = wi.global_id();
        const std::uint64_t chunk = util::ceil_div(n, wi.global_size());
        const std::uint64_t lo = id * chunk;
        const std::uint64_t hi = std::min(n, lo + chunk);
        for (std::uint64_t i = lo; i < hi; ++i) {
            ov[i] = av[i] + bv[i];
        }
        if (hi > lo) {
            wi.charge_compute(hi - lo);
            wi.charge_mem(3 * (hi - lo), sim::Pattern::kCoalesced);
        }
    });
    return result.time;
}

std::vector<SaturationPoint> saturation_sweep(sim::Device& device, std::uint64_t n,
                                              const std::vector<std::uint64_t>& thread_counts) {
    std::vector<SaturationPoint> out;
    out.reserve(thread_counts.size());
    for (std::uint64_t t : thread_counts) {
        out.push_back(SaturationPoint{t, probe_elementwise_sum(device, n, t)});
    }
    return out;
}

std::uint64_t estimate_g(const std::vector<SaturationPoint>& sweep, double tolerance) {
    HPU_CHECK(!sweep.empty(), "empty saturation sweep");
    sim::Ticks best = sweep.front().time;
    for (const auto& s : sweep) best = std::min(best, s.time);
    for (const auto& s : sweep) {
        if (s.time <= best * (1.0 + tolerance)) return s.threads;
    }
    return sweep.back().threads;
}

std::uint64_t estimate_g(sim::Device& device, std::uint64_t n, std::uint64_t max_threads,
                         double tolerance) {
    std::vector<std::uint64_t> counts;
    for (std::uint64_t t = 1; t <= max_threads; t *= 2) counts.push_back(t);
    auto coarse = saturation_sweep(device, n, counts);
    const std::uint64_t knee = estimate_g(coarse, tolerance);
    // Linear refinement around the coarse knee: a power-of-two sweep
    // aliases when the true lane count is not a power of two (the time of
    // t items is ceil(t/g)·(n/t) work per lane, which ties at multiples of
    // g), so probe [knee/2, 2·knee] linearly, keeping the knee itself.
    if (knee <= 2) return knee;
    std::vector<std::uint64_t> fine = {knee};
    const std::uint64_t lo = knee / 2;
    const std::uint64_t hi = std::min(max_threads, 2 * knee);
    const std::uint64_t step = std::max<std::uint64_t>(1, (hi - lo) / 32);
    for (std::uint64_t t = lo; t <= hi; t += step) fine.push_back(t);
    std::sort(fine.begin(), fine.end());
    fine.erase(std::unique(fine.begin(), fine.end()), fine.end());
    auto refined = saturation_sweep(device, n, fine);
    return estimate_g(refined, tolerance);
}

namespace {

/// Scalar two-list merge charging its ops; runs identically on either unit.
/// Access is sequential within the single running item: strided from the
/// SIMT point of view (a lone item cannot coalesce with neighbours), which
/// is exactly the situation the paper's γ probe measures.
template <typename ChargeFn>
void merge_charged(std::span<const std::int32_t> lhs, std::span<const std::int32_t> rhs,
                   std::span<std::int32_t> out, ChargeFn&& charge) {
    std::size_t i = 0, j = 0, k = 0;
    while (i < lhs.size() && j < rhs.size()) {
        out[k++] = lhs[i] <= rhs[j] ? lhs[i++] : rhs[j++];
    }
    while (i < lhs.size()) out[k++] = lhs[i++];
    while (j < rhs.size()) out[k++] = rhs[j++];
    charge(static_cast<std::uint64_t>(k));
}

}  // namespace

GammaSample probe_merge_ratio(sim::Device& device, sim::CpuUnit& cpu, std::uint64_t n) {
    util::Rng rng(n * 7919 + 17);
    auto lhs = rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));
    auto rhs = rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));
    std::sort(lhs.begin(), lhs.end());
    std::sort(rhs.begin(), rhs.end());
    std::vector<std::int32_t> out(2 * n);

    GammaSample s;
    s.n = n;
    const auto launch = device.launch(1, [&](sim::WorkItem& wi) {
        merge_charged(lhs, rhs, out, [&](std::uint64_t k) {
            wi.charge_compute(k);
            // A single work-item's sequential walk cannot coalesce with
            // neighbours, but it also isn't scattered; charge plain words so
            // the probe recovers the architectural γ (see DESIGN.md §5.2).
            wi.charge_mem(2 * k, sim::Pattern::kCoalesced);
        });
    });
    s.gpu_time = launch.time;
    const auto level = cpu.run_level(1, [&](std::uint64_t, sim::OpCounter& ops) {
        merge_charged(lhs, rhs, out, [&](std::uint64_t k) {
            ops.charge_compute(k);
            ops.charge_mem(2 * k, sim::Pattern::kCoalesced);
        });
    });
    s.cpu_time = level.time;
    s.ratio = s.cpu_time > 0 ? s.gpu_time / s.cpu_time : 0.0;
    return s;
}

std::vector<GammaSample> gamma_sweep(sim::Device& device, sim::CpuUnit& cpu,
                                     const std::vector<std::uint64_t>& sizes) {
    std::vector<GammaSample> out;
    out.reserve(sizes.size());
    for (std::uint64_t n : sizes) out.push_back(probe_merge_ratio(device, cpu, n));
    return out;
}

double estimate_gamma_inv(const std::vector<GammaSample>& sweep) {
    HPU_CHECK(!sweep.empty(), "empty gamma sweep");
    std::vector<double> ratios;
    ratios.reserve(sweep.size());
    for (const auto& s : sweep) ratios.push_back(s.ratio);
    std::nth_element(ratios.begin(), ratios.begin() + static_cast<std::ptrdiff_t>(ratios.size() / 2),
                     ratios.end());
    return ratios[ratios.size() / 2];
}

}  // namespace hpu::model
