// hpu::verify — the static analysis pass that runs BEFORE a simulation
// (DESIGN.md §12). Three layers:
//
//   1. prove_algorithm: proves every phase of a LevelAlgorithm's declared
//      footprint pairwise disjoint for all admissible shapes (or finds a
//      concrete counterexample the runtime detector must reproduce);
//   2. verify_cpu_run / verify_hybrid_run: reconstruct the exact event
//      plan an executor is about to run — using the same split/chunk/
//      pricing arithmetic the executor uses — and check the schedule
//      invariants (capacity, serialization, transfer precedence, chunk
//      safety, never-worse) on it;
//   3. plan_pipelined: the pipelined chunk/merge-level/guard decision,
//      moved here verbatim from the executor so scheduler and verifier
//      provably agree bit for bit.
//
// The resulting VerifyReport is the certificate executors attach to their
// ExecReport; a proven phase lets the runtime validation layer skip word
// concretization (verify/conformance.hpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/level_algorithm.hpp"
#include "model/basic.hpp"
#include "sim/cpu_unit.hpp"
#include "sim/device.hpp"
#include "sim/hpu.hpp"
#include "util/math.hpp"
#include "verify/conformance.hpp"
#include "verify/footprint.hpp"
#include "verify/prover.hpp"
#include "verify/report.hpp"
#include "verify/schedule.hpp"

namespace hpu::verify {

namespace detail {

/// Same charge model as the executors' hook pricing: perfectly parallel
/// device work over all g lanes.
inline sim::Ticks hook_time(const sim::Device& dev, const sim::OpCounter& ops) {
    return ops.gpu_ops(dev.params().strided_penalty) / dev.params().gamma /
           static_cast<double>(dev.params().g);
}

inline std::uint64_t levels_of(std::uint64_t n, std::uint64_t b, std::uint64_t base) {
    std::uint64_t L = 0, m = n;
    while (m > base) {
        m /= b;
        ++L;
    }
    return L;
}

inline std::uint64_t task_size_at(std::uint64_t n, std::uint64_t a, std::uint64_t i) {
    return n / util::ipow(a, static_cast<std::uint32_t>(i));
}

template <typename T>
void add_cpu_leaves(SchedulePlan& plan, const core::LevelAlgorithm<T>& alg,
                    const sim::CpuUnit& cpu, std::uint64_t region_offset,
                    std::uint64_t region_words, double& t) {
    const std::uint64_t count = region_words / alg.base_size();
    if (count == 0) return;
    const double dur = cpu.uniform_level_time(count, alg.recurrence().leaf_cost);
    plan.events.push_back({PlanEvent::Unit::kCpu, PlanEvent::Kind::kLeaves, t, dur, count,
                           region_offset, region_words,
                           static_cast<double>(count) * alg.recurrence().leaf_cost,
                           "cpu-leaves[" + std::to_string(count) + "]"});
    t += dur;
}

template <typename T>
void add_cpu_levels(SchedulePlan& plan, const core::LevelAlgorithm<T>& alg,
                    const sim::CpuUnit& cpu, std::uint64_t n_total,
                    std::uint64_t region_offset, std::uint64_t region_words,
                    std::uint64_t from_deep, std::uint64_t to_shallow, double& t) {
    const auto rec = alg.recurrence();
    for (std::uint64_t i = from_deep + 1; i-- > to_shallow;) {
        const std::uint64_t sz = task_size_at(n_total, alg.a(), i);
        const std::uint64_t tasks = region_words / sz;
        if (tasks == 0) continue;
        const double ops =
            rec.task_cost(static_cast<double>(n_total), static_cast<double>(i));
        const double dur =
            cpu.uniform_level_time(tasks, ops, alg.level_working_set_bytes(n_total));
        plan.events.push_back({PlanEvent::Unit::kCpu, PlanEvent::Kind::kLevel, t, dur, tasks,
                               region_offset, tasks * sz,
                               static_cast<double>(tasks) * ops,
                               "cpu-level[" + std::to_string(tasks) + "]"});
        t += dur;
    }
}

template <typename T>
void add_gpu_leaves(SchedulePlan& plan, const core::LevelAlgorithm<T>& alg,
                    const sim::Device& dev, std::uint64_t region_offset,
                    std::uint64_t region_words, double& t) {
    const std::uint64_t count = region_words / alg.base_size();
    if (count == 0) return;
    const double dur = dev.uniform_launch_time(count, alg.recurrence().leaf_cost);
    plan.events.push_back({PlanEvent::Unit::kGpu, PlanEvent::Kind::kLeaves, t, dur, count,
                           region_offset, region_words,
                           static_cast<double>(count) * alg.recurrence().leaf_cost,
                           "gpu-leaves[" + std::to_string(count) + "]"});
    t += dur;
}

template <typename T>
void add_gpu_levels(SchedulePlan& plan, const core::LevelAlgorithm<T>& alg,
                    const sim::Device& dev, std::uint64_t n_total,
                    std::uint64_t region_offset, std::uint64_t region_words,
                    std::uint64_t from_deep, std::uint64_t to_shallow, double& t) {
    const auto rec = alg.recurrence();
    for (std::uint64_t i = from_deep + 1; i-- > to_shallow;) {
        const std::uint64_t sz = task_size_at(n_total, alg.a(), i);
        const std::uint64_t tasks = region_words / sz;
        if (tasks == 0) continue;
        const double ops =
            rec.task_cost(static_cast<double>(n_total), static_cast<double>(i)) *
            alg.device_ops_multiplier(dev.params());
        const double dur = dev.uniform_launch_time(tasks, ops);
        plan.events.push_back({PlanEvent::Unit::kGpu, PlanEvent::Kind::kLevel, t, dur, tasks,
                               region_offset, tasks * sz,
                               static_cast<double>(tasks) * ops,
                               "gpu-level[" + std::to_string(tasks) + "]"});
        t += dur;
    }
}

inline void add_transfer(SchedulePlan& plan, PlanEvent::Kind kind,
                         const sim::LinkParams& link, std::uint64_t offset,
                         std::uint64_t words, double start, const char* label) {
    plan.events.push_back({PlanEvent::Unit::kLink, kind, start, link.transfer_time(words), 0,
                           offset, words, 0.0, label});
}

}  // namespace detail

/// Proves (or refutes) intra-level race-freedom of every phase of `alg`,
/// quantifying over all admissible levels and input sizes at once.
template <typename T>
VerifyReport prove_algorithm(const core::LevelAlgorithm<T>& alg) {
    VerifyReport rep;
    rep.attempted = true;
    rep.algorithm = alg.name();
    const std::uint64_t b = alg.b();
    const ProofContext task_ctx{b, alg.base_size() * b, /*sz_fixed=*/false};
    const ProofContext leaf_ctx{b, alg.base_size(), /*sz_fixed=*/true};
    rep.proofs.push_back(
        prove_phase(Phase::kCpuTask, alg.footprint(FootprintQuery{Phase::kCpuTask}), task_ctx));
    rep.proofs.push_back(prove_phase(
        Phase::kDeviceTask, alg.footprint(FootprintQuery{Phase::kDeviceTask}), task_ctx));
    rep.proofs.push_back(
        prove_phase(Phase::kLeaf, alg.footprint(FootprintQuery{Phase::kLeaf}), leaf_ctx));
    for (const PhaseProof& pp : rep.proofs) {
        if (pp.status == ProofStatus::kCounterexample) {
            rep.findings.push_back(
                VerifyFinding{VerifyFinding::Kind::kRaceCounterexample,
                              std::string(to_string(pp.phase)) + ": " +
                                  pp.counterexample->describe()});
        } else if (pp.rules == "malformed") {
            rep.findings.push_back(VerifyFinding{
                VerifyFinding::Kind::kMalformedFootprint,
                std::string(to_string(pp.phase)) + ": declared footprint is not well-formed"});
        }
    }
    return rep;
}

/// Chunk plan, merge level d, and never-worse guard of the pipelined
/// scheduler. This IS the executor's decision procedure (moved here, used
/// by run_pipelined_hybrid), so the verified plan and the executed plan
/// are the same object and the two estimates are bit-identical.
struct PipelineChoice {
    std::vector<ChunkPlan> plan;
    std::uint64_t d = 0;
    sim::Ticks est_chosen = 0.0;
    sim::Ticks est_mono = 0.0;
};

template <typename T>
PipelineChoice plan_pipelined(const core::LevelAlgorithm<T>& alg, const sim::Device& dev,
                              const sim::LinkParams& link, std::uint64_t n, std::uint64_t L,
                              std::uint64_t a, std::uint64_t W, std::uint64_t y,
                              std::uint64_t requested_chunks) {
    // --- Chunk plan over the transfer-level quantum, and the merge level d
    // keeping every chunk's launches saturated.
    const std::uint64_t quantum = detail::task_size_at(n, a, y);
    std::vector<ChunkPlan> plan = plan_chunks(W, quantum, requested_chunks);
    std::uint64_t d = y;
    if (plan.size() > 1) {
        std::uint64_t w_min = plan.front().words;
        for (const ChunkPlan& c : plan) w_min = std::min(w_min, c.words);
        while (d < L && w_min / detail::task_size_at(n, a, d) < dev.params().g) ++d;
    }

    // --- A-priori guard: price both schedules with the analytic arithmetic
    // the executors themselves use, and pipeline only on a strict win.
    const auto rec = alg.recurrence();
    auto level_time = [&](std::uint64_t region, std::uint64_t i) -> sim::Ticks {
        const std::uint64_t tasks = region / detail::task_size_at(n, a, i);
        if (tasks == 0) return 0.0;
        const double ops =
            rec.task_cost(static_cast<double>(n), static_cast<double>(i)) *
            alg.device_ops_multiplier(dev.params());
        return dev.uniform_launch_time(tasks, ops);
    };
    auto leaves_time = [&](std::uint64_t region) -> sim::Ticks {
        const std::uint64_t count = region / alg.base_size();
        return count == 0 ? 0.0 : dev.uniform_launch_time(count, rec.leaf_cost);
    };
    auto hook_est = [&](std::uint64_t region) -> sim::Ticks {
        return detail::hook_time(dev, alg.analytic_gpu_hook_ops(region));
    };
    auto span_estimate = [&](const std::vector<ChunkPlan>& p, std::uint64_t dd) -> sim::Ticks {
        sim::Ticks in_end = 0.0, free = 0.0;
        std::vector<sim::Ticks> ends(p.size(), 0.0);
        for (std::size_t c = 0; c < p.size(); ++c) {
            in_end += link.transfer_time(p[c].words);
            sim::Ticks compute = dd < L ? hook_est(p[c].words) : 0.0;
            compute += leaves_time(p[c].words);
            for (std::uint64_t i = L; i-- > dd;) compute += level_time(p[c].words, i);
            free = std::max(in_end, free) + compute;
            ends[c] = free;
        }
        if (dd > y) {
            sim::Ticks merged = dd < L ? hook_est(W) : 0.0;
            for (std::uint64_t i = dd; i-- > y;) merged += level_time(W, i);
            merged += hook_est(W);  // final un-interleave (y < dd <= L)
            return std::max(free + merged, in_end) + link.transfer_time(W);
        }
        sim::Ticks cursor = in_end;
        for (std::size_t c = 0; c < p.size(); ++c) {
            cursor = std::max(ends[c], cursor) + link.transfer_time(p[c].words);
        }
        return cursor;
    };
    PipelineChoice ch;
    if (plan.size() > 1) {
        const std::vector<ChunkPlan> mono{{0, W}};
        ch.est_chosen = span_estimate(plan, d);
        ch.est_mono = span_estimate(mono, y);
        if (!(ch.est_chosen < ch.est_mono)) {
            plan = mono;
            d = y;
        }
    }
    ch.plan = std::move(plan);
    ch.d = d;
    return ch;
}

/// Certificate for a single-unit CPU run (sequential / multicore).
template <typename T>
VerifyReport verify_cpu_run(const core::LevelAlgorithm<T>& alg, std::uint64_t n,
                            const sim::CpuUnit& cpu, const char* executor) {
    VerifyReport rep = prove_algorithm(alg);
    rep.executor = executor;
    rep.n = n;
    const std::uint64_t L = detail::levels_of(n, alg.b(), alg.base_size());
    SchedulePlan plan;
    plan.executor = executor;
    double t = 0.0;
    detail::add_cpu_leaves(plan, alg, cpu, 0, n, t);
    if (L > 0) detail::add_cpu_levels(plan, alg, cpu, n, 0, n, L - 1, 0, t);
    sim::HpuParams hw;
    hw.cpu = cpu.params();
    check_plan(plan, hw, rep);
    return rep;
}

/// Which hybrid schedule verify_hybrid_run reconstructs, plus its knobs
/// (mirroring the corresponding executor's parameters exactly).
struct RunShape {
    enum class Kind : std::uint8_t { kGpu, kBasic, kAdvanced, kPipelined };
    Kind kind = Kind::kGpu;
    double alpha = 0.5;             ///< advanced/pipelined CPU fraction
    std::uint64_t y = 1;            ///< transfer level
    std::uint64_t chunks = 0;       ///< requested K (pipelined)
    std::uint64_t split_tasks = 0;  ///< split-level threshold (0 = auto)
    bool include_transfers = true;  ///< gpu executor's transfer toggle
};

/// Certificate for a device-involving run: proves the footprints and
/// checks the planned schedule of the chosen executor shape.
template <typename T>
VerifyReport verify_hybrid_run(const core::LevelAlgorithm<T>& alg, std::uint64_t n,
                               sim::Hpu& hpu, const RunShape& shape) {
    const char* names[] = {"gpu", "basic-hybrid", "advanced-hybrid", "pipelined-hybrid"};
    VerifyReport rep = prove_algorithm(alg);
    rep.executor = names[static_cast<int>(shape.kind)];
    rep.n = n;
    const auto& hw = hpu.params();
    const sim::Device& dev = hpu.gpu();
    const sim::CpuUnit& cpu = hpu.cpu();
    const std::uint64_t L = detail::levels_of(n, alg.b(), alg.base_size());
    SchedulePlan plan;
    plan.executor = rep.executor;

    switch (shape.kind) {
        case RunShape::Kind::kGpu: {
            double t = 0.0;
            if (shape.include_transfers) {
                detail::add_transfer(plan, PlanEvent::Kind::kXferIn, hw.link, 0, n, t,
                                     "xfer-in");
                t += hw.link.transfer_time(n);
            }
            t += detail::hook_time(dev, alg.analytic_gpu_hook_ops(n));
            detail::add_gpu_leaves(plan, alg, dev, 0, n, t);
            if (L > 0) detail::add_gpu_levels(plan, alg, dev, n, 0, n, L - 1, 0, t);
            if (shape.include_transfers) {
                detail::add_transfer(plan, PlanEvent::Kind::kXferOut, hw.link, 0, n, t,
                                     "xfer-out");
            }
            break;
        }
        case RunShape::Kind::kBasic: {
            const auto pred =
                model::predict_basic(hw, alg.recurrence(), static_cast<double>(n));
            if (pred.cpu_only) {
                // The executor falls back to run_multicore before verifying,
                // so this shape is only reconstructed for completeness.
                double t = 0.0;
                detail::add_cpu_leaves(plan, alg, cpu, 0, n, t);
                if (L > 0) detail::add_cpu_levels(plan, alg, cpu, n, 0, n, L - 1, 0, t);
                break;
            }
            const std::uint64_t gpu_top = std::min<std::uint64_t>(
                L, static_cast<std::uint64_t>(
                       std::ceil(std::max(0.0, pred.crossover_level))));
            double t = 0.0;
            detail::add_transfer(plan, PlanEvent::Kind::kXferIn, hw.link, 0, n, t, "xfer-in");
            t += hw.link.transfer_time(n);
            if (gpu_top < L) t += detail::hook_time(dev, alg.analytic_gpu_hook_ops(n));
            detail::add_gpu_leaves(plan, alg, dev, 0, n, t);
            if (L > 0) {
                detail::add_gpu_levels(plan, alg, dev, n, 0, n, L - 1, gpu_top, t);
            }
            detail::add_transfer(plan, PlanEvent::Kind::kXferOut, hw.link, 0, n, t,
                                 "xfer-out");
            t += hw.link.transfer_time(n);
            if (gpu_top > 0) {
                detail::add_cpu_levels(plan, alg, cpu, n, 0, n, gpu_top - 1, 0, t);
            }
            break;
        }
        case RunShape::Kind::kAdvanced:
        case RunShape::Kind::kPipelined: {
            const SplitChoice split = choose_split(L, n, alg.a(), shape.alpha, shape.y,
                                                   shape.split_tasks, hw.cpu.p);
            const std::uint64_t off = split.split_elem;
            const std::uint64_t W = n - off;

            // GPU thread.
            double gpu_clock = 0.0;
            if (shape.kind == RunShape::Kind::kAdvanced) {
                double t = 0.0;
                detail::add_transfer(plan, PlanEvent::Kind::kXferIn, hw.link, off, W, t,
                                     "xfer-in");
                t += hw.link.transfer_time(W);
                if (shape.y < L) t += detail::hook_time(dev, alg.analytic_gpu_hook_ops(W));
                detail::add_gpu_leaves(plan, alg, dev, off, W, t);
                if (L > 0) {
                    detail::add_gpu_levels(plan, alg, dev, n, off, W, L - 1, shape.y, t);
                }
                detail::add_transfer(plan, PlanEvent::Kind::kXferOut, hw.link, off, W, t,
                                     "xfer-out");
                gpu_clock = t + hw.link.transfer_time(W);
            } else {
                const PipelineChoice pc = plan_pipelined(
                    alg, dev, hw.link, n, L, alg.a(), W, shape.y,
                    shape.chunks == 0 ? 4 : shape.chunks);
                const std::uint64_t K = pc.plan.size();
                std::vector<double> arrive(K, 0.0);
                double in_end = 0.0;
                for (std::uint64_t c = 0; c < K; ++c) {
                    detail::add_transfer(plan, PlanEvent::Kind::kXferIn, hw.link,
                                         off + pc.plan[c].offset, pc.plan[c].words, in_end,
                                         "xfer-in-chunk");
                    in_end += hw.link.transfer_time(pc.plan[c].words);
                    arrive[c] = in_end;
                }
                double gpu_free = 0.0;
                std::vector<double> ends(K, 0.0);
                for (std::uint64_t c = 0; c < K; ++c) {
                    double t = std::max(arrive[c], gpu_free);
                    if (pc.d < L) {
                        t += detail::hook_time(dev,
                                               alg.analytic_gpu_hook_ops(pc.plan[c].words));
                    }
                    detail::add_gpu_leaves(plan, alg, dev, off + pc.plan[c].offset,
                                           pc.plan[c].words, t);
                    if (L > 0) {
                        detail::add_gpu_levels(plan, alg, dev, n, off + pc.plan[c].offset,
                                               pc.plan[c].words, L - 1, pc.d, t);
                    }
                    gpu_free = t;
                    ends[c] = t;
                }
                if (pc.d > shape.y) {
                    double t = gpu_free;
                    if (pc.d < L) t += detail::hook_time(dev, alg.analytic_gpu_hook_ops(W));
                    detail::add_gpu_levels(plan, alg, dev, n, off, W, pc.d - 1, shape.y, t);
                    t += detail::hook_time(dev, alg.analytic_gpu_hook_ops(W));
                    const double xs = std::max(t, in_end);
                    detail::add_transfer(plan, PlanEvent::Kind::kXferOut, hw.link, off, W, xs,
                                         "xfer-out");
                    gpu_clock = xs + hw.link.transfer_time(W);
                } else {
                    double cursor = in_end;
                    for (std::uint64_t c = 0; c < K; ++c) {
                        const double xs = std::max(ends[c], cursor);
                        detail::add_transfer(plan, PlanEvent::Kind::kXferOut, hw.link,
                                             off + pc.plan[c].offset, pc.plan[c].words, xs,
                                             "xfer-out-chunk");
                        cursor = xs + hw.link.transfer_time(pc.plan[c].words);
                    }
                    gpu_clock = cursor;
                }
                check_never_worse(pc.est_chosen, pc.est_mono, K, rep);
            }

            // CPU thread (concurrent), sync, finish — the advanced hybrid's.
            double cpu_clock = 0.0;
            detail::add_cpu_leaves(plan, alg, cpu, 0, off, cpu_clock);
            if (L > 0) {
                detail::add_cpu_levels(plan, alg, cpu, n, 0, off, L - 1, split.s, cpu_clock);
            }
            double fin = std::max(gpu_clock, cpu_clock);
            if (shape.y > split.s) {
                detail::add_cpu_levels(plan, alg, cpu, n, off, W, shape.y - 1, split.s, fin);
            }
            if (split.s > 0) {
                detail::add_cpu_levels(plan, alg, cpu, n, 0, n, split.s - 1, 0, fin);
            }
            break;
        }
    }
    check_plan(plan, hpu.params(), rep);
    return rep;
}

/// Downgrade certificate for an irregular (data-dependent) run: the task
/// lists exist only at run time, so there is nothing the symbolic prover
/// can quantify over — every phase is recorded kUnknown and an explicit
/// kDynamicFootprint finding documents the proven→checked downgrade.
/// Consequences, by construction of the runtime: VerifyReport::proven() is
/// false for every phase, so under ExecOptions::validate the irregular
/// engine keeps the *exact* passes on — declared-extent disjointness
/// (analysis::detect_extent_overlaps) plus word-level race concretization
/// over the dynamic access sets — instead of the cheaper conformance check
/// proven regular phases earn. certified() is false: an irregular run is
/// checked, never certified.
inline VerifyReport verify_irregular_run(const std::string& algorithm,
                                         const std::string& executor, std::uint64_t n) {
    VerifyReport rep;
    rep.attempted = true;
    rep.algorithm = algorithm;
    rep.executor = executor;
    rep.n = n;
    for (const Phase ph : {Phase::kCpuTask, Phase::kDeviceTask, Phase::kLeaf}) {
        PhaseProof pp;
        pp.phase = ph;
        pp.status = ProofStatus::kUnknown;
        rep.proofs.push_back(pp);
    }
    rep.findings.push_back(VerifyFinding{
        VerifyFinding::Kind::kDynamicFootprint,
        "task lists are data-dependent; static race-freedom proofs downgraded to runtime "
        "checks (extent disjointness + exact race detection per dynamic level)"});
    return rep;
}

}  // namespace hpu::verify
