#include "verify/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/math.hpp"

namespace hpu::verify {

std::vector<ChunkPlan> plan_chunks(std::uint64_t region, std::uint64_t quantum,
                                   std::uint64_t k) {
    const std::uint64_t slots = region / quantum;
    k = std::clamp<std::uint64_t>(k, 1, slots);
    std::vector<ChunkPlan> plan(k);
    std::size_t off = 0;
    for (std::uint64_t c = 0; c < k; ++c) {
        const std::uint64_t words = (slots / k + (c < slots % k ? 1 : 0)) * quantum;
        plan[c] = {off, words};
        off += words;
    }
    return plan;
}

SplitChoice choose_split(std::uint64_t L, std::uint64_t n, std::uint64_t a, double alpha,
                         std::uint64_t y, std::uint64_t split_tasks, std::uint64_t p) {
    auto tasks_at = [&](std::uint64_t level) {
        return util::ipow(a, static_cast<std::uint32_t>(level));
    };
    if (split_tasks == 0) {
        split_tasks = std::max<std::uint64_t>(4 * p, 64);
    }
    SplitChoice ch;
    std::uint64_t s = 0;
    while (s < L && tasks_at(s) < split_tasks) ++s;
    s = std::min<std::uint64_t>(s, y);  // split cannot sit below the transfer level
    ch.s = s;
    ch.S = tasks_at(s);
    ch.cpu_tasks = std::clamp<std::uint64_t>(
        static_cast<std::uint64_t>(std::llround(alpha * static_cast<double>(ch.S))), 1,
        ch.S - 1);
    ch.split_elem = ch.cpu_tasks * (n / ch.S);
    ch.alpha_effective = static_cast<double>(ch.cpu_tasks) / static_cast<double>(ch.S);
    return ch;
}

namespace {

double tol(double x) { return 1e-9 * std::max(1.0, x); }

bool region_overlap(const PlanEvent& a, const PlanEvent& b) {
    if (a.words == 0 || b.words == 0) return false;
    return a.offset < b.offset + b.words && b.offset < a.offset + a.words;
}

bool time_overlap(const PlanEvent& a, const PlanEvent& b) {
    const double end_a = a.start + a.duration;
    const double end_b = b.start + b.duration;
    return a.start < end_b - tol(end_b) && b.start < end_a - tol(end_a);
}

bool is_compute(const PlanEvent& e) {
    return e.kind == PlanEvent::Kind::kLevel || e.kind == PlanEvent::Kind::kLeaves;
}

void finding(VerifyReport& rep, VerifyFinding::Kind kind, const std::string& detail) {
    rep.findings.push_back(VerifyFinding{kind, detail});
}

}  // namespace

void check_plan(const SchedulePlan& plan, const sim::HpuParams& hw, VerifyReport& rep) {
    const double p = static_cast<double>(hw.cpu.p);
    const double g = static_cast<double>(hw.gpu.g);

    // --- Per-event capacity conservation: the duration the plan budgets
    // must cover the event's total work spread over the unit's parallel
    // slots (p task-streams / g lanes plus the launch overhead).
    for (const PlanEvent& e : plan.events) {
        if (!is_compute(e)) continue;
        bool ok = true;
        std::ostringstream why;
        if (e.unit == PlanEvent::Unit::kCpu) {
            ok = e.duration * p + tol(e.work) >= e.work;
            if (!ok) {
                why << e.label << ": " << e.work << " ops exceed " << e.duration << " x " << p
                    << " CPU core-ticks";
            }
        } else if (e.unit == PlanEvent::Unit::kGpu) {
            const double need = hw.gpu.launch_overhead + e.work / (hw.gpu.gamma * g);
            ok = e.duration + tol(need) >= need;
            if (!ok) {
                why << e.label << ": launch needs " << need << " ticks over " << g
                    << " lanes but the plan budgets " << e.duration;
            }
        }
        if (ok) {
            ++rep.checks_passed;
        } else {
            finding(rep, VerifyFinding::Kind::kCapacityExceeded, why.str());
        }

        // Wave conservation: the waves of the launch re-partition its tasks
        // exactly — no task dropped, none double-scheduled.
        if (e.tasks > 0) {
            const std::uint64_t width =
                e.unit == PlanEvent::Unit::kGpu ? hw.gpu.g : hw.cpu.p;
            const std::uint64_t waves = width > 0 ? util::ceil_div(e.tasks, width) : 0;
            std::uint64_t covered = 0;
            for (std::uint64_t w = 0; w < waves; ++w) {
                covered += std::min<std::uint64_t>(width, e.tasks - w * width);
            }
            if (covered == e.tasks) {
                ++rep.checks_passed;
            } else {
                std::ostringstream os;
                os << e.label << ": " << waves << " waves of width " << width << " cover "
                   << covered << " of " << e.tasks << " tasks";
                finding(rep, VerifyFinding::Kind::kWaveConservation, os.str());
            }
        }
    }

    // --- Per-unit serialization: one unit never runs two events at once.
    for (const PlanEvent::Unit unit :
         {PlanEvent::Unit::kCpu, PlanEvent::Unit::kGpu, PlanEvent::Unit::kLink}) {
        std::vector<const PlanEvent*> on_unit;
        for (const PlanEvent& e : plan.events) {
            if (e.unit == unit && e.duration > 0.0) on_unit.push_back(&e);
        }
        std::sort(on_unit.begin(), on_unit.end(),
                  [](const PlanEvent* a, const PlanEvent* b) { return a->start < b->start; });
        for (std::size_t i = 1; i < on_unit.size(); ++i) {
            const PlanEvent& prev = *on_unit[i - 1];
            const PlanEvent& cur = *on_unit[i];
            const double prev_end = prev.start + prev.duration;
            if (cur.start + tol(prev_end) >= prev_end) {
                ++rep.checks_passed;
            } else {
                std::ostringstream os;
                os << cur.label << " starts at " << cur.start << " while " << prev.label
                   << " still runs until " << prev_end;
                finding(rep, VerifyFinding::Kind::kCapacityExceeded, os.str());
            }
        }
    }

    // --- Transfer-before-use: when the plan ships data at all, every
    // device event's region must be covered by transfers that finished
    // before the event starts.
    std::vector<const PlanEvent*> xfers_in;
    std::vector<const PlanEvent*> xfers_out;
    for (const PlanEvent& e : plan.events) {
        if (e.kind == PlanEvent::Kind::kXferIn) xfers_in.push_back(&e);
        if (e.kind == PlanEvent::Kind::kXferOut) xfers_out.push_back(&e);
    }
    if (!xfers_in.empty()) {
        for (const PlanEvent& e : plan.events) {
            if (e.unit != PlanEvent::Unit::kGpu || !is_compute(e) || e.words == 0) continue;
            std::vector<std::pair<std::uint64_t, std::uint64_t>> arrived;
            for (const PlanEvent* x : xfers_in) {
                if (x->start + x->duration <= e.start + tol(e.start)) {
                    arrived.emplace_back(x->offset, x->offset + x->words);
                }
            }
            std::sort(arrived.begin(), arrived.end());
            std::uint64_t cursor = e.offset;
            const std::uint64_t end = e.offset + e.words;
            for (const auto& [lo, hi] : arrived) {
                if (lo > cursor) break;
                cursor = std::max(cursor, hi);
            }
            if (cursor >= end) {
                ++rep.checks_passed;
            } else {
                std::ostringstream os;
                os << e.label << " reads elements [" << e.offset << ", " << end
                   << ") at tick " << e.start << " but only [" << e.offset << ", " << cursor
                   << ") has arrived";
                finding(rep, VerifyFinding::Kind::kPrecedenceViolation, os.str());
            }
        }
    }

    // --- Readback precedence: a transfer back to the host must start
    // after every device event that touches its region has finished.
    for (const PlanEvent* x : xfers_out) {
        for (const PlanEvent& e : plan.events) {
            if (e.unit != PlanEvent::Unit::kGpu || !is_compute(e)) continue;
            if (!region_overlap(e, *x)) continue;
            const double e_end = e.start + e.duration;
            if (x->start + tol(e_end) >= e_end) {
                ++rep.checks_passed;
            } else {
                std::ostringstream os;
                os << x->label << " ships at " << x->start << " while " << e.label
                   << " still computes its region until " << e_end;
                finding(rep, VerifyFinding::Kind::kPrecedenceViolation, os.str());
            }
        }
        // ... and host work on that region must wait for the readback.
        for (const PlanEvent& e : plan.events) {
            if (e.unit != PlanEvent::Unit::kCpu || !is_compute(e)) continue;
            if (!region_overlap(e, *x)) continue;
            const double x_end = x->start + x->duration;
            if (e.start + tol(x_end) >= x_end) {
                ++rep.checks_passed;
            } else {
                std::ostringstream os;
                os << e.label << " starts at " << e.start << " before " << x->label
                   << " returns its region at " << x_end;
                finding(rep, VerifyFinding::Kind::kPrecedenceViolation, os.str());
            }
        }
    }

    // --- Pipelined chunk double-buffer safety: input chunks are pairwise
    // disjoint in space, and no kernel overlaps a chunk still in flight.
    for (std::size_t i = 0; i < xfers_in.size(); ++i) {
        for (std::size_t k = i + 1; k < xfers_in.size(); ++k) {
            if (!region_overlap(*xfers_in[i], *xfers_in[k])) {
                ++rep.checks_passed;
            } else {
                std::ostringstream os;
                os << xfers_in[i]->label << " and " << xfers_in[k]->label
                   << " stream overlapping element ranges";
                finding(rep, VerifyFinding::Kind::kChunkOverlap, os.str());
            }
        }
    }
    for (const PlanEvent* x : xfers_in) {
        for (const PlanEvent& e : plan.events) {
            if (e.unit != PlanEvent::Unit::kGpu || !is_compute(e)) continue;
            if (!region_overlap(e, *x)) continue;
            if (!time_overlap(e, *x)) {
                ++rep.checks_passed;
            } else {
                std::ostringstream os;
                os << e.label << " computes over " << x->label
                   << " while the link still streams it";
                finding(rep, VerifyFinding::Kind::kChunkOverlap, os.str());
            }
        }
    }
}

void check_never_worse(double est_chosen, double est_mono, std::uint64_t chunks,
                       VerifyReport& rep) {
    if (chunks <= 1) {
        ++rep.checks_passed;  // guard degenerated the schedule; trivially safe
        return;
    }
    if (est_chosen < est_mono) {
        ++rep.checks_passed;
    } else {
        std::ostringstream os;
        os << "pipelined estimate " << est_chosen << " is not below the monolithic "
           << est_mono << " despite K=" << chunks;
        finding(rep, VerifyFinding::Kind::kNeverWorseViolated, os.str());
    }
}

}  // namespace hpu::verify
