// Runtime conformance of logged accesses against the declared symbolic
// footprint. For launches whose phase the prover certified race-free, the
// executors swap the word-by-word race detector for this check: every
// logged stride walk must lie inside SOME declared walk of the footprint
// (writes inside declared writes, reads inside declared reads or writes).
// Containment is decided per walk from its endpoints and stride — O(#walk
// descriptors), never O(words) — which is the validate-path payoff of a
// proof. A logged access outside the declaration is a
// FindingKind::kFootprintViolation: the footprint lied, and the proof
// built on it is void.
//
// Budget and counter semantics mirror analysis::detect_races exactly
// (launches_checked, launches_skipped, fail_on_skip, the per-launch
// finding cap), so the AnalysisReport of a clean run is byte-identical
// whether a launch was concretized or conformance-checked.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "analysis/race.hpp"
#include "analysis/report.hpp"
#include "sim/access_log.hpp"
#include "verify/footprint.hpp"

namespace hpu::verify {

/// Checks one launch of logs.size() tasks, each of `task_size` words,
/// against the phase footprint `fp`. `wave_width` is only used for wave
/// attribution in diagnostics. Findings and counters go to `report`.
void check_conformance(const TaskFootprint& fp,
                       const std::vector<sim::ItemAccessLog>& logs, std::uint64_t task_size,
                       std::uint64_t wave_width, std::string_view launch_label,
                       analysis::AnalysisReport& report,
                       const analysis::RaceOptions& opts = {});

}  // namespace hpu::verify
