// Static schedule verification: the executors' planned event sequences
// (levels, leaf sweeps, transfers) re-expressed as a flat SchedulePlan and
// checked against the resource invariants the paper's schedulers promise —
// per-event capacity conservation (a CPU slot fits at most p task-streams,
// a device launch at most g lanes per wave), per-unit serialization,
// transfer-before-use precedence, pipelined chunk double-buffer safety,
// and the pipelined never-worse guard. Violations become VerifyFindings on
// the run's certificate; invariants that hold bump checks_passed.
//
// This header also owns the split/chunk planning arithmetic shared by the
// advanced and pipelined executors (choose_split, plan_chunks) so the
// verifier provably checks the SAME plan the executor runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/params.hpp"
#include "verify/report.hpp"

namespace hpu::verify {

/// One planned transfer chunk of the GPU slice (element offset + length).
struct ChunkPlan {
    std::size_t offset = 0;
    std::uint64_t words = 0;
};

/// Splits `region` elements into at most `k` chunks, each a multiple of
/// `quantum` (the transfer-level task size, so no task ever straddles a
/// chunk boundary at any level the chunks execute). Leading chunks take
/// the remainder quanta.
std::vector<ChunkPlan> plan_chunks(std::uint64_t region, std::uint64_t quantum,
                                   std::uint64_t k);

/// The advanced/pipelined split decision at explicit (alpha, y): which
/// level the array divides at and how many of its tasks the CPU takes.
struct SplitChoice {
    std::uint64_t s = 0;          ///< split level
    std::uint64_t S = 0;          ///< tasks at the split level
    std::uint64_t cpu_tasks = 0;  ///< tasks assigned to the CPU slice
    std::uint64_t split_elem = 0; ///< element count of the CPU slice
    double alpha_effective = 0.0; ///< realized CPU work ratio
};

/// Mirrors the split arithmetic of run_advanced_hybrid /
/// run_pipelined_hybrid exactly: first level with >= split_tasks tasks,
/// clamped to the transfer level y; split_tasks == 0 selects the
/// max(4p, 64) auto threshold.
SplitChoice choose_split(std::uint64_t L, std::uint64_t n, std::uint64_t a, double alpha,
                         std::uint64_t y, std::uint64_t split_tasks, std::uint64_t p);

/// One planned event on one unit with its resource demand: `tasks`
/// parallel streams of `work` total ops over [start, start+duration),
/// touching `words` elements at `offset` of the launch address space.
struct PlanEvent {
    enum class Unit : std::uint8_t { kCpu, kGpu, kLink };
    enum class Kind : std::uint8_t { kLevel, kLeaves, kXferIn, kXferOut };
    Unit unit = Unit::kCpu;
    Kind kind = Kind::kLevel;
    double start = 0.0;
    double duration = 0.0;
    std::uint64_t tasks = 0;
    std::uint64_t offset = 0;
    std::uint64_t words = 0;
    double work = 0.0;
    std::string label;
};

/// A whole planned run of one executor.
struct SchedulePlan {
    std::string executor;
    std::vector<PlanEvent> events;
};

/// Checks every schedule invariant of `plan` against the hardware
/// parameters; findings / passed counts land in `report`.
void check_plan(const SchedulePlan& plan, const sim::HpuParams& hw, VerifyReport& report);

/// The pipelined a-priori guard restated as an invariant: with K > 1
/// chunks the chosen estimate must be strictly below the monolithic one.
void check_never_worse(double est_chosen, double est_mono, std::uint64_t chunks,
                       VerifyReport& report);

}  // namespace hpu::verify
