// Symbolic footprint algebra — the vocabulary of the static verifier
// (DESIGN.md §12). A LevelAlgorithm declares, per execution phase, the
// access set of ONE task as a union of affine stride walks parameterized
// over the task size `sz`, the level task count `count`, and the task
// index `j`:
//
//   { base(sz,count) + j·jcoef(sz,count) + k·stride(sz,count) :
//     0 <= k < words(sz,count) }
//
// Every coefficient is a Sym — a linear form over (sz, count) with a
// common integer denominator, which is exactly the expressivity the
// regular-D&C algorithms of this repo need (slices, halves, interleaved
// columns) while keeping disjointness decidable. The prover
// (verify/prover.hpp) decides pairwise disjointness of these sets for all
// admissible (sz, count) at once; the conformance checker
// (verify/conformance.hpp) re-checks every runtime-logged access against
// the declaration, so a lie in the footprint is itself a finding.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/validate.hpp"

namespace hpu::verify {

/// HPU_VERIFY environment default for ExecOptions::verify (same convention
/// as HPU_VALIDATE / HPU_PROFILE).
inline bool env_verify_default() { return analysis::env_flag_enabled("HPU_VERIFY"); }

/// Ranges the symbolic parameters quantify over when proving facts about a
/// phase: sz >= sz_min (or sz == sz_min exactly for leaf phases, whose
/// task size never varies) and count >= cnt_min. Two tasks require
/// count >= 2 — a single-task level cannot race.
struct Bounds {
    double sz_min = 2.0;
    bool sz_fixed = false;
    double cnt_min = 2.0;
};

/// Linear form (c1 + c_sz·sz + c_cnt·count) / den with integer
/// coefficients and a positive denominator. The den covers the halves and
/// quarters regular D&C footprints need (e.g. a run of sz/2 elements).
struct Sym {
    std::int64_t c1 = 0;     ///< constant term
    std::int64_t c_sz = 0;   ///< coefficient of the task size
    std::int64_t c_cnt = 0;  ///< coefficient of the level task count
    std::int64_t den = 1;    ///< common positive denominator

    /// The literal constant v.
    static Sym lit(std::int64_t v) { return Sym{v, 0, 0, 1}; }
    /// num·sz / den (defaults to sz itself).
    static Sym size(std::int64_t num = 1, std::int64_t d = 1) { return Sym{0, num, 0, d}; }
    /// num·count.
    static Sym count(std::int64_t num = 1) { return Sym{0, 0, num, 1}; }

    bool is_const() const noexcept { return c_sz == 0 && c_cnt == 0; }

    double eval(double sz, double cnt) const noexcept {
        return (static_cast<double>(c1) + static_cast<double>(c_sz) * sz +
                static_cast<double>(c_cnt) * cnt) /
               static_cast<double>(den);
    }

    /// Structural equality up to the denominator (2·sz/2 == sz).
    bool equiv(const Sym& o) const noexcept {
        return c1 * o.den == o.c1 * den && c_sz * o.den == o.c_sz * den &&
               c_cnt * o.den == o.c_cnt * den;
    }

    /// Provably >= 0 over the whole quantified range: coefficients of the
    /// free parameters must be nonnegative (else the form is unbounded
    /// below) and the corner evaluation must be nonnegative.
    bool nonneg(const Bounds& b) const noexcept {
        if (den <= 0) return false;
        if (c_cnt < 0) return false;
        if (c_sz < 0 && !b.sz_fixed) return false;
        return eval(b.sz_min, b.cnt_min) >= 0.0;
    }

    friend Sym operator+(const Sym& x, const Sym& y) {
        return Sym{x.c1 * y.den + y.c1 * x.den, x.c_sz * y.den + y.c_sz * x.den,
                   x.c_cnt * y.den + y.c_cnt * x.den, x.den * y.den};
    }
    friend Sym operator-(const Sym& x, const Sym& y) {
        return Sym{x.c1 * y.den - y.c1 * x.den, x.c_sz * y.den - y.c_sz * x.den,
                   x.c_cnt * y.den - y.c_cnt * x.den, x.den * y.den};
    }
    /// Scale by an integer factor.
    Sym scaled(std::int64_t k) const { return Sym{c1 * k, c_sz * k, c_cnt * k, den}; }
};

/// Address space an access lives in. kData/kScratch are the concrete
/// regions of the launch address space (the scratch arena sits at
/// kScratchRegionBase, see below). kPing/kPong are the two halves of a
/// double-buffer whose binding to the concrete regions flips every level
/// (the coalesced mergesort) — the prover treats ping-vs-pong as disjoint
/// without knowing the current orientation, and the conformance checker
/// tries both orientations.
enum class Region : std::uint8_t { kData, kScratch, kPing, kPong };

/// Simulated address offset of the scratch arena — shared by algorithms
/// that log scratch accesses and by the conformance checker.
inline constexpr std::uint64_t kScratchRegionBase = 1ull << 40;

/// True for regions with a fixed concrete base address.
inline constexpr bool concrete_region(Region r) noexcept {
    return r == Region::kData || r == Region::kScratch;
}

/// Two distinct regions of the same family never share an address; a
/// concrete and an abstract region may alias (unknown orientation).
inline constexpr bool regions_disjoint(Region a, Region b) noexcept {
    return a != b && concrete_region(a) == concrete_region(b);
}

/// One symbolic stride walk of task j (see file header for the set it
/// denotes). Addresses are element offsets relative to the launch region.
struct SymAccess {
    Region region = Region::kData;
    Sym base;                 ///< first word before the j term
    Sym jcoef;                ///< multiplied by the task index j
    Sym words = Sym::lit(1);  ///< number of words touched
    Sym stride = Sym::lit(1); ///< distance between consecutive words
};

/// Declared per-task access set of one phase: what ONE task (any j) may
/// read and write. An empty footprint means "touches nothing" and is
/// trivially race-free — distinct from an undeclared (nullopt) footprint.
struct TaskFootprint {
    std::vector<SymAccess> reads;
    std::vector<SymAccess> writes;

    bool empty() const noexcept { return reads.empty() && writes.empty(); }
};

/// The three execution phases a LevelAlgorithm body can run in. The CPU
/// and device task phases may have different footprints (the §6.3
/// coalesced mergesort overrides only the device walk); the leaf phase
/// covers run_leaf on either unit.
enum class Phase : std::uint8_t { kCpuTask, kDeviceTask, kLeaf };

inline const char* to_string(Phase p) noexcept {
    switch (p) {
        case Phase::kCpuTask: return "cpu-task";
        case Phase::kDeviceTask: return "device-task";
        case Phase::kLeaf: return "leaf";
    }
    return "?";
}

/// Query handed to LevelAlgorithm::footprint. Level and input size default
/// to kSymbolic — "declare the footprint for ALL levels and sizes", which
/// every shipped algorithm can do; a future irregular algorithm may
/// specialize on concrete values and return nullopt for the general query.
struct FootprintQuery {
    static constexpr std::uint64_t kSymbolic = ~0ull;
    Phase phase = Phase::kCpuTask;
    std::uint64_t level = kSymbolic;
    std::uint64_t n = kSymbolic;
};

}  // namespace hpu::verify
