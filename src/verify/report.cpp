#include "verify/report.hpp"

#include <sstream>

namespace hpu::verify {

const char* to_string(ProofStatus s) noexcept {
    switch (s) {
        case ProofStatus::kProven: return "proven";
        case ProofStatus::kCounterexample: return "counterexample";
        case ProofStatus::kUnknown: return "unknown";
        case ProofStatus::kUndeclared: return "undeclared";
    }
    return "?";
}

std::string Counterexample::describe() const {
    std::ostringstream os;
    os << (write_write ? "write-write" : "read-write") << " overlap at word " << word
       << ": tasks j=" << j_a << " and j'=" << j_b << " of level " << level << " (" << count
       << " tasks of " << sz << " words, n=" << n << ")";
    return os.str();
}

const char* to_string(VerifyFinding::Kind k) noexcept {
    switch (k) {
        case VerifyFinding::Kind::kRaceCounterexample: return "race-counterexample";
        case VerifyFinding::Kind::kMalformedFootprint: return "malformed-footprint";
        case VerifyFinding::Kind::kCapacityExceeded: return "capacity-exceeded";
        case VerifyFinding::Kind::kWaveConservation: return "wave-conservation";
        case VerifyFinding::Kind::kPrecedenceViolation: return "precedence-violation";
        case VerifyFinding::Kind::kChunkOverlap: return "chunk-overlap";
        case VerifyFinding::Kind::kNeverWorseViolated: return "never-worse-violated";
        case VerifyFinding::Kind::kDynamicFootprint: return "dynamic-footprint";
    }
    return "?";
}

std::string VerifyFinding::message() const {
    return std::string(to_string(kind)) + ": " + detail;
}

const PhaseProof* VerifyReport::proof(Phase p) const {
    for (const PhaseProof& pp : proofs) {
        if (pp.phase == p) return &pp;
    }
    return nullptr;
}

bool VerifyReport::proven(Phase p) const {
    const PhaseProof* pp = proof(p);
    return pp != nullptr && pp->status == ProofStatus::kProven;
}

bool VerifyReport::race_free() const {
    if (proofs.empty()) return false;
    for (const PhaseProof& pp : proofs) {
        if (pp.status != ProofStatus::kProven) return false;
    }
    return true;
}

bool VerifyReport::certified() const {
    return attempted && race_free() && findings.empty();
}

std::string VerifyReport::summary() const {
    std::ostringstream os;
    os << "verify " << algorithm << "/" << executor << " n=" << n << ": ";
    if (!attempted) {
        os << "not attempted";
        return os.str();
    }
    os << (certified() ? "certified" : "NOT certified");
    for (const PhaseProof& pp : proofs) {
        os << "; " << to_string(pp.phase) << "=" << to_string(pp.status);
        if (!pp.rules.empty()) os << "(" << pp.rules << ")";
    }
    os << "; " << checks_passed << " schedule checks passed, " << findings.size()
       << " findings";
    return os.str();
}

namespace {

void json_escape(std::ostringstream& os, const std::string& s) {
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\') os << '\\';
        os << c;
    }
    os << '"';
}

}  // namespace

std::string VerifyReport::to_json() const {
    std::ostringstream os;
    os << "{\"algorithm\":";
    json_escape(os, algorithm);
    os << ",\"executor\":";
    json_escape(os, executor);
    os << ",\"n\":" << n << ",\"attempted\":" << (attempted ? "true" : "false")
       << ",\"race_free\":" << (race_free() ? "true" : "false")
       << ",\"certified\":" << (certified() ? "true" : "false") << ",\"checks_passed\":"
       << checks_passed << ",\"proofs\":[";
    for (std::size_t i = 0; i < proofs.size(); ++i) {
        const PhaseProof& pp = proofs[i];
        if (i > 0) os << ",";
        os << "{\"phase\":";
        json_escape(os, to_string(pp.phase));
        os << ",\"status\":";
        json_escape(os, to_string(pp.status));
        os << ",\"rules\":";
        json_escape(os, pp.rules);
        os << ",\"pairs_checked\":" << pp.pairs_checked;
        if (pp.counterexample.has_value()) {
            const Counterexample& ce = *pp.counterexample;
            os << ",\"counterexample\":{\"n\":" << ce.n << ",\"level\":" << ce.level
               << ",\"count\":" << ce.count << ",\"sz\":" << ce.sz << ",\"j_a\":" << ce.j_a
               << ",\"j_b\":" << ce.j_b << ",\"word\":" << ce.word << ",\"write_write\":"
               << (ce.write_write ? "true" : "false") << "}";
        }
        os << "}";
    }
    os << "],\"findings\":[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        if (i > 0) os << ",";
        os << "{\"kind\":";
        json_escape(os, to_string(findings[i].kind));
        os << ",\"detail\":";
        json_escape(os, findings[i].detail);
        os << "}";
    }
    os << "]}";
    return os.str();
}

}  // namespace hpu::verify
