// The machine-readable certificate of the static verifier: per-phase
// race-freedom proofs (or counterexamples) plus schedule-invariant
// findings. Executors attach one VerifyReport to each ExecReport when
// ExecOptions::verify is on; the runtime validation layer consults it to
// skip word-level race concretization for statically proven launches.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "verify/footprint.hpp"

namespace hpu::verify {

/// Outcome of one phase's disjointness proof.
enum class ProofStatus : std::uint8_t {
    kProven,          ///< pairwise disjoint for ALL admissible (n, level, j, j')
    kCounterexample,  ///< a concrete overlapping (n, level, j, j') exists
    kUnknown,         ///< outside the decidable fragment; runtime checks stay on
    kUndeclared,      ///< the algorithm declared no footprint for this phase
};

const char* to_string(ProofStatus s) noexcept;

/// Concrete witness of a footprint overlap: at input size n, level `level`
/// (count tasks of sz words), tasks j_a and j_b both touch `word`.
struct Counterexample {
    std::uint64_t n = 0;
    std::uint64_t level = 0;
    std::uint64_t count = 0;
    std::uint64_t sz = 0;
    std::uint64_t j_a = 0;
    std::uint64_t j_b = 0;
    std::uint64_t word = 0;
    bool write_write = true;  ///< WW overlap (else RW)

    std::string describe() const;
};

/// Proof result for one execution phase.
struct PhaseProof {
    Phase phase = Phase::kCpuTask;
    ProofStatus status = ProofStatus::kUndeclared;
    /// '+'-joined disjointness rules the proof used ("region", "slice",
    /// "column", "empty", "no-writes"); empty unless proven.
    std::string rules;
    std::optional<Counterexample> counterexample;
    std::uint64_t pairs_checked = 0;
};

/// One violated invariant of the static pass.
struct VerifyFinding {
    enum class Kind : std::uint8_t {
        kRaceCounterexample,   ///< a phase proof produced a concrete overlap
        kMalformedFootprint,   ///< a declared footprint is not well-formed
        kCapacityExceeded,     ///< planned work exceeds unit capacity per slot
        kWaveConservation,     ///< waves of a launch do not conserve its tasks
        kPrecedenceViolation,  ///< use before transfer / compute after readback
        kChunkOverlap,         ///< pipelined chunks overlap in space or time
        kNeverWorseViolated,   ///< pipelined estimate not below the monolithic one
        kDynamicFootprint,     ///< data-dependent task list: proven downgraded to checked
    };
    Kind kind = Kind::kRaceCounterexample;
    std::string detail;

    std::string message() const;
};

const char* to_string(VerifyFinding::Kind k) noexcept;

/// The certificate. `attempted` is false when verification never ran
/// (ExecOptions::verify off) — all queries then answer conservatively.
struct VerifyReport {
    bool attempted = false;
    std::string algorithm;
    std::string executor;
    std::uint64_t n = 0;
    std::vector<PhaseProof> proofs;
    std::vector<VerifyFinding> findings;
    /// Schedule invariants that held (capacity, conservation, precedence,
    /// chunk safety, never-worse).
    std::uint64_t checks_passed = 0;

    const PhaseProof* proof(Phase p) const;

    /// This phase is statically race-free (drives the runtime skip).
    bool proven(Phase p) const;

    /// Every recorded phase proof is kProven.
    bool race_free() const;

    /// Verification ran, proved race-freedom, and found no schedule
    /// violation.
    bool certified() const;

    std::string summary() const;
    std::string to_json() const;
};

}  // namespace hpu::verify
