#include "verify/conformance.hpp"

#include <cmath>
#include <optional>
#include <sstream>
#include <string>

namespace hpu::verify {
namespace {

std::uint64_t total_words(const std::vector<sim::ItemAccessLog>& items) {
    std::uint64_t w = 0;
    for (const auto& it : items) {
        for (const auto& a : it.reads) w += a.words;
        for (const auto& a : it.writes) w += a.words;
    }
    return w;
}

/// A declared walk concretized for one task: base already includes the
/// region offset and the j term.
struct ConcreteWalk {
    std::uint64_t base = 0, jcoef = 0, words = 0, stride = 1;
};

std::optional<std::uint64_t> concretize(const Sym& s, std::uint64_t sz, std::uint64_t count) {
    const double v = s.eval(static_cast<double>(sz), static_cast<double>(count));
    if (v < 0.0 || v != std::floor(v)) return std::nullopt;
    return static_cast<std::uint64_t>(v);
}

/// Concrete base offset of a region under double-buffer orientation
/// `flipped` (kPing/kPong bind to data/scratch one way or the other).
std::uint64_t region_base(Region r, bool flipped) {
    switch (r) {
        case Region::kData: return 0;
        case Region::kScratch: return kScratchRegionBase;
        case Region::kPing: return flipped ? kScratchRegionBase : 0;
        case Region::kPong: return flipped ? 0 : kScratchRegionBase;
    }
    return 0;
}

/// True iff every word of the logged walk `p` lies in the concrete walk
/// `q` — decided from p's endpoints and stride alone.
bool contains(const ConcreteWalk& q, const sim::MemAccess& p) {
    auto member = [&](std::uint64_t x) {
        if (x < q.base) return false;
        const std::uint64_t off = x - q.base;
        if (q.stride == 0) return off == 0;
        return off % q.stride == 0 && off / q.stride < q.words;
    };
    if (!member(p.begin)) return false;
    if (p.words == 1 || p.stride == 0) return true;
    if (!member(p.last())) return false;
    if (p.words == 2) return true;
    // Interior words: p advances in multiples of q.stride, so landing on
    // both endpoints pins every step inside q.
    return q.stride <= 1 || p.stride % q.stride == 0;
}

struct Violation {
    std::uint64_t item = 0;
    std::uint64_t address = 0;
    bool is_write = true;
};

/// All conformance violations of the launch under one orientation (capped
/// — one per logged walk is enough to void the proof).
std::vector<Violation> violations_under(const TaskFootprint& fp,
                                        const std::vector<sim::ItemAccessLog>& logs,
                                        std::uint64_t sz, bool flipped) {
    const std::uint64_t count = logs.size();
    std::vector<ConcreteWalk> writes;
    std::vector<ConcreteWalk> reads;  // declared reads only; writes also admit reads
    auto concretize_all = [&](const std::vector<SymAccess>& decl,
                              std::vector<ConcreteWalk>& out) -> bool {
        for (const SymAccess& a : decl) {
            const auto base = concretize(a.base, sz, count);
            const auto jcoef = concretize(a.jcoef, sz, count);
            const auto words = concretize(a.words, sz, count);
            const auto stride = concretize(a.stride, sz, count);
            if (!base || !jcoef || !words || !stride) return false;
            out.push_back(ConcreteWalk{*base + region_base(a.region, flipped), *jcoef,
                                       *words, *stride});
        }
        return true;
    };
    std::vector<Violation> out;
    if (!concretize_all(fp.writes, writes) || !concretize_all(fp.reads, reads)) {
        // The declaration does not concretize at this shape at all: flag
        // item 0 so the caller reports a violation either way.
        out.push_back(Violation{0, 0, true});
        return out;
    }
    auto admitted = [&](const sim::MemAccess& p, std::uint64_t j, bool want_write) {
        for (const ConcreteWalk& q : writes) {
            if (contains(ConcreteWalk{q.base + j * q.jcoef, 0, q.words, q.stride}, p)) {
                return true;
            }
        }
        if (want_write) return false;
        for (const ConcreteWalk& q : reads) {
            if (contains(ConcreteWalk{q.base + j * q.jcoef, 0, q.words, q.stride}, p)) {
                return true;
            }
        }
        return false;
    };
    for (std::uint64_t j = 0; j < count; ++j) {
        for (const sim::MemAccess& p : logs[j].writes) {
            if (!admitted(p, j, /*want_write=*/true)) {
                out.push_back(Violation{j, p.begin, true});
            }
        }
        for (const sim::MemAccess& p : logs[j].reads) {
            if (!admitted(p, j, /*want_write=*/false)) {
                out.push_back(Violation{j, p.begin, false});
            }
        }
    }
    return out;
}

}  // namespace

void check_conformance(const TaskFootprint& fp,
                       const std::vector<sim::ItemAccessLog>& logs, std::uint64_t task_size,
                       std::uint64_t wave_width, std::string_view launch_label,
                       analysis::AnalysisReport& report,
                       const analysis::RaceOptions& opts) {
    // Mirror detect_races' budget semantics byte for byte: the skip counter
    // and fail_on_skip finding must not depend on which checker ran.
    if (total_words(logs) > opts.max_words) {
        ++report.launches_skipped;
        if (opts.fail_on_skip) {
            analysis::Finding f;
            f.kind = analysis::FindingKind::kLaunchSkipped;
            f.severity = analysis::Severity::kError;
            f.launch = std::string(launch_label);
            std::ostringstream os;
            os << "access trace exceeds RaceOptions::max_words (" << opts.max_words
               << ") and fail_on_skip is set — raise the budget or shrink the launch";
            f.detail = os.str();
            report.add(std::move(f));
        }
        return;
    }
    ++report.launches_checked;

    // A double-buffered footprint does not know the current ping/pong
    // orientation; the launch conforms if EITHER binding explains every
    // logged access.
    std::vector<Violation> best = violations_under(fp, logs, task_size, /*flipped=*/false);
    if (!best.empty()) {
        std::vector<Violation> other =
            violations_under(fp, logs, task_size, /*flipped=*/true);
        if (other.size() < best.size()) best = std::move(other);
    }

    std::uint64_t emitted = 0;
    for (const Violation& v : best) {
        if (emitted >= opts.max_findings) {
            ++report.findings_suppressed;
            continue;
        }
        ++emitted;
        analysis::Finding f;
        f.kind = analysis::FindingKind::kFootprintViolation;
        f.severity = analysis::Severity::kError;
        f.launch = std::string(launch_label);
        f.item_a = v.item;
        f.item_b = v.item;
        f.wave_a = wave_width > 0 ? v.item / wave_width : 0;
        f.wave_b = f.wave_a;
        f.address = v.address;
        std::ostringstream os;
        os << "item " << v.item << " (wave " << f.wave_a << ") "
           << (v.is_write ? "wrote" : "read") << " word " << v.address
           << " outside its declared footprint — the static race proof assumed the "
              "declaration and is void for this launch";
        f.detail = os.str();
        report.add(std::move(f));
    }
}

}  // namespace hpu::verify
