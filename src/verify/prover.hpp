// The static race prover: decides pairwise disjointness of the symbolic
// task footprints of one phase, for ALL admissible (sz, count, j != j'),
// with three closed-form rules —
//
//   region: accesses in distinct concrete (or distinct abstract) regions
//           never share an address;
//   slice:  each access provably stays inside its own task's slice
//           [j·sz, (j+1)·sz), so distinct tasks are disjoint;
//   column: both accesses are interleaved columns x = r + m·j + k·m·count
//           with the same modulus m — distinct tasks occupy distinct
//           residues mod m·count.
//
// When no rule applies the prover searches a small concrete grid for an
// overlapping witness; a hit yields a Counterexample the runtime detector
// is then expected to reproduce, a miss yields kUnknown (runtime checks
// stay on — the prover never guesses).
#pragma once

#include <cstdint>
#include <optional>

#include "verify/footprint.hpp"
#include "verify/report.hpp"

namespace hpu::verify {

/// Shape of the phase the proof quantifies over: branching factor b of the
/// level machine, the smallest task size the phase can see, and whether
/// the size is fixed (leaf phases) or ranges over sz_min·b^k.
struct ProofContext {
    std::uint64_t b = 2;
    std::uint64_t sz_min = 2;
    bool sz_fixed = false;
};

/// Proves (or refutes) intra-level disjointness of one phase's footprint.
PhaseProof prove_phase(Phase phase, const std::optional<TaskFootprint>& fp,
                       const ProofContext& ctx);

}  // namespace hpu::verify
