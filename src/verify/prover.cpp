#include "verify/prover.hpp"

#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

namespace hpu::verify {
namespace {

constexpr std::uint64_t kMaxWitnessWords = 4096;  ///< cap per access in the search

bool well_formed(const SymAccess& a) {
    return a.base.den > 0 && a.jcoef.den > 0 && a.words.den > 0 && a.stride.den > 0;
}

/// Rule "slice": the access provably stays inside its own task's slice
/// [j·sz, (j+1)·sz) — jcoef is exactly sz, the stride is a positive
/// integer constant, the base is nonnegative, and the last word
/// base + (words-1)·stride still fits below sz.
bool slice_contained(const SymAccess& a, const Bounds& b) {
    if (!a.jcoef.equiv(Sym::size())) return false;
    if (!a.stride.is_const() || a.stride.den != 1 || a.stride.c1 < 1) return false;
    if (!a.base.nonneg(b)) return false;
    const Sym extent =
        Sym::size() - Sym::lit(1) - a.base - (a.words - Sym::lit(1)).scaled(a.stride.c1);
    return extent.nonneg(b);
}

/// Rule "column": the access is the interleaved column
/// { r + m·j + k·m·count : k < words } for constant m >= 1 and constant
/// residue r in [0, m). Any two such columns with the same m are disjoint
/// for j != j' (equal r) or for all j (distinct r).
struct ColumnShape {
    std::int64_t m = 0;
    std::int64_t r = 0;
};

std::optional<ColumnShape> column_shape(const SymAccess& a) {
    if (a.stride.c1 != 0 || a.stride.c_sz != 0 || a.stride.den != 1) return std::nullopt;
    const std::int64_t m = a.stride.c_cnt;
    if (m < 1) return std::nullopt;
    if (!a.jcoef.equiv(Sym::lit(m))) return std::nullopt;
    if (!a.base.is_const() || a.base.den != 1) return std::nullopt;
    const std::int64_t r = a.base.c1;
    if (r < 0 || r >= m) return std::nullopt;
    return ColumnShape{m, r};
}

enum class Rule : std::uint8_t { kRegion, kSlice, kColumn, kNone };

Rule prove_pair(const SymAccess& a, const SymAccess& b, const Bounds& bounds) {
    if (regions_disjoint(a.region, b.region)) return Rule::kRegion;
    if (a.region == b.region) {
        if (slice_contained(a, bounds) && slice_contained(b, bounds)) return Rule::kSlice;
        const auto ca = column_shape(a);
        const auto cb = column_shape(b);
        if (ca.has_value() && cb.has_value() && ca->m == cb->m) return Rule::kColumn;
    }
    return Rule::kNone;
}

/// Concretizes one Sym at (sz, count); nullopt when the value is not a
/// nonnegative integer there (the combination is inadmissible).
std::optional<std::uint64_t> concretize(const Sym& s, std::uint64_t sz, std::uint64_t count) {
    const double v = s.eval(static_cast<double>(sz), static_cast<double>(count));
    if (v < 0.0 || v != std::floor(v)) return std::nullopt;
    return static_cast<std::uint64_t>(v);
}

struct ConcreteWalk {
    std::uint64_t base = 0, jcoef = 0, words = 0, stride = 1;
};

std::optional<ConcreteWalk> concretize_walk(const SymAccess& a, std::uint64_t sz,
                                            std::uint64_t count) {
    const auto base = concretize(a.base, sz, count);
    const auto jcoef = concretize(a.jcoef, sz, count);
    const auto words = concretize(a.words, sz, count);
    const auto stride = concretize(a.stride, sz, count);
    if (!base || !jcoef || !words || !stride) return std::nullopt;
    if (*words == 0 || *words > kMaxWitnessWords) return std::nullopt;
    return ConcreteWalk{*base, *jcoef, *words, *stride == 0 ? 1 : *stride};
}

/// Searches a small grid of concrete (count, sz) shapes for an address two
/// distinct tasks both touch. `identical` pairs (an access against itself)
/// only scan j_a < j_b.
std::optional<Counterexample> search_counterexample(const SymAccess& a, const SymAccess& b,
                                                    bool identical, bool write_write,
                                                    const ProofContext& ctx) {
    if (a.region != b.region) return std::nullopt;
    const std::uint64_t base_b = ctx.b < 2 ? 2 : ctx.b;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> counts;  // (count, level)
    std::uint64_t c = base_b;
    for (std::uint64_t lvl = 1; lvl <= 3; ++lvl, c *= base_b) counts.emplace_back(c, lvl);
    std::vector<std::uint64_t> sizes{ctx.sz_min};
    if (!ctx.sz_fixed) {
        sizes.push_back(ctx.sz_min * base_b);
        sizes.push_back(ctx.sz_min * base_b * base_b);
    }
    for (const auto& [count, level] : counts) {
        for (const std::uint64_t sz : sizes) {
            const auto wa = concretize_walk(a, sz, count);
            const auto wb = concretize_walk(b, sz, count);
            if (!wa || !wb) continue;
            for (std::uint64_t ja = 0; ja < count; ++ja) {
                std::unordered_set<std::uint64_t> touched;
                touched.reserve(wa->words);
                for (std::uint64_t k = 0; k < wa->words; ++k) {
                    touched.insert(wa->base + ja * wa->jcoef + k * wa->stride);
                }
                const std::uint64_t jb0 = identical ? ja + 1 : 0;
                for (std::uint64_t jb = jb0; jb < count; ++jb) {
                    if (jb == ja) continue;
                    for (std::uint64_t k = 0; k < wb->words; ++k) {
                        const std::uint64_t x = wb->base + jb * wb->jcoef + k * wb->stride;
                        if (touched.count(x) != 0) {
                            return Counterexample{count * sz, level, count, sz,
                                                  ja,         jb,    x,     write_write};
                        }
                    }
                }
            }
        }
    }
    return std::nullopt;
}

}  // namespace

PhaseProof prove_phase(Phase phase, const std::optional<TaskFootprint>& fp,
                       const ProofContext& ctx) {
    PhaseProof pp;
    pp.phase = phase;
    if (!fp.has_value()) {
        pp.status = ProofStatus::kUndeclared;
        return pp;
    }
    for (const SymAccess& a : fp->reads) {
        if (!well_formed(a)) {
            pp.status = ProofStatus::kUnknown;
            pp.rules = "malformed";
            return pp;
        }
    }
    for (const SymAccess& a : fp->writes) {
        if (!well_formed(a)) {
            pp.status = ProofStatus::kUnknown;
            pp.rules = "malformed";
            return pp;
        }
    }
    if (fp->writes.empty()) {
        pp.status = ProofStatus::kProven;
        pp.rules = fp->empty() ? "empty" : "no-writes";
        return pp;
    }

    const Bounds bounds{static_cast<double>(ctx.sz_min), ctx.sz_fixed, 2.0};
    bool used[3] = {false, false, false};
    bool unknown = false;
    auto check = [&](const SymAccess& x, const SymAccess& y, bool identical,
                     bool write_write) -> bool {
        ++pp.pairs_checked;
        const Rule rule = prove_pair(x, y, bounds);
        if (rule != Rule::kNone) {
            used[static_cast<int>(rule)] = true;
            return true;
        }
        auto cex = search_counterexample(x, y, identical, write_write, ctx);
        if (cex.has_value()) {
            pp.status = ProofStatus::kCounterexample;
            pp.counterexample = std::move(cex);
            return false;
        }
        unknown = true;
        return true;
    };
    for (std::size_t i = 0; i < fp->writes.size(); ++i) {
        for (std::size_t k = i; k < fp->writes.size(); ++k) {
            if (!check(fp->writes[i], fp->writes[k], i == k, /*write_write=*/true)) return pp;
        }
    }
    for (const SymAccess& w : fp->writes) {
        for (const SymAccess& r : fp->reads) {
            if (!check(w, r, /*identical=*/false, /*write_write=*/false)) return pp;
        }
    }
    if (unknown) {
        pp.status = ProofStatus::kUnknown;
        return pp;
    }
    pp.status = ProofStatus::kProven;
    std::string rules;
    const char* names[3] = {"region", "slice", "column"};
    for (int i = 0; i < 3; ++i) {
        if (!used[i]) continue;
        if (!rules.empty()) rules += '+';
        rules += names[i];
    }
    pp.rules = rules;
    return pp;
}

}  // namespace hpu::verify
