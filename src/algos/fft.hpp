// Radix-2 FFT as a LevelAlgorithm — a second real workload with exactly the
// mergesort recurrence shape (a = b = 2, f(n) = Θ(n)), demonstrating that
// the framework's schedulers and the §5 model apply beyond sorting.
//
// The divide step of the recursive FFT (split into even/odd subsequences)
// is hoisted into a single bit-reversal pre-pass (before_run), after which
// every level's butterflies are slice-local — precisely the iterative
// Cooley-Tukey schedule, which *is* the breadth-first rewrite of the
// recursive FFT.
#pragma once

#include <complex>
#include <numbers>

#include "core/level_algorithm.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace hpu::algos {

class DcFft final : public core::LevelAlgorithm<std::complex<double>> {
public:
    using Complex = std::complex<double>;

    std::string name() const override { return "dc-fft"; }
    std::uint64_t a() const override { return 2; }
    std::uint64_t b() const override { return 2; }

    model::Recurrence recurrence() const override {
        model::Recurrence r;
        r.a = 2.0;
        r.b = 2.0;
        // Per output element: 2.5 flops of butterfly + 2.5 words of
        // traffic — must equal run_task's charges (tests enforce it).
        r.f = [](double m) { return 5.0 * m; };
        r.leaf_cost = 1.0;
        return r;
    }

    void before_run(std::span<Complex> data, sim::OpCounter& ops) const override {
        // Bit-reversal permutation: the hoisted divide steps of the whole
        // recursion tree (each level's even/odd split, applied at once).
        const std::uint64_t n = data.size();
        HPU_CHECK(util::is_pow2(n), "FFT needs a power-of-two size");
        const std::uint32_t bits = util::ilog2(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            std::uint64_t r = 0;
            for (std::uint32_t k = 0; k < bits; ++k) r |= ((i >> k) & 1) << (bits - 1 - k);
            if (r > i) std::swap(data[i], data[r]);
        }
        ops.charge_compute(n);
        ops.charge_mem(2 * n, sim::Pattern::kStrided);
    }

    void run_task(std::span<Complex> data, std::uint64_t count, std::uint64_t j,
                  sim::OpCounter& ops) const override {
        // Combine two half-size DFTs occupying the slice's halves into one
        // DFT of the whole slice.
        const std::uint64_t sz = data.size() / count;
        const std::uint64_t half = sz / 2;
        Complex* lo = data.data() + j * sz;
        Complex* hi = lo + half;
        const double ang = -2.0 * std::numbers::pi / static_cast<double>(sz);
        const Complex w(std::cos(ang), std::sin(ang));
        Complex wk(1.0, 0.0);
        for (std::uint64_t k = 0; k < half; ++k) {
            const Complex t = wk * hi[k];
            hi[k] = lo[k] - t;
            lo[k] = lo[k] + t;
            wk *= w;
        }
        // ~5 flops per output element (complex mul + 2 adds over sz
        // outputs) and 2 complex words in/out per element.
        ops.charge_compute(5 * sz / 2);
        ops.charge_mem(2 * sz + sz / 2, sim::Pattern::kStrided);
        ops.log_read(j * sz, sz);
        ops.log_write(j * sz, sz);
    }

    sim::Pattern device_pattern() const override { return sim::Pattern::kCoalesced; }

    void run_device_task(std::span<Complex> data, std::uint64_t count, std::uint64_t j,
                         sim::OpCounter& ops) const override {
        // Same butterflies, but priced as coalesced: production GPU FFTs
        // use the Stockham autosort layout — the FFT analogue of the §6.3
        // interleaving — whose per-level traffic is coalesced and whose
        // total op count matches the natural-layout butterfly. We keep the
        // natural layout functionally (results are bit-identical) and
        // charge the Stockham access pattern.
        const std::uint64_t sz = data.size() / count;
        sim::OpCounter local;
        local.trace = ops.trace;  // forward the access log through the re-pricing
        run_task(data, count, j, local);
        ops.charge_compute(local.compute);
        ops.charge_mem(2 * sz + sz / 2, sim::Pattern::kCoalesced);
    }

    std::optional<verify::TaskFootprint> footprint(
        const verify::FootprintQuery& query) const override {
        // A butterfly pass reads and rewrites its own slice in place (the
        // device body forwards the same log). Leaves touch nothing.
        if (query.phase == verify::Phase::kLeaf) return verify::TaskFootprint{};
        verify::SymAccess slice;
        slice.base = verify::Sym::lit(0);
        slice.jcoef = verify::Sym::size();
        slice.words = verify::Sym::size();
        slice.stride = verify::Sym::lit(1);
        verify::TaskFootprint fp;
        fp.reads.push_back(slice);
        fp.writes.push_back(slice);
        return fp;
    }
};

/// Reference O(n²) DFT for tests.
std::vector<std::complex<double>> naive_dft(std::span<const std::complex<double>> in);

}  // namespace hpu::algos
