// The paper's §7 future work, item 1: "the recursive schedule could be
// stopped at a certain level of the tree, after which parallel versions of
// the gpu kernels could be executed". For mergesort this means: run the
// deep, task-abundant levels with the generic scheduler (sequential merge
// per work-item), and once the task count falls below the GPU's appetite,
// switch the REMAINING top levels to the data-parallel binary-search merge
// (one work-item per ELEMENT, Fig. 9's kernel) instead of handing them to
// the CPU. One transfer each way, like the basic scheduler.
#pragma once

#include <cstdint>
#include <span>

#include "core/executors.hpp"
#include "sim/hpu.hpp"

namespace hpu::algos {

struct ParallelTailReport {
    sim::Ticks total = 0.0;
    sim::Ticks deep_kernels = 0.0;  ///< generic per-task kernels (levels L-1..switch)
    sim::Ticks tail_kernels = 0.0;  ///< data-parallel merges (levels switch-1..0)
    sim::Ticks transfer = 0.0;
    std::uint64_t switch_level = 0;
};

/// GPU-resident mergesort with the §7 hybrid kernel schedule.
/// `switch_level` (counted from the root, like y): the generic per-task
/// kernels run levels L-1..switch_level, the data-parallel merge runs the
/// remaining levels switch_level-1..0. So 0 = all-generic (run_gpu's
/// schedule), L = all-parallel (Fig. 9's kernel). Pass SIZE_MAX to
/// auto-pick: switch where a level's task count drops below g (the point
/// where per-task kernels stop saturating the device).
ParallelTailReport mergesort_gpu_parallel_tail(sim::Hpu& hpu, std::span<std::int32_t> data,
                                               std::uint64_t switch_level,
                                               const core::ExecOptions& opts = {});

}  // namespace hpu::algos
