// Divide-and-conquer binary reductions (sum, min, max, ...) as
// LevelAlgorithms — the paper's running example (§4.3, Algorithms 4–5)
// generalized over the combining operation. a = b = 2, f(n) = Θ(1).
//
// Task j of a level with `count` tasks owns the slice
// [j·sz, (j+1)·sz), sz = data.size()/count, and follows Algorithm 4's
// convention: a subproblem's value lives at its slice's first element, so
// the combine is slice[0] ⊕= slice[sz/2]. This slice-local layout is what
// lets the hybrid schedulers split a reduction between the units.
#pragma once

#include <algorithm>
#include <string>

#include "core/level_algorithm.hpp"

namespace hpu::algos {

template <typename T, typename Op>
class BinaryReduce final : public core::LevelAlgorithm<T> {
public:
    explicit BinaryReduce(std::string name, Op op = {}) : name_(std::move(name)), op_(op) {}

    std::string name() const override { return name_; }
    std::uint64_t a() const override { return 2; }
    std::uint64_t b() const override { return 2; }

    model::Recurrence recurrence() const override {
        // 1 combine op + 3 words (two reads, one write) per task.
        return model::sum_recurrence(4.0);
    }

    void run_task(std::span<T> data, std::uint64_t count, std::uint64_t j,
                  sim::OpCounter& ops) const override {
        const std::uint64_t sz = data.size() / count;
        T* slice = data.data() + j * sz;
        slice[0] = op_(slice[0], slice[sz / 2]);
        ops.charge_compute(1);
        // Adjacent items touch slices sz apart: strided for sz > the
        // transaction width, which is the common case.
        ops.charge_mem(3, sim::Pattern::kStrided);
        ops.log_read(j * sz, 1);
        ops.log_read(j * sz + sz / 2, 1);
        ops.log_write(j * sz, 1);
    }

    double device_ops_multiplier(const sim::DeviceParams& dev) const override {
        // 1 compute + 3 strided words per task vs 4 CPU ops.
        return (1.0 + 3.0 * dev.strided_penalty) / 4.0;
    }

    /// Reductions move almost no memory; the working set of a level is the
    /// 2·count live slots, not the whole array.
    std::uint64_t level_working_set_bytes(std::uint64_t /*n*/) const override {
        return 0;  // never triggers the LLC contention model
    }

    std::optional<verify::TaskFootprint> footprint(
        const verify::FootprintQuery& query) const override {
        // Leaves touch nothing (the default run_leaf only charges). A
        // combine task reads its slice's head and midpoint and rewrites
        // the head — all inside [j·sz, (j+1)·sz).
        if (query.phase == verify::Phase::kLeaf) return verify::TaskFootprint{};
        verify::SymAccess head;
        head.base = verify::Sym::lit(0);
        head.jcoef = verify::Sym::size();
        verify::SymAccess mid = head;
        mid.base = verify::Sym::size(1, 2);
        verify::TaskFootprint fp;
        fp.reads = {head, mid};
        fp.writes = {head};
        return fp;
    }

private:
    std::string name_;
    Op op_;
};

template <typename T>
struct SumOp {
    T operator()(T x, T y) const { return x + y; }
};
template <typename T>
struct MaxOp {
    T operator()(T x, T y) const { return std::max(x, y); }
};
template <typename T>
struct MinOp {
    T operator()(T x, T y) const { return std::min(x, y); }
};

template <typename T>
using DcSum = BinaryReduce<T, SumOp<T>>;
template <typename T>
using DcMax = BinaryReduce<T, MaxOp<T>>;
template <typename T>
using DcMin = BinaryReduce<T, MinOp<T>>;

template <typename T>
DcSum<T> make_sum() {
    return DcSum<T>("dc-sum");
}
template <typename T>
DcMax<T> make_max() {
    return DcMax<T>("dc-max");
}
template <typename T>
DcMin<T> make_min() {
    return DcMin<T>("dc-min");
}

}  // namespace hpu::algos
