// Shared 2D integer geometry for the irregular algorithms (quickhull,
// closest-pair). Coordinates are int64; predicates widen to 128 bits so
// cross products and squared distances never overflow for any coordinates
// the tests generate (|x|, |y| well below 2^31).
#pragma once

#include <cstdint>

namespace hpu::algos {

/// 128-bit signed intermediate for the geometric predicates (__extension__
/// keeps -Wpedantic quiet about the GCC/Clang builtin type).
__extension__ typedef __int128 i128;

struct Pt {
    std::int64_t x = 0;
    std::int64_t y = 0;

    friend bool operator==(const Pt&, const Pt&) = default;
    /// Lexicographic (x, then y) — the canonical order of hull output and
    /// of the closest-pair x-sort.
    friend bool operator<(const Pt& a, const Pt& b) {
        return a.x != b.x ? a.x < b.x : a.y < b.y;
    }
};

/// Twice the signed area of triangle (o, a, b): > 0 when b is strictly left
/// of the directed line o→a.
inline i128 cross(const Pt& o, const Pt& a, const Pt& b) {
    const i128 ax = a.x - o.x, ay = a.y - o.y;
    const i128 bx = b.x - o.x, by = b.y - o.y;
    return ax * by - ay * bx;
}

/// Squared Euclidean distance.
inline std::uint64_t dist2(const Pt& a, const Pt& b) {
    const i128 dx = a.x - b.x, dy = a.y - b.y;
    return static_cast<std::uint64_t>(dx * dx + dy * dy);
}

}  // namespace hpu::algos
