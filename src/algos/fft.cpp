#include "algos/fft.hpp"

namespace hpu::algos {

std::vector<std::complex<double>> naive_dft(std::span<const std::complex<double>> in) {
    const std::size_t n = in.size();
    std::vector<std::complex<double>> out(n);
    for (std::size_t k = 0; k < n; ++k) {
        std::complex<double> acc(0.0, 0.0);
        for (std::size_t t = 0; t < n; ++t) {
            const double ang = -2.0 * std::numbers::pi * static_cast<double>(k) *
                               static_cast<double>(t) / static_cast<double>(n);
            acc += in[t] * std::complex<double>(std::cos(ang), std::sin(ang));
        }
        out[k] = acc;
    }
    return out;
}

}  // namespace hpu::algos
