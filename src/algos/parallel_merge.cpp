#include "algos/parallel_merge.hpp"

#include <algorithm>
#include <vector>

#include "sim/buffer.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/merge_path.hpp"

namespace hpu::algos {

namespace {

/// Per-item device cost of one parallel-merge level with input run length
/// r: read own element + write merged element (coalesced — adjacent items
/// write adjacent-or-near positions), plus the binary search over the
/// sibling run, charged as compute (its log r probes hit cached segments).
double item_ops(std::uint64_t run_len) {
    return 2.0 /* mem words */ + 1.0 + static_cast<double>(util::ilog2(run_len) + 1);
}

}  // namespace

ParallelGpuReport mergesort_gpu_parallel(sim::Hpu& hpu, std::span<std::int32_t> data,
                                         const core::ExecOptions& opts) {
    const std::uint64_t n = data.size();
    HPU_CHECK(util::is_pow2(n) && n >= 2, "parallel GPU mergesort needs a power-of-two size");
    sim::Device& dev = hpu.gpu();
    ParallelGpuReport rep;
    rep.transfer_time = 2.0 * hpu.transfer_time(n);

    if (!opts.functional) {
        for (std::uint64_t r = 1; r < n; r *= 2) {
            rep.sort_time += dev.uniform_launch_time(n, item_ops(r));
        }
        return rep;
    }

    sim::DeviceBuffer<std::int32_t> buf{std::vector<std::int32_t>(data.begin(), data.end())};
    buf.copy_to_device();
    std::vector<std::int32_t> scratch(n);
    std::int32_t* cur = buf.device().data();
    std::int32_t* nxt = scratch.data();

    util::ThreadPool* pool = dev.pool();
    for (std::uint64_t r = 1; r < n; r *= 2) {
        if (opts.merge_path) {
            // Merge Path fast path: do the data movement host-side with the
            // shared merge kernel, then charge the level through an
            // execution-free launch. Placement is identical — the scatter
            // kernel below computes the stable-merge rank (lower_bound from
            // the left run, upper_bound from the right), which is exactly
            // the permutation the stable segment merge produces — and the
            // per-item charges are closed-form in r, so LaunchResult and
            // rep.sort_time are bit-identical to the kernel-off loop.
            const std::uint64_t pairs = n / (2 * r);
            auto merge_pair = [&](std::uint64_t pair, std::size_t parts) {
                util::merge_segments(pool, cur + pair * 2 * r, r, cur + pair * 2 * r + r, r,
                                     nxt + pair * 2 * r, std::less<std::int32_t>{}, parts);
            };
            if (pool != nullptr && pool->worker_count() > 0 &&
                pairs > pool->worker_count()) {
                // Wide level: parallelize across pairs, serial within each.
                pool->parallel_for(pairs, [&](std::size_t pair) { merge_pair(pair, 1); });
            } else {
                // Few big pairs: parallelize within each merge instead.
                for (std::uint64_t pair = 0; pair < pairs; ++pair) {
                    merge_pair(pair, util::merge_parts(2 * r, pool));
                }
            }
            const auto launch = dev.launch(n, [&](sim::WorkItem& wi) {
                wi.charge_compute(1 + util::ilog2(r) + 1);
                wi.charge_mem(2, sim::Pattern::kCoalesced);
            });
            rep.sort_time += launch.time;
            std::swap(cur, nxt);
            continue;
        }
        const auto launch = dev.launch(n, [&](sim::WorkItem& wi) {
            const std::uint64_t t = wi.global_id();
            const std::uint64_t run = t / r;         // index of my run
            const std::uint64_t pair = run / 2;      // merged pair index
            const std::uint64_t idx = t % r;         // my rank within my run
            const bool left = (run % 2) == 0;
            const std::int32_t v = cur[t];
            // Sibling run occupies [sib_lo, sib_lo + r).
            const std::uint64_t sib_lo = (left ? run + 1 : run - 1) * r;
            const std::int32_t* sib = cur + sib_lo;
            // Rank of v in the sibling: lower_bound from the left run,
            // upper_bound from the right run — a stable tie-break.
            const std::uint64_t rank = static_cast<std::uint64_t>(
                (left ? std::lower_bound(sib, sib + r, v) : std::upper_bound(sib, sib + r, v)) -
                sib);
            nxt[pair * 2 * r + idx + rank] = v;
            wi.charge_compute(1 + util::ilog2(r) + 1);
            wi.charge_mem(2, sim::Pattern::kCoalesced);
        });
        rep.sort_time += launch.time;
        std::swap(cur, nxt);
    }
    // Land the sorted data back in the device buffer if the last level wrote
    // into scratch (no virtual cost: a real implementation ping-pongs and
    // reads back from whichever buffer holds the result).
    if (cur != buf.device().data()) {
        std::copy(scratch.begin(), scratch.end(), buf.device().begin());
    }
    buf.copy_to_host();
    std::copy(buf.host_view().begin(), buf.host_view().end(), data.begin());
    return rep;
}

}  // namespace hpu::algos
