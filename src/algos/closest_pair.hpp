// Closest pair of points as an IrregularLevelAlgorithm: uneven strip
// recursion. root_tasks x-sorts the input once; divide splits each extent
// ceil/floor (so non-power-of-two sizes stay admissible and the tree is
// uneven), and extents of size <= 3 are solved directly in the divide sweep
// — early termination at varying depths. The combine sweep walks the tree
// bottom-up: it merges the two y-sorted halves (so every extent leaves its
// combine y-sorted, the invariant its parent relies on) and then runs the
// classic strip scan — candidates within sqrt(d) of the split line, each
// compared against at most the next 7 strip points in y order.
//
// Per-extent state: the best squared distance is keyed by extent begin
// (the leftmost-spine aliasing is benign — the slot always holds the most
// recently combined result for the node starting there, exactly what the
// parent reads); the split x is keyed by the split index, which is strictly
// interior to the extent and therefore unique across the whole tree. The
// y-sort of a leaf mutates only its own extent, and extents of concurrent
// tasks are disjoint, so pooled and inline execution are byte-identical.
//
// Output convention: finalize stores Pt{closest squared distance, 0} at
// data[0]; the rest of the array is the y-sorted point set.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "algos/geometry.hpp"
#include "core/level_algorithm.hpp"
#include "util/check.hpp"
#include "verify/footprint.hpp"

namespace hpu::algos {

class ClosestPair : public core::IrregularLevelAlgorithm<Pt> {
public:
    std::string name() const override { return "closest-pair"; }
    std::uint64_t a() const override { return 2; }
    std::uint64_t b() const override { return 2; }

    model::Recurrence recurrence() const override {
        model::Recurrence r;
        r.a = 2.0;
        r.b = 2.0;
        // Linear merge + strip scan per level.
        r.f = [](double m) { return 3.0 * m; };
        r.leaf_cost = 1.0;
        return r;
    }

    /// Any pair-bearing size — the ceil/floor split handles every n.
    bool admissible(std::uint64_t n) const override { return n >= 2; }

    void prepare(std::uint64_t n) const override {
        n_ = n;
        dist_.assign(n, std::numeric_limits<std::uint64_t>::max());
        splitx_.assign(n, 0);
        scratch_.resize(n);
    }

    void bind_exec(const util::MergeExec& exec) const override { exec_ = exec; }

    bool intra_task_parallel() const override { return exec_.parallel_ok(); }

    core::TaskList root_tasks(std::span<Pt> data, sim::OpCounter& ops) const override {
        const std::uint64_t n = data.size();
        HPU_CHECK(n_ == n, "prepare() was not called with this input size");
        // One global x-sort; every divide below reads its split point from
        // the still-x-sorted prefix of the tree.
        std::sort(data.begin(), data.end());
        const std::uint64_t logn = n < 2 ? 1 : 64 - static_cast<std::uint64_t>(
                                                     __builtin_clzll(n - 1));
        ops.charge_compute(n * logn);
        ops.charge_mem(2 * n, sim::Pattern::kStrided);
        core::TaskList roots;
        roots.tasks.push_back(core::TaskDesc{0, n, 0});
        return roots;
    }

    void divide_task(std::span<Pt> data, const core::TaskDesc& t, std::uint64_t /*level*/,
                     std::vector<core::TaskDesc>& children,
                     sim::OpCounter& ops) const override {
        const std::uint64_t b = t.begin, e = t.end, m = t.size();
        if (m <= 3) {
            // Leaf: solve directly and leave the extent y-sorted, the
            // invariant every combine above this point expects.
            std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
            for (std::uint64_t i = b; i < e; ++i) {
                for (std::uint64_t j = i + 1; j < e; ++j) {
                    best = std::min(best, dist2(data[i], data[j]));
                }
            }
            dist_[b] = best;
            std::sort(data.begin() + static_cast<std::ptrdiff_t>(b),
                      data.begin() + static_cast<std::ptrdiff_t>(e),
                      [](const Pt& p, const Pt& q) {
                          return p.y != q.y ? p.y < q.y : p.x < q.x;
                      });
            ops.charge_compute(3 * m);
            ops.charge_mem(2 * m, sim::Pattern::kStrided);
            ops.log_read(b, m);
            ops.log_write(b, m);
            ops.log_write(verify::kScratchRegionBase + b, 1);  // dist_[b]
            return;  // no children: early termination at this depth
        }
        // Uneven ceil/floor split; the extent is still x-sorted here (only
        // leaves mutate, and leaves are never ancestors of a dividing task).
        // The split line is keyed by `mid`, not `begin`: a node and its left
        // child share a begin (the leftmost spine), but mid is strictly
        // interior to the extent, hence unique across the whole tree.
        const std::uint64_t mid = b + (m + 1) / 2;
        splitx_[mid] = data[mid].x;
        children.push_back(core::TaskDesc{b, mid, 0});
        children.push_back(core::TaskDesc{mid, e, 0});
        ops.charge_compute(2);
        ops.log_read(mid, 1);
        ops.log_write(verify::kScratchRegionBase + mid, 1);  // splitx_[mid]
    }

    void combine_task(std::span<Pt> data, const core::TaskDesc& t, std::uint64_t /*level*/,
                      std::span<const core::TaskDesc> children,
                      sim::OpCounter& ops) const override {
        if (children.empty()) {
            // Leaf already solved in the divide sweep.
            ops.charge_compute(1);
            return;
        }
        const std::uint64_t b = t.begin, e = t.end, m = t.size();
        const std::uint64_t mid = children[1].begin;
        std::uint64_t d = std::min(dist_[b], dist_[mid]);
        // Merge the two y-sorted halves through scratch, then copy back so
        // this extent is y-sorted for its parent.
        Pt* tmp = scratch_.data() + b;
        const auto yless = [](const Pt& p, const Pt& q) {
            return p.y != q.y ? p.y < q.y : p.x < q.x;
        };
        // Both paths produce the same stable merge (ties take the left
        // half): the serial walk only takes the right element when it is
        // strictly y-less, and merge_segments uses the identical test.
        // The scratch output is disjoint from both input halves, so the
        // Merge Path segments need no staging here.
        const std::size_t parts =
            exec_.parallel_ok() ? util::merge_parts(m, exec_.pool) : 1;
        if (parts > 1) {
            util::merge_segments(exec_.pool, data.data() + b, mid - b, data.data() + mid,
                                 e - mid, tmp, yless, parts);
        } else {
            std::uint64_t i = b, j = mid, w = 0;
            while (i < mid && j < e) {
                tmp[w++] = yless(data[j], data[i]) ? data[j++] : data[i++];
            }
            while (i < mid) tmp[w++] = data[i++];
            while (j < e) tmp[w++] = data[j++];
        }
        for (std::uint64_t k = 0; k < m; ++k) data[b + k] = tmp[k];
        // Strip scan: y-ordered candidates near the split line, each against
        // at most the next 7 strip points.
        const std::int64_t sx = splitx_[mid];
        std::vector<Pt> strip;
        for (std::uint64_t k = b; k < e; ++k) {
            const i128 dx = data[k].x - sx;
            if (dx * dx < static_cast<i128>(d)) strip.push_back(data[k]);
        }
        for (std::uint64_t p = 0; p < strip.size(); ++p) {
            for (std::uint64_t q = p + 1; q < strip.size(); ++q) {
                const i128 dy = strip[q].y - strip[p].y;
                if (dy * dy >= static_cast<i128>(d)) break;
                d = std::min(d, dist2(strip[p], strip[q]));
            }
        }
        dist_[b] = d;
        ops.charge_compute(3 * m);
        ops.charge_mem(3 * m, sim::Pattern::kStrided);
        ops.log_read(b, m);
        ops.log_write(b, m);
        ops.log_read(verify::kScratchRegionBase + b, 1);
        ops.log_read(verify::kScratchRegionBase + mid, 1);
        ops.log_write(verify::kScratchRegionBase + b, 1);
    }

    void finalize(std::span<Pt> data, sim::OpCounter& ops) const override {
        data[0] = Pt{static_cast<std::int64_t>(dist_[0]), 0};
        ops.charge_compute(1);
        ops.charge_mem(1, sim::Pattern::kCoalesced);
    }

    double task_cost_estimate(const core::TaskDesc& t, bool combine) const override {
        const auto m = static_cast<double>(std::max<std::uint64_t>(t.size(), 1));
        return combine ? 3.0 * m : m;
    }

    /// Exact width schedule of the ceil/floor tree for size n — the
    /// analytic path prices the same uneven shape the functional path runs.
    std::vector<std::uint64_t> analytic_widths(std::uint64_t n) const override {
        std::vector<std::uint64_t> widths{1};
        std::vector<std::uint64_t> sizes{n};
        while (true) {
            std::vector<std::uint64_t> next;
            for (const std::uint64_t s : sizes) {
                if (s <= 3) continue;
                next.push_back((s + 1) / 2);
                next.push_back(s - (s + 1) / 2);
            }
            if (next.empty()) break;
            widths.push_back(next.size());
            sizes = std::move(next);
        }
        return widths;
    }

    /// Squared distance of the closest pair after finalize.
    std::uint64_t best_dist2() const { return dist_[0]; }

protected:
    mutable std::uint64_t n_ = 0;
    mutable std::vector<std::uint64_t> dist_;    ///< best d², keyed by extent begin
    mutable std::vector<std::int64_t> splitx_;   ///< split x, keyed by split index
    mutable std::vector<Pt> scratch_;            ///< y-merge staging
    mutable util::MergeExec exec_;               ///< Merge Path binding (wall-side)
};

}  // namespace hpu::algos
