#include "algos/parallel_tail.hpp"

#include <algorithm>

#include "algos/mergesort.hpp"
#include "sim/buffer.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace hpu::algos {

namespace {

/// One data-parallel merge level: n work-items, each placing its element
/// into the merged run via binary search in the sibling run (the Fig. 9
/// kernel, reused here for the tail).
sim::Ticks parallel_merge_level(sim::Device& dev, const std::int32_t* src, std::int32_t* dst,
                                std::uint64_t n, std::uint64_t run_len, bool functional) {
    const double ops = 2.0 + 1.0 + static_cast<double>(util::ilog2(run_len) + 1);
    if (!functional) return dev.uniform_launch_time(n, ops);
    return dev
        .launch(n,
                [&](sim::WorkItem& wi) {
                    const std::uint64_t t = wi.global_id();
                    const std::uint64_t run = t / run_len;
                    const std::uint64_t pair = run / 2;
                    const std::uint64_t idx = t % run_len;
                    const bool left = (run % 2) == 0;
                    const std::int32_t v = src[t];
                    const std::int32_t* sib = src + (left ? run + 1 : run - 1) * run_len;
                    const std::uint64_t rank = static_cast<std::uint64_t>(
                        (left ? std::lower_bound(sib, sib + run_len, v)
                              : std::upper_bound(sib, sib + run_len, v)) -
                        sib);
                    dst[pair * 2 * run_len + idx + rank] = v;
                    wi.charge_compute(1 + util::ilog2(run_len) + 1);
                    wi.charge_mem(2, sim::Pattern::kCoalesced);
                })
        .time;
}

}  // namespace

ParallelTailReport mergesort_gpu_parallel_tail(sim::Hpu& hpu, std::span<std::int32_t> data,
                                               std::uint64_t switch_level,
                                               const core::ExecOptions& opts) {
    const std::uint64_t n = data.size();
    HPU_CHECK(util::is_pow2(n) && n >= 2, "parallel-tail mergesort needs a power-of-two size");
    const std::uint64_t L = util::ilog2(n);
    sim::Device& dev = hpu.gpu();
    if (switch_level > L) {
        // Auto: per-task kernels saturate while tasks >= g; switch when the
        // level's task count (2^i) falls below that.
        switch_level = std::min<std::uint64_t>(L, util::ceil_log2(dev.params().g));
    }
    ParallelTailReport rep;
    rep.switch_level = switch_level;
    rep.transfer = 2.0 * hpu.transfer_time(n);

    MergesortCoalesced<std::int32_t> deep;
    deep.prepare(n);

    std::optional<sim::DeviceBuffer<std::int32_t>> buf;
    std::vector<std::int32_t> scratch;
    std::span<std::int32_t> dspan = data;
    if (opts.functional) {
        buf.emplace(std::vector<std::int32_t>(data.begin(), data.end()));
        buf->copy_to_device();
        dspan = buf->device();
        scratch.resize(n);
    }

    // --- Deep phase: generic per-task kernels, levels L-1 .. switch_level.
    if (opts.functional) {
        sim::OpCounter pre;
        deep.before_gpu_levels(dspan, n / 2, pre);
    }
    for (std::uint64_t i = L; i-- > switch_level;) {
        const std::uint64_t tasks = util::ipow(2, static_cast<std::uint32_t>(i));
        if (opts.functional) {
            rep.deep_kernels +=
                dev.launch(tasks,
                           [&](sim::WorkItem& wi) {
                               deep.run_device_task(dspan, tasks, wi.global_id(), wi.ops());
                           })
                    .time;
            sim::OpCounter flip;
            deep.after_gpu_level(dspan, tasks, flip);
        } else {
            const double ops = deep.recurrence().task_cost(static_cast<double>(n),
                                                           static_cast<double>(i)) *
                               deep.device_ops_multiplier(dev.params());
            rep.deep_kernels += dev.uniform_launch_time(tasks, ops);
        }
    }
    if (opts.functional) {
        sim::OpCounter post;
        deep.after_gpu_levels(dspan, util::ipow(2, static_cast<std::uint32_t>(switch_level)),
                              post);
        rep.deep_kernels += post.gpu_ops(dev.params().strided_penalty) / dev.params().gamma /
                            static_cast<double>(dev.params().g);
    } else {
        rep.deep_kernels += deep.analytic_gpu_hook_ops(n).gpu_ops(dev.params().strided_penalty) /
                            dev.params().gamma / static_cast<double>(dev.params().g);
    }

    // --- Tail phase: data-parallel merges for levels switch_level-1 .. 0.
    std::int32_t* cur = opts.functional ? dspan.data() : nullptr;
    std::int32_t* nxt = opts.functional ? scratch.data() : nullptr;
    for (std::uint64_t i = switch_level; i-- > 0;) {
        const std::uint64_t run_len = n >> (i + 1);  // merging runs of this length
        rep.tail_kernels += parallel_merge_level(dev, cur, nxt, n, run_len, opts.functional);
        std::swap(cur, nxt);
    }
    if (opts.functional) {
        if (cur != dspan.data()) std::copy(scratch.begin(), scratch.end(), dspan.begin());
        buf->copy_to_host();
        std::copy(buf->host_view().begin(), buf->host_view().end(), data.begin());
    }
    rep.total = rep.deep_kernels + rep.tail_kernels + rep.transfer;
    return rep;
}

}  // namespace hpu::algos
