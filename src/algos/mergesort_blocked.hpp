// The paper's §7 future work, item 2: "switch to non-recursive sequential
// versions of the algorithms at the lowest levels of the tree". Blocked
// mergesort stops the recursion at blocks of `block` elements and solves
// each block with sequential insertion sort — trading the deepest (and
// cheapest-per-task) merge levels for fewer, fatter base cases. The optimal
// block size "would have to be determined either analytically or
// experimentally" (§7) — bench/ablation_blocked sweeps it.
//
// Merge levels inherit MergesortPlain::merge_slice, including its Merge
// Path kernel path (DESIGN.md §15): under a bind_exec binding, large
// merges run pool-parallel segments. Leaves are untouched — insertion
// sort on a block has no merge to split.
#pragma once

#include "algos/mergesort.hpp"

namespace hpu::algos {

template <typename T>
class MergesortBlocked final : public MergesortPlain<T> {
public:
    explicit MergesortBlocked(std::uint64_t block = 16) : block_(block) {
        HPU_CHECK(util::is_pow2(block) && block >= 1, "block size must be a power of two");
    }

    std::string name() const override { return "mergesort-blocked"; }
    std::uint64_t base_size() const override { return block_; }
    bool has_leaf_work() const override { return block_ > 1; }

    model::Recurrence recurrence() const override {
        model::Recurrence r = MergesortPlain<T>::recurrence();
        r.base_size = static_cast<double>(block_);
        // Insertion sort on a random block: ~B²/4 compares+moves plus the
        // B-element pass; charged per block in run_leaf.
        const double B = static_cast<double>(block_);
        r.leaf_cost = B * B / 4.0 + B;
        return r;
    }

    void run_leaf(std::span<T> data, std::uint64_t leaf_count, std::uint64_t j,
                  sim::OpCounter& ops) const override {
        const std::uint64_t sz = data.size() / leaf_count;
        T* blk = data.data() + j * sz;
        std::uint64_t moves = 0;
        for (std::uint64_t i = 1; i < sz; ++i) {
            T v = blk[i];
            std::uint64_t k = i;
            while (k > 0 && blk[k - 1] > v) {
                blk[k] = blk[k - 1];
                --k;
                ++moves;
            }
            blk[k] = v;
        }
        // Data-dependent charge: compares+shifts plus the scan itself.
        ops.charge_compute(moves + sz);
        ops.charge_mem(sz, sim::Pattern::kStrided);
        ops.log_read(j * sz, sz);
        ops.log_write(j * sz, sz);
    }

private:
    std::uint64_t block_;
};

}  // namespace hpu::algos
