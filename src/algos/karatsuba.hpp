// Karatsuba polynomial multiplication as an IrregularLevelAlgorithm: the
// canonical arity-3 divide (a = 3, b = 2), with ceil/floor operand splits so
// every even input size is admissible — no power-of-two padding. Input
// layout is data = [lhs coefficients (n) | rhs coefficients (n)]; finalize
// overwrites data[0 .. 2n) with the 2n-1 product coefficients (last slot
// padded with 0). Coefficients multiply without carries, so any test inputs
// with modest magnitudes stay exact in int64.
//
// The whole computation lives in a per-run arena: prepare() builds the task
// tree once (bump allocation, breadth-first), giving node i an arena region
// [off, off + 4m) = [A(m) | B(m) | R(2m)]. A task's extent IS its arena
// region and its tag is the node id, so sibling extents are disjoint by
// construction, every access is logged at kScratchRegionBase + arena offset,
// and the dynamic race check sees the true footprint. divide copies child
// operands (including the A0+A1 / B0+B1 sums for the middle child); combine
// assembles R = z0 + (z1 - z0 - z2)·X^h + z2·X^{2h}. Nodes with m <= 4 go
// schoolbook and end the branch early.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/level_algorithm.hpp"
#include "util/check.hpp"
#include "verify/footprint.hpp"

namespace hpu::algos {

class KaratsubaArray : public core::IrregularLevelAlgorithm<std::int64_t> {
public:
    std::string name() const override { return "karatsuba"; }
    std::uint64_t a() const override { return 3; }
    std::uint64_t b() const override { return 2; }

    model::Recurrence recurrence() const override {
        model::Recurrence r;
        r.a = 3.0;
        r.b = 2.0;
        // Operand copies + the sum child on the way down, three adds up.
        r.f = [](double m) { return 4.0 * m; };
        r.leaf_cost = 1.0;
        return r;
    }

    /// Two same-length operands — any even total size, no power-of-two
    /// requirement (the ceil/floor split absorbs odd operand lengths).
    bool admissible(std::uint64_t sz) const override {
        return sz >= 2 && sz % 2 == 0;
    }

    void prepare(std::uint64_t sz) const override {
        HPU_CHECK(admissible(sz), "karatsuba: size must be even and >= 2");
        const std::uint64_t n = sz / 2;
        nodes_.clear();
        nodes_.push_back(Node{n, 0, {0, 0, 0}});
        std::uint64_t cursor = 4 * n;
        for (std::uint64_t idx = 0; idx < nodes_.size(); ++idx) {
            const std::uint64_t m = nodes_[idx].m;
            if (m <= kBase) continue;
            const std::uint64_t h = (m + 1) / 2;
            const std::uint64_t sizes[3] = {h, m - h, h};
            for (int c = 0; c < 3; ++c) {
                nodes_[idx].kid[c] = nodes_.size();
                nodes_.push_back(Node{sizes[c], cursor, {0, 0, 0}});
                cursor += 4 * sizes[c];
            }
        }
        arena_.assign(cursor, 0);
    }

    core::TaskList root_tasks(std::span<std::int64_t> data, sim::OpCounter& ops) const override {
        const std::uint64_t n = data.size() / 2;
        HPU_CHECK(!nodes_.empty() && nodes_[0].m == n,
                  "prepare() was not called with this input size");
        for (std::uint64_t i = 0; i < n; ++i) arena_[i] = data[i];
        for (std::uint64_t i = 0; i < n; ++i) arena_[n + i] = data[n + i];
        ops.charge_compute(2 * n);
        ops.charge_mem(4 * n, sim::Pattern::kCoalesced);
        core::TaskList roots;
        roots.tasks.push_back(core::TaskDesc{0, 4 * n, 0});
        return roots;
    }

    void divide_task(std::span<std::int64_t> /*data*/, const core::TaskDesc& t,
                     std::uint64_t /*level*/, std::vector<core::TaskDesc>& children,
                     sim::OpCounter& ops) const override {
        const Node& node = nodes_[t.tag];
        const std::uint64_t m = node.m, off = node.off;
        const std::int64_t* A = arena_.data() + off;
        const std::int64_t* B = A + m;
        if (m <= kBase) {
            // Schoolbook leaf: R has 2m-1 significant coefficients.
            std::int64_t* R = arena_.data() + off + 2 * m;
            for (std::uint64_t i = 0; i < 2 * m; ++i) R[i] = 0;
            for (std::uint64_t i = 0; i < m; ++i) {
                for (std::uint64_t j = 0; j < m; ++j) R[i + j] += A[i] * B[j];
            }
            ops.charge_compute(m * m);
            ops.charge_mem(4 * m, sim::Pattern::kStrided);
            ops.log_read(verify::kScratchRegionBase + off, 2 * m);
            ops.log_write(verify::kScratchRegionBase + off + 2 * m, 2 * m);
            return;  // branch ends here — depths vary with operand length
        }
        const std::uint64_t h = (m + 1) / 2;
        const Node& c0 = nodes_[node.kid[0]];  // z0 = A0 * B0 (size h)
        const Node& c1 = nodes_[node.kid[1]];  // z2 = A1 * B1 (size m - h)
        const Node& c2 = nodes_[node.kid[2]];  // z1 = (A0+A1) * (B0+B1) (size h)
        std::int64_t* lo = arena_.data() + c0.off;
        std::int64_t* hi = arena_.data() + c1.off;
        std::int64_t* sum = arena_.data() + c2.off;
        for (std::uint64_t i = 0; i < h; ++i) {
            lo[i] = A[i];
            lo[h + i] = B[i];
            sum[i] = A[i];
            sum[h + i] = B[i];
        }
        for (std::uint64_t i = 0; i < m - h; ++i) {
            hi[i] = A[h + i];
            hi[(m - h) + i] = B[h + i];
            sum[i] += A[h + i];
            sum[h + i] += B[h + i];
        }
        ops.charge_compute(4 * m);
        ops.charge_mem(4 * m, sim::Pattern::kCoalesced);
        ops.log_read(verify::kScratchRegionBase + off, 2 * m);
        for (const std::uint64_t kid : node.kid) {
            const Node& c = nodes_[kid];
            ops.log_write(verify::kScratchRegionBase + c.off, 2 * c.m);
            children.push_back(core::TaskDesc{c.off, c.off + 4 * c.m, kid});
        }
    }

    void combine_task(std::span<std::int64_t> /*data*/, const core::TaskDesc& t,
                      std::uint64_t /*level*/, std::span<const core::TaskDesc> children,
                      sim::OpCounter& ops) const override {
        if (children.empty()) {
            // Schoolbook leaf already produced its R in the divide sweep.
            ops.charge_compute(1);
            return;
        }
        const Node& node = nodes_[t.tag];
        const std::uint64_t m = node.m, off = node.off, h = (m + 1) / 2;
        const Node& c0 = nodes_[node.kid[0]];
        const Node& c1 = nodes_[node.kid[1]];
        const Node& c2 = nodes_[node.kid[2]];
        const std::int64_t* z0 = arena_.data() + c0.off + 2 * h;
        const std::int64_t* z2 = arena_.data() + c1.off + 2 * (m - h);
        const std::int64_t* z1 = arena_.data() + c2.off + 2 * h;
        std::int64_t* R = arena_.data() + off + 2 * m;
        for (std::uint64_t i = 0; i < 2 * m; ++i) R[i] = 0;
        for (std::uint64_t i = 0; i < 2 * h; ++i) R[i] += z0[i];
        for (std::uint64_t i = 0; i < 2 * (m - h); ++i) R[2 * h + i] += z2[i];
        for (std::uint64_t i = 0; i < 2 * h; ++i) {
            std::int64_t mid = z1[i] - z0[i];
            if (i < 2 * (m - h)) mid -= z2[i];
            R[h + i] += mid;
        }
        ops.charge_compute(6 * m);
        ops.charge_mem(8 * m, sim::Pattern::kStrided);
        ops.log_read(verify::kScratchRegionBase + c0.off + 2 * h, 2 * h);
        ops.log_read(verify::kScratchRegionBase + c1.off + 2 * (m - h), 2 * (m - h));
        ops.log_read(verify::kScratchRegionBase + c2.off + 2 * h, 2 * h);
        ops.log_write(verify::kScratchRegionBase + off + 2 * m, 2 * m);
    }

    void finalize(std::span<std::int64_t> data, sim::OpCounter& ops) const override {
        // Product (2n coefficients, last padded 0) overwrites both operands.
        const std::uint64_t n = data.size() / 2;
        const std::int64_t* R = arena_.data() + 2 * n;
        for (std::uint64_t i = 0; i < 2 * n; ++i) data[i] = R[i];
        ops.charge_compute(2 * n);
        ops.charge_mem(4 * n, sim::Pattern::kCoalesced);
    }

    double task_cost_estimate(const core::TaskDesc& t, bool combine) const override {
        const std::uint64_t m = t.size() / 4;
        if (combine) return static_cast<double>(t.size());
        if (m <= kBase) return static_cast<double>(m * m + 2 * m);
        return static_cast<double>(t.size());
    }

    /// Exact width schedule of the {h, m-h, h} tree for input size sz.
    std::vector<std::uint64_t> analytic_widths(std::uint64_t sz) const override {
        std::vector<std::uint64_t> widths{1};
        std::vector<std::uint64_t> sizes{sz / 2};
        while (true) {
            std::vector<std::uint64_t> next;
            for (const std::uint64_t m : sizes) {
                if (m <= kBase) continue;
                const std::uint64_t h = (m + 1) / 2;
                next.push_back(h);
                next.push_back(m - h);
                next.push_back(h);
            }
            if (next.empty()) break;
            widths.push_back(next.size());
            sizes = std::move(next);
        }
        return widths;
    }

protected:
    static constexpr std::uint64_t kBase = 4;  ///< schoolbook threshold

    struct Node {
        std::uint64_t m = 0;        ///< operand length at this node
        std::uint64_t off = 0;      ///< arena offset of [A | B | R]
        std::uint64_t kid[3] = {};  ///< child node ids (m > kBase only)
    };

    mutable std::vector<Node> nodes_;         ///< bump-allocated task tree
    mutable std::vector<std::int64_t> arena_; ///< all operands and partial products
};

}  // namespace hpu::algos
