// GPU-only mergesort with a *parallel* merge (the Fig. 9 comparator): the
// recursion tree still executes breadth-first, but within a level every
// ELEMENT is a work-item. An element finds its position in the merged run
// by binary-searching the sibling run — O(log r) work per element, O(n) items
// per level, which is what lets large inputs saturate thousands of lanes.
//
// This deliberately breaks the paper's "sequential combine" framework
// assumption (§5: "we do not consider parallelizations of divide and
// combine functions") — it is the fully data-parallel alternative the paper
// measures against its generic approach.
#pragma once

#include <cstdint>
#include <span>

#include "core/executors.hpp"
#include "sim/hpu.hpp"

namespace hpu::algos {

struct ParallelGpuReport {
    sim::Ticks sort_time = 0.0;      ///< kernel time only (Fig. 9 "sort")
    sim::Ticks transfer_time = 0.0;  ///< both transfers (Fig. 9 "+ transfer")
    sim::Ticks total() const noexcept { return sort_time + transfer_time; }
};

/// Sorts `data` (size a power of two) on the device with the binary-search
/// merge. In functional mode the host array is really sorted; in analytic
/// mode only the virtual times are produced.
ParallelGpuReport mergesort_gpu_parallel(sim::Hpu& hpu, std::span<std::int32_t> data,
                                         const core::ExecOptions& opts = {});

}  // namespace hpu::algos
