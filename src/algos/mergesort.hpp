// The paper's case study (§6): mergesort as a LevelAlgorithm, in two
// variants.
//
// MergesortPlain — the direct §4 translation (Alg. 7): task j of a level
// with `count` tasks merges the two sorted halves of its slice. The same
// body runs on a CPU core or as a GPU work-item; on the device its
// sequential slice walk is uncoalesced across the wave and pays the SIMT
// memory penalty.
//
// MergesortCoalesced — adds the §6.3 optimization: on the device, runs are
// kept in an interleaved layout (element k of run j at index k·runs + j) so
// that adjacent work-items touch adjacent words. Levels ping-pong between
// the data buffer and a scratch buffer; a final un-interleave restores
// row-major order before the array returns to the CPU — the optimization is
// transparent to the CPU side, exactly as in the paper.
#pragma once

#include <string>
#include <vector>

#include "core/level_algorithm.hpp"
#include "util/check.hpp"

namespace hpu::algos {

template <typename T>
class MergesortPlain : public core::LevelAlgorithm<T> {
public:
    std::string name() const override { return "mergesort"; }
    std::uint64_t a() const override { return 2; }
    std::uint64_t b() const override { return 2; }

    model::Recurrence recurrence() const override {
        // Per output element: 1 comparison + 2.5 words (stage the left
        // half: 0.5, then read + write each element) — see run_task.
        return model::mergesort_recurrence(3.5);
    }

    void prepare(std::uint64_t n) const override { scratch_.resize(n); }

    void bind_exec(const util::MergeExec& exec) const override { exec_ = exec; }

    bool intra_task_parallel() const override { return exec_.parallel_ok(); }

    void run_task(std::span<T> data, std::uint64_t count, std::uint64_t j,
                  sim::OpCounter& ops) const override {
        merge_slice(data, count, j, ops, sim::Pattern::kStrided);
    }

    double device_ops_multiplier(const sim::DeviceParams& dev) const override {
        // CPU ops per element: 1 compute + 2.5 mem = 3.5. On the device
        // the words pay the strided penalty.
        return (1.0 + 2.5 * dev.strided_penalty) / 3.5;
    }

    std::optional<verify::TaskFootprint> footprint(
        const verify::FootprintQuery& /*query*/) const override {
        // Every phase reads and rewrites exactly its own slice
        // [j·sz, (j+1)·sz); the staging area is per-task private scratch
        // and never logged (see merge_slice).
        verify::SymAccess slice;
        slice.base = verify::Sym::lit(0);
        slice.jcoef = verify::Sym::size();
        slice.words = verify::Sym::size();
        slice.stride = verify::Sym::lit(1);
        verify::TaskFootprint fp;
        fp.reads.push_back(slice);
        fp.writes.push_back(slice);
        return fp;
    }

protected:
    /// Classic merge with the copy-left-half trick: stage [lo, mid) in
    /// scratch, then merge scratch and [mid, hi) back into [lo, hi).
    /// Charges: sz/2 staged words + per output element one compare, one
    /// read, one write.
    ///
    /// With a Merge Path binding, a large-enough merge instead stages the
    /// WHOLE slice in scratch and runs pool-parallel segments back into
    /// data (the serial in-place walk overlaps its output with the right
    /// run, which is racy under segment parallelism). Same stable merge
    /// (ties take the left run in both paths), same output bytes; the
    /// charges and logs below are closed-form in (sz, lo) and sit outside
    /// the path choice, so the virtual clock cannot move.
    void merge_slice(std::span<T> data, std::uint64_t count, std::uint64_t j,
                     sim::OpCounter& ops, sim::Pattern pattern) const {
        const std::uint64_t sz = data.size() / count;
        const std::uint64_t lo = j * sz, mid = lo + sz / 2, hi = lo + sz;
        HPU_CHECK(scratch_.size() >= data.size(), "prepare() was not called");
        const std::size_t parts =
            exec_.parallel_ok() ? util::merge_parts(sz, exec_.pool) : 1;
        if (parts > 1) {
            T* staged = scratch_.data() + lo;
            std::copy(data.begin() + static_cast<std::ptrdiff_t>(lo),
                      data.begin() + static_cast<std::ptrdiff_t>(hi), staged);
            util::merge_segments(exec_.pool, staged, mid - lo, staged + (mid - lo),
                                 hi - mid, data.data() + lo, std::less<T>{}, parts);
        } else {
            T* left = scratch_.data() + lo;
            std::copy(data.begin() + static_cast<std::ptrdiff_t>(lo),
                      data.begin() + static_cast<std::ptrdiff_t>(mid), left);
            std::uint64_t i = 0, r = mid, k = lo;
            const std::uint64_t nl = mid - lo;
            while (i < nl && r < hi) {
                data[k++] = left[i] <= data[r] ? left[i++] : data[r++];
            }
            while (i < nl) data[k++] = left[i++];
            // Tail of the right run is already in place.
        }
        ops.charge_compute(sz);
        ops.charge_mem(sz / 2 + 2 * sz, pattern);
        // Declared footprint for the race detector: the task reads and
        // rewrites exactly its own slice (the staging area is per-slice
        // private scratch, invisible to other items).
        ops.log_read(lo, sz);
        ops.log_write(lo, sz);
    }

    mutable std::vector<T> scratch_;
    mutable util::MergeExec exec_;
};

template <typename T>
class MergesortCoalesced final : public MergesortPlain<T> {
public:
    std::string name() const override { return "mergesort-coalesced"; }

    sim::Pattern device_pattern() const override { return sim::Pattern::kCoalesced; }

    double device_ops_multiplier(const sim::DeviceParams&) const override {
        // Device ops per element: 1 compute + 2 coalesced words = 3, vs
        // 3.5 CPU ops from the recurrence.
        return 3.0 / 3.5;
    }

    void before_gpu_levels(std::span<T> device_data, std::uint64_t deepest_count,
                           sim::OpCounter& ops) const override {
        // The deepest level to run merges 2·deepest_count sorted input runs.
        dscratch_.resize(device_data.size());
        const std::uint64_t runs_in = 2 * deepest_count;
        cur_is_scratch_ = false;
        // A slice too small for even one task at the deepest level runs no
        // device levels at all — keep the identity layout.
        if (runs_in == 0) {
            runs_ = device_data.size();
            return;
        }
        runs_ = runs_in;
        // Size-1 runs make the interleaved layout the identity — no
        // initial permutation cost, the layout simply *stays* interleaved
        // as the levels climb.
        if (runs_in == device_data.size()) return;
        // Mid-tree entry (the pipelined executor's merged shallow stage):
        // the runs arrive row-major, so physically interleave them first —
        // the inverse of the after_gpu_levels permutation, same tiled
        // transpose price.
        const std::uint64_t m = device_data.size() / runs_in;
        for (std::uint64_t j = 0; j < runs_in; ++j) {
            for (std::uint64_t k = 0; k < m; ++k) {
                dscratch_[k * runs_in + j] = device_data[j * m + k];
            }
        }
        cur_is_scratch_ = true;
        ops.charge_mem(2 * device_data.size(), sim::Pattern::kCoalesced);
        ops.charge_compute(device_data.size() / 4);
    }

    void run_device_task(std::span<T> data, std::uint64_t count, std::uint64_t j,
                         sim::OpCounter& ops) const override {
        HPU_CHECK(runs_ == 2 * count, "interleaved layout out of sync with the level");
        const std::uint64_t in_runs = 2 * count;
        const std::uint64_t m = data.size() / in_runs;  // input run length
        const T* src = cur_is_scratch_ ? dscratch_.data() : data.data();
        T* dst = cur_is_scratch_ ? data.data() : dscratch_.data();
        const std::uint64_t ra = 2 * j, rb = 2 * j + 1;
        // Interleave-aware Merge Path: the two input columns and the output
        // column are strided views over disjoint ping-pong buffers, so the
        // segments write disjoint output cells. Same stable merge as the
        // serial walk below (va <= vb takes run A).
        const std::size_t parts =
            this->exec_.parallel_ok() ? util::merge_parts(2 * m, this->exec_.pool) : 1;
        if (parts > 1) {
            util::merge_segments_strided(
                this->exec_.pool, util::Strided<const T>{src + ra, in_runs}, m,
                util::Strided<const T>{src + rb, in_runs}, m,
                util::Strided<T>{dst + j, count}, std::less<T>{}, parts);
        } else {
            auto src_at = [&](std::uint64_t run, std::uint64_t k) {
                return src[k * in_runs + run];
            };
            std::uint64_t ia = 0, ib = 0, k = 0;
            while (ia < m && ib < m) {
                const T va = src_at(ra, ia), vb = src_at(rb, ib);
                if (va <= vb) {
                    dst[k * count + j] = va;
                    ++ia;
                } else {
                    dst[k * count + j] = vb;
                    ++ib;
                }
                ++k;
            }
            while (ia < m) dst[k++ * count + j] = src_at(ra, ia++);
            while (ib < m) dst[k++ * count + j] = src_at(rb, ib++);
        }
        // 1 compare + 2 coalesced words per output element.
        ops.charge_compute(2 * m);
        ops.charge_mem(4 * m, sim::Pattern::kCoalesced);
        // Declared footprint: interleaved columns ra, rb of src, column j
        // of dst. The ping-pong scratch lives in a disjoint address region
        // so data-vs-scratch accesses can never alias.
        const std::uint64_t src_base = cur_is_scratch_ ? verify::kScratchRegionBase : 0;
        const std::uint64_t dst_base = cur_is_scratch_ ? 0 : verify::kScratchRegionBase;
        ops.log_read(src_base + ra, m, in_runs);
        ops.log_read(src_base + rb, m, in_runs);
        ops.log_write(dst_base + j, 2 * m, count);
    }

    void after_gpu_level(std::span<T> /*device_data*/, std::uint64_t count,
                         sim::OpCounter& /*ops*/) const override {
        cur_is_scratch_ = !cur_is_scratch_;
        runs_ = count;
    }

    void after_gpu_levels(std::span<T> device_data, std::uint64_t count,
                          sim::OpCounter& ops) const override {
        HPU_CHECK(runs_ == count, "interleaved layout out of sync at readback");
        if (runs_ == device_data.size()) return;  // identity layout, nothing ran
        const std::uint64_t m = device_data.size() / runs_;
        // Un-interleave back to row-major so the CPU sees ordinary runs —
        // "the array is permuted back to the original arrangement" (§6.3).
        if (cur_is_scratch_) {
            for (std::uint64_t j = 0; j < runs_; ++j) {
                for (std::uint64_t k = 0; k < m; ++k) {
                    device_data[j * m + k] = dscratch_[k * runs_ + j];
                }
            }
        } else {
            std::copy(device_data.begin(), device_data.end(), dscratch_.begin());
            for (std::uint64_t j = 0; j < runs_; ++j) {
                for (std::uint64_t k = 0; k < m; ++k) {
                    device_data[j * m + k] = dscratch_[k * runs_ + j];
                }
            }
        }
        cur_is_scratch_ = false;
        // A tiled device transpose moves each word twice, coalesced.
        ops.charge_mem(2 * device_data.size(), sim::Pattern::kCoalesced);
        ops.charge_compute(device_data.size() / 4);
    }

    sim::OpCounter analytic_gpu_hook_ops(std::uint64_t region_elems) const override {
        // Transpose price of one non-identity layout hook: the final
        // un-interleave (after_gpu_levels), and for mid-tree entries also
        // the initial interleave (before_gpu_levels) — both cost the same.
        sim::OpCounter ops;
        ops.charge_mem(2 * region_elems, sim::Pattern::kCoalesced);
        ops.charge_compute(region_elems / 4);
        return ops;
    }

    std::optional<verify::TaskFootprint> footprint(
        const verify::FootprintQuery& query) const override {
        // The CPU body and the leaves are MergesortPlain's; only the
        // device walk differs: task j reads the interleaved columns 2j and
        // 2j+1 of the ping buffer (stride 2·count across sz/2 rows) and
        // writes column j of the pong buffer (stride count across sz
        // rows). Which buffer is ping is a runtime orientation the
        // conformance checker resolves; the prover only needs ping != pong.
        if (query.phase != verify::Phase::kDeviceTask) {
            return MergesortPlain<T>::footprint(query);
        }
        using verify::Region;
        using verify::Sym;
        verify::SymAccess even{Region::kPing, Sym::lit(0), Sym::lit(2), Sym::size(1, 2),
                               Sym::count(2)};
        verify::SymAccess odd = even;
        odd.base = Sym::lit(1);
        verify::SymAccess out{Region::kPong, Sym::lit(0), Sym::lit(1), Sym::size(),
                              Sym::count(1)};
        verify::TaskFootprint fp;
        fp.reads = {even, odd};
        fp.writes = {out};
        return fp;
    }

private:
    mutable std::vector<T> dscratch_;
    mutable bool cur_is_scratch_ = false;
    mutable std::uint64_t runs_ = 0;
};

}  // namespace hpu::algos
