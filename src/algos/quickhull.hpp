// Quickhull (2D convex hull) as an IrregularLevelAlgorithm: the canonical
// data-dependent divide-and-conquer. Each task owns a contiguous extent of
// candidate points, all strictly left of its directed edge (P, Q); divide
// finds the farthest point C, partitions the extent into the points outside
// edge (P, C) and those outside (C, Q) — widths depend entirely on the
// data — and spawns the two children (pushed even when empty, so empty
// branches exercise the engine's conservation accounting). Points inside
// the triangle are dropped in place; C comes to rest at a fixed position
// inside the dropped middle, where a hull mark keyed by array index stays
// stable for the rest of the run. There is no combine sweep (has_combine()
// = false); finalize gathers the marked points into the front of the array,
// sorted lexicographically.
//
// Determinism: the farthest point breaks ties by smallest index, the
// partition is a stable two-pass sweep through per-extent scratch, and the
// per-task edge table is keyed by extent begin (unique among the non-empty
// tasks of a level; written by the parent one level earlier) — so every
// executor, pooled or inline, produces the byte-identical array.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "algos/geometry.hpp"
#include "core/level_algorithm.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "verify/footprint.hpp"

namespace hpu::algos {

class Quickhull : public core::IrregularLevelAlgorithm<Pt> {
public:
    std::string name() const override { return "quickhull"; }
    /// Modeling shape only (the real tree is data-dependent): binary
    /// halving with a linear partition pass.
    std::uint64_t a() const override { return 2; }
    std::uint64_t b() const override { return 2; }

    model::Recurrence recurrence() const override {
        model::Recurrence r;
        r.a = 2.0;
        r.b = 2.0;
        // Per candidate point: one farthest-scan read + cross product, plus
        // the two-pass partition (~1 read + 1 write).
        r.f = [](double m) { return 4.0 * m; };
        r.leaf_cost = 1.0;
        return r;
    }

    /// Any point count with a hull is admissible — no power-of-b shape.
    bool admissible(std::uint64_t n) const override { return n >= 2; }

    void prepare(std::uint64_t n) const override {
        n_ = n;
        hull_.assign(n, 0);
        edge_from_.assign(n, Pt{});
        edge_to_.assign(n, Pt{});
        scratch_.resize(n);
        hull_count_ = 0;
    }

    core::TaskList root_tasks(std::span<Pt> data, sim::OpCounter& ops) const override {
        const std::uint64_t n = data.size();
        HPU_CHECK(n_ == n, "prepare() was not called with this input size");
        // Anchor the hull on the lexicographic extremes.
        std::uint64_t ia = 0, ib = 0;
        for (std::uint64_t i = 1; i < n; ++i) {
            if (data[i] < data[ia]) ia = i;
            if (data[ib] < data[i]) ib = i;
        }
        ops.charge_compute(2 * n);
        ops.charge_mem(n, sim::Pattern::kStrided);
        if (data[ia] == data[ib]) {
            // All points identical: the hull is that single point.
            hull_[0] = 1;
            return {};
        }
        const Pt A = data[ia], B = data[ib];
        // Stable three-way partition of the interior through scratch:
        // [A | left of A→B | collinear | left of B→A | B].
        std::vector<Pt>& tmp = scratch_;
        std::uint64_t w = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
            if (i == ia || (i == ib)) continue;
            tmp[w++] = data[i];
        }
        data[0] = A;
        data[n - 1] = B;
        std::uint64_t k = 1;
        for (std::uint64_t i = 0; i < w; ++i) {
            if (cross(A, B, tmp[i]) > 0) data[k++] = tmp[i];
        }
        const std::uint64_t upper_end = k;
        for (std::uint64_t i = 0; i < w; ++i) {
            if (cross(A, B, tmp[i]) == 0) data[k++] = tmp[i];
        }
        const std::uint64_t lower_begin = k;
        for (std::uint64_t i = 0; i < w; ++i) {
            if (cross(A, B, tmp[i]) < 0) data[k++] = tmp[i];
        }
        HPU_CHECK(k == n - 1, "quickhull root partition lost points");
        ops.charge_mem(2 * n, sim::Pattern::kStrided);
        hull_[0] = 1;
        hull_[n - 1] = 1;
        core::TaskList roots;
        roots.tasks.push_back(core::TaskDesc{1, upper_end, 0});
        roots.tasks.push_back(core::TaskDesc{lower_begin, n - 1, 0});
        if (upper_end > 1) {
            edge_from_[1] = A;
            edge_to_[1] = B;
        }
        if (n - 1 > lower_begin) {
            edge_from_[lower_begin] = B;
            edge_to_[lower_begin] = A;
        }
        return roots;
    }

    void divide_task(std::span<Pt> data, const core::TaskDesc& t, std::uint64_t /*level*/,
                     std::vector<core::TaskDesc>& children,
                     sim::OpCounter& ops) const override {
        if (t.empty()) {
            ops.charge_compute(1);
            return;
        }
        const std::uint64_t b = t.begin, e = t.end, m = t.size();
        const Pt P = edge_from_[b], Q = edge_to_[b];
        ops.log_read(verify::kScratchRegionBase + b, 1);
        // Farthest point from the edge; ties break toward the smaller
        // index so pooled and inline scans agree.
        std::uint64_t imax = b;
        i128 dmax = cross(P, Q, data[b]);
        for (std::uint64_t i = b + 1; i < e; ++i) {
            const i128 d = cross(P, Q, data[i]);
            if (d > dmax) {
                dmax = d;
                imax = i;
            }
        }
        const Pt C = data[imax];
        // Stable three-way partition through the task's scratch slice:
        // [outside (P,C) | C + dropped | outside (C,Q)].
        Pt* tmp = scratch_.data() + b;
        for (std::uint64_t i = 0; i < m; ++i) tmp[i] = data[b + i];
        std::uint64_t k = b;
        for (std::uint64_t i = 0; i < m; ++i) {
            if (cross(P, C, tmp[i]) > 0) data[k++] = tmp[i];
        }
        const std::uint64_t s1_end = k;
        data[k++] = C;  // C rests here, untouched by both children
        hull_[s1_end] = 1;
        std::uint64_t dropped = k;
        // Count the second child first so the dropped block lands between.
        std::uint64_t s2 = 0;
        for (std::uint64_t i = 0; i < m; ++i) {
            if (cross(C, Q, tmp[i]) > 0) ++s2;
        }
        const std::uint64_t s2_begin = e - s2;
        // Exactly one instance of C was re-inserted above; duplicates of C
        // stay in the dropped middle.
        bool c_skipped = false;
        for (std::uint64_t i = 0; i < m; ++i) {
            const Pt& p = tmp[i];
            if (cross(P, C, p) > 0 || cross(C, Q, p) > 0) continue;
            if (!c_skipped && p == C) {
                c_skipped = true;
                continue;
            }
            data[dropped++] = p;
        }
        std::uint64_t k2 = s2_begin;
        for (std::uint64_t i = 0; i < m; ++i) {
            if (cross(C, Q, tmp[i]) > 0) data[k2++] = tmp[i];
        }
        HPU_CHECK(dropped == s2_begin && k2 == e, "quickhull partition lost points");
        ops.charge_compute(3 * m);
        ops.charge_mem(3 * m, sim::Pattern::kStrided);
        ops.log_read(b, m);
        ops.log_write(b, m);
        ops.log_write(verify::kScratchRegionBase + n_ + s1_end, 1);  // hull mark
        // Children, pushed even when empty (conservation counts them).
        children.push_back(core::TaskDesc{b, s1_end, 0});
        children.push_back(core::TaskDesc{s2_begin, e, 0});
        if (s1_end > b) {
            edge_from_[b] = P;
            edge_to_[b] = C;
            ops.log_write(verify::kScratchRegionBase + b, 1);
        }
        if (e > s2_begin) {
            edge_from_[s2_begin] = C;
            edge_to_[s2_begin] = Q;
            ops.log_write(verify::kScratchRegionBase + s2_begin, 1);
        }
    }

    bool has_combine() const override { return false; }

    void finalize(std::span<Pt> data, sim::OpCounter& ops) const override {
        std::vector<Pt> hull;
        for (std::uint64_t i = 0; i < data.size(); ++i) {
            if (hull_[i] != 0) hull.push_back(data[i]);
        }
        std::sort(hull.begin(), hull.end());
        hull.erase(std::unique(hull.begin(), hull.end()), hull.end());
        hull_count_ = hull.size();
        std::copy(hull.begin(), hull.end(), data.begin());
        ops.charge_compute(data.size());
        ops.charge_mem(data.size() + hull.size(), sim::Pattern::kStrided);
    }

    double task_cost_estimate(const core::TaskDesc& t, bool /*combine*/) const override {
        // One farthest scan + two partition passes per candidate point.
        return 4.0 * static_cast<double>(t.size()) + 1.0;
    }

    /// Modeling choice for the analytic path (the real widths are
    /// data-dependent): a balanced doubling tree over halving extents.
    std::vector<std::uint64_t> analytic_widths(std::uint64_t n) const override {
        std::vector<std::uint64_t> widths;
        const std::uint64_t levels = std::max<std::uint64_t>(util::ceil_log2(n), 1);
        for (std::uint64_t i = 0; i < levels; ++i) {
            widths.push_back(util::ipow(2, static_cast<std::uint32_t>(i + 1)));
        }
        return widths;
    }

    /// Hull size after the last finalize (sorted unique hull points sit at
    /// data[0 .. hull_count())).
    std::uint64_t hull_count() const { return hull_count_; }

protected:
    mutable std::uint64_t n_ = 0;
    mutable std::vector<std::uint8_t> hull_;   ///< marks, keyed by array index
    mutable std::vector<Pt> edge_from_;        ///< task edge P, keyed by extent begin
    mutable std::vector<Pt> edge_to_;          ///< task edge Q, keyed by extent begin
    mutable std::vector<Pt> scratch_;          ///< per-extent partition staging
    mutable std::uint64_t hull_count_ = 0;
};

}  // namespace hpu::algos
