// Layer-1 demonstration algorithms: classic divide-and-conquer problems
// expressed against the fully generic DCAlgorithm concept of §4
// (core/generic.hpp). They exercise the Algorithm 1 → Algorithm 2
// translation on problems with non-trivial Result types — the paper's
// genericity claim is that the rewrite needs no knowledge of these.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace hpu::algos {

/// Array sum as a generic D&C problem (the paper's §4.3 example, Alg. 4).
class GenericSum {
public:
    struct Param {
        std::span<const std::int64_t> slice;
    };
    using Result = std::int64_t;

    bool is_base(const Param& p) const { return p.slice.size() <= 1; }
    Result base_case(const Param& p) const { return p.slice.empty() ? 0 : p.slice.front(); }
    std::vector<Param> divide(const Param& p) const {
        const std::size_t half = p.slice.size() / 2;
        return {Param{p.slice.subspan(0, half)}, Param{p.slice.subspan(half)}};
    }
    Result combine(const Param&, std::span<const Result> rs) const {
        Result total = 0;
        for (Result r : rs) total += r;
        return total;
    }
};

/// Maximum contiguous-subarray sum (Kadane's problem solved the D&C way).
/// Result carries the four classic aggregates so combine is O(1).
class MaxSubarray {
public:
    struct Param {
        std::span<const std::int64_t> slice;
    };
    struct Result {
        std::int64_t total = 0;   ///< sum of the whole slice
        std::int64_t best = 0;    ///< best subarray sum (empty allowed → >= 0)
        std::int64_t prefix = 0;  ///< best prefix sum
        std::int64_t suffix = 0;  ///< best suffix sum
    };

    bool is_base(const Param& p) const { return p.slice.size() <= 1; }
    Result base_case(const Param& p) const {
        if (p.slice.empty()) return {};
        const std::int64_t v = p.slice.front();
        const std::int64_t pos = std::max<std::int64_t>(v, 0);
        return Result{v, pos, pos, pos};
    }
    std::vector<Param> divide(const Param& p) const {
        const std::size_t half = p.slice.size() / 2;
        return {Param{p.slice.subspan(0, half)}, Param{p.slice.subspan(half)}};
    }
    Result combine(const Param&, std::span<const Result> rs) const {
        HPU_CHECK(rs.size() == 2, "max-subarray combines exactly two halves");
        const Result& l = rs[0];
        const Result& r = rs[1];
        Result out;
        out.total = l.total + r.total;
        out.prefix = std::max(l.prefix, l.total + r.prefix);
        out.suffix = std::max(r.suffix, r.total + l.suffix);
        out.best = std::max({l.best, r.best, l.suffix + r.prefix});
        return out;
    }
};

/// Square matrix in row-major order, the operand type of GenericMatmul.
struct Matrix {
    std::size_t n = 0;
    std::vector<double> v;

    static Matrix zero(std::size_t n) { return Matrix{n, std::vector<double>(n * n, 0.0)}; }
    double& at(std::size_t r, std::size_t c) { return v[r * n + c]; }
    double at(std::size_t r, std::size_t c) const { return v[r * n + c]; }

    /// Quadrant extraction: q in {0,1,2,3} row-major (00, 01, 10, 11).
    Matrix quadrant(int q) const {
        const std::size_t h = n / 2;
        Matrix m = zero(h);
        const std::size_t r0 = (q / 2) * h, c0 = (q % 2) * h;
        for (std::size_t r = 0; r < h; ++r) {
            for (std::size_t c = 0; c < h; ++c) m.at(r, c) = at(r0 + r, c0 + c);
        }
        return m;
    }
};

/// 8-way recursive matrix multiplication: C = A·B via eight half-size
/// products combined with four block additions (a = 8, b = 4 in element
/// count). Param owns its operands — the generic engine moves them level to
/// level without knowing their structure.
class GenericMatmul {
public:
    struct Param {
        Matrix lhs, rhs;
    };
    using Result = Matrix;

    bool is_base(const Param& p) const { return p.lhs.n <= 1; }
    Result base_case(const Param& p) const {
        Matrix m = Matrix::zero(1);
        if (p.lhs.n == 1) m.at(0, 0) = p.lhs.at(0, 0) * p.rhs.at(0, 0);
        return m;
    }
    std::vector<Param> divide(const Param& p) const {
        HPU_CHECK(p.lhs.n % 2 == 0, "matrix size must be a power of two");
        std::vector<Param> subs;
        subs.reserve(8);
        // C_ij = A_i0·B_0j + A_i1·B_1j: children ordered so that combine
        // can pair 2k and 2k+1.
        for (int i = 0; i < 2; ++i) {
            for (int j = 0; j < 2; ++j) {
                subs.push_back(Param{p.lhs.quadrant(i * 2 + 0), p.rhs.quadrant(0 * 2 + j)});
                subs.push_back(Param{p.lhs.quadrant(i * 2 + 1), p.rhs.quadrant(1 * 2 + j)});
            }
        }
        return subs;
    }
    Result combine(const Param& p, std::span<const Result> rs) const {
        HPU_CHECK(rs.size() == 8, "8-way matmul combine");
        const std::size_t h = p.lhs.n / 2;
        Matrix c = Matrix::zero(p.lhs.n);
        for (int quad = 0; quad < 4; ++quad) {
            const Result& x = rs[static_cast<std::size_t>(quad) * 2];
            const Result& y = rs[static_cast<std::size_t>(quad) * 2 + 1];
            const std::size_t r0 = (quad / 2) * h, c0 = (quad % 2) * h;
            for (std::size_t r = 0; r < h; ++r) {
                for (std::size_t cc = 0; cc < h; ++cc) {
                    c.at(r0 + r, c0 + cc) = x.at(r, cc) + y.at(r, cc);
                }
            }
        }
        return c;
    }
};

/// Karatsuba polynomial multiplication: a THREE-way recursion (a = 3,
/// b = 2) — exercises the generic engine on a branching factor the array
/// executors don't special-case. Param owns its coefficient vectors.
class Karatsuba {
public:
    struct Param {
        std::vector<std::int64_t> lhs, rhs;  // equal length, power of two
    };
    using Result = std::vector<std::int64_t>;  // product coefficients

    bool is_base(const Param& p) const { return p.lhs.size() <= 1; }
    Result base_case(const Param& p) const {
        if (p.lhs.empty()) return {};
        return {p.lhs[0] * p.rhs[0]};
    }
    std::vector<Param> divide(const Param& p) const {
        const std::size_t h = p.lhs.size() / 2;
        auto lo = [h](const std::vector<std::int64_t>& v) {
            return std::vector<std::int64_t>(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(h));
        };
        auto hi = [h](const std::vector<std::int64_t>& v) {
            return std::vector<std::int64_t>(v.begin() + static_cast<std::ptrdiff_t>(h), v.end());
        };
        auto sum = [h](const std::vector<std::int64_t>& v) {
            std::vector<std::int64_t> s(h);
            for (std::size_t i = 0; i < h; ++i) s[i] = v[i] + v[i + h];
            return s;
        };
        // Children: lo·lo, hi·hi, (lo+hi)·(lo+hi).
        return {Param{lo(p.lhs), lo(p.rhs)}, Param{hi(p.lhs), hi(p.rhs)},
                Param{sum(p.lhs), sum(p.rhs)}};
    }
    Result combine(const Param& p, std::span<const Result> rs) const {
        HPU_CHECK(rs.size() == 3, "karatsuba combines three products");
        const std::size_t n = p.lhs.size(), h = n / 2;
        const Result& low = rs[0];
        const Result& high = rs[1];
        const Result& mid = rs[2];
        Result out(2 * n - 1, 0);
        for (std::size_t i = 0; i < low.size(); ++i) out[i] += low[i];
        for (std::size_t i = 0; i < high.size(); ++i) out[i + n] += high[i];
        for (std::size_t i = 0; i < mid.size(); ++i) {
            out[i + h] += mid[i] - low[i] - high[i];
        }
        return out;
    }
};

/// Strassen's matrix multiplication: a SEVEN-way recursion (a = 7, b = 4 in
/// element count) with a combine that mixes the products with signs — the
/// heaviest stress on the generic engine's Result plumbing.
class Strassen {
public:
    struct Param {
        Matrix lhs, rhs;
    };
    using Result = Matrix;

    bool is_base(const Param& p) const { return p.lhs.n <= 1; }
    Result base_case(const Param& p) const {
        Matrix m = Matrix::zero(1);
        if (p.lhs.n == 1) m.at(0, 0) = p.lhs.at(0, 0) * p.rhs.at(0, 0);
        return m;
    }
    std::vector<Param> divide(const Param& p) const {
        HPU_CHECK(p.lhs.n % 2 == 0, "matrix size must be a power of two");
        const Matrix a11 = p.lhs.quadrant(0), a12 = p.lhs.quadrant(1);
        const Matrix a21 = p.lhs.quadrant(2), a22 = p.lhs.quadrant(3);
        const Matrix b11 = p.rhs.quadrant(0), b12 = p.rhs.quadrant(1);
        const Matrix b21 = p.rhs.quadrant(2), b22 = p.rhs.quadrant(3);
        auto add = [](const Matrix& x, const Matrix& y) {
            Matrix r = Matrix::zero(x.n);
            for (std::size_t i = 0; i < x.v.size(); ++i) r.v[i] = x.v[i] + y.v[i];
            return r;
        };
        auto sub = [](const Matrix& x, const Matrix& y) {
            Matrix r = Matrix::zero(x.n);
            for (std::size_t i = 0; i < x.v.size(); ++i) r.v[i] = x.v[i] - y.v[i];
            return r;
        };
        return {
            Param{add(a11, a22), add(b11, b22)},  // M1
            Param{add(a21, a22), b11},            // M2
            Param{a11, sub(b12, b22)},            // M3
            Param{a22, sub(b21, b11)},            // M4
            Param{add(a11, a12), b22},            // M5
            Param{sub(a21, a11), add(b11, b12)},  // M6
            Param{sub(a12, a22), add(b21, b22)},  // M7
        };
    }
    Result combine(const Param& p, std::span<const Result> rs) const {
        HPU_CHECK(rs.size() == 7, "strassen combines seven products");
        const std::size_t h = p.lhs.n / 2;
        const Result &m1 = rs[0], &m2 = rs[1], &m3 = rs[2], &m4 = rs[3], &m5 = rs[4],
                     &m6 = rs[5], &m7 = rs[6];
        Matrix c = Matrix::zero(p.lhs.n);
        for (std::size_t r = 0; r < h; ++r) {
            for (std::size_t cc = 0; cc < h; ++cc) {
                c.at(r, cc) = m1.at(r, cc) + m4.at(r, cc) - m5.at(r, cc) + m7.at(r, cc);
                c.at(r, cc + h) = m3.at(r, cc) + m5.at(r, cc);
                c.at(r + h, cc) = m2.at(r, cc) + m4.at(r, cc);
                c.at(r + h, cc + h) =
                    m1.at(r, cc) - m2.at(r, cc) + m3.at(r, cc) + m6.at(r, cc);
            }
        }
        return c;
    }
};

}  // namespace hpu::algos
