// Layer 1 of the framework: the fully generic divide-and-conquer engine of
// §4 — Algorithm 1 (plain recursion) and Algorithm 2 (the mechanical
// breadth-first rewrite that makes one recursive call per *level*, carrying
// all subproblem parameters at once). The rewrite is what exposes a whole
// level of independent tasks for SIMT execution.
//
// An algorithm models the DCAlgorithm concept below; the two drivers are
// guaranteed to produce identical results (tests enforce this for every
// algorithm in src/algos).
#pragma once

#include <concepts>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace hpu::core {

template <typename A>
concept DCAlgorithm = requires(const A alg, const typename A::Param& p,
                               std::span<const typename A::Result> results) {
    typename A::Param;
    typename A::Result;
    { alg.is_base(p) } -> std::convertible_to<bool>;
    { alg.base_case(p) } -> std::convertible_to<typename A::Result>;
    { alg.divide(p) } -> std::convertible_to<std::vector<typename A::Param>>;
    { alg.combine(p, results) } -> std::convertible_to<typename A::Result>;
};

/// Algorithm 1: the textbook recursive driver.
template <DCAlgorithm A>
typename A::Result run_recursive(const A& alg, const typename A::Param& param) {
    if (alg.is_base(param)) return alg.base_case(param);
    const std::vector<typename A::Param> subs = alg.divide(param);
    HPU_CHECK(!subs.empty(), "divide produced no subproblems for a non-base case");
    std::vector<typename A::Result> results;
    results.reserve(subs.size());
    for (const auto& s : subs) results.push_back(run_recursive(alg, s));
    return alg.combine(param, results);
}

namespace detail {

// One pending node of the breadth-first frontier: its parameters plus the
// index range of its children in the next level's frontier.
template <typename Param>
struct Pending {
    Param param;
    std::size_t child_begin = 0;
    std::size_t child_count = 0;
    bool is_base = false;
};

}  // namespace detail

/// Algorithm 2: breadth-first driver. Descends level by level collecting
/// every subproblem's parameters, then combines back up, one level at a
/// time. Base cases encountered early are deferred to the deepest level
/// (paper §4.1: "their execution is delayed until no more recursive calls
/// remain").
template <DCAlgorithm A>
typename A::Result run_breadth_first(const A& alg, const typename A::Param& root) {
    using Param = typename A::Param;
    using Result = typename A::Result;

    // Phase 1: expand levels top-down.
    std::vector<std::vector<detail::Pending<Param>>> tree;
    tree.push_back({detail::Pending<Param>{root, 0, 0, alg.is_base(root)}});
    while (true) {
        auto& level = tree.back();
        std::vector<detail::Pending<Param>> next;
        bool any_recursion = false;
        for (auto& node : level) {
            if (node.is_base) continue;
            std::vector<Param> subs = alg.divide(node.param);
            HPU_CHECK(!subs.empty(), "divide produced no subproblems for a non-base case");
            node.child_begin = next.size();
            node.child_count = subs.size();
            any_recursion = true;
            for (auto& s : subs) {
                const bool base = alg.is_base(s);
                next.push_back(detail::Pending<Param>{std::move(s), 0, 0, base});
            }
        }
        if (!any_recursion) break;
        tree.push_back(std::move(next));
    }

    // Phase 2: evaluate bottom-up. Results of level d+1 feed the combines
    // of level d; all tasks within one level are independent — this is the
    // frontier a GPU kernel would execute (§4.2).
    std::vector<Result> below;
    for (std::size_t d = tree.size(); d-- > 0;) {
        auto& level = tree[d];
        std::vector<Result> current;
        current.reserve(level.size());
        for (auto& node : level) {
            if (node.is_base) {
                current.push_back(alg.base_case(node.param));
            } else {
                const std::span<const Result> kids(below.data() + node.child_begin,
                                                   node.child_count);
                current.push_back(alg.combine(node.param, kids));
            }
        }
        below = std::move(current);
    }
    HPU_CHECK(below.size() == 1, "breadth-first evaluation must reduce to the root");
    return std::move(below.front());
}

}  // namespace hpu::core
