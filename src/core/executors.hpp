// Single-unit executors for LevelAlgorithms: the 1-core sequential baseline
// (the paper's speedup denominator), the multi-core breadth-first executor,
// and the GPU-only breadth-first executor (§4.2). The hybrid schedulers
// live in core/hybrid.hpp.
//
// All executors process the recursion tree bottom-up by *global level*
// index i (0 = root, L-1 = deepest internal level, L = log_b n), running
// the a^i independent tasks of each level on the chosen unit. They require
// a == b so that level tasks tile the array contiguously.
//
// With ExecOptions::validate on (or HPU_VALIDATE set), every functional
// level additionally runs the hpu::analysis correctness passes — wave race
// detection, schedule-independence re-execution, buffer-residency lint —
// and the findings are attached to ExecReport::analysis.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/race.hpp"
#include "analysis/report.hpp"
#include "analysis/residency.hpp"
#include "analysis/schedule.hpp"
#include "analysis/validate.hpp"
#include "core/level_algorithm.hpp"
#include "sim/buffer.hpp"
#include "sim/hpu.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace hpu::core {

/// Execution knobs shared by all executors.
struct ExecOptions {
    /// Functional mode runs task bodies on real data (results verifiable);
    /// analytic mode skips data work and prices levels from the
    /// recurrence — instant, used by large parameter sweeps. Both modes
    /// produce the same virtual times for uniform-cost algorithms (tests
    /// enforce this).
    bool functional = true;
    /// CPU list-scheduling order (ablation knob).
    util::ListOrder order = util::ListOrder::kArrival;
    /// Run the hpu::analysis correctness passes on every functional level
    /// (race detection, schedule-independence re-execution, residency
    /// lint). Costly — re-executes kernels — so off unless requested here
    /// or via the HPU_VALIDATE environment variable. No effect on the
    /// virtual clock. Ignored in analytic mode (nothing executes).
    bool validate = analysis::env_validate_default();
};

/// Where time went; every executor fills one of these.
struct ExecReport {
    sim::Ticks total = 0.0;
    sim::Ticks cpu_busy = 0.0;       ///< CPU-unit time (parallel phase for hybrids)
    sim::Ticks gpu_busy = 0.0;       ///< device kernel time
    sim::Ticks transfer = 0.0;       ///< link time
    sim::Ticks finish = 0.0;         ///< post-sync CPU wrap-up (advanced hybrid)
    std::uint64_t levels_cpu = 0;
    std::uint64_t levels_gpu = 0;
    double alpha_effective = 0.0;    ///< realized CPU work ratio (advanced hybrid)
    /// Findings of the correctness passes (empty unless ExecOptions::
    /// validate was on).
    analysis::AnalysisReport analysis;
};

namespace detail {

template <typename T>
std::uint64_t level_count(const LevelAlgorithm<T>& alg, std::uint64_t n) {
    HPU_CHECK(alg.a() == alg.b(),
              "array executors require a == b (contiguous level tiling)");
    HPU_CHECK(n >= alg.base_size() * alg.b(), "input must contain at least one division");
    HPU_CHECK(alg.admissible(n), "input size not admissible for this algorithm");
    std::uint64_t L = 0, m = n;
    while (m > alg.base_size()) {
        m /= alg.b();
        ++L;
    }
    return L;  // internal levels 0 .. L-1; leaves below level L-1
}

/// Label of one validated launch, used as the owning-event name in
/// analysis findings (matches the Timeline labels of the schedulers).
inline std::string launch_label(const std::string& name, const char* phase,
                                std::uint64_t tasks) {
    std::ostringstream os;
    os << name << '/' << phase << '[' << tasks << " tasks]";
    return os.str();
}

/// CPU time of one level in analytic mode (uniform tasks).
template <typename T>
sim::Ticks analytic_cpu_level(const sim::CpuUnit& cpu, const LevelAlgorithm<T>& alg,
                              std::uint64_t n_total, std::uint64_t tasks, std::uint64_t level) {
    const auto rec = alg.recurrence();
    const double ops = rec.task_cost(static_cast<double>(n_total), static_cast<double>(level));
    return cpu.uniform_level_time(tasks, ops, alg.level_working_set_bytes(n_total));
}

/// Functional CPU execution of one level: run every task, measure, makespan.
/// With `report` non-null, task access sets are recorded and race-checked.
template <typename T>
sim::Ticks functional_cpu_level(sim::CpuUnit& cpu, const LevelAlgorithm<T>& alg,
                                std::span<T> data, std::uint64_t tasks,
                                const ExecOptions& opts,
                                analysis::AnalysisReport* report = nullptr) {
    if (report == nullptr) {
        const auto r = cpu.run_level(
            tasks,
            [&](std::uint64_t j, sim::OpCounter& ops) { alg.run_task(data, tasks, j, ops); },
            alg.level_working_set_bytes(data.size()), opts.order);
        return r.time;
    }
    std::vector<sim::ItemAccessLog> logs(tasks);
    const auto r = cpu.run_level(
        tasks,
        [&](std::uint64_t j, sim::OpCounter& ops) {
            ops.trace = &logs[j];
            alg.run_task(data, tasks, j, ops);
        },
        alg.level_working_set_bytes(data.size()), opts.order);
    analysis::detect_races(logs, cpu.params().p, launch_label(alg.name(), "cpu-level", tasks),
                           *report);
    return r.time;
}

/// Functional device execution of one level as a kernel of `tasks` items.
/// With `report` non-null, the launch is race-checked AND re-executed in a
/// permuted item order to catch order-dependent kernels the declared
/// access sets miss.
template <typename T>
sim::Ticks functional_gpu_level(sim::Device& dev, const LevelAlgorithm<T>& alg,
                                std::span<T> device_data, std::uint64_t tasks,
                                analysis::AnalysisReport* report = nullptr) {
    if (report == nullptr) {
        const auto r = dev.launch(tasks, [&](sim::WorkItem& wi) {
            alg.run_device_task(device_data, tasks, wi.global_id(), wi.ops());
        });
        return r.time;
    }
    std::vector<sim::ItemAccessLog> logs(tasks);
    const std::vector<T> before(device_data.begin(), device_data.end());
    const auto r = dev.launch(tasks, [&](sim::WorkItem& wi) {
        wi.ops().trace = &logs[wi.global_id()];
        alg.run_device_task(device_data, tasks, wi.global_id(), wi.ops());
    });
    const std::string label = launch_label(alg.name(), "gpu-level", tasks);
    analysis::detect_races(logs, dev.params().g, label, *report);
    const std::vector<T> after(device_data.begin(), device_data.end());
    auto finding = analysis::check_schedule_independence(
        device_data, std::span<const T>(before), std::span<const T>(after), tasks,
        [&](std::uint64_t j) {
            sim::OpCounter throwaway;
            alg.run_device_task(device_data, tasks, j, throwaway);
        },
        /*seed=*/tasks, label);
    if (finding) report->add(std::move(*finding));
    return r.time;
}

/// Virtual time of a device-side hook (permutation, ping-pong flip):
/// charged as perfectly parallel device work spread over all g lanes.
inline sim::Ticks hook_time(const sim::Device& dev, const sim::OpCounter& ops) {
    return ops.gpu_ops(dev.params().strided_penalty) / dev.params().gamma /
           static_cast<double>(dev.params().g);
}

/// Analytic device time of one level (uniform tasks, device pricing via the
/// algorithm's op mix).
template <typename T>
sim::Ticks analytic_gpu_level(const sim::Device& dev, const LevelAlgorithm<T>& alg,
                              std::uint64_t n_total, std::uint64_t tasks, std::uint64_t level) {
    const auto rec = alg.recurrence();
    const double ops = rec.task_cost(static_cast<double>(n_total), static_cast<double>(level)) *
                       alg.device_ops_multiplier(dev.params());
    return dev.uniform_launch_time(tasks, ops);
}

/// Host pre-pass (e.g. FFT bit-reversal), priced as p-way parallel CPU work.
template <typename T>
sim::Ticks host_pre_pass(const LevelAlgorithm<T>& alg, std::span<T> data, std::size_t p) {
    sim::OpCounter pre;
    alg.before_run(data, pre);
    return static_cast<sim::Ticks>(pre.cpu_ops()) / static_cast<double>(p);
}

/// Leaf sweep on the CPU unit: functional when the algorithm has real leaf
/// work, analytic otherwise.
template <typename T>
sim::Ticks cpu_leaves(sim::CpuUnit& cpu, const LevelAlgorithm<T>& alg, std::span<T> region,
                      bool functional, analysis::AnalysisReport* report = nullptr) {
    const std::uint64_t count = region.size() / alg.base_size();
    if (count == 0) return 0.0;
    if (functional && alg.has_leaf_work()) {
        if (report == nullptr) {
            return cpu.run_level(count, [&](std::uint64_t j, sim::OpCounter& ops) {
                          alg.run_leaf(region, count, j, ops);
                      })
                .time;
        }
        std::vector<sim::ItemAccessLog> logs(count);
        const auto r = cpu.run_level(count, [&](std::uint64_t j, sim::OpCounter& ops) {
            ops.trace = &logs[j];
            alg.run_leaf(region, count, j, ops);
        });
        analysis::detect_races(logs, cpu.params().p,
                               launch_label(alg.name(), "cpu-leaves", count), *report);
        return r.time;
    }
    return cpu.uniform_level_time(count, alg.recurrence().leaf_cost);
}

/// Leaf sweep on the device, one work-item per base block.
template <typename T>
sim::Ticks gpu_leaves(sim::Device& dev, const LevelAlgorithm<T>& alg, std::span<T> region,
                      bool functional, analysis::AnalysisReport* report = nullptr) {
    const std::uint64_t count = region.size() / alg.base_size();
    if (count == 0) return 0.0;
    if (functional && alg.has_leaf_work()) {
        if (report == nullptr) {
            return dev
                .launch(count,
                        [&](sim::WorkItem& wi) {
                            alg.run_leaf(region, count, wi.global_id(), wi.ops());
                        })
                .time;
        }
        std::vector<sim::ItemAccessLog> logs(count);
        const auto r = dev.launch(count, [&](sim::WorkItem& wi) {
            wi.ops().trace = &logs[wi.global_id()];
            alg.run_leaf(region, count, wi.global_id(), wi.ops());
        });
        analysis::detect_races(logs, dev.params().g,
                               launch_label(alg.name(), "gpu-leaves", count), *report);
        return r.time;
    }
    return dev.uniform_launch_time(count, alg.recurrence().leaf_cost);
}

/// The analysis sink for a run: the report when validating, else null.
inline analysis::AnalysisReport* analysis_sink(const ExecOptions& opts, ExecReport& rep) {
    return (opts.validate && opts.functional) ? &rep.analysis : nullptr;
}

}  // namespace detail

/// 1-core sequential execution — the paper's baseline comparator. The
/// recursive (Alg. 1) and breadth-first (Alg. 2) orders charge identical
/// ops on one core, so this is the time of both.
template <typename T>
ExecReport run_sequential(sim::CpuUnit& cpu, const LevelAlgorithm<T>& alg, std::span<T> data,
                          const ExecOptions& opts = {}) {
    const std::uint64_t L = detail::level_count(alg, data.size());
    alg.prepare(data.size());
    sim::CpuParams one_core = cpu.params();
    one_core.p = 1;
    one_core.contention = 0.0;  // a single core does not compete with itself
    sim::CpuUnit single(one_core);
    ExecReport rep;
    analysis::AnalysisReport* val = detail::analysis_sink(opts, rep);
    rep.cpu_busy += detail::host_pre_pass(alg, data, 1);
    rep.cpu_busy += detail::cpu_leaves(single, alg, data, opts.functional, val);
    // Internal levels, bottom-up.
    for (std::uint64_t i = L; i-- > 0;) {
        const std::uint64_t tasks = util::ipow(alg.a(), static_cast<std::uint32_t>(i));
        rep.cpu_busy += opts.functional
                            ? detail::functional_cpu_level(single, alg, data, tasks, opts, val)
                            : detail::analytic_cpu_level(single, alg, data.size(), tasks, i);
        ++rep.levels_cpu;
    }
    rep.total = rep.cpu_busy;
    return rep;
}

/// Multi-core breadth-first execution on the HPU's p CPU cores (GPU idle).
template <typename T>
ExecReport run_multicore(sim::CpuUnit& cpu, const LevelAlgorithm<T>& alg, std::span<T> data,
                         const ExecOptions& opts = {}) {
    const std::uint64_t L = detail::level_count(alg, data.size());
    alg.prepare(data.size());
    ExecReport rep;
    analysis::AnalysisReport* val = detail::analysis_sink(opts, rep);
    rep.cpu_busy += detail::host_pre_pass(alg, data, cpu.params().p);
    rep.cpu_busy += detail::cpu_leaves(cpu, alg, data, opts.functional, val);
    for (std::uint64_t i = L; i-- > 0;) {
        const std::uint64_t tasks = util::ipow(alg.a(), static_cast<std::uint32_t>(i));
        rep.cpu_busy += opts.functional
                            ? detail::functional_cpu_level(cpu, alg, data, tasks, opts, val)
                            : detail::analytic_cpu_level(cpu, alg, data.size(), tasks, i);
        ++rep.levels_cpu;
    }
    rep.total = rep.cpu_busy;
    return rep;
}

/// GPU-only breadth-first execution (§4.2): ship the array, run every level
/// as a kernel, ship it back. `include_transfers` toggles the two link
/// events (Fig. 9 reports both variants).
template <typename T>
ExecReport run_gpu(sim::Hpu& hpu, const LevelAlgorithm<T>& alg, std::span<T> data,
                   const ExecOptions& opts = {}, bool include_transfers = true) {
    const std::uint64_t L = detail::level_count(alg, data.size());
    alg.prepare(data.size());
    sim::Device& dev = hpu.gpu();
    ExecReport rep;
    analysis::AnalysisReport* val = detail::analysis_sink(opts, rep);
    rep.cpu_busy += detail::host_pre_pass(alg, data, hpu.params().cpu.p);

    // Functional runs materialize a real device buffer; the analytic path
    // lets the hooks operate on the host span (data is dummy there) and
    // skips the physical copies entirely.
    std::optional<sim::DeviceBuffer<T>> buf;
    std::vector<sim::BufferEvent> buf_events;
    std::span<T> dspan = data;
    if (opts.functional) {
        buf.emplace(std::vector<T>(data.begin(), data.end()));
        if (val != nullptr) buf->set_trace(&buf_events);
        buf->copy_to_device();
        dspan = buf->device();
    }
    if (include_transfers) rep.transfer += hpu.transfer_time(data.size());

    if (opts.functional) {
        sim::OpCounter hook_ops;
        alg.before_gpu_levels(dspan, util::ipow(alg.a(), static_cast<std::uint32_t>(L - 1)),
                              hook_ops);
        rep.gpu_busy += detail::hook_time(dev, hook_ops);
    } else {
        rep.gpu_busy += detail::hook_time(dev, alg.analytic_gpu_hook_ops(data.size()));
    }

    rep.gpu_busy += detail::gpu_leaves(dev, alg, dspan, opts.functional, val);
    for (std::uint64_t i = L; i-- > 0;) {
        const std::uint64_t tasks = util::ipow(alg.a(), static_cast<std::uint32_t>(i));
        if (opts.functional) {
            rep.gpu_busy += detail::functional_gpu_level(dev, alg, dspan, tasks, val);
            sim::OpCounter flip;
            alg.after_gpu_level(dspan, tasks, flip);
            rep.gpu_busy += detail::hook_time(dev, flip);
        } else {
            rep.gpu_busy += detail::analytic_gpu_level(dev, alg, data.size(), tasks, i);
        }
        ++rep.levels_gpu;
    }

    if (opts.functional) {
        sim::OpCounter post_ops;
        alg.after_gpu_levels(dspan, 1, post_ops);
        rep.gpu_busy += detail::hook_time(dev, post_ops);
    }

    if (include_transfers) rep.transfer += hpu.transfer_time(data.size());
    if (opts.functional) {
        buf->copy_to_host();
        std::copy(buf->host_view().begin(), buf->host_view().end(), data.begin());
        if (val != nullptr) {
            analysis::lint_residency(buf_events, alg.name() + "/device-buffer", *val);
        }
    }
    rep.total = rep.cpu_busy + rep.gpu_busy + rep.transfer;
    return rep;
}

}  // namespace hpu::core
