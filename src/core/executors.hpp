// Single-unit executors for LevelAlgorithms: the 1-core sequential baseline
// (the paper's speedup denominator), the multi-core breadth-first executor,
// and the GPU-only breadth-first executor (§4.2). The hybrid schedulers
// live in core/hybrid.hpp.
//
// All executors process the recursion tree bottom-up by *global level*
// index i (0 = root, L-1 = deepest internal level, L = log_b n), running
// the a^i independent tasks of each level on the chosen unit. They require
// a == b so that level tasks tile the array contiguously.
//
// With ExecOptions::validate on (or HPU_VALIDATE set), every functional
// level additionally runs the hpu::analysis correctness passes — wave race
// detection, schedule-independence re-execution, buffer-residency lint —
// and the findings are attached to ExecReport::analysis.
//
// With ExecOptions::trace set, every executor records a hierarchical span
// tree (run → phase → level → wave) into the given hpu::trace session.
// Tracing follows the same discipline as validation: it is strictly off
// the virtual-clock critical path, so attaching a session never changes
// any ExecReport tick (enforced by test).
//
// Host-parallel functional execution: construct the sim::Hpu (or CpuUnit)
// with a util::ThreadPool and CPU levels / device waves run pool-parallel.
// This only accelerates wall-clock; virtual times, traces, and analysis
// findings are bit-identical to the inline run (DESIGN.md §10, enforced
// by the pooled-vs-inline determinism sweep).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analysis/race.hpp"
#include "analysis/report.hpp"
#include "analysis/residency.hpp"
#include "analysis/schedule.hpp"
#include "analysis/validate.hpp"
#include "core/labels.hpp"
#include "core/level_algorithm.hpp"
#include "obs/watchdog.hpp"
#include "sim/buffer.hpp"
#include "sim/hpu.hpp"
#include "trace/span.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/stopwatch.hpp"
#include "verify/conformance.hpp"
#include "verify/report.hpp"
#include "verify/verify.hpp"

namespace hpu::core {

/// HPU_PROFILE environment default for ExecOptions::profile (same
/// convention as HPU_VALIDATE).
inline bool env_profile_default() { return analysis::env_flag_enabled("HPU_PROFILE"); }

/// HPU_OBSERVE environment default for ExecOptions::observe.
inline bool env_observe_default() { return analysis::env_flag_enabled("HPU_OBSERVE"); }

/// HPU_MERGE_PATH environment default for ExecOptions::merge_path. Unlike
/// the validation flags this one defaults ON (it is a pure wall-clock
/// optimization); set HPU_MERGE_PATH=0 to disable.
inline bool env_merge_path_default() { return util::merge_path_env_default(); }

/// Execution knobs shared by all executors.
struct ExecOptions {
    /// Functional mode runs task bodies on real data (results verifiable);
    /// analytic mode skips data work and prices levels from the
    /// recurrence — instant, used by large parameter sweeps. Both modes
    /// produce the same virtual times for uniform-cost algorithms (tests
    /// enforce this).
    bool functional = true;
    /// CPU list-scheduling order (ablation knob).
    util::ListOrder order = util::ListOrder::kArrival;
    /// Run the hpu::analysis correctness passes on every functional level
    /// (race detection, schedule-independence re-execution, residency
    /// lint). Costly — re-executes kernels — so off unless requested here
    /// or via the HPU_VALIDATE environment variable. No effect on the
    /// virtual clock. Ignored in analytic mode (nothing executes).
    bool validate = analysis::env_validate_default();
    /// Span tracer sink (see trace/span.hpp); nullptr = tracing off. The
    /// session is not owned and may accumulate several runs. No effect on
    /// the virtual clock.
    trace::TraceSession* trace = nullptr;
    /// Stamp wall-clock (host) time onto the recorded trace spans: each
    /// functional level / leaf sweep / hook / transfer span, plus the run
    /// root, gets wall_start_ns / wall_ns filled in. Requires `trace`;
    /// no-op without it. The wall stamps feed metrics::derive_profile; the
    /// virtual-clock side of the spans and the ExecReport stay
    /// byte-identical with profiling on or off (enforced by test). Off
    /// unless requested here or via the HPU_PROFILE environment variable.
    bool profile = env_profile_default();
    /// Run the hpu::verify static pass before executing: prove the declared
    /// footprints race-free and check the planned schedule's invariants.
    /// The certificate lands in ExecReport::verify; under `validate`,
    /// statically proven launches swap word-level race concretization for
    /// the cheaper footprint-conformance check. Never touches the virtual
    /// clock. Off unless requested here or via HPU_VERIFY.
    bool verify = verify::env_verify_default();
    /// Budget/caps for the runtime race detector and the conformance
    /// checker (see analysis::RaceOptions).
    analysis::RaceOptions race;
    /// Run the hpu::obs observation over the finished run's span subtree:
    /// (g, γ, λ, δ) re-fit vs the configured parameters, utilization
    /// derivation, and watchdog findings, attached to ExecReport::obs.
    /// Requires `trace`; no-op without it. Runs strictly after the last
    /// tick is computed and is read-only over the session, so the virtual
    /// clock, the trace, and every other ExecReport field are bit-identical
    /// with observe on or off (enforced by test). Off unless requested here
    /// or via the HPU_OBSERVE environment variable.
    bool observe = env_observe_default();
    /// Thresholds the observation's watchdog checks against.
    obs::WatchdogThresholds watchdog;
    /// Let functional task bodies split large merges into Merge Path
    /// segments across the host pool (DESIGN.md §15). Wall-clock only:
    /// ExecReports, traces, outputs, and analysis findings are
    /// bit-identical on or off (enforced by tests/merge_path_test.cpp).
    /// No effect in analytic mode or without a pool. Defaults from
    /// HPU_MERGE_PATH (on unless "0"/"off"/"false"/"no").
    bool merge_path = env_merge_path_default();
};

/// Where time went; every executor fills one of these.
struct ExecReport {
    sim::Ticks total = 0.0;
    sim::Ticks cpu_busy = 0.0;       ///< CPU-unit time (parallel phase for hybrids)
    sim::Ticks gpu_busy = 0.0;       ///< device kernel time
    sim::Ticks transfer = 0.0;       ///< link time
    sim::Ticks finish = 0.0;         ///< post-sync CPU wrap-up (advanced hybrid)
    std::uint64_t levels_cpu = 0;
    std::uint64_t levels_gpu = 0;
    double alpha_effective = 0.0;    ///< realized CPU work ratio (advanced hybrid)
    /// Transfer chunks actually pipelined (pipelined hybrid; 1 = the
    /// schedule degenerated to the advanced hybrid, 0 = other executors).
    std::uint64_t chunks = 0;
    /// Findings of the correctness passes (empty unless ExecOptions::
    /// validate was on).
    analysis::AnalysisReport analysis;
    /// Certificate of the static pass (attempted=false unless
    /// ExecOptions::verify was on).
    hpu::verify::VerifyReport verify;
    /// The trace session spans were recorded into (echoes ExecOptions::
    /// trace; nullptr when tracing was off).
    trace::TraceSession* trace = nullptr;
    /// Observation over this run (attempted=false unless ExecOptions::
    /// observe was on and a trace session was attached).
    obs::ObsReport obs;
    /// Total tasks of the dynamic expand sweep, empty branches included
    /// (irregular algorithms only; stays 0 on every regular path, which
    /// keeps regular reports bit-identical to the pre-irregular build).
    std::uint64_t tasks_spawned = 0;
};

/// Which scheduler shape core/irregular.hpp emulates for a dynamic task
/// tree. Each of the six public executors maps onto one of these when
/// handed an IrregularLevelAlgorithm.
enum class IrregularMode : std::uint8_t {
    kSequential,  ///< 1 core, no device
    kMulticore,   ///< p cores, no device
    kGpu,         ///< device only (optional boundary transfers)
    kBasic,       ///< whole-level placement, observed-cost crossover
    kAdvanced,    ///< per-level α split re-balanced from observed widths
    kPipelined,   ///< advanced + chunked GPU input transfers
};

template <typename T>
ExecReport run_irregular(sim::CpuUnit& cpu, sim::Device* dev, const sim::HpuParams& hw,
                         const IrregularLevelAlgorithm<T>& alg, std::span<T> data,
                         IrregularMode mode, const ExecOptions& opts, std::uint64_t chunks,
                         bool include_transfers, const char* executor_label);

namespace detail {

template <typename T>
std::uint64_t level_count(const LevelAlgorithm<T>& alg, std::uint64_t n) {
    HPU_CHECK(alg.a() == alg.b(),
              "array executors require a == b (contiguous level tiling)");
    HPU_CHECK(n >= alg.base_size() * alg.b(), "input must contain at least one division");
    HPU_CHECK(alg.admissible(n), "input size not admissible for this algorithm");
    std::uint64_t L = 0, m = n;
    while (m > alg.base_size()) {
        m /= alg.b();
        ++L;
    }
    return L;  // internal levels 0 .. L-1; leaves below level L-1
}

/// Validation context of one run, threaded into the functional helpers:
/// the analysis sink (null = validation off), the run's static certificate,
/// and the detector budget. A default-constructed context means
/// "validation off".
struct ValCtx {
    analysis::AnalysisReport* report = nullptr;
    const hpu::verify::VerifyReport* cert = nullptr;
    analysis::RaceOptions race{};

    bool on() const noexcept { return report != nullptr; }

    /// This phase was statically proven race-free — the runtime may check
    /// footprint conformance instead of concretizing words.
    bool proven(verify::Phase ph) const {
        return cert != nullptr && cert->proven(ph);
    }
};

inline ValCtx validation_ctx(const ExecOptions& opts, ExecReport& rep) {
    ValCtx v;
    if (opts.validate && opts.functional) v.report = &rep.analysis;
    v.cert = &rep.verify;
    v.race = opts.race;
    return v;
}

/// Binds the run's Merge Path context onto the algorithm, right after
/// prepare(): the functional pool when the kernel is enabled for this run,
/// a null binding otherwise. Every executor entry point calls this, so a
/// single ExecOptions flag (or HPU_MERGE_PATH) governs all six executors.
template <typename T>
void bind_merge_exec(const LevelAlgorithm<T>& alg, util::ThreadPool* pool,
                     const ExecOptions& opts) {
    util::MergeExec ex;
    ex.kernel = opts.merge_path && opts.functional;
    ex.pool = ex.kernel ? pool : nullptr;
    alg.bind_exec(ex);
}

/// Race-checks one functional launch: launches whose phase the static pass
/// certified are checked for conformance against the declared footprint
/// (O(descriptors) per item); everything else goes through the exact
/// word-concretizing detector. Both paths share counter and budget
/// semantics, so a clean run's AnalysisReport is byte-identical either way.
template <typename T>
void check_launch(const LevelAlgorithm<T>& alg, verify::Phase phase,
                  const std::vector<sim::ItemAccessLog>& logs, std::uint64_t wave_width,
                  std::uint64_t task_size, const std::string& label, const ValCtx& val) {
    if (val.proven(phase)) {
        if (auto fp = alg.footprint(verify::FootprintQuery{phase}); fp.has_value()) {
            verify::check_conformance(*fp, logs, task_size, wave_width, label, *val.report,
                                      val.race);
            return;
        }
    }
    analysis::detect_races(logs, wave_width, label, *val.report, val.race);
}

/// Where a detail helper records its trace spans: the session, the parent
/// span, the virtual-clock tick the helper's span starts at, and (for
/// level helpers) the global level index. A default-constructed context
/// means "tracing off".
struct SpanCtx {
    trace::TraceSession* session = nullptr;
    trace::SpanId parent = trace::kNoSpan;
    sim::Ticks at = 0.0;
    std::uint64_t level = trace::SpanAttrs::kNoLevel;
    bool profile = false;  ///< stamp wall time onto recorded spans

    bool on() const noexcept { return session != nullptr; }

    /// Same sink/parent, shifted clock (and optionally a level index).
    SpanCtx shifted(sim::Ticks by, std::uint64_t lvl = trace::SpanAttrs::kNoLevel) const {
        return SpanCtx{session, parent, at + by, lvl, profile};
    }

    /// now_ns() when profiling this span tree, else 0 ("not profiled") —
    /// the token annotate_wall() later turns into a wall stamp.
    std::uint64_t wall_start() const noexcept {
        return (profile && session != nullptr) ? util::now_ns() : 0;
    }
};

/// Stamps wall time onto a recorded span: `w0` is the wall_start() token
/// taken before the work; elapsed is clamped up to 1 ns so a profiled span
/// is always distinguishable from an unprofiled one (wall_ns == 0).
inline void annotate_wall(const SpanCtx& tc, trace::SpanId id, std::uint64_t w0) {
    if (w0 == 0 || id == trace::kNoSpan || tc.session == nullptr) return;
    const std::uint64_t t1 = util::now_ns();
    tc.session->annotate_wall(id, w0, t1 > w0 ? t1 - w0 : 1);
}

/// Clears the device's wave sink on scope exit (kernel bodies may throw).
class WaveTraceGuard {
public:
    WaveTraceGuard(sim::Device& dev, std::vector<sim::WaveTrace>* sink) : dev_(dev) {
        dev_.set_wave_trace(sink);
    }
    ~WaveTraceGuard() { dev_.set_wave_trace(nullptr); }
    WaveTraceGuard(const WaveTraceGuard&) = delete;
    WaveTraceGuard& operator=(const WaveTraceGuard&) = delete;

private:
    sim::Device& dev_;
};

/// Records the level span of one device launch plus its per-wave children.
inline trace::SpanId trace_gpu_launch(const SpanCtx& tc, const std::string& name, const char* phase,
                             const sim::Device& dev, const sim::LaunchResult& r,
                             std::uint64_t tasks, const std::vector<sim::WaveTrace>& waves,
                             trace::SpanKind kind) {
    const auto& dp = dev.params();
    trace::SpanAttrs a;
    a.level = tc.level;
    a.tasks = tasks;
    a.items = r.items;
    a.waves = r.waves;
    a.ops = r.total_ops.gpu_ops(dp.strided_penalty);
    a.max_ops = r.max_item_ops;
    a.work = static_cast<double>(r.total_ops.cpu_ops());
    a.coalesced_transactions = util::ceil_div(r.total_ops.mem_coalesced, dp.coalesce_width);
    a.strided_transactions = r.total_ops.mem_strided;
    const trace::SpanId lvl = tc.session->record(
        kind, trace::Unit::kGpu, launch_label(name, phase, tasks), tc.at, r.time, a,
        tc.parent);
    sim::Ticks cursor = tc.at + dp.launch_overhead;
    for (const sim::WaveTrace& w : waves) {
        trace::SpanAttrs wa;
        wa.items = w.items;
        wa.ops = w.ops.gpu_ops(dp.strided_penalty);
        wa.max_ops = w.max_item_ops;
        wa.work = static_cast<double>(w.ops.cpu_ops());
        wa.coalesced_transactions = util::ceil_div(w.ops.mem_coalesced, dp.coalesce_width);
        wa.strided_transactions = w.ops.mem_strided;
        tc.session->record(trace::SpanKind::kWave, trace::Unit::kGpu,
                           launch_label(name, "wave", w.items), cursor, w.duration, wa, lvl);
        cursor += w.duration;
    }
    return lvl;
}

/// Records the span of one CPU level/leaf sweep from its LevelResult.
inline trace::SpanId trace_cpu_level(const SpanCtx& tc, const std::string& name,
                                     const char* phase, const sim::LevelResult& r,
                                     trace::SpanKind kind) {
    trace::SpanAttrs a;
    a.level = tc.level;
    a.tasks = r.tasks;
    a.ops = static_cast<double>(r.total_ops.cpu_ops());
    a.max_ops = static_cast<double>(r.max_task_ops);
    a.work = a.ops;
    return tc.session->record(kind, trace::Unit::kCpu, launch_label(name, phase, r.tasks),
                              tc.at, r.time, a, tc.parent);
}

/// Records an analytic (not executed) level span on either unit.
inline trace::SpanId trace_analytic_level(const SpanCtx& tc, const std::string& name,
                                          const char* phase, trace::Unit unit,
                                          std::uint64_t tasks, double work, double unit_ops,
                                          sim::Ticks time, trace::SpanKind kind,
                                          std::uint64_t g = 0) {
    trace::SpanAttrs a;
    a.level = tc.level;
    a.tasks = tasks;
    a.work = work;
    a.ops = unit_ops;
    // Analytic levels are uniform by construction: every task charges the
    // same unit-priced cost, so the critical item IS the mean.
    if (tasks > 0) a.max_ops = unit_ops / static_cast<double>(tasks);
    if (unit == trace::Unit::kGpu && g > 0) {
        a.items = tasks;
        a.waves = util::ceil_div(tasks, g);
    }
    return tc.session->record(kind, unit, launch_label(name, phase, tasks), tc.at, time, a,
                              tc.parent);
}

/// CPU time of one level in analytic mode (uniform tasks).
template <typename T>
sim::Ticks analytic_cpu_level(const sim::CpuUnit& cpu, const LevelAlgorithm<T>& alg,
                              std::uint64_t n_total, std::uint64_t tasks, std::uint64_t level,
                              const SpanCtx& tc = {}) {
    const auto rec = alg.recurrence();
    const double ops = rec.task_cost(static_cast<double>(n_total), static_cast<double>(level));
    const sim::Ticks t =
        cpu.uniform_level_time(tasks, ops, alg.level_working_set_bytes(n_total));
    if (tc.on()) {
        const double work = static_cast<double>(tasks) * ops;
        trace_analytic_level(tc, alg.name(), "cpu-level", trace::Unit::kCpu, tasks, work,
                             work, t, trace::SpanKind::kLevel);
    }
    return t;
}

/// Functional CPU execution of one level: run every task, measure, makespan.
/// With validation on, task access sets are recorded and race-checked.
template <typename T>
sim::Ticks functional_cpu_level(sim::CpuUnit& cpu, const LevelAlgorithm<T>& alg,
                                std::span<T> data, std::uint64_t tasks,
                                const ExecOptions& opts, const ValCtx& val = {},
                                const SpanCtx& tc = {}) {
    const std::uint64_t w0 = tc.wall_start();
    sim::LevelResult r;
    if (!val.on()) {
        r = cpu.run_level(
            tasks,
            [&](std::uint64_t j, sim::OpCounter& ops) { alg.run_task(data, tasks, j, ops); },
            alg.level_working_set_bytes(data.size()), opts.order, alg.intra_task_parallel());
    } else {
        std::vector<sim::ItemAccessLog> logs(tasks);
        r = cpu.run_level(
            tasks,
            [&](std::uint64_t j, sim::OpCounter& ops) {
                ops.trace = &logs[j];
                alg.run_task(data, tasks, j, ops);
            },
            alg.level_working_set_bytes(data.size()), opts.order, alg.intra_task_parallel());
        check_launch(alg, verify::Phase::kCpuTask, logs, cpu.params().p,
                     data.size() / tasks, launch_label(alg.name(), "cpu-level", tasks), val);
    }
    if (tc.on()) {
        annotate_wall(tc, trace_cpu_level(tc, alg.name(), "cpu-level", r,
                                          trace::SpanKind::kLevel),
                      w0);
    }
    return r.time;
}

/// Functional device execution of one level as a kernel of `tasks` items.
/// With validation on, the launch is race-checked AND re-executed in a
/// permuted item order to catch order-dependent kernels the declared
/// access sets miss.
template <typename T>
sim::Ticks functional_gpu_level(sim::Device& dev, const LevelAlgorithm<T>& alg,
                                std::span<T> device_data, std::uint64_t tasks,
                                const ValCtx& val = {}, const SpanCtx& tc = {}) {
    const std::uint64_t w0 = tc.wall_start();
    std::vector<sim::WaveTrace> waves;
    WaveTraceGuard guard(dev, tc.on() ? &waves : nullptr);
    sim::LaunchResult r;
    if (!val.on()) {
        r = dev.launch(
            tasks,
            [&](sim::WorkItem& wi) {
                alg.run_device_task(device_data, tasks, wi.global_id(), wi.ops());
            },
            alg.intra_task_parallel());
    } else {
        std::vector<sim::ItemAccessLog> logs(tasks);
        const std::vector<T> before(device_data.begin(), device_data.end());
        r = dev.launch(
            tasks,
            [&](sim::WorkItem& wi) {
                wi.ops().trace = &logs[wi.global_id()];
                alg.run_device_task(device_data, tasks, wi.global_id(), wi.ops());
            },
            alg.intra_task_parallel());
        const std::string label = launch_label(alg.name(), "gpu-level", tasks);
        check_launch(alg, verify::Phase::kDeviceTask, logs, dev.params().g,
                     device_data.size() / tasks, label, val);
        const std::vector<T> after(device_data.begin(), device_data.end());
        auto finding = analysis::check_schedule_independence(
            device_data, std::span<const T>(before), std::span<const T>(after), tasks,
            [&](std::uint64_t j) {
                sim::OpCounter throwaway;
                alg.run_device_task(device_data, tasks, j, throwaway);
            },
            /*seed=*/tasks, label);
        if (finding) val.report->add(std::move(*finding));
    }
    if (tc.on()) {
        annotate_wall(tc,
                      trace_gpu_launch(tc, alg.name(), "gpu-level", dev, r, tasks, waves,
                                       trace::SpanKind::kLevel),
                      w0);
    }
    return r.time;
}

/// Virtual time of a device-side hook (permutation, ping-pong flip):
/// charged as perfectly parallel device work spread over all g lanes.
inline sim::Ticks hook_time(const sim::Device& dev, const sim::OpCounter& ops) {
    return ops.gpu_ops(dev.params().strided_penalty) / dev.params().gamma /
           static_cast<double>(dev.params().g);
}

/// hook_time plus an optional kHook span (skipped when the hook charged
/// nothing — most algorithms have empty hooks). `wall0` is a wall_start()
/// token taken before the hook body executed; 0 = not profiled.
inline sim::Ticks traced_hook(const sim::Device& dev, const sim::OpCounter& ops,
                              const std::string& name, const char* what, const SpanCtx& tc,
                              std::uint64_t wall0 = 0) {
    const sim::Ticks t = hook_time(dev, ops);
    if (tc.on() && t > 0.0) {
        trace::SpanAttrs a;
        a.ops = ops.gpu_ops(dev.params().strided_penalty);
        a.work = static_cast<double>(ops.cpu_ops());
        const trace::SpanId id =
            tc.session->record(trace::SpanKind::kHook, trace::Unit::kGpu,
                               phase_label(name, what), tc.at, t, a, tc.parent);
        annotate_wall(tc, id, wall0);
    }
    return t;
}

/// Analytic device time of one level (uniform tasks, device pricing via the
/// algorithm's op mix).
template <typename T>
sim::Ticks analytic_gpu_level(const sim::Device& dev, const LevelAlgorithm<T>& alg,
                              std::uint64_t n_total, std::uint64_t tasks, std::uint64_t level,
                              const SpanCtx& tc = {}) {
    const auto rec = alg.recurrence();
    const double work =
        rec.task_cost(static_cast<double>(n_total), static_cast<double>(level));
    const double ops = work * alg.device_ops_multiplier(dev.params());
    const sim::Ticks t = dev.uniform_launch_time(tasks, ops);
    if (tc.on()) {
        trace_analytic_level(tc, alg.name(), "gpu-level", trace::Unit::kGpu, tasks,
                             static_cast<double>(tasks) * work,
                             static_cast<double>(tasks) * ops, t, trace::SpanKind::kLevel,
                             dev.params().g);
    }
    return t;
}

/// Host pre-pass (e.g. FFT bit-reversal), priced as p-way parallel CPU work.
template <typename T>
sim::Ticks host_pre_pass(const LevelAlgorithm<T>& alg, std::span<T> data, std::size_t p,
                         const SpanCtx& tc = {}) {
    const std::uint64_t w0 = tc.wall_start();
    sim::OpCounter pre;
    alg.before_run(data, pre);
    const sim::Ticks t = static_cast<sim::Ticks>(pre.cpu_ops()) / static_cast<double>(p);
    if (tc.on() && t > 0.0) {
        trace::SpanAttrs a;
        a.ops = static_cast<double>(pre.cpu_ops());
        a.work = a.ops;
        const trace::SpanId id =
            tc.session->record(trace::SpanKind::kHook, trace::Unit::kCpu,
                               phase_label(alg.name(), "pre"), tc.at, t, a, tc.parent);
        annotate_wall(tc, id, w0);
    }
    return t;
}

/// Leaf sweep on the CPU unit: functional when the algorithm has real leaf
/// work, analytic otherwise.
template <typename T>
sim::Ticks cpu_leaves(sim::CpuUnit& cpu, const LevelAlgorithm<T>& alg, std::span<T> region,
                      bool functional, const ValCtx& val = {}, const SpanCtx& tc = {}) {
    const std::uint64_t count = region.size() / alg.base_size();
    if (count == 0) return 0.0;
    if (functional && alg.has_leaf_work()) {
        const std::uint64_t w0 = tc.wall_start();
        sim::LevelResult r;
        if (!val.on()) {
            r = cpu.run_level(count, [&](std::uint64_t j, sim::OpCounter& ops) {
                alg.run_leaf(region, count, j, ops);
            });
        } else {
            std::vector<sim::ItemAccessLog> logs(count);
            r = cpu.run_level(count, [&](std::uint64_t j, sim::OpCounter& ops) {
                ops.trace = &logs[j];
                alg.run_leaf(region, count, j, ops);
            });
            check_launch(alg, verify::Phase::kLeaf, logs, cpu.params().p, alg.base_size(),
                         launch_label(alg.name(), "cpu-leaves", count), val);
        }
        if (tc.on()) {
            annotate_wall(tc, trace_cpu_level(tc, alg.name(), "cpu-leaves", r,
                                              trace::SpanKind::kLeaves),
                          w0);
        }
        return r.time;
    }
    const sim::Ticks t = cpu.uniform_level_time(count, alg.recurrence().leaf_cost);
    if (tc.on()) {
        const double work = static_cast<double>(count) * alg.recurrence().leaf_cost;
        trace_analytic_level(tc, alg.name(), "cpu-leaves", trace::Unit::kCpu, count, work,
                             work, t, trace::SpanKind::kLeaves);
    }
    return t;
}

/// Leaf sweep on the device, one work-item per base block.
template <typename T>
sim::Ticks gpu_leaves(sim::Device& dev, const LevelAlgorithm<T>& alg, std::span<T> region,
                      bool functional, const ValCtx& val = {}, const SpanCtx& tc = {}) {
    const std::uint64_t count = region.size() / alg.base_size();
    if (count == 0) return 0.0;
    if (functional && alg.has_leaf_work()) {
        const std::uint64_t w0 = tc.wall_start();
        std::vector<sim::WaveTrace> waves;
        WaveTraceGuard guard(dev, tc.on() ? &waves : nullptr);
        sim::LaunchResult r;
        if (!val.on()) {
            r = dev.launch(count, [&](sim::WorkItem& wi) {
                alg.run_leaf(region, count, wi.global_id(), wi.ops());
            });
        } else {
            std::vector<sim::ItemAccessLog> logs(count);
            r = dev.launch(count, [&](sim::WorkItem& wi) {
                wi.ops().trace = &logs[wi.global_id()];
                alg.run_leaf(region, count, wi.global_id(), wi.ops());
            });
            check_launch(alg, verify::Phase::kLeaf, logs, dev.params().g, alg.base_size(),
                         launch_label(alg.name(), "gpu-leaves", count), val);
        }
        if (tc.on()) {
            annotate_wall(tc,
                          trace_gpu_launch(tc, alg.name(), "gpu-leaves", dev, r, count, waves,
                                           trace::SpanKind::kLeaves),
                          w0);
        }
        return r.time;
    }
    const sim::Ticks t = dev.uniform_launch_time(count, alg.recurrence().leaf_cost);
    if (tc.on()) {
        const double work = static_cast<double>(count) * alg.recurrence().leaf_cost;
        trace_analytic_level(tc, alg.name(), "gpu-leaves", trace::Unit::kGpu, count, work,
                             work, t, trace::SpanKind::kLeaves, dev.params().g);
    }
    return t;
}

/// Opens the root run span of one executor invocation (kNoSpan when
/// tracing is off); close_run finalizes its end once the total is known.
inline trace::SpanId open_run(const ExecOptions& opts, const std::string& name,
                              const char* executor, std::uint64_t n) {
    if (opts.trace == nullptr) return trace::kNoSpan;
    trace::SpanAttrs a;
    a.items = n;
    const trace::SpanId id = opts.trace->record(trace::SpanKind::kRun, trace::Unit::kHost,
                                                phase_label(name, executor), 0.0, 0.0, a);
    // Profiling stashes the wall start on the open span; close_run turns it
    // into the run's wall duration (wall_ns stays 0 — "unprofiled" — until
    // then).
    if (opts.profile) opts.trace->annotate_wall(id, util::now_ns(), 0);
    return id;
}

inline void close_run(const ExecOptions& opts, trace::SpanId run, sim::Ticks total) {
    if (opts.trace == nullptr || run == trace::kNoSpan) return;
    opts.trace->close(run, total);
    const std::uint64_t w0 = opts.trace->span(run).wall_start_ns;
    if (opts.profile && w0 != 0) {
        const std::uint64_t t1 = util::now_ns();
        opts.trace->annotate_wall(run, w0, t1 > w0 ? t1 - w0 : 1);
    }
}

/// Runs the hpu::obs observation over the just-closed run when
/// ExecOptions::observe is on. Called strictly after close_run — every
/// tick of the report is already settled, and the observation is read-only
/// over the session, so enabling it cannot perturb anything (enforced by
/// test). CPU-only executors pass a partial HpuParams (their CpuParams
/// plus defaults): without GPU or link spans the device-side parameters
/// stay non-identifiable and fire no findings.
template <typename T>
void observe_run(const ExecOptions& opts, ExecReport& rep, trace::SpanId run,
                 const sim::HpuParams& hw, const LevelAlgorithm<T>& alg,
                 util::ThreadPool* pool, std::size_t requested_chunks = 0,
                 std::size_t settled_chunks = 0) {
    if (!opts.observe || opts.trace == nullptr || run == trace::kNoSpan) return;
    obs::ObserveContext ctx;
    ctx.hw = hw;
    ctx.rec = alg.recurrence();
    ctx.device_ops_multiplier = alg.device_ops_multiplier(hw.gpu);
    if (pool != nullptr) ctx.pool = pool->telemetry();
    ctx.requested_chunks = requested_chunks;
    ctx.settled_chunks = settled_chunks;
    ctx.thresholds = opts.watchdog;
    rep.obs = obs::observe(*opts.trace, run, ctx);
}

/// Records a link-transfer span. `wall0` is a wall_start() token taken
/// before the physical copy; 0 = not profiled.
inline void trace_transfer(const SpanCtx& tc, const std::string& name, const char* what,
                           std::uint64_t words, std::uint64_t bytes, sim::Ticks time,
                           std::uint64_t wall0 = 0) {
    if (!tc.on()) return;
    trace::SpanAttrs a;
    a.items = words;
    a.bytes = bytes;
    const trace::SpanId id =
        tc.session->record(trace::SpanKind::kTransfer, trace::Unit::kLink,
                           phase_label(name, what), tc.at, time, a, tc.parent);
    annotate_wall(tc, id, wall0);
}

/// Opens a phase grouping span under `run`; closed by the caller.
inline trace::SpanId open_phase(const ExecOptions& opts, trace::SpanId run,
                                const std::string& name, const char* phase, trace::Unit unit,
                                sim::Ticks start) {
    if (opts.trace == nullptr) return trace::kNoSpan;
    return opts.trace->record(trace::SpanKind::kPhase, unit, phase_label(name, phase), start,
                              0.0, {}, run);
}

}  // namespace detail

/// 1-core sequential execution — the paper's baseline comparator. The
/// recursive (Alg. 1) and breadth-first (Alg. 2) orders charge identical
/// ops on one core, so this is the time of both.
template <typename T>
ExecReport run_sequential(sim::CpuUnit& cpu, const LevelAlgorithm<T>& alg, std::span<T> data,
                          const ExecOptions& opts = {}) {
    if (const auto* irr = alg.as_irregular()) {
        sim::CpuParams one_core = cpu.params();
        one_core.p = 1;
        one_core.contention = 0.0;
        sim::CpuUnit single(one_core, cpu.pool());
        sim::HpuParams hw;
        hw.cpu = one_core;
        return run_irregular(single, static_cast<sim::Device*>(nullptr), hw, *irr, data,
                             IrregularMode::kSequential, opts, /*chunks=*/0,
                             /*include_transfers=*/false, "sequential");
    }
    const std::uint64_t L = detail::level_count(alg, data.size());
    alg.prepare(data.size());
    detail::bind_merge_exec(alg, cpu.pool(), opts);
    sim::CpuParams one_core = cpu.params();
    one_core.p = 1;
    one_core.contention = 0.0;  // a single core does not compete with itself
    // The virtual machine has one core, but the *functional* execution
    // still rides the caller's thread pool — the two clocks are
    // independent (DESIGN.md §10).
    sim::CpuUnit single(one_core, cpu.pool());
    ExecReport rep;
    rep.trace = opts.trace;
    if (opts.verify) {
        rep.verify = verify::verify_cpu_run(alg, data.size(), single, "sequential");
    }
    const detail::ValCtx val = detail::validation_ctx(opts, rep);
    const trace::SpanId run = detail::open_run(opts, alg.name(), "sequential", data.size());
    const detail::SpanCtx tc{opts.trace, run, 0.0, trace::SpanAttrs::kNoLevel, opts.profile};
    rep.cpu_busy += detail::host_pre_pass(alg, data, 1, tc);
    rep.cpu_busy +=
        detail::cpu_leaves(single, alg, data, opts.functional, val, tc.shifted(rep.cpu_busy));
    // Internal levels, bottom-up.
    for (std::uint64_t i = L; i-- > 0;) {
        const std::uint64_t tasks = util::ipow(alg.a(), static_cast<std::uint32_t>(i));
        const detail::SpanCtx lt = tc.shifted(rep.cpu_busy, i);
        rep.cpu_busy += opts.functional
                            ? detail::functional_cpu_level(single, alg, data, tasks, opts, val,
                                                           lt)
                            : detail::analytic_cpu_level(single, alg, data.size(), tasks, i,
                                                         lt);
        ++rep.levels_cpu;
    }
    rep.total = rep.cpu_busy;
    detail::close_run(opts, run, rep.total);
    sim::HpuParams hw;
    hw.cpu = one_core;
    detail::observe_run(opts, rep, run, hw, alg, cpu.pool());
    return rep;
}

/// Multi-core breadth-first execution on the HPU's p CPU cores (GPU idle).
template <typename T>
ExecReport run_multicore(sim::CpuUnit& cpu, const LevelAlgorithm<T>& alg, std::span<T> data,
                         const ExecOptions& opts = {}) {
    if (const auto* irr = alg.as_irregular()) {
        sim::HpuParams hw;
        hw.cpu = cpu.params();
        return run_irregular(cpu, static_cast<sim::Device*>(nullptr), hw, *irr, data,
                             IrregularMode::kMulticore, opts, /*chunks=*/0,
                             /*include_transfers=*/false, "multicore");
    }
    const std::uint64_t L = detail::level_count(alg, data.size());
    alg.prepare(data.size());
    detail::bind_merge_exec(alg, cpu.pool(), opts);
    ExecReport rep;
    rep.trace = opts.trace;
    if (opts.verify) {
        rep.verify = verify::verify_cpu_run(alg, data.size(), cpu, "multicore");
    }
    const detail::ValCtx val = detail::validation_ctx(opts, rep);
    const trace::SpanId run = detail::open_run(opts, alg.name(), "multicore", data.size());
    const detail::SpanCtx tc{opts.trace, run, 0.0, trace::SpanAttrs::kNoLevel, opts.profile};
    rep.cpu_busy += detail::host_pre_pass(alg, data, cpu.params().p, tc);
    rep.cpu_busy +=
        detail::cpu_leaves(cpu, alg, data, opts.functional, val, tc.shifted(rep.cpu_busy));
    for (std::uint64_t i = L; i-- > 0;) {
        const std::uint64_t tasks = util::ipow(alg.a(), static_cast<std::uint32_t>(i));
        const detail::SpanCtx lt = tc.shifted(rep.cpu_busy, i);
        rep.cpu_busy += opts.functional
                            ? detail::functional_cpu_level(cpu, alg, data, tasks, opts, val, lt)
                            : detail::analytic_cpu_level(cpu, alg, data.size(), tasks, i, lt);
        ++rep.levels_cpu;
    }
    rep.total = rep.cpu_busy;
    detail::close_run(opts, run, rep.total);
    sim::HpuParams hw;
    hw.cpu = cpu.params();
    detail::observe_run(opts, rep, run, hw, alg, cpu.pool());
    return rep;
}

/// GPU-only breadth-first execution (§4.2): ship the array, run every level
/// as a kernel, ship it back. `include_transfers` toggles the two link
/// events (Fig. 9 reports both variants).
template <typename T>
ExecReport run_gpu(sim::Hpu& hpu, const LevelAlgorithm<T>& alg, std::span<T> data,
                   const ExecOptions& opts = {}, bool include_transfers = true) {
    if (const auto* irr = alg.as_irregular()) {
        return run_irregular(hpu.cpu(), &hpu.gpu(), hpu.params(), *irr, data,
                             IrregularMode::kGpu, opts, /*chunks=*/0, include_transfers,
                             "gpu");
    }
    const std::uint64_t L = detail::level_count(alg, data.size());
    alg.prepare(data.size());
    detail::bind_merge_exec(alg, hpu.cpu().pool(), opts);
    sim::Device& dev = hpu.gpu();
    ExecReport rep;
    rep.trace = opts.trace;
    if (opts.verify) {
        verify::RunShape shape;
        shape.kind = verify::RunShape::Kind::kGpu;
        shape.include_transfers = include_transfers;
        rep.verify = verify::verify_hybrid_run(alg, data.size(), hpu, shape);
    }
    const detail::ValCtx val = detail::validation_ctx(opts, rep);
    const trace::SpanId run = detail::open_run(opts, alg.name(), "gpu", data.size());
    const detail::SpanCtx tc{opts.trace, run, 0.0, trace::SpanAttrs::kNoLevel, opts.profile};
    rep.cpu_busy += detail::host_pre_pass(alg, data, hpu.params().cpu.p, tc);
    // The span clock serializes pre → ship-in → kernels → ship-out, which
    // is exactly how rep.total adds up.
    sim::Ticks clock = rep.cpu_busy;

    // Functional runs materialize a real device buffer; the analytic path
    // lets the hooks operate on the host span (data is dummy there) and
    // skips the physical copies entirely.
    std::optional<sim::DeviceBuffer<T>> buf;
    std::vector<sim::BufferEvent> buf_events;
    std::span<T> dspan = data;
    const std::uint64_t xin_w0 = tc.wall_start();
    if (opts.functional) {
        buf.emplace(std::vector<T>(data.begin(), data.end()));
        if (val.on()) buf->set_trace(&buf_events);
        buf->copy_to_device();
        dspan = buf->device();
    }
    if (include_transfers) {
        const sim::Ticks x = hpu.transfer_time(data.size());
        detail::trace_transfer(tc.shifted(clock), alg.name(), "xfer-in", data.size(),
                               data.size() * sizeof(T), x, xin_w0);
        rep.transfer += x;
        clock += x;
    }

    if (opts.functional) {
        const std::uint64_t hw0 = tc.wall_start();
        sim::OpCounter hook_ops;
        alg.before_gpu_levels(dspan, util::ipow(alg.a(), static_cast<std::uint32_t>(L - 1)),
                              hook_ops);
        const sim::Ticks t = detail::traced_hook(dev, hook_ops, alg.name(), "gpu-pre-hook",
                                                 tc.shifted(clock), hw0);
        rep.gpu_busy += t;
        clock += t;
    } else {
        const sim::Ticks t = detail::traced_hook(dev, alg.analytic_gpu_hook_ops(data.size()),
                                                 alg.name(), "gpu-hooks", tc.shifted(clock));
        rep.gpu_busy += t;
        clock += t;
    }

    {
        const sim::Ticks t =
            detail::gpu_leaves(dev, alg, dspan, opts.functional, val, tc.shifted(clock));
        rep.gpu_busy += t;
        clock += t;
    }
    for (std::uint64_t i = L; i-- > 0;) {
        const std::uint64_t tasks = util::ipow(alg.a(), static_cast<std::uint32_t>(i));
        if (opts.functional) {
            sim::Ticks t =
                detail::functional_gpu_level(dev, alg, dspan, tasks, val, tc.shifted(clock, i));
            rep.gpu_busy += t;
            clock += t;
            const std::uint64_t hw0 = tc.wall_start();
            sim::OpCounter flip;
            alg.after_gpu_level(dspan, tasks, flip);
            t = detail::traced_hook(dev, flip, alg.name(), "gpu-level-hook",
                                    tc.shifted(clock), hw0);
            rep.gpu_busy += t;
            clock += t;
        } else {
            const sim::Ticks t = detail::analytic_gpu_level(dev, alg, data.size(), tasks, i,
                                                            tc.shifted(clock, i));
            rep.gpu_busy += t;
            clock += t;
        }
        ++rep.levels_gpu;
    }

    if (opts.functional) {
        const std::uint64_t hw0 = tc.wall_start();
        sim::OpCounter post_ops;
        alg.after_gpu_levels(dspan, 1, post_ops);
        const sim::Ticks t = detail::traced_hook(dev, post_ops, alg.name(), "gpu-post-hook",
                                                 tc.shifted(clock), hw0);
        rep.gpu_busy += t;
        clock += t;
    }

    const std::uint64_t xout_w0 = tc.wall_start();
    if (opts.functional) buf->copy_to_host();
    if (include_transfers) {
        const sim::Ticks x = hpu.transfer_time(data.size());
        detail::trace_transfer(tc.shifted(clock), alg.name(), "xfer-out", data.size(),
                               data.size() * sizeof(T), x, xout_w0);
        rep.transfer += x;
        clock += x;
    }
    if (opts.functional) {
        std::copy(buf->host_view().begin(), buf->host_view().end(), data.begin());
        if (val.on()) {
            analysis::lint_residency(buf_events, alg.name() + "/device-buffer", *val.report);
        }
    }
    rep.total = rep.cpu_busy + rep.gpu_busy + rep.transfer;
    detail::close_run(opts, run, rep.total);
    detail::observe_run(opts, rep, run, hpu.params(), alg, hpu.cpu().pool());
    return rep;
}

}  // namespace hpu::core

// The dynamic-tree engine is a separate header for readability, but it needs
// the detail helpers above and the executors need its run_irregular — so it
// is textually part of this header (include-at-bottom; it has no own guard
// loop because both files are #pragma once).
#include "core/irregular.hpp"  // IWYU pragma: keep
