// The pipelined hybrid scheduler (DESIGN.md §9): the advanced schedule of
// §5.2 with its two bulk transfers split into K chunks that overlap wave
// execution on a sim::Stream.
//
// The GPU thread runs in three stages:
//
//   stage 0 — eager input stream: the K input chunks (aligned to the
//     transfer-level task size) are enqueued on the link at tick 0 and
//     arrive back to back; chunk c's words land at (c+1)·λ + δ·prefix.
//   stage 1 — chunk-local compute: as soon as a chunk has arrived and the
//     device is free, its leaves and the deep levels L-1..d run on the
//     chunk alone. The merge level d is the shallowest level at which the
//     smallest chunk still fills the device (≥ g tasks); chunking shallower
//     levels would fragment waves and inflate the makespan.
//   stage 2 — merged shallow compute: levels d-1..y run as whole-region
//     launches (they need data from every chunk), then the results ship
//     back in one bulk transfer. When d = y the stage is empty and results
//     stream back chunk by chunk instead, overlapping the last computes.
//
// A priori guard: the scheduler prices both the pipelined and the
// unpipelined (K = 1) GPU thread with the same analytic arithmetic the
// executors use and falls back to K = 1 unless pipelining strictly wins —
// so the pipelined makespan is never worse than the advanced one (exactly,
// in analytic mode; for uniform-cost algorithms the functional clock
// matches). At K = 1 the schedule degenerates to the advanced hybrid's
// exact event sequence, reproducing its makespan bit for bit.
//
// The CPU thread, sync point, and finish phase are the advanced hybrid's,
// unchanged.
//
// Like the other schedulers, pipelined runs inherit host-parallel
// functional execution from the Hpu's thread pool; the virtual pipeline
// schedule is bit-identical with or without it (DESIGN.md §10).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/hybrid.hpp"
#include "sim/stream.hpp"

namespace hpu::core {

/// Knobs of the pipelined scheduler beyond (α, y).
struct PipelinedOptions {
    /// Requested transfer chunks K. Clamped to the transfer-level task
    /// count of the GPU slice; the no-win guard may reduce it to 1.
    std::uint64_t chunks = 4;
    /// Split-level task count, as AdvancedOptions::split_tasks.
    std::uint64_t split_tasks = 0;
    ExecOptions exec;
};

namespace detail {

// The chunk-plan vocabulary lives in hpu::verify (single source of truth
// shared with the static schedule verifier); aliased here for call sites.
using verify::ChunkPlan;
using verify::plan_chunks;

}  // namespace detail

/// Pipelined hybrid scheduler at explicit (α, transfer level y, K chunks).
/// Same contract as run_advanced_hybrid; ExecReport::chunks reports the K
/// the guard settled on.
template <typename T>
ExecReport run_pipelined_hybrid(sim::Hpu& hpu, const LevelAlgorithm<T>& alg, std::span<T> data,
                                double alpha, std::uint64_t y,
                                const PipelinedOptions& pip = {}) {
    // As in run_advanced_hybrid, a dynamic tree ignores the caller's (α, y)
    // plan; pip.chunks still bounds the per-level transfer chunking.
    if (const auto* irr = alg.as_irregular()) {
        HPU_CHECK(pip.chunks >= 1, "need at least one chunk");
        return run_irregular(hpu.cpu(), &hpu.gpu(), hpu.params(), *irr, data,
                             IrregularMode::kPipelined, pip.exec, pip.chunks,
                             /*include_transfers=*/true, "pipelined-hybrid");
    }
    HPU_CHECK(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    HPU_CHECK(pip.chunks >= 1, "need at least one chunk");
    const auto shape = detail::shape_of(alg, data.size());
    alg.prepare(data.size());
    const ExecOptions& opts = pip.exec;
    detail::bind_merge_exec(alg, hpu.cpu().pool(), opts);
    HPU_CHECK(y >= 1 && y <= shape.L, "transfer level y must be in [1, L]");
    sim::Device& dev = hpu.gpu();
    ExecReport rep;
    rep.trace = opts.trace;
    if (opts.verify) {
        verify::RunShape vshape;
        vshape.kind = verify::RunShape::Kind::kPipelined;
        vshape.alpha = alpha;
        vshape.y = y;
        vshape.chunks = pip.chunks;
        vshape.split_tasks = pip.split_tasks;
        rep.verify = verify::verify_hybrid_run(alg, data.size(), hpu, vshape);
    }
    const detail::ValCtx val = detail::validation_ctx(opts, rep);
    const trace::SpanId run = detail::open_run(opts, alg.name(), "pipelined-hybrid",
                                               data.size());
    const sim::Ticks pre = detail::host_pre_pass(
        alg, data, hpu.params().cpu.p,
        detail::SpanCtx{opts.trace, run, 0.0, trace::SpanAttrs::kNoLevel, opts.profile});

    // --- Split level: identical to the advanced hybrid. The arithmetic
    // lives in verify::choose_split so the static verifier checks the same
    // plan the executor runs.
    const verify::SplitChoice split = verify::choose_split(
        shape.L, data.size(), shape.a, alpha, y, pip.split_tasks, hpu.params().cpu.p);
    const std::uint64_t s = split.s;
    const std::uint64_t split_elem = split.split_elem;
    rep.alpha_effective = split.alpha_effective;

    std::span<T> cpu_region = data.subspan(0, split_elem);
    std::span<T> gpu_region = data.subspan(split_elem);
    const std::uint64_t W = gpu_region.size();

    // --- Chunk plan, merge level d, and the a-priori never-worse guard:
    // verify::plan_pipelined IS this executor's decision procedure (moved
    // there verbatim), so the verified and executed plans coincide.
    const verify::PipelineChoice pc = verify::plan_pipelined(
        alg, dev, hpu.params().link, data.size(), shape.L, shape.a, W, y, pip.chunks);
    const std::vector<detail::ChunkPlan>& plan = pc.plan;
    const std::uint64_t d = pc.d;
    const std::uint64_t K = plan.size();
    rep.chunks = K;

    // --- GPU thread. Timeline clocks start at 0 (historical convention,
    // as the advanced hybrid); spans start at pre.
    const trace::SpanId gphase =
        detail::open_phase(opts, run, alg.name(), "gpu-phase", trace::Unit::kGpu, pre);
    const detail::SpanCtx gtc{opts.trace, gphase, pre, trace::SpanAttrs::kNoLevel,
                              opts.profile};
    std::optional<sim::DeviceBuffer<T>> buf;
    std::vector<sim::BufferEvent> buf_events;
    if (opts.functional) {
        buf.emplace(std::vector<T>(gpu_region.begin(), gpu_region.end()));
        if (val.on()) buf->set_trace(&buf_events);
    }
    sim::Stream stream(hpu.params().link, &hpu.timeline());

    // Stage 0: eager input stream — every chunk enqueued at tick 0.
    std::vector<sim::StreamEvent> arrived(K);
    for (std::uint64_t c = 0; c < K; ++c) {
        const std::uint64_t xw0 = gtc.wall_start();
        arrived[c] = stream.push_to_device(phase_label(alg.name(), "xfer-in-chunk"),
                                           plan[c].words, plan[c].offset, 0.0);
        const sim::StreamChunk& ch = stream.chunks().back();
        if (opts.functional) buf->stream_to_device(ch.offset, ch.words, ch.start, ch.end);
        detail::trace_transfer(gtc.shifted(ch.start), alg.name(), "xfer-in-chunk", ch.words,
                               ch.words * sizeof(T), ch.duration(), xw0);
    }

    // Stage 1: chunk-local leaves + deep levels, double-buffered against
    // the stream — each chunk starts at max(arrival, device free).
    sim::Ticks gpu_kernels = 0.0;
    sim::Ticks gpu_free = 0.0;
    std::vector<sim::Ticks> comp_end(K, 0.0);
    for (std::uint64_t c = 0; c < K; ++c) {
        const sim::Ticks at = arrived[c].wait(gpu_free);
        std::span<T> dspan = opts.functional
                                 ? buf->device_region(plan[c].offset, plan[c].words, at)
                                 : gpu_region.subspan(plan[c].offset, plan[c].words);
        sim::Ticks k = 0.0;
        if (opts.functional) {
            const std::uint64_t hw0 = gtc.wall_start();
            sim::OpCounter hook;
            alg.before_gpu_levels(dspan, plan[c].words / shape.task_size_at(shape.L - 1),
                                  hook);
            k += detail::traced_hook(dev, hook, alg.name(), "gpu-pre-hook",
                                     gtc.shifted(at + k), hw0);
        } else if (d < shape.L) {
            // Hook costs apply only when device levels actually execute.
            k += detail::traced_hook(dev, alg.analytic_gpu_hook_ops(plan[c].words),
                                     alg.name(), "gpu-hooks", gtc.shifted(at + k));
        }
        k += detail::gpu_leaves(dev, alg, dspan, opts.functional, val, gtc.shifted(at + k));
        for (std::uint64_t i = shape.L; i-- > d;) {
            const std::uint64_t tasks = plan[c].words / shape.task_size_at(i);
            if (tasks == 0) continue;
            if (opts.functional) {
                k += detail::functional_gpu_level(dev, alg, dspan, tasks, val,
                                                  gtc.shifted(at + k, i));
                const std::uint64_t hw0 = gtc.wall_start();
                sim::OpCounter flip;
                alg.after_gpu_level(dspan, tasks, flip);
                k += detail::traced_hook(dev, flip, alg.name(), "gpu-level-hook",
                                         gtc.shifted(at + k), hw0);
            } else {
                k += detail::analytic_gpu_level(dev, alg, data.size(), tasks, i,
                                                gtc.shifted(at + k, i));
            }
            if (c == 0) ++rep.levels_gpu;
        }
        if (opts.functional) {
            const std::uint64_t hw0 = gtc.wall_start();
            sim::OpCounter post;
            alg.after_gpu_levels(dspan, plan[c].words / shape.task_size_at(d), post);
            k += detail::traced_hook(dev, post, alg.name(), "gpu-post-hook",
                                     gtc.shifted(at + k), hw0);
        }
        hpu.timeline().record(sim::EventKind::kGpuKernel,
                              launch_label(alg.name(), "gpu-chunk", plan[c].words), at, k);
        comp_end[c] = at + k;
        gpu_free = comp_end[c];
        gpu_kernels += k;
    }

    // Stage 2: merged shallow levels d-1..y over the whole region.
    if (d > y) {
        const sim::Ticks at = gpu_free;
        std::span<T> dspan =
            opts.functional ? buf->device_region(0, W, at) : gpu_region;
        sim::Ticks k = 0.0;
        if (opts.functional) {
            const std::uint64_t hw0 = gtc.wall_start();
            sim::OpCounter hook;
            alg.before_gpu_levels(dspan, W / shape.task_size_at(d - 1), hook);
            k += detail::traced_hook(dev, hook, alg.name(), "gpu-merge-hook",
                                     gtc.shifted(at + k), hw0);
        } else if (d < shape.L) {
            k += detail::traced_hook(dev, alg.analytic_gpu_hook_ops(W), alg.name(),
                                     "gpu-merge-hook", gtc.shifted(at + k));
        }
        for (std::uint64_t i = d; i-- > y;) {
            const std::uint64_t tasks = W / shape.task_size_at(i);
            if (tasks == 0) continue;
            if (opts.functional) {
                k += detail::functional_gpu_level(dev, alg, dspan, tasks, val,
                                                  gtc.shifted(at + k, i));
                const std::uint64_t hw0 = gtc.wall_start();
                sim::OpCounter flip;
                alg.after_gpu_level(dspan, tasks, flip);
                k += detail::traced_hook(dev, flip, alg.name(), "gpu-level-hook",
                                         gtc.shifted(at + k), hw0);
            } else {
                k += detail::analytic_gpu_level(dev, alg, data.size(), tasks, i,
                                                gtc.shifted(at + k, i));
            }
            ++rep.levels_gpu;
        }
        if (opts.functional) {
            const std::uint64_t hw0 = gtc.wall_start();
            sim::OpCounter post;
            alg.after_gpu_levels(dspan, W / shape.task_size_at(y), post);
            k += detail::traced_hook(dev, post, alg.name(), "gpu-post-hook",
                                     gtc.shifted(at + k), hw0);
        } else {
            k += detail::traced_hook(dev, alg.analytic_gpu_hook_ops(W), alg.name(),
                                     "gpu-post-hook", gtc.shifted(at + k));
        }
        hpu.timeline().record(sim::EventKind::kGpuKernel,
                              phase_label(alg.name(), "gpu-merge"), at, k);
        gpu_free = at + k;
        gpu_kernels += k;
    }
    rep.gpu_busy = gpu_kernels;

    // Results retrieval: one bulk transfer after the merged stage, or
    // per-chunk streaming overlapped with the last computes when d = y.
    sim::Ticks gpu_clock = 0.0;
    if (d > y) {
        const std::uint64_t xw0 = gtc.wall_start();
        const sim::StreamEvent done =
            stream.push_to_host(phase_label(alg.name(), "xfer-out"), W, 0, gpu_free);
        const sim::StreamChunk& ch = stream.chunks().back();
        if (opts.functional) buf->stream_to_host(0, W, ch.start, ch.end);
        detail::trace_transfer(gtc.shifted(ch.start), alg.name(), "xfer-out", W,
                               W * sizeof(T), ch.duration(), xw0);
        gpu_clock = done.when;
    } else {
        for (std::uint64_t c = 0; c < K; ++c) {
            const std::uint64_t xw0 = gtc.wall_start();
            const sim::StreamEvent done =
                stream.push_to_host(phase_label(alg.name(), "xfer-out-chunk"),
                                    plan[c].words, plan[c].offset, comp_end[c]);
            const sim::StreamChunk& ch = stream.chunks().back();
            if (opts.functional) buf->stream_to_host(ch.offset, ch.words, ch.start, ch.end);
            detail::trace_transfer(gtc.shifted(ch.start), alg.name(), "xfer-out-chunk",
                                   ch.words, ch.words * sizeof(T), ch.duration(), xw0);
            gpu_clock = done.when;
        }
    }
    rep.transfer = stream.busy();
    if (opts.trace != nullptr) opts.trace->close(gphase, pre + gpu_clock);
    if (opts.functional) {
        std::copy(buf->host_view().begin(), buf->host_view().end(), gpu_region.begin());
        if (val.on()) {
            analysis::lint_residency(buf_events, alg.name() + "/device-buffer", *val.report);
        }
    }

    // --- CPU thread (concurrent): identical to the advanced hybrid.
    const trace::SpanId cphase =
        detail::open_phase(opts, run, alg.name(), "cpu-parallel", trace::Unit::kCpu, pre);
    const detail::SpanCtx ctc{opts.trace, cphase, pre, trace::SpanAttrs::kNoLevel,
                              opts.profile};
    sim::Ticks cpu_clock = detail::cpu_leaves(hpu.cpu(), alg, cpu_region, opts.functional,
                                              val, ctc);
    cpu_clock += detail::cpu_levels(hpu.cpu(), alg, cpu_region, data.size(), shape.L - 1, s,
                                    opts, &rep.levels_cpu, val, ctc.shifted(cpu_clock));
    rep.cpu_busy = cpu_clock;
    hpu.timeline().record(sim::EventKind::kCpuLevel, phase_label(alg.name(), "cpu-parallel"),
                          0.0, cpu_clock);
    if (opts.trace != nullptr) opts.trace->close(cphase, pre + cpu_clock);

    // --- Sync point and finish phase: the advanced hybrid's, unchanged.
    const sim::Ticks sync = std::max(gpu_clock, cpu_clock);
    const trace::SpanId fphase =
        detail::open_phase(opts, run, alg.name(), "finish", trace::Unit::kCpu, pre + sync);
    const detail::SpanCtx ftc{opts.trace, fphase, pre + sync, trace::SpanAttrs::kNoLevel,
                              opts.profile};
    sim::Ticks fin = 0.0;
    if (y > s) {
        fin += detail::cpu_levels(hpu.cpu(), alg, gpu_region, data.size(), y - 1, s, opts,
                                  &rep.levels_cpu, val, ftc);
    }
    if (s > 0) {
        fin += detail::cpu_levels(hpu.cpu(), alg, data, data.size(), s - 1, std::uint64_t{0},
                                  opts, &rep.levels_cpu, val, ftc.shifted(fin));
    }
    rep.finish = fin;
    hpu.timeline().record(sim::EventKind::kCpuLevel, phase_label(alg.name(), "finish"), sync,
                          fin);
    if (opts.trace != nullptr) opts.trace->close(fphase, pre + sync + fin);
    rep.total = pre + sync + fin;
    detail::close_run(opts, run, rep.total);
    detail::observe_run(opts, rep, run, hpu.params(), alg, hpu.cpu().pool(), pip.chunks,
                        rep.chunks);
    return rep;
}

}  // namespace hpu::core
