// Dynamic task lists for irregular divide-and-conquer trees.
//
// The regular executors (core/executors.hpp) never materialize a task
// list: level i of a regular LevelAlgorithm has exactly a^i equal tasks
// whose slices follow from offsets alone. Irregular algorithms (quickhull,
// closest-pair, Karatsuba — see core/level_algorithm.hpp's
// IrregularLevelAlgorithm) produce their level's tasks *at run time*, with
// variable arity, uneven extents, empty branches, and early termination.
// TaskDesc/TaskList are the vocabulary those algorithms and the irregular
// engine (core/irregular.hpp) exchange; the per-level shape statistics
// feed the observed-width scheduler (model/observed.hpp) and the
// width/imbalance trace attributes (trace/span.hpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace hpu::core {

/// One dynamic task: a contiguous word extent [begin, end) plus an
/// algorithm-owned tag (node id, orientation bit, ...). Extents of one
/// level's non-empty tasks must be pairwise disjoint — the engine checks
/// this under validation (analysis::detect_extent_overlaps) and the exact
/// race detector checks the logged accesses behind the declaration.
struct TaskDesc {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;    ///< one past the last word; end <= begin = empty
    std::uint64_t tag = 0;    ///< algorithm payload, opaque to the engine

    std::uint64_t size() const noexcept { return end > begin ? end - begin : 0; }
    bool empty() const noexcept { return end <= begin; }

    friend bool operator==(const TaskDesc&, const TaskDesc&) = default;
};

/// The tasks of one level of an irregular tree, in schedule order. An
/// empty list terminates the expansion.
struct TaskList {
    std::vector<TaskDesc> tasks;

    std::uint64_t width() const noexcept { return tasks.size(); }
    bool empty() const noexcept { return tasks.empty(); }

    /// Total words covered by the level ("frontier" size — what a hybrid
    /// level exchange would ship).
    std::uint64_t extent_words() const noexcept {
        std::uint64_t w = 0;
        for (const TaskDesc& t : tasks) w += t.size();
        return w;
    }

    /// Tasks with an empty extent (spawned-but-dead branches; still counted
    /// by the span conservation invariant).
    std::uint64_t empty_tasks() const noexcept {
        std::uint64_t c = 0;
        for (const TaskDesc& t : tasks) c += t.empty() ? 1 : 0;
        return c;
    }

    /// Shape skew of the level: max non-empty extent over mean non-empty
    /// extent. 1.0 for a perfectly regular level, 0.0 when every task is
    /// empty (or the list is).
    double imbalance() const noexcept {
        std::uint64_t total = 0, live = 0, max_sz = 0;
        for (const TaskDesc& t : tasks) {
            if (t.empty()) continue;
            ++live;
            total += t.size();
            max_sz = std::max(max_sz, t.size());
        }
        if (live == 0 || total == 0) return 0.0;
        return static_cast<double>(max_sz) * static_cast<double>(live) /
               static_cast<double>(total);
    }
};

}  // namespace hpu::core
