// The irregular-tree engine: executes an IrregularLevelAlgorithm whose
// recursion tree is produced dynamically — variable arity, uneven extents,
// empty branches, early termination — on every scheduler shape of the
// framework (IrregularMode). The six public executors dispatch here when
// handed an irregular algorithm; regular algorithms never reach this file,
// which keeps the regular paths bit-identical to the pre-irregular build.
//
// Two sweeps, mirroring the breadth-first translation (Alg. 2):
//
//   expand  — top-down: run every task's divide_task; the concatenated
//             children (in task order) become the next level's list; an
//             empty frontier ends the sweep.
//   combine — bottom-up over the recorded levels: run every task's
//             combine_task with its recorded children (empty span = leaf).
//             Skipped when has_combine() is false.
//
// Scheduling: the closed-form (α, y) plans of §5 assume level i has a^i
// equal tasks, which a dynamic tree does not honor. The hybrid modes
// therefore re-derive the split PER LEVEL from the observed task list
// (model/observed.hpp): kAdvanced/kPipelined choose the prefix k that
// minimizes the estimated level makespan (the per-level α re-balance),
// kBasic places whole levels on the cheaper unit including the residency
// switch transfer. Decisions are pure functions of (hardware, per-task
// estimates), so pooled and inline runs schedule — and therefore time —
// identically.
//
// Correctness machinery on the dynamic path:
//  - verify: static race-freedom proofs need static footprints, which a
//    data-dependent tree cannot declare. ExecOptions::verify attaches
//    verify_irregular_run's downgrade certificate (all phases kUnknown +
//    a kDynamicFootprint finding), which keeps the exact runtime checks on.
//  - validate: per dynamic level, declared extents are checked pairwise
//    disjoint (analysis::detect_extent_overlaps) and the logged accesses
//    of ALL the level's tasks go through the exact race detector with the
//    full width as the concurrency window (CPU and GPU parts of a split
//    level overlap in virtual time). The schedule-independence re-run and
//    the residency lint of the regular path do not apply here (divide
//    bodies mutate the frontier; there is no device buffer object).
//  - trace: run → phase(expand/combine) → level(+waves) spans; level
//    spans carry the level's extent_words and imbalance attributes.
//  - obs: skipped — the observation's drift model assumes the regular
//    recurrence shape; ExecReport::obs stays attempted=false.
//
// Functional execution happens in host memory (like every functional path
// of the simulator); transfer time is charged per the mode: kGpu ships the
// array across the boundary once each way, kBasic pays residency switches,
// kAdvanced/kPipelined ship each level's GPU part in and out (kPipelined
// chunks the input transfer and overlaps it with the chunk kernels).
//
// Analytic mode prices the tree from analytic_widths(n) — task bodies do
// not run (root_tasks/finalize included), data is untouched.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/executors.hpp"
#include "model/observed.hpp"

namespace hpu::core {
namespace irr_detail {

/// One recorded level of the expand sweep: its task list plus, per task,
/// the offset of its children in the NEXT level's list (prefix sums,
/// child_off.size() == width + 1).
struct LevelRecord {
    TaskList list;
    std::vector<std::uint64_t> child_off;
};

inline double est_sum(const std::vector<model::ObservedTask>& est, std::uint64_t b,
                      std::uint64_t e) {
    double s = 0.0;
    for (std::uint64_t j = b; j < e; ++j) s += est[j].cost;
    return s;
}

inline std::uint64_t est_words(const std::vector<model::ObservedTask>& est, std::uint64_t b,
                               std::uint64_t e) {
    std::uint64_t w = 0;
    for (std::uint64_t j = b; j < e; ++j) w += est[j].words;
    return w;
}

/// How one dynamic level is scheduled: the prefix [0, k) runs on the CPU,
/// [k, W) on the device. kBasic may pay a residency-switch transfer up
/// front; kAdvanced/kPipelined ship the GPU part in and out every level.
struct LevelPlan {
    std::uint64_t k = 0;
    sim::Ticks switch_xfer = 0.0;
    std::uint64_t switch_words = 0;
    const char* switch_dir = nullptr;  ///< "xfer-in" / "xfer-out" (kBasic)
    bool per_level_xfers = false;
};

}  // namespace irr_detail

template <typename T>
ExecReport run_irregular(sim::CpuUnit& cpu, sim::Device* dev, const sim::HpuParams& hw,
                         const IrregularLevelAlgorithm<T>& alg, std::span<T> data,
                         IrregularMode mode, const ExecOptions& opts, std::uint64_t chunks,
                         bool include_transfers, const char* executor_label) {
    const std::uint64_t n = data.size();
    HPU_CHECK(alg.admissible(n), "input size not admissible for this algorithm");
    const bool cpu_only =
        mode == IrregularMode::kSequential || mode == IrregularMode::kMulticore;
    HPU_CHECK(cpu_only || dev != nullptr, "gpu/hybrid irregular modes need a device");
    alg.prepare(n);
    detail::bind_merge_exec(alg, cpu.pool(), opts);

    ExecReport rep;
    rep.trace = opts.trace;
    if (opts.verify) {
        rep.verify = verify::verify_irregular_run(alg.name(), executor_label, n);
    }
    const detail::ValCtx val = detail::validation_ctx(opts, rep);
    const trace::SpanId run = detail::open_run(opts, alg.name(), executor_label, n);
    const detail::SpanCtx rt{opts.trace, run, 0.0, trace::SpanAttrs::kNoLevel, opts.profile};

    const double mult = cpu_only ? 1.0 : alg.device_ops_multiplier(hw.gpu);
    const std::uint64_t k_chunks =
        mode == IrregularMode::kPipelined ? std::max<std::uint64_t>(chunks, 1) : 1;
    const bool hybrid = mode == IrregularMode::kBasic || mode == IrregularMode::kAdvanced ||
                        mode == IrregularMode::kPipelined;

    sim::Ticks clock = 0.0;
    double cpu_est_work = 0.0, total_est_work = 0.0;
    bool on_device = false;  ///< where the frontier lives (kBasic residency)

    // Mode policy for one level, from the per-task estimates alone.
    auto plan_level = [&](const std::vector<model::ObservedTask>& est) {
        irr_detail::LevelPlan plan;
        const std::uint64_t width = est.size();
        switch (mode) {
            case IrregularMode::kSequential:
            case IrregularMode::kMulticore: plan.k = width; break;
            case IrregularMode::kGpu: plan.k = 0; break;
            case IrregularMode::kBasic: {
                const std::uint64_t fw = irr_detail::est_words(est, 0, width);
                const sim::Ticks sw = hw.link.transfer_time(fw);
                const auto pl = model::place_observed_level(hw, est, mult,
                                                            on_device ? sw : 0.0,
                                                            on_device ? 0.0 : sw);
                if (pl.unit == model::LevelPlacement::kCpu) {
                    plan.k = width;
                    if (on_device) {
                        plan.switch_xfer = sw;
                        plan.switch_words = fw;
                        plan.switch_dir = "xfer-out";
                        on_device = false;
                    }
                } else {
                    plan.k = 0;
                    if (!on_device) {
                        plan.switch_xfer = sw;
                        plan.switch_words = fw;
                        plan.switch_dir = "xfer-in";
                        on_device = true;
                    }
                }
                break;
            }
            case IrregularMode::kAdvanced:
            case IrregularMode::kPipelined: {
                const auto sp = model::split_observed_level(hw, est, mult,
                                                            /*include_transfers=*/true);
                plan.k = sp.cpu_tasks;
                plan.per_level_xfers = true;
                break;
            }
        }
        cpu_est_work += irr_detail::est_sum(est, 0, plan.k);
        total_est_work += irr_detail::est_sum(est, 0, width);
        return plan;
    };

    // Runs the CPU part [0, k) of one level (functional); returns its time.
    auto run_cpu_part = [&](const irr_detail::LevelPlan& plan,
                            const std::vector<model::ObservedTask>& est, std::uint64_t depth,
                            trace::SpanId phase_span, sim::Ticks level_start, double imb,
                            std::vector<sim::ItemAccessLog>& logs, auto&& body) {
        const detail::SpanCtx tc{opts.trace, phase_span, level_start, depth, opts.profile};
        const std::uint64_t w0 = tc.wall_start();
        const std::uint64_t cpu_words = irr_detail::est_words(est, 0, plan.k);
        const sim::LevelResult r = cpu.run_level(
            plan.k,
            [&](std::uint64_t j, sim::OpCounter& ops) {
                if (!logs.empty()) ops.trace = &logs[j];
                body(j, ops);
            },
            alg.level_working_set_bytes(cpu_words), opts.order, alg.intra_task_parallel());
        rep.cpu_busy += r.time;
        ++rep.levels_cpu;
        if (tc.on()) {
            const trace::SpanId id =
                detail::trace_cpu_level(tc, alg.name(), "cpu-level", r, trace::SpanKind::kLevel);
            trace::SpanAttrs a;
            a.extent_words = cpu_words;
            a.imbalance = imb;
            tc.session->annotate(id, a);
            detail::annotate_wall(tc, id, w0);
        }
        return r.time;
    };

    // Runs the GPU part [k, W) of one level (functional), optionally as
    // k_chunks pipelined chunks; returns the GPU path length relative to
    // the level start (transfers included when the plan ships per level).
    auto run_gpu_part = [&](const irr_detail::LevelPlan& plan,
                            const std::vector<model::ObservedTask>& est, std::uint64_t depth,
                            trace::SpanId phase_span, sim::Ticks level_start, double imb,
                            std::vector<sim::ItemAccessLog>& logs, auto&& body) {
        const std::uint64_t width = est.size();
        const std::uint64_t gw = width - plan.k;
        const std::uint64_t K = mode == IrregularMode::kPipelined ? std::min(k_chunks, gw) : 1;
        sim::Ticks arrive = 0.0;   // input-transfer front, relative to level start
        sim::Ticks gpu_end = 0.0;  // device busy front, relative to level start
        for (std::uint64_t c = 0; c < K; ++c) {
            const std::uint64_t cb = plan.k + (c * gw) / K;
            const std::uint64_t ce = plan.k + ((c + 1) * gw) / K;
            if (ce == cb) continue;
            const std::uint64_t cw = irr_detail::est_words(est, cb, ce);
            if (plan.per_level_xfers) {
                const sim::Ticks x = hw.link.transfer_time(cw);
                detail::trace_transfer(
                    detail::SpanCtx{opts.trace, phase_span, level_start + arrive, depth,
                                    opts.profile},
                    alg.name(), "xfer-in", cw, cw * sizeof(T), x);
                rep.transfer += x;
                arrive += x;
            }
            const sim::Ticks start = std::max(arrive, gpu_end);
            const detail::SpanCtx tg{opts.trace, phase_span, level_start + start, depth,
                                     opts.profile};
            const std::uint64_t w0 = tg.wall_start();
            std::vector<sim::WaveTrace> waves;
            detail::WaveTraceGuard guard(*dev, tg.on() ? &waves : nullptr);
            const sim::LaunchResult r = dev->launch(
                ce - cb,
                [&](sim::WorkItem& wi) {
                    const std::uint64_t j = cb + wi.global_id();
                    if (!logs.empty()) wi.ops().trace = &logs[j];
                    body(j, wi.ops());
                },
                alg.intra_task_parallel());
            rep.gpu_busy += r.time;
            gpu_end = start + r.time;
            if (tg.on()) {
                const trace::SpanId id = detail::trace_gpu_launch(
                    tg, alg.name(), "gpu-level", *dev, r, ce - cb, waves,
                    trace::SpanKind::kLevel);
                trace::SpanAttrs a;
                a.extent_words = cw;
                a.imbalance = imb;
                tg.session->annotate(id, a);
                detail::annotate_wall(tg, id, w0);
            }
        }
        ++rep.levels_gpu;
        if (mode == IrregularMode::kPipelined) rep.chunks = std::max(rep.chunks, K);
        if (plan.per_level_xfers) {
            const std::uint64_t gpu_words = irr_detail::est_words(est, plan.k, width);
            const sim::Ticks x = hw.link.transfer_time(gpu_words);
            detail::trace_transfer(
                detail::SpanCtx{opts.trace, phase_span, level_start + gpu_end, depth,
                                opts.profile},
                alg.name(), "xfer-out", gpu_words, gpu_words * sizeof(T), x);
            rep.transfer += x;
            gpu_end += x;
        }
        return gpu_end;
    };

    // Schedules + runs one functional level; advances the clock by the
    // level makespan. `body(j, ops)` executes task j's divide/combine.
    auto run_level_functional = [&](const TaskList& list, std::uint64_t depth,
                                    const char* sweep, bool combine, trace::SpanId phase_span,
                                    auto&& body) {
        const std::uint64_t width = list.width();
        if (width == 0) return;
        std::vector<model::ObservedTask> est(width);
        for (std::uint64_t j = 0; j < width; ++j) {
            est[j] = model::ObservedTask{alg.task_cost_estimate(list.tasks[j], combine),
                                         list.tasks[j].size()};
        }
        const irr_detail::LevelPlan plan = plan_level(est);
        const std::string label = launch_label(alg.name(), sweep, width);
        std::vector<sim::ItemAccessLog> logs;
        if (val.on()) {
            std::vector<analysis::Extent> ex;
            ex.reserve(width);
            for (const TaskDesc& t : list.tasks) ex.push_back({t.begin, t.end});
            analysis::detect_extent_overlaps(ex, label, *val.report, val.race);
            logs.resize(width);
        }
        const double imb = list.imbalance();
        if (plan.switch_xfer > 0.0) {
            detail::trace_transfer(
                detail::SpanCtx{opts.trace, phase_span, clock, depth, opts.profile},
                alg.name(), plan.switch_dir, plan.switch_words,
                plan.switch_words * sizeof(T), plan.switch_xfer);
            rep.transfer += plan.switch_xfer;
            clock += plan.switch_xfer;
        }
        const sim::Ticks level_start = clock;
        sim::Ticks cpu_time = 0.0, gpu_path = 0.0;
        if (plan.k > 0) {
            cpu_time = run_cpu_part(plan, est, depth, phase_span, level_start, imb, logs,
                                    body);
        }
        if (width > plan.k) {
            gpu_path = run_gpu_part(plan, est, depth, phase_span, level_start, imb, logs,
                                    body);
        }
        if (val.on()) {
            // CPU and GPU parts of a split level overlap in virtual time,
            // so the whole width is one concurrency window.
            analysis::detect_races(logs, width, label, *val.report, val.race);
        }
        clock = level_start + std::max(cpu_time, gpu_path);
    };

    // Analytic twin: prices one uniform level of `width` tasks without
    // executing anything.
    auto run_level_analytic = [&](std::uint64_t width, std::uint64_t depth,
                                  trace::SpanId phase_span) {
        HPU_CHECK(width > 0, "analytic level width must be positive");
        const double cost = alg.analytic_task_cost(n, depth);
        const std::uint64_t per_words = n / width;
        std::vector<model::ObservedTask> est(width, model::ObservedTask{cost, per_words});
        const irr_detail::LevelPlan plan = plan_level(est);
        if (plan.switch_xfer > 0.0) {
            detail::trace_transfer(
                detail::SpanCtx{opts.trace, phase_span, clock, depth, opts.profile},
                alg.name(), plan.switch_dir, plan.switch_words,
                plan.switch_words * sizeof(T), plan.switch_xfer);
            rep.transfer += plan.switch_xfer;
            clock += plan.switch_xfer;
        }
        const sim::Ticks level_start = clock;
        sim::Ticks cpu_time = 0.0, gpu_path = 0.0;
        if (plan.k > 0) {
            const std::uint64_t cpu_words = plan.k * per_words;
            cpu_time = cpu.uniform_level_time(plan.k, cost,
                                              alg.level_working_set_bytes(cpu_words));
            rep.cpu_busy += cpu_time;
            ++rep.levels_cpu;
            if (opts.trace != nullptr) {
                const detail::SpanCtx tc{opts.trace, phase_span, level_start, depth,
                                         opts.profile};
                const double work = cost * static_cast<double>(plan.k);
                const trace::SpanId id = detail::trace_analytic_level(
                    tc, alg.name(), "cpu-level", trace::Unit::kCpu, plan.k, work, work,
                    cpu_time, trace::SpanKind::kLevel);
                trace::SpanAttrs a;
                a.extent_words = cpu_words;
                a.imbalance = 1.0;
                opts.trace->annotate(id, a);
            }
        }
        const std::uint64_t gw = width - plan.k;
        if (gw > 0) {
            const std::uint64_t K = mode == IrregularMode::kPipelined ? std::min(k_chunks, gw) : 1;
            sim::Ticks arrive = 0.0, gpu_end = 0.0;
            for (std::uint64_t c = 0; c < K; ++c) {
                const std::uint64_t cb = plan.k + (c * gw) / K;
                const std::uint64_t ce = plan.k + ((c + 1) * gw) / K;
                if (ce == cb) continue;
                const std::uint64_t cw = (ce - cb) * per_words;
                if (plan.per_level_xfers) {
                    const sim::Ticks x = hw.link.transfer_time(cw);
                    detail::trace_transfer(
                        detail::SpanCtx{opts.trace, phase_span, level_start + arrive, depth,
                                        opts.profile},
                        alg.name(), "xfer-in", cw, cw * sizeof(T), x);
                    rep.transfer += x;
                    arrive += x;
                }
                const sim::Ticks start = std::max(arrive, gpu_end);
                const sim::Ticks t = dev->uniform_launch_time(ce - cb, cost * mult);
                rep.gpu_busy += t;
                if (opts.trace != nullptr) {
                    const detail::SpanCtx tg{opts.trace, phase_span, level_start + start,
                                             depth, opts.profile};
                    const double work = cost * static_cast<double>(ce - cb);
                    const trace::SpanId id = detail::trace_analytic_level(
                        tg, alg.name(), "gpu-level", trace::Unit::kGpu, ce - cb, work,
                        work * mult, t, trace::SpanKind::kLevel, hw.gpu.g);
                    trace::SpanAttrs a;
                    a.extent_words = cw;
                    a.imbalance = 1.0;
                    opts.trace->annotate(id, a);
                }
                gpu_end = start + t;
            }
            ++rep.levels_gpu;
            if (mode == IrregularMode::kPipelined) rep.chunks = std::max(rep.chunks, K);
            if (plan.per_level_xfers) {
                const std::uint64_t gpu_words = gw * per_words;
                const sim::Ticks x = hw.link.transfer_time(gpu_words);
                detail::trace_transfer(
                    detail::SpanCtx{opts.trace, phase_span, level_start + gpu_end, depth,
                                    opts.profile},
                    alg.name(), "xfer-out", gpu_words, gpu_words * sizeof(T), x);
                rep.transfer += x;
                gpu_end += x;
            }
            gpu_path = gpu_end;
        }
        clock = level_start + std::max(cpu_time, gpu_path);
    };

    // ---- root pass (functional only: the analytic path never touches data)
    std::vector<irr_detail::LevelRecord> levels;
    if (opts.functional) {
        const std::uint64_t w0 = rt.wall_start();
        sim::OpCounter pre;
        TaskList root = alg.root_tasks(data, pre);
        const sim::Ticks t = static_cast<sim::Ticks>(pre.cpu_ops()) /
                             static_cast<double>(cpu.params().p);
        if (rt.on() && t > 0.0) {
            trace::SpanAttrs a;
            a.ops = static_cast<double>(pre.cpu_ops());
            a.work = a.ops;
            const trace::SpanId id =
                rt.session->record(trace::SpanKind::kHook, trace::Unit::kCpu,
                                   phase_label(alg.name(), "pre"), clock, t, a, run);
            detail::annotate_wall(rt, id, w0);
        }
        rep.cpu_busy += t;
        clock += t;
        levels.push_back({std::move(root), {}});
    }

    // ---- boundary ship-in (kGpu only; kBasic pays residency switches)
    if (mode == IrregularMode::kGpu && include_transfers) {
        const sim::Ticks x = hw.link.transfer_time(n);
        detail::trace_transfer(rt.shifted(clock), alg.name(), "xfer-in", n, n * sizeof(T), x);
        rep.transfer += x;
        clock += x;
        on_device = true;
    }

    // ---- expand sweep
    if (opts.functional) {
        const trace::SpanId expand =
            detail::open_phase(opts, run, alg.name(), "expand", trace::Unit::kHost, clock);
        std::uint64_t depth = 0;
        while (true) {
            HPU_CHECK(depth < alg.max_levels(n),
                      "irregular expansion exceeded max_levels — runaway divide_task?");
            const std::uint64_t width = levels[depth].list.width();
            rep.tasks_spawned += width;
            std::vector<std::vector<TaskDesc>> kids(width);
            run_level_functional(levels[depth].list, depth, "divide", /*combine=*/false,
                                 expand, [&](std::uint64_t j, sim::OpCounter& ops) {
                                     alg.divide_task(data, levels[depth].list.tasks[j], depth,
                                                     kids[j], ops);
                                 });
            std::vector<std::uint64_t>& off = levels[depth].child_off;
            off.assign(width + 1, 0);
            for (std::uint64_t j = 0; j < width; ++j) off[j + 1] = off[j] + kids[j].size();
            TaskList next;
            next.tasks.reserve(off[width]);
            for (const std::vector<TaskDesc>& kv : kids) {
                next.tasks.insert(next.tasks.end(), kv.begin(), kv.end());
            }
            if (next.empty()) break;
            levels.push_back({std::move(next), {}});
            ++depth;
        }
        if (opts.trace != nullptr && expand != trace::kNoSpan) opts.trace->close(expand, clock);
    } else {
        const std::vector<std::uint64_t> widths = alg.analytic_widths(n);
        HPU_CHECK(!widths.empty(), "analytic_widths must describe at least one level");
        const trace::SpanId expand =
            detail::open_phase(opts, run, alg.name(), "expand", trace::Unit::kHost, clock);
        for (std::uint64_t i = 0; i < widths.size(); ++i) {
            rep.tasks_spawned += widths[i];
            run_level_analytic(widths[i], i, expand);
        }
        if (opts.trace != nullptr && expand != trace::kNoSpan) opts.trace->close(expand, clock);

        if (alg.has_combine()) {
            const trace::SpanId comb = detail::open_phase(opts, run, alg.name(), "combine",
                                                          trace::Unit::kHost, clock);
            for (std::uint64_t i = widths.size(); i-- > 0;) run_level_analytic(widths[i], i, comb);
            if (opts.trace != nullptr && comb != trace::kNoSpan) opts.trace->close(comb, clock);
        }
    }

    // ---- combine sweep (functional)
    if (opts.functional && alg.has_combine() && !levels.empty()) {
        const trace::SpanId comb =
            detail::open_phase(opts, run, alg.name(), "combine", trace::Unit::kHost, clock);
        for (std::uint64_t i = levels.size(); i-- > 0;) {
            const TaskList& list = levels[i].list;
            const std::vector<std::uint64_t>& off = levels[i].child_off;
            const std::vector<TaskDesc>* next =
                (i + 1 < levels.size()) ? &levels[i + 1].list.tasks : nullptr;
            run_level_functional(list, i, "combine", /*combine=*/true, comb,
                                 [&](std::uint64_t j, sim::OpCounter& ops) {
                                     std::span<const TaskDesc> ch;
                                     if (next != nullptr && off[j + 1] > off[j]) {
                                         ch = std::span<const TaskDesc>(
                                             next->data() + off[j], off[j + 1] - off[j]);
                                     }
                                     alg.combine_task(data, list.tasks[j], i, ch, ops);
                                 });
        }
        if (opts.trace != nullptr && comb != trace::kNoSpan) opts.trace->close(comb, clock);
    }

    // ---- boundary ship-out (the array must end host-resident)
    if (on_device && include_transfers) {
        const sim::Ticks x = hw.link.transfer_time(n);
        detail::trace_transfer(rt.shifted(clock), alg.name(), "xfer-out", n, n * sizeof(T), x);
        rep.transfer += x;
        clock += x;
        on_device = false;
    }

    // ---- finalize (functional host wrap-up)
    if (opts.functional) {
        const std::uint64_t w0 = rt.wall_start();
        sim::OpCounter fin;
        alg.finalize(data, fin);
        const sim::Ticks t = static_cast<sim::Ticks>(fin.cpu_ops()) /
                             static_cast<double>(cpu.params().p);
        if (rt.on() && t > 0.0) {
            trace::SpanAttrs a;
            a.ops = static_cast<double>(fin.cpu_ops());
            a.work = a.ops;
            const trace::SpanId id =
                rt.session->record(trace::SpanKind::kHook, trace::Unit::kCpu,
                                   phase_label(alg.name(), "finalize"), clock, t, a, run);
            detail::annotate_wall(rt, id, w0);
        }
        rep.cpu_busy += t;
        clock += t;
    }

    if (hybrid && total_est_work > 0.0) rep.alpha_effective = cpu_est_work / total_est_work;
    // A pipelined schedule that never shipped a GPU part degenerated to the
    // advanced hybrid — chunks reports 1, not 0 (0 marks non-pipelined
    // executors, matching the regular path's convention).
    if (mode == IrregularMode::kPipelined) {
        rep.chunks = std::max<std::uint64_t>(rep.chunks, 1);
    }
    rep.total = clock;
    detail::close_run(opts, run, rep.total);
    return rep;
}

}  // namespace hpu::core
