// The two hybrid schedulers of §5.
//
// Basic (§5.1): each level runs entirely on the faster unit. Deep levels
// (many small tasks) go to the GPU, top levels (few large tasks) to the
// CPU; the single handoff sits at level i* = log_a(p/γ). One unit is always
// idle — the cost this strategy pays for its single round trip.
//
// Advanced (§5.2): below a split level the array is partitioned — a
// fraction α to the CPU, 1−α to the GPU — and both units climb their
// subtrees concurrently. The GPU stops at transfer level y and ships its
// runs back (the second of exactly two transfers); the CPU then finishes
// the GPU slice's remaining levels and the shared top of the tree.
#pragma once

#include <algorithm>
#include <cmath>
#include <optional>
#include <cstdint>
#include <span>

#include "core/executors.hpp"
#include "model/basic.hpp"
#include "util/math.hpp"

namespace hpu::core {

/// Knobs of the advanced scheduler beyond (α, y).
struct AdvancedOptions {
    /// Task count of the split level (the paper's Alg. 8 `threshold`): the
    /// array is divided between the units where the tree has this many
    /// subproblems. Larger values give finer α resolution but a later
    /// split. 0 = auto: max(4·p, 64) clamped to the tree.
    std::uint64_t split_tasks = 0;
    ExecOptions exec;
};

namespace detail {

/// Integer levels of the whole tree plus common sizes for hybrid runs.
template <typename T>
struct TreeShape {
    std::uint64_t L = 0;       ///< internal levels
    std::uint64_t n = 0;       ///< total elements
    std::uint64_t a = 2;

    std::uint64_t tasks_at(std::uint64_t level) const {
        return util::ipow(a, static_cast<std::uint32_t>(level));
    }
    std::uint64_t task_size_at(std::uint64_t level) const { return n / tasks_at(level); }
};

template <typename T>
TreeShape<T> shape_of(const LevelAlgorithm<T>& alg, std::uint64_t n) {
    TreeShape<T> s;
    s.L = level_count(alg, n);
    s.n = n;
    s.a = alg.a();
    return s;
}

/// Runs levels [from_deep, to_shallow] (inclusive, from_deep >= to_shallow)
/// of a region on the CPU; returns the summed level times.
template <typename T>
sim::Ticks cpu_levels(sim::CpuUnit& cpu, const LevelAlgorithm<T>& alg, std::span<T> region,
                      std::uint64_t n_total, std::uint64_t from_deep, std::uint64_t to_shallow,
                      const ExecOptions& opts, std::uint64_t* levels_done = nullptr,
                      analysis::AnalysisReport* report = nullptr) {
    sim::Ticks t = 0.0;
    for (std::uint64_t i = from_deep + 1; i-- > to_shallow;) {
        const std::uint64_t task_size =
            n_total / util::ipow(alg.a(), static_cast<std::uint32_t>(i));
        const std::uint64_t tasks = static_cast<std::uint64_t>(region.size()) / task_size;
        if (tasks == 0) continue;
        if (opts.functional) {
            t += functional_cpu_level(cpu, alg, region, tasks, opts, report);
        } else {
            const auto rec = alg.recurrence();
            const double ops =
                rec.task_cost(static_cast<double>(n_total), static_cast<double>(i));
            t += cpu.uniform_level_time(tasks, ops, alg.level_working_set_bytes(n_total));
        }
        if (levels_done != nullptr) ++*levels_done;
    }
    return t;
}

}  // namespace detail

/// Basic hybrid scheduler (§5.1). Levels at or below the crossover run on
/// the device; one transfer each way.
template <typename T>
ExecReport run_basic_hybrid(sim::Hpu& hpu, const LevelAlgorithm<T>& alg, std::span<T> data,
                            const ExecOptions& opts = {}) {
    const auto shape = detail::shape_of(alg, data.size());
    alg.prepare(data.size());
    const auto& hw = hpu.params();
    ExecReport rep;
    rep.cpu_busy += detail::host_pre_pass(alg, data, hw.cpu.p);

    const auto pred = model::predict_basic(hw, alg.recurrence(), static_cast<double>(data.size()));
    if (pred.cpu_only) return run_multicore(hpu.cpu(), alg, data, opts);

    // First GPU level: the shallowest level the device wins.
    const std::uint64_t gpu_top = std::min<std::uint64_t>(
        shape.L, static_cast<std::uint64_t>(std::ceil(std::max(0.0, pred.crossover_level))));

    sim::Device& dev = hpu.gpu();
    analysis::AnalysisReport* val = detail::analysis_sink(opts, rep);
    sim::Ticks clock = 0.0;

    // --- Device phase: leaves + levels L-1 .. gpu_top over the whole array.
    std::optional<sim::DeviceBuffer<T>> buf;
    std::vector<sim::BufferEvent> buf_events;
    std::span<T> dspan = data;
    if (opts.functional) {
        buf.emplace(std::vector<T>(data.begin(), data.end()));
        if (val != nullptr) buf->set_trace(&buf_events);
        buf->copy_to_device();
        dspan = buf->device();
    }
    rep.transfer += hpu.transfer_time(data.size());
    clock = hpu.timeline().record(sim::EventKind::kTransferToGpu, alg.name(), clock,
                                  hpu.transfer_time(data.size()));

    if (opts.functional) {
        sim::OpCounter hook;
        alg.before_gpu_levels(dspan, shape.tasks_at(shape.L - 1), hook);
        rep.gpu_busy += detail::hook_time(dev, hook);
    } else if (gpu_top < shape.L) {
        // Hook costs apply only when device levels actually execute.
        rep.gpu_busy += detail::hook_time(dev, alg.analytic_gpu_hook_ops(data.size()));
    }

    rep.gpu_busy += detail::gpu_leaves(dev, alg, dspan, opts.functional, val);
    for (std::uint64_t i = shape.L; i-- > gpu_top;) {
        const std::uint64_t tasks = shape.tasks_at(i);
        if (opts.functional) {
            rep.gpu_busy += detail::functional_gpu_level(dev, alg, dspan, tasks, val);
            sim::OpCounter flip;
            alg.after_gpu_level(dspan, tasks, flip);
            rep.gpu_busy += detail::hook_time(dev, flip);
        } else {
            rep.gpu_busy += detail::analytic_gpu_level(dev, alg, data.size(), tasks, i);
        }
        ++rep.levels_gpu;
    }
    if (opts.functional) {
        sim::OpCounter post;
        alg.after_gpu_levels(dspan, shape.tasks_at(gpu_top), post);
        rep.gpu_busy += detail::hook_time(dev, post);
    }
    clock = hpu.timeline().record(sim::EventKind::kGpuKernel, alg.name(), clock, rep.gpu_busy);

    rep.transfer += hpu.transfer_time(data.size());
    clock = hpu.timeline().record(sim::EventKind::kTransferToCpu, alg.name(), clock,
                                  hpu.transfer_time(data.size()));
    if (opts.functional) {
        buf->copy_to_host();
        std::copy(buf->host_view().begin(), buf->host_view().end(), data.begin());
        if (val != nullptr) {
            analysis::lint_residency(buf_events, alg.name() + "/device-buffer", *val);
        }
    }

    // --- CPU phase: remaining top levels.
    if (gpu_top > 0) {
        rep.cpu_busy += detail::cpu_levels(hpu.cpu(), alg, data, data.size(), gpu_top - 1,
                                           std::uint64_t{0}, opts, &rep.levels_cpu, val);
        clock = hpu.timeline().record(sim::EventKind::kCpuLevel, alg.name(), clock, rep.cpu_busy);
    }
    rep.total = rep.gpu_busy + rep.cpu_busy + rep.transfer;
    return rep;
}

/// Advanced hybrid scheduler (§5.2) at explicit (α, transfer level y).
/// y counts global levels from the root, as in the paper's figures; the
/// device executes levels L-1 .. y of its slice.
template <typename T>
ExecReport run_advanced_hybrid(sim::Hpu& hpu, const LevelAlgorithm<T>& alg, std::span<T> data,
                               double alpha, std::uint64_t y,
                               const AdvancedOptions& adv = {}) {
    HPU_CHECK(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    const auto shape = detail::shape_of(alg, data.size());
    alg.prepare(data.size());
    HPU_CHECK(y >= 1 && y <= shape.L, "transfer level y must be in [1, L]");
    const ExecOptions& opts = adv.exec;
    sim::Device& dev = hpu.gpu();
    ExecReport rep;
    analysis::AnalysisReport* val = detail::analysis_sink(opts, rep);
    const sim::Ticks pre = detail::host_pre_pass(alg, data, hpu.params().cpu.p);

    // --- Split level: tasks tile the array; the CPU takes the first
    // cpu_tasks slices, the device the rest.
    std::uint64_t split_tasks = adv.split_tasks;
    if (split_tasks == 0) {
        split_tasks = std::max<std::uint64_t>(4 * hpu.params().cpu.p, 64);
    }
    std::uint64_t s = 0;
    while (s < shape.L && shape.tasks_at(s) < split_tasks) ++s;
    s = std::min<std::uint64_t>(s, y);  // split cannot sit below the transfer level
    const std::uint64_t S = shape.tasks_at(s);
    const std::uint64_t cpu_tasks = std::clamp<std::uint64_t>(
        static_cast<std::uint64_t>(std::llround(alpha * static_cast<double>(S))), 1, S - 1);
    const std::uint64_t split_elem = cpu_tasks * shape.task_size_at(s);
    rep.alpha_effective = static_cast<double>(cpu_tasks) / static_cast<double>(S);

    std::span<T> cpu_region = data.subspan(0, split_elem);
    std::span<T> gpu_region = data.subspan(split_elem);

    // --- GPU thread: ship slice, leaves + levels L-1..y, ship back.
    sim::Ticks gpu_clock = 0.0;
    std::optional<sim::DeviceBuffer<T>> buf;
    std::vector<sim::BufferEvent> buf_events;
    std::span<T> dspan = gpu_region;
    if (opts.functional) {
        buf.emplace(std::vector<T>(gpu_region.begin(), gpu_region.end()));
        if (val != nullptr) buf->set_trace(&buf_events);
        buf->copy_to_device();
        dspan = buf->device();
    }
    const sim::Ticks x1 = hpu.transfer_time(gpu_region.size());
    rep.transfer += x1;
    gpu_clock = hpu.timeline().record(sim::EventKind::kTransferToGpu, alg.name(), gpu_clock, x1);

    sim::Ticks gpu_kernels = 0.0;
    if (opts.functional) {
        sim::OpCounter hook;
        alg.before_gpu_levels(dspan, gpu_region.size() / shape.task_size_at(shape.L - 1),
                              hook);
        gpu_kernels += detail::hook_time(dev, hook);
    } else if (y < shape.L) {
        // Hook costs apply only when device levels actually execute.
        gpu_kernels += detail::hook_time(dev, alg.analytic_gpu_hook_ops(gpu_region.size()));
    }
    gpu_kernels += detail::gpu_leaves(dev, alg, dspan, opts.functional, val);
    for (std::uint64_t i = shape.L; i-- > y;) {
        const std::uint64_t tasks = gpu_region.size() / shape.task_size_at(i);
        if (tasks == 0) continue;
        if (opts.functional) {
            gpu_kernels += detail::functional_gpu_level(dev, alg, dspan, tasks, val);
            sim::OpCounter flip;
            alg.after_gpu_level(dspan, tasks, flip);
            gpu_kernels += detail::hook_time(dev, flip);
        } else {
            gpu_kernels += detail::analytic_gpu_level(dev, alg, data.size(), tasks, i);
        }
        ++rep.levels_gpu;
    }
    if (opts.functional) {
        sim::OpCounter post;
        alg.after_gpu_levels(dspan, gpu_region.size() / shape.task_size_at(y), post);
        gpu_kernels += detail::hook_time(dev, post);
    }
    rep.gpu_busy = gpu_kernels;
    gpu_clock = hpu.timeline().record(sim::EventKind::kGpuKernel, alg.name(), gpu_clock,
                                      gpu_kernels);
    const sim::Ticks x2 = hpu.transfer_time(gpu_region.size());
    rep.transfer += x2;
    gpu_clock = hpu.timeline().record(sim::EventKind::kTransferToCpu, alg.name(), gpu_clock, x2);
    if (opts.functional) {
        buf->copy_to_host();
        std::copy(buf->host_view().begin(), buf->host_view().end(), gpu_region.begin());
        if (val != nullptr) {
            analysis::lint_residency(buf_events, alg.name() + "/device-buffer", *val);
        }
    }

    // --- CPU thread (concurrent): leaves + levels L-1..s of its slice.
    sim::Ticks cpu_clock = detail::cpu_leaves(hpu.cpu(), alg, cpu_region, opts.functional, val);
    cpu_clock += detail::cpu_levels(hpu.cpu(), alg, cpu_region, data.size(), shape.L - 1, s,
                                    opts, &rep.levels_cpu, val);
    rep.cpu_busy = cpu_clock;
    hpu.timeline().record(sim::EventKind::kCpuLevel, alg.name() + "/parallel", 0.0, cpu_clock);

    // --- Sync point: both threads joined, GPU slice back on the host.
    const sim::Ticks sync = std::max(gpu_clock, cpu_clock);

    // --- Finish phase on the CPU: GPU slice levels y-1..s, then the shared
    // top levels s-1..0 across the whole array.
    sim::Ticks fin = 0.0;
    if (y > s) {
        fin += detail::cpu_levels(hpu.cpu(), alg, gpu_region, data.size(), y - 1, s, opts,
                                  &rep.levels_cpu, val);
    }
    if (s > 0) {
        fin += detail::cpu_levels(hpu.cpu(), alg, data, data.size(), s - 1, std::uint64_t{0},
                                  opts, &rep.levels_cpu, val);
    }
    rep.finish = fin;
    hpu.timeline().record(sim::EventKind::kCpuLevel, alg.name() + "/finish", sync, fin);
    rep.total = pre + sync + fin;
    return rep;
}

}  // namespace hpu::core
