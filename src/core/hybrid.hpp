// The two hybrid schedulers of §5.
//
// Basic (§5.1): each level runs entirely on the faster unit. Deep levels
// (many small tasks) go to the GPU, top levels (few large tasks) to the
// CPU; the single handoff sits at level i* = log_a(p/γ). One unit is always
// idle — the cost this strategy pays for its single round trip.
//
// Advanced (§5.2): below a split level the array is partitioned — a
// fraction α to the CPU, 1−α to the GPU — and both units climb their
// subtrees concurrently. The GPU stops at transfer level y and ships its
// runs back (the second of exactly two transfers); the CPU then finishes
// the GPU slice's remaining levels and the shared top of the tree.
//
// Both schedulers log flat phase events into the Hpu timeline and, when
// ExecOptions::trace is set, a hierarchical span tree (run → phase →
// level → wave) into the given trace session. Timeline events and trace
// phase spans share the same phase_label strings so the two views join.
//
// Both inherit host-parallel functional execution from the Hpu's units:
// if the Hpu was built with a util::ThreadPool, every CPU level and GPU
// wave runs pool-parallel, while the virtual schedule, traces, and
// analysis stay bit-identical to the inline run (DESIGN.md §10).
#pragma once

#include <algorithm>
#include <cmath>
#include <optional>
#include <cstdint>
#include <span>

#include "core/executors.hpp"
#include "model/basic.hpp"
#include "util/math.hpp"

namespace hpu::core {

/// Knobs of the advanced scheduler beyond (α, y).
struct AdvancedOptions {
    /// Task count of the split level (the paper's Alg. 8 `threshold`): the
    /// array is divided between the units where the tree has this many
    /// subproblems. Larger values give finer α resolution but a later
    /// split. 0 = auto: max(4·p, 64) clamped to the tree.
    std::uint64_t split_tasks = 0;
    ExecOptions exec;
};

namespace detail {

/// Integer levels of the whole tree plus common sizes for hybrid runs.
template <typename T>
struct TreeShape {
    std::uint64_t L = 0;       ///< internal levels
    std::uint64_t n = 0;       ///< total elements
    std::uint64_t a = 2;

    std::uint64_t tasks_at(std::uint64_t level) const {
        return util::ipow(a, static_cast<std::uint32_t>(level));
    }
    std::uint64_t task_size_at(std::uint64_t level) const { return n / tasks_at(level); }
};

template <typename T>
TreeShape<T> shape_of(const LevelAlgorithm<T>& alg, std::uint64_t n) {
    TreeShape<T> s;
    s.L = level_count(alg, n);
    s.n = n;
    s.a = alg.a();
    return s;
}

/// Runs levels [from_deep, to_shallow] (inclusive, from_deep >= to_shallow)
/// of a region on the CPU; returns the summed level times. `tc.at` is the
/// virtual tick the first level starts at.
template <typename T>
sim::Ticks cpu_levels(sim::CpuUnit& cpu, const LevelAlgorithm<T>& alg, std::span<T> region,
                      std::uint64_t n_total, std::uint64_t from_deep, std::uint64_t to_shallow,
                      const ExecOptions& opts, std::uint64_t* levels_done = nullptr,
                      const ValCtx& val = {}, const SpanCtx& tc = {}) {
    sim::Ticks t = 0.0;
    for (std::uint64_t i = from_deep + 1; i-- > to_shallow;) {
        const std::uint64_t task_size =
            n_total / util::ipow(alg.a(), static_cast<std::uint32_t>(i));
        const std::uint64_t tasks = static_cast<std::uint64_t>(region.size()) / task_size;
        if (tasks == 0) continue;
        const SpanCtx lt = tc.shifted(t, i);
        if (opts.functional) {
            t += functional_cpu_level(cpu, alg, region, tasks, opts, val, lt);
        } else {
            const auto rec = alg.recurrence();
            const double ops =
                rec.task_cost(static_cast<double>(n_total), static_cast<double>(i));
            const sim::Ticks lvl =
                cpu.uniform_level_time(tasks, ops, alg.level_working_set_bytes(n_total));
            if (lt.on()) {
                const double work = static_cast<double>(tasks) * ops;
                trace_analytic_level(lt, alg.name(), "cpu-level", trace::Unit::kCpu, tasks,
                                     work, work, lvl, trace::SpanKind::kLevel);
            }
            t += lvl;
        }
        if (levels_done != nullptr) ++*levels_done;
    }
    return t;
}

/// Records the host pre-pass hook span after the fact (the basic hybrid
/// prices the pre-pass before it knows whether it will fall back to the
/// multicore executor, so the span is recorded once that is decided).
inline void trace_pre_span(trace::TraceSession* session, trace::SpanId run,
                           const std::string& name, sim::Ticks pre, std::size_t p) {
    if (session == nullptr || pre <= 0.0) return;
    trace::SpanAttrs a;
    a.ops = pre * static_cast<double>(p);
    a.work = a.ops;
    session->record(trace::SpanKind::kHook, trace::Unit::kCpu, phase_label(name, "pre"), 0.0,
                    pre, a, run);
}

}  // namespace detail

/// Basic hybrid scheduler (§5.1). Levels at or below the crossover run on
/// the device; one transfer each way.
template <typename T>
ExecReport run_basic_hybrid(sim::Hpu& hpu, const LevelAlgorithm<T>& alg, std::span<T> data,
                            const ExecOptions& opts = {}) {
    if (const auto* irr = alg.as_irregular()) {
        return run_irregular(hpu.cpu(), &hpu.gpu(), hpu.params(), *irr, data,
                             IrregularMode::kBasic, opts, /*chunks=*/0,
                             /*include_transfers=*/true, "basic-hybrid");
    }
    const auto shape = detail::shape_of(alg, data.size());
    alg.prepare(data.size());
    detail::bind_merge_exec(alg, hpu.cpu().pool(), opts);
    const auto& hw = hpu.params();
    ExecReport rep;
    rep.trace = opts.trace;
    const sim::Ticks pre = detail::host_pre_pass(alg, data, hw.cpu.p);
    rep.cpu_busy += pre;

    const auto pred = model::predict_basic(hw, alg.recurrence(), static_cast<double>(data.size()));
    if (pred.cpu_only) return run_multicore(hpu.cpu(), alg, data, opts);

    // First GPU level: the shallowest level the device wins.
    const std::uint64_t gpu_top = std::min<std::uint64_t>(
        shape.L, static_cast<std::uint64_t>(std::ceil(std::max(0.0, pred.crossover_level))));

    sim::Device& dev = hpu.gpu();
    if (opts.verify) {
        verify::RunShape vshape;
        vshape.kind = verify::RunShape::Kind::kBasic;
        rep.verify = verify::verify_hybrid_run(alg, data.size(), hpu, vshape);
    }
    const detail::ValCtx val = detail::validation_ctx(opts, rep);
    sim::Ticks clock = 0.0;

    const trace::SpanId run = detail::open_run(opts, alg.name(), "basic-hybrid", data.size());
    detail::trace_pre_span(opts.trace, run, alg.name(), pre, hw.cpu.p);
    // Span clock: the timeline keeps its historical zero at the first
    // transfer; spans account the pre-pass explicitly, so they start at pre.
    const trace::SpanId gphase =
        detail::open_phase(opts, run, alg.name(), "gpu-phase", trace::Unit::kGpu, pre);
    const detail::SpanCtx gtc{opts.trace, gphase, pre, trace::SpanAttrs::kNoLevel,
                              opts.profile};
    sim::Ticks gcur = pre;

    // --- Device phase: leaves + levels L-1 .. gpu_top over the whole array.
    std::optional<sim::DeviceBuffer<T>> buf;
    std::vector<sim::BufferEvent> buf_events;
    std::span<T> dspan = data;
    const std::uint64_t xin_w0 = gtc.wall_start();
    if (opts.functional) {
        buf.emplace(std::vector<T>(data.begin(), data.end()));
        if (val.on()) buf->set_trace(&buf_events);
        buf->copy_to_device();
        dspan = buf->device();
    }
    rep.transfer += hpu.transfer_time(data.size());
    clock = hpu.timeline().record(sim::EventKind::kTransferToGpu,
                                  phase_label(alg.name(), "xfer-in"), clock,
                                  hpu.transfer_time(data.size()));
    detail::trace_transfer(gtc.shifted(gcur - pre), alg.name(), "xfer-in", data.size(),
                           data.size() * sizeof(T), hpu.transfer_time(data.size()), xin_w0);
    gcur += hpu.transfer_time(data.size());

    if (opts.functional) {
        const std::uint64_t hw0 = gtc.wall_start();
        sim::OpCounter hook;
        alg.before_gpu_levels(dspan, shape.tasks_at(shape.L - 1), hook);
        const sim::Ticks t = detail::traced_hook(dev, hook, alg.name(), "gpu-pre-hook",
                                                 gtc.shifted(gcur - pre), hw0);
        rep.gpu_busy += t;
        gcur += t;
    } else if (gpu_top < shape.L) {
        // Hook costs apply only when device levels actually execute.
        const sim::Ticks t = detail::traced_hook(dev, alg.analytic_gpu_hook_ops(data.size()),
                                                 alg.name(), "gpu-hooks",
                                                 gtc.shifted(gcur - pre));
        rep.gpu_busy += t;
        gcur += t;
    }

    {
        const sim::Ticks t = detail::gpu_leaves(dev, alg, dspan, opts.functional, val,
                                                gtc.shifted(gcur - pre));
        rep.gpu_busy += t;
        gcur += t;
    }
    for (std::uint64_t i = shape.L; i-- > gpu_top;) {
        const std::uint64_t tasks = shape.tasks_at(i);
        if (opts.functional) {
            sim::Ticks t = detail::functional_gpu_level(dev, alg, dspan, tasks, val,
                                                        gtc.shifted(gcur - pre, i));
            rep.gpu_busy += t;
            gcur += t;
            const std::uint64_t hw0 = gtc.wall_start();
            sim::OpCounter flip;
            alg.after_gpu_level(dspan, tasks, flip);
            t = detail::traced_hook(dev, flip, alg.name(), "gpu-level-hook",
                                    gtc.shifted(gcur - pre), hw0);
            rep.gpu_busy += t;
            gcur += t;
        } else {
            const sim::Ticks t = detail::analytic_gpu_level(dev, alg, data.size(), tasks, i,
                                                            gtc.shifted(gcur - pre, i));
            rep.gpu_busy += t;
            gcur += t;
        }
        ++rep.levels_gpu;
    }
    if (opts.functional) {
        const std::uint64_t hw0 = gtc.wall_start();
        sim::OpCounter post;
        alg.after_gpu_levels(dspan, shape.tasks_at(gpu_top), post);
        const sim::Ticks t = detail::traced_hook(dev, post, alg.name(), "gpu-post-hook",
                                                 gtc.shifted(gcur - pre), hw0);
        rep.gpu_busy += t;
        gcur += t;
    }
    clock = hpu.timeline().record(sim::EventKind::kGpuKernel,
                                  phase_label(alg.name(), "gpu-phase"), clock, rep.gpu_busy);

    rep.transfer += hpu.transfer_time(data.size());
    clock = hpu.timeline().record(sim::EventKind::kTransferToCpu,
                                  phase_label(alg.name(), "xfer-out"), clock,
                                  hpu.transfer_time(data.size()));
    const std::uint64_t xout_w0 = gtc.wall_start();
    if (opts.functional) buf->copy_to_host();
    detail::trace_transfer(gtc.shifted(gcur - pre), alg.name(), "xfer-out", data.size(),
                           data.size() * sizeof(T), hpu.transfer_time(data.size()), xout_w0);
    gcur += hpu.transfer_time(data.size());
    if (opts.trace != nullptr) opts.trace->close(gphase, gcur);
    if (opts.functional) {
        std::copy(buf->host_view().begin(), buf->host_view().end(), data.begin());
        if (val.on()) {
            analysis::lint_residency(buf_events, alg.name() + "/device-buffer", *val.report);
        }
    }

    // --- CPU phase: remaining top levels.
    if (gpu_top > 0) {
        const trace::SpanId cphase =
            detail::open_phase(opts, run, alg.name(), "cpu-levels", trace::Unit::kCpu, gcur);
        const sim::Ticks cpu_part = detail::cpu_levels(
            hpu.cpu(), alg, data, data.size(), gpu_top - 1, std::uint64_t{0}, opts,
            &rep.levels_cpu, val,
            detail::SpanCtx{opts.trace, cphase, gcur, trace::SpanAttrs::kNoLevel,
                            opts.profile});
        rep.cpu_busy += cpu_part;
        clock = hpu.timeline().record(sim::EventKind::kCpuLevel,
                                      phase_label(alg.name(), "cpu-levels"), clock, cpu_part);
        if (opts.trace != nullptr) opts.trace->close(cphase, gcur + cpu_part);
    }
    rep.total = rep.gpu_busy + rep.cpu_busy + rep.transfer;
    detail::close_run(opts, run, rep.total);
    detail::observe_run(opts, rep, run, hpu.params(), alg, hpu.cpu().pool());
    return rep;
}

/// Advanced hybrid scheduler (§5.2) at explicit (α, transfer level y).
/// y counts global levels from the root, as in the paper's figures; the
/// device executes levels L-1 .. y of its slice.
template <typename T>
ExecReport run_advanced_hybrid(sim::Hpu& hpu, const LevelAlgorithm<T>& alg, std::span<T> data,
                               double alpha, std::uint64_t y,
                               const AdvancedOptions& adv = {}) {
    // Dynamic trees re-balance α per level from the observed task list, so
    // the caller's (α, y) plan — derived from the regular a^i shape — does
    // not apply and is ignored (ExecReport::alpha_effective reports what the
    // observed split actually chose).
    if (const auto* irr = alg.as_irregular()) {
        return run_irregular(hpu.cpu(), &hpu.gpu(), hpu.params(), *irr, data,
                             IrregularMode::kAdvanced, adv.exec, /*chunks=*/0,
                             /*include_transfers=*/true, "advanced-hybrid");
    }
    HPU_CHECK(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    const auto shape = detail::shape_of(alg, data.size());
    alg.prepare(data.size());
    const ExecOptions& opts = adv.exec;
    detail::bind_merge_exec(alg, hpu.cpu().pool(), opts);
    HPU_CHECK(y >= 1 && y <= shape.L, "transfer level y must be in [1, L]");
    sim::Device& dev = hpu.gpu();
    ExecReport rep;
    rep.trace = opts.trace;
    if (opts.verify) {
        verify::RunShape vshape;
        vshape.kind = verify::RunShape::Kind::kAdvanced;
        vshape.alpha = alpha;
        vshape.y = y;
        vshape.split_tasks = adv.split_tasks;
        rep.verify = verify::verify_hybrid_run(alg, data.size(), hpu, vshape);
    }
    const detail::ValCtx val = detail::validation_ctx(opts, rep);
    const trace::SpanId run = detail::open_run(opts, alg.name(), "advanced-hybrid",
                                               data.size());
    const sim::Ticks pre = detail::host_pre_pass(
        alg, data, hpu.params().cpu.p,
        detail::SpanCtx{opts.trace, run, 0.0, trace::SpanAttrs::kNoLevel, opts.profile});

    // --- Split level: tasks tile the array; the CPU takes the first
    // cpu_tasks slices, the device the rest. The arithmetic lives in
    // verify::choose_split so the static verifier checks the same plan.
    const verify::SplitChoice split = verify::choose_split(
        shape.L, data.size(), shape.a, alpha, y, adv.split_tasks, hpu.params().cpu.p);
    const std::uint64_t s = split.s;
    const std::uint64_t split_elem = split.split_elem;
    rep.alpha_effective = split.alpha_effective;

    std::span<T> cpu_region = data.subspan(0, split_elem);
    std::span<T> gpu_region = data.subspan(split_elem);

    // --- GPU thread: ship slice, leaves + levels L-1..y, ship back.
    // Timeline clocks start at 0 (historical); spans start at pre, where
    // both concurrent phases really begin.
    sim::Ticks gpu_clock = 0.0;
    const trace::SpanId gphase =
        detail::open_phase(opts, run, alg.name(), "gpu-phase", trace::Unit::kGpu, pre);
    const detail::SpanCtx gtc{opts.trace, gphase, pre, trace::SpanAttrs::kNoLevel,
                              opts.profile};
    std::optional<sim::DeviceBuffer<T>> buf;
    std::vector<sim::BufferEvent> buf_events;
    std::span<T> dspan = gpu_region;
    const std::uint64_t xin_w0 = gtc.wall_start();
    if (opts.functional) {
        buf.emplace(std::vector<T>(gpu_region.begin(), gpu_region.end()));
        if (val.on()) buf->set_trace(&buf_events);
        buf->copy_to_device();
        dspan = buf->device();
    }
    const sim::Ticks x1 = hpu.transfer_time(gpu_region.size());
    rep.transfer += x1;
    gpu_clock = hpu.timeline().record(sim::EventKind::kTransferToGpu,
                                      phase_label(alg.name(), "xfer-in"), gpu_clock, x1);
    detail::trace_transfer(gtc, alg.name(), "xfer-in", gpu_region.size(),
                           gpu_region.size() * sizeof(T), x1, xin_w0);

    sim::Ticks gpu_kernels = 0.0;
    if (opts.functional) {
        const std::uint64_t hw0 = gtc.wall_start();
        sim::OpCounter hook;
        alg.before_gpu_levels(dspan, gpu_region.size() / shape.task_size_at(shape.L - 1),
                              hook);
        gpu_kernels += detail::traced_hook(dev, hook, alg.name(), "gpu-pre-hook",
                                           gtc.shifted(x1 + gpu_kernels), hw0);
    } else if (y < shape.L) {
        // Hook costs apply only when device levels actually execute.
        gpu_kernels +=
            detail::traced_hook(dev, alg.analytic_gpu_hook_ops(gpu_region.size()), alg.name(),
                                "gpu-hooks", gtc.shifted(x1 + gpu_kernels));
    }
    gpu_kernels += detail::gpu_leaves(dev, alg, dspan, opts.functional, val,
                                      gtc.shifted(x1 + gpu_kernels));
    for (std::uint64_t i = shape.L; i-- > y;) {
        const std::uint64_t tasks = gpu_region.size() / shape.task_size_at(i);
        if (tasks == 0) continue;
        if (opts.functional) {
            gpu_kernels += detail::functional_gpu_level(dev, alg, dspan, tasks, val,
                                                        gtc.shifted(x1 + gpu_kernels, i));
            const std::uint64_t hw0 = gtc.wall_start();
            sim::OpCounter flip;
            alg.after_gpu_level(dspan, tasks, flip);
            gpu_kernels += detail::traced_hook(dev, flip, alg.name(), "gpu-level-hook",
                                               gtc.shifted(x1 + gpu_kernels), hw0);
        } else {
            gpu_kernels += detail::analytic_gpu_level(dev, alg, data.size(), tasks, i,
                                                      gtc.shifted(x1 + gpu_kernels, i));
        }
        ++rep.levels_gpu;
    }
    if (opts.functional) {
        const std::uint64_t hw0 = gtc.wall_start();
        sim::OpCounter post;
        alg.after_gpu_levels(dspan, gpu_region.size() / shape.task_size_at(y), post);
        gpu_kernels += detail::traced_hook(dev, post, alg.name(), "gpu-post-hook",
                                           gtc.shifted(x1 + gpu_kernels), hw0);
    }
    rep.gpu_busy = gpu_kernels;
    gpu_clock = hpu.timeline().record(sim::EventKind::kGpuKernel,
                                      phase_label(alg.name(), "gpu-phase"), gpu_clock,
                                      gpu_kernels);
    const sim::Ticks x2 = hpu.transfer_time(gpu_region.size());
    rep.transfer += x2;
    gpu_clock = hpu.timeline().record(sim::EventKind::kTransferToCpu,
                                      phase_label(alg.name(), "xfer-out"), gpu_clock, x2);
    const std::uint64_t xout_w0 = gtc.wall_start();
    if (opts.functional) buf->copy_to_host();
    detail::trace_transfer(gtc.shifted(x1 + gpu_kernels), alg.name(), "xfer-out",
                           gpu_region.size(), gpu_region.size() * sizeof(T), x2, xout_w0);
    if (opts.trace != nullptr) opts.trace->close(gphase, pre + gpu_clock);
    if (opts.functional) {
        std::copy(buf->host_view().begin(), buf->host_view().end(), gpu_region.begin());
        if (val.on()) {
            analysis::lint_residency(buf_events, alg.name() + "/device-buffer", *val.report);
        }
    }

    // --- CPU thread (concurrent): leaves + levels L-1..s of its slice.
    const trace::SpanId cphase =
        detail::open_phase(opts, run, alg.name(), "cpu-parallel", trace::Unit::kCpu, pre);
    const detail::SpanCtx ctc{opts.trace, cphase, pre, trace::SpanAttrs::kNoLevel,
                              opts.profile};
    sim::Ticks cpu_clock = detail::cpu_leaves(hpu.cpu(), alg, cpu_region, opts.functional,
                                              val, ctc);
    cpu_clock += detail::cpu_levels(hpu.cpu(), alg, cpu_region, data.size(), shape.L - 1, s,
                                    opts, &rep.levels_cpu, val, ctc.shifted(cpu_clock));
    rep.cpu_busy = cpu_clock;
    hpu.timeline().record(sim::EventKind::kCpuLevel, phase_label(alg.name(), "cpu-parallel"),
                          0.0, cpu_clock);
    if (opts.trace != nullptr) opts.trace->close(cphase, pre + cpu_clock);

    // --- Sync point: both threads joined, GPU slice back on the host.
    const sim::Ticks sync = std::max(gpu_clock, cpu_clock);

    // --- Finish phase on the CPU: GPU slice levels y-1..s, then the shared
    // top levels s-1..0 across the whole array.
    const trace::SpanId fphase =
        detail::open_phase(opts, run, alg.name(), "finish", trace::Unit::kCpu, pre + sync);
    const detail::SpanCtx ftc{opts.trace, fphase, pre + sync, trace::SpanAttrs::kNoLevel,
                              opts.profile};
    sim::Ticks fin = 0.0;
    if (y > s) {
        fin += detail::cpu_levels(hpu.cpu(), alg, gpu_region, data.size(), y - 1, s, opts,
                                  &rep.levels_cpu, val, ftc);
    }
    if (s > 0) {
        fin += detail::cpu_levels(hpu.cpu(), alg, data, data.size(), s - 1, std::uint64_t{0},
                                  opts, &rep.levels_cpu, val, ftc.shifted(fin));
    }
    rep.finish = fin;
    hpu.timeline().record(sim::EventKind::kCpuLevel, phase_label(alg.name(), "finish"), sync,
                          fin);
    if (opts.trace != nullptr) opts.trace->close(fphase, pre + sync + fin);
    rep.total = pre + sync + fin;
    detail::close_run(opts, run, rep.total);
    detail::observe_run(opts, rep, run, hpu.params(), alg, hpu.cpu().pool());
    return rep;
}

}  // namespace hpu::core
