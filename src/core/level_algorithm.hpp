// Layer 2 of the framework: *regular* in-place divide-and-conquer over a
// contiguous array — the class the paper's hybrid schedulers target (§5:
// "regular DC algorithms", all root-to-leaf paths of equal length, division
// implicit in offsets). The case study (mergesort, §6) and the running
// examples (sum, §4.3) fit this shape.
//
// A LevelAlgorithm describes one recursion-tree level at a time. Level i
// (0 = root) has a^i tasks over subproblems of size n/b^i; task j of a
// level touches a statically known slice of the array (for a = b:
// [j·(n/count), (j+1)·(n/count))). The SAME task body runs on a CPU core or
// as a GPU work-item (§4.2's translation); the unit only changes who
// executes it and how its op charges are priced.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/task_list.hpp"
#include "model/recurrence.hpp"
#include "sim/op_counter.hpp"
#include "sim/params.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/merge_path.hpp"
#include "verify/footprint.hpp"

namespace hpu::core {

template <typename T>
class IrregularLevelAlgorithm;

template <typename T>
class LevelAlgorithm {
public:
    virtual ~LevelAlgorithm() = default;

    virtual std::string name() const = 0;

    /// Branching factor a and size divisor b of T(n) = a·T(n/b) + f(n).
    virtual std::uint64_t a() const = 0;
    virtual std::uint64_t b() const = 0;

    /// Cost descriptor used by the model-side predictions. Must agree with
    /// the op charges of run_task (tests cross-validate this).
    virtual model::Recurrence recurrence() const = 0;

    /// Subproblem size at which recursion bottoms out. 1 for the classic
    /// algorithms; the §7 blocked variants stop at larger blocks that
    /// run_leaf solves sequentially.
    virtual std::uint64_t base_size() const { return 1; }

    /// True if `n` is an admissible input size (typically: base_size times
    /// a power of b).
    virtual bool admissible(std::uint64_t n) const {
        std::uint64_t m = n;
        while (m > base_size() && m % b() == 0) m /= b();
        return m == base_size();
    }

    /// Host-side pre-pass over the input before any level runs (e.g., the
    /// FFT's bit-reversal permutation). Runs once, on the host, before the
    /// hybrid split; charge its work to `ops` (executors price it as
    /// p-way parallel CPU work).
    virtual void before_run(std::span<T> /*data*/, sim::OpCounter& /*ops*/) const {}

    /// Run combine/divide task `j` (0-based) of the level that has `count`
    /// tasks over `data`. Charges its work to `ops`. `pattern` tells the
    /// task how its memory accesses will be priced (the §6.3 permuted
    /// variant switches this to kCoalesced on the device).
    virtual void run_task(std::span<T> data, std::uint64_t count, std::uint64_t j,
                          sim::OpCounter& ops) const = 0;

    /// Leaf work for base case `j` of `leaf_count` base cases. Default:
    /// none beyond a unit charge (size-1 subproblems are trivially solved).
    virtual void run_leaf(std::span<T> /*data*/, std::uint64_t /*leaf_count*/,
                          std::uint64_t /*j*/, sim::OpCounter& ops) const {
        ops.charge_compute(1);
    }

    /// Whether leaves carry real work (drives whether executors run a leaf
    /// sweep at the bottom). Default false: leaf charges are modelled but
    /// functionally a no-op.
    virtual bool has_leaf_work() const { return false; }

    /// Device-side task body. Defaults to the CPU body — the §4.2 generic
    /// translation. The §6.3 coalesced mergesort overrides this with the
    /// permuted-layout walk (and the hooks below with the permutations)
    /// while the CPU body stays untouched, exactly as the paper keeps the
    /// optimization "transparent to the CPU implementation".
    virtual void run_device_task(std::span<T> data, std::uint64_t count, std::uint64_t j,
                                 sim::OpCounter& ops) const {
        run_task(data, count, j, ops);
    }

    /// Device-side hook before a run of consecutive GPU levels (e.g., the
    /// §6.3 coalescing permutation). `count` is the task count of the
    /// deepest level about to execute. Charged to `ops` as device work.
    virtual void before_gpu_levels(std::span<T> /*device_data*/, std::uint64_t /*count*/,
                                   sim::OpCounter& /*ops*/) const {}

    /// Device-side hook after EACH GPU level's kernel (e.g., flipping a
    /// ping-pong buffer). `count` is the task count of the level just run.
    virtual void after_gpu_level(std::span<T> /*device_data*/, std::uint64_t /*count*/,
                                 sim::OpCounter& /*ops*/) const {}

    /// Host-side preparation before any executor run (e.g., sizing scratch
    /// space). Executors call this once with the full input size.
    virtual void prepare(std::uint64_t /*n*/) const {}

    /// Binds the run's merge-kernel context (DESIGN.md §15): the functional
    /// pool plus whether ExecOptions enabled the Merge Path kernel.
    /// Executors call this right after prepare(). Strictly wall-side: an
    /// implementation may use the binding to run its merges faster, but
    /// its charges, logs, and output bytes must be bit-identical with any
    /// binding (including the default no-op).
    virtual void bind_exec(const util::MergeExec& /*exec*/) const {}

    /// True when this algorithm's task bodies can split their own work
    /// across the bound pool (e.g., Merge Path segments). Executors then
    /// run levels narrower than the pool inline, freeing the workers for
    /// the intra-task parallelism. Must depend only on the bind_exec
    /// binding — never on data — so the virtual clock stays untouched.
    virtual bool intra_task_parallel() const { return false; }

    /// Device-side hook after the last GPU level, before readback.
    virtual void after_gpu_levels(std::span<T> /*device_data*/, std::uint64_t /*count*/,
                                  sim::OpCounter& /*ops*/) const {}

    /// Total charge of ALL device hooks for a GPU phase over a region of
    /// `region_elems` elements — used by the analytic fast path, which
    /// skips the functional hooks. Must equal the sum of the functional
    /// hook charges (tests cross-validate on mergesort).
    virtual sim::OpCounter analytic_gpu_hook_ops(std::uint64_t /*region_elems*/) const {
        return {};
    }

    /// Memory pattern of run_task's charges when executed as one work-item
    /// among many on the device. Plain algorithms walk their slice
    /// sequentially — strided across the wave; §6.3-optimized variants
    /// return kCoalesced.
    virtual sim::Pattern device_pattern() const { return sim::Pattern::kStrided; }

    /// Ratio of device-priced ops to CPU-priced ops for one task — how much
    /// the recurrence's f(n) inflates on the device given this algorithm's
    /// charge mix (strided words pay dev.strided_penalty). Used only by the
    /// analytic fast path; functional runs price actual charges.
    virtual double device_ops_multiplier(const sim::DeviceParams& dev) const {
        return device_pattern() == sim::Pattern::kCoalesced ? 1.0 : dev.strided_penalty;
    }

    /// Bytes touched by one whole level over an input of n elements — feeds
    /// the CPU LLC contention model. Default: the full array, twice (read +
    /// write), which is right for mergesort-like algorithms.
    virtual std::uint64_t level_working_set_bytes(std::uint64_t n) const {
        return 2 * n * sizeof(T);
    }

    /// The task list of global level `level` over an input of `n`
    /// elements. The default is the paper's regular shape — a^level equal
    /// contiguous slices — which is exactly what the array executors
    /// compute from offsets; they never call this hook on the regular
    /// path, so overriding it cannot perturb a regular run (bit-identical
    /// by construction). Irregular algorithms produce their lists
    /// dynamically instead (IrregularLevelAlgorithm below) and the
    /// irregular engine drives them level by level.
    virtual TaskList level_task_list(std::uint64_t n, std::uint64_t level) const {
        TaskList tl;
        const std::uint64_t count = util::ipow(a(), static_cast<std::uint32_t>(level));
        const std::uint64_t sz = count > 0 ? n / count : 0;
        tl.tasks.reserve(count);
        for (std::uint64_t j = 0; j < count; ++j) {
            tl.tasks.push_back(TaskDesc{j * sz, (j + 1) * sz, 0});
        }
        return tl;
    }

    /// True for algorithms whose recursion tree is produced dynamically.
    /// The executors dispatch such algorithms to the irregular engine
    /// (core/irregular.hpp); regular algorithms never take that path.
    virtual bool irregular() const { return false; }

    /// Non-null iff irregular(): the dynamic-tree interface of this
    /// algorithm. Virtual downcast so the dispatch needs no RTTI.
    virtual const IrregularLevelAlgorithm<T>* as_irregular() const { return nullptr; }

    /// Symbolic per-task access footprint for the queried phase, in the
    /// task-local frame (word 0 = first word of task 0's slice; `j` ranges
    /// over the level's tasks). Returning a footprint lets hpu::verify
    /// prove the phase race-free before execution — and, under
    /// ExecOptions::validate, have the runtime check logged accesses
    /// against it instead of concretizing words. Return std::nullopt (the
    /// default) to opt out; the verifier then records the phase as
    /// undeclared and the runtime falls back to exact race detection.
    virtual std::optional<verify::TaskFootprint> footprint(
        const verify::FootprintQuery& /*query*/) const {
        return std::nullopt;
    }
};

/// An algorithm whose recursion tree is produced *dynamically*: each level
/// is a TaskList the previous level's divide work computed, with variable
/// arity, uneven extents, empty branches, and early termination (a branch
/// that spawns no children). The irregular engine (core/irregular.hpp)
/// drives the tree in two sweeps, mirroring the paper's breadth-first
/// translation (Alg. 2):
///
///   expand  — top-down: run every task's divide_task, collect the
///             children it appends; the concatenated children (in task
///             order) are the next level's list; an empty frontier ends
///             the sweep.
///   combine — bottom-up over the recorded levels: run every task's
///             combine_task with the spans of its recorded children
///             (empty span = the task was a leaf). Skipped entirely when
///             has_combine() is false (pure partition algorithms).
///
/// Contract inherited from the regular framework: tasks of one level are
/// independent — non-empty extents pairwise disjoint, logged accesses
/// race-free (both checked under ExecOptions::validate) — and every task
/// body is a pure function of its descriptor plus the data it owns, so
/// pooled execution stays bit-identical to inline.
template <typename T>
class IrregularLevelAlgorithm : public LevelAlgorithm<T> {
public:
    bool irregular() const final { return true; }
    const IrregularLevelAlgorithm<T>* as_irregular() const final { return this; }

    /// Never used on the irregular path; the engine runs divide_task /
    /// combine_task bodies instead.
    void run_task(std::span<T> /*data*/, std::uint64_t /*count*/, std::uint64_t /*j*/,
                  sim::OpCounter& /*ops*/) const override {
        HPU_CHECK(false, "irregular algorithms execute via divide_task/combine_task");
    }

    /// Root frontier (level 0). Runs once on the host before any level —
    /// the irregular analogue of before_run (and charged the same way, as
    /// p-way parallel CPU work); may reorder `data`.
    virtual TaskList root_tasks(std::span<T> data, sim::OpCounter& ops) const = 0;

    /// Divide work of one task: partition / prepare its extent and append
    /// the children tasks to `children` (zero children = this branch
    /// terminates here). Runs as one CPU task or one device work-item.
    virtual void divide_task(std::span<T> data, const TaskDesc& t, std::uint64_t level,
                             std::vector<TaskDesc>& children, sim::OpCounter& ops) const = 0;

    /// Whether the tree has a bottom-up combine sweep at all. Pure
    /// partition algorithms (quickhull) return false and skip the sweep.
    virtual bool has_combine() const { return true; }

    /// Combine work of one task, after all its children combined.
    /// `children` are the descriptors divide_task appended (empty = leaf).
    virtual void combine_task(std::span<T> /*data*/, const TaskDesc& /*t*/,
                              std::uint64_t /*level*/,
                              std::span<const TaskDesc> /*children*/,
                              sim::OpCounter& ops) const {
        ops.charge_compute(1);
    }

    /// Host-side wrap-up after both sweeps (assemble the output in
    /// `data`). Priced as p-way parallel CPU work.
    virtual void finalize(std::span<T> /*data*/, sim::OpCounter& /*ops*/) const {}

    /// Deterministic per-task cost estimate, in CPU ops, consumed by the
    /// observed-width scheduler BEFORE the task runs (model/observed.hpp).
    /// Must be a pure function of the descriptor (and immutable prepared
    /// state) so pooled and inline runs split identically.
    virtual double task_cost_estimate(const TaskDesc& t, bool /*combine*/) const {
        return t.size() > 0 ? static_cast<double>(t.size()) : 1.0;
    }

    /// Canonical, data-independent level widths for the analytic fast
    /// path, which prices the tree without executing task bodies (the real
    /// widths of a data-dependent tree only exist at run time). For
    /// algorithms whose shape depends on n alone (closest-pair, Karatsuba)
    /// this is the exact tree; data-dependent algorithms return a modeling
    /// choice (documented per algorithm).
    virtual std::vector<std::uint64_t> analytic_widths(std::uint64_t n) const = 0;

    /// Uniform per-task cost of one analytic level. Defaults to the
    /// recurrence's f(n/b^level), like the regular analytic path.
    virtual double analytic_task_cost(std::uint64_t n, std::uint64_t level) const {
        return this->recurrence().task_cost(static_cast<double>(n),
                                            static_cast<double>(level));
    }

    /// Safety cap on the expansion depth (a buggy divide_task that always
    /// spawns children would otherwise never terminate).
    virtual std::uint64_t max_levels(std::uint64_t n) const { return n + 2; }
};

}  // namespace hpu::core
