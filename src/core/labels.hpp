// The one label scheme shared by timeline events, hpu::analysis findings,
// and hpu::trace spans, so diagnostics from all three layers can be joined
// on the label string (tests assert they match).
//
//   launch_label("mergesort", "gpu-level", 8)  -> "mergesort/gpu-level[8 tasks]"
//   phase_label("mergesort", "cpu-parallel")   -> "mergesort/cpu-parallel"
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace hpu::core {

/// Label of one launch/level: "<algo>/<phase>[<tasks> tasks]". Used as the
/// owning-event name in analysis findings and as the trace span label of
/// the same launch.
inline std::string launch_label(const std::string& name, const char* phase,
                                std::uint64_t tasks) {
    std::ostringstream os;
    os << name << '/' << phase << '[' << tasks << " tasks]";
    return os.str();
}

/// Label of a scheduler phase: "<algo>/<phase>". Used for timeline events
/// and trace phase/transfer spans.
inline std::string phase_label(const std::string& name, const char* phase) {
    return name + '/' + phase;
}

}  // namespace hpu::core
