// Host/device buffer with explicit transfers, mirroring the OpenCL memory
// model of §3.1: the host cannot see device writes (and vice versa) until an
// explicit transfer. We physically keep two copies so stale-copy bugs in
// schedulers surface as wrong results in tests rather than silently working.
//
// Every access and transfer can additionally be recorded into an external
// BufferEvent log (set_trace); the hpu::analysis residency lint replays the
// log to flag stale-copy reads, redundant transfers, and writes through
// host() while a device copy is live.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "sim/params.hpp"
#include "trace/counters.hpp"
#include "util/check.hpp"

namespace hpu::sim {

/// What happened to a DeviceBuffer, for the residency lint.
enum class BufferOp : std::uint8_t {
    kHostMut,       ///< host() — mutable host view acquired
    kHostRead,      ///< host_view()
    kDeviceMut,     ///< device() — mutable device view acquired
    kDeviceRead,    ///< device_view()
    kCopyToDevice,  ///< host→device transfer (full or partial)
    kCopyToHost,    ///< device→host transfer (full or partial)
};

/// One entry of a buffer's access/transfer log. Validity flags are the
/// state *before* the operation, which is what the lint rules condition on.
///
/// Synchronous operations leave `start`/`ready` at the kUntimed sentinel.
/// Streamed chunk copies (stream_to_device / stream_to_host) record the
/// link schedule: start = when the link picked the chunk up, ready = when
/// it arrived. Timed accesses (device_region) record the virtual tick the
/// kernel touches the range at in both fields, so the residency lint can
/// flag reads of chunks that have not arrived yet (kInFlightRead).
struct BufferEvent {
    /// Sentinel for the timing fields of untimed (synchronous) events.
    static constexpr Ticks kUntimed = -1.0;

    BufferOp op;
    bool host_valid_before = true;
    bool device_valid_before = false;
    std::size_t offset = 0;  ///< copied/accessed range (copies & timed accesses)
    std::size_t count = 0;
    std::size_t size = 0;  ///< buffer size, so the lint can tell full from partial
    Ticks start = kUntimed;  ///< link pickup / access tick (timed events only)
    Ticks ready = kUntimed;  ///< arrival tick (timed events only)

    bool timed() const noexcept { return ready >= 0.0; }
};

template <typename T>
class DeviceBuffer {
public:
    explicit DeviceBuffer(std::size_t n) : host_(n), device_(n) {}

    /// Construct with initial host contents.
    explicit DeviceBuffer(std::vector<T> initial)
        : host_(std::move(initial)), device_(host_.size()) {}

    std::size_t size() const noexcept { return host_.size(); }
    std::size_t bytes() const noexcept { return host_.size() * sizeof(T); }

    /// Attach (or detach, with nullptr) an event log. The buffer does not
    /// own the sink; it must outlive the buffer's use.
    void set_trace(std::vector<BufferEvent>* sink) noexcept { trace_ = sink; }

    /// Host-side view. Writing invalidates the device copy.
    std::span<T> host() noexcept {
        record(BufferOp::kHostMut);
        device_valid_ = false;
        return host_;
    }
    std::span<const T> host_view() const noexcept {
        record(BufferOp::kHostRead);
        return host_;
    }

    /// Device-side view, for kernel bodies. Requires a prior copy_to_device.
    std::span<T> device() {
        record(BufferOp::kDeviceMut);
        HPU_CHECK(device_valid_, "kernel touched a buffer not resident on the device");
        host_valid_ = false;
        return device_;
    }
    std::span<const T> device_view() const {
        record(BufferOp::kDeviceRead);
        HPU_CHECK(device_valid_, "kernel read a buffer not resident on the device");
        return device_;
    }

    bool device_valid() const noexcept { return device_valid_; }
    bool host_valid() const noexcept { return host_valid_; }

    /// Physical host→device copy. Time accounting happens in CommandQueue.
    void copy_to_device() {
        record(BufferOp::kCopyToDevice, 0, size());
        device_.assign(host_.begin(), host_.end());
        device_valid_ = true;
    }
    /// Physical device→host copy.
    void copy_to_host() {
        record(BufferOp::kCopyToHost, 0, size());
        HPU_CHECK(device_valid_, "reading back a buffer that was never written on the device");
        host_.assign(device_.begin(), device_.end());
        host_valid_ = true;
    }

    /// Asynchronous host→device chunk copy as scheduled by a sim::Stream:
    /// the words move now (the clock is virtual), but the event log keeps
    /// the link schedule [start, ready) so the residency lint can verify
    /// that no kernel touches the chunk before it arrives. Unlike the
    /// synchronous partial copy, streaming may target an invalid device
    /// copy: the device side becomes valid once the streamed chunks cover
    /// the whole buffer.
    void stream_to_device(std::size_t offset, std::size_t count, Ticks start, Ticks ready) {
        record(BufferOp::kCopyToDevice, offset, count, start, ready);
        HPU_CHECK(offset <= size() && count <= size() - offset, "streamed chunk out of range");
        std::copy_n(host_.begin() + static_cast<std::ptrdiff_t>(offset), count,
                    device_.begin() + static_cast<std::ptrdiff_t>(offset));
        if (!device_valid_ && cover(device_streamed_, offset, count)) {
            device_valid_ = true;
            device_streamed_.clear();
        }
    }

    /// Asynchronous device→host chunk copy (results retrieval), mirrored.
    void stream_to_host(std::size_t offset, std::size_t count, Ticks start, Ticks ready) {
        record(BufferOp::kCopyToHost, offset, count, start, ready);
        HPU_CHECK(offset <= size() && count <= size() - offset, "streamed chunk out of range");
        HPU_CHECK(device_valid_ || covered(device_streamed_, offset, count),
                  "streaming back a chunk that was never written on the device");
        std::copy_n(device_.begin() + static_cast<std::ptrdiff_t>(offset), count,
                    host_.begin() + static_cast<std::ptrdiff_t>(offset));
        if (!host_valid_ && cover(host_streamed_, offset, count)) {
            host_valid_ = true;
            host_streamed_.clear();
        }
    }

    /// Device-side view of chunk [offset, offset+count) acquired at virtual
    /// tick `at` — device() scoped to a streamed chunk. The chunk must be
    /// covered by prior full or streamed copies; whether it had *arrived*
    /// by `at` is the residency lint's job (kInFlightRead), not a crash.
    std::span<T> device_region(std::size_t offset, std::size_t count, Ticks at) {
        record(BufferOp::kDeviceMut, offset, count, at, at);
        HPU_CHECK(offset <= size() && count <= size() - offset, "device region out of range");
        HPU_CHECK(device_valid_ || covered(device_streamed_, offset, count),
                  "kernel touched a chunk that was never copied to the device");
        host_valid_ = false;
        host_streamed_.clear();
        return std::span<T>(device_).subspan(offset, count);
    }

    /// Partial host→device copy of [offset, offset+count). A partial copy
    /// refreshes a range of an already-valid device copy; it cannot
    /// establish validity of the rest of the buffer, so the destination
    /// must already be valid unless the range covers the whole buffer.
    void copy_to_device(std::size_t offset, std::size_t count) {
        record(BufferOp::kCopyToDevice, offset, count);
        HPU_CHECK(offset <= size() && count <= size() - offset, "partial copy out of range");
        HPU_CHECK(device_valid_ || (offset == 0 && count == size()),
                  "partial copy into a device buffer whose remaining contents are not valid");
        std::copy_n(host_.begin() + static_cast<std::ptrdiff_t>(offset), count,
                    device_.begin() + static_cast<std::ptrdiff_t>(offset));
        device_valid_ = true;
    }
    /// Partial device→host copy of [offset, offset+count). Same validity
    /// rule as the host→device overload, mirrored.
    void copy_to_host(std::size_t offset, std::size_t count) {
        record(BufferOp::kCopyToHost, offset, count);
        HPU_CHECK(offset <= size() && count <= size() - offset, "partial copy out of range");
        HPU_CHECK(device_valid_, "reading back a buffer that was never written on the device");
        HPU_CHECK(host_valid_ || (offset == 0 && count == size()),
                  "partial copy into a host buffer whose remaining contents are not valid");
        std::copy_n(device_.begin() + static_cast<std::ptrdiff_t>(offset), count,
                    host_.begin() + static_cast<std::ptrdiff_t>(offset));
        host_valid_ = true;
    }

private:
    using Interval = std::pair<std::size_t, std::size_t>;  ///< [first, last)

    void record(BufferOp op, std::size_t offset = 0, std::size_t count = 0,
                Ticks start = BufferEvent::kUntimed,
                Ticks ready = BufferEvent::kUntimed) const {
        if (op == BufferOp::kCopyToDevice || op == BufferOp::kCopyToHost) {
            auto& ctr = trace::counters();
            trace::count(ctr.transfers);
            trace::count(ctr.words_transferred, count);
        }
        if (trace_ != nullptr) {
            trace_->push_back(
                {op, host_valid_, device_valid_, offset, count, size(), start, ready});
        }
    }

    /// Merges [offset, offset+count) into the streamed-coverage set;
    /// returns true once the set covers the whole buffer.
    bool cover(std::vector<Interval>& set, std::size_t offset, std::size_t count) const {
        set.emplace_back(offset, offset + count);
        std::sort(set.begin(), set.end());
        std::size_t w = 0;
        for (std::size_t r = 1; r < set.size(); ++r) {
            if (set[r].first <= set[w].second) {
                set[w].second = std::max(set[w].second, set[r].second);
            } else {
                set[++w] = set[r];
            }
        }
        set.resize(w + 1);
        return set.size() == 1 && set.front().first == 0 && set.front().second >= size();
    }

    /// True when [offset, offset+count) lies inside one merged interval.
    static bool covered(const std::vector<Interval>& set, std::size_t offset,
                        std::size_t count) {
        for (const Interval& iv : set) {
            if (iv.first <= offset && offset + count <= iv.second) return true;
        }
        return count == 0;
    }

    std::vector<T> host_;
    std::vector<T> device_;
    bool host_valid_ = true;
    bool device_valid_ = false;
    /// Streamed-but-not-yet-complete coverage of each side (empty once the
    /// corresponding validity flag is true).
    mutable std::vector<Interval> device_streamed_;
    mutable std::vector<Interval> host_streamed_;
    std::vector<BufferEvent>* trace_ = nullptr;
};

}  // namespace hpu::sim
