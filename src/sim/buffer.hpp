// Host/device buffer with explicit transfers, mirroring the OpenCL memory
// model of §3.1: the host cannot see device writes (and vice versa) until an
// explicit transfer. We physically keep two copies so stale-copy bugs in
// schedulers surface as wrong results in tests rather than silently working.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace hpu::sim {

template <typename T>
class DeviceBuffer {
public:
    explicit DeviceBuffer(std::size_t n) : host_(n), device_(n) {}

    /// Construct with initial host contents.
    explicit DeviceBuffer(std::vector<T> initial)
        : host_(std::move(initial)), device_(host_.size()) {}

    std::size_t size() const noexcept { return host_.size(); }
    std::size_t bytes() const noexcept { return host_.size() * sizeof(T); }

    /// Host-side view. Writing invalidates the device copy.
    std::span<T> host() noexcept {
        device_valid_ = false;
        return host_;
    }
    std::span<const T> host_view() const noexcept { return host_; }

    /// Device-side view, for kernel bodies. Requires a prior copy_to_device.
    std::span<T> device() {
        HPU_CHECK(device_valid_, "kernel touched a buffer not resident on the device");
        host_valid_ = false;
        return device_;
    }
    std::span<const T> device_view() const {
        HPU_CHECK(device_valid_, "kernel read a buffer not resident on the device");
        return device_;
    }

    bool device_valid() const noexcept { return device_valid_; }
    bool host_valid() const noexcept { return host_valid_; }

    /// Physical host→device copy. Time accounting happens in CommandQueue.
    void copy_to_device() {
        device_.assign(host_.begin(), host_.end());
        device_valid_ = true;
    }
    /// Physical device→host copy.
    void copy_to_host() {
        HPU_CHECK(device_valid_, "reading back a buffer that was never written on the device");
        host_.assign(device_.begin(), device_.end());
        host_valid_ = true;
    }

    /// Partial host→device copy of [offset, offset+count).
    void copy_to_device(std::size_t offset, std::size_t count) {
        HPU_CHECK(offset + count <= size(), "partial copy out of range");
        std::copy_n(host_.begin() + static_cast<std::ptrdiff_t>(offset), count,
                    device_.begin() + static_cast<std::ptrdiff_t>(offset));
        device_valid_ = true;
    }
    /// Partial device→host copy of [offset, offset+count).
    void copy_to_host(std::size_t offset, std::size_t count) {
        HPU_CHECK(offset + count <= size(), "partial copy out of range");
        std::copy_n(device_.begin() + static_cast<std::ptrdiff_t>(offset), count,
                    host_.begin() + static_cast<std::ptrdiff_t>(offset));
        host_valid_ = true;
    }

private:
    std::vector<T> host_;
    std::vector<T> device_;
    bool host_valid_ = true;
    bool device_valid_ = false;
};

}  // namespace hpu::sim
