// Host/device buffer with explicit transfers, mirroring the OpenCL memory
// model of §3.1: the host cannot see device writes (and vice versa) until an
// explicit transfer. We physically keep two copies so stale-copy bugs in
// schedulers surface as wrong results in tests rather than silently working.
//
// Every access and transfer can additionally be recorded into an external
// BufferEvent log (set_trace); the hpu::analysis residency lint replays the
// log to flag stale-copy reads, redundant transfers, and writes through
// host() while a device copy is live.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "trace/counters.hpp"
#include "util/check.hpp"

namespace hpu::sim {

/// What happened to a DeviceBuffer, for the residency lint.
enum class BufferOp : std::uint8_t {
    kHostMut,       ///< host() — mutable host view acquired
    kHostRead,      ///< host_view()
    kDeviceMut,     ///< device() — mutable device view acquired
    kDeviceRead,    ///< device_view()
    kCopyToDevice,  ///< host→device transfer (full or partial)
    kCopyToHost,    ///< device→host transfer (full or partial)
};

/// One entry of a buffer's access/transfer log. Validity flags are the
/// state *before* the operation, which is what the lint rules condition on.
struct BufferEvent {
    BufferOp op;
    bool host_valid_before = true;
    bool device_valid_before = false;
    std::size_t offset = 0;  ///< copied range (copies only)
    std::size_t count = 0;
    std::size_t size = 0;  ///< buffer size, so the lint can tell full from partial
};

template <typename T>
class DeviceBuffer {
public:
    explicit DeviceBuffer(std::size_t n) : host_(n), device_(n) {}

    /// Construct with initial host contents.
    explicit DeviceBuffer(std::vector<T> initial)
        : host_(std::move(initial)), device_(host_.size()) {}

    std::size_t size() const noexcept { return host_.size(); }
    std::size_t bytes() const noexcept { return host_.size() * sizeof(T); }

    /// Attach (or detach, with nullptr) an event log. The buffer does not
    /// own the sink; it must outlive the buffer's use.
    void set_trace(std::vector<BufferEvent>* sink) noexcept { trace_ = sink; }

    /// Host-side view. Writing invalidates the device copy.
    std::span<T> host() noexcept {
        record(BufferOp::kHostMut);
        device_valid_ = false;
        return host_;
    }
    std::span<const T> host_view() const noexcept {
        record(BufferOp::kHostRead);
        return host_;
    }

    /// Device-side view, for kernel bodies. Requires a prior copy_to_device.
    std::span<T> device() {
        record(BufferOp::kDeviceMut);
        HPU_CHECK(device_valid_, "kernel touched a buffer not resident on the device");
        host_valid_ = false;
        return device_;
    }
    std::span<const T> device_view() const {
        record(BufferOp::kDeviceRead);
        HPU_CHECK(device_valid_, "kernel read a buffer not resident on the device");
        return device_;
    }

    bool device_valid() const noexcept { return device_valid_; }
    bool host_valid() const noexcept { return host_valid_; }

    /// Physical host→device copy. Time accounting happens in CommandQueue.
    void copy_to_device() {
        record(BufferOp::kCopyToDevice, 0, size());
        device_.assign(host_.begin(), host_.end());
        device_valid_ = true;
    }
    /// Physical device→host copy.
    void copy_to_host() {
        record(BufferOp::kCopyToHost, 0, size());
        HPU_CHECK(device_valid_, "reading back a buffer that was never written on the device");
        host_.assign(device_.begin(), device_.end());
        host_valid_ = true;
    }

    /// Partial host→device copy of [offset, offset+count). A partial copy
    /// refreshes a range of an already-valid device copy; it cannot
    /// establish validity of the rest of the buffer, so the destination
    /// must already be valid unless the range covers the whole buffer.
    void copy_to_device(std::size_t offset, std::size_t count) {
        record(BufferOp::kCopyToDevice, offset, count);
        HPU_CHECK(offset <= size() && count <= size() - offset, "partial copy out of range");
        HPU_CHECK(device_valid_ || (offset == 0 && count == size()),
                  "partial copy into a device buffer whose remaining contents are not valid");
        std::copy_n(host_.begin() + static_cast<std::ptrdiff_t>(offset), count,
                    device_.begin() + static_cast<std::ptrdiff_t>(offset));
        device_valid_ = true;
    }
    /// Partial device→host copy of [offset, offset+count). Same validity
    /// rule as the host→device overload, mirrored.
    void copy_to_host(std::size_t offset, std::size_t count) {
        record(BufferOp::kCopyToHost, offset, count);
        HPU_CHECK(offset <= size() && count <= size() - offset, "partial copy out of range");
        HPU_CHECK(device_valid_, "reading back a buffer that was never written on the device");
        HPU_CHECK(host_valid_ || (offset == 0 && count == size()),
                  "partial copy into a host buffer whose remaining contents are not valid");
        std::copy_n(device_.begin() + static_cast<std::ptrdiff_t>(offset), count,
                    host_.begin() + static_cast<std::ptrdiff_t>(offset));
        host_valid_ = true;
    }

private:
    void record(BufferOp op, std::size_t offset = 0, std::size_t count = 0) const {
        if (op == BufferOp::kCopyToDevice || op == BufferOp::kCopyToHost) {
            auto& ctr = trace::counters();
            trace::count(ctr.transfers);
            trace::count(ctr.words_transferred, count);
        }
        if (trace_ != nullptr) {
            trace_->push_back({op, host_valid_, device_valid_, offset, count, size()});
        }
    }

    std::vector<T> host_;
    std::vector<T> device_;
    bool host_valid_ = true;
    bool device_valid_ = false;
    std::vector<BufferEvent>* trace_ = nullptr;
};

}  // namespace hpu::sim
