// SIMT memory-transaction analysis (full-trace mode). Given the address
// streams of the work-items in one wave, computes how many memory
// transactions the wave issues per lockstep access step — the quantity the
// §6.3 coalescing permutation optimizes. The Counts-mode cost (Pattern::
// kCoalesced vs kStrided in OpCounter) is the cheap per-item approximation
// of this analysis; unit tests cross-validate the two on the mergesort
// access patterns.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hpu::sim {

/// One work-item's address trace: the sequence of word indices it accessed,
/// in program order. Step k across items models the SIMT lockstep.
using AccessTrace = std::vector<std::uint64_t>;

struct TransactionReport {
    std::uint64_t steps = 0;          ///< max trace length in the wave
    std::uint64_t accesses = 0;       ///< total words accessed
    std::uint64_t transactions = 0;   ///< aligned segments fetched
    /// transactions * coalesce_width / accesses: 1.0 = perfectly coalesced,
    /// ~coalesce_width = fully scattered.
    double expansion = 0.0;
};

/// Analyzes one wave. `coalesce_width` is the transaction size in words;
/// a transaction covers the aligned segment [k·w, (k+1)·w).
TransactionReport analyze_wave(std::span<const AccessTrace> items, std::uint64_t coalesce_width);

/// Convenience: the per-word device cost implied by a report — what
/// Pattern-based counting approximates. cost = expansion (clamped to >= 1).
double effective_cost_per_word(const TransactionReport& report);

}  // namespace hpu::sim
