// The assembled Hybrid Processing Unit: one CpuUnit, one Device, and the
// link between them, sharing a Timeline. This is the machine object that
// the core schedulers (src/core) drive.
#pragma once

#include <memory>

#include "sim/cpu_unit.hpp"
#include "sim/device.hpp"
#include "sim/params.hpp"
#include "sim/timeline.hpp"
#include "util/thread_pool.hpp"

namespace hpu::sim {

class Hpu {
public:
    /// `pool` accelerates the *functional* execution of both units on
    /// multi-core hosts (CPU levels and device waves); the virtual clock
    /// is bit-identical with or without it (enforced by test). May be
    /// null: everything then runs inline on the caller.
    explicit Hpu(HpuParams params, util::ThreadPool* pool = nullptr)
        : params_(std::move(params)), cpu_(params_.cpu, pool), gpu_(params_.gpu, pool) {
        params_.validate();
    }

    const HpuParams& params() const noexcept { return params_; }
    CpuUnit& cpu() noexcept { return cpu_; }
    Device& gpu() noexcept { return gpu_; }
    Timeline& timeline() noexcept { return timeline_; }
    const Timeline& timeline() const noexcept { return timeline_; }

    /// Virtual time of transferring `words` words across the link.
    Ticks transfer_time(std::uint64_t words) const noexcept {
        return params_.link.transfer_time(words);
    }

    void reset() {
        timeline_.clear();
        gpu_.reset_stats();
    }

private:
    HpuParams params_;
    CpuUnit cpu_;
    Device gpu_;
    Timeline timeline_;
};

}  // namespace hpu::sim
