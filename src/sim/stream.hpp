// Asynchronous transfer stream over the CPU<->GPU link (DESIGN.md §9).
//
// The link is a single full-duplex-free resource: one transfer at a time,
// each priced λ + δ·w (§3.1). A Stream is the link's FIFO queue on the
// virtual clock: pushing a chunk schedules it at
//
//   start = max(ready, link_free),   end = start + λ + δ·w
//
// where `ready` is the tick the producer made the chunk available (0 for
// eagerly enqueued inputs, the kernel-completion tick for results) and
// `link_free` is the end of the previously queued chunk. The returned
// Event carries the completion tick; consumers sequence against it with
// Event::wait, exactly how the pipelined hybrid overlaps chunk transfers
// with wave execution.
//
// Every chunk is recorded on the Hpu timeline (kTransferToGpu /
// kTransferToCpu), so link occupancy is inspectable after the run; trace
// spans stay the executors' job (the tracer is off the critical path and
// the Stream *is* critical-path arithmetic).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/params.hpp"
#include "sim/timeline.hpp"

namespace hpu::sim {

/// Completion marker of an asynchronous link operation: the virtual tick
/// at which the transferred words are usable on the destination side.
struct StreamEvent {
    Ticks when = 0.0;

    /// True once the operation has completed at virtual tick `now`.
    bool done(Ticks now) const noexcept { return when <= now; }
    /// The tick a consumer arriving at `now` can proceed: max(now, when).
    Ticks wait(Ticks now) const noexcept { return std::max(now, when); }
};

/// One chunk transfer as the link scheduled it.
struct StreamChunk {
    bool to_device = true;
    std::uint64_t words = 0;
    std::size_t offset = 0;  ///< first word of the chunk in its buffer
    Ticks ready = 0.0;       ///< when the producer enqueued it
    Ticks start = 0.0;       ///< when the link picked it up
    Ticks end = 0.0;         ///< start + λ + δ·words

    Ticks duration() const noexcept { return end - start; }
    /// Link idle time in front of this chunk (start − ready when the link
    /// was the bottleneck is 0; positive when the chunk waited on the link
    /// — wait = start − ready — or the link waited on the producer).
    Ticks queue_delay() const noexcept { return start - ready; }
};

/// FIFO transfer queue of the link on the virtual clock.
class Stream {
public:
    explicit Stream(const LinkParams& link, Timeline* timeline = nullptr)
        : link_(link), timeline_(timeline) {}

    /// Enqueues a host→device chunk of `words` available at tick `ready`.
    StreamEvent push_to_device(const std::string& label, std::uint64_t words, std::size_t offset,
                         Ticks ready) {
        return push(EventKind::kTransferToGpu, label, words, offset, ready);
    }

    /// Enqueues a device→host chunk of `words` available at tick `ready`.
    StreamEvent push_to_host(const std::string& label, std::uint64_t words, std::size_t offset,
                       Ticks ready) {
        return push(EventKind::kTransferToCpu, label, words, offset, ready);
    }

    /// Completion of everything enqueued so far.
    StreamEvent sync() const noexcept { return StreamEvent{free_at_}; }

    /// First tick a newly enqueued chunk could start.
    Ticks free_at() const noexcept { return free_at_; }

    /// Total link-occupied time: Σ (λ + δ·w) over all chunks.
    Ticks busy() const noexcept { return busy_; }

    const std::vector<StreamChunk>& chunks() const noexcept { return chunks_; }

private:
    StreamEvent push(EventKind kind, const std::string& label, std::uint64_t words,
               std::size_t offset, Ticks ready) {
        StreamChunk c;
        c.to_device = kind == EventKind::kTransferToGpu;
        c.words = words;
        c.offset = offset;
        c.ready = ready;
        c.start = std::max(ready, free_at_);
        c.end = c.start + link_.transfer_time(words);
        free_at_ = c.end;
        busy_ += c.end - c.start;
        if (timeline_ != nullptr) {
            timeline_->record(kind, label, c.start, c.end - c.start);
        }
        chunks_.push_back(c);
        return StreamEvent{c.end};
    }

    LinkParams link_;
    Timeline* timeline_ = nullptr;
    Ticks free_at_ = 0.0;
    Ticks busy_ = 0.0;
    std::vector<StreamChunk> chunks_;
};

}  // namespace hpu::sim
