// The simulated GPU device: executes kernels functionally on the host while
// charging virtual time according to the HPU cost model (see params.hpp).
//
// Execution model (mirrors §3.1/§4.2 of the paper): a kernel launch of N
// work-items runs in ceil(N / g) waves of up to g lanes. All items execute
// the same kernel body; each identifies its subproblem from its global id
// (Alg. 3). A wave lasts as long as its slowest item; waves execute back to
// back. Items charge their work through WorkItem::ops().
//
// Functional execution is optionally *host-parallel*: constructed with a
// util::ThreadPool, the device runs each wave's items across the pool (the
// items of one launch are independent by the framework's contract — the
// hpu::analysis race detector enforces it). Virtual time, LaunchResult,
// and WaveTrace stay bit-identical to the serial path: per-item charges
// land in a per-wave arena and are folded into the wave max/sum in index
// order after the parallel section (enforced by test).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/op_counter.hpp"
#include "sim/params.hpp"
#include "trace/counters.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/thread_pool.hpp"

namespace hpu::sim {

/// Handle given to each kernel invocation: identity + charge interface.
class WorkItem {
public:
    WorkItem(std::uint64_t global_id, std::uint64_t global_size, OpCounter& ops) noexcept
        : global_id_(global_id), global_size_(global_size), ops_(&ops) {}

    /// OpenCL get_global_id(0).
    std::uint64_t global_id() const noexcept { return global_id_; }
    /// OpenCL get_global_size(0): total items in the launch.
    std::uint64_t global_size() const noexcept { return global_size_; }

    OpCounter& ops() noexcept { return *ops_; }

    void charge_compute(std::uint64_t n) noexcept { ops_->charge_compute(n); }
    void charge_mem(std::uint64_t words, Pattern p) noexcept { ops_->charge_mem(words, p); }

private:
    std::uint64_t global_id_;
    std::uint64_t global_size_;
    OpCounter* ops_;
};

/// Result of one kernel launch.
struct LaunchResult {
    Ticks time = 0.0;          ///< virtual duration of the launch
    std::uint64_t items = 0;   ///< work-items executed
    std::uint64_t waves = 0;   ///< ceil(items / g)
    OpCounter total_ops;       ///< sum of all item charges
    double max_item_ops = 0;   ///< largest per-item GPU op count observed
};

/// Cumulative device statistics.
struct DeviceStats {
    std::uint64_t launches = 0;
    std::uint64_t items = 0;
    Ticks busy_time = 0.0;
    OpCounter total_ops;
};

/// One SIMT wave of a launch, recorded into an optional external sink (see
/// Device::set_wave_trace) for the hpu::trace span tracer. Purely
/// observational: attaching a sink never changes launch timing.
struct WaveTrace {
    std::uint64_t first_item = 0;  ///< global id of the wave's first item
    std::uint64_t items = 0;       ///< busy lanes in this wave (<= g)
    Ticks duration = 0.0;          ///< wave time: max item ops / gamma
    double max_item_ops = 0.0;     ///< the critical item's GPU op count
    OpCounter ops;                 ///< summed charges of the wave's items
};

class Device {
public:
    /// `pool` may be null: items then run inline on the caller (the
    /// virtual clock is unaffected either way — the pool only accelerates
    /// functional execution on multi-core hosts).
    explicit Device(DeviceParams params, util::ThreadPool* pool = nullptr)
        : params_(params), pool_(pool) {
        params_.validate();
    }

    const DeviceParams& params() const noexcept { return params_; }
    const DeviceStats& stats() const noexcept { return stats_; }
    void reset_stats() noexcept { stats_ = DeviceStats{}; }

    util::ThreadPool* pool() const noexcept { return pool_; }

    /// Attach (or detach, with nullptr) a per-wave sink for the next
    /// launches. The device does not own the sink; it must outlive its use.
    void set_wave_trace(std::vector<WaveTrace>* sink) noexcept { wave_trace_ = sink; }

    /// Launches `n_items` invocations of `kernel` (callable taking
    /// WorkItem&). Items run functionally on the host; virtual time follows
    /// the wave model. Exceptions from kernel bodies propagate to the
    /// caller after no further items are run.
    ///
    /// `items_use_pool` declares that the kernel bodies can split their own
    /// work across the host pool (LevelAlgorithm::intra_task_parallel): a
    /// wave narrower than the pool then runs inline so the workers serve
    /// the merges *inside* the few items. Wall-clock only — the serial
    /// fold is bit-identical to the pooled one.
    template <typename Kernel>
    LaunchResult launch(std::uint64_t n_items, Kernel&& kernel, bool items_use_pool = false) {
        HPU_CHECK(n_items >= 1, "kernel launch needs at least one work-item");
        LaunchResult r;
        r.items = n_items;
        r.waves = util::ceil_div(n_items, params_.g);
        const bool pooled = pool_ != nullptr && pool_->worker_count() > 0;
        Ticks total = params_.launch_overhead;
        std::uint64_t id = 0;
        for (std::uint64_t w = 0; w < r.waves; ++w) {
            const std::uint64_t wave_begin = id;
            const std::uint64_t wave_end = std::min(n_items, (w + 1) * params_.g);
            double wave_max_ops = 0.0;
            OpCounter wave_ops;
            if (pooled && wave_end - wave_begin > 1 &&
                !(items_use_pool && wave_end - wave_begin <= pool_->worker_count())) {
                // Host-parallel wave: every item charges into its own arena
                // slot, then the slots are folded in index order — the same
                // max/sum sequence the serial loop below produces, so the
                // two paths are bit-identical.
                const std::size_t items = wave_end - wave_begin;
                item_ops_.assign(items, OpCounter{});  // reused arena, reset
                item_cost_.resize(items);
                pool_->parallel_for(items, [&](std::size_t j) {
                    WorkItem wi(wave_begin + j, n_items, item_ops_[j]);
                    kernel(wi);
                    item_cost_[j] = item_ops_[j].gpu_ops(params_.strided_penalty);
                });
                for (std::size_t j = 0; j < items; ++j) {
                    wave_max_ops = std::max(wave_max_ops, item_cost_[j]);
                    r.max_item_ops = std::max(r.max_item_ops, item_cost_[j]);
                    r.total_ops += item_ops_[j];
                    if (wave_trace_ != nullptr) wave_ops += item_ops_[j];
                }
                id = wave_end;
            } else {
                for (; id < wave_end; ++id) {
                    OpCounter ops;
                    WorkItem wi(id, n_items, ops);
                    kernel(wi);
                    const double item_ops = ops.gpu_ops(params_.strided_penalty);
                    wave_max_ops = std::max(wave_max_ops, item_ops);
                    r.max_item_ops = std::max(r.max_item_ops, item_ops);
                    r.total_ops += ops;
                    if (wave_trace_ != nullptr) wave_ops += ops;
                }
            }
            total += wave_max_ops / params_.gamma;
            if (wave_trace_ != nullptr) {
                wave_trace_->push_back({wave_begin, wave_end - wave_begin,
                                        wave_max_ops / params_.gamma, wave_max_ops,
                                        wave_ops});
            }
        }
        r.time = total;
        stats_.launches += 1;
        stats_.items += n_items;
        stats_.busy_time += r.time;
        stats_.total_ops += r.total_ops;
        auto& ctr = trace::counters();
        trace::count(ctr.kernel_launches);
        trace::count(ctr.waves_launched, r.waves);
        trace::count(ctr.work_items, n_items);
        trace::count(ctr.coalesced_transactions,
                     util::ceil_div(r.total_ops.mem_coalesced, params_.coalesce_width));
        trace::count(ctr.strided_transactions, r.total_ops.mem_strided);
        return r;
    }

    /// Pure cost query (no execution): time for `n_items` uniform items of
    /// `ops_each` GPU ops. Used by the analytical fast path and the model
    /// tests: ceil(n/g) · ops_each / γ (+ launch overhead).
    Ticks uniform_launch_time(std::uint64_t n_items, double ops_each) const noexcept {
        const auto waves = static_cast<double>(util::ceil_div(n_items, params_.g));
        return params_.launch_overhead + waves * ops_each / params_.gamma;
    }

private:
    DeviceParams params_;
    DeviceStats stats_;
    std::vector<WaveTrace>* wave_trace_ = nullptr;
    util::ThreadPool* pool_ = nullptr;
    // Per-wave scratch, reused across waves and launches so pooled
    // execution allocates nothing steady-state (capacity is bounded by g).
    std::vector<OpCounter> item_ops_;
    std::vector<double> item_cost_;
};

}  // namespace hpu::sim
