// Per-work-item (and per-CPU-task) operation accounting. Kernels and CPU
// task bodies charge the work they do; the cost model (sim/device.hpp,
// sim/cpu_unit.hpp) converts charges into virtual time.
#pragma once

#include <cstdint>

#include "sim/access_log.hpp"

namespace hpu::sim {

/// Memory access pattern, from the point of view of a SIMT wave: whether
/// the k-th accesses of adjacent work-items land in adjacent words.
enum class Pattern : std::uint8_t {
    kCoalesced,  ///< adjacent items touch adjacent words (one transaction)
    kStrided,    ///< each item touches its own distant segment
};

/// Charge accumulator. Plain data; cheap to copy and merge.
struct OpCounter {
    std::uint64_t compute = 0;         ///< scalar compute ops
    std::uint64_t mem_coalesced = 0;   ///< words accessed coalesced
    std::uint64_t mem_strided = 0;     ///< words accessed strided
    /// Optional access-set sink for the hpu::analysis race detector.
    /// Charges and traces are deliberately decoupled: log_* records
    /// addresses without pricing anything, so instrumenting a kernel can
    /// never perturb the virtual clock. Excluded from merges.
    ItemAccessLog* trace = nullptr;

    void charge_compute(std::uint64_t ops) noexcept { compute += ops; }
    void charge_mem(std::uint64_t words, Pattern p) noexcept {
        if (p == Pattern::kCoalesced) {
            mem_coalesced += words;
        } else {
            mem_strided += words;
        }
    }

    /// Record that this item reads the word indices
    /// begin, begin+stride, ..., begin+(words-1)·stride. No-op (and no
    /// cost) unless a trace sink is attached.
    void log_read(std::uint64_t begin, std::uint64_t words, std::uint64_t stride = 1) {
        if (trace != nullptr && words > 0) trace->reads.push_back({begin, words, stride});
    }
    /// Same, for writes.
    void log_write(std::uint64_t begin, std::uint64_t words, std::uint64_t stride = 1) {
        if (trace != nullptr && words > 0) trace->writes.push_back({begin, words, stride});
    }

    /// Total ops as seen by a CPU core: every word costs 1 op.
    std::uint64_t cpu_ops() const noexcept { return compute + mem_coalesced + mem_strided; }

    /// Total ops as seen by a GPU lane: strided words pay the SIMT
    /// transaction penalty.
    double gpu_ops(double strided_penalty) const noexcept {
        return static_cast<double>(compute) + static_cast<double>(mem_coalesced) +
               static_cast<double>(mem_strided) * strided_penalty;
    }

    OpCounter& operator+=(const OpCounter& o) noexcept {
        compute += o.compute;
        mem_coalesced += o.mem_coalesced;
        mem_strided += o.mem_strided;
        return *this;
    }
};

}  // namespace hpu::sim
