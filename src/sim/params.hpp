// Parameter sets for the Hybrid Processing Unit (HPU) model of §3 of the
// paper, plus the knobs of our simulated device (see DESIGN.md §2).
//
// Cost semantics (the "virtual clock"):
//   * one CPU core executes 1 op per tick (γ_c = 1, the paper's
//     normalization);
//   * one GPU lane executes γ ops per tick (γ = γ_g < 1), so an item
//     costing c ops occupies its lane for c / γ ticks;
//   * a kernel launch of N work-items runs in waves of `g` lanes; a wave's
//     duration is the maximum item time in the wave; wave times add;
//   * transferring w words over the CPU↔GPU link takes λ + δ·w ticks;
//   * memory ops: a coalesced word costs 1 op on the device, a strided
//     (non-coalesced) word costs `strided_penalty` ops — this models SIMT
//     memory transactions and makes the §6.3 permutation optimization
//     measurable. The CPU charges every word 1 op (sequential access in a
//     task is cache-friendly).
#pragma once

#include <cstdint>
#include <string>

#include "util/check.hpp"

namespace hpu::sim {

/// Virtual time, in "ticks" == ops of one CPU core.
using Ticks = double;

/// GPU device parameters.
struct DeviceParams {
    /// Effective number of parallel lanes ("gpu cores", paper's g). Not the
    /// physical PE count: the empirical saturation point (§6.4, Fig. 5).
    std::uint64_t g = 1024;
    /// Per-lane speed relative to a CPU core (paper's γ < 1).
    double gamma = 1.0 / 100.0;
    /// Words per memory transaction; a fully coalesced wave touches
    /// `coalesce_width` useful words per transaction.
    std::uint64_t coalesce_width = 16;
    /// Op cost multiplier for a strided (uncoalesced) word on the device.
    double strided_penalty = 16.0;
    /// Fixed per-kernel-launch overhead, in ticks. The paper found
    /// scheduling overhead negligible (§3.2); kept as a knob, default 0.
    Ticks launch_overhead = 0.0;

    void validate() const {
        HPU_CHECK(g >= 1, "device needs at least one lane");
        HPU_CHECK(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        HPU_CHECK(coalesce_width >= 1, "coalesce width must be >= 1");
        HPU_CHECK(strided_penalty >= 1.0, "strided penalty must be >= 1");
        HPU_CHECK(launch_overhead >= 0.0, "launch overhead must be >= 0");
    }
};

/// Multi-core CPU parameters.
struct CpuParams {
    /// Cores available for task processing (paper's p).
    std::size_t p = 4;
    /// Last-level cache capacity in bytes. Used by the optional cache
    /// contention penalty that models the measured-vs-predicted gap of
    /// Fig. 8 (paper §6.4: cores competing for LLC at large n).
    std::uint64_t llc_bytes = 8ull << 20;
    /// Strength of the contention penalty: the makespan of a level whose
    /// working set is ws > llc_bytes is multiplied by
    /// 1 + contention · log2(ws / llc_bytes) when more than one core is
    /// active. 0 disables the penalty (the pure §5 model).
    double contention = 0.0;

    void validate() const {
        HPU_CHECK(p >= 1, "need at least one CPU core");
        HPU_CHECK(llc_bytes >= 1, "LLC capacity must be positive");
        HPU_CHECK(contention >= 0.0, "contention must be >= 0");
    }
};

/// CPU↔GPU link: transferring w words takes λ + δ·w ticks (§3.2).
struct LinkParams {
    Ticks lambda = 0.0;  ///< fixed latency per transfer
    double delta = 0.0;  ///< ticks per word

    void validate() const {
        HPU_CHECK(lambda >= 0.0 && delta >= 0.0, "link costs must be >= 0");
    }

    Ticks transfer_time(std::uint64_t words) const noexcept {
        return lambda + delta * static_cast<double>(words);
    }
};

/// A full Hybrid Processing Unit: one multi-core CPU + one GPU + link.
struct HpuParams {
    std::string name = "hpu";
    CpuParams cpu;
    DeviceParams gpu;
    LinkParams link;

    void validate() const {
        cpu.validate();
        gpu.validate();
        link.validate();
        // The paper assumes γ·g > p (raw GPU power exceeds CPU power);
        // schedulers handle the degenerate case, but flag obviously
        // inconsistent setups where the GPU could never win a level.
        HPU_CHECK(gpu.gamma * static_cast<double>(gpu.g) > 0, "invalid GPU power");
    }

    /// Raw GPU compute power relative to one CPU core: γ·g.
    double gpu_power() const noexcept { return gpu.gamma * static_cast<double>(gpu.g); }
};

}  // namespace hpu::sim
