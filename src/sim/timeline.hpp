// Execution timeline: a log of timed events (kernel launches, transfers,
// CPU levels) on the virtual clock. Schedulers record into a Timeline so
// tests and benches can inspect where time went — e.g. that the advanced
// scheduler really performs exactly two transfers (§5.2).
//
// Events may overlap in virtual time and may be recorded out of
// chronological order: the advanced hybrid records its GPU thread first and
// then the concurrent CPU parallel phase starting back at tick 0. count /
// total / span_end are order-independent, and print() sorts by start time.
// For hierarchical, attributed views use hpu::trace instead; the Timeline
// stays as the flat phase-level log.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/params.hpp"

namespace hpu::sim {

enum class EventKind : std::uint8_t {
    kCpuLevel,      ///< a recursion-tree level (or part of one) on the CPU
    kGpuKernel,     ///< a kernel launch on the device
    kTransferToGpu,
    kTransferToCpu,
};

const char* to_string(EventKind k) noexcept;

struct Event {
    EventKind kind;
    std::string label;
    Ticks start = 0.0;
    Ticks end = 0.0;

    Ticks duration() const noexcept { return end - start; }
};

class Timeline {
public:
    /// Appends an event of `duration` starting at `start`; returns its end.
    Ticks record(EventKind kind, std::string label, Ticks start, Ticks duration);

    const std::vector<Event>& events() const noexcept { return events_; }

    std::size_t count(EventKind kind) const noexcept;
    /// Sum of durations of all events of `kind`.
    Ticks total(EventKind kind) const noexcept;
    /// Latest event end time (0 when empty).
    Ticks span_end() const noexcept;

    void clear() noexcept { events_.clear(); }

    /// One line per event, in chronological (start-time) order regardless
    /// of recording order; ties keep recording order.
    void print(std::ostream& os) const;

private:
    std::vector<Event> events_;
};

}  // namespace hpu::sim
