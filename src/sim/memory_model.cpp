#include "sim/memory_model.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/check.hpp"

namespace hpu::sim {

TransactionReport analyze_wave(std::span<const AccessTrace> items, std::uint64_t coalesce_width) {
    HPU_CHECK(coalesce_width >= 1, "coalesce width must be >= 1");
    TransactionReport r;
    for (const auto& t : items) {
        r.steps = std::max<std::uint64_t>(r.steps, t.size());
        r.accesses += t.size();
    }
    std::unordered_set<std::uint64_t> segments;
    for (std::uint64_t step = 0; step < r.steps; ++step) {
        segments.clear();
        for (const auto& t : items) {
            if (step < t.size()) segments.insert(t[step] / coalesce_width);
        }
        r.transactions += segments.size();
    }
    if (r.accesses > 0) {
        r.expansion = static_cast<double>(r.transactions * coalesce_width) /
                      static_cast<double>(r.accesses);
    }
    return r;
}

double effective_cost_per_word(const TransactionReport& report) {
    return std::max(1.0, report.expansion);
}

}  // namespace hpu::sim
