#include "sim/timeline.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace hpu::sim {

const char* to_string(EventKind k) noexcept {
    switch (k) {
        case EventKind::kCpuLevel: return "cpu-level";
        case EventKind::kGpuKernel: return "gpu-kernel";
        case EventKind::kTransferToGpu: return "xfer->gpu";
        case EventKind::kTransferToCpu: return "xfer->cpu";
    }
    return "?";
}

Ticks Timeline::record(EventKind kind, std::string label, Ticks start, Ticks duration) {
    events_.push_back(Event{kind, std::move(label), start, start + duration});
    return events_.back().end;
}

std::size_t Timeline::count(EventKind kind) const noexcept {
    return static_cast<std::size_t>(
        std::count_if(events_.begin(), events_.end(),
                      [kind](const Event& e) { return e.kind == kind; }));
}

Ticks Timeline::total(EventKind kind) const noexcept {
    Ticks t = 0.0;
    for (const Event& e : events_) {
        if (e.kind == kind) t += e.duration();
    }
    return t;
}

Ticks Timeline::span_end() const noexcept {
    Ticks t = 0.0;
    for (const Event& e : events_) t = std::max(t, e.end);
    return t;
}

void Timeline::print(std::ostream& os) const {
    // Overlapping events are legal (concurrent CPU/GPU phases) and the
    // schedulers may record them out of chronological order; present them
    // sorted by start, keeping recording order for ties.
    std::vector<const Event*> ordered;
    ordered.reserve(events_.size());
    for (const Event& e : events_) ordered.push_back(&e);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const Event* a, const Event* b) { return a->start < b->start; });
    for (const Event* e : ordered) {
        os << std::setw(10) << to_string(e->kind) << "  [" << std::setw(14) << e->start
           << ", " << std::setw(14) << e->end << ")  " << e->label << '\n';
    }
}

}  // namespace hpu::sim
