// The multi-core CPU side of the HPU: runs a level of independent tasks on
// p virtual cores. Tasks execute functionally (optionally on a real thread
// pool); virtual time is the list-scheduling makespan of the measured
// per-task op counts, matching the §5 cost (a^i / p) · f(n / b^i) for
// uniform levels.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/op_counter.hpp"
#include "sim/params.hpp"
#include "trace/counters.hpp"
#include "util/makespan.hpp"
#include "util/math.hpp"
#include "util/thread_pool.hpp"

namespace hpu::sim {

/// Result of running one level of tasks.
struct LevelResult {
    Ticks time = 0.0;             ///< virtual makespan (incl. contention penalty)
    std::uint64_t tasks = 0;
    OpCounter total_ops;
    std::uint64_t max_task_ops = 0;
};

class CpuUnit {
public:
    /// `pool` may be null: tasks then run inline on the caller (the virtual
    /// clock is unaffected — the pool only accelerates functional
    /// execution on multi-core hosts).
    explicit CpuUnit(CpuParams params, util::ThreadPool* pool = nullptr)
        : params_(params), pool_(pool) {
        params_.validate();
    }

    const CpuParams& params() const noexcept { return params_; }

    util::ThreadPool* pool() const noexcept { return pool_; }

    /// Runs `n_tasks` invocations of `task` (callable taking (index,
    /// OpCounter&)) on p virtual cores. `working_set_bytes` feeds the
    /// optional LLC contention penalty (0 = unknown/none).
    ///
    /// `tasks_use_pool` declares that the task bodies can split their own
    /// work across the pool (LevelAlgorithm::intra_task_parallel). A level
    /// narrower than the pool then runs inline so the workers serve the
    /// merges *inside* the few tasks instead of idling — near the tree
    /// root that is the only parallelism available. Wall-clock only: the
    /// inline fold below is bit-identical to the pooled one.
    template <typename Task>
    LevelResult run_level(std::uint64_t n_tasks, Task&& task, std::uint64_t working_set_bytes = 0,
                          util::ListOrder order = util::ListOrder::kArrival,
                          bool tasks_use_pool = false) {
        LevelResult r;
        r.tasks = n_tasks;
        if (n_tasks == 0) return r;
        trace::count(trace::counters().cpu_levels);
        costs_.resize(n_tasks);  // reusable arena: no per-level allocation
        const bool pooled = pool_ != nullptr && pool_->worker_count() > 0 &&
                            !(tasks_use_pool && n_tasks <= pool_->worker_count());
        if (pooled) {
            // Every task charges into its own arena slot; the full
            // OpCounters are folded in index order after the parallel
            // section, so the per-category split (compute / coalesced /
            // strided) in LevelResult is bit-identical to the inline path.
            task_ops_.assign(n_tasks, OpCounter{});
            pool_->parallel_for(n_tasks, [&](std::size_t i) {
                task(static_cast<std::uint64_t>(i), task_ops_[i]);
                costs_[i] = task_ops_[i].cpu_ops();
            });
            for (std::uint64_t i = 0; i < n_tasks; ++i) {
                r.total_ops += task_ops_[i];
                r.max_task_ops = std::max(r.max_task_ops, costs_[i]);
            }
        } else {
            for (std::uint64_t i = 0; i < n_tasks; ++i) {
                OpCounter ops;
                task(i, ops);
                costs_[i] = ops.cpu_ops();
                r.total_ops += ops;
                r.max_task_ops = std::max(r.max_task_ops, costs_[i]);
            }
        }
        r.time = static_cast<Ticks>(
            util::makespan(std::span(costs_.data(), n_tasks), params_.p, order));
        r.time *= contention_factor(n_tasks, working_set_bytes);
        return r;
    }

    /// Pure cost query: makespan of n uniform tasks of `ops_each` ops:
    /// ceil(n / p) · ops_each, times the contention factor.
    Ticks uniform_level_time(std::uint64_t n_tasks, double ops_each,
                             std::uint64_t working_set_bytes = 0) const noexcept {
        const auto rounds = static_cast<double>(util::ceil_div(n_tasks, params_.p));
        return rounds * ops_each * contention_factor(n_tasks, working_set_bytes);
    }

    /// Multiplier modeling LLC competition between cores (Fig. 8 gap):
    /// 1 + contention · log2(ws / llc) when more than one core is active
    /// and the working set exceeds the cache. 1 otherwise.
    double contention_factor(std::uint64_t n_tasks, std::uint64_t working_set_bytes) const noexcept {
        if (params_.contention <= 0.0 || n_tasks <= 1 || params_.p <= 1) return 1.0;
        if (working_set_bytes <= params_.llc_bytes) return 1.0;
        const double ratio = static_cast<double>(working_set_bytes) /
                             static_cast<double>(params_.llc_bytes);
        return 1.0 + params_.contention * std::log2(ratio);
    }

private:
    CpuParams params_;
    util::ThreadPool* pool_;
    // Per-level scratch, reused across levels so functional execution
    // allocates nothing steady-state (task_ops_ is only touched pooled).
    std::vector<std::uint64_t> costs_;
    std::vector<OpCounter> task_ops_;
};

}  // namespace hpu::sim
