// Per-work-item memory-access recording — the "Full" counterpart of the
// Counts-mode pricing in OpCounter, extended from the AccessTrace idea of
// memory_model.hpp: instead of flat per-step address streams we record the
// read and write *sets* of each work-item of a launch (as arithmetic
// progressions of word indices), which is what the hpu::analysis wave race
// detector consumes. Recording is opt-in and free when disabled: kernels
// call OpCounter::log_read/log_write, which are no-ops unless an
// ItemAccessLog sink is attached (executors attach one per item when
// ExecOptions::validate is on).
#pragma once

#include <cstdint>
#include <vector>

namespace hpu::sim {

/// One recorded access set: the `words` word indices
/// begin, begin + stride, ..., begin + (words-1)·stride.
/// stride == 1 is a contiguous range; larger strides describe the column
/// walks of interleaved layouts (§6.3) exactly, so the race detector does
/// not report false sharing between disjoint columns.
struct MemAccess {
    std::uint64_t begin = 0;
    std::uint64_t words = 0;
    std::uint64_t stride = 1;

    /// Largest word index touched (begin when words <= 1).
    std::uint64_t last() const noexcept {
        return words == 0 ? begin : begin + (words - 1) * stride;
    }
};

/// Read/write sets of one work-item (or one CPU-level task) of a launch.
///
/// Addresses live in a per-launch abstract word-index space chosen by the
/// kernel: offsets into the launch's data span, with algorithm-private
/// scratch storage logged at a disjoint base (see e.g. MergesortCoalesced).
struct ItemAccessLog {
    std::vector<MemAccess> reads;
    std::vector<MemAccess> writes;

    bool empty() const noexcept { return reads.empty() && writes.empty(); }
};

}  // namespace hpu::sim
