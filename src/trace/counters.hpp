// Process-wide counters registry of hpu::trace: cheap monotonic atomics
// incremented by the simulator (kernel launches, waves, transfers) and the
// analysis passes (validation re-executions), independent of whether a
// TraceSession is attached anywhere. Deliberately header-only with no
// dependencies so sim/ and analysis/ can increment counters without a link
// edge back into the trace library.
//
// Counters are process-global and monotonic; consumers interested in one
// run take a snapshot before and after and subtract (see
// CounterSnapshot::operator-).
#pragma once

#include <atomic>
#include <cstdint>

namespace hpu::trace {

/// Plain-data copy of the registry at one instant.
struct CounterSnapshot {
    std::uint64_t kernel_launches = 0;    ///< Device::launch calls
    std::uint64_t waves_launched = 0;     ///< SIMT waves across all launches
    std::uint64_t work_items = 0;         ///< work-items executed on the device
    std::uint64_t cpu_levels = 0;         ///< CpuUnit::run_level calls
    std::uint64_t transfers = 0;          ///< DeviceBuffer copies (either way)
    std::uint64_t words_transferred = 0;  ///< words moved across the link
    std::uint64_t coalesced_transactions = 0;  ///< memory transactions, coalesced
    std::uint64_t strided_transactions = 0;    ///< memory transactions, strided
    std::uint64_t validation_reexecutions = 0; ///< schedule-independence re-runs

    CounterSnapshot operator-(const CounterSnapshot& o) const noexcept {
        CounterSnapshot d;
        d.kernel_launches = kernel_launches - o.kernel_launches;
        d.waves_launched = waves_launched - o.waves_launched;
        d.work_items = work_items - o.work_items;
        d.cpu_levels = cpu_levels - o.cpu_levels;
        d.transfers = transfers - o.transfers;
        d.words_transferred = words_transferred - o.words_transferred;
        d.coalesced_transactions = coalesced_transactions - o.coalesced_transactions;
        d.strided_transactions = strided_transactions - o.strided_transactions;
        d.validation_reexecutions = validation_reexecutions - o.validation_reexecutions;
        return d;
    }
};

/// The live registry. Relaxed ordering everywhere: counters are statistics,
/// not synchronization.
class CounterRegistry {
public:
    std::atomic<std::uint64_t> kernel_launches{0};
    std::atomic<std::uint64_t> waves_launched{0};
    std::atomic<std::uint64_t> work_items{0};
    std::atomic<std::uint64_t> cpu_levels{0};
    std::atomic<std::uint64_t> transfers{0};
    std::atomic<std::uint64_t> words_transferred{0};
    std::atomic<std::uint64_t> coalesced_transactions{0};
    std::atomic<std::uint64_t> strided_transactions{0};
    std::atomic<std::uint64_t> validation_reexecutions{0};

    CounterSnapshot snapshot() const noexcept {
        CounterSnapshot s;
        s.kernel_launches = kernel_launches.load(std::memory_order_relaxed);
        s.waves_launched = waves_launched.load(std::memory_order_relaxed);
        s.work_items = work_items.load(std::memory_order_relaxed);
        s.cpu_levels = cpu_levels.load(std::memory_order_relaxed);
        s.transfers = transfers.load(std::memory_order_relaxed);
        s.words_transferred = words_transferred.load(std::memory_order_relaxed);
        s.coalesced_transactions = coalesced_transactions.load(std::memory_order_relaxed);
        s.strided_transactions = strided_transactions.load(std::memory_order_relaxed);
        s.validation_reexecutions = validation_reexecutions.load(std::memory_order_relaxed);
        return s;
    }
};

/// The one process-wide registry.
inline CounterRegistry& counters() noexcept {
    static CounterRegistry registry;
    return registry;
}

/// Relaxed increment helper (reads as a verb at call sites).
inline void count(std::atomic<std::uint64_t>& c, std::uint64_t by = 1) noexcept {
    c.fetch_add(by, std::memory_order_relaxed);
}

}  // namespace hpu::trace
