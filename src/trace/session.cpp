#include "trace/span.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hpu::trace {

const char* to_string(SpanKind k) noexcept {
    switch (k) {
        case SpanKind::kRun: return "run";
        case SpanKind::kPhase: return "phase";
        case SpanKind::kLevel: return "level";
        case SpanKind::kLeaves: return "leaves";
        case SpanKind::kWave: return "wave";
        case SpanKind::kTransfer: return "transfer";
        case SpanKind::kHook: return "hook";
    }
    return "?";
}

const char* to_string(Unit u) noexcept {
    switch (u) {
        case Unit::kHost: return "host";
        case Unit::kCpu: return "cpu";
        case Unit::kGpu: return "gpu";
        case Unit::kLink: return "link";
    }
    return "?";
}

SpanId TraceSession::record(SpanKind kind, Unit unit, std::string label, sim::Ticks start,
                            sim::Ticks duration, SpanAttrs attrs, SpanId parent) {
    HPU_CHECK(parent <= spans_.size(), "span parent does not exist");
    Span s;
    s.id = static_cast<SpanId>(spans_.size() + 1);
    s.parent = parent;
    s.kind = kind;
    s.unit = unit;
    s.label = std::move(label);
    s.start = start;
    s.end = start + duration;
    s.attrs = attrs;
    spans_.push_back(std::move(s));
    return spans_.back().id;
}

void TraceSession::close(SpanId id, sim::Ticks end) {
    HPU_CHECK(id != kNoSpan && id <= spans_.size(), "closing a span that does not exist");
    spans_[id - 1].end = end;
}

void TraceSession::annotate(SpanId id, const SpanAttrs& attrs) {
    HPU_CHECK(id != kNoSpan && id <= spans_.size(), "annotating a span that does not exist");
    SpanAttrs& a = spans_[id - 1].attrs;
    if (attrs.level != SpanAttrs::kNoLevel) a.level = attrs.level;
    if (attrs.tasks != 0) a.tasks = attrs.tasks;
    if (attrs.items != 0) a.items = attrs.items;
    if (attrs.waves != 0) a.waves = attrs.waves;
    if (attrs.ops != 0.0) a.ops = attrs.ops;
    if (attrs.max_ops != 0.0) a.max_ops = attrs.max_ops;
    if (attrs.work != 0.0) a.work = attrs.work;
    if (attrs.bytes != 0) a.bytes = attrs.bytes;
    if (attrs.coalesced_transactions != 0) {
        a.coalesced_transactions = attrs.coalesced_transactions;
    }
    if (attrs.strided_transactions != 0) a.strided_transactions = attrs.strided_transactions;
    if (attrs.extent_words != 0) a.extent_words = attrs.extent_words;
    if (attrs.imbalance != 0.0) a.imbalance = attrs.imbalance;
}

void TraceSession::annotate_wall(SpanId id, std::uint64_t wall_start_ns,
                                 std::uint64_t wall_ns) {
    HPU_CHECK(id != kNoSpan && id <= spans_.size(), "annotating a span that does not exist");
    spans_[id - 1].wall_start_ns = wall_start_ns;
    spans_[id - 1].wall_ns = wall_ns;
}

std::size_t TraceSession::count(SpanKind kind) const noexcept {
    return static_cast<std::size_t>(
        std::count_if(spans_.begin(), spans_.end(),
                      [kind](const Span& s) { return s.kind == kind; }));
}

sim::Ticks TraceSession::total(SpanKind kind) const noexcept {
    sim::Ticks t = 0.0;
    for (const Span& s : spans_) {
        if (s.kind == kind) t += s.duration();
    }
    return t;
}

sim::Ticks TraceSession::span_end() const noexcept {
    sim::Ticks t = 0.0;
    for (const Span& s : spans_) t = std::max(t, s.end);
    return t;
}

std::vector<SpanId> TraceSession::children(SpanId id) const {
    std::vector<SpanId> out;
    for (const Span& s : spans_) {
        if (s.parent == id) out.push_back(s.id);
    }
    return out;
}

}  // namespace hpu::trace
