// Hierarchical span tracer of hpu::trace — the observability layer that
// supersedes the flat sim::Timeline for "where did the time go" questions.
//
// A TraceSession holds a tree of spans on the virtual clock:
//
//   run ─┬─ phase (cpu-parallel / gpu-phase / finish / ...)
//        │     └─ level / leaves / hook / transfer
//        │            └─ wave (one SIMT wave of a kernel launch)
//        └─ ...
//
// Spans carry structured attributes (unit, global level index, task count,
// work-items, waves, priced ops, bytes moved, transaction counts) from
// which the utilization / model-drift report (utilization.hpp) and the
// exporters (export.hpp) are derived.
//
// Discipline (same as hpu::analysis): recording is strictly off the
// virtual-clock critical path. Executors compute their tick arithmetic
// first and hand *finished* numbers to the tracer; attaching or detaching a
// session can never change an ExecReport tick (enforced by test).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/params.hpp"

namespace hpu::trace {

enum class SpanKind : std::uint8_t {
    kRun,       ///< one executor invocation (a root span)
    kPhase,     ///< a scheduler phase (cpu-parallel, gpu-phase, finish, ...)
    kLevel,     ///< one recursion-tree level executed on one unit
    kLeaves,    ///< a leaf sweep at the bottom of (a slice of) the tree
    kWave,      ///< one SIMT wave of a device kernel launch
    kTransfer,  ///< one CPU<->GPU link transfer
    kHook,      ///< a device-side hook (layout permutation, ping-pong flip)
};

/// Which part of the HPU a span occupied.
enum class Unit : std::uint8_t {
    kHost,  ///< whole-machine / bookkeeping (run roots, host pre-passes)
    kCpu,   ///< the p-core CPU unit
    kGpu,   ///< the device
    kLink,  ///< the CPU<->GPU link
};

const char* to_string(SpanKind k) noexcept;
const char* to_string(Unit u) noexcept;

/// Structured span attributes. Zero-initialized fields mean "not set";
/// `level` uses kNoLevel as its sentinel because level 0 (the root) is a
/// meaningful index.
struct SpanAttrs {
    static constexpr std::uint64_t kNoLevel = ~std::uint64_t{0};

    std::uint64_t level = kNoLevel;  ///< global recursion-tree level (kLevel)
    std::uint64_t tasks = 0;         ///< tasks of a level / leaves of a sweep
    std::uint64_t items = 0;         ///< work-items (launches/waves), words (transfers)
    std::uint64_t waves = 0;         ///< SIMT waves of a launch
    double ops = 0.0;                ///< unit-priced ops charged in this span
    /// Largest single-item (GPU) / single-task (CPU) unit-priced op count in
    /// this span. On a wave span, duration == max_ops / gamma exactly, which
    /// is what lets obs::estimate re-fit gamma from non-uniform kernels
    /// without bias (mean ops/items would under-estimate it).
    double max_ops = 0.0;
    double work = 0.0;               ///< CPU-normalized ops (the paper's work units)
    std::uint64_t bytes = 0;         ///< payload bytes (transfers)
    std::uint64_t coalesced_transactions = 0;  ///< memory transactions, coalesced
    std::uint64_t strided_transactions = 0;    ///< memory transactions, strided
    /// Irregular-tree shape of a dynamic level (core/irregular.hpp): words
    /// covered by the level part's task extents, and the level's extent
    /// skew (max/mean non-empty task extent; 1.0 = regular, 0 = not set).
    /// Regular executors never set these — utilization and obs reports use
    /// them to explain uneven trees.
    std::uint64_t extent_words = 0;
    double imbalance = 0.0;
};

/// 1-based handle into TraceSession::spans(); 0 = "no span".
using SpanId = std::uint32_t;
inline constexpr SpanId kNoSpan = 0;

struct Span {
    SpanId id = kNoSpan;
    SpanId parent = kNoSpan;
    SpanKind kind = SpanKind::kRun;
    Unit unit = Unit::kHost;
    std::string label;
    sim::Ticks start = 0.0;
    sim::Ticks end = 0.0;
    SpanAttrs attrs;
    /// Wall-clock attribution (ExecOptions::profile; see metrics/profile.hpp).
    /// Raw util::now_ns() values — only differences are meaningful; 0 means
    /// "not profiled". Strictly observational: the virtual fields above are
    /// byte-identical whether profiling is on or off (enforced by test).
    std::uint64_t wall_start_ns = 0;
    std::uint64_t wall_ns = 0;

    sim::Ticks duration() const noexcept { return end - start; }
};

/// One trace: an append-only span tree. Sessions are reusable across
/// several executor runs (each run adds its own root span); they are not
/// thread-safe — one session per driving thread.
class TraceSession {
public:
    /// Records a completed span of `duration` starting at `start`.
    SpanId record(SpanKind kind, Unit unit, std::string label, sim::Ticks start,
                  sim::Ticks duration, SpanAttrs attrs = {}, SpanId parent = kNoSpan);

    /// Extends an already recorded span (used for run/phase roots whose end
    /// is only known after their children).
    void close(SpanId id, sim::Ticks end);

    /// Merges additional attributes into a recorded span (non-zero /
    /// non-sentinel fields win).
    void annotate(SpanId id, const SpanAttrs& attrs);

    /// Attaches wall-clock attribution to a recorded span (profiling only;
    /// never touches the virtual start/end fields).
    void annotate_wall(SpanId id, std::uint64_t wall_start_ns, std::uint64_t wall_ns);

    const std::vector<Span>& spans() const noexcept { return spans_; }
    const Span& span(SpanId id) const { return spans_.at(id - 1); }
    bool empty() const noexcept { return spans_.empty(); }

    std::size_t count(SpanKind kind) const noexcept;
    /// Sum of durations of all spans of `kind` (children double-count their
    /// parents by design — filter by kind).
    sim::Ticks total(SpanKind kind) const noexcept;
    /// Latest span end (0 when empty).
    sim::Ticks span_end() const noexcept;

    /// Direct children of `id` (kNoSpan = the roots), in recording order.
    std::vector<SpanId> children(SpanId id) const;

    void clear() noexcept { spans_.clear(); }

private:
    std::vector<Span> spans_;
};

}  // namespace hpu::trace
