#include "trace/utilization.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>

#include "obs/estimate.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

namespace hpu::trace {
namespace {

/// Work spans are the ones that occupy a unit for their duration: levels,
/// leaf sweeps, hooks, and transfers. Run/phase spans group them; wave
/// spans are contained in their level span.
bool is_work_span(const Span& s) noexcept {
    return s.kind == SpanKind::kLevel || s.kind == SpanKind::kLeaves ||
           s.kind == SpanKind::kHook || s.kind == SpanKind::kTransfer;
}

}  // namespace

UtilizationReport derive_utilization(const TraceSession& session, const sim::HpuParams& hw,
                                     const model::Recurrence& rec,
                                     double device_ops_multiplier) {
    UtilizationReport rep;
    const auto& spans = session.spans();
    if (spans.empty()) return rep;

    // Traced interval and per-span root (parents precede children, so one
    // forward pass resolves the chains).
    sim::Ticks lo = spans.front().start, hi = spans.front().end;
    std::vector<SpanId> root_of(spans.size() + 1, kNoSpan);
    for (const Span& s : spans) {
        lo = std::min(lo, s.start);
        hi = std::max(hi, s.end);
        root_of[s.id] = s.parent == kNoSpan ? s.id : root_of[s.parent];
    }
    rep.interval = hi - lo;

    UnitUtilization cpu{Unit::kCpu, 0, 0, 0, 0}, gpu{Unit::kGpu, 0, 0, 0, 0},
        link{Unit::kLink, 0, 0, 0, 0};
    double wave_time = 0.0, wave_lane_time = 0.0;
    double level_wave_time = 0.0, level_lane_time = 0.0;
    double words = 0.0;
    std::map<std::uint64_t, LevelDrift> by_level;

    for (const Span& s : spans) {
        if (s.kind == SpanKind::kWave) {
            wave_time += s.duration();
            wave_lane_time += s.duration() * static_cast<double>(s.attrs.items) /
                              static_cast<double>(hw.gpu.g);
            continue;
        }
        if (!is_work_span(s)) continue;
        UnitUtilization* u = nullptr;
        switch (s.unit) {
            case Unit::kCpu: u = &cpu; break;
            case Unit::kGpu: u = &gpu; break;
            case Unit::kLink: u = &link; break;
            case Unit::kHost: u = &cpu; break;  // host pre-passes occupy the CPU
        }
        u->busy += s.duration();
        u->work += s.attrs.work;
        if (s.kind == SpanKind::kTransfer) {
            ++rep.transfers;
            words += static_cast<double>(s.attrs.items);
        }
        if (s.kind == SpanKind::kLevel || s.kind == SpanKind::kLeaves) {
            // Analytic runs have no wave spans; levels still know their
            // item/wave counts, giving a coarser occupancy estimate.
            if (s.unit == Unit::kGpu && s.attrs.waves > 0) {
                level_wave_time += s.duration();
                level_lane_time += s.duration() * static_cast<double>(s.attrs.items) /
                                   (static_cast<double>(s.attrs.waves) *
                                    static_cast<double>(hw.gpu.g));
            }
            const double n = static_cast<double>(session.span(root_of[s.id]).attrs.items);
            LevelDrift& d = by_level[s.attrs.level];
            d.level = s.attrs.level;
            (s.unit == Unit::kGpu ? d.on_gpu : d.on_cpu) = true;
            d.tasks += s.attrs.tasks;
            d.observed += s.duration();
            d.predicted += obs::price_level_span(s, n, hw, rec, device_ops_multiplier);
        }
    }

    for (UnitUtilization* u : {&cpu, &gpu, &link}) {
        u->idle = std::max(0.0, rep.interval - u->busy);
        u->utilization = rep.interval > 0.0 ? u->busy / rep.interval : 0.0;
    }
    rep.units = {cpu, gpu, link};

    rep.gpu_lane_occupancy = wave_time > 0.0 ? wave_lane_time / wave_time
                             : level_wave_time > 0.0 ? level_lane_time / level_wave_time
                                                     : 0.0;
    rep.link_utilization = link.utilization;
    rep.effective_bandwidth = link.busy > 0.0 ? words / link.busy : 0.0;
    rep.peak_bandwidth = hw.link.delta > 0.0 ? 1.0 / hw.link.delta : 0.0;
    const double total_work = cpu.work + gpu.work;
    rep.gpu_work_share = total_work > 0.0 ? gpu.work / total_work : 0.0;

    // Execution order (bottom-up): the leaf sweep first, then levels
    // deepest-first — kNoLevel is the largest uint64, so reverse numeric
    // order does both.
    for (const auto& [level, drift] : by_level) rep.levels.push_back(drift);
    std::sort(rep.levels.begin(), rep.levels.end(),
              [](const LevelDrift& a, const LevelDrift& b) { return a.level > b.level; });
    for (LevelDrift& d : rep.levels) d.drift = obs::drift_ratio(d.observed, d.predicted);
    return rep;
}

void UtilizationReport::print(std::ostream& os) const {
    util::Table units_t({"unit", "busy", "idle", "utilization", "work"}, 4);
    for (const UnitUtilization& u : units) {
        units_t.add_row({std::string(to_string(u.unit)), u.busy, u.idle, u.utilization,
                         u.work});
    }
    units_t.print(os);
    os << "gpu lane occupancy: " << gpu_lane_occupancy
       << "   gpu work share: " << gpu_work_share << "   transfers: " << transfers;
    if (peak_bandwidth > 0.0) {
        os << "   link bandwidth: " << effective_bandwidth << " / " << peak_bandwidth
           << " words per tick";
    }
    os << "\n\n";
    util::Table drift_t({"level", "units", "tasks", "observed", "predicted", "drift"}, 4);
    for (const LevelDrift& d : levels) {
        const std::string where = d.on_cpu && d.on_gpu ? "cpu+gpu" : d.on_gpu ? "gpu" : "cpu";
        drift_t.add_row({d.level == SpanAttrs::kNoLevel
                             ? std::string("leaves")
                             : std::to_string(d.level),
                         where, static_cast<std::int64_t>(d.tasks), d.observed, d.predicted,
                         d.drift});
    }
    drift_t.print(os);
}

std::string UtilizationReport::summary() const {
    std::ostringstream os;
    print(os);
    return os.str();
}

}  // namespace hpu::trace
