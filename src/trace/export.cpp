#include "trace/export.hpp"

#include <fstream>
#include <limits>
#include <ostream>

namespace hpu::trace {
namespace {

/// Escapes a string for a JSON literal (labels are plain ASCII, but be
/// safe about quotes/backslashes/control characters).
std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

/// Track id per unit: stable small integers so Perfetto groups slices.
int track_of(Unit u) noexcept {
    switch (u) {
        case Unit::kHost: return 0;
        case Unit::kCpu: return 1;
        case Unit::kGpu: return 2;
        case Unit::kLink: return 3;
    }
    return 0;
}

/// Earliest wall-annotated start in the session, used to rebase the raw
/// steady-clock values to small session-relative offsets at export time.
std::uint64_t wall_epoch_of(const TraceSession& session) noexcept {
    std::uint64_t epoch = ~std::uint64_t{0};
    for (const Span& s : session.spans()) {
        if (s.wall_ns != 0 && s.wall_start_ns < epoch) epoch = s.wall_start_ns;
    }
    return epoch == ~std::uint64_t{0} ? 0 : epoch;
}

using ExtraArgs = std::vector<std::pair<std::string, double>>;

void write_args(std::ostream& os, const Span& s, std::uint64_t wall_epoch,
                const ExtraArgs* extra = nullptr) {
    os << "{\"kind\":\"" << to_string(s.kind) << "\",\"span_id\":" << s.id
       << ",\"parent\":" << s.parent;
    if (s.wall_ns != 0) {
        os << ",\"wall_start_ns\":" << (s.wall_start_ns - wall_epoch)
           << ",\"wall_ns\":" << s.wall_ns;
    }
    if (s.attrs.level != SpanAttrs::kNoLevel) os << ",\"level\":" << s.attrs.level;
    if (s.attrs.tasks != 0) os << ",\"tasks\":" << s.attrs.tasks;
    if (s.attrs.items != 0) os << ",\"items\":" << s.attrs.items;
    if (s.attrs.waves != 0) os << ",\"waves\":" << s.attrs.waves;
    if (s.attrs.ops != 0.0) os << ",\"ops\":" << s.attrs.ops;
    if (s.attrs.max_ops != 0.0) os << ",\"max_ops\":" << s.attrs.max_ops;
    if (s.attrs.work != 0.0) os << ",\"work\":" << s.attrs.work;
    if (s.attrs.bytes != 0) os << ",\"bytes\":" << s.attrs.bytes;
    if (s.attrs.coalesced_transactions != 0) {
        os << ",\"coalesced_transactions\":" << s.attrs.coalesced_transactions;
    }
    if (s.attrs.strided_transactions != 0) {
        os << ",\"strided_transactions\":" << s.attrs.strided_transactions;
    }
    if (s.attrs.extent_words != 0) os << ",\"extent_words\":" << s.attrs.extent_words;
    if (s.attrs.imbalance != 0.0) os << ",\"imbalance\":" << s.attrs.imbalance;
    if (extra != nullptr) {
        for (const auto& [key, value] : *extra) {
            os << ",\"" << json_escape(key) << "\":" << value;
        }
    }
    os << "}";
}

}  // namespace

void export_chrome(const TraceSession& session, std::ostream& os) {
    export_chrome(session, os, ChromeExtras{});
}

void export_chrome(const TraceSession& session, std::ostream& os,
                   const ChromeExtras& extras) {
    // Full double precision so a re-imported trace (obs/trace_io.hpp) is
    // bit-faithful to the session it came from — a file diffed against
    // itself must be exactly empty.
    const auto prec = os.precision(std::numeric_limits<double>::max_digits10);
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    // Track-name metadata so Perfetto shows cpu/gpu/link instead of bare
    // tids.
    for (Unit u : {Unit::kHost, Unit::kCpu, Unit::kGpu, Unit::kLink}) {
        if (!first) os << ",";
        first = false;
        os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":" << track_of(u)
           << ",\"args\":{\"name\":\"" << to_string(u) << "\"}}";
    }
    const std::uint64_t wall_epoch = wall_epoch_of(session);
    for (const Span& s : session.spans()) {
        const ExtraArgs* extra = nullptr;
        if (!extras.span_args.empty()) {
            auto it = extras.span_args.find(s.id);
            if (it != extras.span_args.end()) extra = &it->second;
        }
        os << ",{\"ph\":\"X\",\"name\":\"" << json_escape(s.label) << "\",\"cat\":\""
           << to_string(s.kind) << "\",\"pid\":0,\"tid\":" << track_of(s.unit)
           << ",\"ts\":" << s.start << ",\"dur\":" << s.duration() << ",\"args\":";
        write_args(os, s, wall_epoch, extra);
        os << "}";
    }
    // Flow arrows from span end to span start: Perfetto draws them as
    // connected arrows when the "s"/"f" pair shares an id. Span ids out of
    // range are skipped rather than asserted — extras may outlive a
    // cleared session.
    int flow_id = 0;
    for (const auto& [from_id, to_id] : extras.flows) {
        if (from_id == kNoSpan || to_id == kNoSpan) continue;
        if (from_id > session.spans().size() || to_id > session.spans().size()) continue;
        const Span& from = session.span(from_id);
        const Span& to = session.span(to_id);
        ++flow_id;
        os << ",{\"ph\":\"s\",\"cat\":\"" << json_escape(extras.flow_cat)
           << "\",\"name\":\"" << json_escape(extras.flow_name) << "\",\"id\":" << flow_id
           << ",\"pid\":0,\"tid\":" << track_of(from.unit) << ",\"ts\":" << from.end
           << ",\"args\":{\"span_id\":" << from.id << "}}";
        os << ",{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"" << json_escape(extras.flow_cat)
           << "\",\"name\":\"" << json_escape(extras.flow_name) << "\",\"id\":" << flow_id
           << ",\"pid\":0,\"tid\":" << track_of(to.unit) << ",\"ts\":" << to.start
           << ",\"args\":{\"span_id\":" << to.id << "}}";
    }
    os << "]}\n";
    os.precision(prec);
}

void export_csv(const TraceSession& session, std::ostream& os) {
    const auto prec = os.precision(std::numeric_limits<double>::max_digits10);
    os << "id,parent,kind,unit,label,start,end,duration,level,tasks,items,waves,ops,"
          "max_ops,work,bytes,coalesced_transactions,strided_transactions,extent_words,"
          "imbalance,wall_start_ns,wall_ns\n";
    const std::uint64_t wall_epoch = wall_epoch_of(session);
    for (const Span& s : session.spans()) {
        // Labels follow the launch-label scheme (no commas/quotes), so no
        // CSV quoting is needed; assert-by-construction keeps this simple.
        os << s.id << ',' << s.parent << ',' << to_string(s.kind) << ',' << to_string(s.unit)
           << ',' << s.label << ',' << s.start << ',' << s.end << ',' << s.duration() << ',';
        if (s.attrs.level != SpanAttrs::kNoLevel) os << s.attrs.level;
        os << ',' << s.attrs.tasks << ',' << s.attrs.items << ',' << s.attrs.waves << ','
           << s.attrs.ops << ',' << s.attrs.max_ops << ',' << s.attrs.work << ','
           << s.attrs.bytes << ','
           << s.attrs.coalesced_transactions << ',' << s.attrs.strided_transactions << ','
           << s.attrs.extent_words << ',' << s.attrs.imbalance << ',';
        if (s.wall_ns != 0) os << (s.wall_start_ns - wall_epoch) << ',' << s.wall_ns;
        else os << "0,0";
        os << '\n';
    }
    os.precision(prec);
}

bool write_chrome_file(const TraceSession& session, const std::string& path) {
    return write_chrome_file(session, path, ChromeExtras{});
}

bool write_chrome_file(const TraceSession& session, const std::string& path,
                       const ChromeExtras& extras) {
    std::ofstream f(path);
    if (!f) return false;
    export_chrome(session, f, extras);
    return static_cast<bool>(f);
}

bool write_csv_file(const TraceSession& session, const std::string& path) {
    std::ofstream f(path);
    if (!f) return false;
    export_csv(session, f);
    return static_cast<bool>(f);
}

}  // namespace hpu::trace
