// Utilization and model-drift analysis derived from a TraceSession span
// tree — the per-level observability the paper's evaluation reasons with:
// busy/idle per unit (is the CPU ever idle under the advanced scheduler?),
// GPU lane occupancy (busy lanes / g per wave, the §6.4 saturation view),
// link utilization and effective bandwidth, and a per-level drift column
// that prices each executed level through the hpu::model cost model and
// reports observed / predicted — the Fig. 8/10 measured-vs-predicted gap,
// visible per level instead of end-to-end.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "model/recurrence.hpp"
#include "sim/params.hpp"
#include "trace/span.hpp"

namespace hpu::trace {

/// Busy/idle accounting for one unit over the traced interval.
struct UnitUtilization {
    Unit unit = Unit::kCpu;
    sim::Ticks busy = 0.0;      ///< summed work-span durations on this unit
    sim::Ticks idle = 0.0;      ///< traced interval minus busy
    double utilization = 0.0;   ///< busy / traced interval
    double work = 0.0;          ///< CPU-normalized ops completed on this unit
};

/// Observed-vs-predicted drift of one recursion-tree level (possibly
/// aggregated over several spans: CPU slice + GPU slice + finish phase).
struct LevelDrift {
    std::uint64_t level = SpanAttrs::kNoLevel;  ///< kNoLevel = the leaf sweep
    bool on_cpu = false;         ///< some span of this level ran on the CPU
    bool on_gpu = false;         ///< some span of this level ran on the GPU
    std::uint64_t tasks = 0;     ///< tasks executed (summed over spans)
    sim::Ticks observed = 0.0;   ///< summed span durations
    sim::Ticks predicted = 0.0;  ///< summed hpu::model prices
    double drift = 0.0;          ///< observed / predicted (1 = model-exact)
};

/// The derived report. All quantities come from span data alone (plus the
/// machine parameters and recurrence needed to price the model side).
struct UtilizationReport {
    sim::Ticks interval = 0.0;        ///< traced interval (first start..last end)
    std::vector<UnitUtilization> units;  ///< cpu, gpu, link (in that order)
    double gpu_lane_occupancy = 0.0;  ///< time-weighted busy lanes / g
    double link_utilization = 0.0;    ///< link busy / interval
    double effective_bandwidth = 0.0; ///< words per tick while transferring
    double peak_bandwidth = 0.0;      ///< 1 / delta (0 when the link is free)
    double gpu_work_share = 0.0;      ///< GPU work / total work (paper's W_g share)
    std::uint64_t transfers = 0;      ///< transfer spans seen
    std::vector<LevelDrift> levels;   ///< execution order: leaves, then deepest level first

    /// Aligned tables (units + per-level drift) and the headline scalars.
    void print(std::ostream& os) const;
    std::string summary() const;
};

/// Derives the report. `rec` and `device_ops_multiplier` must describe the
/// algorithm that produced the trace (LevelAlgorithm::recurrence() /
/// ::device_ops_multiplier()); `hw` the machine it ran on. The input size n
/// is taken from the run root's `items` attribute.
UtilizationReport derive_utilization(const TraceSession& session, const sim::HpuParams& hw,
                                     const model::Recurrence& rec,
                                     double device_ops_multiplier = 1.0);

}  // namespace hpu::trace
