// Exporters for TraceSession span trees.
//
//  * Chrome trace-event JSON ("JSON Array Format" with a traceEvents
//    wrapper) — loads directly in Perfetto / chrome://tracing. Units map to
//    tracks (tid): concurrent CPU and GPU spans of the advanced hybrid
//    render as overlapping slices on separate tracks, and the two link
//    transfers appear as exactly two slices on the link track. Virtual
//    ticks are emitted as microseconds verbatim (the clock is virtual
//    anyway; only ratios matter).
//  * CSV — one row per span with all structured attributes, for ad-hoc
//    analysis in a spreadsheet or pandas.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/span.hpp"

namespace hpu::trace {

/// Writes the session as Chrome trace-event JSON.
void export_chrome(const TraceSession& session, std::ostream& os);

/// Writes the session as CSV (header + one row per span).
void export_csv(const TraceSession& session, std::ostream& os);

/// Convenience: export_chrome into a file. Returns false (and writes
/// nothing) when the file cannot be opened.
bool write_chrome_file(const TraceSession& session, const std::string& path);

/// Convenience: export_csv into a file.
bool write_csv_file(const TraceSession& session, const std::string& path);

}  // namespace hpu::trace
