// Exporters for TraceSession span trees.
//
//  * Chrome trace-event JSON ("JSON Array Format" with a traceEvents
//    wrapper) — loads directly in Perfetto / chrome://tracing. Units map to
//    tracks (tid): concurrent CPU and GPU spans of the advanced hybrid
//    render as overlapping slices on separate tracks, and the two link
//    transfers appear as exactly two slices on the link track. Virtual
//    ticks are emitted as microseconds verbatim (the clock is virtual
//    anyway; only ratios matter).
//  * CSV — one row per span with all structured attributes, for ad-hoc
//    analysis in a spreadsheet or pandas.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "trace/span.hpp"

namespace hpu::trace {

/// Optional decorations merged into a Chrome export: extra numeric args on
/// selected spans, plus flow arrows ("s"/"f" event pairs) drawn between span
/// endpoints. Used by obs::critpath to highlight the critical path as a
/// connected flow in chrome://tracing / Perfetto. Re-import (obs/trace_io)
/// skips flow events and unknown arg keys, so a decorated file round-trips
/// to the same session as an undecorated one.
struct ChromeExtras {
    /// Extra args appended to a span's "args" object, in the given order.
    std::map<SpanId, std::vector<std::pair<std::string, double>>> span_args;
    /// Flow arrows from the first span's end to the second span's start.
    std::vector<std::pair<SpanId, SpanId>> flows;
    std::string flow_cat = "critpath";
    std::string flow_name = "critical-path";

    bool empty() const noexcept { return span_args.empty() && flows.empty(); }
};

/// Writes the session as Chrome trace-event JSON.
void export_chrome(const TraceSession& session, std::ostream& os);

/// Writes the session as Chrome trace-event JSON with extra per-span args
/// and flow arrows.
void export_chrome(const TraceSession& session, std::ostream& os,
                   const ChromeExtras& extras);

/// Writes the session as CSV (header + one row per span).
void export_csv(const TraceSession& session, std::ostream& os);

/// Convenience: export_chrome into a file. Returns false (and writes
/// nothing) when the file cannot be opened.
bool write_chrome_file(const TraceSession& session, const std::string& path);

/// Convenience: decorated export_chrome into a file.
bool write_chrome_file(const TraceSession& session, const std::string& path,
                       const ChromeExtras& extras);

/// Convenience: export_csv into a file.
bool write_csv_file(const TraceSession& session, const std::string& path);

}  // namespace hpu::trace
