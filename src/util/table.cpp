#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace hpu::util {

Table::Table(std::vector<std::string> headers, int precision)
    : headers_(std::move(headers)), precision_(precision) {
    HPU_CHECK(!headers_.empty(), "table needs at least one column");
}

Table& Table::add_row(std::vector<Cell> row) {
    HPU_CHECK(row.size() == headers_.size(), "row width must match header count");
    rows_.push_back(std::move(row));
    return *this;
}

std::string Table::render(const Cell& c) const {
    std::ostringstream os;
    if (const auto* s = std::get_if<std::string>(&c)) {
        os << *s;
    } else if (const auto* i = std::get_if<std::int64_t>(&c)) {
        os << *i;
    } else {
        os << std::fixed << std::setprecision(precision_) << std::get<double>(c);
    }
    return os.str();
}

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t j = 0; j < headers_.size(); ++j) width[j] = headers_[j].size();
    std::vector<std::vector<std::string>> rendered;
    rendered.reserve(rows_.size());
    for (const auto& row : rows_) {
        std::vector<std::string> r;
        r.reserve(row.size());
        for (std::size_t j = 0; j < row.size(); ++j) {
            r.push_back(render(row[j]));
            width[j] = std::max(width[j], r.back().size());
        }
        rendered.push_back(std::move(r));
    }
    auto line = [&](const std::vector<std::string>& cells) {
        for (std::size_t j = 0; j < cells.size(); ++j) {
            os << (j ? "  " : "") << std::setw(static_cast<int>(width[j])) << cells[j];
        }
        os << '\n';
    };
    line(headers_);
    std::size_t total = 0;
    for (std::size_t j = 0; j < width.size(); ++j) total += width[j] + (j ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto& r : rendered) line(r);
}

void Table::print_csv(std::ostream& os) const {
    auto csv_line = [&](const std::vector<std::string>& cells) {
        for (std::size_t j = 0; j < cells.size(); ++j) os << (j ? "," : "") << cells[j];
        os << '\n';
    };
    csv_line(headers_);
    for (const auto& row : rows_) {
        std::vector<std::string> r;
        r.reserve(row.size());
        for (const auto& c : row) r.push_back(render(c));
        csv_line(r);
    }
}

}  // namespace hpu::util
