// A fixed-size thread pool used for the *functional* execution of CPU-side
// tasks (the virtual clock handles performance accounting separately; see
// sim/cpu_unit.hpp). The pool supports bulk parallel-for submission, which is
// the only pattern the breadth-first executors need: run m independent tasks
// of one recursion-tree level, then barrier.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace hpu::util {

class ThreadPool {
public:
    /// Creates `workers` threads. workers == 0 means "run inline on the
    /// caller" — useful on single-core hosts and in unit tests that want
    /// deterministic single-threaded execution.
    explicit ThreadPool(std::size_t workers);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;
    ~ThreadPool();

    std::size_t worker_count() const noexcept { return threads_.size(); }

    /// Runs fn(i) for i in [0, count) across the pool and blocks until all
    /// complete. Rethrows the first task exception on the caller.
    void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

private:
    struct Batch {
        std::size_t count = 0;
        const std::function<void(std::size_t)>* fn = nullptr;
        std::size_t next = 0;       // next index to claim
        std::size_t done = 0;       // completed indices
        std::exception_ptr error;   // first failure
    };

    void worker_loop();
    // Claims and runs indices from the current batch until exhausted.
    void drain_batch(std::unique_lock<std::mutex>& lock);

    std::vector<std::thread> threads_;
    std::mutex mu_;
    std::condition_variable work_cv_;   // signals workers: batch available / shutdown
    std::condition_variable done_cv_;   // signals submitter: batch complete
    Batch* batch_ = nullptr;            // non-null while a batch is in flight
    bool stop_ = false;
};

}  // namespace hpu::util
