// A fixed-size thread pool used for the *functional* execution of CPU-side
// tasks and simulated GPU waves (the virtual clock handles performance
// accounting separately; see sim/cpu_unit.hpp and sim/device.hpp). The pool
// supports bulk parallel-for submission, which is the only pattern the
// breadth-first executors need: run m independent tasks of one recursion-
// tree level, then barrier.
//
// Work distribution is chunked claiming (the XKaapi-style steal-half idea
// collapsed to its essential: grab a contiguous index range with one atomic
// bump, not one index per mutex round-trip). A batch carries a single
// type-erased range invoker, so submitting N tasks costs one allocation-free
// function-pointer call per claimed chunk instead of N std::function
// dispatches. Workers and the submitting caller all claim chunks from the
// same atomic cursor; the mutex is only touched at chunk completion for the
// done/error accounting.
//
// Wall-clock telemetry: every participant (worker threads plus the
// submitting caller) accounts its busy time per claimed chunk, workers
// additionally account their idle (condition-wait) time, and two
// Log2Histograms record the claim-size and submit-to-first-claim-latency
// distributions. The accounting is always on — two now_ns() reads and a
// handful of relaxed atomic adds per grain-sized chunk — and is read out
// with telemetry() / reset_telemetry(). It observes the wall clock only;
// the virtual clock and the functional results are untouched (the
// pooled-vs-inline determinism sweep enforces that bit for bit).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/check.hpp"
#include "util/histogram.hpp"

namespace hpu::util {

/// Wall-clock account of one pool participant over the telemetry window.
struct PoolWorkerStats {
    std::uint64_t busy_ns = 0;   ///< time spent executing claimed chunks
    std::uint64_t idle_ns = 0;   ///< time spent waiting for work (workers only)
    std::uint64_t chunks = 0;    ///< chunks claimed and executed
    std::uint64_t indices = 0;   ///< indices executed across those chunks
};

/// Snapshot of the pool's telemetry since construction or the last
/// reset_telemetry(). Slots 0..workers-1 are the worker threads; the last
/// slot is the submitting caller, which drains chunks alongside them but
/// has no pool-idle account (it owns the batch and waits on completion,
/// not on work).
struct PoolTelemetry {
    std::size_t workers = 0;
    std::uint64_t window_ns = 0;  ///< wall time covered by this snapshot
    std::uint64_t batches = 0;    ///< parallel_for submissions in the window
    std::vector<PoolWorkerStats> per_worker;  ///< size workers + 1 (last = caller)
    HistogramSnapshot claim_size;         ///< indices per executed chunk
    HistogramSnapshot submit_latency_ns;  ///< submit -> participant's first claim

    /// Summed busy ns of the worker threads (caller slot excluded).
    std::uint64_t worker_busy_ns() const noexcept {
        std::uint64_t t = 0;
        for (std::size_t i = 0; i < workers && i < per_worker.size(); ++i) {
            t += per_worker[i].busy_ns;
        }
        return t;
    }
    /// Summed idle ns of the worker threads (caller slot excluded).
    std::uint64_t worker_idle_ns() const noexcept {
        std::uint64_t t = 0;
        for (std::size_t i = 0; i < workers && i < per_worker.size(); ++i) {
            t += per_worker[i].idle_ns;
        }
        return t;
    }
    /// (busy + idle) / (workers × window): how much of the workers' wall
    /// time the two accounts explain. The gap is pool overhead (claim
    /// loop, completion bookkeeping); ≈ 1 on a healthy pool.
    double accounted_share() const noexcept {
        if (workers == 0 || window_ns == 0) return 1.0;
        return static_cast<double>(worker_busy_ns() + worker_idle_ns()) /
               (static_cast<double>(workers) * static_cast<double>(window_ns));
    }
};

class ThreadPool {
public:
    /// Creates `workers` threads. workers == 0 means "run inline on the
    /// caller" — useful on single-core hosts and in unit tests that want
    /// deterministic single-threaded execution.
    explicit ThreadPool(std::size_t workers);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;
    ~ThreadPool();

    std::size_t worker_count() const noexcept { return threads_.size(); }

    /// True while a parallel_for batch is in flight. Task bodies consult
    /// this (via util::merge_parts) before splitting their own work across
    /// the pool: submitting from inside a batch is not allowed, so a
    /// mid-batch caller must fall back to its serial path.
    bool in_batch() const noexcept { return in_batch_.load(std::memory_order_relaxed); }

    /// Runs fn(i) for i in [0, count) across the pool and blocks until all
    /// complete. Rethrows the first task exception on the caller (later
    /// chunks are skipped once a failure is recorded; chunks already
    /// claimed still finish). Not reentrant: a task calling parallel_for
    /// on the same (non-inline) pool throws HpuError.
    ///
    /// `grain` is the number of indices handed out per atomic claim;
    /// 0 picks one automatically from count and the worker count (tiny
    /// levels floor at 1 index per chunk, so a level of two huge tasks
    /// still runs two-way parallel).
    template <typename Fn>
    void parallel_for(std::size_t count, Fn&& fn, std::size_t grain = 0) {
        if (count == 0) return;
        if (threads_.empty()) {
            for (std::size_t i = 0; i < count; ++i) fn(i);
            return;
        }
        auto* body = std::addressof(fn);
        run_batch(
            count, grain,
            [](void* ctx, std::size_t begin, std::size_t end) {
                auto& f = *static_cast<std::remove_reference_t<Fn>*>(ctx);
                for (std::size_t i = begin; i < end; ++i) f(i);
            },
            const_cast<void*>(static_cast<const void*>(body)));
    }

    /// Snapshot of the wall-clock telemetry accumulated since construction
    /// or the last reset_telemetry(). Consistent when the pool is quiescent
    /// (no batch in flight); during a batch the relaxed counters may be
    /// mid-update but never torn. A zero-worker pool runs inline and
    /// collects nothing (workers == 0, empty per-worker stats).
    PoolTelemetry telemetry() const;

    /// Zeroes all telemetry and restarts the window clock. Call between
    /// batches (not concurrently with parallel_for).
    void reset_telemetry();

private:
    /// Type-erased "run indices [begin, end)" callback of one batch.
    using RangeFn = void (*)(void* ctx, std::size_t begin, std::size_t end);

    struct Batch {
        std::size_t count = 0;
        std::size_t grain = 1;
        RangeFn invoke = nullptr;
        void* ctx = nullptr;
        std::uint64_t submit_ns = 0;          // now_ns() at submission
        std::atomic<std::size_t> cursor{0};   // next index range to claim
        std::atomic<bool> abandon{false};     // a failure was recorded
        std::size_t done = 0;                 // completed indices (guarded by mu_)
        std::size_t active = 0;               // workers inside drain (guarded by mu_)
        std::exception_ptr error;             // first failure (guarded by mu_)
    };

    /// One participant's telemetry slot. Written with relaxed atomics by
    /// its owning thread only; read by telemetry().
    struct Slot {
        std::atomic<std::uint64_t> busy_ns{0};
        std::atomic<std::uint64_t> idle_ns{0};
        std::atomic<std::uint64_t> chunks{0};
        std::atomic<std::uint64_t> indices{0};
        /// now_ns() when this worker parked on the work condition (0 = not
        /// parked). Lets telemetry() count an in-progress wait and lets a
        /// wait spanning reset_telemetry() be clipped to the window.
        std::atomic<std::uint64_t> wait_since_ns{0};
    };

    void worker_loop(std::size_t slot);
    // Claims and runs grain-sized chunks until the cursor is exhausted,
    // accounting busy time into `slot`.
    void drain_batch(Batch& b, std::size_t slot);
    // Submits a batch, participates in draining it, waits for completion.
    void run_batch(std::size_t count, std::size_t grain, RangeFn invoke, void* ctx);

    std::vector<std::thread> threads_;
    std::mutex mu_;
    std::condition_variable work_cv_;   // signals workers: batch available / shutdown
    std::condition_variable done_cv_;   // signals submitter: batch complete
    Batch* batch_ = nullptr;            // non-null while a batch is in flight
    std::atomic<bool> in_batch_{false};  // mirrors batch_ for lock-free reads
    bool stop_ = false;

    // Telemetry (always on; relaxed atomics off the virtual-clock path).
    std::unique_ptr<Slot[]> slots_;     // workers + 1, last = caller
    Log2Histogram claim_size_;
    Log2Histogram submit_latency_ns_;
    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> window_start_ns_{0};
};

}  // namespace hpu::util
