// A fixed-size thread pool used for the *functional* execution of CPU-side
// tasks and simulated GPU waves (the virtual clock handles performance
// accounting separately; see sim/cpu_unit.hpp and sim/device.hpp). The pool
// supports bulk parallel-for submission, which is the only pattern the
// breadth-first executors need: run m independent tasks of one recursion-
// tree level, then barrier.
//
// Work distribution is chunked claiming (the XKaapi-style steal-half idea
// collapsed to its essential: grab a contiguous index range with one atomic
// bump, not one index per mutex round-trip). A batch carries a single
// type-erased range invoker, so submitting N tasks costs one allocation-free
// function-pointer call per claimed chunk instead of N std::function
// dispatches. Workers and the submitting caller all claim chunks from the
// same atomic cursor; the mutex is only touched at chunk completion for the
// done/error accounting.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/check.hpp"

namespace hpu::util {

class ThreadPool {
public:
    /// Creates `workers` threads. workers == 0 means "run inline on the
    /// caller" — useful on single-core hosts and in unit tests that want
    /// deterministic single-threaded execution.
    explicit ThreadPool(std::size_t workers);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;
    ~ThreadPool();

    std::size_t worker_count() const noexcept { return threads_.size(); }

    /// Runs fn(i) for i in [0, count) across the pool and blocks until all
    /// complete. Rethrows the first task exception on the caller (later
    /// chunks are skipped once a failure is recorded; chunks already
    /// claimed still finish). Not reentrant: a task calling parallel_for
    /// on the same (non-inline) pool throws HpuError.
    ///
    /// `grain` is the number of indices handed out per atomic claim;
    /// 0 picks one automatically from count and the worker count (tiny
    /// levels floor at 1 index per chunk, so a level of two huge tasks
    /// still runs two-way parallel).
    template <typename Fn>
    void parallel_for(std::size_t count, Fn&& fn, std::size_t grain = 0) {
        if (count == 0) return;
        if (threads_.empty()) {
            for (std::size_t i = 0; i < count; ++i) fn(i);
            return;
        }
        auto* body = std::addressof(fn);
        run_batch(
            count, grain,
            [](void* ctx, std::size_t begin, std::size_t end) {
                auto& f = *static_cast<std::remove_reference_t<Fn>*>(ctx);
                for (std::size_t i = begin; i < end; ++i) f(i);
            },
            const_cast<void*>(static_cast<const void*>(body)));
    }

private:
    /// Type-erased "run indices [begin, end)" callback of one batch.
    using RangeFn = void (*)(void* ctx, std::size_t begin, std::size_t end);

    struct Batch {
        std::size_t count = 0;
        std::size_t grain = 1;
        RangeFn invoke = nullptr;
        void* ctx = nullptr;
        std::atomic<std::size_t> cursor{0};   // next index range to claim
        std::atomic<bool> abandon{false};     // a failure was recorded
        std::size_t done = 0;                 // completed indices (guarded by mu_)
        std::size_t active = 0;               // workers inside drain (guarded by mu_)
        std::exception_ptr error;             // first failure (guarded by mu_)
    };

    void worker_loop();
    // Claims and runs grain-sized chunks until the cursor is exhausted.
    void drain_batch(Batch& b);
    // Submits a batch, participates in draining it, waits for completion.
    void run_batch(std::size_t count, std::size_t grain, RangeFn invoke, void* ctx);

    std::vector<std::thread> threads_;
    std::mutex mu_;
    std::condition_variable work_cv_;   // signals workers: batch available / shutdown
    std::condition_variable done_cv_;   // signals submitter: batch complete
    Batch* batch_ = nullptr;            // non-null while a batch is in flight
    bool stop_ = false;
};

}  // namespace hpu::util
