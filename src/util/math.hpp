// Small integer/float math helpers shared across the library.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#include "util/check.hpp"

namespace hpu::util {

/// True iff x is a power of two (x > 0).
constexpr bool is_pow2(std::uint64_t x) noexcept { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)) for x >= 1.
constexpr std::uint32_t ilog2(std::uint64_t x) noexcept {
    return 63u - static_cast<std::uint32_t>(std::countl_zero(x | 1));
}

/// ceil(log2(x)) for x >= 1.
constexpr std::uint32_t ceil_log2(std::uint64_t x) noexcept {
    return ilog2(x) + (is_pow2(x) ? 0u : 1u);
}

/// Ceiling division for non-negative integers.
constexpr std::uint64_t ceil_div(std::uint64_t num, std::uint64_t den) noexcept {
    return (num + den - 1) / den;
}

/// Integer power base^exp (no overflow checking; callers use small exponents).
constexpr std::uint64_t ipow(std::uint64_t base, std::uint32_t exp) noexcept {
    std::uint64_t r = 1;
    while (exp--) r *= base;
    return r;
}

/// log base `b` of `x` as a double, for b > 1, x > 0.
inline double logb(double x, double b) {
    HPU_CHECK(x > 0 && b > 1, "logb requires x > 0 and base > 1");
    return std::log(x) / std::log(b);
}

/// Round-half-up to the nearest integer, returned as int64.
constexpr std::int64_t iround(double x) noexcept {
    return static_cast<std::int64_t>(x >= 0 ? x + 0.5 : x - 0.5);
}

}  // namespace hpu::util
