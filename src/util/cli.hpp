// Minimal command-line flag parsing for the bench and example binaries.
// Values use the --name=value form; a bare --name is a boolean switch;
// everything else is positional.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hpu::util {

class Cli {
public:
    Cli(int argc, const char* const* argv);

    bool has(const std::string& name) const;
    std::string get(const std::string& name, const std::string& def) const;
    std::int64_t get_int(const std::string& name, std::int64_t def) const;
    double get_double(const std::string& name, double def) const;
    bool get_bool(const std::string& name, bool def) const;

    /// Positional (non-flag) arguments in order.
    const std::vector<std::string>& positional() const noexcept { return positional_; }

private:
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

}  // namespace hpu::util
