// Lock-free fixed-bucket histogram for wall-clock telemetry. Buckets are
// powers of two (log₂ buckets): bucket i counts values v with
// 2^(i-1) <= v < 2^i (bucket 0 counts v == 0), so one `record` is a
// bit_width plus three relaxed atomic adds — cheap enough for the
// ThreadPool's per-chunk hot path. The exponential buckets match what the
// quantities of interest (nanosecond latencies, claim sizes) need: a fixed
// number of buckets covers the whole uint64 range with constant relative
// resolution, and the Prometheus exporter maps them directly onto
// cumulative `le` bounds.
//
// Relaxed ordering throughout: histograms are statistics, not
// synchronization (same discipline as trace::CounterRegistry). A snapshot
// taken while writers are active is internally consistent per field but
// not across fields; consumers snapshot quiescent pools (after the batch
// barrier) where this cannot matter.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace hpu::util {

/// Plain-data copy of a histogram at one instant.
struct HistogramSnapshot {
    /// kBuckets counts; bucket i covers [2^(i-1), 2^i) and bucket 0 is the
    /// zero bucket. The last bucket absorbs everything >= 2^(kBuckets-2).
    static constexpr std::size_t kBuckets = 64;

    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;  ///< smallest recorded value (0 when count == 0)
    std::uint64_t max = 0;  ///< largest recorded value

    double mean() const noexcept {
        return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
    }

    /// Quantile estimate (q in [0, 1]) by linear interpolation inside the
    /// log₂ bucket holding rank q·count. The zero bucket is exact; other
    /// buckets resolve to within their width, and the result is clamped to
    /// [min, max], which makes the extremes (and any single-value
    /// population) exact.
    double quantile(double q) const noexcept {
        if (count == 0) return 0.0;
        if (q <= 0.0) return static_cast<double>(min);
        if (q >= 1.0) return static_cast<double>(max);
        const double rank = q * static_cast<double>(count);
        double cum = 0.0;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            const auto n = static_cast<double>(buckets[i]);
            if (n == 0.0) continue;
            if (cum + n >= rank) {
                const double lo =
                    i == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << (i - 1));
                const double hi = i == 0 ? 0.0 : bucket_bound(i);
                double v = lo + (rank - cum) / n * (hi - lo);
                if (v < static_cast<double>(min)) v = static_cast<double>(min);
                if (v > static_cast<double>(max)) v = static_cast<double>(max);
                return v;
            }
            cum += n;
        }
        return static_cast<double>(max);
    }

    double p50() const noexcept { return quantile(0.50); }
    double p90() const noexcept { return quantile(0.90); }
    double p99() const noexcept { return quantile(0.99); }

    /// Upper bound (inclusive style: values < bound) of bucket i, i.e. the
    /// Prometheus `le` edge. The last bucket's bound is reported by the
    /// exporter as +Inf.
    static double bucket_bound(std::size_t i) noexcept {
        return static_cast<double>(i >= 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << i));
    }
};

class Log2Histogram {
public:
    static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;

    /// Bucket index of a value: 0 for 0, else bit_width (so 1 -> 1,
    /// 2..3 -> 2, 4..7 -> 3, ...), clamped to the last bucket.
    static std::size_t bucket_of(std::uint64_t v) noexcept {
        const auto w = static_cast<std::size_t>(std::bit_width(v));
        return w >= kBuckets ? kBuckets - 1 : w;
    }

    void record(std::uint64_t v) noexcept {
        buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
        update_min(v);
        update_max(v);
    }

    std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
    std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

    HistogramSnapshot snapshot() const noexcept {
        HistogramSnapshot s;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
        }
        s.count = count_.load(std::memory_order_relaxed);
        s.sum = sum_.load(std::memory_order_relaxed);
        const std::uint64_t mn = min_.load(std::memory_order_relaxed);
        s.min = s.count == 0 ? 0 : mn;
        s.max = max_.load(std::memory_order_relaxed);
        return s;
    }

    void reset() noexcept {
        for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
        count_.store(0, std::memory_order_relaxed);
        sum_.store(0, std::memory_order_relaxed);
        min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
        max_.store(0, std::memory_order_relaxed);
    }

private:
    void update_min(std::uint64_t v) noexcept {
        std::uint64_t cur = min_.load(std::memory_order_relaxed);
        while (v < cur &&
               !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
        }
    }
    void update_max(std::uint64_t v) noexcept {
        std::uint64_t cur = max_.load(std::memory_order_relaxed);
        while (v > cur &&
               !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
        }
    }

    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max_{0};
};

}  // namespace hpu::util
