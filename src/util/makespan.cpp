#include "util/makespan.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/check.hpp"
#include "util/math.hpp"

namespace hpu::util {

namespace {

// Min-heap entry: (load, core index).
using Slot = std::pair<std::uint64_t, std::size_t>;

std::vector<std::size_t> ordered_indices(std::span<const std::uint64_t> costs, ListOrder order) {
    std::vector<std::size_t> idx(costs.size());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    if (order == ListOrder::kLpt) {
        std::stable_sort(idx.begin(), idx.end(),
                         [&](std::size_t a, std::size_t b) { return costs[a] > costs[b]; });
    }
    return idx;
}

}  // namespace

std::vector<std::size_t> list_assignment(std::span<const std::uint64_t> costs, std::size_t cores,
                                         ListOrder order) {
    HPU_CHECK(cores >= 1, "need at least one core");
    std::vector<std::size_t> assign(costs.size());
    // Uniform-cost fast path: with identical costs the heap pops cores in
    // index order every round (ties break on the core index), and kLpt's
    // stable sort leaves the arrival order untouched — so the assignment
    // is exactly round-robin for both orders (equivalence pinned by test).
    if (!costs.empty() && std::all_of(costs.begin(), costs.end(),
                                      [&](std::uint64_t c) { return c == costs.front(); })) {
        for (std::size_t i = 0; i < assign.size(); ++i) assign[i] = i % cores;
        return assign;
    }
    std::priority_queue<Slot, std::vector<Slot>, std::greater<>> heap;
    for (std::size_t c = 0; c < cores; ++c) heap.emplace(0, c);
    for (std::size_t i : ordered_indices(costs, order)) {
        auto [load, core] = heap.top();
        heap.pop();
        assign[i] = core;
        heap.emplace(load + costs[i], core);
    }
    return assign;
}

std::uint64_t makespan(std::span<const std::uint64_t> costs, std::size_t cores, ListOrder order) {
    HPU_CHECK(cores >= 1, "need at least one core");
    if (costs.empty()) return 0;
    // Uniform-cost fast path: list scheduling of m identical tasks on c
    // cores is exactly ceil(m/c) rounds regardless of order. Deep
    // recursion-tree levels have millions of identical tasks; skipping the
    // heap matters there.
    if (std::all_of(costs.begin(), costs.end(),
                    [&](std::uint64_t c) { return c == costs.front(); })) {
        return uniform_makespan(costs.size(), costs.front(), cores);
    }
    std::priority_queue<Slot, std::vector<Slot>, std::greater<>> heap;
    for (std::size_t c = 0; c < cores; ++c) heap.emplace(0, c);
    std::uint64_t max_load = 0;
    for (std::size_t i : ordered_indices(costs, order)) {
        auto [load, core] = heap.top();
        heap.pop();
        const std::uint64_t next = load + costs[i];
        max_load = std::max(max_load, next);
        heap.emplace(next, core);
    }
    return max_load;
}

std::uint64_t uniform_makespan(std::uint64_t tasks, std::uint64_t cost_each, std::size_t cores) {
    HPU_CHECK(cores >= 1, "need at least one core");
    return ceil_div(tasks, cores) * cost_each;
}

}  // namespace hpu::util
