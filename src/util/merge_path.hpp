// Merge Path host kernel layer (DESIGN.md §15): splits one merge of two
// sorted runs into `parts` independent equal-output segments via diagonal
// binary search (Green/McColl/Bader; the paper's §6.5 comparator uses the
// same partitioning on the GPU) and runs the segments across the existing
// chunk-claiming util::ThreadPool — so the pool parallelizes *within* a
// merge, not just across the tasks of a level.
//
// Strictly a wall-clock layer: the kernel produces the same stable merge,
// byte for byte, as the element-at-a-time loops it replaces (A wins ties,
// matching every call site's tie-break), and the call sites charge their
// virtual-clock ops outside the path choice — ExecReports, traces, op
// categories, and analysis findings are bit-identical kernel-on vs
// kernel-off (pinned by tests/merge_path_test.cpp).
//
// The segment merge itself is branchless and cache-blocked: within a block
// whose length is bounded by both runs' remaining elements there are no
// exhaustion tests, each iteration consumes exactly one input via
// flag-indexed advances; the leftover run is moved with one std::memcpy
// when T is trivially copyable.
//
// Concurrency contract: merge_segments requires output disjoint from both
// inputs (callers stage through scratch where the serial loop merged in
// place), and merge_parts() returns 1 while the pool is inside a batch —
// a task body running pool-parallel must not recursively submit.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <type_traits>
#include <vector>

#include "util/thread_pool.hpp"

namespace hpu::util {

/// Output elements below which a merge is never worth partitioning.
inline constexpr std::size_t kMinParallelMerge = std::size_t{1} << 15;
/// Target minimum output elements per segment (amortizes the two diagonal
/// searches and the chunk-claim round trip per segment).
inline constexpr std::size_t kMinMergeSegment = std::size_t{1} << 13;
/// Inner-loop block: within a block both runs are known non-exhausted, so
/// the merge loop carries no bounds tests. Small enough that a block's
/// working set stays in L1.
inline constexpr std::size_t kMergeBlock = 128;

/// One Merge Path diagonal intersection: the merge's first `ai + bi`
/// outputs are exactly a[0, ai) and b[0, bi), with ai + bi = the diagonal.
struct MergeCut {
    std::size_t ai = 0;
    std::size_t bi = 0;
};

/// Diagonal binary search: how many elements of sorted run `a` lie among
/// the first `diag` outputs of the stable merge of `a` and `b` (A wins
/// ties — the cut keeps every a[i] that ties a b[k] on the A side, which
/// is the tie-break all the repo's serial merge loops implement). Views
/// need only operator[]; O(log min(na, diag)).
template <typename AView, typename BView, typename Less>
std::size_t merge_path_cut(const AView& a, std::size_t na, const BView& b, std::size_t nb,
                           std::size_t diag, Less less) {
    std::size_t lo = diag > nb ? diag - nb : 0;
    std::size_t hi = std::min(diag, na);
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        // a[mid] belongs to the first diag outputs iff it does not come
        // after b[diag - 1 - mid]; "not less than a" keeps ties on A.
        if (!less(b[diag - 1 - mid], a[mid])) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    return lo;
}

/// Full partition of a merge into `parts` equal-output segments: returns
/// parts + 1 cuts with cut[0] = {0, 0} and cut[parts] = {na, nb}; segment
/// s produces outputs [diag(s), diag(s+1)) where diag(s) = total·s/parts.
template <typename AView, typename BView, typename Less>
std::vector<MergeCut> merge_path_partition(const AView& a, std::size_t na, const BView& b,
                                           std::size_t nb, std::size_t parts, Less less) {
    const std::size_t total = na + nb;
    std::vector<MergeCut> cuts(parts + 1);
    for (std::size_t s = 0; s <= parts; ++s) {
        const std::size_t diag = parts == 0 ? total : total * s / parts;
        cuts[s].ai = merge_path_cut(a, na, b, nb, diag, less);
        cuts[s].bi = diag - cuts[s].ai;
    }
    return cuts;
}

namespace merge_detail {

/// Moves `n` leftover elements of an exhausted-run tail; memcpy when the
/// type allows (the SIMD-friendly bulk path), element copy otherwise.
template <typename T>
void copy_run(const T* src, std::size_t n, T* out) {
    if (n == 0) return;
    if constexpr (std::is_trivially_copyable_v<T>) {
        std::memcpy(out, src, n * sizeof(T));
    } else {
        std::copy(src, src + n, out);
    }
}

}  // namespace merge_detail

/// Stable serial merge of a[0, na) and b[0, nb) into out[0, na + nb), A
/// wins ties. Branchless cache-blocked inner loop: a block never exceeds
/// either run's remainder, so the hot loop has no exhaustion tests and the
/// advance is a flag add, not a branch; the surviving tail is one bulk
/// copy. `out` must not overlap either input.
template <typename T, typename Less>
void merge_serial(const T* a, std::size_t na, const T* b, std::size_t nb, T* out, Less less) {
    std::size_t ia = 0, ib = 0, k = 0;
    while (ia < na && ib < nb) {
        const std::size_t run = std::min({na - ia, nb - ib, kMergeBlock});
        for (std::size_t i = 0; i < run; ++i) {
            const bool take_b = less(b[ib], a[ia]);
            out[k++] = take_b ? b[ib] : a[ia];
            ia += static_cast<std::size_t>(!take_b);
            ib += static_cast<std::size_t>(take_b);
        }
    }
    merge_detail::copy_run(a + ia, na - ia, out + k);
    merge_detail::copy_run(b + ib, nb - ib, out + k + (na - ia));
}

/// Stable merge of a[0, na) and b[0, nb) into out, split into `parts`
/// equal-output Merge Path segments run across `pool`. Each segment
/// derives its own two cuts (two O(log) searches — no shared partition
/// state, no allocation) and merges independently; grain 1 keeps one
/// segment per claim. Falls back to the serial kernel for parts <= 1 or a
/// workerless pool. `out` must be disjoint from both inputs.
template <typename T, typename Less>
void merge_segments(ThreadPool* pool, const T* a, std::size_t na, const T* b, std::size_t nb,
                    T* out, Less less, std::size_t parts) {
    if (parts <= 1 || pool == nullptr || pool->worker_count() == 0) {
        merge_serial(a, na, b, nb, out, less);
        return;
    }
    const std::size_t total = na + nb;
    pool->parallel_for(
        parts,
        [&](std::size_t s) {
            const std::size_t d0 = total * s / parts;
            const std::size_t d1 = total * (s + 1) / parts;
            const std::size_t a0 = merge_path_cut(a, na, b, nb, d0, less);
            const std::size_t a1 = merge_path_cut(a, na, b, nb, d1, less);
            merge_serial(a + a0, a1 - a0, b + (d0 - a0), (d1 - a1) - (d0 - a0), out + d0,
                         less);
        },
        /*grain=*/1);
}

/// Constant-stride view over a column of an interleaved layout (the §6.3
/// coalesced mergesort keeps element k of run j at index k·runs + j).
/// Indexable like a pointer, so the partitioner and the generic merge
/// below work on interleaved runs unchanged.
template <typename T>
struct Strided {
    T* ptr = nullptr;
    std::size_t stride = 1;
    T& operator[](std::size_t i) const { return ptr[i * stride]; }
};

/// Stable serial merge over arbitrary indexable views (no bulk-copy tail —
/// strided columns are not contiguous). Same tie-break as merge_serial.
template <typename AView, typename BView, typename OutView, typename Less>
void merge_views_serial(const AView& a, std::size_t ia0, std::size_t na, const BView& b,
                        std::size_t ib0, std::size_t nb, const OutView& out, std::size_t k0,
                        Less less) {
    std::size_t ia = ia0, ib = ib0, k = k0;
    const std::size_t ea = ia0 + na, eb = ib0 + nb;
    while (ia < ea && ib < eb) {
        const bool take_b = less(b[ib], a[ia]);
        out[k++] = take_b ? b[ib] : a[ia];
        ia += static_cast<std::size_t>(!take_b);
        ib += static_cast<std::size_t>(take_b);
    }
    while (ia < ea) out[k++] = a[ia++];
    while (ib < eb) out[k++] = b[ib++];
}

/// merge_segments over strided views (interleave-aware: the coalesced
/// variant merges two interleaved columns into a third). Output cells must
/// be disjoint from both input columns.
template <typename T, typename Less>
void merge_segments_strided(ThreadPool* pool, Strided<const T> a, std::size_t na,
                            Strided<const T> b, std::size_t nb, Strided<T> out, Less less,
                            std::size_t parts) {
    if (parts <= 1 || pool == nullptr || pool->worker_count() == 0) {
        merge_views_serial(a, 0, na, b, 0, nb, out, 0, less);
        return;
    }
    const std::size_t total = na + nb;
    pool->parallel_for(
        parts,
        [&](std::size_t s) {
            const std::size_t d0 = total * s / parts;
            const std::size_t d1 = total * (s + 1) / parts;
            const std::size_t a0 = merge_path_cut(a, na, b, nb, d0, less);
            const std::size_t a1 = merge_path_cut(a, na, b, nb, d1, less);
            merge_views_serial(a, a0, a1 - a0, b, d0 - a0, (d1 - a1) - (d0 - a0), out, d0,
                               less);
        },
        /*grain=*/1);
}

/// How an algorithm's task bodies may use the merge kernel, bound by the
/// executor before a run (LevelAlgorithm::bind_exec). Wall-side only: the
/// binding must never change charges, logs, or output bytes.
struct MergeExec {
    ThreadPool* pool = nullptr;  ///< the run's functional pool (may be null)
    bool kernel = false;         ///< ExecOptions::merge_path && functional
    /// Whether a task body may split its merges across the pool at all
    /// (merge_parts still arbitrates per merge).
    bool parallel_ok() const noexcept {
        return kernel && pool != nullptr && pool->worker_count() > 0;
    }
};

/// Segment count for one merge of `total` output elements: 1 (serial)
/// when the pool is unusable (null, workerless, or mid-batch — the level
/// itself is running pool-parallel) or the merge is too small; otherwise
/// up to participants (workers + the submitting caller), floored so every
/// segment keeps at least kMinMergeSegment outputs.
std::size_t merge_parts(std::size_t total, const ThreadPool* pool);

/// HPU_MERGE_PATH environment default for ExecOptions::merge_path: ON
/// unless set to "0" / "off" / "false" / "no" (the kernel is a pure
/// wall-clock win, so unlike the validation flags it defaults enabled).
bool merge_path_env_default();

}  // namespace hpu::util
