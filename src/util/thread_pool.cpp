#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/stopwatch.hpp"

namespace hpu::util {

namespace {

// Auto grain: aim for several chunks per participant so late-arriving
// workers and uneven task costs still balance, but never below one index
// per chunk — a level of two huge tasks must still split two ways.
constexpr std::size_t kChunksPerWorker = 8;

std::size_t pick_grain(std::size_t count, std::size_t requested, std::size_t participants) {
    if (requested > 0) return requested;
    return std::max<std::size_t>(1, count / (participants * kChunksPerWorker));
}

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
    if (workers > 0) slots_ = std::make_unique<Slot[]>(workers + 1);
    const std::uint64_t t0 = now_ns();
    window_start_ns_.store(t0, std::memory_order_relaxed);
    // A worker counts as idle from construction until its thread first
    // parks itself: on an oversubscribed host the OS may not schedule the
    // thread for a while, and that time is worker idleness, not a hole in
    // the account.
    for (std::size_t i = 0; i < workers; ++i) {
        slots_[i].wait_since_ns.store(t0, std::memory_order_relaxed);
    }
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        threads_.emplace_back([this, i] { worker_loop(i); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) t.join();
}

void ThreadPool::drain_batch(Batch& b, std::size_t slot) {
    Slot& acct = slots_[slot];
    bool first_claim = true;
    for (;;) {
        const std::size_t begin = b.cursor.fetch_add(b.grain, std::memory_order_relaxed);
        if (begin >= b.count) return;
        const std::size_t end = std::min(b.count, begin + b.grain);
        std::exception_ptr err;
        if (!b.abandon.load(std::memory_order_relaxed)) {
            const std::uint64_t t0 = now_ns();
            if (first_claim) {
                first_claim = false;
                submit_latency_ns_.record(t0 >= b.submit_ns ? t0 - b.submit_ns : 0);
            }
            try {
                b.invoke(b.ctx, begin, end);
            } catch (...) {
                err = std::current_exception();
            }
            const std::uint64_t t1 = now_ns();
            acct.busy_ns.fetch_add(t1 - t0, std::memory_order_relaxed);
            acct.chunks.fetch_add(1, std::memory_order_relaxed);
            acct.indices.fetch_add(end - begin, std::memory_order_relaxed);
            claim_size_.record(end - begin);
        }
        std::lock_guard lock(mu_);
        if (err) {
            if (!b.error) b.error = err;  // first failure wins
            b.abandon.store(true, std::memory_order_relaxed);
        }
        b.done += end - begin;
        if (b.done == b.count) done_cv_.notify_all();
    }
}

void ThreadPool::worker_loop(std::size_t slot) {
    Slot& acct = slots_[slot];
    std::unique_lock lock(mu_);
    for (;;) {
        // Reuse an existing stamp (the constructor marks workers idle from
        // t0, so the stretch before the OS first schedules this thread
        // stays in the account); stamp fresh after a drain.
        std::uint64_t w0 = acct.wait_since_ns.load(std::memory_order_relaxed);
        if (w0 == 0) {
            w0 = now_ns();
            acct.wait_since_ns.store(w0, std::memory_order_relaxed);
        }
        work_cv_.wait(lock, [this] {
            return stop_ || (batch_ != nullptr &&
                             batch_->cursor.load(std::memory_order_relaxed) < batch_->count);
        });
        acct.wait_since_ns.store(0, std::memory_order_relaxed);
        // Clip a wait that spans reset_telemetry() to the current window so
        // idle never exceeds the window it is reported against.
        const std::uint64_t begin =
            std::max(w0, window_start_ns_.load(std::memory_order_relaxed));
        const std::uint64_t t1 = now_ns();
        if (t1 > begin) acct.idle_ns.fetch_add(t1 - begin, std::memory_order_relaxed);
        if (stop_) return;
        Batch& b = *batch_;
        // The submitter only tears the batch down once done == count AND
        // active == 0, so registering before unlocking keeps &b valid for
        // the whole drain even if other workers finish the remaining
        // chunks first.
        ++b.active;
        lock.unlock();
        drain_batch(b, slot);
        lock.lock();
        --b.active;
        if (b.done == b.count && b.active == 0) done_cv_.notify_all();
    }
}

void ThreadPool::run_batch(std::size_t count, std::size_t grain, RangeFn invoke, void* ctx) {
    Batch b;
    b.count = count;
    b.grain = pick_grain(count, grain, threads_.size() + 1);
    b.invoke = invoke;
    b.ctx = ctx;
    b.submit_ns = now_ns();
    {
        std::lock_guard lock(mu_);
        HPU_CHECK(batch_ == nullptr, "parallel_for is not reentrant");
        batch_ = &b;
        in_batch_.store(true, std::memory_order_relaxed);
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    work_cv_.notify_all();
    drain_batch(b, threads_.size());  // caller participates in the last slot
    {
        std::unique_lock lock(mu_);
        done_cv_.wait(lock, [&b] { return b.done == b.count && b.active == 0; });
        batch_ = nullptr;
        in_batch_.store(false, std::memory_order_relaxed);
    }
    if (b.error) std::rethrow_exception(b.error);
}

PoolTelemetry ThreadPool::telemetry() const {
    PoolTelemetry t;
    t.workers = threads_.size();
    const std::uint64_t window_start = window_start_ns_.load(std::memory_order_relaxed);
    const std::uint64_t now = now_ns();
    t.window_ns = now - window_start;
    t.batches = batches_.load(std::memory_order_relaxed);
    if (slots_ != nullptr) {
        t.per_worker.resize(threads_.size() + 1);
        for (std::size_t i = 0; i <= threads_.size(); ++i) {
            const Slot& s = slots_[i];
            t.per_worker[i].busy_ns = s.busy_ns.load(std::memory_order_relaxed);
            t.per_worker[i].idle_ns = s.idle_ns.load(std::memory_order_relaxed);
            t.per_worker[i].chunks = s.chunks.load(std::memory_order_relaxed);
            t.per_worker[i].indices = s.indices.load(std::memory_order_relaxed);
            // Credit a worker parked right now with its in-progress wait,
            // clipped to the window; without this a quiescent pool would
            // under-report idle by exactly the time since its last batch.
            const std::uint64_t since = s.wait_since_ns.load(std::memory_order_relaxed);
            if (i < threads_.size() && since != 0) {
                const std::uint64_t begin = std::max(since, window_start);
                if (now > begin) t.per_worker[i].idle_ns += now - begin;
            }
        }
    }
    t.claim_size = claim_size_.snapshot();
    t.submit_latency_ns = submit_latency_ns_.snapshot();
    return t;
}

void ThreadPool::reset_telemetry() {
    if (slots_ != nullptr) {
        for (std::size_t i = 0; i <= threads_.size(); ++i) {
            slots_[i].busy_ns.store(0, std::memory_order_relaxed);
            slots_[i].idle_ns.store(0, std::memory_order_relaxed);
            slots_[i].chunks.store(0, std::memory_order_relaxed);
            slots_[i].indices.store(0, std::memory_order_relaxed);
        }
    }
    claim_size_.reset();
    submit_latency_ns_.reset();
    batches_.store(0, std::memory_order_relaxed);
    window_start_ns_.store(now_ns(), std::memory_order_relaxed);
}

}  // namespace hpu::util
