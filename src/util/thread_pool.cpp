#include "util/thread_pool.hpp"

namespace hpu::util {

ThreadPool::ThreadPool(std::size_t workers) {
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        threads_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) t.join();
}

void ThreadPool::drain_batch(std::unique_lock<std::mutex>& lock) {
    Batch& b = *batch_;
    while (b.next < b.count) {
        const std::size_t i = b.next++;
        lock.unlock();
        std::exception_ptr err;
        try {
            (*b.fn)(i);
        } catch (...) {
            err = std::current_exception();
        }
        lock.lock();
        if (err && !b.error) b.error = err;
        if (++b.done == b.count) done_cv_.notify_all();
    }
}

void ThreadPool::worker_loop() {
    std::unique_lock lock(mu_);
    for (;;) {
        work_cv_.wait(lock, [this] { return stop_ || (batch_ && batch_->next < batch_->count); });
        if (stop_) return;
        drain_batch(lock);
    }
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    if (threads_.empty()) {
        for (std::size_t i = 0; i < count; ++i) fn(i);
        return;
    }
    Batch b;
    b.count = count;
    b.fn = &fn;
    std::unique_lock lock(mu_);
    HPU_CHECK(batch_ == nullptr, "parallel_for is not reentrant");
    batch_ = &b;
    work_cv_.notify_all();
    drain_batch(lock);  // caller participates
    done_cv_.wait(lock, [&b] { return b.done == b.count; });
    batch_ = nullptr;
    if (b.error) std::rethrow_exception(b.error);
}

}  // namespace hpu::util
