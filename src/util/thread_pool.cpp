#include "util/thread_pool.hpp"

#include <algorithm>

namespace hpu::util {

namespace {

// Auto grain: aim for several chunks per participant so late-arriving
// workers and uneven task costs still balance, but never below one index
// per chunk — a level of two huge tasks must still split two ways.
constexpr std::size_t kChunksPerWorker = 8;

std::size_t pick_grain(std::size_t count, std::size_t requested, std::size_t participants) {
    if (requested > 0) return requested;
    return std::max<std::size_t>(1, count / (participants * kChunksPerWorker));
}

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        threads_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) t.join();
}

void ThreadPool::drain_batch(Batch& b) {
    for (;;) {
        const std::size_t begin = b.cursor.fetch_add(b.grain, std::memory_order_relaxed);
        if (begin >= b.count) return;
        const std::size_t end = std::min(b.count, begin + b.grain);
        std::exception_ptr err;
        if (!b.abandon.load(std::memory_order_relaxed)) {
            try {
                b.invoke(b.ctx, begin, end);
            } catch (...) {
                err = std::current_exception();
            }
        }
        std::lock_guard lock(mu_);
        if (err) {
            if (!b.error) b.error = err;  // first failure wins
            b.abandon.store(true, std::memory_order_relaxed);
        }
        b.done += end - begin;
        if (b.done == b.count) done_cv_.notify_all();
    }
}

void ThreadPool::worker_loop() {
    std::unique_lock lock(mu_);
    for (;;) {
        work_cv_.wait(lock, [this] {
            return stop_ || (batch_ != nullptr &&
                             batch_->cursor.load(std::memory_order_relaxed) < batch_->count);
        });
        if (stop_) return;
        Batch& b = *batch_;
        // The submitter only tears the batch down once done == count AND
        // active == 0, so registering before unlocking keeps &b valid for
        // the whole drain even if other workers finish the remaining
        // chunks first.
        ++b.active;
        lock.unlock();
        drain_batch(b);
        lock.lock();
        --b.active;
        if (b.done == b.count && b.active == 0) done_cv_.notify_all();
    }
}

void ThreadPool::run_batch(std::size_t count, std::size_t grain, RangeFn invoke, void* ctx) {
    Batch b;
    b.count = count;
    b.grain = pick_grain(count, grain, threads_.size() + 1);
    b.invoke = invoke;
    b.ctx = ctx;
    {
        std::lock_guard lock(mu_);
        HPU_CHECK(batch_ == nullptr, "parallel_for is not reentrant");
        batch_ = &b;
    }
    work_cv_.notify_all();
    drain_batch(b);  // caller participates
    {
        std::unique_lock lock(mu_);
        done_cv_.wait(lock, [&b] { return b.done == b.count && b.active == 0; });
        batch_ = nullptr;
    }
    if (b.error) std::rethrow_exception(b.error);
}

}  // namespace hpu::util
