#include "util/merge_path.hpp"

#include <cstdlib>
#include <string>

namespace hpu::util {

std::size_t merge_parts(std::size_t total, const ThreadPool* pool) {
    if (pool == nullptr || pool->worker_count() == 0 || pool->in_batch()) return 1;
    if (total < kMinParallelMerge) return 1;
    const std::size_t participants = pool->worker_count() + 1;
    return std::max<std::size_t>(1, std::min(participants, total / kMinMergeSegment));
}

bool merge_path_env_default() {
    const char* v = std::getenv("HPU_MERGE_PATH");
    if (v == nullptr) return true;
    const std::string s(v);
    return !(s == "0" || s == "off" || s == "false" || s == "no");
}

}  // namespace hpu::util
