// Wall-clock stopwatch. The primary time base of this reproduction is the
// *virtual* clock in hpu::sim (see DESIGN.md §2), but benches also report
// wall time for the functional execution where it is meaningful.
#pragma once

#include <chrono>
#include <cstdint>

namespace hpu::util {

/// Monotonic wall-clock nanoseconds, the shared time base of all wall-side
/// telemetry (ThreadPool stats, span wall annotation, ProfileReport).
/// Values are only meaningful as differences within one process.
inline std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

class Stopwatch {
public:
    Stopwatch() : start_(Clock::now()) {}

    void reset() { start_ = Clock::now(); }

    /// Elapsed seconds since construction or last reset().
    double seconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace hpu::util
