// Deterministic pseudo-random input generation for tests, examples and
// benches. All experiments in the paper draw inputs uniformly at random
// (mergesort keys in [0, 2n)); we centralize that here so every run is
// reproducible from a seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace hpu::util {

/// Thin wrapper over a 64-bit Mersenne Twister with convenience fills.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : eng_(seed) {}

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(eng_);
    }

    /// Uniform double in [lo, hi).
    double uniform_real(double lo, double hi) {
        return std::uniform_real_distribution<double>(lo, hi)(eng_);
    }

    /// Vector of n ints uniform in [lo, hi] — the paper's mergesort inputs
    /// use lo=0, hi=2n-1.
    std::vector<std::int32_t> int_vector(std::size_t n, std::int64_t lo, std::int64_t hi) {
        std::vector<std::int32_t> v(n);
        std::uniform_int_distribution<std::int64_t> d(lo, hi);
        for (auto& x : v) x = static_cast<std::int32_t>(d(eng_));
        return v;
    }

    /// Vector of n doubles uniform in [lo, hi).
    std::vector<double> real_vector(std::size_t n, double lo, double hi) {
        std::vector<double> v(n);
        std::uniform_real_distribution<double> d(lo, hi);
        for (auto& x : v) x = d(eng_);
        return v;
    }

    std::mt19937_64& engine() noexcept { return eng_; }

private:
    std::mt19937_64 eng_;
};

}  // namespace hpu::util
