// Lightweight tabular output used by the benchmark harness to print the
// rows/series of each paper table and figure, in both human-readable ASCII
// and machine-readable CSV.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace hpu::util {

/// One cell: text, integer, or floating point (printed with `precision`).
using Cell = std::variant<std::string, std::int64_t, double>;

class Table {
public:
    explicit Table(std::vector<std::string> headers, int precision = 4);

    Table& add_row(std::vector<Cell> row);

    std::size_t row_count() const noexcept { return rows_.size(); }

    /// Pretty-prints with aligned columns and a header rule.
    void print(std::ostream& os) const;

    /// Comma-separated output, one line per row, headers first.
    void print_csv(std::ostream& os) const;

private:
    std::string render(const Cell& c) const;

    std::vector<std::string> headers_;
    std::vector<std::vector<Cell>> rows_;
    int precision_;
};

}  // namespace hpu::util
