// Error-handling primitives used throughout the hpu library.
//
// Library code validates its preconditions with HPU_CHECK, which throws
// hpu::util::HpuError carrying the failed condition and a message. We throw
// rather than abort because the library is embedded in host applications
// (examples, benches, tests) that want to recover or report.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hpu::util {

/// Exception type for all precondition and invariant violations in hpu.
class HpuError : public std::runtime_error {
public:
    explicit HpuError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise_check_failure(const char* cond, const char* file, int line,
                                             const std::string& msg) {
    std::ostringstream os;
    os << "HPU_CHECK failed: (" << cond << ") at " << file << ':' << line;
    if (!msg.empty()) os << " — " << msg;
    throw HpuError(os.str());
}
}  // namespace detail

}  // namespace hpu::util

/// Validate a precondition; throws hpu::util::HpuError on failure.
/// Usage: HPU_CHECK(n > 0, "input size must be positive");
#define HPU_CHECK(cond, msg)                                                              \
    do {                                                                                  \
        if (!(cond)) ::hpu::util::detail::raise_check_failure(#cond, __FILE__, __LINE__,  \
                                                              (msg));                     \
    } while (false)
