// Makespan computation for a level of independent tasks on p identical
// cores. The HPU model (paper §3) charges a CPU level of m tasks with costs
// c_i the time of the schedule that the runtime would produce; we provide
// both the greedy list schedule (tasks in arrival order to the least-loaded
// core — what a work queue approximates) and LPT (longest processing time
// first — the classic 4/3-approximation), used by the ablation bench.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hpu::util {

enum class ListOrder {
    kArrival,  ///< tasks assigned in the given order (greedy/work-queue)
    kLpt,      ///< tasks sorted by decreasing cost before assignment (LPT)
};

/// Makespan of scheduling `costs` on `cores` identical machines with the
/// chosen list order. cores must be >= 1.
std::uint64_t makespan(std::span<const std::uint64_t> costs, std::size_t cores,
                       ListOrder order = ListOrder::kArrival);

/// Convenience: m tasks of identical cost c on `cores` machines:
/// ceil(m / cores) * c.
std::uint64_t uniform_makespan(std::uint64_t tasks, std::uint64_t cost_each, std::size_t cores);

/// Per-core assignment produced by the list schedule; entry i gives the core
/// index for task i (in the *original* order). Used by the functional CPU
/// executor so virtual accounting and functional placement agree.
std::vector<std::size_t> list_assignment(std::span<const std::uint64_t> costs, std::size_t cores,
                                         ListOrder order = ListOrder::kArrival);

}  // namespace hpu::util
