// Trace re-import and subtree extraction for hpu::obs.
//
// load_chrome_trace parses the repo's own Chrome trace-event export
// (trace/export.hpp) back into a TraceSession, so run_diff can compare
// committed baseline traces against fresh runs. The parser is a minimal
// recursive-descent JSON reader — it understands exactly the subset our
// exporter emits (objects, arrays, strings, numbers, bools, null) and
// carries no third-party dependency.
//
// copy_subtree rebuilds a standalone session holding one run's subtree
// with ids remapped, which is how the watchdog scopes per-run analysis in
// a session that accumulated several runs.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/span.hpp"

namespace hpu::obs {

/// A loaded session, or an error description. A session with zero spans
/// and an empty error means the file was a valid but empty trace.
struct LoadedTrace {
    trace::TraceSession session;
    std::string error;

    bool ok() const noexcept { return error.empty(); }
};

/// Parses a Chrome trace-event JSON stream produced by trace::export_chrome.
/// Spans are rebuilt in id order with their virtual clocks, attributes, and
/// (rebased) wall stamps intact.
LoadedTrace parse_chrome_trace(std::istream& is);

/// parse_chrome_trace over a file path.
LoadedTrace load_chrome_trace(const std::string& path);

/// Rebuilds a standalone session holding only the subtree under `root`
/// (ids remapped, recording order preserved). root == kNoSpan copies the
/// whole session.
trace::TraceSession copy_subtree(const trace::TraceSession& session, trace::SpanId root);

}  // namespace hpu::obs
