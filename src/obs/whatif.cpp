#include "obs/whatif.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <ostream>
#include <utility>

#include "model/advanced.hpp"
#include "model/basic.hpp"
#include "model/pipeline.hpp"
#include "util/table.hpp"

namespace hpu::obs {
namespace {

using trace::Span;
using trace::SpanId;
using trace::SpanKind;
using trace::TraceSession;

double ceil_div(double num, double den) {
    return den <= 0.0 ? num : std::ceil(num / den);
}

/// Every field the replay prices. Bitwise equality here lets a factor-1.0
/// replay short-circuit to the recorded makespan instead of re-deriving it
/// through non-associative float sums.
bool priced_equal(const sim::HpuParams& a, const sim::HpuParams& b) noexcept {
    return a.cpu.p == b.cpu.p && a.gpu.g == b.gpu.g && a.gpu.gamma == b.gpu.gamma &&
           a.link.lambda == b.link.lambda && a.link.delta == b.link.delta &&
           a.gpu.launch_overhead == b.gpu.launch_overhead;
}

bool is_work(const Span& s) noexcept {
    switch (s.kind) {
        case SpanKind::kLevel:
        case SpanKind::kLeaves:
        case SpanKind::kTransfer:
        case SpanKind::kHook:
            return true;
        case SpanKind::kRun:
        case SpanKind::kPhase:
        case SpanKind::kWave:
            return false;
    }
    return false;
}

/// duration(perturbed) / duration(configured) for one work span, through
/// the same closed forms the executors charge. Parameters a span does not
/// touch scale it by exactly 1.0.
double scale_of(const Span& s, const sim::HpuParams& base, const sim::HpuParams& pert) {
    switch (s.kind) {
        case SpanKind::kTransfer: {
            const sim::Ticks b = base.link.transfer_time(s.attrs.items);
            const sim::Ticks p = pert.link.transfer_time(s.attrs.items);
            return b > 0.0 ? p / b : 1.0;
        }
        case SpanKind::kHook:
            if (s.unit == trace::Unit::kGpu) {
                // Device hook bodies are priced ops / (γ·g).
                return (base.gpu.gamma * static_cast<double>(base.gpu.g)) /
                       (pert.gpu.gamma * static_cast<double>(pert.gpu.g));
            }
            // Host pre-passes are priced ops / p.
            return static_cast<double>(base.cpu.p) / static_cast<double>(pert.cpu.p);
        case SpanKind::kLevel:
        case SpanKind::kLeaves: {
            const double tasks =
                static_cast<double>(std::max<std::uint64_t>(s.attrs.tasks, 1));
            if (s.unit == trace::Unit::kGpu) {
                // overhead + waves · max_ops / γ, waves = ceil(tasks / g).
                // The device-ops multiplier on max_ops cancels in the ratio.
                const double waves_b = ceil_div(tasks, static_cast<double>(base.gpu.g));
                const double waves_p = ceil_div(tasks, static_cast<double>(pert.gpu.g));
                if (s.attrs.max_ops > 0.0) {
                    const double tb = base.gpu.launch_overhead +
                                      waves_b * s.attrs.max_ops / base.gpu.gamma;
                    const double tp = pert.gpu.launch_overhead +
                                      waves_p * s.attrs.max_ops / pert.gpu.gamma;
                    return tb > 0.0 ? tp / tb : 1.0;
                }
                return (base.gpu.gamma / pert.gpu.gamma) *
                       (waves_b > 0.0 ? waves_p / waves_b : 1.0);
            }
            // CPU levels: ceil(tasks / p) rounds of one task cost each; the
            // task cost cancels. (Cache contention is not re-priced — it is
            // 0 on the stock platforms.)
            return ceil_div(tasks, static_cast<double>(pert.cpu.p)) /
                   ceil_div(tasks, static_cast<double>(base.cpu.p));
        }
        default:
            return 1.0;
    }
}

/// Precedence-preserving replay: re-prices work leaves and re-places every
/// grouping span's children, treating "sibling finished at or before my
/// recorded start" as a dependency. Slightly conservative for the eager
/// pipelined input stream (a chunk that merely happened to arrive early
/// becomes a dependency), exact for the serial and fork-join schedules.
struct Repricer {
    const TraceSession& session;
    const std::vector<std::vector<SpanId>>& ch;
    const sim::HpuParams& base;
    const sim::HpuParams& pert;
    sim::Ticks tol;

    sim::Ticks new_duration(SpanId id) const {
        const Span& sp = session.span(id);
        if (is_work(sp)) return sp.duration() * scale_of(sp, base, pert);
        std::vector<SpanId> kids;
        for (SpanId c : ch[id]) {
            if (session.span(c).kind != SpanKind::kWave) kids.push_back(c);
        }
        if (kids.empty()) return sp.duration();
        std::sort(kids.begin(), kids.end(), [&](SpanId a, SpanId b) {
            const Span& sa = session.span(a);
            const Span& sb = session.span(b);
            if (sa.start != sb.start) return sa.start < sb.start;
            return a < b;
        });
        // New child times are relative to the parent's new start (= 0).
        std::vector<sim::Ticks> new_end(kids.size(), 0.0);
        sim::Ticks max_new_end = 0.0;
        sim::Ticks max_orig_end = sp.start;
        for (std::size_t i = 0; i < kids.size(); ++i) {
            const Span& b = session.span(kids[i]);
            sim::Ticks pred_orig_end = sp.start;  // parent start bounds everyone
            sim::Ticks pred_new_end = 0.0;
            for (std::size_t j = 0; j < i; ++j) {
                const Span& a = session.span(kids[j]);
                if (a.end > b.start + tol) continue;  // overlapped: not a dependency
                pred_orig_end = std::max(pred_orig_end, a.end);
                pred_new_end = std::max(pred_new_end, new_end[j]);
            }
            sim::Ticks gap = b.start - pred_orig_end;
            if (gap < tol) gap = 0.0;  // also clamps tiny negatives
            new_end[i] = pred_new_end + gap + new_duration(kids[i]);
            max_new_end = std::max(max_new_end, new_end[i]);
            max_orig_end = std::max(max_orig_end, b.end);
        }
        sim::Ticks tail = sp.end - max_orig_end;
        if (tail < tol) tail = 0.0;
        return max_new_end + tail;
    }
};

std::vector<std::vector<SpanId>> child_index(const TraceSession& s) {
    std::vector<std::vector<SpanId>> ch(s.spans().size() + 1);
    for (const Span& sp : s.spans()) ch[sp.parent].push_back(sp.id);
    return ch;
}

SpanId resolve_root(const TraceSession& session, SpanId run_root) {
    if (session.spans().empty()) return trace::kNoSpan;
    if (run_root > session.spans().size()) return trace::kNoSpan;
    if (run_root != trace::kNoSpan) return run_root;
    for (const Span& s : session.spans()) {
        if (s.parent == trace::kNoSpan) return s.id;
    }
    return trace::kNoSpan;
}

double configured_value(const sim::HpuParams& hw, WhatIfParam p,
                        std::uint64_t chunks) noexcept {
    switch (p) {
        case WhatIfParam::kG: return static_cast<double>(hw.gpu.g);
        case WhatIfParam::kGamma: return hw.gpu.gamma;
        case WhatIfParam::kLambda: return hw.link.lambda;
        case WhatIfParam::kDelta: return hw.link.delta;
        case WhatIfParam::kWorkers: return static_cast<double>(hw.cpu.p);
        case WhatIfParam::kChunks: return static_cast<double>(chunks);
    }
    return 0.0;
}

/// Fills improve_factor / improved / gain from the curve's points: the
/// point at the parameter's improvement factor when the sweep has it,
/// otherwise the best (minimum-makespan) point.
void rank_curve(WhatIfCurve& curve, sim::Ticks baseline) {
    if (curve.points.empty() || baseline <= 0.0) return;
    const double want = improves_up(curve.param) ? 2.0 : 0.5;
    const WhatIfPoint* at = nullptr;
    for (const WhatIfPoint& pt : curve.points) {
        if (std::abs(pt.factor - want) < 1e-12) at = &pt;
    }
    if (at == nullptr) {
        at = &*std::min_element(curve.points.begin(), curve.points.end(),
                                [](const WhatIfPoint& a, const WhatIfPoint& b) {
                                    return a.predicted < b.predicted;
                                });
    }
    curve.improve_factor = at->factor;
    curve.improved = at->predicted;
    curve.gain = at->predicted > 0.0 ? baseline / at->predicted : 1.0;
}

}  // namespace

const char* to_string(WhatIfParam p) noexcept {
    switch (p) {
        case WhatIfParam::kG: return "g";
        case WhatIfParam::kGamma: return "gamma";
        case WhatIfParam::kLambda: return "lambda";
        case WhatIfParam::kDelta: return "delta";
        case WhatIfParam::kWorkers: return "workers";
        case WhatIfParam::kChunks: return "chunks";
    }
    return "?";
}

bool parse_param(std::string_view name, WhatIfParam& out) noexcept {
    if (name == "g") out = WhatIfParam::kG;
    else if (name == "gamma") out = WhatIfParam::kGamma;
    else if (name == "lambda") out = WhatIfParam::kLambda;
    else if (name == "delta") out = WhatIfParam::kDelta;
    else if (name == "p" || name == "workers") out = WhatIfParam::kWorkers;
    else if (name == "k" || name == "chunks") out = WhatIfParam::kChunks;
    else return false;
    return true;
}

bool improves_up(WhatIfParam p) noexcept {
    switch (p) {
        case WhatIfParam::kG:
        case WhatIfParam::kGamma:
        case WhatIfParam::kWorkers:
        case WhatIfParam::kChunks:
            return true;
        case WhatIfParam::kLambda:
        case WhatIfParam::kDelta:
            return false;
    }
    return true;
}

sim::HpuParams perturb(const sim::HpuParams& hw, WhatIfParam p, double factor) {
    sim::HpuParams out = hw;
    switch (p) {
        case WhatIfParam::kG:
            out.gpu.g = std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(
                       std::llround(static_cast<double>(hw.gpu.g) * factor)));
            break;
        case WhatIfParam::kGamma:
            out.gpu.gamma = std::min(1.0, hw.gpu.gamma * factor);
            break;
        case WhatIfParam::kLambda:
            out.link.lambda = hw.link.lambda * factor;
            break;
        case WhatIfParam::kDelta:
            out.link.delta = hw.link.delta * factor;
            break;
        case WhatIfParam::kWorkers:
            out.cpu.p = std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::llround(static_cast<double>(hw.cpu.p) * factor)));
            break;
        case WhatIfParam::kChunks:
            break;  // not a machine parameter
    }
    return out;
}

const WhatIfCurve* WhatIfReport::top() const noexcept {
    const WhatIfCurve* best = nullptr;
    for (const WhatIfCurve& c : curves) {
        if (best == nullptr || c.gain > best->gain) best = &c;
    }
    return best;
}

void WhatIfReport::print(std::ostream& os) const {
    if (!attempted) {
        os << "what-if: not attempted\n";
        return;
    }
    os << "what-if sensitivity (baseline " << baseline << " ticks):\n";
    util::Table t({"param", "configured", "factor", "predicted", "vs baseline"}, 4);
    for (const WhatIfCurve& c : curves) {
        for (const WhatIfPoint& pt : c.points) {
            t.add_row({std::string(to_string(c.param)), c.configured, pt.factor,
                       pt.predicted, baseline > 0.0 ? pt.predicted / baseline : 0.0});
        }
    }
    t.print(os);
    if (const WhatIfCurve* best = top()) {
        os << "top bottleneck: " << to_string(best->param) << " — x"
           << best->improve_factor << " buys " << best->gain << "x\n";
    }
}

void WhatIfReport::print_markdown(std::ostream& os) const {
    if (!attempted) {
        os << "**what-if**: not attempted\n";
        return;
    }
    os << "**what-if sensitivity** (predicted makespan relative to baseline "
       << baseline << " ticks):\n\n";
    // All curves share the sweep, so the matrix is params x factors.
    std::vector<double> factors;
    for (const WhatIfCurve& c : curves) {
        for (const WhatIfPoint& pt : c.points) {
            bool known = false;
            for (double f : factors) {
                if (std::abs(f - pt.factor) < 1e-12) known = true;
            }
            if (!known) factors.push_back(pt.factor);
        }
    }
    std::sort(factors.begin(), factors.end());
    os << "| param |";
    for (double f : factors) os << " x" << f << " |";
    os << " gain |\n|---|";
    for (std::size_t i = 0; i < factors.size(); ++i) os << "---|";
    os << "---|\n";
    for (const WhatIfCurve& c : curves) {
        os << "| " << to_string(c.param) << " |";
        for (double f : factors) {
            const WhatIfPoint* at = nullptr;
            for (const WhatIfPoint& pt : c.points) {
                if (std::abs(pt.factor - f) < 1e-12) at = &pt;
            }
            if (at == nullptr) {
                os << " - |";
            } else {
                os << " " << (baseline > 0.0 ? at->predicted / baseline : 0.0) << " |";
            }
        }
        os << " " << c.gain << "x |\n";
    }
    if (const WhatIfCurve* best = top()) {
        os << "\n**top bottleneck**: " << to_string(best->param) << " — x"
           << best->improve_factor << " buys " << best->gain << "x\n";
    }
}

sim::Ticks reprice_run(const trace::TraceSession& session, trace::SpanId run_root,
                       const sim::HpuParams& configured,
                       const sim::HpuParams& perturbed) {
    const SpanId root = resolve_root(session, run_root);
    if (root == trace::kNoSpan) return 0.0;
    const Span& run = session.span(root);
    if (priced_equal(configured, perturbed)) return run.duration();
    const auto ch = child_index(session);
    const sim::Ticks tol = 1e-9 * std::max(1.0, run.duration());
    return Repricer{session, ch, configured, perturbed, tol}.new_duration(root);
}

WhatIfReport what_if(const trace::TraceSession& session, trace::SpanId run_root,
                     const sim::HpuParams& hw, const WhatIfOptions& opts) {
    WhatIfReport rep;
    const SpanId root = resolve_root(session, run_root);
    if (root == trace::kNoSpan) return rep;
    rep.attempted = true;
    rep.baseline = session.span(root).duration();
    for (WhatIfParam p : opts.params) {
        if (p == WhatIfParam::kChunks) continue;  // a recorded run cannot re-chunk
        WhatIfCurve curve;
        curve.param = p;
        curve.configured = configured_value(hw, p, 0);
        for (double f : opts.factors) {
            WhatIfPoint pt;
            pt.factor = f;
            pt.predicted = reprice_run(session, root, hw, perturb(hw, p, f));
            pt.speedup = pt.predicted > 0.0 ? rep.baseline / pt.predicted : 1.0;
            curve.points.push_back(pt);
        }
        rank_curve(curve, rep.baseline);
        rep.curves.push_back(std::move(curve));
    }
    return rep;
}

sim::Ticks price_model(const sim::HpuParams& hw, const ModelPoint& mp) {
    switch (mp.kind) {
        case ScheduleKind::kBasic: {
            const model::BasicPrediction b =
                model::predict_basic(hw, mp.rec, mp.n, mp.words_per_transfer);
            return b.total_time + b.transfer_time;
        }
        case ScheduleKind::kAdvanced: {
            model::AdvancedModel m(hw, mp.rec, mp.n);
            if (mp.words_per_transfer > 0.0) m.set_words_per_transfer(mp.words_per_transfer);
            const model::AdvancedPrediction a =
                mp.alpha > 0.0 ? m.predict_at(mp.alpha, mp.y) : m.optimize();
            return a.total_time;
        }
        case ScheduleKind::kPipelined: {
            model::PipelinedModel m(hw, mp.rec, mp.n);
            m.set_device_ops_multiplier(mp.device_ops_multiplier);
            const std::uint64_t k = std::max<std::uint64_t>(1, mp.chunks);
            return m.predict_at(mp.alpha, mp.y, k).total_time;
        }
    }
    return 0.0;
}

WhatIfReport what_if_model(const sim::HpuParams& hw, const ModelPoint& mp,
                           const WhatIfOptions& opts) {
    WhatIfReport rep;
    if (mp.n <= 0.0) return rep;
    rep.attempted = true;
    rep.baseline = price_model(hw, mp);
    for (WhatIfParam p : opts.params) {
        if (p == WhatIfParam::kChunks &&
            (mp.kind != ScheduleKind::kPipelined || mp.chunks == 0)) {
            continue;
        }
        WhatIfCurve curve;
        curve.param = p;
        curve.configured = configured_value(hw, p, mp.chunks);
        for (double f : opts.factors) {
            WhatIfPoint pt;
            pt.factor = f;
            if (p == WhatIfParam::kChunks) {
                ModelPoint scaled = mp;
                scaled.chunks = std::max<std::uint64_t>(
                    1, static_cast<std::uint64_t>(
                           std::llround(static_cast<double>(mp.chunks) * f)));
                pt.predicted = price_model(hw, scaled);
            } else {
                pt.predicted = price_model(perturb(hw, p, f), mp);
            }
            pt.speedup = pt.predicted > 0.0 ? rep.baseline / pt.predicted : 1.0;
            curve.points.push_back(pt);
        }
        rank_curve(curve, rep.baseline);
        rep.curves.push_back(std::move(curve));
    }
    return rep;
}

}  // namespace hpu::obs
