#include "obs/estimate.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <vector>

#include "util/table.hpp"

namespace hpu::obs {
namespace {

using trace::Span;
using trace::SpanId;
using trace::SpanKind;
using trace::TraceSession;
using trace::Unit;

/// Membership mask of `root`'s subtree (everything when root == kNoSpan).
/// Parents always precede children in a session, so one forward pass
/// resolves the chains.
std::vector<char> scope_mask(const TraceSession& session, SpanId root) {
    std::vector<char> in(session.spans().size() + 1, root == trace::kNoSpan ? 1 : 0);
    if (root != trace::kNoSpan) {
        for (const Span& s : session.spans()) {
            if (s.id == root || (s.parent != trace::kNoSpan && in[s.parent] != 0)) {
                in[s.id] = 1;
            }
        }
    }
    return in;
}

ParamEstimate make(const char* name, double configured) {
    ParamEstimate e;
    e.name = name;
    e.configured = configured;
    return e;
}

void settle(ParamEstimate& e) {
    if (!e.identifiable) {
        // Echo the configured value so downstream consumers always see a
        // usable number; drift stays 0 (== "no statement").
        e.estimated = e.configured;
        e.drift = 0.0;
        return;
    }
    e.drift = drift_ratio(e.estimated, e.configured);
}

}  // namespace

double ParamFit::worst_drift() const noexcept {
    double w = 0.0;
    for (const ParamEstimate* e : {&g, &gamma, &lambda, &delta}) {
        if (e->identifiable) w = std::max(w, std::abs(e->drift - 1.0));
    }
    return w;
}

void ParamFit::print(std::ostream& os) const {
    util::Table t({"param", "configured", "estimated", "drift", "samples", "identifiable"}, 6);
    for (const ParamEstimate* e : {&g, &gamma, &lambda, &delta}) {
        t.add_row({e->name, e->configured, e->estimated, e->drift,
                   static_cast<std::int64_t>(e->samples),
                   std::string(e->identifiable ? "yes" : "no")});
    }
    t.print(os);
}

ParamFit estimate_params(const TraceSession& session, const sim::HpuParams& configured,
                         SpanId root) {
    ParamFit fit;
    fit.g = make("g", static_cast<double>(configured.gpu.g));
    fit.gamma = make("gamma", configured.gpu.gamma);
    fit.lambda = make("lambda", configured.link.lambda);
    fit.delta = make("delta", configured.link.delta);

    const std::vector<char> in = scope_mask(session, root);

    // Sample pools. Wave spans are the high-resolution source (functional
    // runs); gpu level spans are the coarse fallback (analytic runs).
    std::uint64_t wave_max_items = 0;
    std::size_t wave_count = 0;
    double gamma_num = 0.0, gamma_den = 0.0;  // through-origin LS accumulators
    std::uint64_t level_g_bound = 0;
    std::size_t level_count = 0;
    bool gpu_saturated = false;  ///< some level needed more than one wave
    struct LevelPoint {
        double x = 0.0;  ///< waves · max_ops
        double t = 0.0;
    };
    std::vector<LevelPoint> level_points;
    struct TransferPoint {
        double w = 0.0;  ///< words
        double t = 0.0;
    };
    std::vector<TransferPoint> transfers;

    for (const Span& s : session.spans()) {
        if (in[s.id] == 0) continue;
        if (s.kind == SpanKind::kWave && s.unit == Unit::kGpu) {
            wave_max_items = std::max(wave_max_items, s.attrs.items);
            if (s.duration() > 0.0 && s.attrs.max_ops > 0.0) {
                gamma_num += s.duration() * s.attrs.max_ops;
                gamma_den += s.duration() * s.duration();
                ++wave_count;
            }
            continue;
        }
        if ((s.kind == SpanKind::kLevel || s.kind == SpanKind::kLeaves) &&
            s.unit == Unit::kGpu && s.attrs.waves > 0 && s.attrs.items > 0) {
            level_g_bound =
                std::max(level_g_bound, util::ceil_div(s.attrs.items, s.attrs.waves));
            ++level_count;
            gpu_saturated |= s.attrs.waves >= 2;
            if (s.attrs.max_ops > 0.0) {
                level_points.push_back(
                    {static_cast<double>(s.attrs.waves) * s.attrs.max_ops, s.duration()});
            }
            continue;
        }
        if (s.kind == SpanKind::kTransfer && s.attrs.items > 0) {
            transfers.push_back({static_cast<double>(s.attrs.items), s.duration()});
        }
    }

    // --- g: the largest wave is g once the device saturated; the level
    // fallback ceil(items/waves) is a lower bound (tight for even splits).
    // Saturation is the identifiability gate: with every level fitting in
    // one wave the run only proves g >= max items — echoing that as an
    // estimate would flag "drift" on any run too small to fill the lanes.
    if (gpu_saturated && wave_max_items > 0) {
        fit.g.estimated = static_cast<double>(wave_max_items);
        fit.g.samples = wave_count > 0 ? wave_count : 1;
        fit.g.identifiable = true;
    } else if (gpu_saturated && level_g_bound > 0) {
        fit.g.estimated = static_cast<double>(level_g_bound);
        fit.g.samples = level_count;
        fit.g.identifiable = true;
    }
    settle(fit.g);

    // --- γ: wave duration = max_ops / γ exactly, so fit max_ops = γ·d
    // through the origin. Fallback: level spans fit t = a + x/γ with
    // x = waves·max_ops and a free intercept absorbing launch overhead.
    if (wave_count > 0 && gamma_den > 0.0) {
        fit.gamma.estimated = gamma_num / gamma_den;
        fit.gamma.samples = wave_count;
        fit.gamma.identifiable = true;
    } else if (!level_points.empty()) {
        const auto n = static_cast<double>(level_points.size());
        double sx = 0.0, st = 0.0, sxx = 0.0, sxt = 0.0;
        for (const LevelPoint& p : level_points) {
            sx += p.x;
            st += p.t;
            sxx += p.x * p.x;
            sxt += p.x * p.t;
        }
        const double det = n * sxx - sx * sx;
        if (det > 0.0) {
            const double slope = (n * sxt - sx * st) / det;
            if (slope > 0.0) {
                fit.gamma.estimated = 1.0 / slope;
                fit.gamma.samples = level_points.size();
                fit.gamma.identifiable = true;
            }
        } else {
            // One distinct abscissa: subtract the configured launch
            // overhead instead of fitting it.
            const double t = st / n - configured.gpu.launch_overhead;
            if (t > 0.0) {
                fit.gamma.estimated = (sx / n) / t;
                fit.gamma.samples = level_points.size();
                fit.gamma.identifiable = true;
            }
        }
    }
    settle(fit.gamma);

    // --- λ, δ: ordinary least squares over (words, duration). Two distinct
    // transfer sizes separate intercept from slope; with one size the
    // residual goes to λ and both parameters are flagged non-identifiable.
    if (!transfers.empty()) {
        const auto n = static_cast<double>(transfers.size());
        double sw = 0.0, st = 0.0, sww = 0.0, swt = 0.0;
        for (const TransferPoint& p : transfers) {
            sw += p.w;
            st += p.t;
            sww += p.w * p.w;
            swt += p.w * p.t;
        }
        const double det = n * sww - sw * sw;
        if (det > 0.0) {
            const double slope = (n * swt - sw * st) / det;
            fit.delta.estimated = slope;
            fit.lambda.estimated = (st - slope * sw) / n;
            fit.delta.identifiable = true;
            fit.lambda.identifiable = true;
        } else {
            fit.delta.estimated = configured.link.delta;
            fit.lambda.estimated = st / n - configured.link.delta * (sw / n);
        }
        fit.lambda.samples = transfers.size();
        fit.delta.samples = transfers.size();
    }
    settle(fit.lambda);
    settle(fit.delta);
    return fit;
}

}  // namespace hpu::obs
