// Critical-path extraction of hpu::obs (DESIGN.md §16): reconstruct the
// precedence chain that bounds a recorded run's makespan and attribute it
// to resources.
//
// A recorded span tree already encodes the schedule the executor computed:
// run → phase → level/leaves/hook/transfer spans with virtual start/end
// ticks (waves duplicate their level and are skipped). The critical path
// is recovered by walking backwards from the run's end tick: at every
// instant the chain stands on the *latest-finishing work span* that ends at
// (or before) the current frontier, so concurrent phases contribute only
// the arm that actually delayed the finish. Gaps where no work span ends
// are pool idle — the executor was waiting on something the trace does not
// price (by construction only the makespan's own slack).
//
// The resulting CritPathReport carries the ordered chain, per-resource
// blame shares (cpu / gpu lanes / link / hook bodies / idle) that sum to 1
// over the makespan, per-(unit, level) slack against the phase sync points,
// and the single dominant resource. It is attached to ExecReport::obs
// under ExecOptions::observe, published as hpu_critpath_* gauges, and
// exportable as a highlighted Chrome-trace flow (chrome_extras).
//
// Same discipline as the rest of hpu::obs: strictly read-only over the
// session, computed after the last tick, never perturbs the run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/params.hpp"
#include "trace/export.hpp"
#include "trace/span.hpp"

namespace hpu::obs {

/// The resource a critical-path step blames its ticks on.
enum class CritResource : std::uint8_t {
    kCpu,   ///< CPU level / leaf sweep ticks
    kGpu,   ///< GPU level / leaf sweep ticks (lane-bound kernel time)
    kLink,  ///< CPU<->GPU transfer ticks
    kHook,  ///< device/host hook bodies (layout pre-passes, flips)
    kIdle,  ///< makespan not covered by any work span (pool idle / waits)
};

const char* to_string(CritResource r) noexcept;

/// One step on the critical path, in chain (time) order.
struct CritStep {
    trace::SpanId id = trace::kNoSpan;
    trace::SpanKind kind = trace::SpanKind::kLevel;
    trace::Unit unit = trace::Unit::kHost;
    CritResource resource = CritResource::kCpu;
    std::string label;
    sim::Ticks start = 0.0;
    sim::Ticks end = 0.0;
    /// Global recursion-tree level (SpanAttrs::kNoLevel when not a level).
    std::uint64_t level = trace::SpanAttrs::kNoLevel;
    /// Idle ticks between the previous step's end and this step's start.
    sim::Ticks gap_before = 0.0;

    sim::Ticks duration() const noexcept { return end - start; }
};

/// Busy vs critical ticks for one (unit, level) row, with the slack that
/// row had against its phase's sync point. slack == 0 for rows that carry
/// the chain — shortening them moves the makespan; rows with positive
/// slack can absorb that much slowdown for free.
struct LevelSlack {
    trace::Unit unit = trace::Unit::kCpu;
    std::uint64_t level = trace::SpanAttrs::kNoLevel;  ///< kNoLevel = leaves/hooks/transfers
    std::string label;     ///< canonical label of the row's spans
    sim::Ticks busy = 0.0;      ///< summed span durations on the row
    sim::Ticks critical = 0.0;  ///< ticks of the row's spans on the chain
    sim::Ticks slack = 0.0;     ///< min distance to the governing sync point
};

/// Blame decomposition of one run's makespan.
struct CritPathReport {
    bool attempted = false;          ///< a run root was found and walked
    trace::SpanId run = trace::kNoSpan;
    std::string run_label;
    sim::Ticks start = 0.0;          ///< run start tick
    sim::Ticks makespan = 0.0;       ///< run end - run start
    std::vector<CritStep> chain;     ///< the critical path, time order

    /// Per-resource blame over the makespan; the five shares sum to 1
    /// (within a few ulp) whenever makespan > 0.
    sim::Ticks cpu_ticks = 0.0;
    sim::Ticks gpu_ticks = 0.0;
    sim::Ticks link_ticks = 0.0;
    sim::Ticks hook_ticks = 0.0;
    sim::Ticks idle_ticks = 0.0;
    double cpu_share = 0.0;
    double gpu_share = 0.0;
    double link_share = 0.0;
    double hook_share = 0.0;
    double idle_share = 0.0;

    CritResource dominant = CritResource::kIdle;
    double dominant_share = 0.0;

    std::vector<LevelSlack> slack;   ///< per-(unit, level, label) rows

    double share_of(CritResource r) const noexcept;
    sim::Ticks ticks_of(CritResource r) const noexcept;

    /// Chain table, blame shares, dominant resource, slack rows.
    void print(std::ostream& os) const;
};

/// Extracts the critical path of the run rooted at `run_root` (kNoSpan =
/// the first root span of the session). Read-only; returns an
/// un-attempted report when the session is empty or the root is invalid.
CritPathReport extract_critical_path(const trace::TraceSession& session,
                                     trace::SpanId run_root = trace::kNoSpan);

/// Merges one report's highlight into a Chrome-export decoration: each
/// chain span gets a 1-based "crit" index arg, the run root gets the chain
/// length and the five blame shares, and consecutive chain spans are
/// connected by flow arrows. Call once per run root to decorate a
/// multi-run session.
void add_to_extras(trace::ChromeExtras& extras, const CritPathReport& rep);

/// Convenience: a fresh ChromeExtras holding one report's highlight.
trace::ChromeExtras chrome_extras(const CritPathReport& rep);

}  // namespace hpu::obs
