#include "obs/watchdog.hpp"

#include <cmath>
#include <ostream>
#include <sstream>
#include <utility>

#include "obs/trace_io.hpp"
#include "trace/utilization.hpp"

namespace hpu::obs {
namespace {

void add_finding(ObsReport& rep, FindingKind kind, std::string message, double value,
                 double threshold) {
    ObsFinding f;
    f.kind = kind;
    f.message = std::move(message);
    f.value = value;
    f.threshold = threshold;
    rep.findings.push_back(std::move(f));
}

std::string fmt(double v) {
    std::ostringstream os;
    os.precision(4);
    os << v;
    return os.str();
}

void check_params(ObsReport& rep, const WatchdogThresholds& th) {
    for (const ParamEstimate* e :
         {&rep.fit.g, &rep.fit.gamma, &rep.fit.lambda, &rep.fit.delta}) {
        if (!e->identifiable) continue;
        const double dev = std::abs(e->drift - 1.0);
        if (dev <= th.param_drift) continue;
        add_finding(rep, FindingKind::kParamDrift,
                    e->name + " estimated " + fmt(e->estimated) + " vs configured " +
                        fmt(e->configured) + " (drift " + fmt(e->drift) + ")",
                    dev, th.param_drift);
    }
}

void check_utilization(ObsReport& rep, const WatchdogThresholds& th) {
    bool gpu_busy = false;
    for (const trace::UnitUtilization& u : rep.util.units) {
        if (u.unit == trace::Unit::kGpu && u.busy > 0.0) gpu_busy = true;
    }
    if (gpu_busy && rep.util.gpu_lane_occupancy < th.gpu_occupancy_floor) {
        add_finding(rep, FindingKind::kGpuCollapse,
                    "GPU lane occupancy " + fmt(rep.util.gpu_lane_occupancy) +
                        " under floor " + fmt(th.gpu_occupancy_floor),
                    rep.util.gpu_lane_occupancy, th.gpu_occupancy_floor);
    }
    if (rep.util.transfers > 0 && rep.util.peak_bandwidth > 0.0) {
        const double share = rep.util.effective_bandwidth / rep.util.peak_bandwidth;
        if (share < th.link_bandwidth_floor) {
            add_finding(rep, FindingKind::kLinkCollapse,
                        "link ran at " + fmt(share * 100.0) + "% of peak bandwidth (floor " +
                            fmt(th.link_bandwidth_floor * 100.0) + "%)",
                        share, th.link_bandwidth_floor);
        }
    }
}

void check_pool(ObsReport& rep, const ObserveContext& ctx) {
    if (!ctx.pool.has_value()) return;
    const util::PoolTelemetry& pool = *ctx.pool;
    const WatchdogThresholds& th = ctx.thresholds;
    if (pool.workers > 0 && pool.window_ns > 0) {
        double eff = static_cast<double>(pool.worker_busy_ns()) /
                     (static_cast<double>(pool.workers) *
                      static_cast<double>(pool.window_ns));
        if (eff > 1.0) eff = 1.0;
        if (eff < th.pool_efficiency_floor) {
            add_finding(rep, FindingKind::kPoolInefficiency,
                        "host pool workers only " + fmt(eff * 100.0) +
                            "% busy over the window (floor " +
                            fmt(th.pool_efficiency_floor * 100.0) + "%)",
                        eff, th.pool_efficiency_floor);
        }
    }
    if (pool.submit_latency_ns.count > 0) {
        const double p99 = pool.submit_latency_ns.p99();
        if (p99 > static_cast<double>(th.submit_latency_p99_ns)) {
            add_finding(rep, FindingKind::kSubmitLatency,
                        "pool submit latency p99 " + fmt(p99) + " ns over ceiling " +
                            fmt(static_cast<double>(th.submit_latency_p99_ns)) + " ns",
                        p99, static_cast<double>(th.submit_latency_p99_ns));
        }
    }
}

/// Escalates a drifted parameter estimate to a bottleneck finding when the
/// resource that parameter governs also dominates the critical path: "the
/// model is wrong exactly where the time goes". CPU and idle dominance
/// have no identifiable machine parameter, so they never escalate.
void check_critpath(ObsReport& rep, const WatchdogThresholds& th) {
    const CritPathReport& cp = rep.critpath;
    if (!cp.attempted || cp.dominant_share < th.crit_share) return;
    const ParamEstimate* worst = nullptr;
    switch (cp.dominant) {
        case CritResource::kGpu:
        case CritResource::kHook:
            for (const ParamEstimate* e : {&rep.fit.gamma, &rep.fit.g}) {
                if (!e->identifiable) continue;
                if (worst == nullptr ||
                    std::abs(e->drift - 1.0) > std::abs(worst->drift - 1.0)) {
                    worst = e;
                }
            }
            break;
        case CritResource::kLink:
            for (const ParamEstimate* e : {&rep.fit.lambda, &rep.fit.delta}) {
                if (!e->identifiable) continue;
                if (worst == nullptr ||
                    std::abs(e->drift - 1.0) > std::abs(worst->drift - 1.0)) {
                    worst = e;
                }
            }
            break;
        case CritResource::kCpu:
        case CritResource::kIdle:
            return;
    }
    if (worst == nullptr) return;
    const double dev = std::abs(worst->drift - 1.0);
    if (dev <= th.param_drift) return;
    add_finding(rep, FindingKind::kCritBottleneck,
                std::string(to_string(cp.dominant)) + " is " +
                    fmt(cp.dominant_share * 100.0) + "% of the critical path and " +
                    worst->name + " drifted " + fmt(worst->drift) + "x",
                cp.dominant_share, th.crit_share);
}

void check_pipeline(ObsReport& rep, const ObserveContext& ctx) {
    if (ctx.requested_chunks > 1 && ctx.settled_chunks <= 1) {
        add_finding(rep, FindingKind::kPipelineFallback,
                    "pipelined executor requested " + std::to_string(ctx.requested_chunks) +
                        " chunks but the never-worse guard fell back to the advanced plan",
                    static_cast<double>(ctx.settled_chunks),
                    static_cast<double>(ctx.requested_chunks));
    }
}

void publish_gauge(metrics::RegistrySnapshot& snap, const char* name, const char* help,
                   double value) {
    metrics::RegistrySnapshot::GaugeValue g;
    g.name = name;
    g.help = help;
    g.value = value;
    snap.gauges.push_back(std::move(g));
}

}  // namespace

const char* to_string(FindingKind kind) noexcept {
    switch (kind) {
        case FindingKind::kParamDrift: return "param-drift";
        case FindingKind::kGpuCollapse: return "gpu-collapse";
        case FindingKind::kLinkCollapse: return "link-collapse";
        case FindingKind::kPoolInefficiency: return "pool-inefficiency";
        case FindingKind::kSubmitLatency: return "submit-latency";
        case FindingKind::kPipelineFallback: return "pipeline-fallback";
        case FindingKind::kCritBottleneck: return "crit-bottleneck";
    }
    return "?";
}

void ObsReport::print(std::ostream& os) const {
    if (!attempted) {
        os << "observation: not attempted (no trace)\n";
        return;
    }
    os << "parameter re-fit:\n";
    fit.print(os);
    os << util.summary() << "\n";
    if (critpath.attempted) {
        os << "critical path: dominant " << to_string(critpath.dominant) << " ("
           << critpath.dominant_share * 100.0 << "% of makespan, "
           << critpath.chain.size() << " step(s))\n";
    }
    if (clean()) {
        os << "watchdog: clean\n";
        return;
    }
    os << "watchdog: " << findings.size() << " finding(s)\n";
    for (const ObsFinding& f : findings) {
        os << "  [" << to_string(f.kind) << "] " << f.message << "\n";
    }
}

ObsReport observe(const trace::TraceSession& session, trace::SpanId run_root,
                  const ObserveContext& ctx) {
    ObsReport rep;
    if (session.spans().empty()) return rep;
    if (run_root != trace::kNoSpan && run_root > session.spans().size()) return rep;

    // Scope to the requested run's subtree so a session that accumulated
    // several runs yields per-run observations.
    trace::TraceSession scoped;
    const trace::TraceSession* scope = &session;
    if (run_root != trace::kNoSpan) {
        scoped = copy_subtree(session, run_root);
        scope = &scoped;
    }

    rep.attempted = true;
    rep.fit = estimate_params(*scope, ctx.hw);
    rep.util = trace::derive_utilization(*scope, ctx.hw, ctx.rec, ctx.device_ops_multiplier);
    // Critical path over the ORIGINAL session so the report's span ids stay
    // valid for Chrome-export highlighting (the scoped copy renumbers).
    rep.critpath = extract_critical_path(session, run_root);

    check_params(rep, ctx.thresholds);
    check_utilization(rep, ctx.thresholds);
    check_critpath(rep, ctx.thresholds);
    check_pool(rep, ctx);
    check_pipeline(rep, ctx);
    return rep;
}

void publish_obs(metrics::RegistrySnapshot& snap, const ObsReport& obs) {
    publish_gauge(snap, "hpu_obs_attempted", "observation ran over a trace (1 = yes)",
                  obs.attempted ? 1.0 : 0.0);
    publish_gauge(snap, "hpu_obs_findings", "watchdog findings on the observed run",
                  static_cast<double>(obs.findings.size()));
    if (!obs.attempted) return;
    publish_gauge(snap, "hpu_obs_drift_g", "estimated/configured GPU lane count",
                  obs.fit.g.drift);
    publish_gauge(snap, "hpu_obs_drift_gamma", "estimated/configured GPU throughput",
                  obs.fit.gamma.drift);
    publish_gauge(snap, "hpu_obs_drift_lambda", "estimated/configured transfer latency",
                  obs.fit.lambda.drift);
    publish_gauge(snap, "hpu_obs_drift_delta", "estimated/configured per-word transfer cost",
                  obs.fit.delta.drift);
    publish_gauge(snap, "hpu_obs_worst_drift",
                  "largest |drift - 1| over identifiable parameters",
                  obs.fit.worst_drift());
    publish_gauge(snap, "hpu_obs_gpu_lane_occupancy", "time-weighted busy lanes / g",
                  obs.util.gpu_lane_occupancy);
    publish_gauge(snap, "hpu_obs_gpu_work_share", "GPU share of CPU-normalized work",
                  obs.util.gpu_work_share);
    publish_gauge(snap, "hpu_obs_link_utilization", "link busy share of the traced interval",
                  obs.util.link_utilization);
    publish_gauge(snap, "hpu_obs_effective_bandwidth", "words per tick while transferring",
                  obs.util.effective_bandwidth);
    publish_gauge(snap, "hpu_critpath_attempted",
                  "critical-path extraction ran over the observed run (1 = yes)",
                  obs.critpath.attempted ? 1.0 : 0.0);
    if (!obs.critpath.attempted) return;
    publish_gauge(snap, "hpu_critpath_steps", "spans on the critical path",
                  static_cast<double>(obs.critpath.chain.size()));
    publish_gauge(snap, "hpu_critpath_makespan_ticks", "observed run makespan (virtual ticks)",
                  obs.critpath.makespan);
    publish_gauge(snap, "hpu_critpath_cpu_share", "CPU share of the critical path",
                  obs.critpath.cpu_share);
    publish_gauge(snap, "hpu_critpath_gpu_share", "GPU share of the critical path",
                  obs.critpath.gpu_share);
    publish_gauge(snap, "hpu_critpath_link_share", "link share of the critical path",
                  obs.critpath.link_share);
    publish_gauge(snap, "hpu_critpath_hook_share", "hook share of the critical path",
                  obs.critpath.hook_share);
    publish_gauge(snap, "hpu_critpath_idle_share", "idle share of the critical path",
                  obs.critpath.idle_share);
    publish_gauge(snap, "hpu_critpath_dominant_share",
                  "share of the single dominant critical-path resource",
                  obs.critpath.dominant_share);
}

}  // namespace hpu::obs
