// Online parameter estimation of hpu::obs (DESIGN.md §13): least-squares
// re-fits of the machine parameters (g, γ, λ, δ) from the span telemetry of
// completed runs, compared against the configured sim::HpuParams. This is
// the observational half of the ROADMAP's "online re-estimation" item: the
// estimator reports drift, it does not re-solve the schedule mid-flight.
//
// What each parameter is fitted from:
//
//   g  — wave spans: a wave holds at most g busy lanes, and any level with
//        more than g tasks produces a full wave, so the largest wave item
//        count observed IS g (exact once the device saturated). Without
//        wave spans (analytic runs), level spans give ceil(items/waves),
//        a lower bound that is tight when items divide evenly.
//   γ  — wave spans: a wave's duration is max_item_ops / γ by definition,
//        so γ is the through-origin least-squares slope of max_ops against
//        duration. Without wave spans, level spans fit
//        t = launch_overhead + waves·max_ops/γ with a free intercept.
//   λ,δ — transfer spans: t = λ + δ·words, ordinary least squares over the
//        observed (words, duration) pairs. Needs two distinct transfer
//        sizes to separate the intercept from the slope; with only one,
//        the residual is attributed to λ and both are flagged
//        non-identifiable.
//
// The file also hosts the shared drift primitives (price_level_span,
// drift_ratio) that trace/utilization.cpp and metrics/profile.cpp price
// their drift columns with. They are header-only inline functions so the
// lower-layer libraries can use them without linking hpu_obs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "model/recurrence.hpp"
#include "sim/params.hpp"
#include "trace/span.hpp"
#include "util/math.hpp"

namespace hpu::obs {

// ---------------------------------------------------------------------------
// Shared drift primitives.

/// hpu::model price of one level/leaves span on its unit (pure §5 model: no
/// contention, no imbalance — that is exactly what drift exposes). `n` is
/// the run's total input size, `rec`/`dev_mult` the algorithm's recurrence
/// and device op multiplier.
inline sim::Ticks price_level_span(const trace::Span& s, double n, const sim::HpuParams& hw,
                                   const model::Recurrence& rec, double dev_mult) {
    const double tasks = static_cast<double>(s.attrs.tasks);
    if (tasks <= 0.0) return 0.0;
    const double task_cost = s.kind == trace::SpanKind::kLeaves
                                 ? rec.leaf_cost
                                 : rec.task_cost(n, static_cast<double>(s.attrs.level));
    if (s.unit != trace::Unit::kGpu) {
        const auto rounds = static_cast<double>(
            util::ceil_div(s.attrs.tasks, static_cast<std::uint64_t>(hw.cpu.p)));
        return rounds * task_cost;
    }
    const auto waves = static_cast<double>(util::ceil_div(s.attrs.tasks, hw.gpu.g));
    // Leaf sweeps charge plain compute (no memory walk), so the device op
    // multiplier applies only to internal levels — mirroring the analytic
    // executor paths.
    const double mult = s.kind == trace::SpanKind::kLeaves ? 1.0 : dev_mult;
    return hw.gpu.launch_overhead + waves * task_cost * mult / hw.gpu.gamma;
}

/// Observed / predicted (or wall / virtual): the one drift ratio every
/// report shares. 0 when the predicted side charged nothing.
inline double drift_ratio(double observed, double predicted) {
    return predicted > 0.0 ? observed / predicted : 0.0;
}

// ---------------------------------------------------------------------------
// Parameter re-estimation.

/// One machine parameter, configured vs re-fitted.
struct ParamEstimate {
    std::string name;           ///< "g", "gamma", "lambda", "delta"
    double configured = 0.0;
    double estimated = 0.0;
    /// estimated / configured (1 = calibrated). 0 when not identifiable.
    double drift = 0.0;
    /// The telemetry pinned this parameter down (enough samples, and — for
    /// λ/δ — transfers of at least two distinct sizes). Non-identifiable
    /// estimates echo the configured value and never fire watchdog findings.
    bool identifiable = false;
    std::size_t samples = 0;    ///< spans the fit consumed
};

/// The full (g, γ, λ, δ) re-fit of one span population.
struct ParamFit {
    ParamEstimate g;
    ParamEstimate gamma;
    ParamEstimate lambda;
    ParamEstimate delta;

    /// Largest |drift − 1| over the identifiable parameters (0 when none).
    double worst_drift() const noexcept;

    /// Aligned parameter table (configured, estimated, drift, samples).
    void print(std::ostream& os) const;
};

/// Re-fits (g, γ, λ, δ) from the spans of `session`, scoped to the subtree
/// under `root` (kNoSpan = the whole session — pass several runs at
/// different sizes for the transfer sizes λ/δ need). `configured` supplies
/// the values drift is measured against and the fallbacks for
/// non-identifiable parameters.
ParamFit estimate_params(const trace::TraceSession& session,
                         const sim::HpuParams& configured,
                         trace::SpanId root = trace::kNoSpan);

}  // namespace hpu::obs
