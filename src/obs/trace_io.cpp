#include "obs/trace_io.hpp"

#include <cstdlib>
#include <fstream>
#include <istream>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

namespace hpu::obs {
namespace {

using trace::Span;
using trace::SpanAttrs;
using trace::SpanId;
using trace::SpanKind;
using trace::TraceSession;
using trace::Unit;

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser (exactly the subset our
// exporter emits).

struct Json {
    enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };
    Type type = Type::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Json> arr;
    std::vector<std::pair<std::string, Json>> obj;

    const Json* find(const std::string& key) const {
        for (const auto& [k, v] : obj) {
            if (k == key) return &v;
        }
        return nullptr;
    }
    double num_or(const std::string& key, double def) const {
        const Json* v = find(key);
        return v != nullptr && v->type == Type::kNumber ? v->number : def;
    }
    std::string str_or(const std::string& key, const std::string& def) const {
        const Json* v = find(key);
        return v != nullptr && v->type == Type::kString ? v->str : def;
    }
};

class Parser {
public:
    explicit Parser(const std::string& text) : s_(text) {}

    bool parse(Json& out) {
        skip_ws();
        if (!value(out)) return false;
        skip_ws();
        if (p_ != s_.size()) return fail("trailing characters after JSON value");
        return true;
    }

    const std::string& error() const noexcept { return err_; }

private:
    bool fail(const char* msg) {
        if (err_.empty()) {
            std::ostringstream os;
            os << msg << " (offset " << p_ << ")";
            err_ = os.str();
        }
        return false;
    }

    void skip_ws() {
        while (p_ < s_.size() && (s_[p_] == ' ' || s_[p_] == '\t' || s_[p_] == '\n' ||
                                  s_[p_] == '\r')) {
            ++p_;
        }
    }

    bool literal(const char* word, std::size_t len) {
        if (s_.compare(p_, len, word) != 0) return fail("bad literal");
        p_ += len;
        return true;
    }

    bool value(Json& out) {
        if (p_ >= s_.size()) return fail("unexpected end of input");
        switch (s_[p_]) {
            case '{': return object(out);
            case '[': return array(out);
            case '"':
                out.type = Json::Type::kString;
                return string(out.str);
            case 't':
                out.type = Json::Type::kBool;
                out.boolean = true;
                return literal("true", 4);
            case 'f':
                out.type = Json::Type::kBool;
                out.boolean = false;
                return literal("false", 5);
            case 'n':
                out.type = Json::Type::kNull;
                return literal("null", 4);
            default: return number(out);
        }
    }

    bool object(Json& out) {
        out.type = Json::Type::kObject;
        ++p_;  // '{'
        skip_ws();
        if (p_ < s_.size() && s_[p_] == '}') {
            ++p_;
            return true;
        }
        while (true) {
            skip_ws();
            std::string key;
            if (p_ >= s_.size() || s_[p_] != '"' || !string(key)) {
                return fail("expected object key");
            }
            skip_ws();
            if (p_ >= s_.size() || s_[p_] != ':') return fail("expected ':'");
            ++p_;
            skip_ws();
            Json v;
            if (!value(v)) return false;
            out.obj.emplace_back(std::move(key), std::move(v));
            skip_ws();
            if (p_ >= s_.size()) return fail("unterminated object");
            if (s_[p_] == ',') {
                ++p_;
                continue;
            }
            if (s_[p_] == '}') {
                ++p_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool array(Json& out) {
        out.type = Json::Type::kArray;
        ++p_;  // '['
        skip_ws();
        if (p_ < s_.size() && s_[p_] == ']') {
            ++p_;
            return true;
        }
        while (true) {
            skip_ws();
            Json v;
            if (!value(v)) return false;
            out.arr.push_back(std::move(v));
            skip_ws();
            if (p_ >= s_.size()) return fail("unterminated array");
            if (s_[p_] == ',') {
                ++p_;
                continue;
            }
            if (s_[p_] == ']') {
                ++p_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool string(std::string& out) {
        ++p_;  // '"'
        while (p_ < s_.size()) {
            const char c = s_[p_];
            if (c == '"') {
                ++p_;
                return true;
            }
            if (c == '\\') {
                if (p_ + 1 >= s_.size()) return fail("bad escape");
                const char e = s_[p_ + 1];
                switch (e) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'n': out += '\n'; break;
                    case 't': out += '\t'; break;
                    case 'r': out += '\r'; break;
                    case 'u': {
                        if (p_ + 5 >= s_.size()) return fail("bad \\u escape");
                        const unsigned long cp =
                            std::strtoul(s_.substr(p_ + 2, 4).c_str(), nullptr, 16);
                        // Labels are ASCII; the exporter only escapes
                        // control characters.
                        out += static_cast<char>(cp & 0x7f);
                        p_ += 4;
                        break;
                    }
                    default: return fail("unsupported escape");
                }
                p_ += 2;
                continue;
            }
            out += c;
            ++p_;
        }
        return fail("unterminated string");
    }

    bool number(Json& out) {
        const char* begin = s_.c_str() + p_;
        char* end = nullptr;
        out.type = Json::Type::kNumber;
        out.number = std::strtod(begin, &end);
        if (end == begin) return fail("expected a number");
        p_ += static_cast<std::size_t>(end - begin);
        return true;
    }

    const std::string& s_;
    std::size_t p_ = 0;
    std::string err_;
};

// ---------------------------------------------------------------------------
// Chrome trace-event interpretation.

bool kind_of(const std::string& cat, SpanKind& out) {
    if (cat == "run") out = SpanKind::kRun;
    else if (cat == "phase") out = SpanKind::kPhase;
    else if (cat == "level") out = SpanKind::kLevel;
    else if (cat == "leaves") out = SpanKind::kLeaves;
    else if (cat == "wave") out = SpanKind::kWave;
    else if (cat == "transfer") out = SpanKind::kTransfer;
    else if (cat == "hook") out = SpanKind::kHook;
    else return false;
    return true;
}

bool unit_of(const std::string& name, Unit& out) {
    if (name == "host") out = Unit::kHost;
    else if (name == "cpu") out = Unit::kCpu;
    else if (name == "gpu") out = Unit::kGpu;
    else if (name == "link") out = Unit::kLink;
    else return false;
    return true;
}

std::uint64_t u64_or(const Json& args, const std::string& key, std::uint64_t def) {
    const Json* v = args.find(key);
    return v != nullptr && v->type == Json::Type::kNumber
               ? static_cast<std::uint64_t>(v->number)
               : def;
}

}  // namespace

LoadedTrace parse_chrome_trace(std::istream& is) {
    LoadedTrace out;
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string text = buf.str();

    Json root;
    Parser parser(text);
    if (!parser.parse(root)) {
        out.error = "JSON parse error: " + parser.error();
        return out;
    }
    const Json* events = root.find("traceEvents");
    if (events == nullptr || events->type != Json::Type::kArray) {
        out.error = "not a Chrome trace: missing traceEvents array";
        return out;
    }

    std::map<int, Unit> unit_of_tid;
    struct Rec {
        Span span;
        bool seen = false;
    };
    std::vector<Rec> recs;

    for (const Json& ev : events->arr) {
        if (ev.type != Json::Type::kObject) continue;
        const std::string ph = ev.str_or("ph", "");
        if (ph == "M") {
            const Json* args = ev.find("args");
            Unit u = Unit::kHost;
            if (args != nullptr && unit_of(args->str_or("name", ""), u)) {
                unit_of_tid[static_cast<int>(ev.num_or("tid", 0))] = u;
            }
            continue;
        }
        if (ph != "X") continue;
        const Json* args = ev.find("args");
        if (args == nullptr || args->type != Json::Type::kObject) {
            out.error = "X event without args";
            return out;
        }
        Span s;
        s.id = static_cast<SpanId>(u64_or(*args, "span_id", 0));
        s.parent = static_cast<SpanId>(u64_or(*args, "parent", 0));
        if (s.id == trace::kNoSpan) {
            out.error = "X event without span_id";
            return out;
        }
        if (!kind_of(ev.str_or("cat", ""), s.kind)) {
            out.error = "unknown span kind: " + ev.str_or("cat", "");
            return out;
        }
        const auto tid = static_cast<int>(ev.num_or("tid", 0));
        const auto uit = unit_of_tid.find(tid);
        if (uit == unit_of_tid.end()) {
            out.error = "X event on a tid with no thread_name metadata";
            return out;
        }
        s.unit = uit->second;
        s.label = ev.str_or("name", "");
        s.start = ev.num_or("ts", 0.0);
        s.end = s.start + ev.num_or("dur", 0.0);
        SpanAttrs& a = s.attrs;
        a.level = u64_or(*args, "level", SpanAttrs::kNoLevel);
        a.tasks = u64_or(*args, "tasks", 0);
        a.items = u64_or(*args, "items", 0);
        a.waves = u64_or(*args, "waves", 0);
        a.ops = args->num_or("ops", 0.0);
        a.max_ops = args->num_or("max_ops", 0.0);
        a.work = args->num_or("work", 0.0);
        a.bytes = u64_or(*args, "bytes", 0);
        a.coalesced_transactions = u64_or(*args, "coalesced_transactions", 0);
        a.strided_transactions = u64_or(*args, "strided_transactions", 0);
        a.extent_words = u64_or(*args, "extent_words", 0);
        a.imbalance = args->num_or("imbalance", 0.0);
        // Wall stamps in the export are rebased to the session epoch; keep
        // the rebased values (only differences are meaningful anyway).
        s.wall_ns = u64_or(*args, "wall_ns", 0);
        s.wall_start_ns = s.wall_ns != 0 ? u64_or(*args, "wall_start_ns", 0) : 0;

        if (recs.size() < s.id) recs.resize(s.id);
        if (recs[s.id - 1].seen) {
            out.error = "duplicate span_id in trace";
            return out;
        }
        recs[s.id - 1].span = std::move(s);
        recs[s.id - 1].seen = true;
    }

    for (std::size_t i = 0; i < recs.size(); ++i) {
        if (!recs[i].seen) {
            out.error = "span ids are not contiguous (missing id " +
                        std::to_string(i + 1) + ")";
            return out;
        }
        const Span& s = recs[i].span;
        if (s.parent >= s.id) {
            out.error = "span " + std::to_string(s.id) + " has parent >= id";
            return out;
        }
        const SpanId id = out.session.record(s.kind, s.unit, s.label, s.start, s.duration(),
                                             s.attrs, s.parent);
        if (s.wall_ns != 0) out.session.annotate_wall(id, s.wall_start_ns, s.wall_ns);
    }
    return out;
}

LoadedTrace load_chrome_trace(const std::string& path) {
    std::ifstream f(path);
    if (!f) {
        LoadedTrace out;
        out.error = "cannot open " + path;
        return out;
    }
    return parse_chrome_trace(f);
}

trace::TraceSession copy_subtree(const TraceSession& session, SpanId root) {
    TraceSession out;
    std::vector<SpanId> remap(session.spans().size() + 1, trace::kNoSpan);
    for (const Span& s : session.spans()) {
        const bool in_scope = root == trace::kNoSpan
                                  ? true
                                  : s.id == root || (s.parent != trace::kNoSpan &&
                                                     remap[s.parent] != trace::kNoSpan);
        if (!in_scope) continue;
        const SpanId parent =
            s.id == root ? trace::kNoSpan
                         : (s.parent == trace::kNoSpan ? trace::kNoSpan : remap[s.parent]);
        const SpanId id =
            out.record(s.kind, s.unit, s.label, s.start, s.duration(), s.attrs, parent);
        if (s.wall_ns != 0) out.annotate_wall(id, s.wall_start_ns, s.wall_ns);
        remap[s.id] = id;
    }
    return out;
}

}  // namespace hpu::obs
