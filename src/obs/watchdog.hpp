// Watchdog findings of hpu::obs (DESIGN.md §13): thresholded anomaly
// detection over a completed run's telemetry. The watchdog re-fits the
// machine parameters (obs/estimate.hpp), derives the utilization report
// (trace/utilization.hpp), and turns threshold violations into findings
// attached to the run's ExecReport — observational only, after the last
// tick is computed, so enabling it cannot perturb the virtual clock.
//
// Findings are facts with context ("gamma drift 1.42 exceeds 1.25"), not
// exceptions: a run with findings still returns normally, and CI decides
// what to gate on. publish_obs mirrors a report into hpu_obs_* gauges so
// the Prometheus/JSON exporters carry it alongside the pool and simulator
// metrics.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "metrics/registry.hpp"
#include "obs/critpath.hpp"
#include "obs/estimate.hpp"
#include "trace/utilization.hpp"
#include "util/thread_pool.hpp"

namespace hpu::obs {

enum class FindingKind : std::uint8_t {
    kParamDrift,       ///< an identifiable (g, γ, λ, δ) estimate drifted
    kGpuCollapse,      ///< GPU used but lane occupancy under the floor
    kLinkCollapse,     ///< transfers ran at a sliver of peak bandwidth
    kPoolInefficiency, ///< host pool workers mostly idle during the window
    kSubmitLatency,    ///< pool submit→first-claim p99 over the ceiling
    kPipelineFallback, ///< pipelined executor's never-worse guard fell back
    kCritBottleneck,   ///< a drifted parameter's resource dominates the critical path
};

const char* to_string(FindingKind kind) noexcept;

/// One threshold violation: what fired, the observed value, and the
/// threshold it crossed.
struct ObsFinding {
    FindingKind kind = FindingKind::kParamDrift;
    std::string message;
    double value = 0.0;
    double threshold = 0.0;
};

/// All thresholds the watchdog checks. Defaults are deliberately loose —
/// they flag collapse, not jitter.
struct WatchdogThresholds {
    /// |drift − 1| ceiling per identifiable parameter estimate.
    double param_drift = 0.25;
    /// Lane-occupancy floor, checked only when the GPU did work.
    double gpu_occupancy_floor = 0.50;
    /// effective/peak bandwidth floor, checked only when transfers ran.
    double link_bandwidth_floor = 0.25;
    /// worker-busy share floor for the host pool window.
    double pool_efficiency_floor = 0.20;
    /// p99 ceiling for the pool's submit→first-claim latency.
    std::uint64_t submit_latency_p99_ns = 50'000'000;
    /// Critical-path share a resource must hold before a drifted estimate
    /// of its governing parameter escalates to kCritBottleneck.
    double crit_share = 0.50;
};

/// Everything the watchdog needs besides the trace: the machine and
/// algorithm the run executed on (to price the model side), plus optional
/// wall-clock context the trace does not carry.
struct ObserveContext {
    sim::HpuParams hw{};
    model::Recurrence rec{};
    double device_ops_multiplier = 1.0;
    /// Host pool telemetry for the run's window, when a pool was involved.
    std::optional<util::PoolTelemetry> pool;
    /// Pipelined executor: chunks requested vs chunks the never-worse
    /// guard settled on (settled <= 1 with requested > 1 means fallback).
    std::size_t requested_chunks = 0;
    std::size_t settled_chunks = 0;
    WatchdogThresholds thresholds{};
};

/// The observation attached to an ExecReport when observe mode is on.
struct ObsReport {
    bool attempted = false;  ///< observe ran (trace present, root found)
    ParamFit fit{};
    trace::UtilizationReport util{};
    /// Makespan blame decomposition of the observed run (span ids refer to
    /// the original session, not the scoped copy).
    CritPathReport critpath{};
    std::vector<ObsFinding> findings;

    bool clean() const noexcept { return findings.empty(); }

    /// Parameter table, utilization summary, and the findings list.
    void print(std::ostream& os) const;
};

/// Runs the full observation over the subtree under `run_root` (kNoSpan =
/// whole session): parameter re-fit, utilization derivation, watchdog
/// checks. Read-only over the session.
ObsReport observe(const trace::TraceSession& session, trace::SpanId run_root,
                  const ObserveContext& ctx);

/// Appends an ObsReport to a metrics snapshot under the hpu_obs_* namespace
/// (findings count, per-parameter drift, occupancy/bandwidth gauges).
void publish_obs(metrics::RegistrySnapshot& snap, const ObsReport& obs);

}  // namespace hpu::obs
