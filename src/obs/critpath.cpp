#include "obs/critpath.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <ostream>
#include <utility>

#include "util/table.hpp"

namespace hpu::obs {
namespace {

using trace::Span;
using trace::SpanId;
using trace::SpanKind;
using trace::TraceSession;

/// Work spans are the schedulable leaves of the precedence DAG. Waves are
/// excluded (they duplicate their level span on the same clock), run/phase
/// spans are grouping only.
bool is_work(const Span& s) noexcept {
    switch (s.kind) {
        case SpanKind::kLevel:
        case SpanKind::kLeaves:
        case SpanKind::kTransfer:
        case SpanKind::kHook:
            return true;
        case SpanKind::kRun:
        case SpanKind::kPhase:
        case SpanKind::kWave:
            return false;
    }
    return false;
}

CritResource resource_of(const Span& s) noexcept {
    switch (s.kind) {
        case SpanKind::kTransfer: return CritResource::kLink;
        case SpanKind::kHook: return CritResource::kHook;
        default:
            return s.unit == trace::Unit::kGpu ? CritResource::kGpu : CritResource::kCpu;
    }
}

/// Same label canonicalization as obs::diff: strip the per-instance
/// bracket suffix ("xfer-in-chunk[3]" -> "xfer-in-chunk").
std::string canonical(const std::string& label) {
    const std::size_t at = label.find('[');
    return at == std::string::npos ? label : label.substr(0, at);
}

std::vector<std::vector<SpanId>> child_index(const TraceSession& s) {
    std::vector<std::vector<SpanId>> ch(s.spans().size() + 1);
    for (const Span& sp : s.spans()) ch[sp.parent].push_back(sp.id);
    return ch;
}

/// All span ids in the subtree under `root`, root excluded.
std::vector<SpanId> subtree_of(const std::vector<std::vector<SpanId>>& ch, SpanId root) {
    std::vector<SpanId> out;
    std::vector<SpanId> stack(ch[root].begin(), ch[root].end());
    while (!stack.empty()) {
        const SpanId id = stack.back();
        stack.pop_back();
        out.push_back(id);
        stack.insert(stack.end(), ch[id].begin(), ch[id].end());
    }
    return out;
}

/// Walks backwards from the run's end tick, standing at each instant on
/// the latest-finishing unused work span at or before the frontier.
/// Returns the chain in time order; gaps where no work span ends become
/// the steps' gap_before (leading gap) and trailing idle.
std::vector<CritStep> walk_chain(const TraceSession& session,
                                 const std::vector<SpanId>& work, const Span& run,
                                 sim::Ticks tol) {
    std::vector<CritStep> chain;  // built back-to-front
    std::vector<bool> used(work.size(), false);
    sim::Ticks frontier = run.end;
    SpanId last_parent = trace::kNoSpan;
    for (std::size_t guard = 0; guard < work.size(); ++guard) {
        if (frontier <= run.start + tol) break;
        // Latest end at or before the frontier, over unused work spans.
        sim::Ticks best_end = run.start;
        bool found = false;
        for (std::size_t i = 0; i < work.size(); ++i) {
            if (used[i]) continue;
            const Span& s = session.span(work[i]);
            if (s.end > frontier + tol) continue;
            if (!found || s.end > best_end) {
                best_end = s.end;
                found = true;
            }
        }
        if (!found) break;
        // Tie-break ends within tol: stay in the current chain span's
        // phase, then take the longer span, then the earlier-recorded one.
        std::size_t pick = work.size();
        for (std::size_t i = 0; i < work.size(); ++i) {
            if (used[i]) continue;
            const Span& s = session.span(work[i]);
            if (s.end > frontier + tol || s.end < best_end - tol) continue;
            if (pick == work.size()) {
                pick = i;
                continue;
            }
            const Span& cur = session.span(work[pick]);
            const bool s_same = s.parent == last_parent;
            const bool cur_same = cur.parent == last_parent;
            if (s_same != cur_same) {
                if (s_same) pick = i;
                continue;
            }
            if (s.end != cur.end) {
                if (s.end > cur.end) pick = i;
                continue;
            }
            if (s.duration() > cur.duration()) pick = i;
        }
        const Span& chosen = session.span(work[pick]);
        used[pick] = true;
        last_parent = chosen.parent;
        sim::Ticks gap = frontier - chosen.end;
        if (gap < tol) gap = 0.0;
        if (!chain.empty()) {
            chain.back().gap_before = gap;  // back() is the step *after* chosen
        }
        // Trailing idle (chain empty, gap > 0) is recovered by the caller
        // from makespan minus the summed chain durations.
        CritStep step;
        step.id = chosen.id;
        step.kind = chosen.kind;
        step.unit = chosen.unit;
        step.resource = resource_of(chosen);
        step.label = chosen.label;
        step.start = chosen.start;
        step.end = chosen.end;
        step.level = chosen.attrs.level;
        chain.push_back(std::move(step));
        frontier = chosen.start;
    }
    if (!chain.empty()) {
        sim::Ticks lead = frontier - run.start;
        if (lead < tol) lead = 0.0;
        chain.back().gap_before = lead;
    }
    std::reverse(chain.begin(), chain.end());
    return chain;
}

/// Slack of each direct phase child of the run against its sync point:
/// phases whose intervals overlap form one fork-join group, the group's
/// sync is its latest end, and a phase's slack is how much later it could
/// have finished without moving that sync.
std::vector<std::pair<SpanId, sim::Ticks>> phase_slack(
    const TraceSession& session, const std::vector<std::vector<SpanId>>& ch,
    SpanId run_root, sim::Ticks tol) {
    std::vector<const Span*> phases;
    for (SpanId id : ch[run_root]) {
        const Span& s = session.span(id);
        if (s.kind == SpanKind::kPhase) phases.push_back(&s);
    }
    std::sort(phases.begin(), phases.end(),
              [](const Span* a, const Span* b) { return a->start < b->start; });
    std::vector<std::pair<SpanId, sim::Ticks>> out;
    std::size_t i = 0;
    while (i < phases.size()) {
        std::size_t j = i;
        sim::Ticks group_end = phases[i]->end;
        while (j + 1 < phases.size() && phases[j + 1]->start < group_end - tol) {
            ++j;
            group_end = std::max(group_end, phases[j]->end);
        }
        for (std::size_t k = i; k <= j; ++k) {
            sim::Ticks slack = group_end - phases[k]->end;
            if (slack < tol) slack = 0.0;
            out.emplace_back(phases[k]->id, slack);
        }
        i = j + 1;
    }
    return out;
}

}  // namespace

const char* to_string(CritResource r) noexcept {
    switch (r) {
        case CritResource::kCpu: return "cpu";
        case CritResource::kGpu: return "gpu";
        case CritResource::kLink: return "link";
        case CritResource::kHook: return "hook";
        case CritResource::kIdle: return "idle";
    }
    return "?";
}

double CritPathReport::share_of(CritResource r) const noexcept {
    switch (r) {
        case CritResource::kCpu: return cpu_share;
        case CritResource::kGpu: return gpu_share;
        case CritResource::kLink: return link_share;
        case CritResource::kHook: return hook_share;
        case CritResource::kIdle: return idle_share;
    }
    return 0.0;
}

sim::Ticks CritPathReport::ticks_of(CritResource r) const noexcept {
    switch (r) {
        case CritResource::kCpu: return cpu_ticks;
        case CritResource::kGpu: return gpu_ticks;
        case CritResource::kLink: return link_ticks;
        case CritResource::kHook: return hook_ticks;
        case CritResource::kIdle: return idle_ticks;
    }
    return 0.0;
}

void CritPathReport::print(std::ostream& os) const {
    if (!attempted) {
        os << "critical path: not attempted (no trace)\n";
        return;
    }
    os << "critical path: " << run_label << " makespan " << makespan << " ticks, "
       << chain.size() << " step(s)\n";
    os << "  dominant: " << to_string(dominant) << " (" << dominant_share * 100.0
       << "% of makespan)\n";
    os << "  blame:";
    for (CritResource r : {CritResource::kCpu, CritResource::kGpu, CritResource::kLink,
                           CritResource::kHook, CritResource::kIdle}) {
        os << " " << to_string(r) << " " << share_of(r) * 100.0 << "%";
    }
    os << "\n";
    util::Table t({"#", "span", "kind", "unit", "res", "start", "ticks", "gap"}, 4);
    for (std::size_t i = 0; i < chain.size(); ++i) {
        const CritStep& s = chain[i];
        t.add_row({static_cast<std::int64_t>(i + 1), s.label,
                   std::string(trace::to_string(s.kind)),
                   std::string(trace::to_string(s.unit)),
                   std::string(to_string(s.resource)), s.start, s.duration(),
                   s.gap_before});
    }
    t.print(os);
    if (slack.empty()) return;
    os << "per-level slack:\n";
    util::Table st({"unit", "level", "span", "busy", "critical", "slack"}, 4);
    for (const LevelSlack& row : slack) {
        st.add_row({std::string(trace::to_string(row.unit)),
                    row.level == trace::SpanAttrs::kNoLevel
                        ? util::Cell{std::string("-")}
                        : util::Cell{static_cast<std::int64_t>(row.level)},
                    row.label, row.busy, row.critical, row.slack});
    }
    st.print(os);
}

CritPathReport extract_critical_path(const trace::TraceSession& session,
                                     trace::SpanId run_root) {
    CritPathReport rep;
    if (session.spans().empty()) return rep;
    if (run_root > session.spans().size()) return rep;
    const auto ch = child_index(session);
    if (run_root == trace::kNoSpan) {
        if (ch[trace::kNoSpan].empty()) return rep;
        run_root = ch[trace::kNoSpan].front();
    }
    const Span& run = session.span(run_root);

    rep.attempted = true;
    rep.run = run_root;
    rep.run_label = run.label;
    rep.start = run.start;
    rep.makespan = run.duration();
    if (rep.makespan <= 0.0) {
        rep.idle_share = 0.0;
        return rep;
    }
    const sim::Ticks tol = 1e-9 * std::max(1.0, rep.makespan);

    std::vector<SpanId> work;
    for (SpanId id : subtree_of(ch, run_root)) {
        const Span& s = session.span(id);
        if (is_work(s) && s.duration() > 0.0) work.push_back(id);
    }
    rep.chain = walk_chain(session, work, run, tol);

    sim::Ticks covered = 0.0;
    for (const CritStep& s : rep.chain) {
        const sim::Ticks d = s.duration();
        covered += d;
        switch (s.resource) {
            case CritResource::kCpu: rep.cpu_ticks += d; break;
            case CritResource::kGpu: rep.gpu_ticks += d; break;
            case CritResource::kLink: rep.link_ticks += d; break;
            case CritResource::kHook: rep.hook_ticks += d; break;
            case CritResource::kIdle: break;
        }
    }
    rep.idle_ticks = std::max(0.0, rep.makespan - covered);
    rep.cpu_share = rep.cpu_ticks / rep.makespan;
    rep.gpu_share = rep.gpu_ticks / rep.makespan;
    rep.link_share = rep.link_ticks / rep.makespan;
    rep.hook_share = rep.hook_ticks / rep.makespan;
    rep.idle_share = rep.idle_ticks / rep.makespan;
    rep.dominant = CritResource::kCpu;
    rep.dominant_share = rep.cpu_share;
    for (CritResource r : {CritResource::kGpu, CritResource::kLink, CritResource::kHook,
                           CritResource::kIdle}) {
        if (rep.share_of(r) > rep.dominant_share) {
            rep.dominant = r;
            rep.dominant_share = rep.share_of(r);
        }
    }

    // Per-(unit, level, label) slack rows over the work spans.
    const auto slacks = phase_slack(session, ch, run_root, tol);
    auto slack_of_phase = [&](SpanId phase) {
        for (const auto& [id, s] : slacks) {
            if (id == phase) return s;
        }
        return sim::Ticks{0.0};
    };
    std::vector<bool> on_chain(session.spans().size() + 1, false);
    for (const CritStep& s : rep.chain) on_chain[s.id] = true;
    struct Key {
        trace::Unit unit;
        std::uint64_t level;
        std::string label;
        bool operator<(const Key& o) const {
            if (unit != o.unit) return unit < o.unit;
            if (level != o.level) return level < o.level;
            return label < o.label;
        }
    };
    std::map<Key, LevelSlack> rows;
    for (SpanId id : work) {
        const Span& s = session.span(id);
        // Ancestor phase directly under the run (kNoSpan when the work
        // span hangs off the run itself — serial schedule, no fork-join).
        SpanId at = s.parent;
        SpanId phase = trace::kNoSpan;
        while (at != trace::kNoSpan && at != run_root) {
            const Span& a = session.span(at);
            if (a.parent == run_root && a.kind == SpanKind::kPhase) phase = at;
            at = a.parent;
        }
        const Key key{s.unit, s.attrs.level, canonical(s.label)};
        auto [it, inserted] = rows.try_emplace(key);
        LevelSlack& row = it->second;
        if (inserted) {
            row.unit = s.unit;
            row.level = s.attrs.level;
            row.label = key.label;
            row.slack = phase == trace::kNoSpan ? 0.0 : slack_of_phase(phase);
        } else if (phase != trace::kNoSpan) {
            row.slack = std::min(row.slack, slack_of_phase(phase));
        } else {
            row.slack = 0.0;
        }
        row.busy += s.duration();
        if (on_chain[id]) row.critical += s.duration();
    }
    rep.slack.reserve(rows.size());
    for (auto& [key, row] : rows) {
        if (row.critical > 0.0) row.slack = 0.0;  // carrying the chain: no slack
        rep.slack.push_back(std::move(row));
    }
    return rep;
}

void add_to_extras(trace::ChromeExtras& extras, const CritPathReport& rep) {
    if (!rep.attempted || rep.run == trace::kNoSpan) return;
    auto& run_args = extras.span_args[rep.run];
    run_args.emplace_back("crit_chain", static_cast<double>(rep.chain.size()));
    run_args.emplace_back("crit_cpu_share", rep.cpu_share);
    run_args.emplace_back("crit_gpu_share", rep.gpu_share);
    run_args.emplace_back("crit_link_share", rep.link_share);
    run_args.emplace_back("crit_hook_share", rep.hook_share);
    run_args.emplace_back("crit_idle_share", rep.idle_share);
    for (std::size_t i = 0; i < rep.chain.size(); ++i) {
        extras.span_args[rep.chain[i].id].emplace_back("crit",
                                                       static_cast<double>(i + 1));
        if (i + 1 < rep.chain.size()) {
            extras.flows.emplace_back(rep.chain[i].id, rep.chain[i + 1].id);
        }
    }
}

trace::ChromeExtras chrome_extras(const CritPathReport& rep) {
    trace::ChromeExtras extras;
    add_to_extras(extras, rep);
    return extras;
}

}  // namespace hpu::obs
