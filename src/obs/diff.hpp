// Trace-diff engine of hpu::obs (DESIGN.md §13): structurally aligns two
// span trees (baseline vs candidate run) and attributes the total-time
// delta to the deepest diverging spans.
//
// Alignment: sibling spans are grouped by a structural key — (kind, unit,
// level, canonical label), where the canonical label strips the
// "[N tasks]" suffix so a level keeps matching when its task count
// changes. Same-key sibling groups are aggregated into one entry (summed
// durations, span counts on each side), which makes the diff robust to
// scheduler differences that split or merge spans: a count change shows up
// as base_spans != cand_spans, not as a mismatch. Keys present on only one
// side become *structural* entries (side != kBoth) whose whole subtree is
// charged as one signed delta — shape changes are reported, never errors.
// Run roots are paired by position, so a basic-vs-advanced diff aligns the
// two runs even though their root labels differ.
//
// Attribution: every matched entry carries delta = cand − base ticks and
// self_delta = delta minus the deltas of its child entries — the part of
// the regression that originates *at* this span rather than below it. The
// explain list is the top-K entries by |self_delta|, which names the
// deepest diverging spans directly.
//
// Wall-clock sums ride along for profiled traces but never participate in
// identical(): the virtual clock is the contract, wall time is weather.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/params.hpp"
#include "trace/span.hpp"

namespace hpu::obs {

struct DiffOptions {
    /// Diff individual wave spans too. Off by default: waves are fully
    /// determined by their level span and only add noise to the explain
    /// list.
    bool include_waves = false;
};

/// Which side(s) of the diff an entry exists on.
enum class DiffSide : std::uint8_t {
    kBoth,      ///< matched — delta is cand − base
    kBaseOnly,  ///< structural: subtree removed in the candidate
    kCandOnly,  ///< structural: subtree added in the candidate
};

const char* to_string(DiffSide side) noexcept;

/// One aligned sibling group (or one-sided subtree), in pre-order.
struct DiffEntry {
    std::string path;      ///< "/"-joined canonical labels from the root
    std::string label;     ///< canonical label ("base→cand" for renamed roots)
    trace::SpanKind kind = trace::SpanKind::kRun;
    trace::Unit unit = trace::Unit::kHost;
    std::uint64_t level = trace::SpanAttrs::kNoLevel;
    int depth = 0;
    DiffSide side = DiffSide::kBoth;
    std::size_t base_spans = 0;
    std::size_t cand_spans = 0;
    sim::Ticks base_ticks = 0.0;  ///< summed virtual durations, base side
    sim::Ticks cand_ticks = 0.0;  ///< summed virtual durations, candidate side
    sim::Ticks delta = 0.0;       ///< cand − base (one-sided: signed subtree)
    std::uint64_t base_wall_ns = 0;
    std::uint64_t cand_wall_ns = 0;
    /// Irregular-tree shape (core/irregular.hpp), carried so a quickhull
    /// diff can attribute a delta to a wider/more skewed level: summed
    /// extent words and the worst extent skew over the group's spans.
    /// Regular executors leave these at 0 / 0.0.
    std::uint64_t base_extent_words = 0;
    std::uint64_t cand_extent_words = 0;
    double base_imbalance = 0.0;
    double cand_imbalance = 0.0;
    /// delta − Σ child-entry deltas: the divergence born at this span.
    /// Structural entries own their whole subtree (self_delta == delta).
    sim::Ticks self_delta = 0.0;
};

struct TraceDiff {
    std::vector<DiffEntry> entries;  ///< pre-order over the aligned forest
    sim::Ticks base_total = 0.0;     ///< summed root durations, base side
    sim::Ticks cand_total = 0.0;     ///< summed root durations, candidate side
    std::uint64_t base_wall_total = 0;
    std::uint64_t cand_wall_total = 0;
    std::size_t structural = 0;      ///< entries with side != kBoth

    sim::Ticks delta() const noexcept { return cand_total - base_total; }

    /// True when the two traces are virtually indistinguishable: no
    /// structural entries, every matched entry's span counts equal and
    /// |delta| <= eps. eps = 0 demands exactness (a run diffed against
    /// itself passes — the virtual clock is deterministic).
    bool identical(double eps = 0.0) const noexcept;

    /// Top-k entries by |self_delta|, most divergent first (zero-delta
    /// entries excluded). Pointers into `entries`.
    std::vector<const DiffEntry*> explain(std::size_t k) const;

    /// Aligned tree table plus the headline delta and the explain list.
    void print(std::ostream& os, std::size_t top_k = 5) const;
    /// GitHub-flavored markdown (summary line, explain table).
    void print_markdown(std::ostream& os, std::size_t top_k = 5) const;
};

/// Diffs two sessions (all runs of each, paired root-by-root in order).
TraceDiff diff_traces(const trace::TraceSession& base, const trace::TraceSession& cand,
                      const DiffOptions& opts = {});

}  // namespace hpu::obs
