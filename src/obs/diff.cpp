#include "obs/diff.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>
#include <tuple>

#include "util/table.hpp"

namespace hpu::obs {
namespace {

using trace::Span;
using trace::SpanId;
using trace::SpanKind;
using trace::TraceSession;
using trace::Unit;

/// Label with the "[N tasks]" suffix stripped, so a level keeps matching
/// its counterpart when only the task count changed.
std::string canonical(const std::string& label) {
    const auto bracket = label.find('[');
    return bracket == std::string::npos ? label : label.substr(0, bracket);
}

/// Structural alignment key of a sibling group.
struct Key {
    SpanKind kind = SpanKind::kRun;
    Unit unit = Unit::kHost;
    std::uint64_t level = trace::SpanAttrs::kNoLevel;
    std::string label;

    bool operator<(const Key& o) const {
        return std::tie(kind, unit, level, label) <
               std::tie(o.kind, o.unit, o.level, o.label);
    }
};

/// Direct children of every span, one vector per parent (index 0 = roots).
std::vector<std::vector<SpanId>> child_index(const TraceSession& s) {
    std::vector<std::vector<SpanId>> ch(s.spans().size() + 1);
    for (const Span& sp : s.spans()) ch[sp.parent].push_back(sp.id);
    return ch;
}

struct DiffBuilder {
    const TraceSession& base;
    const TraceSession& cand;
    const DiffOptions& opts;
    std::vector<std::vector<SpanId>> base_children;
    std::vector<std::vector<SpanId>> cand_children;
    TraceDiff out;

    DiffBuilder(const TraceSession& b, const TraceSession& c, const DiffOptions& o)
        : base(b), cand(c), opts(o), base_children(child_index(b)),
          cand_children(child_index(c)) {}

    /// Sums durations / wall / irregular-shape attrs over a span-id list on
    /// one session (extent words sum; imbalance keeps the worst skew).
    static void sum_side(const TraceSession& s, const std::vector<SpanId>& ids,
                         sim::Ticks& ticks, std::uint64_t& wall, std::uint64_t& extent,
                         double& imbalance) {
        for (SpanId id : ids) {
            const Span& sp = s.span(id);
            ticks += sp.duration();
            wall += sp.wall_ns;
            extent += sp.attrs.extent_words;
            imbalance = std::max(imbalance, sp.attrs.imbalance);
        }
    }

    /// Emits one structural (one-sided) entry covering the listed spans'
    /// subtrees. A span's duration already covers its children, so no
    /// recursion is needed; the whole subtree is one signed delta.
    void emit_structural(const TraceSession& s, const std::vector<SpanId>& ids,
                         const Key& key, const std::string& path, int depth,
                         DiffSide side) {
        DiffEntry e;
        e.path = path;
        e.label = key.label;
        e.kind = key.kind;
        e.unit = key.unit;
        e.level = key.level;
        e.depth = depth;
        e.side = side;
        sim::Ticks ticks = 0.0;
        std::uint64_t wall = 0;
        std::uint64_t extent = 0;
        double imbalance = 0.0;
        sum_side(s, ids, ticks, wall, extent, imbalance);
        if (side == DiffSide::kBaseOnly) {
            e.base_spans = ids.size();
            e.base_ticks = ticks;
            e.base_wall_ns = wall;
            e.base_extent_words = extent;
            e.base_imbalance = imbalance;
            e.delta = -ticks;
        } else {
            e.cand_spans = ids.size();
            e.cand_ticks = ticks;
            e.cand_wall_ns = wall;
            e.cand_extent_words = extent;
            e.cand_imbalance = imbalance;
            e.delta = ticks;
        }
        e.self_delta = e.delta;
        ++out.structural;
        out.entries.push_back(std::move(e));
    }

    /// Aligns the children of a matched group and emits their entries in
    /// pre-order. Returns the summed delta of the entries emitted at this
    /// depth (the caller subtracts it to get its self_delta).
    sim::Ticks diff_children(const std::vector<SpanId>& base_ids,
                             const std::vector<SpanId>& cand_ids, const std::string& path,
                             int depth) {
        // Group both sides' children by key, base-side first-seen order,
        // then candidate-only keys in candidate order.
        std::map<Key, std::pair<std::vector<SpanId>, std::vector<SpanId>>> groups;
        std::vector<const Key*> order;
        auto add = [&](const TraceSession& s, SpanId id, bool is_base) {
            const Span& sp = s.span(id);
            if (sp.kind == SpanKind::kWave && !opts.include_waves) return;
            Key k{sp.kind, sp.unit, sp.attrs.level, canonical(sp.label)};
            auto [it, fresh] = groups.try_emplace(std::move(k));
            if (fresh) order.push_back(&it->first);
            (is_base ? it->second.first : it->second.second).push_back(id);
        };
        for (SpanId p : base_ids) {
            for (SpanId c : base_children[p]) add(base, c, true);
        }
        for (SpanId p : cand_ids) {
            for (SpanId c : cand_children[p]) add(cand, c, false);
        }

        sim::Ticks level_delta = 0.0;
        for (const Key* kp : order) {
            const auto& [b_ids, c_ids] = groups.at(*kp);
            const std::string sub_path =
                path.empty() ? kp->label : path + "/" + kp->label;
            if (b_ids.empty() || c_ids.empty()) {
                const DiffSide side =
                    b_ids.empty() ? DiffSide::kCandOnly : DiffSide::kBaseOnly;
                emit_structural(b_ids.empty() ? cand : base,
                                b_ids.empty() ? c_ids : b_ids, *kp, sub_path, depth, side);
                level_delta += out.entries.back().delta;
                continue;
            }
            DiffEntry e;
            e.path = sub_path;
            e.label = kp->label;
            e.kind = kp->kind;
            e.unit = kp->unit;
            e.level = kp->level;
            e.depth = depth;
            e.base_spans = b_ids.size();
            e.cand_spans = c_ids.size();
            sum_side(base, b_ids, e.base_ticks, e.base_wall_ns, e.base_extent_words,
                     e.base_imbalance);
            sum_side(cand, c_ids, e.cand_ticks, e.cand_wall_ns, e.cand_extent_words,
                     e.cand_imbalance);
            e.delta = e.cand_ticks - e.base_ticks;
            level_delta += e.delta;
            const std::size_t at = out.entries.size();
            out.entries.push_back(std::move(e));
            const sim::Ticks child_delta = diff_children(b_ids, c_ids, sub_path, depth + 1);
            out.entries[at].self_delta = out.entries[at].delta - child_delta;
        }
        return level_delta;
    }

    TraceDiff run() {
        const std::vector<SpanId>& base_roots = base_children[trace::kNoSpan];
        const std::vector<SpanId>& cand_roots = cand_children[trace::kNoSpan];
        const std::size_t paired = std::min(base_roots.size(), cand_roots.size());
        for (std::size_t i = 0; i < paired; ++i) {
            const Span& br = base.span(base_roots[i]);
            const Span& cr = cand.span(cand_roots[i]);
            out.base_total += br.duration();
            out.cand_total += cr.duration();
            out.base_wall_total += br.wall_ns;
            out.cand_wall_total += cr.wall_ns;
            // Roots pair positionally: a basic-vs-advanced diff aligns run
            // 1 with run 1 even though the labels differ.
            const std::string cb = canonical(br.label), cc = canonical(cr.label);
            DiffEntry e;
            e.label = cb == cc ? cb : cb + "→" + cc;
            e.path = e.label;
            e.kind = br.kind;
            e.unit = br.unit;
            e.level = br.attrs.level;
            e.depth = 0;
            e.base_spans = 1;
            e.cand_spans = 1;
            e.base_ticks = br.duration();
            e.cand_ticks = cr.duration();
            e.base_wall_ns = br.wall_ns;
            e.cand_wall_ns = cr.wall_ns;
            e.base_extent_words = br.attrs.extent_words;
            e.cand_extent_words = cr.attrs.extent_words;
            e.base_imbalance = br.attrs.imbalance;
            e.cand_imbalance = cr.attrs.imbalance;
            e.delta = e.cand_ticks - e.base_ticks;
            const std::size_t at = out.entries.size();
            // Copy the path before recursing: diff_children grows
            // out.entries, which would invalidate a reference into it.
            const std::string root_path = e.path;
            out.entries.push_back(std::move(e));
            const sim::Ticks child_delta =
                diff_children({base_roots[i]}, {cand_roots[i]}, root_path, 1);
            out.entries[at].self_delta = out.entries[at].delta - child_delta;
        }
        // Unpaired extra runs on either side are structural.
        for (std::size_t i = paired; i < base_roots.size(); ++i) {
            const Span& br = base.span(base_roots[i]);
            out.base_total += br.duration();
            out.base_wall_total += br.wall_ns;
            Key k{br.kind, br.unit, br.attrs.level, canonical(br.label)};
            emit_structural(base, {base_roots[i]}, k, k.label, 0, DiffSide::kBaseOnly);
        }
        for (std::size_t i = paired; i < cand_roots.size(); ++i) {
            const Span& cr = cand.span(cand_roots[i]);
            out.cand_total += cr.duration();
            out.cand_wall_total += cr.wall_ns;
            Key k{cr.kind, cr.unit, cr.attrs.level, canonical(cr.label)};
            emit_structural(cand, {cand_roots[i]}, k, k.label, 0, DiffSide::kCandOnly);
        }
        return std::move(out);
    }
};

std::string level_text(std::uint64_t level) {
    return level == trace::SpanAttrs::kNoLevel ? std::string("-") : std::to_string(level);
}

}  // namespace

const char* to_string(DiffSide side) noexcept {
    switch (side) {
        case DiffSide::kBoth: return "both";
        case DiffSide::kBaseOnly: return "base-only";
        case DiffSide::kCandOnly: return "cand-only";
    }
    return "?";
}

bool TraceDiff::identical(double eps) const noexcept {
    if (structural != 0) return false;
    for (const DiffEntry& e : entries) {
        if (e.base_spans != e.cand_spans) return false;
        if (std::abs(e.delta) > eps) return false;
    }
    return true;
}

std::vector<const DiffEntry*> TraceDiff::explain(std::size_t k) const {
    std::vector<const DiffEntry*> out;
    for (const DiffEntry& e : entries) {
        if (e.self_delta != 0.0) out.push_back(&e);
    }
    std::stable_sort(out.begin(), out.end(), [](const DiffEntry* a, const DiffEntry* b) {
        return std::abs(a->self_delta) > std::abs(b->self_delta);
    });
    if (out.size() > k) out.resize(k);
    return out;
}

void TraceDiff::print(std::ostream& os, std::size_t top_k) const {
    os << "trace diff: base " << base_total << " ticks, candidate " << cand_total
       << " ticks, delta " << delta();
    if (base_total > 0.0) os << " (" << (delta() / base_total * 100.0) << "%)";
    os << "\n";
    if (structural != 0) os << structural << " structural (one-sided) subtree(s)\n";
    util::Table t({"span", "side", "level", "spans", "base", "cand", "delta", "self"}, 4);
    for (const DiffEntry& e : entries) {
        std::string name(static_cast<std::size_t>(e.depth) * 2, ' ');
        if (e.side == DiffSide::kBaseOnly) name += "- ";
        if (e.side == DiffSide::kCandOnly) name += "+ ";
        name += e.label;
        std::string spans = std::to_string(e.base_spans);
        if (e.base_spans != e.cand_spans) {
            spans += '/';
            spans += std::to_string(e.cand_spans);
        }
        t.add_row({name, std::string(to_string(e.side)), level_text(e.level), spans,
                   e.base_ticks, e.cand_ticks, e.delta, e.self_delta});
    }
    t.print(os);
    const auto top = explain(top_k);
    if (!top.empty()) {
        os << "\ntop divergences (by |self delta|):\n";
        for (const DiffEntry* e : top) {
            os << "  " << e->path << ": " << (e->self_delta > 0 ? "+" : "")
               << e->self_delta << " ticks";
            if (e->side != DiffSide::kBoth) os << " [" << to_string(e->side) << "]";
            os << "\n";
        }
    }
}

void TraceDiff::print_markdown(std::ostream& os, std::size_t top_k) const {
    os << "**trace diff**: base " << base_total << " → candidate " << cand_total
       << " ticks (Δ " << delta();
    if (base_total > 0.0) os << ", " << (delta() / base_total * 100.0) << "%";
    os << "; " << structural << " structural)\n\n";
    os << "| span | side | base | cand | Δ | self Δ | extent Δ | imbalance |\n";
    os << "|---|---|---:|---:|---:|---:|---:|---:|\n";
    const auto top = explain(top_k);
    for (const DiffEntry* e : top) {
        os << "| `" << e->path << "` | " << to_string(e->side) << " | " << e->base_ticks
           << " | " << e->cand_ticks << " | " << e->delta << " | " << e->self_delta
           << " | ";
        // Irregular-tree shape: words the level's extents cover and the
        // extent skew, present only on dynamic-task-list traces.
        if (e->base_extent_words == 0 && e->cand_extent_words == 0) {
            os << "-";
        } else {
            os << (static_cast<std::int64_t>(e->cand_extent_words) -
                   static_cast<std::int64_t>(e->base_extent_words));
        }
        os << " | ";
        if (e->base_imbalance == 0.0 && e->cand_imbalance == 0.0) {
            os << "-";
        } else {
            os << e->base_imbalance << "→" << e->cand_imbalance;
        }
        os << " |\n";
    }
    if (top.empty()) os << "| (no divergence) | both | - | - | 0 | 0 | - | - |\n";
}

TraceDiff diff_traces(const trace::TraceSession& base, const trace::TraceSession& cand,
                      const DiffOptions& opts) {
    return DiffBuilder(base, cand, opts).run();
}

}  // namespace hpu::obs
