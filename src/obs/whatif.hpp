// Causal "what-if" profiler of hpu::obs (DESIGN.md §16): virtual-speedup
// experiments in the spirit of Coz, on the virtual clock.
//
// A critical-path report (obs/critpath.hpp) says which resource the
// makespan stands on; the what-if engine says what changing that resource
// would actually buy. One platform parameter at a time (g, γ, λ, δ, the
// worker count p, or the pipeline chunk count K) is scaled by a sweep of
// factors and the schedule is re-priced:
//
//  * observed path (`what_if`): the recorded span tree is replayed under
//    the perturbed parameters. Work spans (levels, leaves, transfers,
//    hooks) are re-priced through the same closed forms the executors
//    charge (ceil(tasks/p), launch waves · max_ops/γ, λ + δ·w); grouping
//    spans (run, phases) re-place their children by the precedence the
//    recorded schedule encodes — a child waits for every sibling that
//    finished at or before its recorded start. Idle gaps the trace does
//    not explain are preserved as recorded.
//  * model path (`what_if_model`): the Basic/Advanced/Pipelined closed
//    forms are re-evaluated at the same (α, y, K) operating point under
//    the perturbed machine — the analytic counterpart for regular
//    recurrences, and the only path that can vary K.
//
// Each curve reports predicted makespan vs scale factor; the ranked "top
// bottleneck" is the parameter whose improvement direction (faster GPU /
// more workers = up, cheaper link = down) buys the largest predicted gain.
// Replays of the unperturbed machine short-circuit to the recorded
// makespan, so a factor-1.0 point is bit-identical to the baseline.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "model/recurrence.hpp"
#include "sim/params.hpp"
#include "trace/span.hpp"

namespace hpu::obs {

/// The platform parameter a what-if experiment perturbs.
enum class WhatIfParam : std::uint8_t {
    kG,        ///< GPU lane count g
    kGamma,    ///< per-lane speed γ (clamped to ≤ 1 when scaled up)
    kLambda,   ///< link latency λ
    kDelta,    ///< link per-word cost δ
    kWorkers,  ///< CPU cores p
    kChunks,   ///< pipeline chunk count K (model path only)
};

const char* to_string(WhatIfParam p) noexcept;

/// Parses "g" / "gamma" / "lambda" / "delta" / "p" / "workers" /
/// "chunks" / "k" (case-sensitive). Returns false on anything else.
bool parse_param(std::string_view name, WhatIfParam& out) noexcept;

/// True when improving this parameter means scaling it UP (more lanes,
/// faster lanes, more workers, more chunks); false for the link costs.
bool improves_up(WhatIfParam p) noexcept;

/// The machine with one parameter scaled by `factor` (g and p round to at
/// least 1; γ clamps to 1). kChunks returns the machine unchanged.
sim::HpuParams perturb(const sim::HpuParams& hw, WhatIfParam p, double factor);

/// One point on a sensitivity curve.
struct WhatIfPoint {
    double factor = 1.0;
    sim::Ticks predicted = 0.0;
    double speedup = 1.0;  ///< baseline / predicted
};

/// Sensitivity of the makespan to one parameter.
struct WhatIfCurve {
    WhatIfParam param = WhatIfParam::kGamma;
    double configured = 0.0;      ///< the parameter's configured value
    double improve_factor = 2.0;  ///< the factor the gain is ranked at
    sim::Ticks improved = 0.0;    ///< predicted makespan at improve_factor
    double gain = 1.0;            ///< baseline / improved
    std::vector<WhatIfPoint> points;
};

struct WhatIfReport {
    bool attempted = false;
    sim::Ticks baseline = 0.0;  ///< recorded (or modelled) makespan
    std::vector<WhatIfCurve> curves;

    /// The ranked top bottleneck: the curve with the largest gain.
    /// nullptr when the report is empty.
    const WhatIfCurve* top() const noexcept;

    /// Sensitivity table plus the top-bottleneck line.
    void print(std::ostream& os) const;
    /// GitHub-markdown sensitivity matrix (params × factors, relative
    /// makespan) plus the top-bottleneck line.
    void print_markdown(std::ostream& os) const;
};

struct WhatIfOptions {
    std::vector<double> factors{0.25, 0.5, 1.0, 2.0, 4.0};
    std::vector<WhatIfParam> params{WhatIfParam::kG, WhatIfParam::kGamma,
                                    WhatIfParam::kLambda, WhatIfParam::kDelta,
                                    WhatIfParam::kWorkers};
};

/// Replays the run recorded under `run_root` (kNoSpan = first root) as if
/// the machine had been `perturbed` instead of `configured`; returns the
/// replayed makespan. Bit-identical to the recorded makespan when the two
/// parameter sets are equal on every priced field.
sim::Ticks reprice_run(const trace::TraceSession& session, trace::SpanId run_root,
                       const sim::HpuParams& configured, const sim::HpuParams& perturbed);

/// Observed-path what-if over a recorded run. kChunks entries in
/// `opts.params` are skipped (a recorded schedule cannot change K).
WhatIfReport what_if(const trace::TraceSession& session, trace::SpanId run_root,
                     const sim::HpuParams& hw, const WhatIfOptions& opts = {});

/// Which closed-form model prices the schedule on the model path.
enum class ScheduleKind : std::uint8_t { kBasic, kAdvanced, kPipelined };

/// The operating point the model path holds fixed while the machine moves.
struct ModelPoint {
    ScheduleKind kind = ScheduleKind::kAdvanced;
    model::Recurrence rec{};
    double n = 0.0;
    double device_ops_multiplier = 1.0;  ///< pipelined path only
    double words_per_transfer = 0.0;     ///< 0 = the model's own default
    double alpha = 0.0;  ///< ≤ 0 = let AdvancedModel optimize
    double y = 0.0;
    std::uint64_t chunks = 0;  ///< pipelined: requested K
};

/// Predicted total time of the schedule on machine `hw`.
sim::Ticks price_model(const sim::HpuParams& hw, const ModelPoint& mp);

/// Model-path what-if. kChunks entries are honoured only for pipelined
/// points (with chunks > 0) and sweep K instead of the machine.
WhatIfReport what_if_model(const sim::HpuParams& hw, const ModelPoint& mp,
                           const WhatIfOptions& opts = {});

}  // namespace hpu::obs
