file(REMOVE_RECURSE
  "libhpu_util.a"
)
