# Empty compiler generated dependencies file for hpu_util.
# This may be replaced when dependencies are built.
