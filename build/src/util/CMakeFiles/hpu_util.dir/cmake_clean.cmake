file(REMOVE_RECURSE
  "CMakeFiles/hpu_util.dir/cli.cpp.o"
  "CMakeFiles/hpu_util.dir/cli.cpp.o.d"
  "CMakeFiles/hpu_util.dir/makespan.cpp.o"
  "CMakeFiles/hpu_util.dir/makespan.cpp.o.d"
  "CMakeFiles/hpu_util.dir/table.cpp.o"
  "CMakeFiles/hpu_util.dir/table.cpp.o.d"
  "CMakeFiles/hpu_util.dir/thread_pool.cpp.o"
  "CMakeFiles/hpu_util.dir/thread_pool.cpp.o.d"
  "libhpu_util.a"
  "libhpu_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpu_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
