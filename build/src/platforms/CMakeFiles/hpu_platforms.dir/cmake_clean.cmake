file(REMOVE_RECURSE
  "CMakeFiles/hpu_platforms.dir/platforms.cpp.o"
  "CMakeFiles/hpu_platforms.dir/platforms.cpp.o.d"
  "libhpu_platforms.a"
  "libhpu_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpu_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
