file(REMOVE_RECURSE
  "libhpu_platforms.a"
)
