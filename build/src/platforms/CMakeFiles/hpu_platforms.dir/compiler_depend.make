# Empty compiler generated dependencies file for hpu_platforms.
# This may be replaced when dependencies are built.
