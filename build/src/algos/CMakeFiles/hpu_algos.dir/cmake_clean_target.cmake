file(REMOVE_RECURSE
  "libhpu_algos.a"
)
