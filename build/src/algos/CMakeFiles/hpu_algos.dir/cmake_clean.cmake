file(REMOVE_RECURSE
  "CMakeFiles/hpu_algos.dir/fft.cpp.o"
  "CMakeFiles/hpu_algos.dir/fft.cpp.o.d"
  "CMakeFiles/hpu_algos.dir/parallel_merge.cpp.o"
  "CMakeFiles/hpu_algos.dir/parallel_merge.cpp.o.d"
  "CMakeFiles/hpu_algos.dir/parallel_tail.cpp.o"
  "CMakeFiles/hpu_algos.dir/parallel_tail.cpp.o.d"
  "libhpu_algos.a"
  "libhpu_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpu_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
