# Empty dependencies file for hpu_algos.
# This may be replaced when dependencies are built.
