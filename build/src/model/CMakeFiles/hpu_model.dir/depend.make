# Empty dependencies file for hpu_model.
# This may be replaced when dependencies are built.
