file(REMOVE_RECURSE
  "CMakeFiles/hpu_model.dir/advanced.cpp.o"
  "CMakeFiles/hpu_model.dir/advanced.cpp.o.d"
  "CMakeFiles/hpu_model.dir/basic.cpp.o"
  "CMakeFiles/hpu_model.dir/basic.cpp.o.d"
  "CMakeFiles/hpu_model.dir/estimate.cpp.o"
  "CMakeFiles/hpu_model.dir/estimate.cpp.o.d"
  "libhpu_model.a"
  "libhpu_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpu_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
