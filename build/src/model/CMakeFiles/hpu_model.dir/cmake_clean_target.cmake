file(REMOVE_RECURSE
  "libhpu_model.a"
)
