# Empty compiler generated dependencies file for hpu_model.
# This may be replaced when dependencies are built.
