
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/advanced.cpp" "src/model/CMakeFiles/hpu_model.dir/advanced.cpp.o" "gcc" "src/model/CMakeFiles/hpu_model.dir/advanced.cpp.o.d"
  "/root/repo/src/model/basic.cpp" "src/model/CMakeFiles/hpu_model.dir/basic.cpp.o" "gcc" "src/model/CMakeFiles/hpu_model.dir/basic.cpp.o.d"
  "/root/repo/src/model/estimate.cpp" "src/model/CMakeFiles/hpu_model.dir/estimate.cpp.o" "gcc" "src/model/CMakeFiles/hpu_model.dir/estimate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hpu_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
