file(REMOVE_RECURSE
  "libhpu_sim.a"
)
