# Empty dependencies file for hpu_sim.
# This may be replaced when dependencies are built.
