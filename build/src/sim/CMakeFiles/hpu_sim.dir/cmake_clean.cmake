file(REMOVE_RECURSE
  "CMakeFiles/hpu_sim.dir/memory_model.cpp.o"
  "CMakeFiles/hpu_sim.dir/memory_model.cpp.o.d"
  "CMakeFiles/hpu_sim.dir/timeline.cpp.o"
  "CMakeFiles/hpu_sim.dir/timeline.cpp.o.d"
  "libhpu_sim.a"
  "libhpu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
