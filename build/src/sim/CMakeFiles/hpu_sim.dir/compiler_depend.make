# Empty compiler generated dependencies file for hpu_sim.
# This may be replaced when dependencies are built.
