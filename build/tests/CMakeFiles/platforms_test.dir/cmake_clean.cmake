file(REMOVE_RECURSE
  "CMakeFiles/platforms_test.dir/platforms_test.cpp.o"
  "CMakeFiles/platforms_test.dir/platforms_test.cpp.o.d"
  "platforms_test"
  "platforms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platforms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
