file(REMOVE_RECURSE
  "CMakeFiles/executors_test.dir/executors_test.cpp.o"
  "CMakeFiles/executors_test.dir/executors_test.cpp.o.d"
  "executors_test"
  "executors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
