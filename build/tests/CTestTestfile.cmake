# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(model_test "/root/repo/build/tests/model_test")
set_tests_properties(model_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(generic_test "/root/repo/build/tests/generic_test")
set_tests_properties(generic_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(executors_test "/root/repo/build/tests/executors_test")
set_tests_properties(executors_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(hybrid_test "/root/repo/build/tests/hybrid_test")
set_tests_properties(hybrid_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(algos_test "/root/repo/build/tests/algos_test")
set_tests_properties(algos_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(platforms_test "/root/repo/build/tests/platforms_test")
set_tests_properties(platforms_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(extensions_test "/root/repo/build/tests/extensions_test")
set_tests_properties(extensions_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(parity_test "/root/repo/build/tests/parity_test")
set_tests_properties(parity_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(robustness_test "/root/repo/build/tests/robustness_test")
set_tests_properties(robustness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
