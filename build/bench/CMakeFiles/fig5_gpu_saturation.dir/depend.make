# Empty dependencies file for fig5_gpu_saturation.
# This may be replaced when dependencies are built.
