file(REMOVE_RECURSE
  "CMakeFiles/fig5_gpu_saturation.dir/fig5_gpu_saturation.cpp.o"
  "CMakeFiles/fig5_gpu_saturation.dir/fig5_gpu_saturation.cpp.o.d"
  "fig5_gpu_saturation"
  "fig5_gpu_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_gpu_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
