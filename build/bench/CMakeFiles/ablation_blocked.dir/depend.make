# Empty dependencies file for ablation_blocked.
# This may be replaced when dependencies are built.
