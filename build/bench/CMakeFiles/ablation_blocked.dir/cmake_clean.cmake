file(REMOVE_RECURSE
  "CMakeFiles/ablation_blocked.dir/ablation_blocked.cpp.o"
  "CMakeFiles/ablation_blocked.dir/ablation_blocked.cpp.o.d"
  "ablation_blocked"
  "ablation_blocked.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_blocked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
