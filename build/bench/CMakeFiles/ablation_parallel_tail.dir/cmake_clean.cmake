file(REMOVE_RECURSE
  "CMakeFiles/ablation_parallel_tail.dir/ablation_parallel_tail.cpp.o"
  "CMakeFiles/ablation_parallel_tail.dir/ablation_parallel_tail.cpp.o.d"
  "ablation_parallel_tail"
  "ablation_parallel_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_parallel_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
