# Empty dependencies file for ablation_parallel_tail.
# This may be replaced when dependencies are built.
