# Empty compiler generated dependencies file for fig9_parallel_gpu.
# This may be replaced when dependencies are built.
