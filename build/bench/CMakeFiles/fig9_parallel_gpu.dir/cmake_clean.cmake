file(REMOVE_RECURSE
  "CMakeFiles/fig9_parallel_gpu.dir/fig9_parallel_gpu.cpp.o"
  "CMakeFiles/fig9_parallel_gpu.dir/fig9_parallel_gpu.cpp.o.d"
  "fig9_parallel_gpu"
  "fig9_parallel_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_parallel_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
