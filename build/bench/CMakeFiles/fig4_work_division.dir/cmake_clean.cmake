file(REMOVE_RECURSE
  "CMakeFiles/fig4_work_division.dir/fig4_work_division.cpp.o"
  "CMakeFiles/fig4_work_division.dir/fig4_work_division.cpp.o.d"
  "fig4_work_division"
  "fig4_work_division.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_work_division.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
