# Empty dependencies file for fig4_work_division.
# This may be replaced when dependencies are built.
