file(REMOVE_RECURSE
  "CMakeFiles/fig10_optimal_params.dir/fig10_optimal_params.cpp.o"
  "CMakeFiles/fig10_optimal_params.dir/fig10_optimal_params.cpp.o.d"
  "fig10_optimal_params"
  "fig10_optimal_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_optimal_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
