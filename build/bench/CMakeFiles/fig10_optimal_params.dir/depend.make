# Empty dependencies file for fig10_optimal_params.
# This may be replaced when dependencies are built.
