file(REMOVE_RECURSE
  "CMakeFiles/fig6_gamma_ratio.dir/fig6_gamma_ratio.cpp.o"
  "CMakeFiles/fig6_gamma_ratio.dir/fig6_gamma_ratio.cpp.o.d"
  "fig6_gamma_ratio"
  "fig6_gamma_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_gamma_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
