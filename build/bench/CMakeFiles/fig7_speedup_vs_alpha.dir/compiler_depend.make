# Empty compiler generated dependencies file for fig7_speedup_vs_alpha.
# This may be replaced when dependencies are built.
