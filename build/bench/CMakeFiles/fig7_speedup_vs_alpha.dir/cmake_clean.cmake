file(REMOVE_RECURSE
  "CMakeFiles/fig7_speedup_vs_alpha.dir/fig7_speedup_vs_alpha.cpp.o"
  "CMakeFiles/fig7_speedup_vs_alpha.dir/fig7_speedup_vs_alpha.cpp.o.d"
  "fig7_speedup_vs_alpha"
  "fig7_speedup_vs_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_speedup_vs_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
