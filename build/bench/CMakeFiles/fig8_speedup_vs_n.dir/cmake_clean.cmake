file(REMOVE_RECURSE
  "CMakeFiles/fig8_speedup_vs_n.dir/fig8_speedup_vs_n.cpp.o"
  "CMakeFiles/fig8_speedup_vs_n.dir/fig8_speedup_vs_n.cpp.o.d"
  "fig8_speedup_vs_n"
  "fig8_speedup_vs_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_speedup_vs_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
