# Empty compiler generated dependencies file for fig8_speedup_vs_n.
# This may be replaced when dependencies are built.
