# Empty dependencies file for fig3_model_curves.
# This may be replaced when dependencies are built.
