# Empty compiler generated dependencies file for fft_spectrum.
# This may be replaced when dependencies are built.
