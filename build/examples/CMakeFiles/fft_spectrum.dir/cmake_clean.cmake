file(REMOVE_RECURSE
  "CMakeFiles/fft_spectrum.dir/fft_spectrum.cpp.o"
  "CMakeFiles/fft_spectrum.dir/fft_spectrum.cpp.o.d"
  "fft_spectrum"
  "fft_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
