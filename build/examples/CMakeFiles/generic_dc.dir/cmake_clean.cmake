file(REMOVE_RECURSE
  "CMakeFiles/generic_dc.dir/generic_dc.cpp.o"
  "CMakeFiles/generic_dc.dir/generic_dc.cpp.o.d"
  "generic_dc"
  "generic_dc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_dc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
