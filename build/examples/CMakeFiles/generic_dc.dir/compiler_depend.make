# Empty compiler generated dependencies file for generic_dc.
# This may be replaced when dependencies are built.
