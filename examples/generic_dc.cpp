// The genericity claim (§4): three very different divide-and-conquer
// problems — array sum, maximum subarray, and 8-way matrix multiplication —
// all run unchanged through the recursive (Alg. 1) and breadth-first
// (Alg. 2) drivers. The breadth-first order is what a GPU would execute,
// one kernel per level; the point of the paper is that this rewrite is
// mechanical.
#include <iostream>
#include <numeric>

#include "algos/binary_reduce.hpp"
#include "algos/dc_problems.hpp"
#include "core/executors.hpp"
#include "core/generic.hpp"
#include "platforms/platforms.hpp"
#include "util/rng.hpp"

int main() {
    using namespace hpu;
    util::Rng rng(7);

    // 1. Sum.
    std::vector<std::int64_t> v(1000);
    for (auto& x : v) x = rng.uniform_int(-50, 50);
    const algos::GenericSum sum;
    std::cout << "sum:           recursive=" << core::run_recursive(sum, {v})
              << "  breadth-first=" << core::run_breadth_first(sum, {v})
              << "  std::accumulate=" << std::accumulate(v.begin(), v.end(), 0ll) << "\n";

    // 2. Maximum subarray (non-trivial combine state: 4 aggregates).
    const algos::MaxSubarray ms;
    const auto r1 = core::run_recursive(ms, {v});
    const auto r2 = core::run_breadth_first(ms, {v});
    std::cout << "max subarray:  recursive=" << r1.best << "  breadth-first=" << r2.best << "\n";

    // 3. Matrix multiplication (a=8: eight-way recursion, matrix results).
    const std::size_t dim = 16;
    algos::Matrix a = algos::Matrix::zero(dim), b = algos::Matrix::zero(dim);
    for (auto& x : a.v) x = rng.uniform_real(-1, 1);
    for (auto& x : b.v) x = rng.uniform_real(-1, 1);
    const algos::GenericMatmul mm;
    const auto c1 = core::run_recursive(mm, {a, b});
    const auto c2 = core::run_breadth_first(mm, {a, b});
    double max_diff = 0;
    for (std::size_t i = 0; i < dim * dim; ++i) {
        max_diff = std::max(max_diff, std::abs(c1.v[i] - c2.v[i]));
    }
    std::cout << "matmul 16x16:  max |recursive - breadth-first| = " << max_diff << "\n\n";

    // 4. And the Layer-2 reductions on the simulated HPU: the same D&C sum,
    // now as level kernels on the device.
    sim::Hpu machine(platforms::hpu2());
    auto ints = rng.int_vector(1 << 16, -100, 100);
    const std::int64_t expect = std::accumulate(ints.begin(), ints.end(), 0ll);
    const auto lvl_sum = algos::make_sum<std::int32_t>();
    const auto rep = core::run_gpu(machine, lvl_sum, std::span(ints));
    std::cout << "Layer-2 dc-sum on the " << machine.params().name
              << " device: result=" << ints[0] << " (expect " << expect << "), "
              << rep.levels_gpu << " kernel launches, " << rep.gpu_busy << " ticks\n";
    return 0;
}
