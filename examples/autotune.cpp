// Autotuning workflow (§6.4): facing an *unknown* device, estimate its HPU
// parameters empirically, feed them to the model, and let the model pick
// the work division — then verify the pick by simulating a grid around it.
// This is the paper's "adapts to the characteristics of each algorithm and
// the underlying architecture" pitch, end to end.
//
// Flags: --g=<lanes> --gamma_inv=<ratio> define the "unknown" device.
#include <iostream>

#include "algos/mergesort.hpp"
#include "core/hybrid.hpp"
#include "model/advanced.hpp"
#include "model/estimate.hpp"
#include "platforms/platforms.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace hpu;
    util::Cli cli(argc, argv);

    // The machine under test: defaults to a made-up mid-range device so the
    // example demonstrably does NOT depend on the paper's known platforms.
    sim::HpuParams hw = platforms::hpu1();
    hw.name = "unknown-device";
    hw.gpu.g = static_cast<std::uint64_t>(cli.get_int("g", 2048));
    hw.gpu.gamma = 1.0 / cli.get_double("gamma_inv", 96.0);

    std::cout << "Step 1 — estimate the device parameters (Figs. 5-6 procedures)\n";
    sim::Device dev(hw.gpu);
    sim::CpuUnit cpu(hw.cpu);
    const std::uint64_t ghat = model::estimate_g(dev, 1 << 18, 4 * hw.gpu.g);
    const auto gsweep = model::gamma_sweep(dev, cpu, {1 << 14, 1 << 16, 1 << 18});
    const double ginv_hat = model::estimate_gamma_inv(gsweep);
    std::cout << "  estimated g = " << ghat << " (true " << hw.gpu.g << ")\n"
              << "  estimated 1/gamma = " << ginv_hat << " (true " << 1.0 / hw.gpu.gamma
              << ")\n\n";

    // Build the model from the *estimates*, as a real deployment would.
    sim::HpuParams estimated = hw;
    estimated.gpu.g = ghat;
    estimated.gpu.gamma = 1.0 / ginv_hat;

    const std::uint64_t n = 1ull << static_cast<unsigned>(cli.get_int("lgn", 22));
    algos::MergesortCoalesced<std::int32_t> alg;
    model::AdvancedModel m(estimated, alg.recurrence(), static_cast<double>(n));
    const auto opt = m.optimize();
    std::cout << "Step 2 — model picks alpha=" << opt.alpha << ", y=" << opt.y
              << " (predicted speedup " << opt.speedup << "x)\n\n";

    std::cout << "Step 3 — verify on the true device: simulated speedup around the pick\n";
    core::AdvancedOptions adv;
    adv.exec.functional = false;
    std::vector<std::int32_t> dummy(n);
    sim::CpuUnit one(hw.cpu);
    const auto seq = core::run_sequential(one, alg, std::span(dummy), adv.exec);
    util::Table t({"alpha", "y", "simulated speedup"}, 3);
    const auto y0 = static_cast<std::uint64_t>(std::llround(opt.y));
    for (double da : {-0.08, 0.0, 0.08}) {
        for (std::int64_t dy : {-2, 0, 2}) {
            const double a = std::clamp(opt.alpha + da, 0.02, 0.95);
            const auto y = std::clamp<std::uint64_t>(
                static_cast<std::uint64_t>(static_cast<std::int64_t>(y0) + dy), 1,
                util::ilog2(n));
            sim::Hpu h(hw);
            const auto rep = core::run_advanced_hybrid(h, alg, std::span(dummy), a, y, adv);
            t.add_row({a, static_cast<double>(y), seq.total / rep.total});
        }
    }
    t.print(std::cout);
    std::cout << "\nThe centre cell (the model's pick) should be at or near the best.\n";
    return 0;
}
