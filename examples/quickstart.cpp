// Quickstart: the three layers of the library in ~80 lines.
//
//   1. Write an ordinary recursive divide-and-conquer algorithm (Layer 1)
//      and run it through the generic engine — recursively (Alg. 1) or
//      breadth-first (Alg. 2), with identical results.
//   2. Express a regular array D&C as a LevelAlgorithm (Layer 2) and run it
//      on a simulated Hybrid Processing Unit with the advanced scheduler.
//   3. Ask the analytical model for the optimal work division first.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "algos/dc_problems.hpp"
#include "algos/mergesort.hpp"
#include "core/generic.hpp"
#include "core/hybrid.hpp"
#include "model/advanced.hpp"
#include "platforms/platforms.hpp"
#include "util/rng.hpp"

int main() {
    using namespace hpu;

    // --- Layer 1: a generic D&C algorithm, two execution orders.
    std::vector<std::int64_t> values = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5};
    const algos::GenericSum sum;
    const auto rec = core::run_recursive(sum, algos::GenericSum::Param{values});
    const auto bf = core::run_breadth_first(sum, algos::GenericSum::Param{values});
    std::cout << "Layer 1 — generic sum: recursive=" << rec << " breadth-first=" << bf << "\n";

    // --- The machine: HPU1 from the paper (4 CPU cores; GPU with g=4096
    // lanes, each 160x slower than a CPU core).
    sim::Hpu machine(platforms::hpu1());
    const std::uint64_t n = 1 << 20;

    // --- The model: where should the split go?
    algos::MergesortCoalesced<std::int32_t> mergesort;
    model::AdvancedModel m(machine.params(), mergesort.recurrence(), static_cast<double>(n));
    const auto plan = m.optimize();
    std::cout << "Model: give the CPU alpha=" << plan.alpha << " of the array; the GPU climbs to"
              << " level y=" << plan.y << " and does " << 100 * plan.gpu_work_share
              << "% of the work (predicted speedup " << plan.speedup << "x)\n";

    // --- Layer 2: run it. Both units work in parallel; two transfers total.
    util::Rng rng(1);
    auto data = rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));
    auto baseline = data;

    sim::CpuUnit one_core(machine.params().cpu);
    const auto seq = core::run_sequential(one_core, mergesort, std::span(baseline));
    const auto hyb = core::run_advanced_hybrid(
        machine, mergesort, std::span(data), plan.alpha,
        static_cast<std::uint64_t>(std::llround(plan.y)));

    std::cout << "Simulated: 1-core " << seq.total << " ticks, hybrid " << hyb.total
              << " ticks -> speedup " << seq.total / hyb.total << "x\n";
    std::cout << "Sorted correctly: " << std::boolalpha
              << std::is_sorted(data.begin(), data.end()) << "\n\n";

    std::cout << "Timeline of the hybrid run:\n";
    machine.timeline().print(std::cout);
    return 0;
}
