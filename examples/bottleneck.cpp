// bottleneck: critical-path + what-if CLI (DESIGN.md §16).
//
//   bottleneck <trace.json> [--platform=hpu1] [--whatif=gamma,lambda,...]
//              [--factors=0.25,0.5,1,2,4] [--markdown] [--top=5]
//              [--chrome-out=annotated.json] [--check]
//
// Loads a committed Chrome trace (obs/trace_io re-import, e.g. the files
// under bench/traces/), extracts each run's critical path, and answers the
// causal question: which platform parameter (g, gamma, lambda, delta,
// workers) would actually move the makespan, and by how much. --whatif
// narrows the sweep to the named parameters; --trace=<file> is accepted in
// place of the positional path.
//
// --chrome-out writes the trace back out with the critical path annotated
// ("crit" index args + flow arrows) so chrome://tracing highlights it.
// --check self-validates every report (non-empty chain, blame shares
// summing to 1, chain contiguous in time) and exits 1 on violation — CI
// runs it over the committed traces.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "obs/critpath.hpp"
#include "obs/trace_io.hpp"
#include "obs/whatif.hpp"
#include "platforms/platforms.hpp"
#include "trace/export.hpp"
#include "util/cli.hpp"

namespace {

using namespace hpu;

sim::HpuParams platform_by_name(const std::string& name) {
    if (name == "hpu2") return platforms::hpu2();
    if (name != "hpu1") {
        std::cerr << "unknown --platform=" << name << ", using hpu1\n";
    }
    return platforms::hpu1();
}

std::vector<std::string> split_csv(const std::string& s) {
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            if (!cur.empty()) out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty()) out.push_back(cur);
    return out;
}

/// --check: the report must be non-empty, blame shares must sum to 1, and
/// the chain must be contiguous in time (each step at or after the
/// previous one). Returns false with a message on the first violation.
bool check_report(const obs::CritPathReport& rep) {
    if (!rep.attempted || rep.chain.empty()) {
        std::cerr << "CHECK: empty critical path for run '" << rep.run_label << "'\n";
        return false;
    }
    const double sum = rep.cpu_share + rep.gpu_share + rep.link_share + rep.hook_share +
                       rep.idle_share;
    if (std::abs(sum - 1.0) > 1e-6) {
        std::cerr << "CHECK: blame shares sum to " << sum << " (want 1) for run '"
                  << rep.run_label << "'\n";
        return false;
    }
    const double tol = 1e-9 * std::max(1.0, rep.makespan);
    sim::Ticks prev_end = rep.start;
    for (const obs::CritStep& s : rep.chain) {
        if (s.start < prev_end - tol) {
            std::cerr << "CHECK: chain step '" << s.label << "' overlaps its predecessor ("
                      << s.start << " < " << prev_end << ") in run '" << rep.run_label
                      << "'\n";
            return false;
        }
        prev_end = s.end;
    }
    if (prev_end > rep.start + rep.makespan + tol) {
        std::cerr << "CHECK: chain runs past the makespan in run '" << rep.run_label
                  << "'\n";
        return false;
    }
    return true;
}

void print_markdown_critpath(const obs::CritPathReport& rep) {
    std::cout << "**critical path**: `" << rep.run_label << "` — dominant **"
              << obs::to_string(rep.dominant) << "** (" << rep.dominant_share * 100.0
              << "% of makespan " << rep.makespan << " ticks, " << rep.chain.size()
              << " steps)\n\n";
    std::cout << "| resource | ticks | share |\n|---|---:|---:|\n";
    for (obs::CritResource r :
         {obs::CritResource::kCpu, obs::CritResource::kGpu, obs::CritResource::kLink,
          obs::CritResource::kHook, obs::CritResource::kIdle}) {
        std::cout << "| " << obs::to_string(r) << " | " << rep.ticks_of(r) << " | "
                  << rep.share_of(r) * 100.0 << "% |\n";
    }
    std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
    util::Cli cli(argc, argv);

    std::string path = cli.get("trace", "");
    if (path.empty() && !cli.positional().empty()) path = cli.positional().front();
    if (path.empty()) {
        std::cerr << "usage: bottleneck <trace.json> [--platform=hpu1]\n"
                  << "                  [--whatif=g,gamma,lambda,delta,workers]\n"
                  << "                  [--factors=0.25,0.5,1,2,4] [--markdown]\n"
                  << "                  [--chrome-out=annotated.json] [--check]\n";
        return 2;
    }

    const obs::LoadedTrace loaded = obs::load_chrome_trace(path);
    if (!loaded.ok()) {
        std::cerr << path << ": " << loaded.error << "\n";
        return 2;
    }
    if (loaded.session.empty()) {
        std::cerr << path << ": trace has no spans\n";
        return 2;
    }

    const sim::HpuParams hw = platform_by_name(cli.get("platform", "hpu1"));
    const bool markdown = cli.get_bool("markdown", false);

    obs::WhatIfOptions wopts;
    if (cli.has("whatif")) {
        wopts.params.clear();
        for (const std::string& name : split_csv(cli.get("whatif", ""))) {
            obs::WhatIfParam p{};
            if (!obs::parse_param(name, p)) {
                std::cerr << "unknown --whatif parameter '" << name
                          << "' (want g|gamma|lambda|delta|p|workers)\n";
                return 2;
            }
            wopts.params.push_back(p);
        }
        if (wopts.params.empty()) {
            std::cerr << "--whatif needs at least one parameter\n";
            return 2;
        }
    }
    if (cli.has("factors")) {
        wopts.factors.clear();
        for (const std::string& f : split_csv(cli.get("factors", ""))) {
            const double v = std::stod(f);
            if (v <= 0.0) {
                std::cerr << "--factors must be positive, got " << f << "\n";
                return 2;
            }
            wopts.factors.push_back(v);
        }
        if (wopts.factors.empty()) {
            std::cerr << "--factors needs at least one value\n";
            return 2;
        }
    }

    trace::ChromeExtras extras;
    bool checks_ok = true;
    const std::vector<trace::SpanId> roots = loaded.session.children(trace::kNoSpan);
    for (trace::SpanId root : roots) {
        const obs::CritPathReport rep = obs::extract_critical_path(loaded.session, root);
        if (markdown) {
            print_markdown_critpath(rep);
        } else {
            rep.print(std::cout);
        }
        obs::add_to_extras(extras, rep);
        if (cli.get_bool("check", false) && !check_report(rep)) checks_ok = false;

        const obs::WhatIfReport wrep = obs::what_if(loaded.session, root, hw, wopts);
        if (markdown) {
            wrep.print_markdown(std::cout);
            std::cout << "\n";
        } else {
            wrep.print(std::cout);
            std::cout << "\n";
        }
    }

    if (cli.has("chrome-out")) {
        const std::string out = cli.get("chrome-out", "");
        if (!trace::write_chrome_file(loaded.session, out, extras)) {
            std::cerr << "cannot write " << out << "\n";
            return 2;
        }
        if (!markdown) {
            std::cout << "wrote " << out << " (critical path annotated, "
                      << extras.flows.size() << " flow arrow(s))\n";
        }
    }

    return checks_ok ? 0 : 1;
}
