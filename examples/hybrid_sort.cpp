// The paper's case study end to end: sort an array with every strategy the
// framework offers and compare — sequential, multicore, GPU-only (both
// merge kernels), basic hybrid, advanced hybrid, and the fully parallel
// GPU mergesort.
//
// Flags: --n=<pow2> --platform=HPU1|HPU2 --alpha=<float> --y=<level>
//        (alpha/y default to the model's optimum)
#include <iostream>

#include "algos/mergesort.hpp"
#include "algos/parallel_merge.hpp"
#include "core/hybrid.hpp"
#include "model/advanced.hpp"
#include "platforms/platforms.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace hpu;
    util::Cli cli(argc, argv);
    const auto n = static_cast<std::uint64_t>(cli.get_int("n", 1 << 18));
    const auto spec = platforms::by_name(cli.get("platform", "HPU1"));

    algos::MergesortPlain<std::int32_t> plain;
    algos::MergesortCoalesced<std::int32_t> coal;
    model::AdvancedModel m(spec.params, coal.recurrence(), static_cast<double>(n));
    const auto opt = m.optimize();
    const double alpha = cli.get_double("alpha", opt.alpha);
    const auto y = static_cast<std::uint64_t>(
        cli.get_int("y", std::llround(opt.y)));

    util::Rng rng(42);
    const auto base = rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));
    auto expect = base;
    std::sort(expect.begin(), expect.end());

    std::cout << "Hybrid mergesort on " << spec.name << ", n=" << n << ", alpha=" << alpha
              << ", y=" << y << "\n\n";
    util::Table t({"strategy", "ticks", "speedup", "sorted"}, 3);
    sim::Ticks seq_time = 0;
    auto run = [&](const std::string& name, auto&& fn) {
        auto d = base;
        sim::Hpu h(spec.params);
        const sim::Ticks ticks = fn(h, std::span<std::int32_t>(d));
        if (name == "sequential (1 core)") seq_time = ticks;
        t.add_row({name, ticks, seq_time / ticks,
                   std::string(d == expect ? "yes" : "NO")});
    };
    run("sequential (1 core)", [&](sim::Hpu& h, std::span<std::int32_t> d) {
        return core::run_sequential(h.cpu(), plain, d).total;
    });
    run("multicore (4 cores)", [&](sim::Hpu& h, std::span<std::int32_t> d) {
        return core::run_multicore(h.cpu(), coal, d).total;
    });
    run("gpu only, strided merge", [&](sim::Hpu& h, std::span<std::int32_t> d) {
        return core::run_gpu(h, plain, d).total;
    });
    run("gpu only, coalesced merge", [&](sim::Hpu& h, std::span<std::int32_t> d) {
        return core::run_gpu(h, coal, d).total;
    });
    run("basic hybrid (Sec. 5.1)", [&](sim::Hpu& h, std::span<std::int32_t> d) {
        return core::run_basic_hybrid(h, coal, d).total;
    });
    run("advanced hybrid (Sec. 5.2)", [&](sim::Hpu& h, std::span<std::int32_t> d) {
        return core::run_advanced_hybrid(h, coal, d, alpha, y).total;
    });
    run("gpu parallel merge (Fig. 9)", [&](sim::Hpu& h, std::span<std::int32_t> d) {
        return algos::mergesort_gpu_parallel(h, d).total();
    });
    t.print(std::cout);
    std::cout << "\nModel prediction for the advanced hybrid: " << opt.speedup << "x\n";
    return 0;
}
