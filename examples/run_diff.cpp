// run_diff: the regression-observatory CLI (DESIGN.md §13).
//
// Diff mode (default) — explain where two runs' time diverges:
//   run_diff base.json cand.json [--top=5] [--markdown] [--waves]
//            [--gate=0.02] [--estimate --platform=hpu1]
// loads two Chrome trace-event JSON files (as written by trace_explorer,
// the wallclock harness, or --emit below), aligns their span trees, and
// prints the per-span delta / self-delta attribution. --gate=<tol> exits 1
// when the candidate is slower than the base by more than the relative
// tolerance — wire it into CI to turn a trace diff into a merge gate.
// --estimate re-fits (g, gamma, lambda, delta) from each trace against the
// named platform's configured parameters and prints the drift table.
//
// Emit mode — produce a trace to diff against later:
//   run_diff --emit=basic --out=base.json [--n=1048576] [--platform=hpu1]
//            [--functional] [--seed=7] [--alpha=] [--y=] [--chunks=4]
// runs one executor (sequential | multicore | gpu | basic | advanced |
// pipelined) with tracing on and writes the Chrome JSON. The advanced and
// pipelined executors default (alpha, y) to the model optimum for the
// chosen size, like the schedulers themselves would.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "algos/mergesort.hpp"
#include "core/hybrid.hpp"
#include "core/pipeline.hpp"
#include "model/advanced.hpp"
#include "obs/diff.hpp"
#include "obs/estimate.hpp"
#include "obs/trace_io.hpp"
#include "platforms/platforms.hpp"
#include "trace/export.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace hpu;

sim::HpuParams platform_by_name(const std::string& name) {
    if (name == "hpu2") return platforms::hpu2();
    if (name != "hpu1") {
        std::cerr << "unknown --platform=" << name << ", using hpu1\n";
    }
    return platforms::hpu1();
}

int emit_trace(const util::Cli& cli, const std::string& executor) {
    const auto n = static_cast<std::uint64_t>(cli.get_int("n", 1 << 20));
    const bool functional = cli.get_bool("functional", false);
    const std::string out = cli.get("out", "trace.json");
    sim::HpuParams hw = platform_by_name(cli.get("platform", "hpu1"));
    algos::MergesortCoalesced<std::int32_t> alg;

    std::vector<std::int32_t> data(functional ? n : 1);
    if (functional) {
        util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 7)));
        data = rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));
    }
    std::span<std::int32_t> span(data.data(), n);

    trace::TraceSession session;
    core::ExecOptions opts;
    opts.functional = functional;
    opts.trace = &session;

    // (alpha, y) for the split schedulers: flag override, else the model
    // optimum — the same plan the paper's experiments run at.
    sim::Hpu machine(hw);
    model::AdvancedModel m(hw, alg.recurrence(), static_cast<double>(n));
    const model::AdvancedPrediction plan = m.optimize();
    const double alpha = cli.get_double("alpha", plan.alpha);
    const auto L = static_cast<std::uint64_t>(util::ilog2(n));
    auto y = static_cast<std::uint64_t>(
        cli.get_int("y", std::max<std::int64_t>(1, std::llround(plan.y))));
    y = std::min(y, L);

    if (executor == "sequential") {
        sim::CpuUnit one(hw.cpu);
        core::run_sequential(one, alg, span, opts);
    } else if (executor == "multicore") {
        core::run_multicore(machine.cpu(), alg, span, opts);
    } else if (executor == "gpu") {
        core::run_gpu(machine, alg, span, opts);
    } else if (executor == "basic") {
        core::run_basic_hybrid(machine, alg, span, opts);
    } else if (executor == "advanced") {
        core::AdvancedOptions adv;
        adv.exec = opts;
        core::run_advanced_hybrid(machine, alg, span, alpha, y, adv);
    } else if (executor == "pipelined") {
        core::PipelinedOptions pip;
        pip.chunks = static_cast<std::uint64_t>(cli.get_int("chunks", 4));
        pip.exec = opts;
        core::run_pipelined_hybrid(machine, alg, span, alpha, y, pip);
    } else {
        std::cerr << "unknown --emit=" << executor
                  << " (want sequential|multicore|gpu|basic|advanced|pipelined)\n";
        return 2;
    }

    if (!trace::write_chrome_file(session, out)) {
        std::cerr << "cannot write " << out << "\n";
        return 2;
    }
    std::cout << "wrote " << out << " (" << session.spans().size() << " spans, "
              << executor << ", n=" << n << ", " << hw.name << ", "
              << (functional ? "functional" : "analytic") << ")\n";
    return 0;
}

void print_estimates(const trace::TraceSession& session, const char* which,
                     const sim::HpuParams& hw) {
    std::cout << "\n(g, gamma, lambda, delta) re-fit of " << which << " vs configured "
              << hw.name << ":\n";
    obs::estimate_params(session, hw).print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
    util::Cli cli(argc, argv);

    const std::string emit = cli.get("emit", "");
    if (!emit.empty()) return emit_trace(cli, emit);

    const auto& pos = cli.positional();
    if (pos.size() != 2) {
        std::cerr << "usage: run_diff <base.json> <cand.json> [--top=5] [--markdown]\n"
                  << "                [--waves] [--gate=tol] [--estimate --platform=hpu1]\n"
                  << "   or: run_diff --emit=<executor> --out=<trace.json> [--n=] "
                     "[--platform=] [--functional]\n";
        return 2;
    }

    const obs::LoadedTrace base = obs::load_chrome_trace(pos[0]);
    if (!base.ok()) {
        std::cerr << pos[0] << ": " << base.error << "\n";
        return 2;
    }
    const obs::LoadedTrace cand = obs::load_chrome_trace(pos[1]);
    if (!cand.ok()) {
        std::cerr << pos[1] << ": " << cand.error << "\n";
        return 2;
    }

    obs::DiffOptions opts;
    opts.include_waves = cli.get_bool("waves", false);
    const obs::TraceDiff diff = obs::diff_traces(base.session, cand.session, opts);

    const auto top = static_cast<std::size_t>(cli.get_int("top", 5));
    if (cli.get_bool("markdown", false)) {
        diff.print_markdown(std::cout, top);
    } else {
        diff.print(std::cout, top);
    }

    if (cli.get_bool("estimate", false)) {
        const sim::HpuParams hw = platform_by_name(cli.get("platform", "hpu1"));
        print_estimates(base.session, "base", hw);
        print_estimates(cand.session, "candidate", hw);
    }

    if (cli.has("gate")) {
        const double tol = cli.get_double("gate", 0.02);
        const double rel =
            diff.base_total > 0.0 ? diff.delta() / diff.base_total : 0.0;
        if (rel > tol) {
            std::cerr << "\nGATE: candidate is " << rel * 100.0
                      << "% slower than base (tolerance " << tol * 100.0 << "%)\n";
            return 1;
        }
        std::cout << "\ngate ok: relative delta " << rel * 100.0 << "% within "
                  << tol * 100.0 << "%\n";
    }
    return 0;
}
