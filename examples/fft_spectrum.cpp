// Hybrid FFT: the framework applied to a second real workload with the
// mergesort recurrence shape (a = b = 2, f(n) = Θ(n)). Builds a noisy
// two-tone signal, runs the D&C FFT through the advanced hybrid scheduler
// at the model-optimal (α, y), and locates the tones in the spectrum —
// end-to-end evidence that the §5 analysis is algorithm-agnostic.
//
// Flags: --lgn=<log2 size> --platform=HPU1|HPU2
#include <complex>
#include <iostream>
#include <numbers>

#include "algos/fft.hpp"
#include "core/hybrid.hpp"
#include "model/advanced.hpp"
#include "platforms/platforms.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace hpu;
    util::Cli cli(argc, argv);
    const auto lgn = static_cast<unsigned>(cli.get_int("lgn", 16));
    const std::uint64_t n = 1ull << lgn;
    const auto spec = platforms::by_name(cli.get("platform", "HPU1"));

    // Two tones in noise.
    const std::uint64_t f1 = n / 8, f2 = n / 3;
    util::Rng rng(2026);
    std::vector<std::complex<double>> signal(n);
    for (std::uint64_t t = 0; t < n; ++t) {
        const double x = 2.0 * std::numbers::pi * static_cast<double>(t) / static_cast<double>(n);
        signal[t] = {std::cos(x * static_cast<double>(f1)) +
                         0.5 * std::sin(x * static_cast<double>(f2)) +
                         0.1 * rng.uniform_real(-1, 1),
                     0.0};
    }

    algos::DcFft fft;
    model::AdvancedModel m(spec.params, fft.recurrence(), static_cast<double>(n));
    const auto plan = m.optimize();
    std::cout << "FFT on " << spec.name << ", n=" << n << " — model picks alpha="
              << plan.alpha << ", y=" << plan.y << " (predicted speedup " << plan.speedup
              << "x over 1 core)\n";

    sim::Hpu machine(spec.params);
    auto seq_data = signal;
    sim::CpuUnit one(spec.params.cpu);
    const auto seq = core::run_sequential(one, fft, std::span(seq_data));
    auto hyb_data = signal;
    const auto hyb = core::run_advanced_hybrid(
        machine, fft, std::span(hyb_data), plan.alpha,
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::llround(plan.y))));
    std::cout << "Simulated speedup: " << seq.total / hyb.total << "x\n";

    // Verify the two schedules agree bit-for-bit in spectrum shape.
    double max_diff = 0;
    for (std::uint64_t k = 0; k < n; ++k) max_diff = std::max(max_diff, std::abs(seq_data[k] - hyb_data[k]));
    std::cout << "max |sequential - hybrid| spectrum difference: " << max_diff << "\n\n";

    // Report the dominant bins.
    util::Table t({"bin", "magnitude", "expected tone"});
    std::vector<std::pair<double, std::uint64_t>> mags;
    for (std::uint64_t k = 1; k < n / 2; ++k) mags.emplace_back(std::abs(hyb_data[k]), k);
    std::sort(mags.rbegin(), mags.rend());
    for (int i = 0; i < 4; ++i) {
        const auto [mag, k] = mags[static_cast<std::size_t>(i)];
        std::string tone = k == f1 ? "f1" : (k == f2 ? "f2" : "-");
        t.add_row({static_cast<std::int64_t>(k), mag, tone});
    }
    t.print(std::cout);
    std::cout << "\n(the top two bins should be f1=" << f1 << " and f2=" << f2 << ")\n";
    return 0;
}
