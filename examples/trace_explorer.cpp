// Trace explorer: side-by-side observability of the basic (§5.1),
// advanced (§5.2), and pipelined (§9) hybrid schedulers on the same
// mergesort run.
//
// Both runs record hierarchical spans (run → phase → level → wave) into
// hpu::trace sessions. The example then
//   1. prints each scheduler's utilization / model-drift report — the
//      basic hybrid shows an idle CPU during the device phase, the
//      advanced hybrid shows both units busy and a GPU work share near
//      the model's prediction (~52% at the paper's operating point);
//   2. exports both span trees as Chrome trace-event JSON, loadable in
//      Perfetto (https://ui.perfetto.dev) or chrome://tracing, where the
//      advanced run visibly overlaps its cpu-parallel and gpu-phase
//      tracks between exactly two transfer slices, and the pipelined run
//      shows K chunk slices on the link track riding under the first
//      device launches.
//
// Build: cmake --build build && ./build/examples/trace_explorer
// Flags: --n=<elems> --functional --csv-spans (dump raw span CSV instead
//        of the utilization tables) --out-dir=<dir> (directory for the
//        three trace JSON files; default: current directory)
#include <filesystem>
#include <iostream>

#include "algos/mergesort.hpp"
#include "core/hybrid.hpp"
#include "core/pipeline.hpp"
#include "model/advanced.hpp"
#include "platforms/platforms.hpp"
#include "trace/export.hpp"
#include "trace/utilization.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
    using namespace hpu;
    util::Cli cli(argc, argv);
    const auto n = static_cast<std::uint64_t>(cli.get_int("n", 1 << 20));
    const bool functional = cli.get_bool("functional", false);

    sim::Hpu machine(platforms::hpu1());
    algos::MergesortCoalesced<std::int32_t> alg;
    const double mult = alg.device_ops_multiplier(machine.params().gpu);

    std::vector<std::int32_t> data(n);
    if (functional) {
        util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 7)));
        data = rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));
    }

    // --- Basic hybrid: one unit at a time, one round trip.
    trace::TraceSession basic_trace;
    core::ExecOptions basic_opts;
    basic_opts.functional = functional;
    basic_opts.trace = &basic_trace;
    std::vector<std::int32_t> basic_data = data;
    const auto basic_rep =
        core::run_basic_hybrid(machine, alg, std::span(basic_data), basic_opts);

    // --- Advanced hybrid at the model's optimal (α, y): both units busy.
    model::AdvancedModel m(machine.params(), alg.recurrence(), static_cast<double>(n));
    const auto plan = m.optimize();
    const auto L = static_cast<std::uint64_t>(util::ilog2(n));
    const auto y = std::clamp<std::uint64_t>(
        static_cast<std::uint64_t>(std::llround(plan.y)), 1, L);

    sim::Hpu machine2(platforms::hpu1());
    trace::TraceSession adv_trace;
    core::AdvancedOptions adv;
    adv.exec.functional = functional;
    adv.exec.trace = &adv_trace;
    std::vector<std::int32_t> adv_data = data;
    const auto adv_rep =
        core::run_advanced_hybrid(machine2, alg, std::span(adv_data), plan.alpha, y, adv);

    // --- Pipelined hybrid at the same (α, y): the two bulk transfers
    // split into chunks that overlap the first device launches.
    sim::Hpu machine3(platforms::hpu1());
    trace::TraceSession pip_trace;
    core::PipelinedOptions pip;
    pip.chunks = static_cast<std::uint64_t>(cli.get_int("pipeline", 4));
    pip.exec.functional = functional;
    pip.exec.trace = &pip_trace;
    std::vector<std::int32_t> pip_data = data;
    const auto pip_rep =
        core::run_pipelined_hybrid(machine3, alg, std::span(pip_data), plan.alpha, y, pip);

    std::cout << "mergesort, n=" << n << " on " << machine.params().name
              << (functional ? " (functional)" : " (analytic)") << "\n"
              << "  basic hybrid:    total=" << basic_rep.total << " ticks\n"
              << "  advanced hybrid: total=" << adv_rep.total << " ticks  (alpha="
              << plan.alpha << ", y=" << y << ", model speedup=" << plan.speedup << ")\n"
              << "  pipelined hybrid: total=" << pip_rep.total << " ticks  (K="
              << pip_rep.chunks << (pip_rep.chunks == 1 ? ", guard fell back" : "")
              << ", gain=" << adv_rep.total - pip_rep.total << ")\n\n";

    if (cli.get_bool("csv-spans", false)) {
        trace::export_csv(adv_trace, std::cout);
    } else {
        std::cout << "=== basic hybrid — the CPU idles while the device works ===\n";
        trace::derive_utilization(basic_trace, machine.params(), alg.recurrence(), mult)
            .print(std::cout);
        std::cout << "\n=== advanced hybrid — both units busy, two transfers ===\n";
        trace::derive_utilization(adv_trace, machine2.params(), alg.recurrence(), mult)
            .print(std::cout);
        std::cout << "\n=== pipelined hybrid — transfers overlap the device launches ===\n";
        trace::derive_utilization(pip_trace, machine3.params(), alg.recurrence(), mult)
            .print(std::cout);
    }

    namespace fs = std::filesystem;
    const std::string out_dir = cli.get("out-dir", "");
    if (!out_dir.empty()) {
        std::error_code ec;
        fs::create_directories(out_dir, ec);
    }
    auto out_path = [&](const char* name) {
        return out_dir.empty() ? std::string(name) : (fs::path(out_dir) / name).string();
    };
    const std::string basic_path = out_path("trace_basic.json");
    const std::string adv_path = out_path("trace_advanced.json");
    const std::string pip_path = out_path("trace_pipelined.json");
    if (trace::write_chrome_file(basic_trace, basic_path) &&
        trace::write_chrome_file(adv_trace, adv_path) &&
        trace::write_chrome_file(pip_trace, pip_path)) {
        std::cout << "\nwrote " << basic_path << " (" << basic_trace.spans().size()
                  << " spans), " << adv_path << " (" << adv_trace.spans().size()
                  << " spans), and " << pip_path << " (" << pip_trace.spans().size()
                  << " spans) — open in https://ui.perfetto.dev\n";
    }
    return 0;
}
