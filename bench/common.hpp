// Shared plumbing for the figure/table reproduction binaries. Each binary
// regenerates one table or figure of the paper's evaluation (§6.4): it
// prints the same rows/series the paper reports, on the simulated HPU
// platforms (see DESIGN.md §2 for the substitution rationale).
//
// Common flags:
//   --csv            emit CSV instead of the aligned table
//   --platform=HPU1  restrict to one platform where applicable
//   --n=<elems>      input size (power of two) where applicable
//   --seed=<u64>     RNG seed for functional input data (default: derived
//                    from n, so runs stay reproducible without the flag)
//   --functional     run task bodies on real data instead of the analytic
//                    fast path (slower, bit-verified; default off in
//                    benches — the test suite covers functional parity)
//   --validate       run the hpu::analysis correctness passes on every
//                    functional level (implies nothing in analytic mode)
//   --trace=<file>   record a span trace of the headline run and export it
//                    as Chrome trace-event JSON (load in Perfetto or
//                    chrome://tracing)
//   --utilization    derive and print the utilization / model-drift report
//                    from the same trace
//   --critpath       extract and print each traced run's critical path
//                    (obs/critpath.hpp) and, with --trace, annotate the
//                    exported JSON so chrome://tracing highlights the
//                    chain as a connected flow
//   --pipeline=<K>   also run the pipelined hybrid (§9) with K transfer
//                    chunks where the bench supports it (0 = off; the
//                    scheduler's no-win guard may still fall back to K=1)
//   --repeats=<k>    time each configuration k times and report the
//                    minimum (min-of-k filters scheduler noise out of
//                    wall-clock numbers; default 1, virtual results are
//                    identical across repeats by construction)
//   --workers=<k>    host threads for functional execution (see
//                    worker_threads below; 0 = inline on the caller —
//                    virtual times are identical either way, DESIGN.md §10;
//                    --workers=hw asks for hardware_concurrency)
//   --out-dir=<dir>  directory for artifact files (traces, bench JSON,
//                    profiles); bare filenames resolve into it, paths with
//                    a directory component pass through untouched
#pragma once

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <thread>

#include "algos/mergesort.hpp"
#include "core/hybrid.hpp"
#include "core/pipeline.hpp"
#include "model/advanced.hpp"
#include "model/pipeline.hpp"
#include "obs/critpath.hpp"
#include "platforms/platforms.hpp"
#include "trace/export.hpp"
#include "trace/utilization.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace hpu::bench {

inline void emit(const util::Table& t, const util::Cli& cli) {
    if (cli.get_bool("csv", false)) {
        t.print_csv(std::cout);
    } else {
        t.print(std::cout);
    }
}

inline core::ExecOptions exec_options(const util::Cli& cli) {
    core::ExecOptions o;
    o.functional = cli.get_bool("functional", false);
    o.validate = cli.get_bool("validate", o.validate);
    return o;
}

/// Seed for functional input data: --seed if given, else derived from n
/// (the historical default, kept so unflagged runs reproduce old numbers).
inline std::uint64_t input_seed(const util::Cli& cli, std::uint64_t n) {
    return static_cast<std::uint64_t>(cli.get_int("seed", static_cast<std::int64_t>(n)));
}

/// Requested transfer chunks from --pipeline (0 = pipelining off). Shared
/// by every bench so the flag spells and defaults the same everywhere.
inline std::uint64_t pipeline_chunks(const util::Cli& cli) {
    const std::int64_t k = cli.get_int("pipeline", 0);
    return k > 0 ? static_cast<std::uint64_t>(k) : 0;
}

/// Pool workers requested via --workers: the host threads that accelerate
/// *functional* execution when the bench passes a util::ThreadPool into
/// its sim::Hpu. Defaults to hardware_concurrency - 1 (the submitting
/// thread drains chunks too, so k workers occupy k+1 cores); 0 = inline.
inline std::size_t worker_threads(const util::Cli& cli) {
    const auto hc = std::max(1u, std::thread::hardware_concurrency());
    if (cli.get("workers", "") == "hw") return hc;
    const auto def = static_cast<std::int64_t>(hc > 1 ? hc - 1 : 0);
    const std::int64_t k = cli.get_int("workers", def);
    return k > 0 ? static_cast<std::size_t>(k) : 0;
}

/// Timing repeats requested via --repeats (min 1). Wall-clock benches
/// report min-of-k; the virtual clocks never vary across repeats, so only
/// the timed seconds benefit.
inline int repeats(const util::Cli& cli) {
    const std::int64_t k = cli.get_int("repeats", 1);
    return k > 1 ? static_cast<int>(k) : 1;
}

/// min-of-k estimator: run the timed thunk k times, keep the smallest
/// result. The minimum is the standard noise filter for short wall-clock
/// measurements — every perturbation (scheduler, turbo, page faults) only
/// ever adds time.
template <typename Fn>
double min_of(int k, Fn&& fn) {
    double best = fn();
    for (int i = 1; i < k; ++i) best = std::min(best, fn());
    return best;
}

/// Resolves a bare artifact filename against --out-dir (creating it on
/// demand). Absolute paths and paths that already carry a directory
/// component pass through, so explicit --trace=build/foo.json keeps
/// working next to --out-dir.
inline std::string out_path(const util::Cli& cli, const std::string& name) {
    namespace fs = std::filesystem;
    const std::string dir = cli.get("out-dir", "");
    if (name.empty() || dir.empty()) return name;
    const fs::path p(name);
    if (p.is_absolute() || p.has_parent_path()) return name;
    std::error_code ec;
    fs::create_directories(dir, ec);  // best effort; open reports failure
    return (fs::path(dir) / p).string();
}

/// Platforms selected by --platform (default: both).
inline std::vector<platforms::PlatformSpec> selected_platforms(const util::Cli& cli) {
    if (cli.has("platform")) return {platforms::by_name(cli.get("platform", "HPU1"))};
    return platforms::all();
}

/// The --trace / --utilization sink: when either flag is present, exposes a
/// TraceSession for the binary to attach to its headline run (benches
/// sweep many configurations; they trace one representative run, not the
/// whole sweep). finish() then exports and/or prints.
class TraceSink {
public:
    explicit TraceSink(const util::Cli& cli)
        : path_(out_path(cli, cli.get("trace", ""))),
          utilization_(cli.get_bool("utilization", false)),
          critpath_(cli.get_bool("critpath", false)) {}

    /// Non-null when the user asked for any trace output.
    trace::TraceSession* session() { return active() ? &session_ : nullptr; }
    bool active() const noexcept { return !path_.empty() || utilization_ || critpath_; }

    /// Exports --trace JSON (with --critpath: the chain annotated as a
    /// Chrome flow) and/or prints the --utilization / --critpath reports.
    /// `rec` and `mult` must describe the traced algorithm, `hw` the
    /// platform of the traced run.
    void finish(const sim::HpuParams& hw, const model::Recurrence& rec, double mult = 1.0) {
        if (!active() || session_.empty()) return;
        trace::ChromeExtras extras;
        if (critpath_) {
            for (trace::SpanId root : session_.children(trace::kNoSpan)) {
                const obs::CritPathReport rep = obs::extract_critical_path(session_, root);
                std::cout << "\n";
                rep.print(std::cout);
                obs::add_to_extras(extras, rep);
            }
        }
        if (!path_.empty()) {
            if (trace::write_chrome_file(session_, path_, extras)) {
                std::cout << "\ntrace: " << session_.spans().size() << " spans -> " << path_
                          << " (load in Perfetto / chrome://tracing"
                          << (extras.empty() ? "" : "; critical path annotated") << ")\n";
            } else {
                std::cerr << "\ntrace: cannot write " << path_ << "\n";
            }
        }
        if (utilization_) {
            std::cout << "\n";
            trace::derive_utilization(session_, hw, rec, mult).print(std::cout);
        }
    }

private:
    std::string path_;
    bool utilization_ = false;
    bool critpath_ = false;
    trace::TraceSession session_;
};

/// The 1-core baseline time for mergesort at size n (virtual ticks).
inline sim::Ticks sequential_mergesort_time(const sim::HpuParams& hw, std::uint64_t n,
                                            const core::ExecOptions& opts,
                                            std::uint64_t seed) {
    sim::CpuUnit cpu(hw.cpu);
    algos::MergesortCoalesced<std::int32_t> alg;
    std::vector<std::int32_t> data(n);
    if (opts.functional) {
        util::Rng rng(seed);
        data = rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));
    }
    return core::run_sequential(cpu, alg, std::span(data), opts).total;
}

}  // namespace hpu::bench
