// Shared plumbing for the figure/table reproduction binaries. Each binary
// regenerates one table or figure of the paper's evaluation (§6.4): it
// prints the same rows/series the paper reports, on the simulated HPU
// platforms (see DESIGN.md §2 for the substitution rationale).
//
// Common flags:
//   --csv            emit CSV instead of the aligned table
//   --platform=HPU1  restrict to one platform where applicable
//   --n=<elems>      input size (power of two) where applicable
//   --functional     run task bodies on real data instead of the analytic
//                    fast path (slower, bit-verified; default off in
//                    benches — the test suite covers functional parity)
#pragma once

#include <iostream>

#include "algos/mergesort.hpp"
#include "core/hybrid.hpp"
#include "model/advanced.hpp"
#include "platforms/platforms.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace hpu::bench {

inline void emit(const util::Table& t, const util::Cli& cli) {
    if (cli.get_bool("csv", false)) {
        t.print_csv(std::cout);
    } else {
        t.print(std::cout);
    }
}

inline core::ExecOptions exec_options(const util::Cli& cli) {
    core::ExecOptions o;
    o.functional = cli.get_bool("functional", false);
    return o;
}

/// Platforms selected by --platform (default: both).
inline std::vector<platforms::PlatformSpec> selected_platforms(const util::Cli& cli) {
    if (cli.has("platform")) return {platforms::by_name(cli.get("platform", "HPU1"))};
    return platforms::all();
}

/// The 1-core baseline time for mergesort at size n (virtual ticks).
inline sim::Ticks sequential_mergesort_time(const sim::HpuParams& hw, std::uint64_t n,
                                            const core::ExecOptions& opts) {
    sim::CpuUnit cpu(hw.cpu);
    algos::MergesortCoalesced<std::int32_t> alg;
    std::vector<std::int32_t> data(n);
    if (opts.functional) {
        util::Rng rng(n);
        data = rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));
    }
    return core::run_sequential(cpu, alg, std::span(data), opts).total;
}

}  // namespace hpu::bench
