// §7 future-work ablation: "switch to non-recursive sequential versions of
// the algorithms at the lowest levels of the tree … the optimal switching
// level would have to be determined analytically or experimentally".
// Sweeps the base block size of blocked mergesort on both units.
#include "algos/mergesort_blocked.hpp"

#include "common.hpp"

int main(int argc, char** argv) {
    using namespace hpu;
    util::Cli cli(argc, argv);
    const std::uint64_t n = static_cast<std::uint64_t>(cli.get_int("n", 1 << 18));
    const auto spec = platforms::by_name(cli.get("platform", "HPU1"));
    sim::HpuParams hw = spec.params;
    hw.gpu.launch_overhead = cli.get_double("launch-overhead", 5000.0);

    core::ExecOptions opts;
    opts.functional = cli.get_bool("functional", true);  // leaf costs are data-dependent

    util::Rng rng(9);
    const auto base = rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));

    std::cout << "Blocked-base ablation (" << spec.name << "), mergesort, n=" << n
              << ", launch overhead " << hw.gpu.launch_overhead << "\n";
    util::Table t({"block", "t(1-core)", "t(multicore)", "t(gpu kernels)"}, 0);
    for (std::uint64_t block : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        algos::MergesortBlocked<std::int32_t> alg(block);
        sim::Hpu h(hw);
        auto d1 = base;
        const auto seq = core::run_sequential(h.cpu(), alg, std::span(d1), opts);
        auto d2 = base;
        const auto mc = core::run_multicore(h.cpu(), alg, std::span(d2), opts);
        auto d3 = base;
        const auto gp = core::run_gpu(h, alg, std::span(d3), opts, false);
        t.add_row({static_cast<std::int64_t>(block), seq.total, mc.total, gp.gpu_busy});
    }
    bench::emit(t, cli);
    std::cout << "\n(the CPU optimum sits at small blocks — insertion sort's quadratic\n"
                 " leaf cost bites early; the GPU optimum sits later because each removed\n"
                 " level also removes a kernel launch)\n";
    return 0;
}
