// Figure 7: speedup of the advanced hybrid mergesort on HPU1 (vs the
// 1-core recursive baseline) as a function of the work ratio α, one series
// per transfer level y in {7..12}, n = 2²⁴. The paper's curves peak near
// α ≈ 0.16 with the best levels around y = 10 and a maximum of ≈ 4.5×.
//
// With --trace=<file> / --utilization, the best (α, y) of the sweep is
// re-run once with span tracing attached and exported / summarized — the
// sweep itself stays untraced so the exported trace holds one clean run.
#include "common.hpp"

int main(int argc, char** argv) {
    using namespace hpu;
    util::Cli cli(argc, argv);
    const auto n = static_cast<std::uint64_t>(cli.get_int("n", 1 << 24));
    const auto spec = platforms::by_name(cli.get("platform", "HPU1"));
    sim::HpuParams hw = spec.params;
    // The measured runs contend for the LLC at this size (§6.4's
    // explanation of the measured-vs-predicted gap).
    hw.cpu.contention = cli.get_double("contention", 0.08);

    core::AdvancedOptions adv;
    adv.exec = bench::exec_options(cli);

    algos::MergesortCoalesced<std::int32_t> alg;
    std::vector<std::int32_t> data(n);
    util::Rng rng(bench::input_seed(cli, 7));
    if (adv.exec.functional) data = rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));
    const sim::Ticks seq =
        bench::sequential_mergesort_time(hw, n, adv.exec, bench::input_seed(cli, n));

    std::cout << "Figure 7 (" << spec.name << "): hybrid mergesort speedup vs alpha, n=" << n
              << "\n";
    std::vector<std::string> headers = {"alpha"};
    for (int y = 7; y <= 12; ++y) headers.push_back("y=" + std::to_string(y));
    util::Table t(std::move(headers), 3);
    double best_speedup = 0.0, best_alpha = 0.16;
    std::uint64_t best_y = 10;
    for (double alpha = 0.04; alpha <= 0.36; alpha += 0.04) {
        std::vector<util::Cell> row = {alpha};
        for (std::uint64_t y = 7; y <= 12; ++y) {
            sim::Hpu h(hw);
            // Functional runs need a fresh unsorted copy; the analytic path
            // never touches the data.
            std::vector<std::int32_t> copy;
            std::span<std::int32_t> d(data);
            if (adv.exec.functional) {
                copy = data;
                d = std::span(copy);
            }
            const auto rep = core::run_advanced_hybrid(h, alg, d, alpha, y, adv);
            row.push_back(seq / rep.total);
            if (seq / rep.total > best_speedup) {
                best_speedup = seq / rep.total;
                best_alpha = alpha;
                best_y = y;
            }
        }
        t.add_row(std::move(row));
    }
    bench::emit(t, cli);
    std::cout << "\n(paper: peak ~4.5x near alpha~0.16, best transfer levels 9-11)\n";

    bench::TraceSink sink(cli);
    if (sink.active()) {
        sim::Hpu h(hw);
        core::AdvancedOptions traced = adv;
        traced.exec.trace = sink.session();
        std::vector<std::int32_t> copy;
        std::span<std::int32_t> d(data);
        if (adv.exec.functional) {
            copy = data;
            d = std::span(copy);
        }
        core::run_advanced_hybrid(h, alg, d, best_alpha, best_y, traced);
        std::cout << "\ntraced run: alpha=" << best_alpha << " y=" << best_y
                  << " speedup=" << best_speedup << "\n";
        sink.finish(hw, alg.recurrence(), alg.device_ops_multiplier(hw.gpu));
    }
    return 0;
}
