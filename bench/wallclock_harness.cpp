// Wall-clock harness for the host-parallel functional engine: runs the
// Figure-8 size sweep through every executor twice — functional bodies
// inline (workers = 0) and across a util::ThreadPool — and reports real
// seconds plus the pooled-over-inline speedup. The virtual-clock results
// are identical between the two passes (the determinism sweep in
// tests/pool_determinism_test.cpp enforces that bit for bit); this harness
// measures the only thing the pool is allowed to change.
//
// Emits both an aligned table (or --csv) and a JSON artifact for CI:
//
//   { "bench": "wallclock", "algo": "mergesort_coalesced",
//     "platform": "HPU1", "host_concurrency": 8,
//     "entries": [ { "size": 16777216, "executor": "advanced",
//                    "workers": 7, "seconds": 0.41,
//                    "speedup_vs_serial": 3.2 }, ... ] }
//
// Flags (on top of the common ones in common.hpp):
//   --workers=<k>  pool worker threads for the parallel pass
//                  (default: hardware_concurrency - 1, min 1; the caller
//                  thread also drains chunks, so k workers use k+1 cores)
//   --lgmin=<l>    smallest size as log2(n)        (default 18)
//   --lgmax=<l>    largest size as log2(n)         (default 24)
//   --step=<s>     log2 stride through the sweep   (default 2)
//   --repeats=<k>  min-of-k timing per configuration (default 1; see
//                  common.hpp — repeats only steady the wall numbers,
//                  virtual results are identical across repeats)
//   --hull-n=<n>   point count for the irregular quickhull rows
//                  (default 65536; pick a size outside the lg sweep so the
//                  per-size normalizer stays unambiguous; 0 disables)
//   --out=<file>   JSON artifact path              (default BENCH_wallclock.json)
//   --profile      after the sweep, rerun every executor at the largest
//                  size with ExecOptions::profile on and derive the
//                  dual-clock ProfileReport (wall vs virtual per phase,
//                  pool host efficiency); prints the report and writes
//                  --profile-out=<f>  (default PROFILE_wallclock.json)
//                  --prom-out=<f>     (default METRICS_wallclock.prom,
//                  Prometheus text format: pool telemetry + sim counters)
//   --critpath     with --profile: print each profiled run's critical-path
//                  report and annotate the --trace-out export so
//                  chrome://tracing highlights the chain as a flow
//
// Runs are functional by definition here (--functional is implied): the
// analytic fast path executes no task bodies, so there is nothing for a
// pool to accelerate.
#include <fstream>
#include <thread>

#include "algos/quickhull.hpp"
#include "common.hpp"
#include "metrics/export.hpp"
#include "metrics/profile.hpp"
#include "metrics/registry.hpp"
#include "obs/watchdog.hpp"
#include "trace/counters.hpp"
#include "trace/export.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace hpu;

constexpr const char* kExecutors[] = {"sequential", "multicore", "gpu",
                                      "basic",      "advanced",  "pipelined"};

struct Entry {
    std::uint64_t size = 0;
    std::string executor;
    std::size_t workers = 0;
    double seconds = 0.0;
    double speedup = 1.0;  ///< vs the workers = 0 run of the same config
};

/// One timed functional run. The pool is threaded through the Hpu; alpha /
/// y / K follow the Figure-8 recipe (model-optimal split per size). On the
/// irregular algorithms (quickhull below) the executors dispatch to the
/// dynamic-tree engine and (alpha, y) are ignored — the observed-width
/// scheduler re-splits every level.
template <typename T>
double timed_run(util::ThreadPool* pool, int executor, const sim::HpuParams& hw,
                 const core::LevelAlgorithm<T>& alg, const std::vector<T>& input,
                 double alpha, std::uint64_t y, std::uint64_t chunks,
                 trace::TraceSession* trace = nullptr) {
    sim::Hpu h(hw, pool);
    std::vector<T> data = input;
    core::ExecOptions opts;
    opts.functional = true;
    opts.validate = false;
    opts.trace = trace;
    opts.profile = trace != nullptr;
    std::span<T> d(data);
    util::Stopwatch sw;
    switch (executor) {
        case 0: core::run_sequential(h.cpu(), alg, d, opts); break;
        case 1: core::run_multicore(h.cpu(), alg, d, opts); break;
        case 2: core::run_gpu(h, alg, d, opts); break;
        case 3: core::run_basic_hybrid(h, alg, d, opts); break;
        case 4: {
            core::AdvancedOptions adv;
            adv.exec = opts;
            core::run_advanced_hybrid(h, alg, d, alpha, y, adv);
            break;
        }
        default: {
            core::PipelinedOptions pip;
            pip.chunks = chunks;
            pip.exec = opts;
            core::run_pipelined_hybrid(h, alg, d, alpha, y, pip);
            break;
        }
    }
    return sw.seconds();
}

void write_json(const std::string& path, const std::string& platform,
                std::size_t host_concurrency, const std::vector<Entry>& entries) {
    std::ofstream os(path);
    if (!os) {
        std::cerr << "cannot write " << path << "\n";
        return;
    }
    os << "{\n";
    os << "  \"bench\": \"wallclock\",\n";
    os << "  \"algo\": \"mergesort_coalesced+quickhull\",\n";
    os << "  \"platform\": \"" << platform << "\",\n";
    os << "  \"host_concurrency\": " << host_concurrency << ",\n";
    os << "  \"entries\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const Entry& e = entries[i];
        os << "    {\"size\": " << e.size << ", \"executor\": \"" << e.executor
           << "\", \"workers\": " << e.workers << ", \"seconds\": " << e.seconds
           << ", \"speedup_vs_serial\": " << e.speedup << "}"
           << (i + 1 < entries.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "\nwrote " << entries.size() << " entries -> " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
    util::Cli cli(argc, argv);
    const std::size_t hc = std::max(1u, std::thread::hardware_concurrency());
    // At least one worker even on a single-core host: the pooled pass must
    // exist for the artifact to carry a pooled-vs-inline comparison (the
    // speedup then just hovers around 1).
    const std::size_t workers = std::max<std::size_t>(1, bench::worker_threads(cli));
    const int lg_min = static_cast<int>(cli.get_int("lgmin", 18));
    const int lg_max = static_cast<int>(cli.get_int("lgmax", 24));
    const int step = static_cast<int>(cli.get_int("step", 2));
    const int reps = bench::repeats(cli);
    const std::string out = bench::out_path(cli, cli.get("out", "BENCH_wallclock.json"));
    const std::uint64_t chunks = std::max<std::uint64_t>(1, bench::pipeline_chunks(cli));

    const platforms::PlatformSpec spec =
        platforms::by_name(cli.get("platform", "HPU1"));
    algos::MergesortCoalesced<std::int32_t> alg;

    util::ThreadPool inline_pool(0);
    util::ThreadPool pool(workers);

    std::cout << "wall-clock harness: " << spec.name << ", workers 0 vs " << workers
              << " (host concurrency " << hc << ")\n";
    util::Table t({"n", "executor", "t inline (s)", "t pooled (s)", "speedup"}, 3);
    std::vector<Entry> entries;

    for (int lg = lg_min; lg <= lg_max; lg += step) {
        const std::uint64_t n = 1ull << lg;
        util::Rng rng(bench::input_seed(cli, n));
        const auto input = rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));

        model::AdvancedModel m(spec.params, alg.recurrence(), static_cast<double>(n));
        const auto opt = m.optimize();
        const auto y = std::clamp<std::uint64_t>(
            static_cast<std::uint64_t>(std::llround(opt.y)), 1, static_cast<std::uint64_t>(lg));

        for (int e = 0; e < 6; ++e) {
            const double t0 = bench::min_of(reps, [&] {
                return timed_run(&inline_pool, e, spec.params, alg, input, opt.alpha, y, chunks);
            });
            const double t1 = bench::min_of(reps, [&] {
                return timed_run(&pool, e, spec.params, alg, input, opt.alpha, y, chunks);
            });
            const double speedup = t1 > 0.0 ? t0 / t1 : 1.0;
            entries.push_back({n, kExecutors[e], 0, t0, 1.0});
            entries.push_back({n, kExecutors[e], workers, t1, speedup});
            t.add_row({static_cast<std::int64_t>(n), std::string(kExecutors[e]), t0, t1, speedup});
        }
    }

    // Irregular rows: quickhull at its own size, distinct from the sweep
    // sizes so the per-size sequential-inline normalizer in
    // tools/bench_history.py stays unambiguous. Same six executors, same
    // inline-vs-pooled comparison, same JSON artifact — bench_history and
    // the baseline gate pick the rows up with no schema change (the
    // baseline simply has no quickhull keys yet; bench_diff ignores
    // current-only entries).
    const std::uint64_t hull_n =
        static_cast<std::uint64_t>(cli.get_int("hull-n", 1 << 16));
    if (hull_n >= 2) {
        util::Rng rng(bench::input_seed(cli, hull_n) ^ 0x9e3779b97f4a7c15ull);
        std::vector<algos::Pt> pts(hull_n);
        for (auto& p : pts) {
            p.x = rng.uniform_int(-1000000, 1000000);
            p.y = rng.uniform_int(-1000000, 1000000);
        }
        algos::Quickhull qh;
        for (int e = 0; e < 6; ++e) {
            const double t0 = bench::min_of(reps, [&] {
                return timed_run(&inline_pool, e, spec.params, qh, pts, 0.3, 2, chunks);
            });
            const double t1 = bench::min_of(reps, [&] {
                return timed_run(&pool, e, spec.params, qh, pts, 0.3, 2, chunks);
            });
            const double speedup = t1 > 0.0 ? t0 / t1 : 1.0;
            entries.push_back({hull_n, kExecutors[e], 0, t0, 1.0});
            entries.push_back({hull_n, kExecutors[e], workers, t1, speedup});
            t.add_row({static_cast<std::int64_t>(hull_n),
                       "qh:" + std::string(kExecutors[e]), t0, t1, speedup});
        }
    }

    bench::emit(t, cli);
    write_json(out, spec.name, hc, entries);

    // --profile: one instrumented pass per executor at the largest size,
    // all into one session, pooled. The virtual results are identical to
    // the timed sweep above (zero-perturbation invariant, enforced by
    // tests/metrics_test.cpp); this pass only adds the wall annotations
    // the ProfileReport joins against.
    if (cli.get_bool("profile", false)) {
        const std::string profile_out =
            bench::out_path(cli, cli.get("profile-out", "PROFILE_wallclock.json"));
        const std::string prom_out =
            bench::out_path(cli, cli.get("prom-out", "METRICS_wallclock.prom"));
        const std::string trace_out =
            bench::out_path(cli, cli.get("trace-out", "TRACE_wallclock.json"));

        const std::uint64_t n = 1ull << lg_max;
        util::Rng rng(bench::input_seed(cli, n));
        const auto input = rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));
        model::AdvancedModel m(spec.params, alg.recurrence(), static_cast<double>(n));
        const auto opt = m.optimize();
        const auto y = std::clamp<std::uint64_t>(
            static_cast<std::uint64_t>(std::llround(opt.y)), 1,
            static_cast<std::uint64_t>(lg_max));

        trace::TraceSession ts;
        pool.reset_telemetry();
        for (int e = 0; e < 6; ++e) {
            timed_run(&pool, e, spec.params, alg, input, opt.alpha, y, chunks, &ts);
        }
        const util::PoolTelemetry tel = pool.telemetry();

        const metrics::ProfileReport prof = metrics::derive_profile(ts, &tel);
        std::cout << "\n=== dual-clock profile (n=" << n << ", workers=" << workers
                  << ") ===\n";
        prof.print(std::cout);
        if (metrics::write_profile_json_file(prof, profile_out)) {
            std::cout << "profile -> " << profile_out << "\n";
        } else {
            std::cerr << "cannot write " << profile_out << "\n";
        }

        // Regression observatory: re-fit (g, gamma, lambda, delta) from the
        // profiled session against the configured platform and run the
        // watchdog checks. Strictly read-only over the closed session.
        obs::ObserveContext octx;
        octx.hw = spec.params;
        octx.rec = alg.recurrence();
        octx.device_ops_multiplier = alg.device_ops_multiplier(spec.params.gpu);
        octx.pool = tel;
        // GPU-only runs in the sweep legitimately underfill the lanes at
        // the shallow levels (the paper's motivation for the hybrids);
        // don't flag that as an anomaly in a mixed-executor session.
        octx.thresholds.gpu_occupancy_floor = 0.0;
        const obs::ObsReport orep = obs::observe(ts, trace::kNoSpan, octx);
        std::cout << "\n=== regression observatory ===\n";
        orep.print(std::cout);

        metrics::RegistrySnapshot snap = metrics::registry().snapshot();
        metrics::publish_pool(snap, tel);
        metrics::publish_counters(snap, trace::counters().snapshot());
        obs::publish_obs(snap, orep);
        if (metrics::write_prometheus_file(snap, prom_out)) {
            std::cout << "metrics -> " << prom_out << "\n";
        } else {
            std::cerr << "cannot write " << prom_out << "\n";
        }
        // --critpath: per-executor critical paths (the observatory's own
        // rep.critpath covers the whole session; this breaks it down per
        // run) plus the chain annotations in the exported trace.
        trace::ChromeExtras extras;
        if (cli.get_bool("critpath", false)) {
            for (trace::SpanId root : ts.children(trace::kNoSpan)) {
                const obs::CritPathReport crep = obs::extract_critical_path(ts, root);
                std::cout << "\n";
                crep.print(std::cout);
                obs::add_to_extras(extras, crep);
            }
        }
        if (trace::write_chrome_file(ts, trace_out, extras)) {
            std::cout << "trace -> " << trace_out << " (" << ts.spans().size()
                      << " spans, wall-annotated"
                      << (extras.empty() ? "" : ", critical paths annotated")
                      << "; diff against a prior run with examples/run_diff)\n";
        } else {
            std::cerr << "cannot write " << trace_out << "\n";
        }
    }
    return 0;
}
