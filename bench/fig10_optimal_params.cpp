// Figure 10: for each input size, the (α, y) that minimizes the simulated
// running time of the advanced hybrid mergesort on HPU1 (found by grid
// search, as the paper found theirs by measurement) compared to the values
// the model predicts. The paper observes the two converging as n grows.
#include "common.hpp"

int main(int argc, char** argv) {
    using namespace hpu;
    util::Cli cli(argc, argv);
    const int lg_max = static_cast<int>(cli.get_int("lgmax", 24));
    const auto spec = platforms::by_name(cli.get("platform", "HPU1"));
    sim::HpuParams hw = spec.params;
    hw.cpu.contention = cli.get_double("contention", 0.08);

    algos::MergesortCoalesced<std::int32_t> alg;
    core::AdvancedOptions adv;
    adv.exec.functional = false;  // grid search demands the analytic path

    std::cout << "Figure 10 (" << spec.name
              << "): best-found (alpha, y) vs model-predicted\n";
    util::Table t({"n", "alpha (found)", "alpha (predicted)", "y (found)", "y (predicted)"}, 3);
    for (int lg = 12; lg <= lg_max; lg += 2) {
        const std::uint64_t n = 1ull << lg;
        model::AdvancedModel m(spec.params, alg.recurrence(), static_cast<double>(n));
        const auto opt = m.optimize();

        double best_alpha = 0.0;
        std::uint64_t best_y = 1;
        sim::Ticks best_time = std::numeric_limits<double>::infinity();
        std::vector<std::int32_t> dummy(n);
        for (double alpha = 0.05; alpha <= 0.60; alpha += 0.025) {
            for (std::uint64_t y = 5; y <= std::min<std::uint64_t>(14, lg); ++y) {
                sim::Hpu h(hw);
                const auto rep =
                    core::run_advanced_hybrid(h, alg, std::span(dummy), alpha, y, adv);
                if (rep.total < best_time) {
                    best_time = rep.total;
                    best_alpha = alpha;
                    best_y = y;
                }
            }
        }
        t.add_row({static_cast<std::int64_t>(n), best_alpha, opt.alpha,
                   static_cast<double>(best_y), opt.y});
    }
    bench::emit(t, cli);
    std::cout << "\n(paper: found and predicted values converge as n grows)\n";
    return 0;
}
