// Ablation (DESIGN.md §5.3): scheduler shoot-out. For mergesort on each
// platform, the time of every execution strategy the framework offers —
// 1-core sequential, p-core multicore, GPU-only, basic hybrid (§5.1,
// one unit at a time), advanced hybrid (§5.2, both overlapped), and the
// pipelined hybrid (§9, transfers overlapped with waves; row present when
// --pipeline=K is given, default K=4 via the shared flag).
//
// --trace attaches to the pipelined run on the first platform (or the
// advanced run when pipelining is off) — the export shows the K input
// chunk slices on the link track nested under the gpu phase.
//
// --workers=<k|hw> threads the functional execution through a host pool
// (virtual times are pool-invariant; only wall time moves).
#include "common.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
    using namespace hpu;
    util::Cli cli(argc, argv);
    const std::uint64_t n = static_cast<std::uint64_t>(cli.get_int("n", 1 << 20));
    const std::uint64_t chunks =
        cli.has("pipeline") ? bench::pipeline_chunks(cli) : 4;
    util::ThreadPool pool(cli.has("workers") ? bench::worker_threads(cli) : 0);

    algos::MergesortCoalesced<std::int32_t> alg;
    core::ExecOptions opts = bench::exec_options(cli);
    core::AdvancedOptions adv;
    adv.exec = opts;

    bench::TraceSink sink(cli);
    sim::HpuParams traced_hw;

    for (const auto& spec : bench::selected_platforms(cli)) {
        std::vector<std::int32_t> base(n);
        if (opts.functional) {
            util::Rng rng(bench::input_seed(cli, n));
            base = rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));
        }
        model::AdvancedModel m(spec.params, alg.recurrence(), static_cast<double>(n));
        const auto opt = m.optimize();
        const auto y = std::clamp<std::uint64_t>(
            static_cast<std::uint64_t>(std::llround(opt.y)), 1, util::ilog2(n));

        std::cout << "Scheduler ablation (" << spec.name << "), mergesort, n=" << n << "\n";
        util::Table t({"strategy", "time (ticks)", "speedup vs 1-core"}, 3);
        sim::Hpu h(spec.params, &pool);
        auto d = base;
        const auto seq = core::run_sequential(h.cpu(), alg, std::span(d), opts);
        t.add_row({std::string("sequential (1 core)"), seq.total, 1.0});
        d = base;
        const auto mc = core::run_multicore(h.cpu(), alg, std::span(d), opts);
        t.add_row({std::string("multicore (p cores)"), mc.total, seq.total / mc.total});
        d = base;
        const auto gp = core::run_gpu(h, alg, std::span(d), opts);
        t.add_row({std::string("gpu only"), gp.total, seq.total / gp.total});
        d = base;
        const auto bh = core::run_basic_hybrid(h, alg, std::span(d), opts);
        t.add_row({std::string("basic hybrid (5.1)"), bh.total, seq.total / bh.total});
        d = base;
        core::AdvancedOptions arun = adv;
        const bool trace_here = sink.active() && sink.session()->empty();
        if (trace_here && chunks == 0) {
            arun.exec.trace = sink.session();
            traced_hw = spec.params;
        }
        const auto ah = core::run_advanced_hybrid(h, alg, std::span(d), opt.alpha, y, arun);
        t.add_row({std::string("advanced hybrid (5.2)"), ah.total, seq.total / ah.total});
        if (chunks > 0) {
            d = base;
            core::PipelinedOptions pip;
            pip.chunks = chunks;
            pip.exec = opts;
            if (trace_here) {
                pip.exec.trace = sink.session();
                traced_hw = spec.params;
            }
            const auto ph = core::run_pipelined_hybrid(h, alg, std::span(d), opt.alpha, y, pip);
            t.add_row({std::string("pipelined hybrid (9), K=") + std::to_string(ph.chunks),
                       ph.total, seq.total / ph.total});
        }
        bench::emit(t, cli);
        std::cout << "\n";
    }
    sink.finish(traced_hw, alg.recurrence(),
                alg.device_ops_multiplier(traced_hw.gpu));
    return 0;
}
