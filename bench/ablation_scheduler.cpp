// Ablation (DESIGN.md §5.3): scheduler shoot-out. For mergesort on each
// platform, the time of every execution strategy the framework offers —
// 1-core sequential, p-core multicore, GPU-only, basic hybrid (§5.1,
// one unit at a time), and advanced hybrid (§5.2, both overlapped).
#include "common.hpp"

int main(int argc, char** argv) {
    using namespace hpu;
    util::Cli cli(argc, argv);
    const std::uint64_t n = static_cast<std::uint64_t>(cli.get_int("n", 1 << 20));

    algos::MergesortCoalesced<std::int32_t> alg;
    core::ExecOptions opts = bench::exec_options(cli);
    core::AdvancedOptions adv;
    adv.exec = opts;

    for (const auto& spec : bench::selected_platforms(cli)) {
        std::vector<std::int32_t> base(n);
        if (opts.functional) {
            util::Rng rng(3);
            base = rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));
        }
        model::AdvancedModel m(spec.params, alg.recurrence(), static_cast<double>(n));
        const auto opt = m.optimize();
        const auto y = std::clamp<std::uint64_t>(
            static_cast<std::uint64_t>(std::llround(opt.y)), 1, util::ilog2(n));

        std::cout << "Scheduler ablation (" << spec.name << "), mergesort, n=" << n << "\n";
        util::Table t({"strategy", "time (ticks)", "speedup vs 1-core"}, 3);
        sim::Hpu h(spec.params);
        auto d = base;
        const auto seq = core::run_sequential(h.cpu(), alg, std::span(d), opts);
        t.add_row({std::string("sequential (1 core)"), seq.total, 1.0});
        d = base;
        const auto mc = core::run_multicore(h.cpu(), alg, std::span(d), opts);
        t.add_row({std::string("multicore (p cores)"), mc.total, seq.total / mc.total});
        d = base;
        const auto gp = core::run_gpu(h, alg, std::span(d), opts);
        t.add_row({std::string("gpu only"), gp.total, seq.total / gp.total});
        d = base;
        const auto bh = core::run_basic_hybrid(h, alg, std::span(d), opts);
        t.add_row({std::string("basic hybrid (5.1)"), bh.total, seq.total / bh.total});
        d = base;
        const auto ah = core::run_advanced_hybrid(h, alg, std::span(d), opt.alpha, y, adv);
        t.add_row({std::string("advanced hybrid (5.2)"), ah.total, seq.total / ah.total});
        bench::emit(t, cli);
        std::cout << "\n";
    }
    return 0;
}
