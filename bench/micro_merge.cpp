// Merge-only microbench for the Merge Path kernel layer (DESIGN.md §15):
// times util::merge_segments in isolation — no simulator, no executors —
// so the kernel's serial blocked loop and its parallel segmentation can be
// tuned without the rest of the engine in the way.
//
// The sweep crosses total merged size 2^lgmin .. 2^lgmax (two runs of n/2
// each) with adversarial input classes and parts in {1, workers + 1}:
//
//   random     two independently sorted uniform runs (the generic case)
//   presorted  run A entirely <= run B — already merged, the copy_run
//              bulk tails dominate and memcpy throughput is the ceiling
//   reverse    run A entirely >  run B — the output is B then A, the
//              branchless loop drains one side before the tail kicks in
//   dups       keys from an 8-value range — equal keys everywhere, the
//              stability tie-break is on every comparison's hot path
//
// Emits BENCH_merge.json for tools/check_bench.py:
//
//   { "bench": "merge", "algo": "merge_segments", "platform": "host",
//     "host_concurrency": 8,
//     "entries": [ { "size": 1048576, "input": "random", "parts": 4,
//                    "workers": 3, "seconds": 0.0012 }, ... ] }
//
// Flags (subset of common.hpp's, plus):
//   --lgmin=<l>    smallest total size as log2(n)   (default 10)
//   --lgmax=<l>    largest total size as log2(n)    (default 24)
//   --step=<s>     log2 stride through the sweep    (default 2)
//   --repeats=<k>  min-of-k timing                  (default 3)
//   --out=<file>   JSON artifact path               (default BENCH_merge.json)
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <thread>
#include <vector>

#include "common.hpp"
#include "util/merge_path.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace hpu;

struct Entry {
    std::uint64_t size = 0;
    std::string input;
    std::size_t parts = 0;
    std::size_t workers = 0;
    double seconds = 0.0;
};

constexpr const char* kInputs[] = {"random", "presorted", "reverse", "dups"};

/// Two sorted runs of n/2 each for the given input class, concatenated.
std::vector<std::int32_t> make_runs(const char* input, std::uint64_t n, util::Rng& rng) {
    const std::uint64_t half = n / 2;
    std::vector<std::int32_t> v(2 * half);
    const std::string cls(input);
    std::int64_t lo = 0, hi = static_cast<std::int64_t>(2 * n);
    if (cls == "dups") hi = 7;  // 8 distinct keys: ties on nearly every compare
    const auto fill = [&](std::uint64_t at, std::int64_t base) {
        for (std::uint64_t i = 0; i < half; ++i) {
            v[at + i] = static_cast<std::int32_t>(base + rng.uniform_int(lo, hi));
        }
        std::sort(v.begin() + static_cast<std::ptrdiff_t>(at),
                  v.begin() + static_cast<std::ptrdiff_t>(at + half));
    };
    if (cls == "presorted") {
        fill(0, 0);
        fill(half, hi + 1);  // every B key above every A key
    } else if (cls == "reverse") {
        fill(0, hi + 1);  // every A key above every B key
        fill(half, 0);
    } else {
        fill(0, 0);
        fill(half, 0);
    }
    return v;
}

void write_json(const std::string& path, std::size_t host_concurrency,
                const std::vector<Entry>& entries) {
    std::ofstream os(path);
    if (!os) {
        std::cerr << "cannot write " << path << "\n";
        return;
    }
    os << "{\n";
    os << "  \"bench\": \"merge\",\n";
    os << "  \"algo\": \"merge_segments\",\n";
    os << "  \"platform\": \"host\",\n";
    os << "  \"host_concurrency\": " << host_concurrency << ",\n";
    os << "  \"entries\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const Entry& e = entries[i];
        os << "    {\"size\": " << e.size << ", \"input\": \"" << e.input
           << "\", \"parts\": " << e.parts << ", \"workers\": " << e.workers
           << ", \"seconds\": " << e.seconds << "}"
           << (i + 1 < entries.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "\nwrote " << entries.size() << " entries -> " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
    util::Cli cli(argc, argv);
    const std::size_t hc = std::max(1u, std::thread::hardware_concurrency());
    const std::size_t workers = std::max<std::size_t>(1, bench::worker_threads(cli));
    const int lg_min = static_cast<int>(cli.get_int("lgmin", 10));
    const int lg_max = static_cast<int>(cli.get_int("lgmax", 24));
    const int step = static_cast<int>(cli.get_int("step", 2));
    const int reps = std::max(bench::repeats(cli), 3);
    const std::string out = bench::out_path(cli, cli.get("out", "BENCH_merge.json"));

    util::ThreadPool pool(workers);
    // parts = workers + 1: the caller thread merges a segment too, same
    // participant count merge_parts targets inside the engine.
    const std::size_t par_parts = workers + 1;

    std::cout << "merge microbench: sizes 2^" << lg_min << "..2^" << lg_max << ", parts {1, "
              << par_parts << "} (host concurrency " << hc << ")\n";
    util::Table t({"n", "input", "t serial (s)", "t parallel (s)", "speedup"}, 3);
    std::vector<Entry> entries;

    for (int lg = lg_min; lg <= lg_max; lg += step) {
        const std::uint64_t n = 1ull << lg;
        for (const char* input : kInputs) {
            util::Rng rng(bench::input_seed(cli, n) ^
                          static_cast<std::uint64_t>(input[0]) * 0x9e3779b97f4a7c15ull);
            const auto runs = make_runs(input, n, rng);
            const std::uint64_t half = runs.size() / 2;
            std::vector<std::int32_t> dst(runs.size());
            const auto time_parts = [&](std::size_t parts) {
                return bench::min_of(reps, [&] {
                    util::Stopwatch sw;
                    util::merge_segments(&pool, runs.data(), half, runs.data() + half,
                                         half, dst.data(), std::less<std::int32_t>{},
                                         parts);
                    return sw.seconds();
                });
            };
            const double t1 = time_parts(1);
            const double tp = time_parts(par_parts);
            entries.push_back({n, input, 1, workers, t1});
            entries.push_back({n, input, par_parts, workers, tp});
            t.add_row({static_cast<std::int64_t>(n), std::string(input), t1, tp,
                       tp > 0.0 ? t1 / tp : 1.0});
        }
    }

    bench::emit(t, cli);
    write_json(out, hc, entries);
    return 0;
}
