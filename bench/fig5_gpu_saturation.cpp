// Figure 5: device time of an elementwise sum of two arrays (size 2²⁴) as
// a function of the number of work-items, for HPU1 and HPU2. The curve
// drops until the thread count saturates the device (g), then flattens —
// the knee is the paper's estimate of g.
#include "model/estimate.hpp"

#include "common.hpp"

int main(int argc, char** argv) {
    using namespace hpu;
    util::Cli cli(argc, argv);
    const auto n = static_cast<std::uint64_t>(cli.get_int("n", 1 << 20));

    for (const auto& spec : bench::selected_platforms(cli)) {
        sim::Device dev(spec.params.gpu);
        std::cout << "Figure 5 (" << spec.name << "): elementwise-sum time vs #work-items, n="
                  << n << "\n";
        std::vector<std::uint64_t> counts;
        for (std::uint64_t t = 64; t <= 4 * spec.params.gpu.g; t *= 2) counts.push_back(t);
        // Linear refinement around the configured g, as in the paper's plot.
        for (double f : {0.5, 0.75, 1.0, 1.25, 1.5}) {
            counts.push_back(static_cast<std::uint64_t>(f * static_cast<double>(spec.params.gpu.g)));
        }
        std::sort(counts.begin(), counts.end());
        counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
        const auto sweep = model::saturation_sweep(dev, n, counts);
        util::Table t({"threads", "time (ticks)"});
        for (const auto& pt : sweep) {
            t.add_row({static_cast<std::int64_t>(pt.threads), pt.time});
        }
        bench::emit(t, cli);
        std::cout << "estimated g = " << model::estimate_g(sweep)
                  << "   (configured: " << spec.params.gpu.g << ")\n\n";
    }
    return 0;
}
