// Table 2: platform parameters (p, g, γ⁻¹). The configured values come from
// the platform registry; alongside them we re-run the paper's estimation
// procedures (§6.4) against the simulated devices and report what they
// recover — the estimated columns validate the estimation machinery itself.
#include "model/estimate.hpp"

#include "common.hpp"

int main(int argc, char** argv) {
    using namespace hpu;
    util::Cli cli(argc, argv);
    const auto n = static_cast<std::uint64_t>(cli.get_int("n", 1 << 16));

    std::cout << "Table 2: Platform parameters (configured vs re-estimated)\n";
    util::Table t({"Platform", "p", "g (config)", "g (estimated)", "1/gamma (config)",
                   "1/gamma (estimated)"});
    for (const auto& spec : bench::selected_platforms(cli)) {
        sim::Device dev(spec.params.gpu);
        sim::CpuUnit cpu(spec.params.cpu);
        const std::uint64_t ghat = model::estimate_g(dev, n, 4 * spec.params.gpu.g);
        const auto sweep = model::gamma_sweep(dev, cpu, {n / 4, n / 2, n});
        const double ginv = model::estimate_gamma_inv(sweep);
        t.add_row({spec.name, static_cast<std::int64_t>(spec.params.cpu.p),
                   static_cast<std::int64_t>(spec.params.gpu.g),
                   static_cast<std::int64_t>(ghat), 1.0 / spec.params.gpu.gamma, ginv});
    }
    bench::emit(t, cli);
    std::cout << "\nPaper: HPU1 (p=4, g=4096, 1/gamma=160), HPU2 (p=4, g=1200, 1/gamma=65)\n";
    return 0;
}
