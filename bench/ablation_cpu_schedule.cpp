// Ablation (DESIGN.md §5.4): CPU list-scheduling order. For the uniform
// tasks of regular D&C levels, arrival order and LPT tie; this bench makes
// the difference visible with a synthetic skewed-cost level.
#include "common.hpp"
#include "util/makespan.hpp"

int main(int argc, char** argv) {
    using namespace hpu;
    util::Cli cli(argc, argv);
    const std::size_t cores = static_cast<std::size_t>(cli.get_int("p", 4));
    util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));

    std::cout << "CPU schedule ablation: makespan of one level, arrival vs LPT ("
              << cores << " cores)\n";
    util::Table t({"distribution", "tasks", "arrival", "LPT", "LPT win"}, 3);
    struct Case {
        std::string name;
        std::vector<std::uint64_t> costs;
    };
    std::vector<Case> cases;
    cases.push_back({"uniform (regular D&C level)", std::vector<std::uint64_t>(64, 100)});
    {
        std::vector<std::uint64_t> v;
        for (int i = 0; i < 64; ++i)
            v.push_back(static_cast<std::uint64_t>(rng.uniform_int(1, 200)));
        cases.push_back({"uniform-random", std::move(v)});
    }
    {
        // Heavy-tailed: a few huge tasks arriving late — the greedy killer.
        std::vector<std::uint64_t> v(60, 10);
        v.insert(v.end(), {500, 480, 460, 440});
        cases.push_back({"heavy tail, big tasks last", std::move(v)});
    }
    for (const auto& c : cases) {
        const auto a = util::makespan(c.costs, cores, util::ListOrder::kArrival);
        const auto l = util::makespan(c.costs, cores, util::ListOrder::kLpt);
        t.add_row({c.name, static_cast<std::int64_t>(c.costs.size()),
                   static_cast<double>(a), static_cast<double>(l),
                   static_cast<double>(a) / static_cast<double>(l)});
    }
    bench::emit(t, cli);
    std::cout << "\n(regular D&C levels are cost-uniform: the executors' default arrival\n"
                 " order loses nothing; LPT only matters for irregular extensions)\n";
    return 0;
}
