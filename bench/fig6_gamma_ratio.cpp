// Figure 6: ratio between single-core GPU and CPU time for a scalar merge
// of two sorted lists, as a function of input size, for HPU1 and HPU2. The
// ratio is flat — that flatness is what justifies a single γ per platform.
#include "model/estimate.hpp"

#include "common.hpp"

int main(int argc, char** argv) {
    using namespace hpu;
    util::Cli cli(argc, argv);

    for (const auto& spec : bench::selected_platforms(cli)) {
        sim::Device dev(spec.params.gpu);
        sim::CpuUnit cpu(spec.params.cpu);
        std::cout << "Figure 6 (" << spec.name << "): 1-thread merge GPU/CPU time ratio\n";
        std::vector<std::uint64_t> sizes;
        for (std::uint64_t n = 1 << 12; n <= (1u << 22); n *= 4) sizes.push_back(n);
        const auto sweep = model::gamma_sweep(dev, cpu, sizes);
        util::Table t({"n (per list)", "gpu time", "cpu time", "ratio (=1/gamma)"});
        for (const auto& s : sweep) {
            t.add_row({static_cast<std::int64_t>(s.n), s.gpu_time, s.cpu_time, s.ratio});
        }
        bench::emit(t, cli);
        std::cout << "estimated 1/gamma = " << model::estimate_gamma_inv(sweep)
                  << "   (configured: " << 1.0 / spec.params.gpu.gamma << ")\n\n";
    }
    return 0;
}
