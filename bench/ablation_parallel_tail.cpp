// §7 future-work ablation: "the recursive schedule could be stopped at a
// certain level of the tree, after which parallel versions of the gpu
// kernels could be executed". Sweeps the switch level of the GPU-resident
// parallel-tail mergesort and compares against the generic-only and
// all-parallel extremes and the advanced hybrid.
#include "algos/parallel_tail.hpp"

#include "common.hpp"

int main(int argc, char** argv) {
    using namespace hpu;
    util::Cli cli(argc, argv);
    const std::uint64_t n = static_cast<std::uint64_t>(cli.get_int("n", 1 << 20));
    const auto spec = platforms::by_name(cli.get("platform", "HPU1"));
    const std::uint64_t L = util::ilog2(n);

    core::ExecOptions opts = bench::exec_options(cli);
    const sim::Ticks seq =
        bench::sequential_mergesort_time(spec.params, n, opts, bench::input_seed(cli, n));

    std::cout << "Parallel-tail ablation (" << spec.name << "), mergesort, n=" << n
              << " (L=" << L << ", auto switch at ceil(log2 g)="
              << util::ceil_log2(spec.params.gpu.g) << ")\n";
    util::Table t({"switch level", "t(deep kernels)", "t(parallel tail)", "t(total)",
                   "speedup vs 1-core"},
                  3);
    std::vector<std::int32_t> dummy(n);
    for (std::uint64_t sw : {L, std::uint64_t{16}, std::uint64_t{14}, std::uint64_t{12},
                             std::uint64_t{10}, std::uint64_t{6}, std::uint64_t{0}}) {
        if (sw > L) continue;
        sim::Hpu h(spec.params);
        const auto rep = algos::mergesort_gpu_parallel_tail(h, std::span(dummy), sw, opts);
        t.add_row({static_cast<std::int64_t>(sw), rep.deep_kernels, rep.tail_kernels,
                   rep.total, seq / rep.total});
    }
    bench::emit(t, cli);
    std::cout << "\n(switch=0 is the all-generic run_gpu schedule; switch=L is Fig. 9's\n"
                 " all-parallel kernel; the sweet spot sits near log2(g) where per-task\n"
                 " kernels stop saturating the device)\n";
    return 0;
}
