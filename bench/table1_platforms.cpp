// Table 1: specification of the hybrid platforms used in the experiments.
#include "common.hpp"

int main(int argc, char** argv) {
    using namespace hpu;
    util::Cli cli(argc, argv);
    std::cout << "Table 1: Specification of hybrid platforms used in experiments\n";
    util::Table t({"Platform", "CPU", "GPU"});
    for (const auto& s : platforms::all()) {
        t.add_row({s.name, s.cpu_desc, s.gpu_desc});
    }
    bench::emit(t, cli);
    std::cout << "\n(simulated devices; see DESIGN.md for the substitution)\n";
    return 0;
}
