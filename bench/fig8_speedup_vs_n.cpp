// Figure 8: hybrid mergesort speedup as a function of input size, for HPU1
// and HPU2 — simulated ("measured", with the LLC contention model on),
// model-predicted, and the GPU/CPU parallel-phase balance ratio. The paper
// reports maxima of 4.54× (HPU1) and 4.35× (HPU2) against predictions of
// 5.47× / 5.7×, with the gap growing for cache-busting sizes.
//
// With --pipeline=K the sweep also runs the pipelined hybrid (§9) at the
// same (α*, y*) and adds a speedup column plus the chunk count the no-win
// guard settled on — the overlap win appears at transfer-bound sizes.
#include "common.hpp"

int main(int argc, char** argv) {
    using namespace hpu;
    util::Cli cli(argc, argv);
    const int lg_max = static_cast<int>(cli.get_int("lgmax", 24));
    const double contention = cli.get_double("contention", 0.08);
    const std::uint64_t chunks = bench::pipeline_chunks(cli);

    for (const auto& spec : bench::selected_platforms(cli)) {
        sim::HpuParams measured_hw = spec.params;
        measured_hw.cpu.contention = contention;

        algos::MergesortCoalesced<std::int32_t> alg;
        core::AdvancedOptions adv;
        adv.exec = bench::exec_options(cli);

        std::cout << "Figure 8 (" << spec.name
                  << "): hybrid mergesort speedup vs input size\n";
        std::vector<std::string> cols{"n", "speedup (sim)", "speedup (predicted)",
                                      "gpu/cpu ratio", "alpha*", "y*"};
        if (chunks > 0) {
            cols.push_back("speedup (pipelined)");
            cols.push_back("K eff");
        }
        util::Table t(cols, 3);
        for (int lg = 10; lg <= lg_max; lg += 2) {
            const std::uint64_t n = 1ull << lg;
            model::AdvancedModel m(spec.params, alg.recurrence(), static_cast<double>(n));
            const auto opt = m.optimize();
            const auto y = std::clamp<std::uint64_t>(
                static_cast<std::uint64_t>(std::llround(opt.y)), 1, static_cast<std::uint64_t>(lg));

            sim::Hpu h(measured_hw);
            std::vector<std::int32_t> data(n);
            if (adv.exec.functional) {
                util::Rng rng(bench::input_seed(cli, n));
                data = rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));
            }
            const sim::Ticks seq = bench::sequential_mergesort_time(measured_hw, n, adv.exec,
                                                                    bench::input_seed(cli, n));
            const auto rep =
                core::run_advanced_hybrid(h, alg, std::span(data), opt.alpha, y, adv);
            std::vector<util::Cell> row{static_cast<std::int64_t>(n), seq / rep.total,
                                               opt.speedup, rep.gpu_busy / rep.cpu_busy,
                                               opt.alpha, opt.y};
            if (chunks > 0) {
                sim::Hpu hp(measured_hw);
                std::vector<std::int32_t> pdata(n);
                if (adv.exec.functional) {
                    util::Rng rng(bench::input_seed(cli, n));
                    pdata = rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));
                }
                core::PipelinedOptions pip;
                pip.chunks = chunks;
                pip.exec = adv.exec;
                const auto prep = core::run_pipelined_hybrid(hp, alg, std::span(pdata),
                                                             opt.alpha, y, pip);
                row.push_back(seq / prep.total);
                row.push_back(static_cast<std::int64_t>(prep.chunks));
            }
            t.add_row(row);
        }
        bench::emit(t, cli);
        std::cout << "\n";
    }
    std::cout << "(paper: max 4.54x on HPU1 / 4.35x on HPU2 vs predicted 5.47x / 5.7x;\n"
                 " the sim-vs-predicted gap comes from the LLC contention model, enabled\n"
                 " here with --contention=" << contention << ")\n";
    return 0;
}
