// Figure 4: the advanced hybrid work division picture for mergesort on
// HPU1 at n = 2²⁴ — which unit owns which levels at the optimal (α*, y).
#include "common.hpp"

int main(int argc, char** argv) {
    using namespace hpu;
    util::Cli cli(argc, argv);
    const auto n = static_cast<double>(cli.get_int("n", 1 << 24));
    sim::HpuParams hw = platforms::by_name(cli.get("platform", "HPU1")).params;
    hw.link.lambda = 0.0;
    hw.link.delta = 0.0;

    model::AdvancedModel m(hw, model::mergesort_recurrence(1.0), n);
    const auto opt = m.optimize();
    const double i1 = util::logb(static_cast<double>(hw.cpu.p) / opt.alpha, 2.0);

    std::cout << "Figure 4: advanced hybrid work division, mergesort, " << hw.name
              << ", n=" << static_cast<std::uint64_t>(n) << "\n\n";
    util::Table t({"levels", "owner", "note"});
    t.add_row({std::string("0 .. ") + std::to_string(opt.y),
               std::string("CPU (finish phase)"),
               std::string("few tasks; p cores at most")});
    t.add_row({std::to_string(opt.y) + " .. " + std::to_string(i1),
               std::string("CPU alpha-part done / GPU part pending"),
               std::string("GPU slice climbs to y in parallel")});
    t.add_row({std::to_string(i1) + " .. " + std::to_string(m.levels()),
               std::string("CPU (alpha) + GPU (1-alpha) in parallel"),
               std::string("both units saturated")});
    bench::emit(t, cli);

    std::cout << "\nalpha* = " << opt.alpha << " (CPU slice " << opt.alpha * n
              << " elements, GPU slice " << (1 - opt.alpha) * n << ")\n"
              << "transfer level y = " << opt.y << "   GPU work share = "
              << opt.gpu_work_share << "\n"
              << "(paper's Fig. 4: alpha~0.16 -> slices 0.16n / 0.84n, y=10)\n";
    return 0;
}
