// Ablation (DESIGN.md §5.2): what the §6.3 coalescing permutation buys on
// the device. Compares GPU-only mergesort with the plain (strided) merge
// kernel against the interleaved-layout (coalesced) kernel, per input size.
#include "common.hpp"

int main(int argc, char** argv) {
    using namespace hpu;
    util::Cli cli(argc, argv);
    const int lg_max = static_cast<int>(cli.get_int("lgmax", 20));
    const auto spec = platforms::by_name(cli.get("platform", "HPU1"));

    algos::MergesortPlain<std::int32_t> plain;
    algos::MergesortCoalesced<std::int32_t> coal;
    core::ExecOptions opts = bench::exec_options(cli);

    std::cout << "Ablation (" << spec.name
              << "): GPU kernel time, strided vs coalesced merge (strided penalty "
              << spec.params.gpu.strided_penalty << "x)\n";
    util::Table t({"n", "t(strided)", "t(coalesced)", "win"}, 3);
    for (int lg = 10; lg <= lg_max; lg += 2) {
        const std::uint64_t n = 1ull << lg;
        std::vector<std::int32_t> d1(n), d2(n);
        if (opts.functional) {
            util::Rng rng(n);
            d1 = rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));
            d2 = d1;
        }
        sim::Hpu h1(spec.params), h2(spec.params);
        const auto rp = core::run_gpu(h1, plain, std::span(d1), opts, false);
        const auto rc = core::run_gpu(h2, coal, std::span(d2), opts, false);
        t.add_row({static_cast<std::int64_t>(n), rp.gpu_busy, rc.gpu_busy,
                   rp.gpu_busy / rc.gpu_busy});
    }
    bench::emit(t, cli);
    return 0;
}
