// Figure 3: for mergesort (a=b=2, f(n)=n) on HPU1 with n = 2²⁴ —
// (left) the level y(α) reached by the GPU while the CPU still has ≥ p
// tasks, and (right) the fraction of total work done by the GPU, both as
// functions of the work ratio α. The paper's optimum: α* ≈ 0.16 with the
// GPU doing ≈ 52 % of the work, transfer level ≈ 10.
#include "common.hpp"

int main(int argc, char** argv) {
    using namespace hpu;
    util::Cli cli(argc, argv);
    const auto n = static_cast<double>(cli.get_int("n", 1 << 24));
    sim::HpuParams hw = platforms::by_name(cli.get("platform", "HPU1")).params;
    hw.link.lambda = 0.0;  // the §5.2.2 analysis ignores transfers
    hw.link.delta = 0.0;

    model::AdvancedModel m(hw, model::mergesort_recurrence(1.0), n);
    std::cout << "Figure 3: y(alpha) and GPU work share, mergesort, " << hw.name
              << ", n=" << static_cast<std::uint64_t>(n) << "\n";
    util::Table t({"alpha", "y(alpha)", "gpu_work_share"});
    for (double a = 0.02; a < 0.98; a += 0.02) {
        t.add_row({a, m.y_of_alpha(a), m.gpu_work(a) / m.predict_at(a, m.y_of_alpha(a)).seq_time});
    }
    bench::emit(t, cli);

    const auto opt = m.optimize();
    std::cout << "\nOptimum: alpha*=" << opt.alpha << "  y=" << opt.y
              << "  gpu share=" << opt.gpu_work_share
              << "   (paper: alpha*~0.16, y~10, share~52%)\n";
    return 0;
}
