// Figure 9: GPU-only mergesort with a parallel (binary-search) merge vs the
// 1-core recursive baseline on HPU1 — times and speedups as a function of
// input size, with and without transfer overhead. The paper reaches 18–20×
// (sort only) and ~12× (with transfers) at large n.
//
// Modeling note (see EXPERIMENTS.md): a latency-bound binary-search kernel
// overlaps far more than g lanes of work on real hardware via SMT
// occupancy; the paper's own wave model does not capture that, so we expose
// it as an explicit --occupancy multiplier on g (default 4).
#include "algos/parallel_merge.hpp"

#include "common.hpp"

int main(int argc, char** argv) {
    using namespace hpu;
    util::Cli cli(argc, argv);
    const int lg_max = static_cast<int>(cli.get_int("lgmax", 24));
    const double occupancy = cli.get_double("occupancy", 4.0);
    const auto spec = platforms::by_name(cli.get("platform", "HPU1"));

    sim::HpuParams hw = spec.params;
    hw.gpu.g = static_cast<std::uint64_t>(static_cast<double>(hw.gpu.g) * occupancy);
    // Real kernel launches cost tens of microseconds; that fixed cost is
    // what keeps small inputs slow in the paper's Fig. 9 (one launch per
    // level, L = log2 n launches total).
    hw.gpu.launch_overhead = cli.get_double("launch-overhead", 10000.0);

    core::ExecOptions opts = bench::exec_options(cli);

    std::cout << "Figure 9 (" << spec.name << "): parallel-merge GPU mergesort, occupancy x"
              << occupancy << "\n";
    util::Table t({"n", "t(gpu sort)", "t(sort+xfer)", "t(cpu 1-core)", "speedup sort",
                   "speedup sort+xfer"},
                  3);
    for (int lg = 10; lg <= lg_max; lg += 2) {
        const std::uint64_t n = 1ull << lg;
        sim::Hpu h(hw);
        std::vector<std::int32_t> data(n);
        if (opts.functional) {
            util::Rng rng(bench::input_seed(cli, n));
            data = rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));
        }
        const auto rep = algos::mergesort_gpu_parallel(h, std::span(data), opts);
        const sim::Ticks seq =
            bench::sequential_mergesort_time(spec.params, n, opts, bench::input_seed(cli, n));
        t.add_row({static_cast<std::int64_t>(n), rep.sort_time, rep.total(), seq,
                   seq / rep.sort_time, seq / rep.total()});
    }
    bench::emit(t, cli);
    std::cout << "\n(paper: 18-20x sort-only, ~12x with transfers at large n;\n"
                 " speedups only clearly beat the hybrid's ~4.5x for large inputs)\n";
    return 0;
}
