// Google-benchmark microbenchmarks of the simulator substrate itself: how
// fast the host executes simulated kernels, CPU levels, and merges. These
// measure the *reproduction harness*, not the paper's system — wall-clock
// throughput of the simulation determines how large an n the figure benches
// can sweep.
#include <benchmark/benchmark.h>

#include "algos/mergesort.hpp"
#include "core/hybrid.hpp"
#include "platforms/platforms.hpp"
#include "sim/device.hpp"
#include "util/makespan.hpp"
#include "util/rng.hpp"

namespace {

using namespace hpu;

void BM_DeviceLaunch(benchmark::State& state) {
    sim::Device dev(platforms::hpu1().gpu);
    const auto items = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        auto r = dev.launch(items, [](sim::WorkItem& wi) { wi.charge_compute(1); });
        benchmark::DoNotOptimize(r.time);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(items));
}
BENCHMARK(BM_DeviceLaunch)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_CpuLevel(benchmark::State& state) {
    sim::CpuUnit cpu(platforms::hpu1().cpu);
    const auto tasks = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        auto r = cpu.run_level(tasks, [](std::uint64_t, sim::OpCounter& ops) {
            ops.charge_compute(8);
        });
        benchmark::DoNotOptimize(r.time);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(tasks));
}
BENCHMARK(BM_CpuLevel)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_MakespanSkewed(benchmark::State& state) {
    util::Rng rng(1);
    std::vector<std::uint64_t> costs(static_cast<std::size_t>(state.range(0)));
    for (auto& c : costs) c = static_cast<std::uint64_t>(rng.uniform_int(1, 1000));
    for (auto _ : state) {
        benchmark::DoNotOptimize(util::makespan(costs, 4));
    }
}
BENCHMARK(BM_MakespanSkewed)->Arg(1 << 10)->Arg(1 << 16);

void BM_FunctionalMergesortSequential(benchmark::State& state) {
    const auto n = static_cast<std::uint64_t>(state.range(0));
    sim::CpuUnit cpu(platforms::hpu1().cpu);
    algos::MergesortPlain<std::int32_t> alg;
    util::Rng rng(2);
    const auto base = rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));
    for (auto _ : state) {
        auto d = base;
        auto r = core::run_sequential(cpu, alg, std::span(d));
        benchmark::DoNotOptimize(r.total);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FunctionalMergesortSequential)->Arg(1 << 12)->Arg(1 << 16);

void BM_AnalyticAdvancedHybrid(benchmark::State& state) {
    const auto n = static_cast<std::uint64_t>(state.range(0));
    algos::MergesortCoalesced<std::int32_t> alg;
    core::AdvancedOptions adv;
    adv.exec.functional = false;
    std::vector<std::int32_t> dummy(n);
    for (auto _ : state) {
        sim::Hpu h(platforms::hpu1());
        auto r = core::run_advanced_hybrid(h, alg, std::span(dummy), 0.17, 10, adv);
        benchmark::DoNotOptimize(r.total);
    }
}
BENCHMARK(BM_AnalyticAdvancedHybrid)->Arg(1 << 20)->Arg(1 << 24);

}  // namespace

BENCHMARK_MAIN();
