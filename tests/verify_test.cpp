// Tests of the hpu::verify static pass (ISSUE 6): the footprint prover's
// disjointness rules and counterexample search on hand-built footprints,
// race-freedom proofs for every shipped algorithm, runtime reproduction of
// static counterexamples by the word-level detector, conformance flagging
// of mis-declared footprints across every executor and host mode,
// schedule-invariant checks on hand-built plans, certificate attachment
// with byte-identical reports, and the HPU_VERIFY gate.
#include <gtest/gtest.h>

#include <cstdlib>
#include <span>
#include <vector>

#include "algos/binary_reduce.hpp"
#include "algos/fft.hpp"
#include "algos/mergesort.hpp"
#include "algos/mergesort_blocked.hpp"
#include "core/executors.hpp"
#include "core/hybrid.hpp"
#include "core/pipeline.hpp"
#include "platforms/platforms.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "verify/prover.hpp"
#include "verify/report.hpp"
#include "verify/schedule.hpp"
#include "verify/verify.hpp"

namespace hpu::verify {
namespace {

SymAccess slice_access() {
    SymAccess a;
    a.base = Sym::lit(0);
    a.jcoef = Sym::size();
    a.words = Sym::size();
    a.stride = Sym::lit(1);
    return a;
}

std::uint64_t count_kind(const VerifyReport& r, VerifyFinding::Kind k) {
    std::uint64_t c = 0;
    for (const auto& f : r.findings) c += f.kind == k ? 1 : 0;
    return c;
}

// ------------------------------------------------------- prover rule units

TEST(Prover, SliceRuleProvesOwnSliceAccess) {
    TaskFootprint fp;
    fp.reads.push_back(slice_access());
    fp.writes.push_back(slice_access());
    const PhaseProof pp = prove_phase(Phase::kCpuTask, fp, ProofContext{2, 2, false});
    EXPECT_EQ(pp.status, ProofStatus::kProven);
    EXPECT_EQ(pp.rules, "slice");
    EXPECT_GT(pp.pairs_checked, 0u);
}

TEST(Prover, ColumnAndRegionRulesProveInterleavedPingPong) {
    // The §6.3 coalesced walk: interleaved input columns of the ping
    // buffer, one output column of the pong buffer.
    SymAccess even{Region::kPing, Sym::lit(0), Sym::lit(2), Sym::size(1, 2), Sym::count(2)};
    SymAccess odd = even;
    odd.base = Sym::lit(1);
    SymAccess out{Region::kPong, Sym::lit(0), Sym::lit(1), Sym::size(), Sym::count(1)};
    TaskFootprint fp;
    fp.reads = {even, odd};
    fp.writes = {out};
    const PhaseProof pp = prove_phase(Phase::kDeviceTask, fp, ProofContext{2, 2, false});
    EXPECT_EQ(pp.status, ProofStatus::kProven);
    EXPECT_EQ(pp.rules, "region+column");
}

TEST(Prover, EmptyAndReadOnlyFootprintsAreTriviallyProven) {
    const PhaseProof empty =
        prove_phase(Phase::kLeaf, TaskFootprint{}, ProofContext{2, 1, true});
    EXPECT_EQ(empty.status, ProofStatus::kProven);
    EXPECT_EQ(empty.rules, "empty");

    TaskFootprint ro;
    ro.reads.push_back(slice_access());
    const PhaseProof nw = prove_phase(Phase::kCpuTask, ro, ProofContext{2, 2, false});
    EXPECT_EQ(nw.status, ProofStatus::kProven);
    EXPECT_EQ(nw.rules, "no-writes");
}

TEST(Prover, UndeclaredFootprintStaysUndeclared) {
    const PhaseProof pp =
        prove_phase(Phase::kCpuTask, std::nullopt, ProofContext{2, 2, false});
    EXPECT_EQ(pp.status, ProofStatus::kUndeclared);
}

TEST(Prover, MalformedFootprintIsUnknownNotProven) {
    TaskFootprint fp;
    SymAccess bad = slice_access();
    bad.stride.den = 0;  // division by zero — not a well-formed linear form
    fp.writes.push_back(bad);
    const PhaseProof pp = prove_phase(Phase::kCpuTask, fp, ProofContext{2, 2, false});
    EXPECT_EQ(pp.status, ProofStatus::kUnknown);
    EXPECT_EQ(pp.rules, "malformed");
}

TEST(Prover, SharedWordYieldsConcreteCounterexample) {
    // Every task writes word 0: the smallest witness is two tasks of the
    // minimum size both touching word 0.
    TaskFootprint fp;
    SymAccess word0;
    word0.base = Sym::lit(0);
    word0.jcoef = Sym::lit(0);
    fp.writes.push_back(word0);
    const PhaseProof pp = prove_phase(Phase::kCpuTask, fp, ProofContext{2, 2, false});
    ASSERT_EQ(pp.status, ProofStatus::kCounterexample);
    ASSERT_TRUE(pp.counterexample.has_value());
    const Counterexample& ce = *pp.counterexample;
    EXPECT_EQ(ce.word, 0u);
    EXPECT_EQ(ce.n, 4u);  // 2 tasks of sz_min = 2
    EXPECT_NE(ce.j_a, ce.j_b);
    EXPECT_TRUE(ce.write_write);
    EXPECT_NE(ce.describe().find("write-write"), std::string::npos);
}

// ----------------------------------------- proofs for shipped algorithms

TEST(Prover, AllShippedAlgorithmsProveRaceFree) {
    algos::MergesortPlain<std::int32_t> plain;
    algos::MergesortCoalesced<std::int32_t> coalesced;
    algos::MergesortBlocked<std::int32_t> blocked(16);
    auto sum = algos::make_sum<std::int32_t>();
    auto mx = algos::make_max<std::int32_t>();
    algos::DcFft fft;

    const std::vector<const core::LevelAlgorithm<std::int32_t>*> algs{&plain, &coalesced,
                                                                      &blocked, &sum, &mx};
    for (const core::LevelAlgorithm<std::int32_t>* alg : algs) {
        const VerifyReport rep = prove_algorithm(*alg);
        EXPECT_TRUE(rep.race_free()) << rep.summary();
        EXPECT_TRUE(rep.findings.empty()) << rep.summary();
    }
    const VerifyReport frep = prove_algorithm(fft);
    EXPECT_TRUE(frep.race_free()) << frep.summary();

    // The coalesced device walk needs the column rule; the plain one only
    // ever needs slice containment.
    const VerifyReport crep = prove_algorithm(coalesced);
    ASSERT_NE(crep.proof(Phase::kDeviceTask), nullptr);
    EXPECT_NE(crep.proof(Phase::kDeviceTask)->rules.find("column"), std::string::npos);
    const VerifyReport prep = prove_algorithm(plain);
    ASSERT_NE(prep.proof(Phase::kCpuTask), nullptr);
    EXPECT_EQ(prep.proof(Phase::kCpuTask)->rules, "slice");
}

// ----------------------- static counterexample reproduced by the runtime

/// Injected defect: every task folds into word 0 and HONESTLY declares it,
/// both in the access log and in the symbolic footprint. The prover must
/// refute the declaration statically; the runtime detector must reproduce
/// the overlap on the very word the counterexample names.
class RacyFold final : public core::LevelAlgorithm<int> {
public:
    std::string name() const override { return "racy-fold"; }
    std::uint64_t a() const override { return 2; }
    std::uint64_t b() const override { return 2; }
    model::Recurrence recurrence() const override { return model::sum_recurrence(4.0); }

    void run_task(std::span<int> data, std::uint64_t count, std::uint64_t j,
                  sim::OpCounter& ops) const override {
        const std::uint64_t sz = data.size() / count;
        data[0] = data[0] * 2 + data[j * sz];
        ops.charge_compute(2);
        ops.charge_mem(3, sim::Pattern::kStrided);
        ops.log_read(0, 1);
        ops.log_read(j * sz, 1);
        ops.log_write(0, 1);
    }

    std::optional<TaskFootprint> footprint(const FootprintQuery& query) const override {
        if (query.phase == Phase::kLeaf) return TaskFootprint{};
        SymAccess word0;
        word0.base = Sym::lit(0);
        word0.jcoef = Sym::lit(0);
        SymAccess own;
        own.base = Sym::lit(0);
        own.jcoef = Sym::size();
        TaskFootprint fp;
        fp.reads = {word0, own};
        fp.writes = {word0};
        return fp;
    }
};

TEST(StaticRace, CounterexampleIsReproducedByTheRuntimeDetector) {
    RacyFold alg;
    const VerifyReport srep = prove_algorithm(alg);
    EXPECT_FALSE(srep.race_free());
    EXPECT_GE(count_kind(srep, VerifyFinding::Kind::kRaceCounterexample), 1u);
    ASSERT_NE(srep.proof(Phase::kCpuTask), nullptr);
    ASSERT_TRUE(srep.proof(Phase::kCpuTask)->counterexample.has_value());
    const Counterexample ce = *srep.proof(Phase::kCpuTask)->counterexample;
    EXPECT_TRUE(ce.write_write);

    // Unproven phases keep the word-level detector, which must hit the
    // same address the static witness names.
    std::vector<int> data(64, 1);
    sim::Hpu h(platforms::hpu1());
    core::ExecOptions opts;
    opts.validate = true;
    opts.verify = true;
    const auto rep = core::run_multicore(h.cpu(), alg, std::span(data), opts);
    EXPECT_TRUE(rep.verify.attempted);
    EXPECT_FALSE(rep.verify.certified());
    EXPECT_TRUE(rep.analysis.has(analysis::FindingKind::kWriteWriteRace));
    EXPECT_TRUE(rep.analysis.has(analysis::FindingKind::kReadWriteRace));
    bool same_word = false;
    for (const auto& f : rep.analysis.findings) {
        if (f.kind == analysis::FindingKind::kWriteWriteRace && f.address == ce.word) {
            same_word = true;
        }
    }
    EXPECT_TRUE(same_word);
}

// --------------------------- conformance catches footprint mis-declaration

/// Injected defect: the declared footprint is NARROWER than the truth —
/// it claims each task touches only the first half of its slice, while
/// the kernel logs (and merges) the whole slice. The narrowed declaration
/// still proves race-free, so every executor takes the conformance path,
/// which must refute the declaration at runtime.
class NarrowedMergesort final : public algos::MergesortPlain<std::int32_t> {
public:
    std::string name() const override { return "narrowed-mergesort"; }

    std::optional<TaskFootprint> footprint(const FootprintQuery& query) const override {
        if (query.phase == Phase::kLeaf) {
            return algos::MergesortPlain<std::int32_t>::footprint(query);
        }
        SymAccess half = slice_access();
        half.words = Sym::size(1, 2);  // declares sz/2 of the true sz words
        TaskFootprint fp;
        fp.reads.push_back(half);
        fp.writes.push_back(half);
        return fp;
    }
};

void expect_violation_everywhere(util::ThreadPool* pool, const char* mode) {
    sim::Hpu h(platforms::hpu1(), pool);
    NarrowedMergesort alg;
    EXPECT_TRUE(prove_algorithm(alg).race_free());  // the lie is self-consistent

    const std::uint64_t n = 256;
    util::Rng rng(n);
    const auto base = rng.int_vector(n, 0, 2 * n);
    core::ExecOptions opts;
    opts.validate = true;
    opts.verify = true;

    auto expect_flagged = [&](const core::ExecReport& rep, const char* executor) {
        EXPECT_TRUE(rep.verify.attempted) << mode << "/" << executor;
        EXPECT_TRUE(rep.analysis.has(analysis::FindingKind::kFootprintViolation))
            << mode << "/" << executor << ":\n"
            << rep.analysis.summary();
    };

    auto data = base;
    expect_flagged(core::run_sequential(h.cpu(), alg, std::span(data), opts), "sequential");
    data = base;
    expect_flagged(core::run_multicore(h.cpu(), alg, std::span(data), opts), "multicore");
    data = base;
    expect_flagged(core::run_gpu(h, alg, std::span(data), opts), "gpu");
    data = base;
    expect_flagged(core::run_basic_hybrid(h, alg, std::span(data), opts), "basic-hybrid");
    data = base;
    core::AdvancedOptions adv;
    adv.exec = opts;
    expect_flagged(core::run_advanced_hybrid(h, alg, std::span(data), 0.25, 3, adv),
                   "advanced-hybrid");
    data = base;
    core::PipelinedOptions pip;
    pip.exec = opts;
    expect_flagged(core::run_pipelined_hybrid(h, alg, std::span(data), 0.25, 3, pip),
                   "pipelined-hybrid");
}

TEST(Conformance, NarrowedFootprintFlaggedByEveryExecutorInline) {
    expect_violation_everywhere(nullptr, "inline");
}

TEST(Conformance, NarrowedFootprintFlaggedByEveryExecutorPooled) {
    util::ThreadPool pool(4);
    expect_violation_everywhere(&pool, "pooled");
}

// ------------------------------- certificates and validate-path identity

TEST(Certificate, VerifiedRunIsByteIdenticalAndCertified) {
    const std::uint64_t n = 512;
    sim::Hpu h(platforms::hpu1());
    algos::MergesortCoalesced<std::int32_t> alg;
    util::Rng rng(77);
    const auto base = rng.int_vector(n, 0, 2 * n);

    auto plain = base;
    core::ExecOptions off;
    off.validate = true;
    off.verify = false;
    const auto rep_off = core::run_gpu(h, alg, std::span(plain), off);

    auto checked = base;
    core::ExecOptions on;
    on.validate = true;
    on.verify = true;
    const auto rep_on = core::run_gpu(h, alg, std::span(checked), on);

    // Proven launches swap word concretization for conformance; results,
    // virtual clock, and the analysis counters must not move.
    EXPECT_EQ(plain, checked);
    EXPECT_DOUBLE_EQ(rep_off.total, rep_on.total);
    EXPECT_DOUBLE_EQ(rep_off.gpu_busy, rep_on.gpu_busy);
    EXPECT_TRUE(rep_off.analysis.findings.empty()) << rep_off.analysis.summary();
    EXPECT_TRUE(rep_on.analysis.findings.empty()) << rep_on.analysis.summary();
    EXPECT_EQ(rep_off.analysis.launches_checked, rep_on.analysis.launches_checked);
    EXPECT_EQ(rep_off.analysis.launches_skipped, rep_on.analysis.launches_skipped);

    EXPECT_FALSE(rep_off.verify.attempted);
    ASSERT_TRUE(rep_on.verify.attempted);
    EXPECT_TRUE(rep_on.verify.certified()) << rep_on.verify.summary();
    EXPECT_TRUE(rep_on.verify.race_free());
    EXPECT_GT(rep_on.verify.checks_passed, 0u);
}

TEST(Certificate, PipelinedRunAttachesJsonCertificate) {
    const std::uint64_t n = 4096;
    sim::Hpu h(platforms::hpu1());
    algos::MergesortPlain<std::int32_t> alg;
    util::Rng rng(3);
    auto data = rng.int_vector(n, 0, 2 * n);
    core::PipelinedOptions pip;
    pip.exec.validate = true;
    pip.exec.verify = true;
    const auto rep = core::run_pipelined_hybrid(h, alg, std::span(data), 0.25, 3, pip);
    ASSERT_TRUE(rep.verify.attempted);
    EXPECT_TRUE(rep.verify.certified()) << rep.verify.summary();
    EXPECT_EQ(rep.verify.executor, "pipelined-hybrid");
    const std::string json = rep.verify.to_json();
    EXPECT_NE(json.find("\"executor\":\"pipelined-hybrid\""), std::string::npos);
    EXPECT_NE(json.find("\"certified\":true"), std::string::npos);
    EXPECT_NE(rep.verify.summary().find("certified"), std::string::npos);
}

TEST(Certificate, ReconstructedPlansPassForEveryExecutorShape) {
    const std::uint64_t n = 1024;
    sim::Hpu h(platforms::hpu1());
    algos::MergesortPlain<std::int32_t> alg;
    const VerifyReport seq = verify_cpu_run(alg, n, h.cpu(), "sequential");
    EXPECT_TRUE(seq.certified()) << seq.summary();
    for (const RunShape::Kind kind :
         {RunShape::Kind::kGpu, RunShape::Kind::kBasic, RunShape::Kind::kAdvanced,
          RunShape::Kind::kPipelined}) {
        RunShape shape;
        shape.kind = kind;
        shape.alpha = 0.25;
        shape.y = 3;
        const VerifyReport rep = verify_hybrid_run(alg, n, h, shape);
        EXPECT_TRUE(rep.certified()) << rep.summary();
        EXPECT_GT(rep.checks_passed, 0u) << rep.summary();
    }
}

// --------------------------------------------- schedule invariant checks

PlanEvent cpu_level(double start, double dur, std::uint64_t tasks, double work) {
    PlanEvent e;
    e.unit = PlanEvent::Unit::kCpu;
    e.kind = PlanEvent::Kind::kLevel;
    e.start = start;
    e.duration = dur;
    e.tasks = tasks;
    e.words = tasks;
    e.work = work;
    e.label = "cpu-level[test]";
    return e;
}

PlanEvent gpu_level(double start, double dur, std::uint64_t offset, std::uint64_t words) {
    PlanEvent e;
    e.unit = PlanEvent::Unit::kGpu;
    e.kind = PlanEvent::Kind::kLevel;
    e.start = start;
    e.duration = dur;
    e.offset = offset;
    e.words = words;
    e.label = "gpu-level[test]";
    return e;
}

PlanEvent xfer(PlanEvent::Kind kind, double start, double dur, std::uint64_t offset,
               std::uint64_t words) {
    PlanEvent e;
    e.unit = PlanEvent::Unit::kLink;
    e.kind = kind;
    e.start = start;
    e.duration = dur;
    e.offset = offset;
    e.words = words;
    e.label = kind == PlanEvent::Kind::kXferIn ? "xfer-in[test]" : "xfer-out[test]";
    return e;
}

TEST(ScheduleChecker, OverbookedCpuSlotIsCapacityExceeded) {
    SchedulePlan plan;
    plan.executor = "unit";
    plan.events.push_back(cpu_level(0.0, 1.0, 4, 1e6));  // 1e6 ops in p core-ticks
    VerifyReport rep;
    check_plan(plan, platforms::hpu1(), rep);
    EXPECT_GE(count_kind(rep, VerifyFinding::Kind::kCapacityExceeded), 1u);
}

TEST(ScheduleChecker, OverlappingEventsOnOneUnitAreFlagged) {
    SchedulePlan plan;
    plan.executor = "unit";
    plan.events.push_back(cpu_level(0.0, 10.0, 1, 0.0));
    plan.events.push_back(cpu_level(5.0, 10.0, 1, 0.0));  // same unit, mid-flight
    VerifyReport rep;
    check_plan(plan, platforms::hpu1(), rep);
    EXPECT_GE(count_kind(rep, VerifyFinding::Kind::kCapacityExceeded), 1u);
}

TEST(ScheduleChecker, ZeroWidthUnitBreaksWaveConservation) {
    sim::HpuParams hw = platforms::hpu1();
    hw.gpu.g = 0;  // a malformed hardware description cannot cover any task
    SchedulePlan plan;
    plan.executor = "unit";
    PlanEvent e = gpu_level(0.0, 1e9, 0, 16);
    e.tasks = 16;
    plan.events.push_back(e);
    VerifyReport rep;
    check_plan(plan, hw, rep);
    EXPECT_GE(count_kind(rep, VerifyFinding::Kind::kWaveConservation), 1u);
}

TEST(ScheduleChecker, ComputeBeforeTransferArrivesIsPrecedenceViolation) {
    SchedulePlan plan;
    plan.executor = "unit";
    plan.events.push_back(xfer(PlanEvent::Kind::kXferIn, 0.0, 5.0, 0, 64));
    plan.events.push_back(gpu_level(20.0, 1e9, 0, 128));  // needs [0,128), only [0,64) ships
    VerifyReport rep;
    check_plan(plan, platforms::hpu1(), rep);
    EXPECT_GE(count_kind(rep, VerifyFinding::Kind::kPrecedenceViolation), 1u);
}

TEST(ScheduleChecker, ReadbackDuringComputeIsPrecedenceViolation) {
    SchedulePlan plan;
    plan.executor = "unit";
    plan.events.push_back(xfer(PlanEvent::Kind::kXferIn, 0.0, 1.0, 0, 64));
    plan.events.push_back(gpu_level(10.0, 1e9, 0, 64));
    plan.events.push_back(xfer(PlanEvent::Kind::kXferOut, 11.0, 1.0, 0, 64));  // mid-kernel
    VerifyReport rep;
    check_plan(plan, platforms::hpu1(), rep);
    EXPECT_GE(count_kind(rep, VerifyFinding::Kind::kPrecedenceViolation), 1u);
}

TEST(ScheduleChecker, OverlappingInputChunksAreChunkOverlap) {
    SchedulePlan plan;
    plan.executor = "unit";
    plan.events.push_back(xfer(PlanEvent::Kind::kXferIn, 0.0, 1.0, 0, 64));
    plan.events.push_back(xfer(PlanEvent::Kind::kXferIn, 1.0, 1.0, 32, 64));  // [32,96)
    VerifyReport rep;
    check_plan(plan, platforms::hpu1(), rep);
    EXPECT_GE(count_kind(rep, VerifyFinding::Kind::kChunkOverlap), 1u);
}

TEST(ScheduleChecker, ComputeOverInFlightChunkIsChunkOverlap) {
    SchedulePlan plan;
    plan.executor = "unit";
    plan.events.push_back(xfer(PlanEvent::Kind::kXferIn, 0.0, 10.0, 0, 64));
    plan.events.push_back(gpu_level(5.0, 1e9, 0, 64));  // stream still in flight
    VerifyReport rep;
    check_plan(plan, platforms::hpu1(), rep);
    EXPECT_GE(count_kind(rep, VerifyFinding::Kind::kChunkOverlap), 1u);
}

TEST(ScheduleChecker, NeverWorseGuardFlagsNonImprovingPipeline) {
    VerifyReport bad;
    check_never_worse(5.0, 4.0, 2, bad);
    EXPECT_EQ(count_kind(bad, VerifyFinding::Kind::kNeverWorseViolated), 1u);
    EXPECT_NE(bad.findings[0].message().find("never-worse-violated"), std::string::npos);

    VerifyReport good;
    check_never_worse(4.0, 5.0, 2, good);
    check_never_worse(7.0, 6.0, 1, good);  // K = 1: the guard already degenerated
    EXPECT_TRUE(good.findings.empty());
    EXPECT_EQ(good.checks_passed, 2u);
}

// ------------------------------------------------------------- env gating

TEST(EnvGate, HpuVerifySeedsTheDefault) {
    ::unsetenv("HPU_VERIFY");
    EXPECT_FALSE(core::ExecOptions{}.verify);
    ::setenv("HPU_VERIFY", "1", 1);
    EXPECT_TRUE(core::ExecOptions{}.verify);
    ::setenv("HPU_VERIFY", "off", 1);
    EXPECT_FALSE(core::ExecOptions{}.verify);
    ::setenv("HPU_VERIFY", "ON", 1);
    EXPECT_TRUE(core::ExecOptions{}.verify);
    ::unsetenv("HPU_VERIFY");
}

}  // namespace
}  // namespace hpu::verify
