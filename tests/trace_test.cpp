// hpu::trace tests: zero-perturbation (attaching a tracer never changes an
// ExecReport tick, swept over every algorithm × executor), span-tree shape
// for all executors, the shared label scheme joining analysis findings /
// timeline events / trace spans, Timeline semantics under overlapped hybrid
// events, the counters registry, the exporters' Chrome trace-event / CSV
// shapes, and the utilization + model-drift report — including the §5.2.2
// worked example (α* ≈ 0.16, y* ≈ 10, GPU ≈ 52% of the work at n = 2²⁴ on
// HPU1) reproduced from span data alone.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "algos/binary_reduce.hpp"
#include "algos/mergesort.hpp"
#include "core/hybrid.hpp"
#include "model/advanced.hpp"
#include "platforms/platforms.hpp"
#include "trace/counters.hpp"
#include "trace/export.hpp"
#include "trace/utilization.hpp"
#include "util/rng.hpp"

namespace hpu::core {
namespace {

std::vector<std::int32_t> random_input(std::uint64_t n, std::uint64_t seed) {
    util::Rng rng(seed);
    return rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));
}

// ---------------------------------------------------------------------------
// Timeline semantics on overlapped hybrid schedules (events are recorded
// out of chronological order by the advanced scheduler).

TEST(Timeline, CountTotalSpanEndAreOrderIndependent) {
    sim::Timeline tl;
    // Recorded out of order and overlapping, as the advanced hybrid does:
    // GPU thread first, then the concurrent CPU phase back at tick 0.
    tl.record(sim::EventKind::kTransferToGpu, "x/in", 0.0, 10.0);
    tl.record(sim::EventKind::kGpuKernel, "x/gpu", 10.0, 100.0);
    tl.record(sim::EventKind::kTransferToCpu, "x/out", 110.0, 10.0);
    tl.record(sim::EventKind::kCpuLevel, "x/parallel", 0.0, 90.0);
    tl.record(sim::EventKind::kCpuLevel, "x/finish", 120.0, 30.0);

    EXPECT_EQ(tl.count(sim::EventKind::kCpuLevel), 2u);
    EXPECT_EQ(tl.count(sim::EventKind::kGpuKernel), 1u);
    EXPECT_EQ(tl.count(sim::EventKind::kTransferToGpu), 1u);
    EXPECT_EQ(tl.count(sim::EventKind::kTransferToCpu), 1u);
    EXPECT_DOUBLE_EQ(tl.total(sim::EventKind::kCpuLevel), 120.0);
    EXPECT_DOUBLE_EQ(tl.total(sim::EventKind::kGpuKernel), 100.0);
    EXPECT_DOUBLE_EQ(tl.span_end(), 150.0);
}

TEST(Timeline, PrintSortsByStartKeepingTiesInRecordingOrder) {
    sim::Timeline tl;
    tl.record(sim::EventKind::kGpuKernel, "late", 50.0, 10.0);
    tl.record(sim::EventKind::kTransferToGpu, "first-at-zero", 0.0, 5.0);
    tl.record(sim::EventKind::kCpuLevel, "second-at-zero", 0.0, 40.0);
    std::ostringstream os;
    tl.print(os);
    const std::string out = os.str();
    const auto first = out.find("first-at-zero");
    const auto second = out.find("second-at-zero");
    const auto late = out.find("late");
    ASSERT_NE(first, std::string::npos);
    ASSERT_NE(second, std::string::npos);
    ASSERT_NE(late, std::string::npos);
    EXPECT_LT(first, second);  // tie at t=0 keeps recording order
    EXPECT_LT(second, late);   // sorted by start, not recording order
}

TEST(Timeline, AdvancedHybridEventsOverlapAndStayWithinTotal) {
    sim::Hpu h(platforms::hpu1());
    algos::MergesortCoalesced<std::int32_t> alg;
    auto data = random_input(1 << 12, 11);
    const auto rep = run_advanced_hybrid(h, alg, std::span(data), 0.2, 8);
    const auto& ev = h.timeline().events();
    ASSERT_GE(ev.size(), 4u);
    // The concurrent CPU phase overlaps the GPU events in virtual time.
    const auto cpu_it =
        std::find_if(ev.begin(), ev.end(), [](const sim::Event& e) {
            return e.kind == sim::EventKind::kCpuLevel && e.start == 0.0;
        });
    ASSERT_NE(cpu_it, ev.end());
    const auto gpu_it = std::find_if(ev.begin(), ev.end(), [](const sim::Event& e) {
        return e.kind == sim::EventKind::kGpuKernel;
    });
    ASSERT_NE(gpu_it, ev.end());
    EXPECT_LT(cpu_it->start, gpu_it->end);
    EXPECT_LT(gpu_it->start, cpu_it->end);
    // span_end uses ends, not recording order; the timeline's clock omits
    // the pre-pass, so its span can only be <= the report total.
    EXPECT_LE(h.timeline().span_end(), rep.total + 1e-9);
}

// ---------------------------------------------------------------------------
// Zero-perturbation: tracing on vs off yields bit-identical reports for
// every algorithm × executor × mode.

void expect_identical(const ExecReport& off, const ExecReport& on,
                      const std::string& what) {
    EXPECT_EQ(off.total, on.total) << what;
    EXPECT_EQ(off.cpu_busy, on.cpu_busy) << what;
    EXPECT_EQ(off.gpu_busy, on.gpu_busy) << what;
    EXPECT_EQ(off.transfer, on.transfer) << what;
    EXPECT_EQ(off.finish, on.finish) << what;
    EXPECT_EQ(off.levels_cpu, on.levels_cpu) << what;
    EXPECT_EQ(off.levels_gpu, on.levels_gpu) << what;
    EXPECT_EQ(off.alpha_effective, on.alpha_effective) << what;
}

template <typename Alg>
void sweep_executors(const Alg& alg, bool functional) {
    const std::uint64_t n = 1 << 12;
    const auto base = random_input(n, 21);
    const std::string tag = alg.name() + (functional ? "/functional" : "/analytic");

    const auto run_both = [&](const char* executor, auto&& go) {
        ExecOptions off;
        off.functional = functional;
        trace::TraceSession session;
        ExecOptions on = off;
        on.trace = &session;
        auto d_off = base;
        auto d_on = base;
        const ExecReport r_off = go(std::span(d_off), off);
        const ExecReport r_on = go(std::span(d_on), on);
        expect_identical(r_off, r_on, tag + "/" + executor);
        EXPECT_EQ(d_off, d_on) << tag << "/" << executor;
        EXPECT_FALSE(session.empty()) << tag << "/" << executor;
        EXPECT_EQ(r_on.trace, &session);
        EXPECT_EQ(r_off.trace, nullptr);
        // Every span sits inside the run interval.
        for (const auto& s : session.spans()) {
            EXPECT_GE(s.start, -1e-9);
            EXPECT_LE(s.end, r_on.total + 1e-9) << tag << "/" << executor << " " << s.label;
        }
    };

    run_both("sequential", [&](std::span<std::int32_t> d, const ExecOptions& o) {
        sim::CpuUnit cpu(platforms::hpu1().cpu);
        return run_sequential(cpu, alg, d, o);
    });
    run_both("multicore", [&](std::span<std::int32_t> d, const ExecOptions& o) {
        sim::CpuUnit cpu(platforms::hpu1().cpu);
        return run_multicore(cpu, alg, d, o);
    });
    run_both("gpu", [&](std::span<std::int32_t> d, const ExecOptions& o) {
        sim::Hpu h(platforms::hpu1());
        return run_gpu(h, alg, d, o);
    });
    run_both("basic-hybrid", [&](std::span<std::int32_t> d, const ExecOptions& o) {
        sim::Hpu h(platforms::hpu1());
        return run_basic_hybrid(h, alg, d, o);
    });
    run_both("advanced-hybrid", [&](std::span<std::int32_t> d, const ExecOptions& o) {
        sim::Hpu h(platforms::hpu1());
        AdvancedOptions adv;
        adv.exec = o;
        return run_advanced_hybrid(h, alg, d, 0.2, 7, adv);
    });
}

TEST(ZeroPerturbation, MergesortPlainAllExecutors) {
    algos::MergesortPlain<std::int32_t> alg;
    sweep_executors(alg, /*functional=*/true);
    sweep_executors(alg, /*functional=*/false);
}

TEST(ZeroPerturbation, MergesortCoalescedAllExecutors) {
    algos::MergesortCoalesced<std::int32_t> alg;
    sweep_executors(alg, /*functional=*/true);
    sweep_executors(alg, /*functional=*/false);
}

TEST(ZeroPerturbation, BinaryReduceSumAllExecutors) {
    const auto alg = algos::make_sum<std::int32_t>();
    sweep_executors(alg, /*functional=*/true);
    sweep_executors(alg, /*functional=*/false);
}

// ---------------------------------------------------------------------------
// Span-tree shape.

TEST(SpanTree, AdvancedHybridHasConcurrentPhasesAndTwoTransfers) {
    sim::Hpu h(platforms::hpu1());
    algos::MergesortCoalesced<std::int32_t> alg;
    auto data = random_input(1 << 12, 31);
    trace::TraceSession session;
    AdvancedOptions adv;
    adv.exec.trace = &session;
    const auto rep = run_advanced_hybrid(h, alg, std::span(data), 0.2, 8, adv);

    // One run root spanning [0, total).
    ASSERT_EQ(session.count(trace::SpanKind::kRun), 1u);
    const auto roots = session.children(trace::kNoSpan);
    ASSERT_EQ(roots.size(), 1u);
    const auto& root = session.span(roots[0]);
    EXPECT_EQ(root.kind, trace::SpanKind::kRun);
    EXPECT_EQ(root.label, "mergesort-coalesced/advanced-hybrid");
    EXPECT_DOUBLE_EQ(root.start, 0.0);
    EXPECT_DOUBLE_EQ(root.end, rep.total);
    EXPECT_EQ(root.attrs.items, data.size());

    // Exactly two transfer spans (§5.2), both on the link track.
    ASSERT_EQ(session.count(trace::SpanKind::kTransfer), 2u);
    std::vector<const trace::Span*> xfers;
    for (const auto& s : session.spans()) {
        if (s.kind == trace::SpanKind::kTransfer) {
            xfers.push_back(&s);
            EXPECT_EQ(s.unit, trace::Unit::kLink);
            EXPECT_GT(s.attrs.items, 0u);
            EXPECT_EQ(s.attrs.bytes, s.attrs.items * sizeof(std::int32_t));
        }
    }
    EXPECT_EQ(xfers[0]->label, "mergesort-coalesced/xfer-in");
    EXPECT_EQ(xfers[1]->label, "mergesort-coalesced/xfer-out");

    // The cpu-parallel and gpu-phase spans start together and overlap.
    const trace::Span* gpu_phase = nullptr;
    const trace::Span* cpu_phase = nullptr;
    const trace::Span* finish = nullptr;
    for (const auto& s : session.spans()) {
        if (s.kind != trace::SpanKind::kPhase) continue;
        if (s.label == "mergesort-coalesced/gpu-phase") gpu_phase = &s;
        if (s.label == "mergesort-coalesced/cpu-parallel") cpu_phase = &s;
        if (s.label == "mergesort-coalesced/finish") finish = &s;
    }
    ASSERT_NE(gpu_phase, nullptr);
    ASSERT_NE(cpu_phase, nullptr);
    ASSERT_NE(finish, nullptr);
    EXPECT_DOUBLE_EQ(gpu_phase->start, cpu_phase->start);
    EXPECT_LT(cpu_phase->start, gpu_phase->end);
    EXPECT_LT(gpu_phase->start, cpu_phase->end);
    // The finish phase starts at the sync point (the later of the two) and
    // ends at the report total.
    EXPECT_DOUBLE_EQ(finish->start, std::max(gpu_phase->end, cpu_phase->end));
    EXPECT_DOUBLE_EQ(finish->end, rep.total);
    EXPECT_DOUBLE_EQ(finish->duration(), rep.finish);

    // Transfers are children of the GPU phase; levels nest under a phase.
    for (const auto* x : xfers) EXPECT_EQ(x->parent, gpu_phase->id);
    for (const auto& s : session.spans()) {
        if (s.kind == trace::SpanKind::kLevel) {
            const auto& p = session.span(s.parent);
            EXPECT_EQ(p.kind, trace::SpanKind::kPhase) << s.label;
        }
    }
}

TEST(SpanTree, FunctionalGpuRunRecordsWavesUnderLevels) {
    sim::Hpu h(platforms::hpu1());
    algos::MergesortCoalesced<std::int32_t> alg;
    const std::uint64_t n = 1 << 14;  // deepest level: 8192 tasks, g = 4096
    auto data = random_input(n, 41);
    trace::TraceSession session;
    ExecOptions opts;
    opts.trace = &session;
    run_gpu(h, alg, std::span(data), opts);

    ASSERT_GT(session.count(trace::SpanKind::kWave), 0u);
    for (const auto& s : session.spans()) {
        if (s.kind != trace::SpanKind::kWave) continue;
        const auto& level = session.span(s.parent);
        EXPECT_TRUE(level.kind == trace::SpanKind::kLevel ||
                    level.kind == trace::SpanKind::kLeaves);
        EXPECT_EQ(level.unit, trace::Unit::kGpu);
        // Waves sit inside their launch's span.
        EXPECT_GE(s.start, level.start - 1e-9);
        EXPECT_LE(s.end, level.end + 1e-9);
        EXPECT_GT(s.attrs.items, 0u);
        EXPECT_LE(s.attrs.items, h.params().gpu.g);
    }
    // Per level: wave count matches the attrs and wave items sum to the
    // launch's item count.
    for (const auto& s : session.spans()) {
        if (s.kind != trace::SpanKind::kLevel || s.unit != trace::Unit::kGpu) continue;
        std::uint64_t waves = 0, items = 0;
        sim::Ticks wave_time = 0.0;
        for (const auto id : session.children(s.id)) {
            const auto& w = session.span(id);
            if (w.kind != trace::SpanKind::kWave) continue;
            ++waves;
            items += w.attrs.items;
            wave_time += w.duration();
        }
        EXPECT_EQ(waves, s.attrs.waves) << s.label;
        EXPECT_EQ(items, s.attrs.items) << s.label;
        EXPECT_NEAR(wave_time + h.params().gpu.launch_overhead, s.duration(), 1e-9)
            << s.label;
    }
}

TEST(SpanTree, SequentialAndMulticoreChainLevelsBackToBack) {
    for (const bool multicore : {false, true}) {
        sim::CpuUnit cpu(platforms::hpu1().cpu);
        algos::MergesortPlain<std::int32_t> alg;
        auto data = random_input(1 << 10, 51);
        trace::TraceSession session;
        ExecOptions opts;
        opts.trace = &session;
        const auto rep = multicore ? run_multicore(cpu, alg, std::span(data), opts)
                                   : run_sequential(cpu, alg, std::span(data), opts);
        const auto roots = session.children(trace::kNoSpan);
        ASSERT_EQ(roots.size(), 1u);
        // Levels tile [leaves_end, total) with no gaps.
        sim::Ticks cursor = 0.0;
        for (const auto id : session.children(roots[0])) {
            const auto& s = session.span(id);
            EXPECT_NEAR(s.start, cursor, 1e-9) << s.label;
            cursor = s.end;
        }
        EXPECT_NEAR(cursor, rep.total, 1e-9);
    }
}

// ---------------------------------------------------------------------------
// The shared label scheme: analysis findings, timeline events, and trace
// spans produced by the same launch carry the same label.

/// Deliberately racy reduction: every task writes word 0.
struct RacyAlg final : LevelAlgorithm<std::int32_t> {
    std::string name() const override { return "racy"; }
    std::uint64_t a() const override { return 2; }
    std::uint64_t b() const override { return 2; }
    model::Recurrence recurrence() const override { return model::sum_recurrence(2.0); }
    void run_task(std::span<std::int32_t> data, std::uint64_t /*count*/, std::uint64_t j,
                  sim::OpCounter& ops) const override {
        data[0] = static_cast<std::int32_t>(j);
        ops.charge_compute(1);
        ops.charge_mem(1, sim::Pattern::kStrided);
        ops.log_write(0, 1);
    }
};

TEST(Labels, AnalysisFindingsTimelineEventsAndSpansJoinOnLabels) {
    // helper format sanity
    EXPECT_EQ(launch_label("racy", "gpu-level", 8), "racy/gpu-level[8 tasks]");
    EXPECT_EQ(phase_label("mergesort", "cpu-parallel"), "mergesort/cpu-parallel");

    // Analysis finding labels match the trace span of the same launch.
    sim::Hpu h(platforms::hpu1());
    RacyAlg racy;
    std::vector<std::int32_t> data(16, 0);
    trace::TraceSession session;
    ExecOptions opts;
    opts.validate = true;
    opts.trace = &session;
    const auto rep = run_gpu(h, racy, std::span(data), opts);
    ASSERT_FALSE(rep.analysis.findings.empty());
    for (const auto& f : rep.analysis.findings) {
        const bool matched =
            std::any_of(session.spans().begin(), session.spans().end(),
                        [&](const trace::Span& s) { return s.label == f.launch; });
        EXPECT_TRUE(matched) << "finding label '" << f.launch << "' has no matching span";
    }

    // Timeline event labels of the hybrids match trace span labels.
    sim::Hpu h2(platforms::hpu1());
    algos::MergesortCoalesced<std::int32_t> alg;
    auto input = random_input(1 << 12, 61);
    trace::TraceSession session2;
    AdvancedOptions adv;
    adv.exec.trace = &session2;
    run_advanced_hybrid(h2, alg, std::span(input), 0.2, 8, adv);
    for (const auto& e : h2.timeline().events()) {
        const bool matched =
            std::any_of(session2.spans().begin(), session2.spans().end(),
                        [&](const trace::Span& s) { return s.label == e.label; });
        EXPECT_TRUE(matched) << "timeline label '" << e.label << "' has no matching span";
    }
}

// ---------------------------------------------------------------------------
// Counters registry.

TEST(Counters, FunctionalGpuRunCountsLaunchesWavesAndTransfers) {
    const auto before = trace::counters().snapshot();
    sim::Hpu h(platforms::hpu1());
    algos::MergesortCoalesced<std::int32_t> alg;
    const std::uint64_t n = 1 << 13;
    auto data = random_input(n, 71);
    // Hermetic against the HPU_VALIDATE env override: this test counts a
    // plain functional run, so pin validation off explicitly.
    ExecOptions opts;
    opts.validate = false;
    run_gpu(h, alg, std::span(data), opts);
    const auto d = trace::counters().snapshot() - before;
    EXPECT_GE(d.kernel_launches, 13u);  // one per internal level
    EXPECT_GE(d.waves_launched, d.kernel_launches);
    EXPECT_GT(d.work_items, 0u);
    EXPECT_EQ(d.transfers, 2u);  // ship in, ship back
    EXPECT_EQ(d.words_transferred, 2 * n);
    EXPECT_GT(d.coalesced_transactions + d.strided_transactions, 0u);
    EXPECT_EQ(d.validation_reexecutions, 0u);
}

TEST(Counters, ValidationReexecutionsAreCounted) {
    const auto before = trace::counters().snapshot();
    sim::Hpu h(platforms::hpu1());
    algos::MergesortCoalesced<std::int32_t> alg;
    auto data = random_input(1 << 10, 81);
    ExecOptions opts;
    opts.validate = true;
    run_gpu(h, alg, std::span(data), opts);
    const auto d = trace::counters().snapshot() - before;
    EXPECT_GE(d.validation_reexecutions, 10u);  // one per checked launch
    const auto before2 = trace::counters().snapshot();
    run_multicore(h.cpu(), alg, std::span(data));
    const auto d2 = trace::counters().snapshot() - before2;
    EXPECT_GE(d2.cpu_levels, 10u);
}

// ---------------------------------------------------------------------------
// Exporters.

TEST(Exporters, ChromeJsonHasTraceEventShape) {
    sim::Hpu h(platforms::hpu1());
    algos::MergesortCoalesced<std::int32_t> alg;
    auto data = random_input(1 << 12, 91);
    trace::TraceSession session;
    AdvancedOptions adv;
    adv.exec.trace = &session;
    run_advanced_hybrid(h, alg, std::span(data), 0.2, 8, adv);

    std::ostringstream os;
    trace::export_chrome(session, os);
    const std::string json = os.str();
    EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
    // Four track-name metadata events + one complete event per span.
    std::size_t m_events = 0, x_events = 0, pos = 0;
    while ((pos = json.find("\"ph\":\"M\"", pos)) != std::string::npos) {
        ++m_events;
        pos += 1;
    }
    pos = 0;
    while ((pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos) {
        ++x_events;
        pos += 1;
    }
    EXPECT_EQ(m_events, 4u);
    EXPECT_EQ(x_events, session.spans().size());
    for (const char* track : {"\"host\"", "\"cpu\"", "\"gpu\"", "\"link\""}) {
        EXPECT_NE(json.find(track), std::string::npos) << track;
    }
    // Balanced braces and a closing bracket — cheap well-formedness check
    // (tools/check_trace.py does the full JSON validation in CI).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_NE(json.find("]}"), std::string::npos);
}

TEST(Exporters, CsvHasHeaderAndOneRowPerSpan) {
    sim::CpuUnit cpu(platforms::hpu1().cpu);
    algos::MergesortPlain<std::int32_t> alg;
    auto data = random_input(1 << 10, 101);
    trace::TraceSession session;
    ExecOptions opts;
    opts.trace = &session;
    run_multicore(cpu, alg, std::span(data), opts);

    std::ostringstream os;
    trace::export_csv(session, os);
    std::istringstream in(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line,
              "id,parent,kind,unit,label,start,end,duration,level,tasks,items,waves,ops,"
              "max_ops,work,bytes,coalesced_transactions,strided_transactions,"
              "extent_words,imbalance,wall_start_ns,wall_ns");
    std::size_t rows = 0;
    while (std::getline(in, line)) ++rows;
    EXPECT_EQ(rows, session.spans().size());
}

// ---------------------------------------------------------------------------
// Utilization and model drift.

TEST(Utilization, PureModelRunsHaveUnitDrift) {
    // No contention, analytic execution: observed level times ARE the model
    // prices, so every drift row must be exactly 1.
    sim::Hpu h(platforms::hpu1());
    algos::MergesortCoalesced<std::int32_t> alg;
    const std::uint64_t n = 1 << 16;
    std::vector<std::int32_t> dummy(n);
    trace::TraceSession session;
    AdvancedOptions adv;
    adv.exec.functional = false;
    adv.exec.trace = &session;
    run_advanced_hybrid(h, alg, std::span(dummy), 0.2, 9, adv);
    const auto u = trace::derive_utilization(session, h.params(), alg.recurrence(),
                                             alg.device_ops_multiplier(h.params().gpu));
    ASSERT_FALSE(u.levels.empty());
    for (const auto& d : u.levels) {
        EXPECT_NEAR(d.drift, 1.0, 1e-9) << "level " << d.level;
    }
    EXPECT_EQ(u.transfers, 2u);
    EXPECT_GT(u.gpu_lane_occupancy, 0.0);
    EXPECT_LE(u.gpu_lane_occupancy, 1.0 + 1e-9);
}

TEST(Utilization, ContentionShowsUpAsCpuDriftAboveOne) {
    // The Fig. 8 measured-vs-predicted gap, localized: with the LLC
    // contention model on and a cache-busting working set, CPU levels drift
    // above the pure §5 price while device levels stay model-exact.
    sim::HpuParams hw = platforms::hpu1();
    hw.cpu.contention = 0.08;
    const std::uint64_t n = 1 << 22;  // 2·n·4 B = 32 MB >> 8 MB LLC
    algos::MergesortCoalesced<std::int32_t> alg;
    std::vector<std::int32_t> dummy(n);

    sim::CpuUnit cpu(hw.cpu);
    trace::TraceSession cpu_session;
    ExecOptions opts;
    opts.functional = false;
    opts.trace = &cpu_session;
    run_multicore(cpu, alg, std::span(dummy), opts);
    const auto cpu_util = trace::derive_utilization(cpu_session, hw, alg.recurrence(),
                                                    alg.device_ops_multiplier(hw.gpu));
    ASSERT_FALSE(cpu_util.levels.empty());
    bool saw_drift = false;
    for (const auto& d : cpu_util.levels) {
        if (d.level == trace::SpanAttrs::kNoLevel) continue;  // leaf sweep: tiny ws
        if (d.tasks <= 1) continue;  // one active core contends with nobody
        EXPECT_GT(d.drift, 1.0) << "level " << d.level;
        saw_drift = true;
    }
    EXPECT_TRUE(saw_drift);

    sim::Hpu h(hw);
    trace::TraceSession gpu_session;
    opts.trace = &gpu_session;
    run_gpu(h, alg, std::span(dummy), opts);
    const auto gpu_util = trace::derive_utilization(gpu_session, hw, alg.recurrence(),
                                                    alg.device_ops_multiplier(hw.gpu));
    for (const auto& d : gpu_util.levels) {
        EXPECT_NEAR(d.drift, 1.0, 1e-9) << "level " << d.level;
    }
}

TEST(Utilization, BasicHybridShowsIdleCpuAdvancedKeepsBothBusy) {
    const std::uint64_t n = 1 << 18;
    algos::MergesortCoalesced<std::int32_t> alg;
    std::vector<std::int32_t> dummy(n);
    ExecOptions an;
    an.functional = false;

    sim::Hpu h1(platforms::hpu1());
    trace::TraceSession basic;
    an.trace = &basic;
    run_basic_hybrid(h1, alg, std::span(dummy), an);
    const auto bu = trace::derive_utilization(basic, h1.params(), alg.recurrence(),
                                              alg.device_ops_multiplier(h1.params().gpu));

    sim::Hpu h2(platforms::hpu1());
    trace::TraceSession advanced;
    model::AdvancedModel m(h2.params(), alg.recurrence(), static_cast<double>(n));
    const auto opt = m.optimize();
    AdvancedOptions adv;
    adv.exec.functional = false;
    adv.exec.trace = &advanced;
    run_advanced_hybrid(h2, alg, std::span(dummy), opt.alpha,
                        static_cast<std::uint64_t>(std::llround(opt.y)), adv);
    const auto au = trace::derive_utilization(advanced, h2.params(), alg.recurrence(),
                                              alg.device_ops_multiplier(h2.params().gpu));

    // The advanced scheduler exists to remove the basic scheduler's idle
    // time: its CPU utilization must be strictly higher. (The remaining
    // idle is the xfer-out + finish tail plus the sync gap at the barrier.)
    EXPECT_GT(au.units[0].utilization, bu.units[0].utilization);
    EXPECT_GT(au.units[0].utilization, 0.85);
    EXPECT_LT(bu.units[0].utilization, au.units[0].utilization - 0.05);
}

TEST(Utilization, WorkedExample522FromSpanDataAlone) {
    // §5.2.2 / §6.4: mergesort at n = 2²⁴ on HPU1. The model's optimum sits
    // near α* ≈ 0.16, y* ≈ 10 with the GPU doing ≈ 52% of the work; the
    // span-derived report must reproduce that share from the trace alone.
    const std::uint64_t n = 1ull << 24;
    sim::Hpu h(platforms::hpu1());
    algos::MergesortCoalesced<std::int32_t> alg;
    model::AdvancedModel m(h.params(), alg.recurrence(), static_cast<double>(n));
    const auto opt = m.optimize();
    EXPECT_NEAR(opt.alpha, 0.16, 0.04);
    EXPECT_NEAR(opt.y, 10.0, 1.5);
    EXPECT_NEAR(opt.gpu_work_share, 0.52, 0.06);

    std::vector<std::int32_t> dummy(n);
    trace::TraceSession session;
    AdvancedOptions adv;
    adv.exec.functional = false;
    adv.exec.trace = &session;
    run_advanced_hybrid(h, alg, std::span(dummy), opt.alpha,
                        static_cast<std::uint64_t>(std::llround(opt.y)), adv);

    const auto u = trace::derive_utilization(session, h.params(), alg.recurrence(),
                                             alg.device_ops_multiplier(h.params().gpu));
    // Exactly two transfers, and concurrent CPU/GPU phase spans.
    EXPECT_EQ(u.transfers, 2u);
    const trace::Span* gpu_phase = nullptr;
    const trace::Span* cpu_phase = nullptr;
    for (const auto& s : session.spans()) {
        if (s.kind != trace::SpanKind::kPhase) continue;
        if (s.label == "mergesort-coalesced/gpu-phase") gpu_phase = &s;
        if (s.label == "mergesort-coalesced/cpu-parallel") cpu_phase = &s;
    }
    ASSERT_NE(gpu_phase, nullptr);
    ASSERT_NE(cpu_phase, nullptr);
    EXPECT_LT(cpu_phase->start, gpu_phase->end);
    EXPECT_LT(gpu_phase->start, cpu_phase->end);
    // The span-derived GPU work share reproduces the model's prediction.
    EXPECT_NEAR(u.gpu_work_share, opt.gpu_work_share, 0.03);
    EXPECT_NEAR(u.gpu_work_share, 0.52, 0.06);
    // Pure model, analytic run: drift 1 everywhere.
    for (const auto& d : u.levels) EXPECT_NEAR(d.drift, 1.0, 1e-9);
}

}  // namespace
}  // namespace hpu::core
