// Algorithm-level tests: the mergesort variants' charge accounting, the
// §6.3 coalescing win, the parallel-merge GPU sort (Fig. 9 comparator),
// and property sweeps of every sorting path against std::sort.
#include <gtest/gtest.h>

#include <numeric>

#include "algos/binary_reduce.hpp"
#include "algos/closest_pair.hpp"
#include "algos/karatsuba.hpp"
#include "algos/mergesort.hpp"
#include "algos/parallel_merge.hpp"
#include "algos/quickhull.hpp"
#include "core/hybrid.hpp"
#include "platforms/platforms.hpp"
#include "util/rng.hpp"

namespace hpu::algos {
namespace {

std::vector<std::int32_t> random_input(std::uint64_t n, std::uint64_t seed) {
    util::Rng rng(seed);
    return rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));
}

TEST(MergesortPlain, TaskChargesMatchRecurrence) {
    MergesortPlain<std::int32_t> alg;
    alg.prepare(16);
    std::vector<std::int32_t> d = {5, 9, 1, 4, 8, 2, 7, 3, 0, 6, 10, 11, 12, 13, 14, 15};
    // Level with 2 tasks → slices of 8; run task 0 on a slice whose halves
    // are sorted.
    std::vector<std::int32_t> v = {1, 4, 5, 9, 2, 3, 7, 8, 0, 6, 10, 11, 12, 13, 14, 15};
    sim::OpCounter ops;
    alg.run_task(std::span(v), 2, 0, ops);
    EXPECT_TRUE(std::is_sorted(v.begin(), v.begin() + 8));
    // f(8) = 3.5·8 = 28 CPU ops per task.
    EXPECT_DOUBLE_EQ(static_cast<double>(ops.cpu_ops()),
                     alg.recurrence().task_cost(16.0, 1.0));
    (void)d;
}

TEST(MergesortPlain, ChargesAreDataIndependent) {
    // Uniform charges are what make the analytic fast path exact; verify
    // two very different slices charge identically.
    MergesortPlain<std::int32_t> alg;
    alg.prepare(8);
    std::vector<std::int32_t> asc = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<std::int32_t> inter = {1, 3, 5, 7, 2, 4, 6, 8};
    sim::OpCounter o1, o2;
    alg.run_task(std::span(asc), 1, 0, o1);
    alg.run_task(std::span(inter), 1, 0, o2);
    EXPECT_EQ(o1.cpu_ops(), o2.cpu_ops());
}

TEST(MergesortPlain, RequiresPrepare) {
    MergesortPlain<std::int32_t> alg;
    std::vector<std::int32_t> v = {2, 1};
    sim::OpCounter ops;
    EXPECT_THROW(alg.run_task(std::span(v), 1, 0, ops), util::HpuError);
}

TEST(MergesortCoalesced, DevicePathIsCheaperThanPlainOnDevice) {
    const sim::DeviceParams dev = platforms::hpu1().gpu;
    MergesortPlain<std::int32_t> plain;
    MergesortCoalesced<std::int32_t> coal;
    EXPECT_LT(coal.device_ops_multiplier(dev), 1.0);
    EXPECT_GT(plain.device_ops_multiplier(dev), 5.0);
}

TEST(MergesortCoalesced, StaysTransparentToCpuSide) {
    // The CPU body of the coalesced variant is the inherited plain merge —
    // identical charges, identical behaviour.
    MergesortPlain<std::int32_t> plain;
    MergesortCoalesced<std::int32_t> coal;
    plain.prepare(8);
    coal.prepare(8);
    std::vector<std::int32_t> a = {1, 3, 5, 7, 0, 2, 4, 6};
    std::vector<std::int32_t> b = a;
    sim::OpCounter oa, ob;
    plain.run_task(std::span(a), 1, 0, oa);
    coal.run_task(std::span(b), 1, 0, ob);
    EXPECT_EQ(a, b);
    EXPECT_EQ(oa.cpu_ops(), ob.cpu_ops());
}

class SortEquivalence : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(SortEquivalence, EveryPathSortsEveryInput) {
    const auto [lg, seed] = GetParam();
    const std::uint64_t n = 1ull << lg;
    auto base = random_input(n, seed);
    auto expect = base;
    std::sort(expect.begin(), expect.end());
    sim::Hpu h(platforms::hpu1());
    MergesortPlain<std::int32_t> plain;
    MergesortCoalesced<std::int32_t> coal;

    auto d = base;
    core::run_sequential(h.cpu(), plain, std::span(d));
    EXPECT_EQ(d, expect) << "sequential";

    d = base;
    core::run_multicore(h.cpu(), coal, std::span(d));
    EXPECT_EQ(d, expect) << "multicore";

    d = base;
    core::run_gpu(h, coal, std::span(d));
    EXPECT_EQ(d, expect) << "gpu";

    d = base;
    core::run_basic_hybrid(h, coal, std::span(d));
    EXPECT_EQ(d, expect) << "basic";

    d = base;
    const std::uint64_t y = lg > 4 ? static_cast<std::uint64_t>(lg - 3) : 1u;
    core::run_advanced_hybrid(h, coal, std::span(d), 0.2, y);
    EXPECT_EQ(d, expect) << "advanced";

    d = base;
    mergesort_gpu_parallel(h, std::span(d));
    EXPECT_EQ(d, expect) << "parallel-gpu";
}

INSTANTIATE_TEST_SUITE_P(SizesAndSeeds, SortEquivalence,
                         ::testing::Combine(::testing::Values(1, 2, 5, 8, 11, 13),
                                            ::testing::Values(0, 1, 2)));

TEST(SortEquivalence, DuplicateHeavyInputs) {
    // All-equal and two-value inputs exercise merge tie-breaking.
    sim::Hpu h(platforms::hpu1());
    MergesortCoalesced<std::int32_t> coal;
    std::vector<std::int32_t> same(1 << 8, 7);
    auto expect = same;
    core::run_basic_hybrid(h, coal, std::span(same));
    EXPECT_EQ(same, expect);

    util::Rng rng(5);
    auto binary = rng.int_vector(1 << 10, 0, 1);
    expect = binary;
    std::sort(expect.begin(), expect.end());
    core::run_advanced_hybrid(h, coal, std::span(binary), 0.3, 6);
    EXPECT_EQ(binary, expect);
}

TEST(SortEquivalence, AlreadySortedAndReversed) {
    sim::Hpu h(platforms::hpu2());
    MergesortCoalesced<std::int32_t> coal;
    std::vector<std::int32_t> asc(1 << 10);
    std::iota(asc.begin(), asc.end(), 0);
    auto expect = asc;
    auto d = asc;
    core::run_advanced_hybrid(h, coal, std::span(d), 0.2, 5);
    EXPECT_EQ(d, expect);
    std::reverse(d.begin(), d.end());
    core::run_basic_hybrid(h, coal, std::span(d));
    EXPECT_EQ(d, expect);
}

TEST(ParallelGpu, TimesScaleWithLogSquared) {
    sim::Hpu h(platforms::hpu1());
    core::ExecOptions an;
    an.functional = false;
    std::vector<std::int32_t> dummy;
    std::vector<std::int32_t> d1(1 << 10), d2(1 << 20);
    const auto s = mergesort_gpu_parallel(h, std::span(d1), an);
    const auto l = mergesort_gpu_parallel(h, std::span(d2), an);
    EXPECT_GT(l.sort_time, s.sort_time);
    // Large inputs saturate the device: time per element per level stops
    // shrinking once n >> g.
    EXPECT_GT(l.sort_time / s.sort_time, 100.0);
}

TEST(ParallelGpu, TransferShareShrinksRelativeCost) {
    sim::Hpu h(platforms::hpu1());
    core::ExecOptions an;
    an.functional = false;
    std::vector<std::int32_t> d(1 << 20);
    const auto r = mergesort_gpu_parallel(h, std::span(d), an);
    // Fig. 9: transfers shave the speedup but don't dominate at large n.
    EXPECT_LT(r.transfer_time, r.sort_time);
    EXPECT_GT(r.transfer_time, 0.0);
}

TEST(ParallelGpu, RejectsNonPowerOfTwo) {
    sim::Hpu h(platforms::hpu1());
    std::vector<std::int32_t> odd(1000);
    EXPECT_THROW(mergesort_gpu_parallel(h, std::span(odd)), util::HpuError);
}

TEST(ParallelGpu, StableForDuplicates) {
    sim::Hpu h(platforms::hpu1());
    auto d = random_input(1 << 12, 3);
    for (auto& x : d) x &= 0xF;  // heavy duplication
    auto expect = d;
    std::sort(expect.begin(), expect.end());
    mergesort_gpu_parallel(h, std::span(d));
    EXPECT_EQ(d, expect);
}

TEST(BinaryReduce, ChargesMatchRecurrence) {
    const auto alg = make_sum<std::int32_t>();
    std::vector<std::int32_t> v = {1, 2, 3, 4};
    sim::OpCounter ops;
    alg.run_task(std::span(v), 1, 0, ops);
    EXPECT_DOUBLE_EQ(static_cast<double>(ops.cpu_ops()),
                     alg.recurrence().task_cost(4.0, 0.0));
    EXPECT_EQ(v[0], 1 + 3);  // slice-local combine: slice[0] += slice[mid]
}

// ------------------------------------------------ irregular admissibility

// The irregular algorithms own their divide arithmetic (ceil/floor splits,
// data-dependent partitions), so admissible() must not inherit the regular
// power-of-b test: any pair-bearing n for the geometric algorithms, any
// even buffer (two same-length operands) for Karatsuba.

TEST(IrregularAdmissibility, GeometricAlgorithmsAcceptAnyPairBearingSize) {
    Quickhull qh;
    ClosestPair cp;
    for (const std::uint64_t n :
         {2ull, 3ull, 7ull, 97ull, 251ull, 300ull, 1000ull, 1024ull}) {
        EXPECT_TRUE(qh.admissible(n)) << "quickhull n=" << n;
        EXPECT_TRUE(cp.admissible(n)) << "closest-pair n=" << n;
    }
    for (const std::uint64_t n : {0ull, 1ull}) {
        EXPECT_FALSE(qh.admissible(n)) << "quickhull n=" << n;
        EXPECT_FALSE(cp.admissible(n)) << "closest-pair n=" << n;
    }
}

TEST(IrregularAdmissibility, KaratsubaAcceptsAnyEvenBufferIncludingTwiceOdd) {
    KaratsubaArray ka;
    // 2·151 and 2·163: twice an odd prime — the ceil/floor child sizes are
    // as uneven as they get, and still admissible.
    for (const std::uint64_t sz : {2ull, 6ull, 302ull, 320ull, 326ull, 4096ull}) {
        EXPECT_TRUE(ka.admissible(sz)) << "karatsuba sz=" << sz;
    }
    for (const std::uint64_t sz : {0ull, 1ull, 3ull, 151ull, 303ull}) {
        EXPECT_FALSE(ka.admissible(sz)) << "karatsuba sz=" << sz;
    }
}

TEST(IrregularAdmissibility, RegularAlgorithmsKeepThePowerOfBTest) {
    // The base-class hook is untouched: mergesort still wants base·2^k.
    MergesortPlain<std::int32_t> ms;
    EXPECT_TRUE(ms.admissible(256));
    EXPECT_FALSE(ms.admissible(300));
    EXPECT_FALSE(ms.admissible(251));
}

}  // namespace
}  // namespace hpu::algos
