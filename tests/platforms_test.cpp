#include <gtest/gtest.h>

#include "platforms/platforms.hpp"

namespace hpu::platforms {
namespace {

TEST(Platforms, Hpu1MatchesTable2) {
    const auto h = hpu1();
    EXPECT_EQ(h.cpu.p, 4u);
    EXPECT_EQ(h.gpu.g, 4096u);
    EXPECT_NEAR(1.0 / h.gpu.gamma, 160.0, 1e-9);
    EXPECT_EQ(h.cpu.llc_bytes, 8ull << 20);
    EXPECT_NO_THROW(h.validate());
}

TEST(Platforms, Hpu2MatchesTable2) {
    const auto h = hpu2();
    EXPECT_EQ(h.cpu.p, 4u);
    EXPECT_EQ(h.gpu.g, 1200u);
    EXPECT_NEAR(1.0 / h.gpu.gamma, 65.0, 1e-9);
    EXPECT_EQ(h.cpu.llc_bytes, 4ull << 20);
}

TEST(Platforms, GammaGExceedsP) {
    // The paper's standing assumption γ·g > p must hold for both platforms.
    for (const auto& s : all()) {
        EXPECT_GT(s.params.gpu_power(), static_cast<double>(s.params.cpu.p)) << s.name;
    }
}

TEST(Platforms, LookupByName) {
    EXPECT_EQ(by_name("HPU1").params.gpu.g, 4096u);
    EXPECT_EQ(by_name("HPU2").params.gpu.g, 1200u);
    EXPECT_THROW(by_name("HPU3"), util::HpuError);
}

TEST(Platforms, ContentionOffByDefault) {
    // Benches opt into the LLC model explicitly; the registry ships the
    // pure §5 parameters.
    EXPECT_DOUBLE_EQ(hpu1().cpu.contention, 0.0);
    EXPECT_DOUBLE_EQ(hpu2().cpu.contention, 0.0);
}

}  // namespace
}  // namespace hpu::platforms
