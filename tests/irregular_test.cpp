// Tests of the irregular-tree machinery (dynamic task lists): the TaskList
// shape statistics, the extent-overlap detector, the observed-width
// scheduler, and the engine itself — dispatch from all six executors,
// span-derived task conservation, per-level α re-balance, the verify
// downgrade certificate, and the width/imbalance trace attributes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "algos/closest_pair.hpp"
#include "algos/karatsuba.hpp"
#include "algos/mergesort.hpp"
#include "algos/quickhull.hpp"
#include "analysis/race.hpp"
#include "core/hybrid.hpp"
#include "core/pipeline.hpp"
#include "model/observed.hpp"
#include "platforms/platforms.hpp"
#include "trace/span.hpp"

namespace hpu::core {
namespace {

// ------------------------------------------------------------- task lists

TEST(TaskList, ShapeStatistics) {
    TaskList tl;
    tl.tasks = {{0, 8, 0}, {8, 8, 0}, {8, 10, 0}, {10, 16, 0}};
    EXPECT_EQ(tl.width(), 4u);
    EXPECT_EQ(tl.extent_words(), 16u);  // 8 + 0 + 2 + 6
    EXPECT_EQ(tl.empty_tasks(), 1u);
    // max 8 over mean 16/3 of the non-empty tasks.
    EXPECT_DOUBLE_EQ(tl.imbalance(), 8.0 * 3.0 / 16.0);
}

TEST(TaskList, DegenerateShapes) {
    TaskList tl;
    EXPECT_TRUE(tl.empty());
    EXPECT_DOUBLE_EQ(tl.imbalance(), 0.0);
    tl.tasks = {{4, 4, 0}, {9, 9, 0}};
    EXPECT_EQ(tl.empty_tasks(), 2u);
    EXPECT_DOUBLE_EQ(tl.imbalance(), 0.0);  // every task empty
    tl.tasks = {{0, 4, 0}, {4, 8, 0}};
    EXPECT_DOUBLE_EQ(tl.imbalance(), 1.0);  // perfectly regular
}

TEST(LevelAlgorithm, DefaultTaskListIsTheRegularShape) {
    algos::MergesortPlain<std::int32_t> alg;
    const TaskList tl = alg.level_task_list(16, 2);
    ASSERT_EQ(tl.width(), 4u);  // a^2
    for (std::uint64_t j = 0; j < 4; ++j) {
        EXPECT_EQ(tl.tasks[j].begin, j * 4);
        EXPECT_EQ(tl.tasks[j].end, (j + 1) * 4);
    }
    EXPECT_FALSE(alg.irregular());
    EXPECT_EQ(alg.as_irregular(), nullptr);
}

// --------------------------------------------------------- extent overlaps

TEST(ExtentOverlap, FlagsOverlapAndNamesTheItems) {
    std::vector<analysis::Extent> ex = {{0, 8}, {6, 12}, {12, 20}};
    analysis::AnalysisReport rep;
    analysis::detect_extent_overlaps(ex, "unit/extents", rep);
    ASSERT_EQ(rep.findings.size(), 1u);
    EXPECT_EQ(rep.findings[0].kind, analysis::FindingKind::kExtentOverlap);
    EXPECT_EQ(rep.findings[0].item_a, 0u);
    EXPECT_EQ(rep.findings[0].item_b, 1u);
    EXPECT_FALSE(rep.clean());
}

TEST(ExtentOverlap, CleanForDisjointAndSkipsEmpty) {
    // Empty extents may sit anywhere (spawned-but-dead branches).
    std::vector<analysis::Extent> ex = {{0, 8}, {3, 3}, {8, 16}, {20, 20}};
    analysis::AnalysisReport rep;
    analysis::detect_extent_overlaps(ex, "unit/extents", rep);
    EXPECT_TRUE(rep.findings.empty());
}

// ------------------------------------------------------- observed schedule

/// Hardware where GPU lanes genuinely compete with the cores for modest
/// per-task costs (hpu1's per-lane speed makes 100-op tasks CPU-bound,
/// which would leave the split logic unexercised).
sim::HpuParams gpu_friendly() {
    sim::HpuParams hw = platforms::hpu1();
    hw.name = "gpu-friendly";
    hw.cpu.p = 4;
    hw.cpu.contention = 0.0;
    hw.gpu.g = 64;
    hw.gpu.gamma = 0.1;
    hw.gpu.launch_overhead = 0.0;
    hw.link.lambda = 5.0;
    hw.link.delta = 0.01;
    return hw;
}

TEST(ObservedSplit, PrefixMinimizesEstimatedMakespan) {
    const sim::HpuParams hw = gpu_friendly();
    // Uniform level wide enough that both units get a share.
    std::vector<model::ObservedTask> est(256, model::ObservedTask{100.0, 4});
    const auto sp = model::split_observed_level(hw, est, 1.0, true);
    ASSERT_GT(sp.cpu_tasks, 0u);
    ASSERT_LT(sp.cpu_tasks, est.size());
    EXPECT_GT(sp.alpha, 0.0);
    EXPECT_LT(sp.alpha, 1.0);
    // No other split may beat the chosen one under the documented pricing.
    auto makespan = [&](std::uint64_t k) {
        double csum = 0.0, cmax = 0.0;
        for (std::uint64_t j = 0; j < k; ++j) {
            csum += est[j].cost;
            cmax = std::max(cmax, est[j].cost);
        }
        const double cpu =
            k > 0 ? std::max(csum / static_cast<double>(hw.cpu.p), cmax) : 0.0;
        double gsum = 0.0, gmax = 0.0;
        std::uint64_t words = 0;
        for (std::uint64_t j = k; j < est.size(); ++j) {
            gsum += est[j].cost;
            gmax = std::max(gmax, est[j].cost);
            words += est[j].words;
        }
        double gpu = 0.0;
        if (k < est.size()) {
            gpu = hw.gpu.launch_overhead +
                  std::max(gsum / (hw.gpu.gamma * static_cast<double>(hw.gpu.g)),
                           gmax / hw.gpu.gamma) +
                  2.0 * hw.link.lambda + 2.0 * hw.link.delta * static_cast<double>(words);
        }
        return std::max(cpu, gpu);
    };
    const double chosen = std::max(sp.cpu_est, sp.gpu_est);
    EXPECT_DOUBLE_EQ(chosen, makespan(sp.cpu_tasks));
    for (std::uint64_t k = 0; k <= est.size(); ++k) {
        EXPECT_LE(chosen, makespan(k) + 1e-9) << "k=" << k;
    }
}

TEST(ObservedSplit, SkewedCostsShiftTheSplit) {
    const sim::HpuParams hw = gpu_friendly();
    // Front-loaded costs: the same width must yield a smaller CPU prefix
    // than uniform costs would.
    std::vector<model::ObservedTask> uniform(64, model::ObservedTask{100.0, 4});
    std::vector<model::ObservedTask> skewed = uniform;
    for (std::uint64_t j = 0; j < 8; ++j) skewed[j].cost = 3000.0;
    const auto su = model::split_observed_level(hw, uniform, 1.0, true);
    const auto ss = model::split_observed_level(hw, skewed, 1.0, true);
    EXPECT_LE(ss.cpu_tasks, su.cpu_tasks);
}

// ----------------------------------------------------- engine end-to-end

std::vector<algos::Pt> random_points(std::uint64_t n, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::vector<algos::Pt> pts(n);
    for (auto& p : pts) {
        p.x = static_cast<std::int64_t>(rng() % 4096);
        p.y = static_cast<std::int64_t>(rng() % 4096);
    }
    return pts;
}

/// Sums the task counts of kLevel spans under the phase with the given
/// label suffix ("/expand" or "/combine").
std::uint64_t phase_level_tasks(const trace::TraceSession& ts, const std::string& suffix) {
    std::vector<trace::SpanId> phases;
    for (const trace::Span& s : ts.spans()) {
        if (s.kind == trace::SpanKind::kPhase &&
            s.label.size() >= suffix.size() &&
            s.label.compare(s.label.size() - suffix.size(), suffix.size(), suffix) == 0) {
            phases.push_back(s.id);
        }
    }
    std::uint64_t tasks = 0;
    for (const trace::Span& s : ts.spans()) {
        if (s.kind != trace::SpanKind::kLevel) continue;
        if (std::find(phases.begin(), phases.end(), s.parent) == phases.end()) continue;
        tasks += s.attrs.tasks;
    }
    return tasks;
}

TEST(IrregularEngine, AllSixExecutorsAgreeBitExactly) {
    const auto base = random_points(300, 17);
    algos::ClosestPair alg;
    sim::Hpu h(platforms::hpu1());
    ExecOptions opts;

    auto ref = base;
    const ExecReport rs = run_sequential(h.cpu(), alg, std::span(ref), opts);
    EXPECT_GT(rs.tasks_spawned, 0u);
    EXPECT_EQ(rs.levels_gpu, 0u);

    auto check = [&](const char* label, auto&& fn) {
        auto d = base;
        const ExecReport r = fn(std::span(d));
        EXPECT_EQ(d, ref) << label << " output differs from sequential";
        EXPECT_EQ(r.tasks_spawned, rs.tasks_spawned) << label;
        EXPECT_TRUE(std::isfinite(r.total)) << label;
        EXPECT_GT(r.total, 0.0) << label;
        return r;
    };
    check("multicore", [&](std::span<algos::Pt> d) {
        return run_multicore(h.cpu(), alg, d, opts);
    });
    const ExecReport rg =
        check("gpu", [&](std::span<algos::Pt> d) { return run_gpu(h, alg, d, opts); });
    EXPECT_GT(rg.transfer, 0.0);  // boundary ship-in/out
    check("basic-hybrid", [&](std::span<algos::Pt> d) {
        return run_basic_hybrid(h, alg, d, opts);
    });
    const ExecReport ra = check("advanced-hybrid", [&](std::span<algos::Pt> d) {
        AdvancedOptions a;
        a.exec = opts;
        // The closed-form (α, y) is ignored on the dynamic path — even
        // values the regular executor would reject must work.
        return run_advanced_hybrid(h, alg, d, 0.999, 1, a);
    });
    EXPECT_GT(ra.alpha_effective, 0.0);
    EXPECT_LE(ra.alpha_effective, 1.0);
    const ExecReport rp = check("pipelined-hybrid", [&](std::span<algos::Pt> d) {
        PipelinedOptions p;
        p.exec = opts;
        p.chunks = 4;
        return run_pipelined_hybrid(h, alg, d, 0.5, 1, p);
    });
    EXPECT_GE(rp.chunks, 1u);
    EXPECT_LE(rp.chunks, 4u);

    // A different machine may only change the schedule, never the bytes.
    sim::Hpu hg(gpu_friendly());
    check("advanced-hybrid/gpu-friendly", [&](std::span<algos::Pt> d) {
        AdvancedOptions a;
        a.exec = opts;
        return run_advanced_hybrid(hg, alg, d, 0.5, 1, a);
    });
    check("pipelined-hybrid/gpu-friendly", [&](std::span<algos::Pt> d) {
        PipelinedOptions p;
        p.exec = opts;
        p.chunks = 4;
        return run_pipelined_hybrid(hg, alg, d, 0.5, 1, p);
    });
}

TEST(IrregularEngine, SpanTaskCountsConserveTasksSpawned) {
    // The conservation invariant, span-derived: summing the `tasks`
    // attribute of the kLevel spans under the expand phase reconstructs
    // tasks_spawned — however the schedule split each level.
    const auto base = random_points(257, 23);
    algos::Quickhull alg;
    // GPU-friendly hardware so hybrid levels genuinely split — a split
    // level's CPU and GPU spans must still sum to the full width.
    sim::Hpu h(gpu_friendly());
    for (int executor = 0; executor < 3; ++executor) {
        auto d = base;
        trace::TraceSession ts;
        ExecOptions opts;
        opts.trace = &ts;
        ExecReport r;
        switch (executor) {
            case 0: r = run_multicore(h.cpu(), alg, std::span(d), opts); break;
            case 1: r = run_gpu(h, alg, std::span(d), opts); break;
            default: {
                AdvancedOptions a;
                a.exec = opts;
                r = run_advanced_hybrid(h, alg, std::span(d), 0.5, 1, a);
                break;
            }
        }
        EXPECT_GT(r.tasks_spawned, 0u);
        EXPECT_EQ(phase_level_tasks(ts, "/expand"), r.tasks_spawned)
            << "executor " << executor;
    }
}

TEST(IrregularEngine, ExactTreesSpawnTheSameCountFunctionalAndAnalytic) {
    // closest-pair and Karatsuba have data-independent tree shapes, so the
    // analytic path must price exactly the tree the functional path runs.
    sim::Hpu h(platforms::hpu1());
    {
        algos::ClosestPair alg;
        auto d = random_points(199, 5);
        ExecOptions opts;
        const auto rf = run_multicore(h.cpu(), alg, std::span(d), opts);
        opts.functional = false;
        const auto ra = run_multicore(h.cpu(), alg, std::span(d), opts);
        EXPECT_EQ(rf.tasks_spawned, ra.tasks_spawned);
    }
    {
        algos::KaratsubaArray alg;
        std::vector<std::int64_t> d(2 * 151, 3);
        ExecOptions opts;
        const auto rf = run_gpu(h, alg, std::span(d), opts);
        opts.functional = false;
        std::vector<std::int64_t> d2(2 * 151, 3);
        const auto ra = run_gpu(h, alg, std::span(d2), opts);
        EXPECT_EQ(rf.tasks_spawned, ra.tasks_spawned);
    }
}

TEST(IrregularEngine, AnalyticModeNeverTouchesData) {
    algos::KaratsubaArray alg;
    sim::Hpu h(platforms::hpu1());
    std::vector<std::int64_t> d(2 * 100, 9);
    const auto before = d;
    ExecOptions opts;
    opts.functional = false;
    AdvancedOptions a;
    a.exec = opts;
    const auto r = run_advanced_hybrid(h, alg, std::span(d), 0.5, 1, a);
    EXPECT_EQ(d, before);
    EXPECT_GT(r.total, 0.0);
    EXPECT_GT(r.tasks_spawned, 0u);
}

TEST(IrregularEngine, LevelSpansCarryWidthAndImbalanceAttrs) {
    const auto base = random_points(200, 31);
    algos::ClosestPair alg;
    sim::Hpu h(platforms::hpu1());
    auto d = base;
    trace::TraceSession ts;
    ExecOptions opts;
    opts.trace = &ts;
    run_multicore(h.cpu(), alg, std::span(d), opts);
    std::uint64_t levels_with_extent = 0, levels_with_imbalance = 0;
    for (const trace::Span& s : ts.spans()) {
        if (s.kind != trace::SpanKind::kLevel) continue;
        if (s.attrs.extent_words > 0) ++levels_with_extent;
        if (s.attrs.imbalance > 0.0) ++levels_with_imbalance;
        // The ceil/floor tree skews: some level must show imbalance > 1.
    }
    EXPECT_GT(levels_with_extent, 0u);
    EXPECT_GT(levels_with_imbalance, 0u);
    bool skew_seen = false;
    for (const trace::Span& s : ts.spans()) {
        if (s.kind == trace::SpanKind::kLevel && s.attrs.imbalance > 1.0) skew_seen = true;
    }
    EXPECT_TRUE(skew_seen) << "uneven strip recursion must show shape skew";
}

TEST(IrregularEngine, VerifyDowngradesToCheckedWithDynamicFootprintFinding) {
    // Static race-freedom proofs need static footprints; a dynamic tree
    // cannot declare one. ExecOptions::verify must attach the downgrade
    // certificate — all phases unknown, a kDynamicFootprint finding, and
    // proven() == false so the exact runtime checks stay armed.
    algos::Quickhull alg;
    sim::Hpu h(platforms::hpu1());
    auto d = random_points(100, 7);
    ExecOptions opts;
    opts.verify = true;
    opts.validate = true;
    const auto r = run_gpu(h, alg, std::span(d), opts);
    EXPECT_TRUE(r.verify.attempted);
    EXPECT_FALSE(r.verify.race_free());
    EXPECT_FALSE(r.verify.certified());
    bool downgrade = false;
    for (const auto& f : r.verify.findings) {
        if (f.kind == verify::VerifyFinding::Kind::kDynamicFootprint) downgrade = true;
    }
    EXPECT_TRUE(downgrade);
    // ...and the armed runtime checks find nothing wrong with quickhull.
    EXPECT_TRUE(r.analysis.findings.empty()) << r.analysis.summary();
    EXPECT_GT(r.analysis.launches_checked, 0u);
}

TEST(IrregularEngine, RegularAlgorithmsNeverTakeTheIrregularPath) {
    algos::MergesortPlain<std::int32_t> alg;
    sim::Hpu h(platforms::hpu1());
    std::vector<std::int32_t> d(256);
    for (std::uint64_t i = 0; i < d.size(); ++i) d[i] = static_cast<std::int32_t>(255 - i);
    const auto r = run_basic_hybrid(h, alg, std::span(d), ExecOptions{});
    EXPECT_EQ(r.tasks_spawned, 0u);  // irregular-only counter stays 0
    EXPECT_TRUE(std::is_sorted(d.begin(), d.end()));
}

TEST(IrregularEngine, NonPowerOfTwoSizesRunEverywhere) {
    // The whole point of the dynamic path: sizes no regular executor
    // accepts. 251 is prime; 2·163 has an odd half.
    sim::Hpu h(platforms::hpu1());
    {
        algos::ClosestPair alg;
        auto d = random_points(251, 41);
        auto ref = d;
        run_sequential(h.cpu(), alg, std::span(ref), ExecOptions{});
        PipelinedOptions p;
        p.chunks = 3;
        const auto r = run_pipelined_hybrid(h, alg, std::span(d), 0.5, 1, p);
        EXPECT_EQ(d, ref);
        EXPECT_GT(r.tasks_spawned, 0u);
    }
    {
        algos::KaratsubaArray alg;
        std::mt19937_64 rng(9);
        std::vector<std::int64_t> d(2 * 163);
        for (auto& v : d) v = static_cast<std::int64_t>(rng() % 100) - 50;
        auto ref = d;
        run_sequential(h.cpu(), alg, std::span(ref), ExecOptions{});
        const auto r = run_basic_hybrid(h, alg, std::span(d), ExecOptions{});
        EXPECT_EQ(d, ref);
        EXPECT_GT(r.tasks_spawned, 0u);
    }
}

}  // namespace
}  // namespace hpu::core
