// Property-based parity harness: seeded random D&C instances (algorithm,
// input size, platform, scheduler knobs) run through every executor in
// both functional and analytic mode. Two properties must hold for every
// instance:
//  * bit-identical outputs — every functional executor produces exactly
//    the sequential run's array (and the ground truth: sorted order for
//    the mergesorts, the fold value for the reductions);
//  * conserved total work — summing the task counts of the recorded
//    level/leaves spans across all units reconstructs the full tree:
//    2^i tasks at level i and n / base leaf blocks, however the schedule
//    split the array.
// Failures print the reproducing case seed via SCOPED_TRACE.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <random>
#include <span>
#include <vector>

#include "algos/binary_reduce.hpp"
#include "algos/closest_pair.hpp"
#include "algos/karatsuba.hpp"
#include "algos/mergesort.hpp"
#include "algos/mergesort_blocked.hpp"
#include "algos/quickhull.hpp"
#include "core/hybrid.hpp"
#include "core/pipeline.hpp"
#include "platforms/platforms.hpp"
#include "trace/span.hpp"

namespace hpu::core {
namespace {

/// One randomized instance: what to run and what the truth is.
struct Instance {
    std::uint64_t seed = 0;
    std::unique_ptr<LevelAlgorithm<std::int32_t>> alg;
    bool sorts = false;
    int reduce = -1;  ///< 0 = sum, 1 = max, 2 = min (when not a sort)
    std::uint64_t base = 1;
    std::uint64_t n = 0;
    std::uint64_t levels = 0;
    sim::HpuParams hw;
    double alpha = 0.5;
    std::uint64_t y = 1;
    std::uint64_t chunks = 1;
    std::vector<std::int32_t> input;
};

Instance make_instance(std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    auto pick = [&](std::uint64_t lo, std::uint64_t hi) {
        return lo + rng() % (hi - lo + 1);
    };
    auto real = [&](double lo, double hi) {
        return lo + (hi - lo) * (static_cast<double>(rng() >> 11) * 0x1.0p-53);
    };

    Instance in;
    in.seed = seed;
    in.hw = platforms::hpu1();
    in.hw.name = "random";
    in.hw.cpu.p = pick(1, 8);
    in.hw.cpu.contention = 0.0;
    in.hw.gpu.g = 1ull << pick(4, 12);
    in.hw.gpu.gamma = real(0.005, 0.05);
    in.hw.link.lambda = real(0.0, 2000.0);
    in.hw.link.delta = real(0.25, 4.0);

    switch (pick(0, 5)) {
        case 0:
            in.alg = std::make_unique<algos::MergesortPlain<std::int32_t>>();
            in.sorts = true;
            break;
        case 1:
            in.alg = std::make_unique<algos::MergesortCoalesced<std::int32_t>>();
            in.sorts = true;
            break;
        case 2:
            in.base = 1ull << pick(1, 3);
            in.alg = std::make_unique<algos::MergesortBlocked<std::int32_t>>(in.base);
            in.sorts = true;
            break;
        case 3:
            in.alg = std::make_unique<algos::DcSum<std::int32_t>>(
                algos::make_sum<std::int32_t>());
            in.reduce = 0;
            break;
        case 4:
            in.alg = std::make_unique<algos::DcMax<std::int32_t>>(
                algos::make_max<std::int32_t>());
            in.reduce = 1;
            break;
        default:
            in.alg = std::make_unique<algos::DcMin<std::int32_t>>(
                algos::make_min<std::int32_t>());
            in.reduce = 2;
            break;
    }

    in.levels = pick(7, 10);
    in.n = in.base << in.levels;
    in.alpha = real(0.1, 0.9);
    in.y = pick(1, in.levels);
    in.chunks = pick(1, 8);
    in.input.resize(in.n);
    for (auto& v : in.input) v = static_cast<std::int32_t>(pick(0, 1000));
    return in;
}

/// Sums the level/leaves task counts of a recorded session and checks
/// they reconstruct the full tree, however the run was scheduled.
void check_conservation(const Instance& in, const trace::TraceSession& ts) {
    std::map<std::uint64_t, std::uint64_t> level_tasks;
    std::uint64_t leaf_tasks = 0;
    for (const trace::Span& s : ts.spans()) {
        if (s.kind == trace::SpanKind::kLevel) {
            level_tasks[s.attrs.level] += s.attrs.tasks;
        } else if (s.kind == trace::SpanKind::kLeaves) {
            leaf_tasks += s.attrs.tasks;
        }
    }
    EXPECT_EQ(level_tasks.size(), in.levels) << "levels touched";
    for (const auto& [lvl, tasks] : level_tasks) {
        ASSERT_LT(lvl, in.levels);
        EXPECT_EQ(tasks, 1ull << lvl) << "tasks at level " << lvl;
    }
    EXPECT_EQ(leaf_tasks, in.n / in.base) << "leaf blocks";
}

/// Checks one executor's report, trace, and (functional) output against
/// the sequential reference.
void check_run(const Instance& in, const ExecReport& rep, const trace::TraceSession& ts,
               const std::vector<std::int32_t>& out, bool functional,
               const std::vector<std::int32_t>* reference) {
    EXPECT_TRUE(std::isfinite(rep.total));
    EXPECT_GT(rep.total, 0.0);
    check_conservation(in, ts);
    if (!functional) return;
    if (reference != nullptr) {
        EXPECT_EQ(out, *reference) << "output differs from the sequential run";
    }
    if (in.sorts) {
        EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    } else {
        std::int64_t acc = in.reduce == 0 ? 0
                                          : static_cast<std::int64_t>(in.input[0]);
        for (std::size_t i = in.reduce == 0 ? 0 : 1; i < in.input.size(); ++i) {
            const auto v = static_cast<std::int64_t>(in.input[i]);
            if (in.reduce == 0) acc += v;
            if (in.reduce == 1) acc = std::max(acc, v);
            if (in.reduce == 2) acc = std::min(acc, v);
        }
        EXPECT_EQ(static_cast<std::int64_t>(out[0]), acc) << "fold value";
    }
}

TEST(PropertyHarness, RandomInstancesAgreeAcrossExecutorsAndModes) {
    constexpr int kCases = 200;
    std::mt19937_64 master(0x5eed2026'08'05ull);
    for (int c = 0; c < kCases; ++c) {
        const Instance in = make_instance(master());
        SCOPED_TRACE(::testing::Message()
                     << "case " << c << " seed=" << in.seed << " alg=" << in.alg->name()
                     << " n=" << in.n << " p=" << in.hw.cpu.p << " g=" << in.hw.gpu.g
                     << " alpha=" << in.alpha << " y=" << in.y << " K=" << in.chunks);

        for (const bool functional : {true, false}) {
            ExecOptions opts;
            opts.functional = functional;
            AdvancedOptions adv;
            adv.exec = opts;
            PipelinedOptions pip;
            pip.chunks = in.chunks;
            pip.exec = opts;

            // Sequential run: the bit-exact reference for every other
            // executor in this mode.
            sim::Hpu h(in.hw);
            std::vector<std::int32_t> ref = in.input;
            {
                trace::TraceSession ts;
                ExecOptions o = opts;
                o.trace = &ts;
                const auto rep = run_sequential(h.cpu(), *in.alg, std::span(ref), o);
                check_run(in, rep, ts, ref, functional, nullptr);
            }
            auto against_ref = [&](auto&& run) {
                std::vector<std::int32_t> data = in.input;
                trace::TraceSession ts;
                ExecOptions o = opts;
                o.trace = &ts;
                const ExecReport rep = run(std::span(data), o);
                check_run(in, rep, ts, data, functional, &ref);
                return rep;
            };

            against_ref([&](std::span<std::int32_t> d, const ExecOptions& o) {
                return run_multicore(h.cpu(), *in.alg, d, o);
            });
            against_ref([&](std::span<std::int32_t> d, const ExecOptions& o) {
                return run_gpu(h, *in.alg, d, o);
            });
            against_ref([&](std::span<std::int32_t> d, const ExecOptions& o) {
                return run_basic_hybrid(h, *in.alg, d, o);
            });
            against_ref([&](std::span<std::int32_t> d, const ExecOptions& o) {
                AdvancedOptions a = adv;
                a.exec = o;
                return run_advanced_hybrid(h, *in.alg, d, in.alpha, in.y, a);
            });
            const ExecReport prep =
                against_ref([&](std::span<std::int32_t> d, const ExecOptions& o) {
                    PipelinedOptions p = pip;
                    p.exec = o;
                    return run_pipelined_hybrid(h, *in.alg, d, in.alpha, in.y, p);
                });
            EXPECT_GE(prep.chunks, 1u);
            EXPECT_LE(prep.chunks, in.chunks);
        }
    }
}

// ---------------------------------------------------------------------------
// Irregular trees: the same two properties over dynamic task lists.
// Instances are quickhull / closest-pair / Karatsuba at sizes no regular
// executor accepts (primes, odd halves); conservation is span-derived —
// summing the `tasks` attribute of the kLevel spans under the expand phase
// must reconstruct ExecReport::tasks_spawned, empty branches included.

/// One randomized irregular instance over element type T.
template <typename T>
struct IrregularInstance {
    std::uint64_t seed = 0;
    std::unique_ptr<IrregularLevelAlgorithm<T>> alg;
    std::vector<T> input;
    sim::HpuParams hw;
    std::uint64_t chunks = 1;
    /// Ground truth beyond bit-exactness, checked on the sequential output.
    std::function<void(const std::vector<T>&, const std::vector<T>&)> truth;
};

/// Sums kLevel span task counts under the expand phase(s).
std::uint64_t expand_level_tasks(const trace::TraceSession& ts) {
    std::vector<trace::SpanId> phases;
    for (const trace::Span& s : ts.spans()) {
        if (s.kind == trace::SpanKind::kPhase && s.label.size() >= 7 &&
            s.label.compare(s.label.size() - 7, 7, "/expand") == 0) {
            phases.push_back(s.id);
        }
    }
    std::uint64_t tasks = 0;
    for (const trace::Span& s : ts.spans()) {
        if (s.kind != trace::SpanKind::kLevel) continue;
        for (const trace::SpanId p : phases) {
            if (s.parent == p) {
                tasks += s.attrs.tasks;
                break;
            }
        }
    }
    return tasks;
}

/// Runs one irregular instance through all six executors in one mode and
/// checks bit-exact outputs plus span-derived task conservation.
template <typename T>
void run_irregular_instance(const IrregularInstance<T>& in, bool functional) {
    ExecOptions opts;
    opts.functional = functional;
    sim::Hpu h(in.hw);

    std::vector<T> ref = in.input;
    std::uint64_t ref_spawned = 0;
    {
        trace::TraceSession ts;
        ExecOptions o = opts;
        o.trace = &ts;
        const ExecReport rep = run_sequential(h.cpu(), *in.alg, std::span(ref), o);
        EXPECT_TRUE(std::isfinite(rep.total));
        EXPECT_GT(rep.total, 0.0);
        EXPECT_GT(rep.tasks_spawned, 0u);
        EXPECT_EQ(expand_level_tasks(ts), rep.tasks_spawned) << "sequential conservation";
        ref_spawned = rep.tasks_spawned;
        if (functional && in.truth) in.truth(in.input, ref);
    }

    auto against_ref = [&](const char* label, auto&& run) {
        std::vector<T> data = in.input;
        trace::TraceSession ts;
        ExecOptions o = opts;
        o.trace = &ts;
        const ExecReport rep = run(std::span(data), o);
        EXPECT_TRUE(std::isfinite(rep.total)) << label;
        EXPECT_GT(rep.total, 0.0) << label;
        if (functional) {
            EXPECT_EQ(data, ref) << label << ": output differs from the sequential run";
        }
        EXPECT_EQ(rep.tasks_spawned, ref_spawned) << label << ": tree shape diverged";
        EXPECT_EQ(expand_level_tasks(ts), rep.tasks_spawned) << label << ": conservation";
        return rep;
    };

    against_ref("multicore", [&](std::span<T> d, const ExecOptions& o) {
        return run_multicore(h.cpu(), *in.alg, d, o);
    });
    against_ref("gpu", [&](std::span<T> d, const ExecOptions& o) {
        return run_gpu(h, *in.alg, d, o);
    });
    against_ref("basic-hybrid", [&](std::span<T> d, const ExecOptions& o) {
        return run_basic_hybrid(h, *in.alg, d, o);
    });
    const ExecReport ra =
        against_ref("advanced-hybrid", [&](std::span<T> d, const ExecOptions& o) {
            AdvancedOptions a;
            a.exec = o;
            return run_advanced_hybrid(h, *in.alg, d, 0.5, 1, a);
        });
    EXPECT_GE(ra.alpha_effective, 0.0);
    EXPECT_LE(ra.alpha_effective, 1.0);
    const ExecReport rp =
        against_ref("pipelined-hybrid", [&](std::span<T> d, const ExecOptions& o) {
            PipelinedOptions p;
            p.chunks = in.chunks;
            p.exec = o;
            return run_pipelined_hybrid(h, *in.alg, d, 0.5, 1, p);
        });
    EXPECT_GE(rp.chunks, 1u);
    EXPECT_LE(rp.chunks, in.chunks);
}

sim::HpuParams random_irregular_hw(std::mt19937_64& rng) {
    auto pick = [&](std::uint64_t lo, std::uint64_t hi) {
        return lo + rng() % (hi - lo + 1);
    };
    auto real = [&](double lo, double hi) {
        return lo + (hi - lo) * (static_cast<double>(rng() >> 11) * 0x1.0p-53);
    };
    sim::HpuParams hw = platforms::hpu1();
    hw.name = "random-irregular";
    hw.cpu.p = pick(1, 8);
    hw.cpu.contention = 0.0;
    hw.gpu.g = 1ull << pick(4, 10);
    hw.gpu.gamma = real(0.01, 0.2);
    hw.link.lambda = real(0.0, 500.0);
    hw.link.delta = real(0.01, 1.0);
    return hw;
}

TEST(PropertyHarness, IrregularInstancesAgreeAcrossExecutorsAndModes) {
    constexpr int kCases = 200;
    std::mt19937_64 master(0xd1ceca5e202608ull);
    for (int c = 0; c < kCases; ++c) {
        const std::uint64_t seed = master();
        std::mt19937_64 rng(seed);
        auto pick = [&](std::uint64_t lo, std::uint64_t hi) {
            return lo + rng() % (hi - lo + 1);
        };
        const int kind = static_cast<int>(pick(0, 2));
        const std::uint64_t chunks = pick(1, 6);

        if (kind == 2) {
            IrregularInstance<std::int64_t> in;
            in.seed = seed;
            in.hw = random_irregular_hw(rng);
            in.chunks = chunks;
            in.alg = std::make_unique<algos::KaratsubaArray>();
            const std::uint64_t half = pick(2, 200);
            in.input.resize(2 * half);
            for (auto& v : in.input) {
                v = static_cast<std::int64_t>(pick(0, 200)) - 100;
            }
            in.truth = [half](const std::vector<std::int64_t>& input,
                              const std::vector<std::int64_t>& out) {
                std::vector<std::int64_t> want(2 * half, 0);
                for (std::uint64_t i = 0; i < half; ++i) {
                    for (std::uint64_t j = 0; j < half; ++j) {
                        want[i + j] += input[i] * input[half + j];
                    }
                }
                EXPECT_EQ(out, want) << "karatsuba product";
            };
            SCOPED_TRACE(::testing::Message() << "case " << c << " seed=" << seed
                                              << " alg=karatsuba half=" << half
                                              << " p=" << in.hw.cpu.p << " K=" << chunks);
            run_irregular_instance(in, /*functional=*/true);
            run_irregular_instance(in, /*functional=*/false);
            continue;
        }

        IrregularInstance<algos::Pt> in;
        in.seed = seed;
        in.hw = random_irregular_hw(rng);
        in.chunks = chunks;
        const std::uint64_t n = pick(2, 400);
        in.input.resize(n);
        for (auto& p : in.input) {
            p.x = static_cast<std::int64_t>(pick(0, 2000));
            p.y = static_cast<std::int64_t>(pick(0, 2000));
        }
        if (kind == 0) {
            auto qh = std::make_unique<algos::Quickhull>();
            const algos::Quickhull* qh_ptr = qh.get();
            in.alg = std::move(qh);
            in.truth = [qh_ptr](const std::vector<algos::Pt>& input,
                                const std::vector<algos::Pt>& out) {
                // Strict hull vertices (monotone chain) must all appear at
                // the front of the output, which finalize sorts and dedups.
                std::vector<algos::Pt> s = input;
                std::sort(s.begin(), s.end());
                s.erase(std::unique(s.begin(), s.end()), s.end());
                std::vector<algos::Pt> hull;
                if (s.size() < 2) {
                    hull = s;
                } else {
                    auto build = [&](auto begin, auto end) {
                        std::vector<algos::Pt> chain;
                        for (auto it = begin; it != end; ++it) {
                            while (chain.size() >= 2 &&
                                   algos::cross(chain[chain.size() - 2], chain.back(),
                                                *it) >= 0) {
                                chain.pop_back();
                            }
                            chain.push_back(*it);
                        }
                        return chain;
                    };
                    hull = build(s.begin(), s.end());
                    const auto upper = build(s.rbegin(), s.rend());
                    hull.insert(hull.end(), upper.begin() + 1, upper.end() - 1);
                }
                std::sort(hull.begin(), hull.end());
                hull.erase(std::unique(hull.begin(), hull.end()), hull.end());
                // The output hull sits sorted at the front of the array;
                // hull_count() reflects the run truth is checking (it is
                // called right after the sequential reference run).
                const std::uint64_t hc = qh_ptr->hull_count();
                ASSERT_LE(hc, out.size());
                ASSERT_GE(hc, hull.size()) << "fewer marks than strict hull vertices";
                const auto front = out.begin() + static_cast<std::ptrdiff_t>(hc);
                for (const algos::Pt& v : hull) {
                    EXPECT_TRUE(std::binary_search(out.begin(), front, v))
                        << "hull vertex (" << v.x << "," << v.y
                        << ") missing from quickhull output";
                }
            };
        } else {
            in.alg = std::make_unique<algos::ClosestPair>();
            in.truth = [](const std::vector<algos::Pt>& input,
                          const std::vector<algos::Pt>& out) {
                std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
                for (std::uint64_t i = 0; i < input.size(); ++i) {
                    for (std::uint64_t j = i + 1; j < input.size(); ++j) {
                        best = std::min(best, algos::dist2(input[i], input[j]));
                    }
                }
                EXPECT_EQ(static_cast<std::uint64_t>(out[0].x), best)
                    << "closest-pair distance";
            };
        }
        SCOPED_TRACE(::testing::Message()
                     << "case " << c << " seed=" << seed << " alg=" << in.alg->name()
                     << " n=" << n << " p=" << in.hw.cpu.p << " g=" << in.hw.gpu.g
                     << " K=" << chunks);
        run_irregular_instance(in, /*functional=*/true);
        run_irregular_instance(in, /*functional=*/false);
    }
}

}  // namespace
}  // namespace hpu::core
