// Property-based parity harness: seeded random D&C instances (algorithm,
// input size, platform, scheduler knobs) run through every executor in
// both functional and analytic mode. Two properties must hold for every
// instance:
//  * bit-identical outputs — every functional executor produces exactly
//    the sequential run's array (and the ground truth: sorted order for
//    the mergesorts, the fold value for the reductions);
//  * conserved total work — summing the task counts of the recorded
//    level/leaves spans across all units reconstructs the full tree:
//    2^i tasks at level i and n / base leaf blocks, however the schedule
//    split the array.
// Failures print the reproducing case seed via SCOPED_TRACE.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <span>
#include <vector>

#include "algos/binary_reduce.hpp"
#include "algos/mergesort.hpp"
#include "algos/mergesort_blocked.hpp"
#include "core/hybrid.hpp"
#include "core/pipeline.hpp"
#include "platforms/platforms.hpp"
#include "trace/span.hpp"

namespace hpu::core {
namespace {

/// One randomized instance: what to run and what the truth is.
struct Instance {
    std::uint64_t seed = 0;
    std::unique_ptr<LevelAlgorithm<std::int32_t>> alg;
    bool sorts = false;
    int reduce = -1;  ///< 0 = sum, 1 = max, 2 = min (when not a sort)
    std::uint64_t base = 1;
    std::uint64_t n = 0;
    std::uint64_t levels = 0;
    sim::HpuParams hw;
    double alpha = 0.5;
    std::uint64_t y = 1;
    std::uint64_t chunks = 1;
    std::vector<std::int32_t> input;
};

Instance make_instance(std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    auto pick = [&](std::uint64_t lo, std::uint64_t hi) {
        return lo + rng() % (hi - lo + 1);
    };
    auto real = [&](double lo, double hi) {
        return lo + (hi - lo) * (static_cast<double>(rng() >> 11) * 0x1.0p-53);
    };

    Instance in;
    in.seed = seed;
    in.hw = platforms::hpu1();
    in.hw.name = "random";
    in.hw.cpu.p = pick(1, 8);
    in.hw.cpu.contention = 0.0;
    in.hw.gpu.g = 1ull << pick(4, 12);
    in.hw.gpu.gamma = real(0.005, 0.05);
    in.hw.link.lambda = real(0.0, 2000.0);
    in.hw.link.delta = real(0.25, 4.0);

    switch (pick(0, 5)) {
        case 0:
            in.alg = std::make_unique<algos::MergesortPlain<std::int32_t>>();
            in.sorts = true;
            break;
        case 1:
            in.alg = std::make_unique<algos::MergesortCoalesced<std::int32_t>>();
            in.sorts = true;
            break;
        case 2:
            in.base = 1ull << pick(1, 3);
            in.alg = std::make_unique<algos::MergesortBlocked<std::int32_t>>(in.base);
            in.sorts = true;
            break;
        case 3:
            in.alg = std::make_unique<algos::DcSum<std::int32_t>>(
                algos::make_sum<std::int32_t>());
            in.reduce = 0;
            break;
        case 4:
            in.alg = std::make_unique<algos::DcMax<std::int32_t>>(
                algos::make_max<std::int32_t>());
            in.reduce = 1;
            break;
        default:
            in.alg = std::make_unique<algos::DcMin<std::int32_t>>(
                algos::make_min<std::int32_t>());
            in.reduce = 2;
            break;
    }

    in.levels = pick(7, 10);
    in.n = in.base << in.levels;
    in.alpha = real(0.1, 0.9);
    in.y = pick(1, in.levels);
    in.chunks = pick(1, 8);
    in.input.resize(in.n);
    for (auto& v : in.input) v = static_cast<std::int32_t>(pick(0, 1000));
    return in;
}

/// Sums the level/leaves task counts of a recorded session and checks
/// they reconstruct the full tree, however the run was scheduled.
void check_conservation(const Instance& in, const trace::TraceSession& ts) {
    std::map<std::uint64_t, std::uint64_t> level_tasks;
    std::uint64_t leaf_tasks = 0;
    for (const trace::Span& s : ts.spans()) {
        if (s.kind == trace::SpanKind::kLevel) {
            level_tasks[s.attrs.level] += s.attrs.tasks;
        } else if (s.kind == trace::SpanKind::kLeaves) {
            leaf_tasks += s.attrs.tasks;
        }
    }
    EXPECT_EQ(level_tasks.size(), in.levels) << "levels touched";
    for (const auto& [lvl, tasks] : level_tasks) {
        ASSERT_LT(lvl, in.levels);
        EXPECT_EQ(tasks, 1ull << lvl) << "tasks at level " << lvl;
    }
    EXPECT_EQ(leaf_tasks, in.n / in.base) << "leaf blocks";
}

/// Checks one executor's report, trace, and (functional) output against
/// the sequential reference.
void check_run(const Instance& in, const ExecReport& rep, const trace::TraceSession& ts,
               const std::vector<std::int32_t>& out, bool functional,
               const std::vector<std::int32_t>* reference) {
    EXPECT_TRUE(std::isfinite(rep.total));
    EXPECT_GT(rep.total, 0.0);
    check_conservation(in, ts);
    if (!functional) return;
    if (reference != nullptr) {
        EXPECT_EQ(out, *reference) << "output differs from the sequential run";
    }
    if (in.sorts) {
        EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    } else {
        std::int64_t acc = in.reduce == 0 ? 0
                                          : static_cast<std::int64_t>(in.input[0]);
        for (std::size_t i = in.reduce == 0 ? 0 : 1; i < in.input.size(); ++i) {
            const auto v = static_cast<std::int64_t>(in.input[i]);
            if (in.reduce == 0) acc += v;
            if (in.reduce == 1) acc = std::max(acc, v);
            if (in.reduce == 2) acc = std::min(acc, v);
        }
        EXPECT_EQ(static_cast<std::int64_t>(out[0]), acc) << "fold value";
    }
}

TEST(PropertyHarness, RandomInstancesAgreeAcrossExecutorsAndModes) {
    constexpr int kCases = 200;
    std::mt19937_64 master(0x5eed2026'08'05ull);
    for (int c = 0; c < kCases; ++c) {
        const Instance in = make_instance(master());
        SCOPED_TRACE(::testing::Message()
                     << "case " << c << " seed=" << in.seed << " alg=" << in.alg->name()
                     << " n=" << in.n << " p=" << in.hw.cpu.p << " g=" << in.hw.gpu.g
                     << " alpha=" << in.alpha << " y=" << in.y << " K=" << in.chunks);

        for (const bool functional : {true, false}) {
            ExecOptions opts;
            opts.functional = functional;
            AdvancedOptions adv;
            adv.exec = opts;
            PipelinedOptions pip;
            pip.chunks = in.chunks;
            pip.exec = opts;

            // Sequential run: the bit-exact reference for every other
            // executor in this mode.
            sim::Hpu h(in.hw);
            std::vector<std::int32_t> ref = in.input;
            {
                trace::TraceSession ts;
                ExecOptions o = opts;
                o.trace = &ts;
                const auto rep = run_sequential(h.cpu(), *in.alg, std::span(ref), o);
                check_run(in, rep, ts, ref, functional, nullptr);
            }
            auto against_ref = [&](auto&& run) {
                std::vector<std::int32_t> data = in.input;
                trace::TraceSession ts;
                ExecOptions o = opts;
                o.trace = &ts;
                const ExecReport rep = run(std::span(data), o);
                check_run(in, rep, ts, data, functional, &ref);
                return rep;
            };

            against_ref([&](std::span<std::int32_t> d, const ExecOptions& o) {
                return run_multicore(h.cpu(), *in.alg, d, o);
            });
            against_ref([&](std::span<std::int32_t> d, const ExecOptions& o) {
                return run_gpu(h, *in.alg, d, o);
            });
            against_ref([&](std::span<std::int32_t> d, const ExecOptions& o) {
                return run_basic_hybrid(h, *in.alg, d, o);
            });
            against_ref([&](std::span<std::int32_t> d, const ExecOptions& o) {
                AdvancedOptions a = adv;
                a.exec = o;
                return run_advanced_hybrid(h, *in.alg, d, in.alpha, in.y, a);
            });
            const ExecReport prep =
                against_ref([&](std::span<std::int32_t> d, const ExecOptions& o) {
                    PipelinedOptions p = pip;
                    p.exec = o;
                    return run_pipelined_hybrid(h, *in.alg, d, in.alpha, in.y, p);
                });
            EXPECT_GE(prep.chunks, 1u);
            EXPECT_LE(prep.chunks, in.chunks);
        }
    }
}

}  // namespace
}  // namespace hpu::core
