// Pooled-vs-inline determinism sweep: the tentpole invariant of the
// host-parallel functional engine is that a util::ThreadPool accelerates
// wall-clock only. Every algorithm × executor × mode must produce
// bit-identical ExecReports, trace span trees, output arrays, and analysis
// findings whether the functional bodies ran inline (workers = 0) or
// across a pool (workers = hardware_concurrency). The sweep also pins the
// raw sim layer: Device launches with non-uniform item costs and CpuUnit
// levels keep their LaunchResult / LevelResult — including the
// per-category OpCounter split — exactly equal under pooling.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "algos/binary_reduce.hpp"
#include "algos/closest_pair.hpp"
#include "algos/karatsuba.hpp"
#include "algos/mergesort.hpp"
#include "algos/mergesort_blocked.hpp"
#include "algos/quickhull.hpp"
#include "core/hybrid.hpp"
#include "core/pipeline.hpp"
#include "platforms/platforms.hpp"
#include "trace/span.hpp"
#include "util/thread_pool.hpp"

namespace hpu::core {
namespace {

std::size_t pooled_workers() {
    return std::max(2u, std::thread::hardware_concurrency());
}

/// Small machine tuned so deep levels span several waves (g = 64) and the
/// CPU schedules across several virtual cores — both pooled code paths get
/// real multi-chunk work.
sim::HpuParams small_hw() {
    sim::HpuParams hw = platforms::hpu1();
    hw.name = "determinism-sweep";
    hw.cpu.p = 4;
    hw.cpu.contention = 0.0;
    hw.gpu.g = 64;
    return hw;
}

struct AlgoCase {
    std::unique_ptr<LevelAlgorithm<std::int32_t>> alg;
    std::uint64_t base = 1;
};

std::vector<AlgoCase> algo_cases() {
    std::vector<AlgoCase> cases;
    cases.push_back({std::make_unique<algos::MergesortPlain<std::int32_t>>(), 1});
    cases.push_back({std::make_unique<algos::MergesortCoalesced<std::int32_t>>(), 1});
    cases.push_back({std::make_unique<algos::MergesortBlocked<std::int32_t>>(4), 4});
    cases.push_back(
        {std::make_unique<algos::DcSum<std::int32_t>>(algos::make_sum<std::int32_t>()), 1});
    cases.push_back(
        {std::make_unique<algos::DcMax<std::int32_t>>(algos::make_max<std::int32_t>()), 1});
    cases.push_back(
        {std::make_unique<algos::DcMin<std::int32_t>>(algos::make_min<std::int32_t>()), 1});
    return cases;
}

std::vector<std::int32_t> make_input(std::uint64_t n) {
    std::vector<std::int32_t> v(n);
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    for (auto& e : v) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        e = static_cast<std::int32_t>(x % 10000);
    }
    return v;
}

/// Everything one run produces that the invariant covers. Templated on the
/// element type so the irregular algorithms (Pt, int64) ride the same sweep.
template <typename T>
struct RunArtifacts {
    ExecReport rep;
    std::vector<trace::Span> spans;
    std::vector<T> out;
    std::vector<std::string> findings;
    std::uint64_t launches_checked = 0;
    std::uint64_t launches_skipped = 0;
    std::uint64_t findings_suppressed = 0;
};

constexpr const char* kExecutors[] = {"sequential", "multicore", "gpu",
                                      "basic",      "advanced",  "pipelined"};

template <typename T>
RunArtifacts<T> run_one(util::ThreadPool* pool, int executor, const LevelAlgorithm<T>& alg,
                        const std::vector<T>& input, bool functional) {
    sim::Hpu h(small_hw(), pool);
    trace::TraceSession ts;
    ExecOptions opts;
    opts.functional = functional;
    opts.validate = functional;  // analysis findings are part of the invariant
    opts.trace = &ts;

    RunArtifacts<T> art;
    art.out = input;
    std::span<T> data(art.out);
    switch (executor) {
        case 0: art.rep = run_sequential(h.cpu(), alg, data, opts); break;
        case 1: art.rep = run_multicore(h.cpu(), alg, data, opts); break;
        case 2: art.rep = run_gpu(h, alg, data, opts); break;
        case 3: art.rep = run_basic_hybrid(h, alg, data, opts); break;
        case 4: {
            AdvancedOptions adv;
            adv.exec = opts;
            art.rep = run_advanced_hybrid(h, alg, data, 0.3, 2, adv);
            break;
        }
        default: {
            PipelinedOptions pip;
            pip.chunks = 4;
            pip.exec = opts;
            art.rep = run_pipelined_hybrid(h, alg, data, 0.3, 2, pip);
            break;
        }
    }
    art.spans = ts.spans();
    for (const auto& f : art.rep.analysis.findings) art.findings.push_back(f.message());
    art.launches_checked = art.rep.analysis.launches_checked;
    art.launches_skipped = art.rep.analysis.launches_skipped;
    art.findings_suppressed = art.rep.analysis.findings_suppressed;
    return art;
}

template <typename T>
void expect_identical(const RunArtifacts<T>& a, const RunArtifacts<T>& b) {
    // ExecReport, field by field, exact (doubles included: the fold order
    // is pinned, so even floating maxima must match bit for bit).
    EXPECT_EQ(a.rep.total, b.rep.total);
    EXPECT_EQ(a.rep.cpu_busy, b.rep.cpu_busy);
    EXPECT_EQ(a.rep.gpu_busy, b.rep.gpu_busy);
    EXPECT_EQ(a.rep.transfer, b.rep.transfer);
    EXPECT_EQ(a.rep.finish, b.rep.finish);
    EXPECT_EQ(a.rep.levels_cpu, b.rep.levels_cpu);
    EXPECT_EQ(a.rep.levels_gpu, b.rep.levels_gpu);
    EXPECT_EQ(a.rep.alpha_effective, b.rep.alpha_effective);
    EXPECT_EQ(a.rep.chunks, b.rep.chunks);
    EXPECT_EQ(a.rep.tasks_spawned, b.rep.tasks_spawned);

    // Functional results.
    EXPECT_EQ(a.out, b.out);

    // Analysis findings.
    EXPECT_EQ(a.findings, b.findings);
    EXPECT_EQ(a.launches_checked, b.launches_checked);
    EXPECT_EQ(a.launches_skipped, b.launches_skipped);
    EXPECT_EQ(a.findings_suppressed, b.findings_suppressed);

    // Trace span trees, field by field.
    ASSERT_EQ(a.spans.size(), b.spans.size());
    for (std::size_t i = 0; i < a.spans.size(); ++i) {
        const trace::Span& sa = a.spans[i];
        const trace::Span& sb = b.spans[i];
        SCOPED_TRACE(::testing::Message() << "span " << i << " label=" << sa.label);
        EXPECT_EQ(sa.id, sb.id);
        EXPECT_EQ(sa.parent, sb.parent);
        EXPECT_EQ(sa.kind, sb.kind);
        EXPECT_EQ(sa.unit, sb.unit);
        EXPECT_EQ(sa.label, sb.label);
        EXPECT_EQ(sa.start, sb.start);
        EXPECT_EQ(sa.end, sb.end);
        EXPECT_EQ(sa.attrs.level, sb.attrs.level);
        EXPECT_EQ(sa.attrs.tasks, sb.attrs.tasks);
        EXPECT_EQ(sa.attrs.items, sb.attrs.items);
        EXPECT_EQ(sa.attrs.waves, sb.attrs.waves);
        EXPECT_EQ(sa.attrs.ops, sb.attrs.ops);
        EXPECT_EQ(sa.attrs.work, sb.attrs.work);
        EXPECT_EQ(sa.attrs.bytes, sb.attrs.bytes);
        EXPECT_EQ(sa.attrs.coalesced_transactions, sb.attrs.coalesced_transactions);
        EXPECT_EQ(sa.attrs.strided_transactions, sb.attrs.strided_transactions);
        EXPECT_EQ(sa.attrs.extent_words, sb.attrs.extent_words);
        EXPECT_EQ(sa.attrs.imbalance, sb.attrs.imbalance);
    }
}

TEST(PoolDeterminism, AllAlgorithmsExecutorsAndModes) {
    util::ThreadPool inline_pool(0);
    util::ThreadPool pool(pooled_workers());
    for (const AlgoCase& c : algo_cases()) {
        const std::uint64_t n = c.base << 10;  // 10 levels: several waves at g = 64
        const auto input = make_input(n);
        for (const bool functional : {true, false}) {
            for (int e = 0; e < 6; ++e) {
                SCOPED_TRACE(::testing::Message()
                             << "alg=" << c.alg->name() << " executor=" << kExecutors[e]
                             << " functional=" << functional
                             << " workers=" << pool.worker_count());
                const auto serial = run_one(&inline_pool, e, *c.alg, input, functional);
                const auto pooled = run_one(&pool, e, *c.alg, input, functional);
                expect_identical(serial, pooled);
                // A null pool is the same configuration as a zero-worker one.
                const auto nopool = run_one(nullptr, e, *c.alg, input, functional);
                expect_identical(serial, nopool);
            }
        }
    }
}

/// Full executor × mode sweep for one irregular algorithm: pooled, inline,
/// and null-pool runs must agree on everything RunArtifacts covers — the
/// dynamically produced task lists (and so tasks_spawned, level spans, and
/// the per-level width/imbalance attrs) included.
template <typename T>
void sweep_irregular(const LevelAlgorithm<T>& alg, const std::vector<T>& input,
                     util::ThreadPool& inline_pool, util::ThreadPool& pool) {
    for (const bool functional : {true, false}) {
        for (int e = 0; e < 6; ++e) {
            SCOPED_TRACE(::testing::Message()
                         << "alg=" << alg.name() << " executor=" << kExecutors[e]
                         << " functional=" << functional << " n=" << input.size());
            const auto serial = run_one(&inline_pool, e, alg, input, functional);
            const auto pooled = run_one(&pool, e, alg, input, functional);
            expect_identical(serial, pooled);
            const auto nopool = run_one<T>(nullptr, e, alg, input, functional);
            expect_identical(serial, nopool);
            EXPECT_GT(serial.rep.tasks_spawned, 0u);  // the irregular path ran
        }
    }
}

TEST(PoolDeterminism, IrregularAlgorithmsExecutorsAndModes) {
    util::ThreadPool inline_pool(0);
    util::ThreadPool pool(pooled_workers());

    // Deterministic scattered points, non-power-of-two count.
    std::vector<algos::Pt> pts(300);
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    for (auto& p : pts) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        p.x = static_cast<std::int64_t>(x % 4001);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        p.y = static_cast<std::int64_t>(x % 4001);
    }

    algos::Quickhull qh;
    sweep_irregular<algos::Pt>(qh, pts, inline_pool, pool);

    algos::ClosestPair cp;
    sweep_irregular<algos::Pt>(cp, pts, inline_pool, pool);

    // Karatsuba input is two size-160 operands back to back.
    std::vector<std::int64_t> coeffs(2 * 160);
    for (auto& c : coeffs) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        c = static_cast<std::int64_t>(x % 201) - 100;
    }
    algos::KaratsubaArray ka;
    sweep_irregular<std::int64_t>(ka, coeffs, inline_pool, pool);
}

// Raw device layer: non-uniform per-item charges across several waves.
// The pooled fold must reproduce the serial max/sum sequence exactly —
// LaunchResult, DeviceStats, and the per-wave trace records all match.
TEST(PoolDeterminism, DeviceNonUniformWavesMatchSerial) {
    sim::DeviceParams dp = small_hw().gpu;
    dp.g = 8;  // 125 waves at 1000 items
    auto kernel = [](sim::WorkItem& wi) {
        const std::uint64_t id = wi.global_id();
        wi.charge_compute(1 + (id * 2654435761ull) % 97);
        wi.charge_mem(1 + id % 5, sim::Pattern::kCoalesced);
        if (id % 3 == 0) wi.charge_mem(2, sim::Pattern::kStrided);
    };

    sim::Device serial(dp);
    std::vector<sim::WaveTrace> serial_waves;
    serial.set_wave_trace(&serial_waves);
    const sim::LaunchResult rs = serial.launch(1000, kernel);

    util::ThreadPool pool(pooled_workers());
    sim::Device pooled(dp, &pool);
    std::vector<sim::WaveTrace> pooled_waves;
    pooled.set_wave_trace(&pooled_waves);
    const sim::LaunchResult rp = pooled.launch(1000, kernel);

    EXPECT_EQ(rs.time, rp.time);
    EXPECT_EQ(rs.items, rp.items);
    EXPECT_EQ(rs.waves, rp.waves);
    EXPECT_EQ(rs.max_item_ops, rp.max_item_ops);
    EXPECT_EQ(rs.total_ops.compute, rp.total_ops.compute);
    EXPECT_EQ(rs.total_ops.mem_coalesced, rp.total_ops.mem_coalesced);
    EXPECT_EQ(rs.total_ops.mem_strided, rp.total_ops.mem_strided);
    EXPECT_EQ(serial.stats().busy_time, pooled.stats().busy_time);

    ASSERT_EQ(serial_waves.size(), pooled_waves.size());
    for (std::size_t w = 0; w < serial_waves.size(); ++w) {
        SCOPED_TRACE(::testing::Message() << "wave " << w);
        EXPECT_EQ(serial_waves[w].first_item, pooled_waves[w].first_item);
        EXPECT_EQ(serial_waves[w].items, pooled_waves[w].items);
        EXPECT_EQ(serial_waves[w].duration, pooled_waves[w].duration);
        EXPECT_EQ(serial_waves[w].max_item_ops, pooled_waves[w].max_item_ops);
        EXPECT_EQ(serial_waves[w].ops.compute, pooled_waves[w].ops.compute);
        EXPECT_EQ(serial_waves[w].ops.mem_coalesced, pooled_waves[w].ops.mem_coalesced);
        EXPECT_EQ(serial_waves[w].ops.mem_strided, pooled_waves[w].ops.mem_strided);
    }
}

// Raw CPU layer: the pooled fold must keep the full per-category OpCounter
// split (compute / coalesced / strided), not just the scalar totals — the
// regression this test pins collapsed everything into `compute`.
TEST(PoolDeterminism, CpuLevelKeepsCategorySplit) {
    sim::CpuParams cp = small_hw().cpu;
    auto task = [](std::uint64_t i, sim::OpCounter& ops) {
        ops.charge_compute(3 + i % 11);
        ops.charge_mem(2 + i % 4, sim::Pattern::kCoalesced);
        if (i % 2 == 0) ops.charge_mem(1 + i % 3, sim::Pattern::kStrided);
    };

    sim::CpuUnit serial(cp);
    const sim::LevelResult rs = serial.run_level(777, task);

    util::ThreadPool pool(pooled_workers());
    sim::CpuUnit pooled(cp, &pool);
    const sim::LevelResult rp = pooled.run_level(777, task);

    EXPECT_EQ(rs.time, rp.time);
    EXPECT_EQ(rs.tasks, rp.tasks);
    EXPECT_EQ(rs.max_task_ops, rp.max_task_ops);
    EXPECT_EQ(rs.total_ops.compute, rp.total_ops.compute);
    EXPECT_EQ(rs.total_ops.mem_coalesced, rp.total_ops.mem_coalesced);
    EXPECT_EQ(rs.total_ops.mem_strided, rp.total_ops.mem_strided);
    EXPECT_GT(rp.total_ops.mem_coalesced, 0u);  // the split actually survived
    EXPECT_GT(rp.total_ops.mem_strided, 0u);
}

}  // namespace
}  // namespace hpu::core
