// Cross-cutting parity and invariant sweeps:
//  * analytic vs functional virtual times agree for uniform-cost
//    algorithms on every executor and platform;
//  * ExecReport invariants hold across an (algorithm × platform × n) grid;
//  * the advanced scheduler's report decomposition is internally
//    consistent across an (α, y) grid.
#include <gtest/gtest.h>

#include "algos/binary_reduce.hpp"
#include "algos/fft.hpp"
#include "algos/mergesort.hpp"
#include "core/hybrid.hpp"
#include "platforms/platforms.hpp"
#include "util/rng.hpp"

namespace hpu::core {
namespace {

enum class Alg { kMergePlain, kMergeCoalesced, kSum };

const LevelAlgorithm<std::int32_t>& algorithm(Alg a) {
    static const algos::MergesortPlain<std::int32_t> plain;
    static const algos::MergesortCoalesced<std::int32_t> coal;
    static const algos::DcSum<std::int32_t> sum = algos::make_sum<std::int32_t>();
    switch (a) {
        case Alg::kMergePlain: return plain;
        case Alg::kMergeCoalesced: return coal;
        case Alg::kSum: return sum;
    }
    throw util::HpuError("unreachable");
}

class AnalyticParity
    : public ::testing::TestWithParam<std::tuple<Alg, std::string, int>> {};

TEST_P(AnalyticParity, FunctionalAndAnalyticTimesAgree) {
    const auto [which, platform, lg] = GetParam();
    const auto& alg = algorithm(which);
    const std::uint64_t n = 1ull << lg;
    sim::Hpu h(platforms::by_name(platform).params);
    util::Rng rng(static_cast<std::uint64_t>(lg));
    auto fun_data = rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));
    std::vector<std::int32_t> ana_data(n);
    ExecOptions fun, ana;
    fun.functional = true;
    ana.functional = false;

    const auto tol = [](sim::Ticks t) { return std::max(1e-9, t * 1e-9); };

    {
        auto d = fun_data;
        const auto f = run_sequential(h.cpu(), alg, std::span(d), fun);
        const auto a = run_sequential(h.cpu(), alg, std::span(ana_data), ana);
        EXPECT_NEAR(f.total, a.total, tol(f.total)) << "sequential";
    }
    {
        auto d = fun_data;
        const auto f = run_multicore(h.cpu(), alg, std::span(d), fun);
        const auto a = run_multicore(h.cpu(), alg, std::span(ana_data), ana);
        EXPECT_NEAR(f.total, a.total, tol(f.total)) << "multicore";
    }
    {
        auto d = fun_data;
        const auto f = run_gpu(h, alg, std::span(d), fun);
        const auto a = run_gpu(h, alg, std::span(ana_data), ana);
        EXPECT_NEAR(f.total, a.total, tol(f.total)) << "gpu";
    }
    {
        auto d = fun_data;
        const auto f = run_basic_hybrid(h, alg, std::span(d), fun);
        const auto a = run_basic_hybrid(h, alg, std::span(ana_data), ana);
        EXPECT_NEAR(f.total, a.total, tol(f.total)) << "basic hybrid";
    }
    if (lg >= 8) {
        AdvancedOptions af, aa;
        af.exec = fun;
        aa.exec = ana;
        auto d = fun_data;
        const auto f = run_advanced_hybrid(h, alg, std::span(d), 0.2, 6, af);
        const auto a = run_advanced_hybrid(h, alg, std::span(ana_data), 0.2, 6, aa);
        EXPECT_NEAR(f.total, a.total, tol(f.total)) << "advanced hybrid";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AnalyticParity,
    ::testing::Combine(::testing::Values(Alg::kMergePlain, Alg::kMergeCoalesced, Alg::kSum),
                       ::testing::Values(std::string("HPU1"), std::string("HPU2")),
                       ::testing::Values(6, 10, 12)));

class AdvancedInvariants
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(AdvancedInvariants, ReportDecompositionIsConsistent) {
    const auto [alpha, y] = GetParam();
    const std::uint64_t n = 1 << 14;
    sim::Hpu h(platforms::hpu1());
    algos::MergesortCoalesced<std::int32_t> alg;
    AdvancedOptions adv;
    adv.exec.functional = false;
    std::vector<std::int32_t> dummy(n);
    const auto rep = run_advanced_hybrid(h, alg, std::span(dummy), alpha, y, adv);

    // The sync point dominates both unit timelines; the finish phase and
    // transfers are non-negative; the total covers everything.
    EXPECT_GE(rep.total, rep.cpu_busy);
    EXPECT_GE(rep.total, rep.gpu_busy + rep.transfer);
    EXPECT_GE(rep.finish, 0.0);
    EXPECT_GE(rep.total + 1e-9, std::max(rep.cpu_busy, rep.gpu_busy + rep.transfer) + rep.finish);
    // Exactly two transfers of the GPU slice each.
    const double slice = (1.0 - rep.alpha_effective) * static_cast<double>(n);
    EXPECT_NEAR(rep.transfer,
                2.0 * h.params().link.transfer_time(
                          static_cast<std::uint64_t>(std::llround(slice))),
                1e-6);
    // α quantization respects the split granularity: the split level is
    // clamped to min(y, log2(64)) slices (plus the 1-slice clamp when α
    // rounds to zero slices).
    const double slices = std::pow(2.0, std::min<std::uint64_t>(y, 6));
    EXPECT_NEAR(rep.alpha_effective, alpha, 1.0 / slices + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AlphaY, AdvancedInvariants,
                         ::testing::Combine(::testing::Values(0.1, 0.17, 0.33, 0.6),
                                            ::testing::Values(2, 6, 9, 13)));

TEST(Determinism, RepeatedRunsAreBitIdentical) {
    // The virtual clock must be noise-free: two identical runs produce the
    // same times to the last bit (this is what makes the golden figures
    // reproducible).
    const std::uint64_t n = 1 << 12;
    util::Rng rng(4);
    const auto base = rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));
    algos::MergesortCoalesced<std::int32_t> alg;
    sim::Ticks first = 0;
    for (int run = 0; run < 3; ++run) {
        sim::Hpu h(platforms::hpu1());
        auto d = base;
        const auto rep = run_advanced_hybrid(h, alg, std::span(d), 0.2, 7);
        if (run == 0) {
            first = rep.total;
        } else {
            EXPECT_EQ(rep.total, first);
        }
    }
}

TEST(Determinism, TimelineMatchesReport) {
    sim::Hpu h(platforms::hpu1());
    algos::MergesortCoalesced<std::int32_t> alg;
    util::Rng rng(8);
    auto d = rng.int_vector(1 << 12, 0, 1 << 13);
    const auto rep = run_advanced_hybrid(h, alg, std::span(d), 0.25, 8);
    // The timeline's transfer totals equal the report's.
    const auto& tl = h.timeline();
    EXPECT_NEAR(tl.total(sim::EventKind::kTransferToGpu) +
                    tl.total(sim::EventKind::kTransferToCpu),
                rep.transfer, 1e-9);
    // The last event ends at or before the report's total (the finish
    // phase is the last recorded event).
    EXPECT_LE(tl.span_end(), rep.total + 1e-6);
}

}  // namespace
}  // namespace hpu::core
