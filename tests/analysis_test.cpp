// Tests of the hpu::analysis correctness passes (ISSUE 1): the wave race
// detector, the buffer-residency lint, and the schedule-independence
// checker — first against hand-built traces, then end-to-end through the
// executors with seeded defective algorithms, and finally as a clean sweep
// over every real algorithm × executor combination with validation on.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdlib>
#include <numeric>

#include "algos/binary_reduce.hpp"
#include "algos/closest_pair.hpp"
#include "algos/fft.hpp"
#include "algos/karatsuba.hpp"
#include "algos/quickhull.hpp"
#include "algos/mergesort.hpp"
#include "algos/mergesort_blocked.hpp"
#include "analysis/race.hpp"
#include "analysis/report.hpp"
#include "analysis/residency.hpp"
#include "analysis/schedule.hpp"
#include "analysis/validate.hpp"
#include "core/executors.hpp"
#include "core/hybrid.hpp"
#include "platforms/platforms.hpp"
#include "util/rng.hpp"
#include "verify/verify.hpp"

namespace hpu::analysis {
namespace {

std::uint64_t count_kind(const AnalysisReport& r, FindingKind k) {
    std::uint64_t c = 0;
    for (const auto& f : r.findings) c += f.kind == k ? 1 : 0;
    return c;
}

// ---------------------------------------------------------------- races

TEST(RaceDetector, FlagsWriteWriteOverlap) {
    std::vector<sim::ItemAccessLog> items(2);
    items[0].writes.push_back({0, 4, 1});  // words 0..3
    items[1].writes.push_back({2, 4, 1});  // words 2..5 — overlap at 2, 3
    AnalysisReport rep;
    detect_races(items, /*wave_width=*/1, "unit/ww", rep);
    ASSERT_EQ(rep.findings.size(), 1u);  // deduped per item pair
    const Finding& f = rep.findings[0];
    EXPECT_EQ(f.kind, FindingKind::kWriteWriteRace);
    EXPECT_EQ(f.severity, Severity::kError);
    EXPECT_EQ(f.item_a, 0u);
    EXPECT_EQ(f.item_b, 1u);
    EXPECT_EQ(f.wave_b, 1u);  // wave_width 1: item id == wave id
    EXPECT_EQ(f.address, 2u);
    EXPECT_NE(f.message().find("write-write-race"), std::string::npos);
    EXPECT_NE(f.message().find("unit/ww"), std::string::npos);
    EXPECT_FALSE(rep.clean());
}

TEST(RaceDetector, FlagsReadOfAnotherItemsWrite) {
    std::vector<sim::ItemAccessLog> items(2);
    items[0].writes.push_back({0, 4, 1});
    items[1].reads.push_back({3, 2, 1});  // reads 3, 4 — word 3 is written by item 0
    AnalysisReport rep;
    detect_races(items, 2, "unit/rw", rep);
    ASSERT_EQ(rep.findings.size(), 1u);
    EXPECT_EQ(rep.findings[0].kind, FindingKind::kReadWriteRace);
    EXPECT_EQ(rep.findings[0].item_a, 0u);  // the writer
    EXPECT_EQ(rep.findings[0].item_b, 1u);  // the reader
    EXPECT_EQ(rep.findings[0].address, 3u);
}

TEST(RaceDetector, CleanForDisjointSlices) {
    std::vector<sim::ItemAccessLog> items(4);
    for (std::uint64_t j = 0; j < 4; ++j) {
        items[j].reads.push_back({j * 8, 8, 1});
        items[j].writes.push_back({j * 8, 8, 1});
    }
    AnalysisReport rep;
    detect_races(items, 2, "unit/clean", rep);
    EXPECT_TRUE(rep.findings.empty());
    EXPECT_EQ(rep.launches_checked, 1u);
    EXPECT_TRUE(rep.clean());
}

TEST(RaceDetector, InterleavedColumnsAreExactlyDisjoint) {
    // The §6.3 coalesced layout: item j owns column j of a runs×m grid.
    // Address arithmetic, not heuristics, must prove these disjoint.
    const std::uint64_t runs = 8, m = 16;
    std::vector<sim::ItemAccessLog> items(runs);
    for (std::uint64_t j = 0; j < runs; ++j) items[j].writes.push_back({j, m, runs});
    AnalysisReport rep;
    detect_races(items, 4, "unit/columns", rep);
    EXPECT_TRUE(rep.findings.empty());
}

TEST(RaceDetector, OverlappingStridedWalksAreFlagged) {
    std::vector<sim::ItemAccessLog> items(2);
    items[0].writes.push_back({0, 4, 2});  // 0, 2, 4, 6
    items[1].writes.push_back({2, 4, 4});  // 2, 6, 10, 14 — collides at 2 and 6
    AnalysisReport rep;
    detect_races(items, 2, "unit/stride", rep);
    ASSERT_EQ(rep.findings.size(), 1u);
    EXPECT_EQ(rep.findings[0].kind, FindingKind::kWriteWriteRace);
    EXPECT_EQ(rep.findings[0].address, 2u);
}

TEST(RaceDetector, OversizedTraceIsSkippedNotSilentlyTruncated) {
    std::vector<sim::ItemAccessLog> items(1);
    items[0].writes.push_back({0, 1000, 1});
    AnalysisReport rep;
    RaceOptions opts;
    opts.max_words = 100;
    detect_races(items, 1, "unit/huge", rep, opts);
    EXPECT_TRUE(rep.findings.empty());
    EXPECT_EQ(rep.launches_checked, 0u);
    EXPECT_EQ(rep.launches_skipped, 1u);
}

TEST(RaceDetector, FailOnSkipSurfacesBudgetCappedLaunches) {
    std::vector<sim::ItemAccessLog> items(1);
    items[0].writes.push_back({0, 1000, 1});
    AnalysisReport rep;
    RaceOptions opts;
    opts.max_words = 100;
    opts.fail_on_skip = true;
    detect_races(items, 1, "unit/huge", rep, opts);
    EXPECT_EQ(rep.launches_skipped, 1u);
    ASSERT_EQ(rep.findings.size(), 1u);
    EXPECT_EQ(rep.findings[0].kind, FindingKind::kLaunchSkipped);
    EXPECT_EQ(rep.findings[0].severity, Severity::kError);
    EXPECT_FALSE(rep.clean());
}

TEST(RaceDetector, FindingCapCountsSuppressed) {
    // Items 1..19 each collide with item 0 on word 0: 19 distinct pairs,
    // cap is 8, so 11 must be tallied, not dropped.
    std::vector<sim::ItemAccessLog> items(20);
    for (auto& it : items) it.writes.push_back({0, 1, 1});
    AnalysisReport rep;
    detect_races(items, 4, "unit/cap", rep);
    EXPECT_EQ(rep.findings.size(), 8u);
    EXPECT_EQ(rep.findings_suppressed, 11u);
}

// ------------------------------------------------------------- residency

TEST(ResidencyLint, FlagsStaleHostRead) {
    sim::DeviceBuffer<int> buf(8);
    std::vector<sim::BufferEvent> log;
    buf.set_trace(&log);
    buf.copy_to_device();
    buf.device()[0] = 7;        // device now newer
    (void)buf.host_view()[0];   // reads the pre-kernel host copy
    AnalysisReport rep;
    lint_residency(log, "unit/buf", rep);
    EXPECT_EQ(count_kind(rep, FindingKind::kStaleHostRead), 1u);
    EXPECT_FALSE(rep.clean());
    EXPECT_NE(rep.findings[0].message().find("copy_to_host"), std::string::npos);
}

TEST(ResidencyLint, FlagsRedundantFullTransfer) {
    sim::DeviceBuffer<int> buf(8);
    std::vector<sim::BufferEvent> log;
    buf.set_trace(&log);
    buf.copy_to_device();
    buf.copy_to_device();  // device copy already valid — moves nothing new
    AnalysisReport rep;
    lint_residency(log, "unit/buf", rep);
    EXPECT_EQ(count_kind(rep, FindingKind::kRedundantTransfer), 1u);
    EXPECT_EQ(rep.findings[0].severity, Severity::kWarning);
    EXPECT_TRUE(rep.clean());  // warnings do not make a run unclean
}

TEST(ResidencyLint, FlagsHostWriteWhileDeviceCopyLive) {
    sim::DeviceBuffer<int> buf(8);
    std::vector<sim::BufferEvent> log;
    buf.set_trace(&log);
    buf.copy_to_device();
    buf.host()[0] = 1;  // kills the device copy; host_view() would not have
    AnalysisReport rep;
    lint_residency(log, "unit/buf", rep);
    EXPECT_EQ(count_kind(rep, FindingKind::kHostWriteWhileDeviceLive), 1u);
}

TEST(ResidencyLint, FlagsWriteOverStaleHostCopy) {
    sim::DeviceBuffer<int> buf(8);
    std::vector<sim::BufferEvent> log;
    buf.set_trace(&log);
    buf.copy_to_device();
    buf.device()[0] = 7;  // host copy now stale
    buf.host()[0] = 1;    // overwrites without reading back — results lost
    AnalysisReport rep;
    lint_residency(log, "unit/buf", rep);
    EXPECT_EQ(count_kind(rep, FindingKind::kStaleHostWrite), 1u);
}

TEST(ResidencyLint, CleanForCanonicalRoundTrip) {
    sim::DeviceBuffer<int> buf(8);
    std::vector<sim::BufferEvent> log;
    buf.set_trace(&log);
    buf.host()[0] = 1;
    buf.copy_to_device();
    buf.device()[0] = 2;
    buf.copy_to_host();
    (void)buf.host_view()[0];
    AnalysisReport rep;
    lint_residency(log, "unit/buf", rep);
    EXPECT_TRUE(rep.findings.empty());
}

// -------------------------------------------------------------- schedule

TEST(ScheduleChecker, FlagsOrderDependentKernel) {
    std::vector<int> data(4, 0);
    const std::vector<int> before = data;
    auto run_item = [&](std::uint64_t j) {
        data[0] = data[0] * 2 + static_cast<int>(j);  // non-commutative fold
    };
    for (std::uint64_t j = 0; j < 4; ++j) run_item(j);
    const std::vector<int> after = data;
    auto f = check_schedule_independence(std::span(data), std::span<const int>(before),
                                         std::span<const int>(after), 4, run_item,
                                         /*seed=*/4, "unit/order");
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->kind, FindingKind::kOrderDependent);
    EXPECT_EQ(data, after);  // canonical result restored despite the finding
}

TEST(ScheduleChecker, CleanForIndependentItemsAndRestores) {
    std::vector<int> data(8, -1);
    const std::vector<int> before = data;
    auto run_item = [&](std::uint64_t j) { data[j] = static_cast<int>(j) * 10; };
    for (std::uint64_t j = 0; j < 8; ++j) run_item(j);
    const std::vector<int> after = data;
    auto f = check_schedule_independence(std::span(data), std::span<const int>(before),
                                         std::span<const int>(after), 8, run_item, 8,
                                         "unit/indep");
    EXPECT_FALSE(f.has_value());
    EXPECT_EQ(data, after);
}

// ------------------------------------------------- seeded defective algos

/// Defect seed 1: every task folds into word 0 — write-write and
/// read-write races across items, and an order-dependent result. The
/// kernel *honestly declares* its accesses, so the race detector must
/// catch it from the trace alone.
class RacyAccumulate final : public core::LevelAlgorithm<int> {
public:
    std::string name() const override { return "racy-accumulate"; }
    std::uint64_t a() const override { return 2; }
    std::uint64_t b() const override { return 2; }
    model::Recurrence recurrence() const override { return model::sum_recurrence(4.0); }

    void run_task(std::span<int> data, std::uint64_t count, std::uint64_t j,
                  sim::OpCounter& ops) const override {
        const std::uint64_t sz = data.size() / count;
        data[0] = data[0] * 2 + data[j * sz];
        ops.charge_compute(2);
        ops.charge_mem(3, sim::Pattern::kStrided);
        ops.log_read(0, 1);
        ops.log_read(j * sz, 1);
        ops.log_write(0, 1);
    }

    // The symbolic declaration is just as honest as the access log, so the
    // static prover must refute it without running anything.
    std::optional<verify::TaskFootprint> footprint(
        const verify::FootprintQuery& query) const override {
        if (query.phase == verify::Phase::kLeaf) return verify::TaskFootprint{};
        verify::SymAccess word0;
        word0.base = verify::Sym::lit(0);
        word0.jcoef = verify::Sym::lit(0);
        verify::SymAccess own;
        own.base = verify::Sym::lit(0);
        own.jcoef = verify::Sym::size();
        verify::TaskFootprint fp;
        fp.reads = {word0, own};
        fp.writes = {word0};
        return fp;
    }
};

TEST(ExecutorValidation, StaticProverRefutesRacyAccumulateBeforeExecution) {
    RacyAccumulate alg;
    const auto srep = hpu::verify::prove_algorithm(alg);
    EXPECT_FALSE(srep.race_free());
    const auto* pp = srep.proof(hpu::verify::Phase::kCpuTask);
    ASSERT_NE(pp, nullptr);
    ASSERT_TRUE(pp->counterexample.has_value());
    // The witness names the fold word the runtime findings below hit.
    EXPECT_EQ(pp->counterexample->word, 0u);
    EXPECT_TRUE(pp->counterexample->write_write);
}

/// Defect seed 2: order-dependent like RacyAccumulate, but the kernel
/// *lies about its footprint* — it declares only its own slice. The race
/// detector cannot see the conflict; the schedule-independence re-run
/// must catch it behaviourally.
class SneakyOrderDependent final : public core::LevelAlgorithm<int> {
public:
    std::string name() const override { return "sneaky-order-dependent"; }
    std::uint64_t a() const override { return 2; }
    std::uint64_t b() const override { return 2; }
    model::Recurrence recurrence() const override { return model::sum_recurrence(4.0); }

    void run_task(std::span<int> data, std::uint64_t count, std::uint64_t j,
                  sim::OpCounter& ops) const override {
        const std::uint64_t sz = data.size() / count;
        data[0] = data[0] * 31 + static_cast<int>(j);
        ops.charge_compute(2);
        ops.charge_mem(3, sim::Pattern::kStrided);
        ops.log_read(j * sz, 1);   // declared: own slice only — a lie
        ops.log_write(j * sz, 1);
    }
};

core::ExecOptions validating() {
    core::ExecOptions opts;
    opts.validate = true;
    // Budget-capped launches must fail loudly in tests, not silently skip.
    opts.race.fail_on_skip = true;
    return opts;
}

TEST(ExecutorValidation, RacyKernelIsFlaggedOnTheGpuPath) {
    std::vector<int> data(64, 1);
    sim::Hpu h(platforms::hpu1());
    RacyAccumulate alg;
    const auto rep = core::run_gpu(h, alg, std::span(data), validating());
    EXPECT_FALSE(rep.analysis.clean());
    EXPECT_TRUE(rep.analysis.has(FindingKind::kWriteWriteRace));
    EXPECT_TRUE(rep.analysis.has(FindingKind::kReadWriteRace));
    // The honest trace also yields an order-dependence hit from the re-run.
    EXPECT_TRUE(rep.analysis.has(FindingKind::kOrderDependent));
}

TEST(ExecutorValidation, RacyKernelIsFlaggedOnTheCpuPath) {
    std::vector<int> data(64, 1);
    sim::Hpu h(platforms::hpu1());
    RacyAccumulate alg;
    const auto rep = core::run_multicore(h.cpu(), alg, std::span(data), validating());
    EXPECT_TRUE(rep.analysis.has(FindingKind::kWriteWriteRace));
    EXPECT_FALSE(rep.analysis.clean());
}

TEST(ExecutorValidation, UndeclaredOrderDependenceIsCaughtByReExecution) {
    std::vector<int> data(64, 1);
    sim::Hpu h(platforms::hpu1());
    SneakyOrderDependent alg;
    const auto rep = core::run_gpu(h, alg, std::span(data), validating());
    // The declared (false) footprint is race-free...
    EXPECT_FALSE(rep.analysis.has(FindingKind::kWriteWriteRace));
    // ...but the permuted re-run exposes the defect.
    EXPECT_TRUE(rep.analysis.has(FindingKind::kOrderDependent));
    EXPECT_FALSE(rep.analysis.clean());
}

TEST(ExecutorValidation, ValidationOffReportsNothing) {
    std::vector<int> data(64, 1);
    sim::Hpu h(platforms::hpu1());
    RacyAccumulate alg;
    core::ExecOptions opts;
    opts.validate = false;
    const auto rep = core::run_gpu(h, alg, std::span(data), opts);
    EXPECT_TRUE(rep.analysis.findings.empty());
    EXPECT_EQ(rep.analysis.launches_checked, 0u);
}

// ------------------------------------- seeded defective irregular algos

/// Defect seed 3 (irregular): every divide task of the dynamically
/// produced level folds into word 0 while its *declared extent* is a
/// disjoint slice — the extent check passes, so only the exact per-level
/// race detector over the logged accesses can trip. The log is honest;
/// the declaration is not.
class MisdeclaredIrregular final : public core::IrregularLevelAlgorithm<int> {
public:
    std::string name() const override { return "misdeclared-irregular"; }
    std::uint64_t a() const override { return 2; }
    std::uint64_t b() const override { return 2; }
    model::Recurrence recurrence() const override { return model::sum_recurrence(4.0); }

    core::TaskList root_tasks(std::span<int> data, sim::OpCounter& ops) const override {
        const std::uint64_t n = data.size();
        core::TaskList roots;
        roots.tasks.push_back(core::TaskDesc{0, n / 2, 0});
        roots.tasks.push_back(core::TaskDesc{n / 2, n, 0});
        ops.charge_compute(1);
        return roots;
    }

    void divide_task(std::span<int> data, const core::TaskDesc& t, std::uint64_t /*level*/,
                     std::vector<core::TaskDesc>& /*children*/,
                     sim::OpCounter& ops) const override {
        data[0] += data[t.begin];  // the fold the declaration hides
        ops.charge_compute(1);
        ops.charge_mem(2, sim::Pattern::kStrided);
        ops.log_read(t.begin, 1);
        ops.log_write(0, 1);  // outside the declared extent of task 1
    }

    bool has_combine() const override { return false; }

    std::vector<std::uint64_t> analytic_widths(std::uint64_t /*n*/) const override {
        return {2};
    }
};

/// Defect seed 4 (irregular): a quickhull whose partition loop "runs one
/// past the end" — the off-by-one write lands in the right sibling's first
/// word. Declared extents stay disjoint; the collision only exists in the
/// access logs of the two concurrent divide bodies.
class OverrunQuickhull final : public algos::Quickhull {
public:
    std::string name() const override { return "quickhull-overrun"; }

    void divide_task(std::span<algos::Pt> data, const core::TaskDesc& t, std::uint64_t level,
                     std::vector<core::TaskDesc>& children,
                     sim::OpCounter& ops) const override {
        algos::Quickhull::divide_task(data, t, level, children, ops);
        if (t.size() >= 2 && t.end < data.size() - 1) ops.log_write(t.end, 1);
    }
};

/// Defect seed 5 (irregular): a root frontier whose declared extents
/// overlap by one word — the pairwise-disjointness lint must flag the
/// task list itself, before any race materializes in the logs.
class OverlappingExtentsIrregular final : public core::IrregularLevelAlgorithm<int> {
public:
    std::string name() const override { return "overlapping-extents"; }
    std::uint64_t a() const override { return 2; }
    std::uint64_t b() const override { return 2; }
    model::Recurrence recurrence() const override { return model::sum_recurrence(4.0); }

    core::TaskList root_tasks(std::span<int> data, sim::OpCounter& ops) const override {
        const std::uint64_t n = data.size();
        core::TaskList roots;
        roots.tasks.push_back(core::TaskDesc{0, n / 2 + 1, 0});  // one word too far
        roots.tasks.push_back(core::TaskDesc{n / 2, n, 0});
        ops.charge_compute(1);
        return roots;
    }

    void divide_task(std::span<int> /*data*/, const core::TaskDesc& t, std::uint64_t /*level*/,
                     std::vector<core::TaskDesc>& /*children*/,
                     sim::OpCounter& ops) const override {
        ops.charge_compute(1);
        ops.log_read(t.begin, 1);
    }

    bool has_combine() const override { return false; }

    std::vector<std::uint64_t> analytic_widths(std::uint64_t /*n*/) const override {
        return {2};
    }
};

/// Points on a circle: both root regions of quickhull are non-empty and
/// adjacent (no collinear band), so the level-0 divide bodies are exactly
/// the two neighbours the overrun defect needs.
std::vector<algos::Pt> circle_points(std::uint64_t n) {
    std::vector<algos::Pt> pts;
    pts.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        const double th = 2.0 * 3.14159265358979323846 * static_cast<double>(i) /
                          static_cast<double>(n);
        pts.push_back({static_cast<std::int64_t>(1000.0 * std::cos(th)),
                       static_cast<std::int64_t>(1000.0 * std::sin(th))});
    }
    return pts;
}

TEST(IrregularValidation, MisdeclaredAccessSetTripsTheExactDetector) {
    sim::Hpu h(platforms::hpu1());
    MisdeclaredIrregular alg;
    std::vector<int> data(64, 1);
    auto rep = core::run_multicore(h.cpu(), alg, std::span(data), validating());
    EXPECT_TRUE(rep.analysis.has(FindingKind::kWriteWriteRace)) << rep.analysis.summary();
    EXPECT_FALSE(rep.analysis.clean());
    // No extent overlap: the *declaration* was fine, only the accesses lied.
    EXPECT_FALSE(rep.analysis.has(FindingKind::kExtentOverlap));

    data.assign(64, 1);
    rep = core::run_gpu(h, alg, std::span(data), validating());
    EXPECT_TRUE(rep.analysis.has(FindingKind::kWriteWriteRace)) << rep.analysis.summary();
    EXPECT_FALSE(rep.analysis.clean());
}

TEST(IrregularValidation, OverlappingPartitionWriteSurfacesInQuickhull) {
    sim::Hpu h(platforms::hpu1());
    auto pts = circle_points(32);

    // The honest quickhull on the same input is finding-free...
    algos::Quickhull clean_alg;
    clean_alg.prepare(pts.size());
    auto data = pts;
    auto rep = core::run_multicore(h.cpu(), clean_alg, std::span(data), validating());
    EXPECT_TRUE(rep.analysis.findings.empty()) << rep.analysis.summary();
    EXPECT_GT(rep.analysis.launches_checked, 0u);

    // ...and the one-past-the-end partition write is a write-write race
    // against the right sibling's own partition of the same level.
    OverrunQuickhull bad;
    bad.prepare(pts.size());
    data = pts;
    rep = core::run_multicore(h.cpu(), bad, std::span(data), validating());
    EXPECT_TRUE(rep.analysis.has(FindingKind::kWriteWriteRace)) << rep.analysis.summary();
    EXPECT_FALSE(rep.analysis.clean());
}

TEST(IrregularValidation, OverlappingDeclaredExtentsAreFlagged) {
    sim::Hpu h(platforms::hpu1());
    OverlappingExtentsIrregular alg;
    std::vector<int> data(64, 1);
    const auto rep = core::run_gpu(h, alg, std::span(data), validating());
    EXPECT_TRUE(rep.analysis.has(FindingKind::kExtentOverlap)) << rep.analysis.summary();
    EXPECT_FALSE(rep.analysis.clean());
}

TEST(IrregularValidation, ValidationOffReportsNothingOnTheIrregularPath) {
    sim::Hpu h(platforms::hpu1());
    MisdeclaredIrregular alg;
    std::vector<int> data(64, 1);
    core::ExecOptions opts;
    opts.validate = false;
    const auto rep = core::run_gpu(h, alg, std::span(data), opts);
    EXPECT_TRUE(rep.analysis.findings.empty());
    EXPECT_EQ(rep.analysis.launches_checked, 0u);
}

// --------------------------------------------- clean sweep over real algos

std::vector<std::int32_t> random_input(std::uint64_t n, std::uint64_t seed) {
    util::Rng rng(seed);
    return rng.int_vector(n, 0, static_cast<std::int64_t>(2 * n));
}

/// Runs one algorithm through every executor with validation on and
/// requires a finding-free report each time (the Alg. 3 independence
/// contract, now checked rather than assumed).
template <typename Alg>
void expect_clean_everywhere(Alg& alg, std::uint64_t n) {
    sim::Hpu h(platforms::hpu1());
    const auto base = random_input(n, n ^ 0xbeef);

    auto data = base;
    auto rep = core::run_sequential(h.cpu(), alg, std::span(data), validating());
    EXPECT_TRUE(rep.analysis.findings.empty()) << alg.name() << "/sequential:\n"
                                               << rep.analysis.summary();
    EXPECT_GT(rep.analysis.launches_checked, 0u);

    data = base;
    rep = core::run_multicore(h.cpu(), alg, std::span(data), validating());
    EXPECT_TRUE(rep.analysis.findings.empty()) << alg.name() << "/multicore:\n"
                                               << rep.analysis.summary();

    data = base;
    rep = core::run_gpu(h, alg, std::span(data), validating());
    EXPECT_TRUE(rep.analysis.findings.empty()) << alg.name() << "/gpu:\n"
                                               << rep.analysis.summary();

    data = base;
    rep = core::run_basic_hybrid(h, alg, std::span(data), validating());
    EXPECT_TRUE(rep.analysis.findings.empty()) << alg.name() << "/basic-hybrid:\n"
                                               << rep.analysis.summary();

    data = base;
    core::AdvancedOptions adv;
    adv.exec = validating();
    rep = core::run_advanced_hybrid(h, alg, std::span(data), 0.25, 3, adv);
    EXPECT_TRUE(rep.analysis.findings.empty()) << alg.name() << "/advanced-hybrid:\n"
                                               << rep.analysis.summary();
}

TEST(CleanSweep, MergesortPlain) {
    algos::MergesortPlain<std::int32_t> alg;
    expect_clean_everywhere(alg, 256);
}

TEST(CleanSweep, MergesortCoalesced) {
    algos::MergesortCoalesced<std::int32_t> alg;
    expect_clean_everywhere(alg, 256);
}

TEST(CleanSweep, MergesortBlocked) {
    algos::MergesortBlocked<std::int32_t> alg(16);
    expect_clean_everywhere(alg, 256);
}

TEST(CleanSweep, BinaryReductions) {
    auto sum = algos::make_sum<std::int32_t>();
    expect_clean_everywhere(sum, 256);
    auto mx = algos::make_max<std::int32_t>();
    expect_clean_everywhere(mx, 256);
}

TEST(CleanSweep, Fft) {
    const std::uint64_t n = 64;
    sim::Hpu h(platforms::hpu1());
    algos::DcFft alg;
    util::Rng rng(11);
    std::vector<std::complex<double>> base(n);
    for (auto& c : base) c = {rng.uniform_real(-1.0, 1.0), rng.uniform_real(-1.0, 1.0)};

    auto data = base;
    auto rep = core::run_gpu(h, alg, std::span(data), validating());
    EXPECT_TRUE(rep.analysis.findings.empty()) << rep.analysis.summary();

    data = base;
    rep = core::run_multicore(h.cpu(), alg, std::span(data), validating());
    EXPECT_TRUE(rep.analysis.findings.empty()) << rep.analysis.summary();
}

/// One irregular algorithm through every executor with validation on: the
/// dynamic task lists must declare disjoint extents and log race-free
/// accesses at every level, same contract as the regular algorithms.
template <typename T, typename Alg>
void expect_irregular_clean_everywhere(Alg& alg, const std::vector<T>& base) {
    sim::Hpu h(platforms::hpu1());
    alg.prepare(base.size());

    auto data = base;
    auto rep = core::run_sequential(h.cpu(), alg, std::span(data), validating());
    EXPECT_TRUE(rep.analysis.findings.empty()) << alg.name() << "/sequential:\n"
                                               << rep.analysis.summary();
    EXPECT_GT(rep.analysis.launches_checked, 0u);

    data = base;
    rep = core::run_multicore(h.cpu(), alg, std::span(data), validating());
    EXPECT_TRUE(rep.analysis.findings.empty()) << alg.name() << "/multicore:\n"
                                               << rep.analysis.summary();

    data = base;
    rep = core::run_gpu(h, alg, std::span(data), validating());
    EXPECT_TRUE(rep.analysis.findings.empty()) << alg.name() << "/gpu:\n"
                                               << rep.analysis.summary();

    data = base;
    rep = core::run_basic_hybrid(h, alg, std::span(data), validating());
    EXPECT_TRUE(rep.analysis.findings.empty()) << alg.name() << "/basic-hybrid:\n"
                                               << rep.analysis.summary();

    data = base;
    core::AdvancedOptions adv;
    adv.exec = validating();
    rep = core::run_advanced_hybrid(h, alg, std::span(data), 0.25, 3, adv);
    EXPECT_TRUE(rep.analysis.findings.empty()) << alg.name() << "/advanced-hybrid:\n"
                                               << rep.analysis.summary();
}

TEST(CleanSweep, IrregularQuickhull) {
    algos::Quickhull alg;
    expect_irregular_clean_everywhere(alg, circle_points(64));
}

TEST(CleanSweep, IrregularClosestPair) {
    algos::ClosestPair alg;
    util::Rng rng(21);
    std::vector<algos::Pt> pts(150);
    for (auto& p : pts) p = {rng.uniform_int(0, 5000), rng.uniform_int(0, 5000)};
    expect_irregular_clean_everywhere(alg, pts);
}

TEST(CleanSweep, IrregularKaratsuba) {
    algos::KaratsubaArray alg;
    util::Rng rng(22);
    std::vector<std::int64_t> coeffs(2 * 70);
    for (auto& c : coeffs) c = rng.uniform_int(-50, 50);
    expect_irregular_clean_everywhere(alg, coeffs);
}

TEST(CleanSweep, ValidationDoesNotPerturbResultsOrTime) {
    // The passes re-execute kernels and snapshot buffers; neither the
    // sorted output nor the virtual clock may change.
    const std::uint64_t n = 512;
    sim::Hpu h(platforms::hpu1());
    algos::MergesortCoalesced<std::int32_t> alg;
    auto plain = random_input(n, 77);
    auto checked = plain;
    core::ExecOptions off;
    off.validate = false;
    const auto rep_off = core::run_gpu(h, alg, std::span(plain), off);
    const auto rep_on = core::run_gpu(h, alg, std::span(checked), validating());
    EXPECT_EQ(plain, checked);
    EXPECT_TRUE(std::is_sorted(plain.begin(), plain.end()));
    EXPECT_DOUBLE_EQ(rep_off.total, rep_on.total);
    EXPECT_TRUE(rep_on.analysis.findings.empty()) << rep_on.analysis.summary();
}

// ------------------------------------------------------------ env gating

TEST(EnvGate, HpuValidateSeedsTheDefault) {
    ::unsetenv("HPU_VALIDATE");
    EXPECT_FALSE(core::ExecOptions{}.validate);
    ::setenv("HPU_VALIDATE", "1", 1);
    EXPECT_TRUE(core::ExecOptions{}.validate);
    ::setenv("HPU_VALIDATE", "off", 1);
    EXPECT_FALSE(core::ExecOptions{}.validate);
    ::setenv("HPU_VALIDATE", "ON", 1);
    EXPECT_TRUE(core::ExecOptions{}.validate);
    ::unsetenv("HPU_VALIDATE");
}

TEST(Report, SummaryAndMerge) {
    AnalysisReport a;
    Finding f;
    f.kind = FindingKind::kWriteWriteRace;
    f.severity = Severity::kError;
    f.launch = "x/gpu-level[4 tasks]";
    f.detail = "items 0 and 1 both touch word 3";
    a.add(f);
    a.launches_checked = 2;
    AnalysisReport b;
    b.launches_checked = 3;
    b.launches_skipped = 1;
    b.merge(a);
    EXPECT_EQ(b.launches_checked, 5u);
    EXPECT_EQ(b.launches_skipped, 1u);
    ASSERT_EQ(b.findings.size(), 1u);
    EXPECT_NE(b.summary().find("write-write-race"), std::string::npos);
    EXPECT_NE(b.summary().find("x/gpu-level[4 tasks]"), std::string::npos);
}

}  // namespace
}  // namespace hpu::analysis
