// hpu::metrics: histogram primitives, the named-instrument registry, the
// Prometheus / JSON exporters, ThreadPool telemetry, the dual-clock
// ProfileReport — and the zero-perturbation invariant: turning
// ExecOptions::profile on must leave the virtual side of every executor
// (ExecReport, span tree virtual fields, outputs) byte-identical, pooled
// or inline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algos/mergesort.hpp"
#include "core/hybrid.hpp"
#include "core/pipeline.hpp"
#include "metrics/export.hpp"
#include "metrics/profile.hpp"
#include "metrics/registry.hpp"
#include "platforms/platforms.hpp"
#include "util/histogram.hpp"
#include "util/thread_pool.hpp"

namespace hpu {
namespace {

// ---------------------------------------------------------------------------
// Log2Histogram.

TEST(Log2Histogram, BucketOfMapsPowersOfTwo) {
    EXPECT_EQ(util::Log2Histogram::bucket_of(0), 0u);
    EXPECT_EQ(util::Log2Histogram::bucket_of(1), 1u);
    EXPECT_EQ(util::Log2Histogram::bucket_of(2), 2u);
    EXPECT_EQ(util::Log2Histogram::bucket_of(3), 2u);
    EXPECT_EQ(util::Log2Histogram::bucket_of(4), 3u);
    EXPECT_EQ(util::Log2Histogram::bucket_of(7), 3u);
    EXPECT_EQ(util::Log2Histogram::bucket_of(8), 4u);
    EXPECT_EQ(util::Log2Histogram::bucket_of(~std::uint64_t{0}), 63u);
}

TEST(Log2Histogram, RecordSnapshotResetRoundTrip) {
    util::Log2Histogram h;
    for (std::uint64_t v : {0ull, 1ull, 3ull, 100ull, 100ull}) h.record(v);
    util::HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, 5u);
    EXPECT_EQ(s.sum, 204u);
    EXPECT_EQ(s.min, 0u);
    EXPECT_EQ(s.max, 100u);
    EXPECT_DOUBLE_EQ(s.mean(), 204.0 / 5.0);
    EXPECT_EQ(s.buckets[0], 1u);  // the zero bucket
    EXPECT_EQ(s.buckets[1], 1u);  // v == 1
    EXPECT_EQ(s.buckets[2], 1u);  // v == 3
    EXPECT_EQ(s.buckets[7], 2u);  // 64 <= 100 < 128
    EXPECT_EQ(std::accumulate(s.buckets.begin(), s.buckets.end(), std::uint64_t{0}),
              s.count);

    h.reset();
    s = h.snapshot();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.sum, 0u);
    EXPECT_EQ(s.min, 0u);
    EXPECT_EQ(s.max, 0u);
}

TEST(Log2Histogram, QuantilesInterpolateWithinBuckets) {
    util::Log2Histogram h;
    // 100 samples spread over [64, 128): one log2 bucket, so quantiles
    // interpolate linearly across it but clamp to the observed extremes.
    for (std::uint64_t v = 0; v < 100; ++v) h.record(64 + v / 2);
    const util::HistogramSnapshot s = h.snapshot();
    EXPECT_GE(s.p50(), static_cast<double>(s.min));
    EXPECT_LE(s.p50(), static_cast<double>(s.max));
    EXPECT_LE(s.p50(), s.p90());
    EXPECT_LE(s.p90(), s.p99());
    EXPECT_DOUBLE_EQ(s.quantile(0.0), static_cast<double>(s.min));
    EXPECT_DOUBLE_EQ(s.quantile(1.0), static_cast<double>(s.max));
}

TEST(Log2Histogram, QuantilesAcrossBucketsSeparateTheTail) {
    util::Log2Histogram h;
    for (int i = 0; i < 98; ++i) h.record(10);     // bucket [8, 16)
    h.record(1000);                                // bucket [512, 1024)
    h.record(1000);
    const util::HistogramSnapshot s = h.snapshot();
    EXPECT_LT(s.p50(), 16.0);
    EXPECT_LT(s.p90(), 16.0);
    EXPECT_GE(s.p99(), 512.0);  // the tail lands in the high bucket
    EXPECT_LE(s.p99(), 1000.0);
}

TEST(Log2Histogram, QuantileEdgeCases) {
    util::Log2Histogram empty;
    EXPECT_EQ(empty.snapshot().p50(), 0.0);
    EXPECT_EQ(empty.snapshot().p99(), 0.0);

    util::Log2Histogram zeros;
    zeros.record(0);
    zeros.record(0);
    EXPECT_EQ(zeros.snapshot().p50(), 0.0);
    EXPECT_EQ(zeros.snapshot().p99(), 0.0);

    util::Log2Histogram single;
    single.record(777);
    const util::HistogramSnapshot s = single.snapshot();
    // One sample: every quantile is that sample (clamped to min == max).
    EXPECT_DOUBLE_EQ(s.p50(), 777.0);
    EXPECT_DOUBLE_EQ(s.p90(), 777.0);
    EXPECT_DOUBLE_EQ(s.p99(), 777.0);
}

// ---------------------------------------------------------------------------
// Registry.

TEST(Registry, GetOrRegisterReturnsStableInstruments) {
    metrics::Registry reg;
    metrics::Counter& c1 = reg.counter("hpu_test_total", "help one");
    c1.inc(3);
    metrics::Counter& c2 = reg.counter("hpu_test_total", "help two (ignored)");
    EXPECT_EQ(&c1, &c2);
    reg.gauge("hpu_test_gauge").set(2.5);
    reg.histogram("hpu_test_hist").record(9);

    const metrics::RegistrySnapshot s = reg.snapshot();
    ASSERT_EQ(s.counters.size(), 1u);
    EXPECT_EQ(s.counters[0].name, "hpu_test_total");
    EXPECT_EQ(s.counters[0].help, "help one");
    EXPECT_EQ(s.counters[0].value, 3u);
    ASSERT_EQ(s.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(s.gauges[0].value, 2.5);
    ASSERT_EQ(s.histograms.size(), 1u);
    EXPECT_EQ(s.histograms[0].hist.count, 1u);
}

TEST(Registry, RejectsInvalidMetricNames) {
    metrics::Registry reg;
    EXPECT_THROW(reg.counter(""), util::HpuError);
    EXPECT_THROW(reg.counter("1leading_digit"), util::HpuError);
    EXPECT_THROW(reg.counter("has-dash"), util::HpuError);
    EXPECT_THROW(reg.counter("has space"), util::HpuError);
    EXPECT_NO_THROW(reg.counter("_ok_Name_2"));
}

// ---------------------------------------------------------------------------
// Exporters.

TEST(Exporters, PrometheusTextFormatIsWellFormed) {
    metrics::Registry reg;
    reg.counter("hpu_events_total", "events seen").inc(7);
    reg.gauge("hpu_ratio", "a ratio").set(0.5);
    metrics::Histogram& h = reg.histogram("hpu_latency_ns", "latencies");
    h.record(0);
    h.record(3);
    h.record(100);

    std::ostringstream os;
    metrics::export_prometheus(reg.snapshot(), os);
    const std::string text = os.str();

    EXPECT_NE(text.find("# TYPE hpu_events_total counter"), std::string::npos);
    EXPECT_NE(text.find("hpu_events_total 7"), std::string::npos);
    EXPECT_NE(text.find("# TYPE hpu_ratio gauge"), std::string::npos);
    EXPECT_NE(text.find("# TYPE hpu_latency_ns histogram"), std::string::npos);
    // Cumulative buckets: le="0" holds the zero value, le="3" adds v=3,
    // the last series is always +Inf with the full count.
    EXPECT_NE(text.find("hpu_latency_ns_bucket{le=\"0\"} 1"), std::string::npos);
    EXPECT_NE(text.find("hpu_latency_ns_bucket{le=\"3\"} 2"), std::string::npos);
    EXPECT_NE(text.find("hpu_latency_ns_bucket{le=\"+Inf\"} 3"), std::string::npos);
    EXPECT_NE(text.find("hpu_latency_ns_sum 103"), std::string::npos);
    EXPECT_NE(text.find("hpu_latency_ns_count 3"), std::string::npos);
    // Buckets above the highest non-empty one are elided.
    EXPECT_EQ(text.find("le=\"255\""), std::string::npos);
}

TEST(Exporters, JsonSnapshotIsBalanced) {
    metrics::Registry reg;
    reg.counter("hpu_a_total").inc();
    reg.gauge("hpu_b").set(1.25);
    reg.histogram("hpu_c").record(5);
    std::ostringstream os;
    metrics::export_json(reg.snapshot(), os);
    const std::string json = os.str();
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_NE(json.find("\"hpu_a_total\":1"), std::string::npos);
    EXPECT_NE(json.find("\"hpu_b\":1.25"), std::string::npos);
    EXPECT_NE(json.find("\"hpu_c\":{\"count\":1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ThreadPool telemetry.

TEST(PoolTelemetry, AccountsBusyIdleAndChunks) {
    util::ThreadPool pool(2);
    std::atomic<std::uint64_t> sink{0};
    for (int b = 0; b < 4; ++b) {
        pool.parallel_for(256, [&](std::size_t i) {
            std::uint64_t x = i;
            for (int k = 0; k < 200; ++k) x = x * 2654435761ull + k;
            sink.fetch_add(x, std::memory_order_relaxed);
        });
    }
    const util::PoolTelemetry t = pool.telemetry();
    EXPECT_EQ(t.workers, 2u);
    EXPECT_EQ(t.batches, 4u);
    ASSERT_EQ(t.per_worker.size(), 3u);  // 2 workers + the caller slot
    std::uint64_t chunks = 0, indices = 0;
    for (const auto& w : t.per_worker) {
        chunks += w.chunks;
        indices += w.indices;
    }
    EXPECT_GT(chunks, 0u);
    EXPECT_EQ(indices, 4u * 256u);
    // The caller always participates, so total busy is positive even if
    // the workers never won a claim on a loaded host.
    std::uint64_t busy = 0;
    for (const auto& w : t.per_worker) busy += w.busy_ns;
    EXPECT_GT(busy, 0u);
    EXPECT_EQ(t.claim_size.count, chunks);
    EXPECT_GT(t.submit_latency_ns.count, 0u);
    EXPECT_GT(t.window_ns, 0u);
    // busy + idle explains most of workers x window; generous lower bound
    // because CI hosts may be oversubscribed (acceptance tightens this on
    // the dedicated wallclock harness instead).
    EXPECT_GT(t.accounted_share(), 0.5);
    EXPECT_LE(t.accounted_share(), 1.05);

    pool.reset_telemetry();
    const util::PoolTelemetry r = pool.telemetry();
    EXPECT_EQ(r.batches, 0u);
    std::uint64_t busy_after = 0;
    for (const auto& w : r.per_worker) busy_after += w.busy_ns;
    EXPECT_EQ(busy_after, 0u);
    EXPECT_EQ(r.claim_size.count, 0u);
}

TEST(PoolTelemetry, InlinePoolCollectsNothing) {
    util::ThreadPool pool(0);
    pool.parallel_for(64, [](std::size_t) {});
    const util::PoolTelemetry t = pool.telemetry();
    EXPECT_EQ(t.workers, 0u);
    EXPECT_TRUE(t.per_worker.empty());
    EXPECT_DOUBLE_EQ(t.accounted_share(), 1.0);
}

TEST(PoolTelemetry, PublishPoolEmitsTheMetricNamespace) {
    util::ThreadPool pool(2);
    pool.parallel_for(128, [](std::size_t) {});
    metrics::RegistrySnapshot snap;
    metrics::publish_pool(snap, pool.telemetry());
    std::ostringstream os;
    metrics::export_prometheus(snap, os);
    const std::string text = os.str();
    for (const char* name :
         {"hpu_pool_workers", "hpu_pool_worker_busy_ns_total", "hpu_pool_worker_idle_ns_total",
          "hpu_pool_chunks_claimed_total", "hpu_pool_worker_utilization",
          "hpu_pool_accounted_share", "hpu_pool_claim_size_indices",
          "hpu_pool_submit_latency_ns"}) {
        EXPECT_NE(text.find(name), std::string::npos) << name;
    }
}

// ---------------------------------------------------------------------------
// Dual-clock profile.

core::ExecReport run_profiled(sim::Hpu& h, const algos::MergesortCoalesced<std::int32_t>& alg,
                              std::vector<std::int32_t>& data, trace::TraceSession& ts) {
    core::AdvancedOptions adv;
    adv.exec.trace = &ts;
    adv.exec.profile = true;
    adv.exec.functional = true;
    adv.exec.validate = false;
    return run_advanced_hybrid(h, alg, std::span(data), 0.3, 2, adv);
}

std::vector<std::int32_t> profile_input(std::uint64_t n) {
    std::vector<std::int32_t> v(n);
    std::uint64_t x = 12345;
    for (auto& e : v) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        e = static_cast<std::int32_t>(x >> 40);
    }
    return v;
}

TEST(Profile, DeriveProfileJoinsWallAndVirtualPerPhase) {
    sim::Hpu h(platforms::hpu1());
    algos::MergesortCoalesced<std::int32_t> alg;
    auto data = profile_input(1 << 12);
    trace::TraceSession ts;
    run_profiled(h, alg, data, ts);

    const metrics::ProfileReport rep = metrics::derive_profile(ts);
    ASSERT_EQ(rep.executors.size(), 1u);
    const metrics::ExecutorProfile& ep = rep.executors[0];
    EXPECT_NE(ep.label.find("advanced-hybrid"), std::string::npos);
    EXPECT_GT(ep.virtual_ticks, 0.0);
    EXPECT_GT(ep.wall_ns, 0u);
    EXPECT_GT(ep.attributed_wall_ns, 0u);
    // Children are disjoint subintervals of the run (the 1 ns clamp for
    // immeasurably short spans gives each span at most 1 extra ns).
    EXPECT_LE(ep.attributed_wall_ns, ep.wall_ns + ts.spans().size());
    ASSERT_FALSE(ep.phases.empty());
    std::vector<std::string> labels;
    for (const auto& ph : ep.phases) {
        labels.push_back(ph.label);
        EXPECT_GT(ph.wall_ns, 0u);
        EXPECT_GT(ph.spans, 0u);
    }
    // The advanced hybrid's attribution buckets are its scheduler phases.
    EXPECT_NE(std::find_if(labels.begin(), labels.end(),
                           [](const std::string& l) {
                               return l.find("cpu-parallel") != std::string::npos;
                           }),
              labels.end());
    EXPECT_NE(std::find_if(labels.begin(), labels.end(),
                           [](const std::string& l) {
                               return l.find("gpu-phase") != std::string::npos;
                           }),
              labels.end());
    EXPECT_EQ(rep.total_wall_ns, ep.wall_ns);

    std::ostringstream os;
    metrics::export_profile_json(rep, os);
    const std::string json = os.str();
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_NE(json.find("\"executors\""), std::string::npos);
}

TEST(Profile, HostEfficiencyIsInUnitInterval) {
    util::ThreadPool pool(2);
    sim::Hpu h(platforms::hpu1(), &pool);
    algos::MergesortCoalesced<std::int32_t> alg;
    auto data = profile_input(1 << 12);
    trace::TraceSession ts;
    pool.reset_telemetry();
    run_profiled(h, alg, data, ts);
    const util::PoolTelemetry t = pool.telemetry();

    const metrics::ProfileReport rep = metrics::derive_profile(ts, &t);
    ASSERT_TRUE(rep.pool.present);
    EXPECT_EQ(rep.pool.workers, 2u);
    EXPECT_GT(rep.pool.host_efficiency, 0.0);
    EXPECT_LE(rep.pool.host_efficiency, 1.0);
    EXPECT_GE(rep.pool.overhead_share, 0.0);
    EXPECT_GT(rep.pool.chunks, 0u);

    std::ostringstream os;
    rep.print(os);
    EXPECT_NE(os.str().find("host efficiency"), std::string::npos);
}

TEST(Profile, UnprofiledSessionYieldsNoExecutors) {
    sim::Hpu h(platforms::hpu1());
    algos::MergesortCoalesced<std::int32_t> alg;
    auto data = profile_input(1 << 12);
    trace::TraceSession ts;
    core::AdvancedOptions adv;
    adv.exec.trace = &ts;
    adv.exec.profile = false;
    adv.exec.validate = false;
    run_advanced_hybrid(h, alg, std::span(data), 0.3, 2, adv);
    for (const trace::Span& s : ts.spans()) EXPECT_EQ(s.wall_ns, 0u);
    EXPECT_TRUE(metrics::derive_profile(ts).executors.empty());
}

TEST(Profile, EmptySessionYieldsEmptyReport) {
    trace::TraceSession ts;
    const metrics::ProfileReport rep = metrics::derive_profile(ts);
    EXPECT_TRUE(rep.executors.empty());
    EXPECT_EQ(rep.total_wall_ns, 0u);
    EXPECT_EQ(rep.total_virtual, 0.0);
    EXPECT_FALSE(rep.pool.present);
    std::ostringstream os;
    rep.print(os);  // must not crash, and must say why it is empty
    EXPECT_NE(os.str().find("no wall-annotated spans"), std::string::npos);
}

TEST(Profile, SingleAnnotatedRunSpanProfilesWithoutPhases) {
    trace::TraceSession ts;
    const trace::SpanId run =
        ts.record(trace::SpanKind::kRun, trace::Unit::kHost, "solo/run", 0.0, 42.0);
    ts.annotate_wall(run, 1'000, 84);
    const metrics::ProfileReport rep = metrics::derive_profile(ts);
    ASSERT_EQ(rep.executors.size(), 1u);
    EXPECT_EQ(rep.executors[0].wall_ns, 84u);
    EXPECT_EQ(rep.executors[0].virtual_ticks, 42.0);
    EXPECT_EQ(rep.executors[0].attributed_wall_ns, 0u);
    EXPECT_TRUE(rep.executors[0].phases.empty());
    EXPECT_EQ(rep.wall_epoch_ns, 1'000u);
}

TEST(Profile, MixedProfiledAndUnprofiledSubtreesSkipTheUnprofiled) {
    // Two runs in one session; only the first was profiled. The second's
    // spans all carry the wall_ns == 0 sentinel and must not contribute an
    // executor or shift the epoch.
    trace::TraceSession ts;
    const auto r1 = ts.record(trace::SpanKind::kRun, trace::Unit::kHost, "a/run", 0.0, 10.0);
    trace::SpanAttrs attrs;
    attrs.level = 1;
    const auto c1 = ts.record(trace::SpanKind::kLevel, trace::Unit::kCpu, "a/level", 0.0,
                              6.0, attrs, r1);
    const auto r2 = ts.record(trace::SpanKind::kRun, trace::Unit::kHost, "b/run", 0.0, 20.0);
    ts.record(trace::SpanKind::kLevel, trace::Unit::kCpu, "b/level", 0.0, 20.0, attrs, r2);
    ts.annotate_wall(r1, 5'000, 100);
    ts.annotate_wall(c1, 5'010, 60);

    const metrics::ProfileReport rep = metrics::derive_profile(ts);
    ASSERT_EQ(rep.executors.size(), 1u);
    EXPECT_EQ(rep.executors[0].label, "a/run");
    EXPECT_EQ(rep.executors[0].wall_ns, 100u);
    EXPECT_EQ(rep.executors[0].attributed_wall_ns, 60u);
    ASSERT_EQ(rep.executors[0].phases.size(), 1u);
    EXPECT_EQ(rep.executors[0].phases[0].label, "(direct)");
    EXPECT_DOUBLE_EQ(rep.executors[0].phases[0].ns_per_tick, 10.0);
    EXPECT_EQ(rep.total_wall_ns, 100u);
    EXPECT_EQ(rep.wall_epoch_ns, 5'000u);
}

TEST(Profile, PoolSubmitLatencyQuantilesFoldIn) {
    util::ThreadPool pool(2);
    pool.parallel_for(512, [](std::size_t) {});
    const util::PoolTelemetry t = pool.telemetry();
    trace::TraceSession ts;  // no annotated spans needed for the pool side
    const metrics::ProfileReport rep = metrics::derive_profile(ts, &t);
    ASSERT_TRUE(rep.pool.present);
    EXPECT_GT(rep.pool.submit_p99_ns, 0.0);
    EXPECT_LE(rep.pool.submit_p50_ns, rep.pool.submit_p90_ns);
    EXPECT_LE(rep.pool.submit_p90_ns, rep.pool.submit_p99_ns);
    std::ostringstream os;
    metrics::export_profile_json(rep, os);
    EXPECT_NE(os.str().find("\"submit_p99_ns\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Zero perturbation: profiling must not move the virtual clock.

struct VirtualArtifacts {
    core::ExecReport rep;
    std::vector<trace::Span> spans;
    std::vector<std::int32_t> out;
    bool any_wall = false;
};

VirtualArtifacts run_virtual(util::ThreadPool* pool, int executor, bool functional,
                             bool profile, const std::vector<std::int32_t>& input) {
    sim::HpuParams hw = platforms::hpu1();
    hw.cpu.p = 4;
    hw.gpu.g = 64;
    sim::Hpu h(hw, pool);
    algos::MergesortCoalesced<std::int32_t> alg;
    trace::TraceSession ts;
    core::ExecOptions opts;
    opts.functional = functional;
    opts.validate = false;
    opts.trace = &ts;
    opts.profile = profile;

    VirtualArtifacts art;
    art.out = input;
    std::span<std::int32_t> data(art.out);
    switch (executor) {
        case 0: art.rep = run_sequential(h.cpu(), alg, data, opts); break;
        case 1: art.rep = run_multicore(h.cpu(), alg, data, opts); break;
        case 2: art.rep = run_gpu(h, alg, data, opts); break;
        case 3: art.rep = run_basic_hybrid(h, alg, data, opts); break;
        case 4: {
            core::AdvancedOptions adv;
            adv.exec = opts;
            art.rep = run_advanced_hybrid(h, alg, data, 0.3, 2, adv);
            break;
        }
        default: {
            core::PipelinedOptions pip;
            pip.chunks = 4;
            pip.exec = opts;
            art.rep = run_pipelined_hybrid(h, alg, data, 0.3, 2, pip);
            break;
        }
    }
    art.spans = ts.spans();
    for (const trace::Span& s : art.spans) art.any_wall |= s.wall_ns != 0;
    return art;
}

void expect_virtual_identical(const VirtualArtifacts& a, const VirtualArtifacts& b) {
    EXPECT_EQ(a.rep.total, b.rep.total);
    EXPECT_EQ(a.rep.cpu_busy, b.rep.cpu_busy);
    EXPECT_EQ(a.rep.gpu_busy, b.rep.gpu_busy);
    EXPECT_EQ(a.rep.transfer, b.rep.transfer);
    EXPECT_EQ(a.rep.finish, b.rep.finish);
    EXPECT_EQ(a.rep.levels_cpu, b.rep.levels_cpu);
    EXPECT_EQ(a.rep.levels_gpu, b.rep.levels_gpu);
    EXPECT_EQ(a.rep.alpha_effective, b.rep.alpha_effective);
    EXPECT_EQ(a.rep.chunks, b.rep.chunks);
    EXPECT_EQ(a.out, b.out);
    ASSERT_EQ(a.spans.size(), b.spans.size());
    for (std::size_t i = 0; i < a.spans.size(); ++i) {
        const trace::Span& sa = a.spans[i];
        const trace::Span& sb = b.spans[i];
        SCOPED_TRACE(::testing::Message() << "span " << i << " label=" << sa.label);
        EXPECT_EQ(sa.id, sb.id);
        EXPECT_EQ(sa.parent, sb.parent);
        EXPECT_EQ(sa.kind, sb.kind);
        EXPECT_EQ(sa.unit, sb.unit);
        EXPECT_EQ(sa.label, sb.label);
        EXPECT_EQ(sa.start, sb.start);  // virtual fields: exact
        EXPECT_EQ(sa.end, sb.end);
        EXPECT_EQ(sa.attrs.level, sb.attrs.level);
        EXPECT_EQ(sa.attrs.tasks, sb.attrs.tasks);
        EXPECT_EQ(sa.attrs.items, sb.attrs.items);
        EXPECT_EQ(sa.attrs.waves, sb.attrs.waves);
        EXPECT_EQ(sa.attrs.ops, sb.attrs.ops);
        EXPECT_EQ(sa.attrs.work, sb.attrs.work);
        EXPECT_EQ(sa.attrs.bytes, sb.attrs.bytes);
        EXPECT_EQ(sa.attrs.coalesced_transactions, sb.attrs.coalesced_transactions);
        EXPECT_EQ(sa.attrs.strided_transactions, sb.attrs.strided_transactions);
    }
}

constexpr const char* kExecutors[] = {"sequential", "multicore", "gpu",
                                      "basic",      "advanced",  "pipelined"};

TEST(ProfileZeroPerturbation, VirtualSideIdenticalAcrossExecutorsAndPools) {
    const auto input = profile_input(1 << 10);
    util::ThreadPool inline_pool(0);
    util::ThreadPool pool(std::max(2u, std::thread::hardware_concurrency()));
    for (util::ThreadPool* p : {&inline_pool, &pool}) {
        for (const bool functional : {true, false}) {
            for (int e = 0; e < 6; ++e) {
                SCOPED_TRACE(::testing::Message()
                             << "executor=" << kExecutors[e] << " functional=" << functional
                             << " workers=" << p->worker_count());
                const auto plain = run_virtual(p, e, functional, false, input);
                const auto profiled = run_virtual(p, e, functional, true, input);
                expect_virtual_identical(plain, profiled);
                EXPECT_FALSE(plain.any_wall);
                EXPECT_TRUE(profiled.any_wall);  // profiling actually engaged
            }
        }
    }
}

}  // namespace
}  // namespace hpu
