// Layer-1 engine tests: the Algorithm 1 → Algorithm 2 rewrite must be
// semantics-preserving for every algorithm, including ones with non-trivial
// Result types and uneven division (non-power-of-two inputs).
#include <gtest/gtest.h>

#include <numeric>

#include "algos/dc_problems.hpp"
#include "core/generic.hpp"
#include "util/rng.hpp"

namespace hpu::core {
namespace {

using algos::GenericMatmul;
using algos::GenericSum;
using algos::Matrix;
using algos::MaxSubarray;

static_assert(DCAlgorithm<GenericSum>);
static_assert(DCAlgorithm<MaxSubarray>);
static_assert(DCAlgorithm<GenericMatmul>);

TEST(GenericSum, MatchesAccumulate) {
    util::Rng rng(1);
    for (std::size_t n : {1u, 2u, 3u, 7u, 64u, 1000u}) {
        std::vector<std::int64_t> v(n);
        for (auto& x : v) x = rng.uniform_int(-100, 100);
        const GenericSum alg;
        const auto expect = std::accumulate(v.begin(), v.end(), std::int64_t{0});
        EXPECT_EQ(run_recursive(alg, GenericSum::Param{v}), expect) << "n=" << n;
        EXPECT_EQ(run_breadth_first(alg, GenericSum::Param{v}), expect) << "n=" << n;
    }
}

TEST(GenericSum, SingleAndEmpty) {
    const GenericSum alg;
    std::vector<std::int64_t> one = {42};
    EXPECT_EQ(run_breadth_first(alg, GenericSum::Param{one}), 42);
    std::vector<std::int64_t> none;
    EXPECT_EQ(run_breadth_first(alg, GenericSum::Param{none}), 0);
}

std::int64_t brute_max_subarray(std::span<const std::int64_t> v) {
    std::int64_t best = 0;  // empty subarray allowed
    for (std::size_t i = 0; i < v.size(); ++i) {
        std::int64_t run = 0;
        for (std::size_t j = i; j < v.size(); ++j) {
            run += v[j];
            best = std::max(best, run);
        }
    }
    return best;
}

class MaxSubarrayProperty : public ::testing::TestWithParam<int> {};

TEST_P(MaxSubarrayProperty, RecursiveEqualsBreadthFirstEqualsBrute) {
    util::Rng rng(static_cast<std::uint64_t>(GetParam()));
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 200));
    std::vector<std::int64_t> v(n);
    for (auto& x : v) x = rng.uniform_int(-50, 50);
    const MaxSubarray alg;
    const auto rec = run_recursive(alg, MaxSubarray::Param{v});
    const auto bf = run_breadth_first(alg, MaxSubarray::Param{v});
    const auto expect = brute_max_subarray(v);
    EXPECT_EQ(rec.best, expect);
    EXPECT_EQ(bf.best, expect);
    EXPECT_EQ(bf.total, std::accumulate(v.begin(), v.end(), std::int64_t{0}));
    EXPECT_EQ(rec.prefix, bf.prefix);
    EXPECT_EQ(rec.suffix, bf.suffix);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxSubarrayProperty, ::testing::Range(0, 25));

Matrix random_matrix(std::size_t n, util::Rng& rng) {
    Matrix m = Matrix::zero(n);
    for (auto& x : m.v) x = rng.uniform_real(-2.0, 2.0);
    return m;
}

Matrix naive_matmul(const Matrix& a, const Matrix& b) {
    Matrix c = Matrix::zero(a.n);
    for (std::size_t i = 0; i < a.n; ++i) {
        for (std::size_t k = 0; k < a.n; ++k) {
            for (std::size_t j = 0; j < a.n; ++j) {
                c.at(i, j) += a.at(i, k) * b.at(k, j);
            }
        }
    }
    return c;
}

class MatmulProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MatmulProperty, BothDriversMatchNaive) {
    util::Rng rng(GetParam() * 31 + 5);
    const std::size_t n = GetParam();
    const Matrix a = random_matrix(n, rng);
    const Matrix b = random_matrix(n, rng);
    const Matrix expect = naive_matmul(a, b);
    const GenericMatmul alg;
    const Matrix rec = run_recursive(alg, GenericMatmul::Param{a, b});
    const Matrix bf = run_breadth_first(alg, GenericMatmul::Param{a, b});
    ASSERT_EQ(rec.n, n);
    ASSERT_EQ(bf.n, n);
    for (std::size_t i = 0; i < n * n; ++i) {
        EXPECT_NEAR(rec.v[i], expect.v[i], 1e-9);
        EXPECT_NEAR(bf.v[i], expect.v[i], 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatmulProperty, ::testing::Values(1, 2, 4, 8, 16));

// A pathological algorithm whose divide returns nothing: both engines must
// reject it rather than loop or crash.
struct BadDivide {
    using Param = int;
    using Result = int;
    bool is_base(const Param& p) const { return p == 0; }
    Result base_case(const Param&) const { return 0; }
    std::vector<Param> divide(const Param&) const { return {}; }
    Result combine(const Param&, std::span<const Result>) const { return 0; }
};

TEST(GenericEngine, EmptyDivideIsAnError) {
    const BadDivide alg;
    EXPECT_THROW(run_recursive(alg, 1), util::HpuError);
    EXPECT_THROW(run_breadth_first(alg, 1), util::HpuError);
}

// Mixed-depth base cases: verify the breadth-first engine's deferred
// base-case handling (§4.1) on an algorithm whose left branch bottoms out
// earlier than its right branch.
struct UnevenSum {
    struct Param {
        std::span<const std::int64_t> slice;
    };
    using Result = std::int64_t;
    bool is_base(const Param& p) const { return p.slice.size() <= 2; }
    Result base_case(const Param& p) const {
        return std::accumulate(p.slice.begin(), p.slice.end(), std::int64_t{0});
    }
    std::vector<Param> divide(const Param& p) const {
        // Uneven: first third / rest.
        const std::size_t cut = std::max<std::size_t>(1, p.slice.size() / 3);
        return {Param{p.slice.subspan(0, cut)}, Param{p.slice.subspan(cut)}};
    }
    Result combine(const Param&, std::span<const Result> rs) const {
        return std::accumulate(rs.begin(), rs.end(), std::int64_t{0});
    }
};

TEST(GenericEngine, UnevenTreesWithEarlyBaseCases) {
    util::Rng rng(9);
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 500));
        std::vector<std::int64_t> v(n);
        for (auto& x : v) x = rng.uniform_int(-10, 10);
        const UnevenSum alg;
        const auto expect = std::accumulate(v.begin(), v.end(), std::int64_t{0});
        EXPECT_EQ(run_recursive(alg, UnevenSum::Param{v}), expect);
        EXPECT_EQ(run_breadth_first(alg, UnevenSum::Param{v}), expect);
    }
}

}  // namespace
}  // namespace hpu::core
